// bench_io: parallel vs serial graph ingest (the A/B behind the PR-3
// acceptance criterion: the chunked mmap + from_chars readers must beat
// the reference operator>>/istringstream readers by >= 3x on a >= 10M-edge
// graph, with byte-identical CSR output).
//
// A random graph (n = scaled(1<<20), degree 6, ~12.6M directed edge slots
// at PCC_SCALE=1) is written in all three formats; each is then loaded
// with io_options::parallel = false and = true, median-of-k. The two CSRs
// are compared element-wise — a speedup with a different graph is a bug,
// not a result.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "bench_common.hpp"

namespace {

using namespace pcc;

bool same_csr(const graph::graph& a, const graph::graph& b) {
  return a.offsets() == b.offsets() && a.edges() == b.edges();
}

}  // namespace

int main() {
  bench::print_header("bench_io: parallel vs serial graph ingest");

  const size_t n = bench::scaled(size_t{1} << 20);
  const graph::graph g = graph::random_graph(n, 6, 42);
  std::printf("input: random graph n=%zu, m=%zu directed edge slots\n\n",
              g.num_vertices(), g.num_edges());

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("pcc_bench_io_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  struct format_case {
    const char* name;
    const char* ext;
    graph::file_format format;
  };
  const format_case cases[] = {
      {"AdjacencyGraph", "adj", graph::file_format::kAdjacency},
      {"SNAP edge list", "snap", graph::file_format::kSnap},
      {"binary v2", "badj", graph::file_format::kBinary},
  };

  int rc = 0;
  for (const auto& c : cases) {
    const std::string path = (dir / (std::string("g.") + c.ext)).string();
    parallel::timer wt;
    graph::save_graph(g, path, c.format);
    const double write_s = wt.elapsed();
    const double mib =
        static_cast<double>(fs::file_size(path)) / (1024.0 * 1024.0);

    graph::io_options serial_opt;
    serial_opt.parallel = false;
    graph::io_options parallel_opt;
    parallel::phase_timer phases;
    parallel_opt.phases = &phases;

    graph::graph g_serial;
    graph::graph g_parallel;
    const double t_serial = bench::median_time(
        [&] { g_serial = graph::load_graph(path, c.format, serial_opt); });
    const double t_parallel = bench::median_time(
        [&] { g_parallel = graph::load_graph(path, c.format, parallel_opt); });

    const bool identical = same_csr(g_serial, g_parallel);
    std::printf("%-16s %8.1f MiB  write %6.3fs  serial %7.3fs  parallel %7.3fs"
                "  speedup %5.2fx  CSR %s\n",
                c.name, mib, write_s, t_serial, t_parallel,
                t_serial / t_parallel, identical ? "identical" : "MISMATCH");
    for (const auto& [phase, secs] : phases.phases()) {
      std::printf("    %-12s %7.3fs (summed over trials)\n", phase.c_str(),
                  secs);
    }
    if (!identical) rc = 1;
    // The text formats must also round-trip the original CSR exactly
    // (SNAP drops isolated vertices and re-symmetrizes, so it is only
    // checked for serial/parallel agreement above).
    if (c.format != graph::file_format::kSnap && !same_csr(g, g_parallel)) {
      std::printf("    ERROR: round-trip differs from the generated graph\n");
      rc = 1;
    }
  }

  fs::remove_all(dir);
  return rc;
}
