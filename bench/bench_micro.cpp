// google-benchmark microbenchmarks of the parallel primitives the
// connectivity pipeline is built from: scan, pack, radix sort, random
// permutation, hash-set dedup, BFS, and single decomposition calls.

#include <benchmark/benchmark.h>

#include "pcc.hpp"

namespace {

using namespace pcc;

void BM_ScanExclusive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> data(n, 3);
  std::vector<uint64_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel::scan_exclusive_into(
        n, [&](size_t i) { return data[i]; }, out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ScanExclusive)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 21);

void BM_PackIndex(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parallel::pack_index<uint32_t>(n, [](size_t i) { return i % 3 == 0; }));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_PackIndex)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 21);

void BM_IntegerSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  parallel::rng gen(1);
  std::vector<uint64_t> base(n);
  for (size_t i = 0; i < n; ++i) base[i] = gen[i] & 0xFFFFFFFFull;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint64_t> v = base;
    state.ResumeTiming();
    parallel::integer_sort_keys(v, 32);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_IntegerSort)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 20);

void BM_RandomPermutation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel::random_permutation(n, ++seed));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_RandomPermutation)->Arg(1 << 14)->Arg(1 << 18);

void BM_HashSetDedup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  parallel::rng gen(2);
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = gen[i % (n / 4 + 1)] | 1;  // ~4x dups
  for (auto _ : state) {
    parallel::hash_set64 set(n);
    parallel::parallel_for(0, n, [&](size_t i) { set.insert(keys[i]); });
    benchmark::DoNotOptimize(set.elements());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_HashSetDedup)->Arg(1 << 14)->Arg(1 << 18);

void BM_ParallelBfs(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const graph::graph g = graph::random_graph(n, 5, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::parallel_bfs_distances(g, 0));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * g.num_edges()));
}
BENCHMARK(BM_ParallelBfs)->Arg(1 << 14)->Arg(1 << 17);

void BM_DecompArbSingleCall(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const graph::graph g = graph::random_graph(n, 5, 4);
  ldd::options opt;
  opt.beta = 0.2;
  for (auto _ : state) {
    ldd::work_graph wg = ldd::work_graph::from(g);
    benchmark::DoNotOptimize(ldd::decomp_arb(wg, opt, nullptr));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * g.num_edges()));
}
BENCHMARK(BM_DecompArbSingleCall)->Arg(1 << 14)->Arg(1 << 17);

void BM_ConnectedComponentsEndToEnd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const graph::graph g = graph::random_graph(n, 5, 5);
  cc::cc_options opt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cc::connected_components(g, opt));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * g.num_edges()));
}
BENCHMARK(BM_ConnectedComponentsEndToEnd)->Arg(1 << 14)->Arg(1 << 17);

// Same query through a warm cc_engine: the delta against EndToEnd is the
// per-query allocation/faulting cost the engine eliminates.
void BM_CcEngineWarmRun(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const graph::graph g = graph::random_graph(n, 5, 5);
  cc::cc_engine engine;
  engine.run(g);
  engine.run(g);  // second run consolidates the arenas
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(g).data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * g.num_edges()));
}
BENCHMARK(BM_CcEngineWarmRun)->Arg(1 << 14)->Arg(1 << 17);

void BM_SampleSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  parallel::rng gen(6);
  std::vector<uint64_t> base(n);
  for (size_t i = 0; i < n; ++i) base[i] = gen[i];
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint64_t> v = base;
    state.ResumeTiming();
    parallel::sample_sort(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_SampleSort)->Arg(1 << 16)->Arg(1 << 19);

void BM_Histogram(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  parallel::rng gen(7);
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<uint32_t>(gen[i] % 4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parallel::histogram(n, 4096, [&](size_t i) { return keys[i]; }));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_Histogram)->Arg(1 << 16)->Arg(1 << 20);

void BM_SpanningForest(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const graph::graph g = graph::random_graph(n, 5, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cc::spanning_forest(g));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * g.num_edges()));
}
BENCHMARK(BM_SpanningForest)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace

BENCHMARK_MAIN();
