// google-benchmark microbenchmarks of the parallel primitives the
// connectivity pipeline is built from: scan, pack, radix sort, random
// permutation, hash-set dedup, BFS, and single decomposition calls.
//
// Besides the normal console output, the run is summarized as
// results/BENCH_micro.json (median + min of the per-repetition real times;
// see bench_common.hpp for the schema and the PCC_BENCH_JSON override).
// `--reps N` (or PCC_TRIALS) sets --benchmark_repetitions.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <map>

#include "bench_common.hpp"
#include "parallel/emit.hpp"
#include "pcc.hpp"

namespace {

using namespace pcc;

void BM_ScanExclusive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> data(n, 3);
  std::vector<uint64_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel::scan_exclusive_into(
        n, [&](size_t i) { return data[i]; }, out));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ScanExclusive)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 21);

void BM_PackIndex(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parallel::pack_index<uint32_t>(n, [](size_t i) { return i % 3 == 0; }));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_PackIndex)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 21);

void BM_IntegerSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  parallel::rng gen(1);
  std::vector<uint64_t> base(n);
  for (size_t i = 0; i < n; ++i) base[i] = gen[i] & 0xFFFFFFFFull;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint64_t> v = base;
    state.ResumeTiming();
    parallel::integer_sort_keys(v, 32);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_IntegerSort)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 20);

void BM_RandomPermutation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel::random_permutation(n, ++seed));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_RandomPermutation)->Arg(1 << 14)->Arg(1 << 18);

// --- the contraction's dedup routes, apples to apples --------------------
// Matched inputs for core/contract.cpp's two duplicate-removal routes:
// n packed (src << 32 | tgt) pair keys with src, tgt uniform over
// [0, kv) and kv = sqrt(n / dup), so the expected duplication ratio is
// `dup` — the m/k density choose_dedup_route() keys on. Both kernels
// consume identical arrays and both end at the same deduplicated, SORTED
// pair array the contraction needs (hash: phase-concurrent insert + pack
// + sort survivors; sort: sort everything + adjacent-unique pack), so the
// medians are directly comparable and calibrate the chooser.
std::vector<uint64_t> dedup_pair_keys(size_t n, size_t dup, size_t* kv_out) {
  const size_t kv = std::max<size_t>(
      2, static_cast<size_t>(std::sqrt(static_cast<double>(n) /
                                       static_cast<double>(dup))));
  *kv_out = kv;
  parallel::rng gen(2);
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = ((gen[2 * i] % kv) << 32) | (gen[2 * i + 1] % kv);
  }
  return keys;
}

void BM_HashSetDedup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dup = static_cast<size_t>(state.range(1));
  size_t kv = 0;
  const std::vector<uint64_t> keys = dedup_pair_keys(n, dup, &kv);
  const int b = parallel::bits_needed(kv);
  const uint64_t tmask = b >= 32 ? ~uint32_t{0} : (uint64_t{1} << b) - 1;
  parallel::workspace ws;
  for (auto _ : state) {
    parallel::workspace::scope s(ws);
    std::span<uint64_t> slots =
        ws.take<uint64_t>(parallel::hash_set64_view::slots_needed(n));
    parallel::hash_set64_view set(slots);
    std::span<uint64_t> deduped = ws.take<uint64_t>(n);
    const size_t num = parallel::emit_pack<uint64_t>(
        n, deduped, ws, [&](size_t i, parallel::emitter<uint64_t>& em) {
          if (set.insert(keys[i])) em(keys[i]);
        });
    parallel::integer_sort_span(
        deduped.first(num), 2 * b,
        [b, tmask](uint64_t p) { return ((p >> 32) << b) | (p & tmask); },
        ws);
    benchmark::DoNotOptimize(deduped.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_HashSetDedup)
    ->Args({1 << 14, 4})
    ->Args({1 << 18, 1})
    ->Args({1 << 18, 4})
    ->Args({1 << 18, 16});

void BM_SortDedup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dup = static_cast<size_t>(state.range(1));
  size_t kv = 0;
  const std::vector<uint64_t> keys = dedup_pair_keys(n, dup, &kv);
  const int b = parallel::bits_needed(kv);
  const uint64_t tmask = b >= 32 ? ~uint32_t{0} : (uint64_t{1} << b) - 1;
  parallel::workspace ws;
  for (auto _ : state) {
    parallel::workspace::scope s(ws);
    std::span<uint64_t> v = ws.take<uint64_t>(n);
    parallel::parallel_for(0, n, [&](size_t i) { v[i] = keys[i]; });
    parallel::integer_sort_span(
        v, 2 * b,
        [b, tmask](uint64_t p) { return ((p >> 32) << b) | (p & tmask); },
        ws);
    std::span<uint64_t> deduped = ws.take<uint64_t>(n);
    const size_t num = parallel::emit_pack<uint64_t>(
        n, deduped, ws, [&](size_t i, parallel::emitter<uint64_t>& em) {
          if (i == 0 || v[i] != v[i - 1]) em(v[i]);
        });
    benchmark::DoNotOptimize(num);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_SortDedup)
    ->Args({1 << 14, 4})
    ->Args({1 << 18, 1})
    ->Args({1 << 18, 4})
    ->Args({1 << 18, 16});

void BM_ParallelBfs(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const graph::graph g = graph::random_graph(n, 5, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::parallel_bfs_distances(g, 0));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * g.num_edges()));
}
BENCHMARK(BM_ParallelBfs)->Arg(1 << 14)->Arg(1 << 17);

void BM_DecompArbSingleCall(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const graph::graph g = graph::random_graph(n, 5, 4);
  ldd::options opt;
  opt.beta = 0.2;
  for (auto _ : state) {
    ldd::work_graph wg = ldd::work_graph::from(g);
    benchmark::DoNotOptimize(ldd::decomp_arb(wg, opt, nullptr));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * g.num_edges()));
}
BENCHMARK(BM_DecompArbSingleCall)->Arg(1 << 14)->Arg(1 << 17);

void BM_ConnectedComponentsEndToEnd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const graph::graph g = graph::random_graph(n, 5, 5);
  cc::cc_options opt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cc::connected_components(g, opt));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * g.num_edges()));
}
BENCHMARK(BM_ConnectedComponentsEndToEnd)->Arg(1 << 14)->Arg(1 << 17);

// Same query through a warm cc_engine: the delta against EndToEnd is the
// per-query allocation/faulting cost the engine eliminates.
void BM_CcEngineWarmRun(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const graph::graph g = graph::random_graph(n, 5, 5);
  cc::cc_engine engine;
  engine.run(g);
  engine.run(g);  // second run consolidates the arenas
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(g).data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * g.num_edges()));
}
BENCHMARK(BM_CcEngineWarmRun)->Arg(1 << 14)->Arg(1 << 17);

void BM_SampleSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  parallel::rng gen(6);
  std::vector<uint64_t> base(n);
  for (size_t i = 0; i < n; ++i) base[i] = gen[i];
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint64_t> v = base;
    state.ResumeTiming();
    parallel::sample_sort(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_SampleSort)->Arg(1 << 16)->Arg(1 << 19);

void BM_Histogram(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  parallel::rng gen(7);
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = static_cast<uint32_t>(gen[i] % 4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        parallel::histogram(n, 4096, [&](size_t i) { return keys[i]; }));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_Histogram)->Arg(1 << 16)->Arg(1 << 20);

void BM_SpanningForest(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const graph::graph g = graph::random_graph(n, 5, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cc::spanning_forest(g));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * g.num_edges()));
}
BENCHMARK(BM_SpanningForest)->Arg(1 << 14)->Arg(1 << 17);

// Labels + forest through a warm sf_engine, on the SAME graph as
// BM_CcEngineWarmRun: the pair is the cost of carrying witnesses through
// the pipeline (acceptance target: within 1.2x of labels-only).
void BM_SfEngineWarmRun(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const graph::graph g = graph::random_graph(n, 5, 5);
  cc::sf_engine engine;
  engine.run(g);
  engine.run(g);  // second run consolidates the arenas
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(g).labels.data());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * g.num_edges()));
}
BENCHMARK(BM_SfEngineWarmRun)->Arg(1 << 14)->Arg(1 << 17);

// Console output as usual, plus a per-benchmark collection of the
// individual repetition times so the JSON summary can report median + min
// regardless of google-benchmark's own aggregate naming.
class MicroJsonReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      if (r.run_type == Run::RT_Iteration && !r.error_occurred) {
        const double unit = benchmark::GetTimeUnitMultiplier(r.time_unit);
        samples_[r.benchmark_name()].push_back(r.GetAdjustedRealTime() / unit);
      }
    }
    ConsoleReporter::ReportRuns(reports);
  }

  std::vector<pcc::bench::bench_record> records() const {
    std::vector<pcc::bench::bench_record> out;
    for (const auto& [name, times] : samples_) {
      std::vector<double> sorted = times;
      std::sort(sorted.begin(), sorted.end());
      const size_t slash = name.find('/');
      pcc::bench::bench_record rec;
      rec.kernel = name.substr(0, slash);
      if (slash == std::string::npos) {
        rec.graph = "-";
      } else {
        // "BM_Foo/16384" -> "n=16384"; multi-arg benchmarks (the dedup
        // pair's size/duplication grid) become "n=262144,4".
        std::string suffix = name.substr(slash + 1);
        for (char& c : suffix) {
          if (c == '/') c = ',';
        }
        rec.graph = "n=" + suffix;
      }
      rec.stats = {sorted[sorted.size() / 2], sorted.front(),
                   static_cast<int>(sorted.size())};
      out.push_back(std::move(rec));
    }
    return out;
  }

 private:
  std::map<std::string, std::vector<double>> samples_;  // insertion-stable
};

}  // namespace

int main(int argc, char** argv) {
  // `--reps N` (or PCC_TRIALS) becomes --benchmark_repetitions=N; all other
  // arguments pass through to google-benchmark untouched.
  int reps = 0;
  if (const char* s = std::getenv("PCC_TRIALS"); s != nullptr) {
    reps = std::atoi(s);
  }
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string reps_flag;
  if (reps > 0) {
    reps_flag = "--benchmark_repetitions=" + std::to_string(reps);
    args.push_back(reps_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  pcc::bench::apply_thread_env();
  MicroJsonReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  pcc::bench::write_bench_json("results/BENCH_micro.json", "micro",
                               reporter.records());
  benchmark::Shutdown();
  return 0;
}
