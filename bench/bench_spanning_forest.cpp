// Extra (extension feature): spanning-forest generation head-to-head —
// the decomposition-based spanning forest (this library's extension of the
// paper's algorithm) against the PRM and PBBS spanning-forest baselines
// and the sequential union-find forest.
//
// Note the baselines compute forests implicitly through their union-find
// structure; to compare like for like, each is timed producing an explicit
// edge list.

#include <cstdio>

#include "bench_common.hpp"
#include "core/spanning_forest.hpp"

namespace {

using namespace pcc;

// Sequential forest via union-find (the edge list serial-SF implies).
std::vector<graph::edge> serial_forest(const graph::graph& g) {
  baselines::union_find uf(g.num_vertices());
  std::vector<graph::edge> forest;
  for (size_t u = 0; u < g.num_vertices(); ++u) {
    for (vertex_id w : g.neighbors(static_cast<vertex_id>(u))) {
      if (u < w && uf.unite(static_cast<vertex_id>(u), w)) {
        forest.push_back({static_cast<vertex_id>(u), w});
      }
    }
  }
  return forest;
}

bool forest_valid(const graph::graph& g, std::vector<graph::edge> forest,
                  size_t expected_size) {
  if (forest.size() != expected_size) return false;
  baselines::union_find uf(g.num_vertices());
  for (auto [u, w] : forest) {
    if (!uf.unite(u, w)) return false;  // cycle
  }
  return true;
}

}  // namespace

int main() {
  using namespace pcc::bench;

  print_header("Spanning forest (extension): decomposition-based vs baselines");

  const size_t base = scaled(100000);
  std::vector<named_graph> suite;
  suite.push_back({"random", graph::random_graph(base, 5, 91)});
  suite.push_back({"rMat", graph::rmat_graph(base, 5 * base, 92,
                                             {.a = 0.5, .b = 0.1, .c = 0.1})});
  suite.push_back({"3D-grid", graph::grid3d_graph(base, true, 93)});
  suite.push_back({"line", graph::line_graph(2 * base, false)});

  std::printf("\n%-12s %16s %16s %14s\n", "graph", "decomp-SF (s)",
              "serial-SF (s)", "forest edges");
  for (const auto& [gname, g] : suite) {
    const auto expected = serial_forest(g);
    std::vector<graph::edge> forest;
    const double t_ours =
        median_time([&] { forest = cc::spanning_forest(g); });
    if (!forest_valid(g, forest, expected.size())) {
      std::fprintf(stderr, "BUG: invalid forest on %s\n", gname.c_str());
      return 1;
    }
    const double t_serial = median_time([&] { (void)serial_forest(g); });
    std::printf("%-12s %16.4f %16.4f %14zu\n", gname.c_str(), t_ours,
                t_serial, forest.size());
  }
  std::printf("\nEvery forest checked: exact size, acyclic, edges of the "
              "graph.\n");
  return 0;
}
