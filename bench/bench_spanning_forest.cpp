// Extra (extension feature): spanning-forest generation head-to-head —
// the witness-carrying decomposition pipeline (sf_engine) against the
// sequential union-find forest — plus the forest-vs-labels A/B: the same
// decompose-contract run with and without witness pullback, warm engines
// and one-shot, at two sizes. The acceptance target for the pipeline is
// sf-engine-warm within 1.2x of cc-engine-warm on the same graph.
//
// Every row lands in results/BENCH_sf.json (PCC_BENCH_JSON overrides the
// path, =off suppresses it) with threads / backend / git-sha provenance,
// so the witness-overhead trajectory is tracked across commits next to
// BENCH_micro. PCC_SCALE / PCC_TRIALS / PCC_THREADS / PCC_BACKEND mean
// what they mean for every other harness.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/sf_engine.hpp"
#include "core/spanning_forest.hpp"

namespace {

using namespace pcc;

// Sequential forest via union-find (the edge list serial-SF implies).
std::vector<graph::edge> serial_forest(const graph::graph& g) {
  baselines::union_find uf(g.num_vertices());
  std::vector<graph::edge> forest;
  for (size_t u = 0; u < g.num_vertices(); ++u) {
    for (vertex_id w : g.neighbors(static_cast<vertex_id>(u))) {
      if (u < w && uf.unite(static_cast<vertex_id>(u), w)) {
        forest.push_back({static_cast<vertex_id>(u), w});
      }
    }
  }
  return forest;
}

bool forest_valid(const graph::graph& g, std::span<const graph::edge> forest,
                  size_t expected_size) {
  if (forest.size() != expected_size) return false;
  baselines::union_find uf(g.num_vertices());
  for (auto [u, w] : forest) {
    if (!uf.unite(u, w)) return false;  // cycle
  }
  return true;
}

}  // namespace

int main() {
  using namespace pcc::bench;

  print_header("Spanning forest (extension): witness pipeline vs baselines");
  std::vector<bench_record> records;

  // --- Head-to-head on the graph family suite. --------------------------
  const size_t base = scaled(100000);
  std::vector<named_graph> suite;
  suite.push_back({"random", graph::random_graph(base, 5, 91)});
  suite.push_back({"rMat", graph::rmat_graph(base, 5 * base, 92,
                                             {.a = 0.5, .b = 0.1, .c = 0.1})});
  suite.push_back({"3D-grid", graph::grid3d_graph(base, true, 93)});
  suite.push_back({"line", graph::line_graph(2 * base, false)});

  cc::sf_engine engine;
  std::printf("\n%-12s %16s %16s %14s\n", "graph", "decomp-SF (s)",
              "serial-SF (s)", "forest edges");
  for (const auto& [gname, g] : suite) {
    const auto expected = serial_forest(g);
    engine.run(g);  // warm-up: the suite times the steady-state query
    std::span<const graph::edge> forest;
    const time_stats ours =
        time_stats_of([&] { forest = engine.run(g).forest; });
    if (!forest_valid(g, forest, expected.size())) {
      std::fprintf(stderr, "BUG: invalid forest on %s\n", gname.c_str());
      return 1;
    }
    const time_stats serial = time_stats_of([&] { (void)serial_forest(g); });
    std::printf("%-12s %16.4f %16.4f %14zu\n", gname.c_str(), ours.median_s,
                serial.median_s, forest.size());
    records.push_back({"decomp-SF-warm", gname, ours, "spanning-forest"});
    records.push_back({"serial-SF", gname, serial, "serial-sf"});
  }

  // --- The witness overhead A/B. ----------------------------------------
  // Same random graph, four measurements: labels+forest vs labels-only,
  // each through a warm engine (steady-state query cost) and one-shot
  // (cold object, allocation included).
  std::printf("\n%-10s %16s %16s %16s %16s %8s\n", "graph", "sf-warm (s)",
              "cc-warm (s)", "sf-oneshot (s)", "cc-oneshot (s)", "ratio");
  for (const size_t n : {size_t{1} << 14, size_t{1} << 17}) {
    const graph::graph g = graph::random_graph(scaled(n), 5, 5);
    const std::string gname = "n=" + std::to_string(g.num_vertices());

    cc::sf_engine sf;
    sf.run(g);
    sf.run(g);  // second run consolidates the arenas
    const time_stats sf_warm =
        time_stats_of([&] { (void)sf.run(g).labels.data(); });

    cc::cc_engine cc;
    cc.run(g);
    cc.run(g);
    const time_stats cc_warm = time_stats_of([&] { (void)cc.run(g).data(); });

    const time_stats sf_cold = time_stats_of([&] {
      cc::sf_engine fresh;
      (void)fresh.run(g).forest.size();
    });
    const time_stats cc_cold =
        time_stats_of([&] { (void)cc::connected_components(g); });

    const double ratio = sf_warm.median_s / cc_warm.median_s;
    std::printf("%-10s %16.4f %16.4f %16.4f %16.4f %7.2fx\n", gname.c_str(),
                sf_warm.median_s, cc_warm.median_s, sf_cold.median_s,
                cc_cold.median_s, ratio);
    records.push_back({"sf-engine-warm", gname, sf_warm, "spanning-forest"});
    records.push_back({"cc-engine-warm", gname, cc_warm, ""});
    records.push_back({"sf-oneshot", gname, sf_cold, "spanning-forest"});
    records.push_back({"cc-oneshot", gname, cc_cold, ""});
  }

  std::printf("\nEvery forest checked: exact size, acyclic, edges of the "
              "graph.\nratio = sf-engine-warm / cc-engine-warm (target "
              "<= 1.2x at full scale).\n");
  write_bench_json("results/BENCH_sf.json", "spanning_forest", records);
  return 0;
}
