// Extra (beyond the paper's figures): the classic super-linear-work PRAM
// algorithms the paper's introduction surveys — Shiloach-Vishkin,
// Awerbuch-Shiloach, random-mate (Reif/Phillips), label propagation —
// against the linear-work decomposition CC and the sequential baseline.
//
// Shape expectation: the classics revisit every edge each round, so their
// time per edge grows with the number of rounds (log n for SV/AS/random-
// mate, diameter for label propagation); decomp-arb-hybrid-CC's per-edge
// cost stays flat. label-prop is skipped on `line` (diameter-many rounds).

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcc;
  using namespace pcc::bench;

  print_header("Classic O(m log n)-work PRAM algorithms vs linear-work CC");

  const size_t base = scaled(50000);
  std::vector<named_graph> suite;
  suite.push_back({"random", graph::random_graph(base, 5, 71)});
  suite.push_back({"rMat", graph::rmat_graph(base, 5 * base, 72,
                                             {.a = 0.5, .b = 0.1, .c = 0.1})});
  suite.push_back({"3D-grid", graph::grid3d_graph(base, true, 73)});
  suite.push_back({"line", graph::line_graph(base, false)});

  struct impl {
    std::string name;
    std::function<std::vector<vertex_id>(const graph::graph&)> run;
    bool skip_line;
  };
  const std::vector<impl> impls = {
      {"serial-SF", &baselines::serial_sf_components, false},
      {"decomp-arb-hybrid-CC",
       [](const graph::graph& g) {
         cc::cc_options opt;
         opt.algorithm = "decomp";
         return cc::connected_components(g, opt);
       },
       false},
      {"shiloach-vishkin", &baselines::shiloach_vishkin_components, false},
      {"awerbuch-shiloach", &baselines::awerbuch_shiloach_components, false},
      {"random-mate",
       [](const graph::graph& g) { return baselines::random_mate_components(g); },
       false},
      {"label-prop", &baselines::label_prop_components, true},
  };

  std::printf("\n%-22s", "Implementation");
  for (const auto& [name, g] : suite) std::printf(" %12s", name.c_str());
  std::printf("   (seconds)\n");
  for (const auto& im : impls) {
    std::printf("%-22s", im.name.c_str());
    for (const auto& [gname, g] : suite) {
      if (im.skip_line && gname == "line") {
        std::printf(" %12s", "(skipped)");
        continue;
      }
      std::vector<vertex_id> labels;
      const double t = median_time([&] { labels = im.run(g); });
      if (!baselines::labels_equivalent(
              labels, baselines::serial_sf_components(g))) {
        std::fprintf(stderr, "BUG: %s wrong on %s\n", im.name.c_str(),
                     gname.c_str());
        return 1;
      }
      std::printf(" %12.4f", t);
    }
    std::printf("\n");
  }
  std::printf("\nAll labelings verified against serial-SF.\n");
  return 0;
}
