// Shared infrastructure for the table/figure benchmark harnesses.
//
// Scaling: the paper's graphs have 1e8-5e8 edges and ran on a 40-core
// 256 GB machine. The harnesses default to ~1e6-edge instances so the whole
// suite finishes in minutes on a laptop; set PCC_SCALE (a float multiplier,
// default 1.0) to grow or shrink every input, and PCC_TRIALS to change the
// median-of-k trial count (default 3, as in the paper).
#pragma once

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pcc.hpp"

namespace pcc::bench {

inline const char* backend_name(parallel::backend b) {
  return b == parallel::backend::kThreadPool ? "pool" : "openmp";
}

inline const char* current_backend_name() {
  return backend_name(parallel::current_backend());
}

inline double scale_factor() {
  const char* s = std::getenv("PCC_SCALE");
  if (s == nullptr) return 1.0;
  const double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

inline int num_trials() {
  const char* s = std::getenv("PCC_TRIALS");
  if (s == nullptr) return 3;
  const int v = std::atoi(s);
  return v > 0 ? v : 3;
}

inline size_t scaled(size_t base) {
  return std::max<size_t>(16, static_cast<size_t>(base * scale_factor()));
}

// The paper's six inputs (Table 1), at bench scale. `line` keeps its
// defining property (diameter = n - 1); rMat2 and com-Orkut keep their
// edge-to-vertex ratios (~400 and ~38).
struct named_graph {
  std::string name;
  graph::graph g;
};

inline std::vector<named_graph> paper_graph_suite() {
  // PCC_GRAPH=path replaces the synthetic suite with a real input file
  // (any format load_graph understands), so the harnesses can reproduce
  // the paper's numbers on the actual SNAP graphs when they are on disk.
  if (const char* path = std::getenv("PCC_GRAPH"); path != nullptr) {
    std::vector<named_graph> suite;
    suite.push_back({path, graph::load_graph(path)});
    return suite;
  }
  const size_t base = scaled(100000);
  std::vector<named_graph> suite;
  suite.push_back({"random", graph::random_graph(base, 5, 101)});
  suite.push_back({"rMat", graph::rmat_graph(base, 5 * base, 102,
                                             {.a = 0.5, .b = 0.1, .c = 0.1})});
  suite.push_back(
      {"rMat2", graph::rmat_graph(std::max<size_t>(base / 25, 64),
                                  400 * std::max<size_t>(base / 25, 64), 103,
                                  {.a = 0.5, .b = 0.1, .c = 0.1})});
  suite.push_back({"3D-grid", graph::grid3d_graph(base, true, 104)});
  suite.push_back({"line", graph::line_graph(5 * base, false)});
  suite.push_back(
      {"com-Orkut-sim", graph::social_network_like(std::max<size_t>(base / 6, 64), 105)});
  return suite;
}

// Median + min of k wall-clock timings of fn(), in seconds (the paper
// reports the median of three trials; the min is the noise floor).
struct time_stats {
  double median_s = 0;
  double min_s = 0;
  int reps = 0;
};

inline time_stats time_stats_of(const std::function<void()>& fn,
                                int trials_override = 0) {
  const int trials = trials_override > 0 ? trials_override : num_trials();
  std::vector<double> times(trials);
  for (int t = 0; t < trials; ++t) {
    parallel::timer timer;
    fn();
    times[t] = timer.elapsed();
  }
  std::sort(times.begin(), times.end());
  return {times[trials / 2], times[0], trials};
}

// Median-of-k wall-clock time of fn() in seconds.
inline double median_time(const std::function<void()>& fn,
                          int trials_override = 0) {
  return time_stats_of(fn, trials_override).median_s;
}

// ---------------------------------------------------------------------------
// Machine-readable results: every harness can dump its measurements as JSON
// (results/BENCH_<name>.json) so the perf trajectory is tracked across
// commits. One record per (kernel, graph, threads, backend) tuple — each
// row carries the worker count and scheduler backend it was measured
// under, so one file can hold a whole thread sweep; the top-level
// "threads" field is only the global worker count at write time (kept for
// older consumers). PCC_BENCH_JSON overrides the output path;
// PCC_BENCH_JSON=off suppresses the file.

struct bench_record {
  std::string kernel;  // kernel / implementation name
  std::string graph;   // input id ("random", "n=16384", ...)
  time_stats stats;
  // Registered cc::algorithm behind the row (for "auto" rows, the
  // selector's pick). Left empty for rows with no registry algorithm
  // behind them — micro kernels, primitives — and OMITTED from the JSON
  // then (it used to default to `kernel`, which made the field a lie for
  // every micro row).
  std::string algorithm;
  // Worker count and scheduler backend the row was measured under.
  // Defaulted from the global state at record creation so existing
  // aggregate-initialized rows stay correct; thread-sweep harnesses set
  // them explicitly per configuration.
  int threads = parallel::num_workers();
  std::string backend = current_backend_name();
  // Locality relabeling the input was under when measured (reorder_name
  // spelling; "none" unless the harness relabeled the graph).
  std::string reorder = "none";
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

inline void write_bench_json(const std::string& default_path,
                             const std::string& bench_name,
                             const std::vector<bench_record>& records) {
  std::string path = default_path;
  if (const char* p = std::getenv("PCC_BENCH_JSON"); p != nullptr) path = p;
  if (path.empty() || path == "off") return;
  std::error_code ec;  // best-effort: a bench run must not die on mkdir
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"threads\": %d,\n",
               json_escape(bench_name).c_str(), parallel::num_workers());
  // Build provenance (injected by bench/CMakeLists.txt) keeps the perf
  // trajectory comparable across PRs: every result file says which
  // commit, compiler, and flags produced it.
#ifndef PCC_BENCH_GIT_SHA
#define PCC_BENCH_GIT_SHA "unknown"
#endif
#ifndef PCC_BENCH_COMPILER
#define PCC_BENCH_COMPILER "unknown"
#endif
#ifndef PCC_BENCH_CXX_FLAGS
#define PCC_BENCH_CXX_FLAGS ""
#endif
  std::fprintf(f, "  \"git_sha\": \"%s\",\n  \"compiler\": \"%s\",\n",
               json_escape(PCC_BENCH_GIT_SHA).c_str(),
               json_escape(PCC_BENCH_COMPILER).c_str());
  std::fprintf(f, "  \"cxx_flags\": \"%s\",\n",
               json_escape(PCC_BENCH_CXX_FLAGS).c_str());
  std::fprintf(f, "  \"scale\": %.6g,\n  \"entries\": [\n", scale_factor());
  for (size_t i = 0; i < records.size(); ++i) {
    const bench_record& r = records[i];
    std::string algorithm_field;
    if (!r.algorithm.empty()) {
      algorithm_field =
          "\"algorithm\": \"" + json_escape(r.algorithm) + "\", ";
    }
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"graph\": \"%s\", %s"
                 "\"threads\": %d, \"backend\": \"%s\", "
                 "\"reorder\": \"%s\", "
                 "\"median_s\": %.9g, \"min_s\": %.9g, \"reps\": %d}%s\n",
                 json_escape(r.kernel).c_str(), json_escape(r.graph).c_str(),
                 algorithm_field.c_str(), r.threads,
                 json_escape(r.backend).c_str(),
                 json_escape(r.reorder).c_str(),
                 r.stats.median_s, r.stats.min_s, r.stats.reps,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "bench: wrote %s (%zu entries)\n", path.c_str(),
               records.size());
}

// All connectivity implementations, ours and baselines, keyed by the names
// used in Table 2 of the paper; `algorithm` is the cc::algorithm registry
// name the row resolves to.
struct cc_impl {
  std::string name;
  std::string algorithm;
  bool parallel;  // false for serial-SF (no parallel column)
  std::function<std::vector<vertex_id>(const graph::graph&)> run;
};

// A registry entry as a vector-returning closure. Each impl owns one
// algo_workspace shared across every graph and trial, so the timed region
// excludes transient allocation after the first (warm-up) trial — the
// measurement the paper's repeated-trials protocol wants.
inline std::function<std::vector<vertex_id>(const graph::graph&)>
registry_runner(const std::string& algorithm) {
  const cc::algorithm* algo = cc::find_algorithm(algorithm);
  if (algo == nullptr) {
    std::fprintf(stderr, "bench: unknown algorithm %s\n", algorithm.c_str());
    std::abort();
  }
  return [algo, ws = std::make_shared<cc::algo_workspace>()](
             const graph::graph& g) {
    cc::cc_options opt;
    opt.beta = 0.2;
    std::vector<vertex_id> labels(g.num_vertices());
    cc::run_algorithm(*algo, g, opt, *ws, labels);
    return labels;
  };
}

inline std::vector<cc_impl> table2_implementations() {
  const auto row = [](const char* name, const char* algorithm, bool parallel) {
    return cc_impl{name, algorithm, parallel, registry_runner(algorithm)};
  };
  return {
      row("serial-SF", "serial-sf", false),
      row("decomp-arb-CC", "decomp-arb", true),
      row("decomp-arb-hybrid-CC", "decomp-arb-hybrid", true),
      row("decomp-min-CC", "decomp-min", true),
      row("parallel-SF-PBBS", "parallel-sf-pbbs", true),
      row("parallel-SF-PRM", "parallel-sf-prm", true),
      row("hybrid-BFS-CC", "hybrid-bfs", true),
      row("multistep-CC", "multistep", true),
  };
}

// Run fn with the given worker count on the active backend.
inline double timed_with_threads(int threads,
                                 const std::function<void()>& fn) {
  parallel::scoped_workers guard(threads);
  return median_time(fn);
}

// Thread counts for scaling sweeps: every count up to min(4, ncores), the
// powers of two up to max(4, ncores), and ncores itself — so 1..ncores is
// covered geometrically with exact endpoints, and a 1-2 core host still
// produces multi-thread rows (oversubscribed, but labeled by their real
// `threads` value; the JSON never lies about what ran).
// PCC_SWEEP_THREADS="1,2,8" overrides the list; a malformed list is
// rejected with a diagnostic and the default is used instead.
inline std::vector<int> sweep_thread_counts() {
  std::vector<int> counts;
  if (const char* s = std::getenv("PCC_SWEEP_THREADS")) {
    const char* p = s;
    bool ok = *p != '\0';
    while (ok && *p != '\0') {
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(p, &end, 10);
      if (end == p || errno == ERANGE || v < 1 || v > 1024 ||
          (*end != '\0' && *end != ',')) {
        ok = false;
        break;
      }
      counts.push_back(static_cast<int>(v));
      p = *end == ',' ? end + 1 : end;
    }
    if (!ok || counts.empty()) {
      std::fprintf(stderr,
                   "bench: ignoring invalid PCC_SWEEP_THREADS=\"%s\" "
                   "(expected comma-separated integers in [1, 1024])\n",
                   s);
      counts.clear();
    }
  }
  if (counts.empty()) {
    const int hw =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    for (int t = 1; t <= std::min(4, hw); ++t) counts.push_back(t);
    for (int t = 1; t <= std::max(4, hw); t *= 2) counts.push_back(t);
    counts.push_back(hw);
  }
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

// Honour PCC_BACKEND=openmp|pool (selects the scheduler backend) and
// PCC_THREADS (overrides the active backend's default worker count).
inline void apply_thread_env() {
  if (const char* b = std::getenv("PCC_BACKEND")) {
    if (std::strcmp(b, "pool") == 0) {
      parallel::set_backend(parallel::backend::kThreadPool);
    } else if (std::strcmp(b, "openmp") == 0) {
      parallel::set_backend(parallel::backend::kOpenMP);
    } else {
      std::fprintf(stderr,
                   "bench: ignoring unknown PCC_BACKEND=\"%s\" "
                   "(expected openmp or pool)\n",
                   b);
    }
  }
  const char* s = std::getenv("PCC_THREADS");
  if (s != nullptr) {
    const int t = std::atoi(s);
    if (t > 0) parallel::set_num_workers(t);
  }
}

inline void print_header(const std::string& title) {
  apply_thread_env();
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("(PCC_SCALE=%.3g, trials=%d, threads=%d, backend=%s)\n",
              scale_factor(), num_trials(), parallel::num_workers(),
              current_backend_name());
  std::printf("================================================================\n");
}

}  // namespace pcc::bench
