// Figure 2 of the paper: running time versus number of threads for every
// implementation on every input. The paper sweeps 2..40 cores plus
// hyper-threading; this harness sweeps 1..max(4, hardware threads) in
// powers of two (oversubscription beyond the physical core count still
// exercises the harness; self-relative speedup is only meaningful on a
// multicore host).
//
// As in the paper, hybrid-BFS-CC and multistep-CC are skipped on `line`
// (they get no speedup there and dominate the runtime).

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcc;
  using namespace pcc::bench;

  print_header("Figure 2: running time (seconds) vs number of threads");

  const int hw = parallel::num_workers();
  std::vector<int> threads;
  for (int t = 1; t <= std::max(4, hw); t *= 2) threads.push_back(t);

  auto suite = paper_graph_suite();
  const auto impls = table2_implementations();

  for (const auto& [gname, g] : suite) {
    std::printf("\n--- %s (n=%zu, m=%zu) ---\n", gname.c_str(),
                g.num_vertices(), g.num_undirected_edges());
    std::printf("%-22s", "threads:");
    for (int t : threads) std::printf(" %9d", t);
    std::printf("\n");
    for (const auto& impl : impls) {
      const bool skip = gname == "line" &&
                        (impl.name == "hybrid-BFS-CC" ||
                         impl.name == "multistep-CC");
      std::printf("%-22s", impl.name.c_str());
      if (skip) {
        std::printf("  (omitted on line, as in the paper)\n");
        continue;
      }
      if (!impl.parallel) {
        // serial-SF: one number, repeated as the flat reference line.
        const double t1 = timed_with_threads(1, [&] { (void)impl.run(g); });
        for (size_t i = 0; i < threads.size(); ++i) std::printf(" %9.4f", t1);
        std::printf("\n");
        continue;
      }
      for (int t : threads) {
        std::printf(" %9.4f", timed_with_threads(t, [&] { (void)impl.run(g); }));
      }
      std::printf("\n");
    }
  }
  return 0;
}
