// Ablation benches for the design choices DESIGN.md calls out (beyond the
// paper's figures):
//   (a) shift schedule: the paper's permutation-chunk simulation vs exact
//       Exp(beta) shifts — both are valid; the simulation skips computing
//       and sorting real shift values;
//   (b) duplicate-edge removal during contraction on vs off — the paper
//       notes correctness holds either way; dedup pays a hash-table pass to
//       shrink later levels;
//   (c) the hybrid's dense-threshold — the paper uses 20% of the vertices;
//   (e) the "auto" selector vs every fixed algorithm on one instance of
//       each generator class, dumped to results/BENCH_ablation.json.

#include <cstdio>
#include <cstring>

#include "bench_common.hpp"

int main() {
  using namespace pcc;
  using namespace pcc::bench;

  print_header("Ablations: shift schedule / dedup / hybrid threshold");

  const size_t base = scaled(50000);
  std::vector<named_graph> suite;
  suite.push_back({"random", graph::random_graph(base, 5, 61)});
  suite.push_back({"rMat", graph::rmat_graph(base, 5 * base, 62,
                                             {.a = 0.5, .b = 0.1, .c = 0.1})});
  suite.push_back({"3D-grid", graph::grid3d_graph(base, true, 63)});

  std::printf("\n(a) shift schedule (decomp-arb-CC, beta=0.2)\n");
  std::printf("%-10s %16s %16s\n", "graph", "perm-chunks (s)", "exact-exp (s)");
  for (const auto& [gname, g] : suite) {
    cc::cc_options opt;
    opt.algorithm = "decomp";
    opt.variant = cc::decomp_variant::kArb;
    opt.shifts = ldd::shift_mode::kPermutationChunks;
    const double t_chunk =
        median_time([&] { (void)cc::connected_components(g, opt); });
    opt.shifts = ldd::shift_mode::kExponentialShifts;
    const double t_exp =
        median_time([&] { (void)cc::connected_components(g, opt); });
    std::printf("%-10s %16.4f %16.4f\n", gname.c_str(), t_chunk, t_exp);
  }

  std::printf("\n(b) duplicate-edge removal during contraction "
              "(decomp-arb-hybrid-CC, beta=0.2)\n");
  std::printf("%-10s %12s %12s %14s %14s\n", "graph", "dedup (s)",
              "no-dedup (s)", "lvl1 edges(d)", "lvl1 edges(n)");
  for (const auto& [gname, g] : suite) {
    cc::cc_options opt;
    opt.algorithm = "decomp";
    opt.variant = cc::decomp_variant::kArbHybrid;
    cc::cc_stats with_stats;
    opt.dedup = true;
    const double t_with = median_time(
        [&] { (void)cc::connected_components(g, opt); });
    (void)cc::connected_components(g, opt, &with_stats);
    cc::cc_stats without_stats;
    opt.dedup = false;
    const double t_without = median_time(
        [&] { (void)cc::connected_components(g, opt); });
    (void)cc::connected_components(g, opt, &without_stats);
    const size_t lvl1_with =
        with_stats.levels.size() > 1 ? with_stats.levels[1].m : 0;
    const size_t lvl1_without =
        without_stats.levels.size() > 1 ? without_stats.levels[1].m : 0;
    std::printf("%-10s %12.4f %12.4f %14zu %14zu\n", gname.c_str(), t_with,
                t_without, lvl1_with, lvl1_without);
  }

  std::printf("\n(c) hybrid dense-threshold sweep (decomp-arb-hybrid-CC, "
              "beta=0.2; paper uses 0.20)\n");
  std::printf("%-10s", "graph");
  const std::vector<double> thresholds = {0.01, 0.05, 0.1, 0.2, 0.5, 1.1};
  for (double th : thresholds) std::printf(" %9.2f", th);
  std::printf("\n");
  for (const auto& [gname, g] : suite) {
    std::printf("%-10s", gname.c_str());
    for (double th : thresholds) {
      cc::cc_options opt;
      opt.algorithm = "decomp";
      opt.variant = cc::decomp_variant::kArbHybrid;
      opt.dense_threshold = th;
      std::printf(" %9.4f",
                  median_time([&] { (void)cc::connected_components(g, opt); }));
    }
    std::printf("\n");
  }
  std::printf("(threshold 1.1 never goes dense == plain decomp-arb plus "
              "bookkeeping)\n");

  std::printf("\n(d) high-degree edge-parallel threshold: retired. Rounds "
              "are now edge-balanced unconditionally (frontier_edge_for "
              "splits the flattened edge space into near-equal chunks), "
              "which subsumes paper Section 4's per-hub threshold; "
              "cc_options::parallel_edge_threshold is ignored.\n");

  // (e) Algorithm selection: "auto" (probe + core/select heuristics)
  // against a panel of fixed algorithms, one instance per generator class.
  // The JSON this writes is the record the selector is calibrated against:
  // auto should sit within a few percent of the best fixed algorithm on
  // every class and far ahead of the worst.
  std::printf("\n(e) algorithm selection: auto vs fixed algorithms "
              "(median of %d, %d thread(s))\n", num_trials(),
              parallel::num_workers());
  // Instances are sized so each fixed run takes >= ~1ms at 1 thread:
  // below that, the probe's fixed cost and timer noise dominate the
  // auto-vs-fixed comparison the selector is calibrated against.
  const size_t sel_base = scaled(250000);
  std::vector<named_graph> classes;
  classes.push_back({"random", graph::random_graph(sel_base, 5, 71)});
  classes.push_back({"rMat", graph::rmat_graph(sel_base, 5 * sel_base, 72,
                                               {.a = 0.5, .b = 0.1, .c = 0.1})});
  classes.push_back({"grid", graph::grid3d_graph(sel_base, true, 73)});
  classes.push_back({"line", graph::line_graph(scaled(2000000), false)});
  classes.push_back(
      {"social",
       graph::social_network_like(std::max<size_t>(sel_base / 2, 64), 74)});

  const char* fixed[] = {"decomp-arb-hybrid", "serial-sf-rem",
                         "parallel-sf-rem",   "hybrid-bfs",
                         "label-prop",        "shiloach-vishkin",
                         "afforest",          "lt-psa"};

  std::vector<bench_record> records;
  cc::algo_workspace ws;
  std::printf("%-10s %18s %12s %12s\n", "graph", "algorithm", "median (s)",
              "vs auto");
  for (const auto& [gname, g] : classes) {
    ws.reserve(g.num_vertices(), g.num_edges());
    std::vector<vertex_id> labels(g.num_vertices());
    std::vector<const char*> names = {"auto"};
    names.insert(names.end(), std::begin(fixed), std::end(fixed));
    // Trials are interleaved round-robin across algorithms rather than
    // timed back-to-back per algorithm: on one core the cache/allocator
    // state left by the previous run biases back-to-back medians by more
    // than the few-percent margins this table exists to measure.
    const char* auto_pick = nullptr;
    cc::cc_options opt;
    std::vector<std::vector<double>> times(names.size());
    for (int t = -1; t < num_trials(); ++t) {
      // Rotate the starting position each round so no algorithm always
      // inherits the same predecessor's cache footprint.
      for (size_t i = 0; i < names.size(); ++i) {
        const size_t a =
            (i + static_cast<size_t>(std::max(t, 0))) % names.size();
        const cc::algorithm* algo = cc::find_algorithm(names[a]);
        if (t < 0) {  // warm-up round: workspace sizing, selector pick
          cc::cc_stats stats;
          cc::run_algorithm(*algo, g, opt, ws, labels, &stats);
          if (a == 0) auto_pick = stats.algorithm;
          continue;
        }
        parallel::timer timer;
        cc::run_algorithm(*algo, g, opt, ws, labels);
        times[a].push_back(timer.elapsed());
      }
    }
    double auto_median = 0;
    for (size_t a = 0; a < names.size(); ++a) {
      std::sort(times[a].begin(), times[a].end());
      const time_stats t{times[a][times[a].size() / 2], times[a].front(),
                         static_cast<int>(times[a].size())};
      if (a == 0) {
        auto_median = t.median_s;
        records.push_back({"auto", gname, t, auto_pick});
        std::printf("%-10s %18s %12.4f %12s (selected %s)\n", gname.c_str(),
                    "auto", t.median_s, "1.00x", auto_pick);
      } else {
        records.push_back({names[a], gname, t, names[a]});
        std::printf("%-10s %18s %12.4f %11.2fx\n", gname.c_str(), names[a],
                    t.median_s, t.median_s / std::max(auto_median, 1e-9));
      }
    }
  }
  write_bench_json("results/BENCH_ablation.json", "ablation", records);
  return 0;
}
