// Ablation benches for the design choices DESIGN.md calls out (beyond the
// paper's figures):
//   (a) shift schedule: the paper's permutation-chunk simulation vs exact
//       Exp(beta) shifts — both are valid; the simulation skips computing
//       and sorting real shift values;
//   (b) duplicate-edge removal during contraction on vs off — the paper
//       notes correctness holds either way; dedup pays a hash-table pass to
//       shrink later levels;
//   (c) the hybrid's dense-threshold — the paper uses 20% of the vertices.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcc;
  using namespace pcc::bench;

  print_header("Ablations: shift schedule / dedup / hybrid threshold");

  const size_t base = scaled(50000);
  std::vector<named_graph> suite;
  suite.push_back({"random", graph::random_graph(base, 5, 61)});
  suite.push_back({"rMat", graph::rmat_graph(base, 5 * base, 62,
                                             {.a = 0.5, .b = 0.1, .c = 0.1})});
  suite.push_back({"3D-grid", graph::grid3d_graph(base, true, 63)});

  std::printf("\n(a) shift schedule (decomp-arb-CC, beta=0.2)\n");
  std::printf("%-10s %16s %16s\n", "graph", "perm-chunks (s)", "exact-exp (s)");
  for (const auto& [gname, g] : suite) {
    cc::cc_options opt;
    opt.variant = cc::decomp_variant::kArb;
    opt.shifts = ldd::shift_mode::kPermutationChunks;
    const double t_chunk =
        median_time([&] { (void)cc::connected_components(g, opt); });
    opt.shifts = ldd::shift_mode::kExponentialShifts;
    const double t_exp =
        median_time([&] { (void)cc::connected_components(g, opt); });
    std::printf("%-10s %16.4f %16.4f\n", gname.c_str(), t_chunk, t_exp);
  }

  std::printf("\n(b) duplicate-edge removal during contraction "
              "(decomp-arb-hybrid-CC, beta=0.2)\n");
  std::printf("%-10s %12s %12s %14s %14s\n", "graph", "dedup (s)",
              "no-dedup (s)", "lvl1 edges(d)", "lvl1 edges(n)");
  for (const auto& [gname, g] : suite) {
    cc::cc_options opt;
    opt.variant = cc::decomp_variant::kArbHybrid;
    cc::cc_stats with_stats;
    opt.dedup = true;
    const double t_with = median_time(
        [&] { (void)cc::connected_components(g, opt); });
    (void)cc::connected_components(g, opt, &with_stats);
    cc::cc_stats without_stats;
    opt.dedup = false;
    const double t_without = median_time(
        [&] { (void)cc::connected_components(g, opt); });
    (void)cc::connected_components(g, opt, &without_stats);
    const size_t lvl1_with =
        with_stats.levels.size() > 1 ? with_stats.levels[1].m : 0;
    const size_t lvl1_without =
        without_stats.levels.size() > 1 ? without_stats.levels[1].m : 0;
    std::printf("%-10s %12.4f %12.4f %14zu %14zu\n", gname.c_str(), t_with,
                t_without, lvl1_with, lvl1_without);
  }

  std::printf("\n(c) hybrid dense-threshold sweep (decomp-arb-hybrid-CC, "
              "beta=0.2; paper uses 0.20)\n");
  std::printf("%-10s", "graph");
  const std::vector<double> thresholds = {0.01, 0.05, 0.1, 0.2, 0.5, 1.1};
  for (double th : thresholds) std::printf(" %9.2f", th);
  std::printf("\n");
  for (const auto& [gname, g] : suite) {
    std::printf("%-10s", gname.c_str());
    for (double th : thresholds) {
      cc::cc_options opt;
      opt.variant = cc::decomp_variant::kArbHybrid;
      opt.dense_threshold = th;
      std::printf(" %9.4f",
                  median_time([&] { (void)cc::connected_components(g, opt); }));
    }
    std::printf("\n");
  }
  std::printf("(threshold 1.1 never goes dense == plain decomp-arb plus "
              "bookkeeping)\n");

  std::printf("\n(d) high-degree edge-parallel threshold: retired. Rounds "
              "are now edge-balanced unconditionally (frontier_edge_for "
              "splits the flattened edge space into near-equal chunks), "
              "which subsumes paper Section 4's per-hub threshold; "
              "cc_options::parallel_edge_threshold is ignored.\n");
  return 0;
}
