// Figure 8 of the paper: running time of decomp-arb-hybrid-CC versus
// problem size for random graphs with m = 5n (part 1), and versus thread
// count on both scheduler backends (part 2 — the paper's actual figure 8
// axis, 1..40 cores there).
//
// Shape expectations: near-linear growth in m (the algorithm is
// linear-work), and speedup tracking the thread count up to the physical
// core count (flat, noisier beyond it — oversubscribed rows are still
// measured and labeled by their real thread count).

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <random>

#include "bench_common.hpp"

int main() {
  using namespace pcc;
  using namespace pcc::bench;

  print_header(
      "Figure 8: decomp-arb-hybrid-CC time vs problem size (random, m = 5n)");

  // Geometric sweep, mirroring the paper's m = 5e7..5e8 range at bench
  // scale.
  const size_t m_max = scaled(1000000);
  std::vector<size_t> sizes;
  for (size_t m = m_max / 10; m <= m_max; m += m_max / 10) sizes.push_back(m);

  std::printf("%14s %14s %12s %16s\n", "num edges (m)", "num vertices",
              "time (s)", "time / m (ns)");
  double t_first = 0;
  size_t m_first = 0;
  double t_last = 0;
  size_t m_last = 0;
  cc::cc_options opt;
  opt.variant = cc::decomp_variant::kArbHybrid;
  cc::cc_engine engine(opt);  // one engine across sizes and trials
  std::vector<bench_record> records;
  for (size_t m : sizes) {
    const size_t n = std::max<size_t>(m / 5, 16);
    const graph::graph g = graph::random_graph(n, 5, 81 + m);
    const time_stats ts = time_stats_of([&] { (void)engine.run(g); });
    const double t = ts.median_s;
    std::printf("%14zu %14zu %12.4f %16.2f\n", g.num_undirected_edges(), n, t,
                1e9 * t / static_cast<double>(g.num_undirected_edges()));
    bench_record rec;
    rec.kernel = "decomp-arb-hybrid-CC";
    rec.graph = "random-m" + std::to_string(g.num_undirected_edges());
    rec.stats = ts;
    rec.algorithm = "decomp-arb-hybrid";  // registry name behind the row
    records.push_back(std::move(rec));
    if (m_first == 0) {
      m_first = g.num_undirected_edges();
      t_first = t;
    }
    m_last = g.num_undirected_edges();
    t_last = t;
  }
  // --- Part 1b: the locality layer on a skewed rMat -----------------------
  // End-to-end `auto` connectivity on a hub-heavy rMat, original vertex
  // layout versus the relabelings from graph/reorder.hpp. The relabel runs
  // OUTSIDE the timed region — this measures the amortized regime
  // (--repeat over one transform) that motivates the layer; pcc_components
  // reports the one-off transform cost separately. Each row carries its
  // reorder mode in the JSON.
  std::printf("\nLocality layer: auto CC on skewed rMat, by reorder mode\n");
  // rMat's recursive generator descends into the heavy quadrant first, so a
  // raw rMat comes out with its hubs already packed at low ids — a silently
  // pre-relabeled input on which every mode reads ~1.0x. Scatter the ids
  // with a random permutation first: that is the layout real ingested edge
  // lists arrive in, and the one the locality layer exists to fix. The size
  // floor matters too: the reference box has a 260 MiB LLC, so the win only
  // shows once the label/CSR working set outruns it (~2^23 vertices at
  // m = 5n); smaller scaled runs stay cache-resident and read ~1.0x.
  const size_t n_rmat = std::max<size_t>(scaled(8 << 20), 1 << 14);
  const graph::graph gr = [&] {
    const graph::graph raw = graph::rmat_graph(
        n_rmat, 5 * n_rmat, 117, {.a = 0.5, .b = 0.1, .c = 0.1});
    std::vector<vertex_id> perm(raw.num_vertices());
    std::vector<vertex_id> inv(raw.num_vertices());
    std::iota(perm.begin(), perm.end(), vertex_id{0});
    std::mt19937_64 scatter(117);
    std::shuffle(perm.begin(), perm.end(), scatter);
    for (size_t v = 0; v < perm.size(); ++v) {
      inv[perm[v]] = static_cast<vertex_id>(v);
    }
    std::vector<edge_id> off;
    std::vector<vertex_id> edg;
    parallel::workspace ws;
    graph::relabel_into(raw, perm, inv, off, edg, ws);
    return graph::graph(std::move(off), std::move(edg));
  }();
  const std::string gr_name =
      "rMat-skew-shuffled-m" + std::to_string(gr.num_undirected_edges());
  const cc::algorithm* auto_algo = cc::find_algorithm("auto");
  cc::algo_workspace aws;
  std::vector<vertex_id> labels(gr.num_vertices());
  cc::cc_options aopt;
  // Modes are pinned per row below (the relabeled input must not be
  // relabeled a second time by the selector).
  aopt.reorder = cc::reorder_policy::kNone;
  std::printf("%8s %12s %12s %10s %12s\n", "reorder", "median (s)", "min (s)",
              "vs none", "relabel (s)");
  double none_median = 0;
  for (const graph::reorder_mode mode :
       {graph::reorder_mode::kNone, graph::reorder_mode::kHub,
        graph::reorder_mode::kDegree}) {
    graph::reorder_result rr;
    const graph::graph* run_g = &gr;
    double relabel_s = 0;
    if (mode != graph::reorder_mode::kNone) {
      parallel::timer rt;
      rr = graph::reorder_graph(gr, mode);
      relabel_s = rt.elapsed();
      run_g = &rr.g;
    }
    cc::run_algorithm(*auto_algo, *run_g, aopt, aws, labels);  // warm-up
    const time_stats ts = time_stats_of(
        [&] { cc::run_algorithm(*auto_algo, *run_g, aopt, aws, labels); });
    if (mode == graph::reorder_mode::kNone) none_median = ts.median_s;
    std::printf("%8s %12.4f %12.4f %9.2fx %12.3f\n", graph::reorder_name(mode),
                ts.median_s, ts.min_s,
                ts.median_s > 0 ? none_median / ts.median_s : 0.0, relabel_s);
    bench_record rec;
    rec.kernel = "auto-CC";
    rec.graph = gr_name;
    rec.stats = ts;
    rec.algorithm = "auto";
    rec.reorder = graph::reorder_name(mode);
    records.push_back(std::move(rec));
  }

  write_bench_json("results/BENCH_fig8.json", "fig8_scaling", records);
  if (t_first > 0) {
    const double size_ratio =
        static_cast<double>(m_last) / static_cast<double>(m_first);
    const double time_ratio = t_last / t_first;
    std::printf("\nsize grew %.1fx, time grew %.1fx (linear-work shape: the "
                "two ratios should be close)\n",
                size_ratio, time_ratio);
  }

  // --- Part 2: thread scaling, both scheduler backends --------------------
  // One graph at the sweep's top size, every (backend, threads) pair from
  // sweep_thread_counts(). Trials are interleaved round-robin across
  // configurations (with a rotating start, like bench_ablation section e)
  // so thermal / frequency drift lands evenly on every configuration
  // instead of biasing whichever ran last; one untimed warm-up round grows
  // the engine's workspace for the largest chunk count first.
  std::printf("\nFigure 8 (scaling axis): decomp-arb-hybrid-CC time vs "
              "threads x backend (random, m = 5n)\n");
  const size_t n_threads_graph = std::max<size_t>(m_max / 5, 16);
  const graph::graph gt = graph::random_graph(n_threads_graph, 5, 91);
  const std::string gt_name =
      "random-m" + std::to_string(gt.num_undirected_edges());

  struct sweep_config {
    parallel::backend backend;
    int threads;
  };
  std::vector<sweep_config> configs;
  for (const parallel::backend b :
       {parallel::backend::kOpenMP, parallel::backend::kThreadPool}) {
    for (const int t : sweep_thread_counts()) configs.push_back({b, t});
  }

  std::vector<std::vector<double>> times(configs.size());
  const int trials = num_trials();
  for (int round = -1; round < trials; ++round) {
    for (size_t i = 0; i < configs.size(); ++i) {
      const size_t c = (i + static_cast<size_t>(std::max(round, 0))) %
                       configs.size();
      const parallel::scoped_backend bg(configs[c].backend);
      const parallel::scoped_workers wg(configs[c].threads);
      parallel::timer timer;
      (void)engine.run(gt);
      if (round >= 0) times[c].push_back(timer.elapsed());
    }
  }

  std::printf("%8s %8s %12s %12s %10s\n", "backend", "threads", "median (s)",
              "min (s)", "speedup");
  std::vector<bench_record> thread_records;
  std::vector<double> base_median(2, 0);  // per backend, at threads = 1
  for (size_t c = 0; c < configs.size(); ++c) {
    std::sort(times[c].begin(), times[c].end());
    time_stats ts;
    ts.median_s = times[c][times[c].size() / 2];
    ts.min_s = times[c].front();
    ts.reps = static_cast<int>(times[c].size());
    const size_t bi =
        configs[c].backend == parallel::backend::kThreadPool ? 1 : 0;
    if (configs[c].threads == 1) base_median[bi] = ts.median_s;
    const double speedup =
        ts.median_s > 0 && base_median[bi] > 0 ? base_median[bi] / ts.median_s
                                               : 0;
    std::printf("%8s %8d %12.4f %12.4f %9.2fx\n",
                backend_name(configs[c].backend), configs[c].threads,
                ts.median_s, ts.min_s, speedup);
    bench_record rec;
    rec.kernel = "decomp-arb-hybrid-CC";
    rec.graph = gt_name;
    rec.stats = ts;
    rec.algorithm = "decomp-arb-hybrid";
    rec.threads = configs[c].threads;
    rec.backend = backend_name(configs[c].backend);
    thread_records.push_back(std::move(rec));
  }
  // Note: PCC_BENCH_JSON redirects *every* write_bench_json call in a
  // process, so when it is set this file wins over part 1's — the smoke
  // jobs that set it run one harness per output file.
  write_bench_json("results/BENCH_fig8_threads.json", "fig8_threads",
                   thread_records);
  return 0;
}
