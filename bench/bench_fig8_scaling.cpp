// Figure 8 of the paper: running time of decomp-arb-hybrid-CC versus
// problem size for random graphs with m = 5n.
//
// Shape expectation: near-linear growth (the algorithm is linear-work).

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcc;
  using namespace pcc::bench;

  print_header(
      "Figure 8: decomp-arb-hybrid-CC time vs problem size (random, m = 5n)");

  // Geometric sweep, mirroring the paper's m = 5e7..5e8 range at bench
  // scale.
  const size_t m_max = scaled(1000000);
  std::vector<size_t> sizes;
  for (size_t m = m_max / 10; m <= m_max; m += m_max / 10) sizes.push_back(m);

  std::printf("%14s %14s %12s %16s\n", "num edges (m)", "num vertices",
              "time (s)", "time / m (ns)");
  double t_first = 0;
  size_t m_first = 0;
  double t_last = 0;
  size_t m_last = 0;
  cc::cc_options opt;
  opt.variant = cc::decomp_variant::kArbHybrid;
  cc::cc_engine engine(opt);  // one engine across sizes and trials
  std::vector<bench_record> records;
  for (size_t m : sizes) {
    const size_t n = std::max<size_t>(m / 5, 16);
    const graph::graph g = graph::random_graph(n, 5, 81 + m);
    const time_stats ts = time_stats_of([&] { (void)engine.run(g); });
    const double t = ts.median_s;
    std::printf("%14zu %14zu %12.4f %16.2f\n", g.num_undirected_edges(), n, t,
                1e9 * t / static_cast<double>(g.num_undirected_edges()));
    records.push_back({"decomp-arb-hybrid-CC",
                       "random-m" + std::to_string(g.num_undirected_edges()),
                       ts});
    if (m_first == 0) {
      m_first = g.num_undirected_edges();
      t_first = t;
    }
    m_last = g.num_undirected_edges();
    t_last = t;
  }
  write_bench_json("results/BENCH_fig8.json", "fig8_scaling", records);
  if (t_first > 0) {
    const double size_ratio =
        static_cast<double>(m_last) / static_cast<double>(m_first);
    const double time_ratio = t_last / t_first;
    std::printf("\nsize grew %.1fx, time grew %.1fx (linear-work shape: the "
                "two ratios should be close)\n",
                size_ratio, time_ratio);
  }
  return 0;
}
