// Figure 4 of the paper: number of remaining edges per iteration (recursion
// level) of decomp-arb-hybrid-CC as a function of beta, on random, rMat,
// 3D-grid and line.
//
// Shape expectations: smaller beta drops edges faster (fewer levels); on
// every graph except line, duplicate-edge removal makes the decay far
// steeper than the 2*beta upper bound (up to an order of magnitude); on
// line there are no duplicate edges, so the decay tracks ~2*beta per level.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcc;
  using namespace pcc::bench;

  print_header(
      "Figure 4: remaining undirected edges per iteration vs beta "
      "(decomp-arb-hybrid-CC)");

  const size_t base = scaled(50000);
  std::vector<named_graph> suite;
  suite.push_back({"random", graph::random_graph(base, 5, 41)});
  suite.push_back({"rMat", graph::rmat_graph(base, 5 * base, 42,
                                             {.a = 0.5, .b = 0.1, .c = 0.1})});
  suite.push_back({"3D-grid", graph::grid3d_graph(base, true, 43)});
  suite.push_back({"line", graph::line_graph(2 * base, false)});

  const std::vector<double> default_betas = {0.1, 0.2, 0.3, 0.4, 0.5};
  // The paper plots much smaller betas for line (its edge count shrinks
  // slowly otherwise).
  const std::vector<double> line_betas = {0.003, 0.008, 0.02, 0.04,
                                          0.06,  0.08,  0.1,  0.2};

  for (const auto& [gname, g] : suite) {
    const auto& betas = gname == "line" ? line_betas : default_betas;
    std::printf("\n--- %s (n=%zu, m0=%zu undirected) ---\n", gname.c_str(),
                g.num_vertices(), g.num_undirected_edges());
    std::printf("%-8s %s\n", "beta",
                "remaining edges after each iteration (iteration 0 = input)");
    for (double beta : betas) {
      cc::cc_options opt;
      opt.algorithm = "decomp";
      opt.variant = cc::decomp_variant::kArbHybrid;
      opt.beta = beta;
      cc::cc_stats stats;
      (void)cc::connected_components(g, opt, &stats);
      std::printf("%-8.3f %10zu", beta, g.num_undirected_edges());
      for (const auto& level : stats.levels) {
        std::printf(" %10zu", level.edges_after_dedup / 2);
      }
      std::printf("\n");

      // Compare the actual per-level reduction with the 2*beta bound.
      if (!stats.levels.empty() && stats.levels[0].m > 0) {
        const double measured = static_cast<double>(
                                    stats.levels[0].edges_after_dedup) /
                                static_cast<double>(stats.levels[0].m);
        std::printf("         (level-0 reduction: kept %.4f of edges; "
                    "2*beta bound = %.4f)\n",
                    measured, 2 * beta);
      }
    }
  }
  return 0;
}
