// Table 2 of the paper: connected-components labeling times for the eight
// implementations on the six inputs, single-threaded and with all hardware
// threads. Also prints Table 1 (the input sizes) as a preamble.
//
// Shape expectations (EXPERIMENTS.md records the measured values):
//   - decomp-arb-CC and decomp-arb-hybrid-CC beat decomp-min-CC;
//   - hybrid-BFS-CC / multistep-CC win on dense low-diameter inputs
//     (random, rMat2, com-Orkut) and lose on line / many-component rMat;
//   - the decomposition CCs are competitive everywhere (no worst case).

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcc;
  using namespace pcc::bench;

  print_header("Table 2: connected components labeling times (seconds)");

  auto suite = paper_graph_suite();

  std::printf("\nTable 1: input graphs (directed edge counts; undirected = half)\n");
  std::printf("%-16s %14s %14s\n", "Input", "Num. Vertices", "Num. Edges");
  for (const auto& [name, g] : suite) {
    std::printf("%-16s %14zu %14zu\n", name.c_str(), g.num_vertices(),
                g.num_undirected_edges());
  }

  const auto impls = table2_implementations();
  const int max_threads = parallel::num_workers();

  std::printf("\n%-22s", "Implementation");
  for (const auto& [name, g] : suite) {
    std::printf(" %10s(1) %9s(P)", name.c_str(), "");
  }
  std::printf("\n");

  for (const auto& impl : impls) {
    std::printf("%-22s", impl.name.c_str());
    for (const auto& [gname, g] : suite) {
      std::vector<vertex_id> labels;
      const double t1 = timed_with_threads(1, [&] { labels = impl.run(g); });
      // Sanity: every implementation must produce the right partition.
      if (!baselines::labels_equivalent(labels,
                                        baselines::serial_sf_components(g))) {
        std::fprintf(stderr, "BUG: %s wrong on %s\n", impl.name.c_str(),
                     gname.c_str());
        return 1;
      }
      double tp = t1;
      if (impl.parallel && max_threads > 1) {
        tp = timed_with_threads(max_threads, [&] { (void)impl.run(g); });
      }
      if (impl.parallel) {
        std::printf(" %12.4f %12.4f", t1, tp);
      } else {
        std::printf(" %12.4f %12s", t1, "-");
      }
    }
    std::printf("\n");
  }

  std::printf("\ncolumns: (1) = single thread, (P) = all hardware threads.\n");
  std::printf("Every labeling was verified against serial-SF before timing "
              "was reported.\n");
  return 0;
}
