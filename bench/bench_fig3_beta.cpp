// Figure 3 of the paper: running time versus beta for decomp-arb-CC,
// decomp-arb-hybrid-CC and decomp-min-CC on random, rMat, 3D-grid and line.
//
// Shape expectation: a shallow U — very small beta makes each decomposition
// call expensive (deep BFS's), very large beta leaves many inter-cluster
// edges and forces many recursion levels; the paper's minimum sits around
// beta in [0.05, 0.2].

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace pcc;
  using namespace pcc::bench;

  print_header("Figure 3: running time (seconds) vs beta");

  const size_t base = scaled(50000);
  std::vector<named_graph> suite;
  suite.push_back({"random", graph::random_graph(base, 5, 31)});
  suite.push_back({"rMat", graph::rmat_graph(base, 5 * base, 32,
                                             {.a = 0.5, .b = 0.1, .c = 0.1})});
  suite.push_back({"3D-grid", graph::grid3d_graph(base, true, 33)});
  suite.push_back({"line", graph::line_graph(2 * base, false)});

  const std::vector<double> betas = {0.05, 0.1, 0.2, 0.3, 0.4,
                                     0.5,  0.6, 0.7, 0.8, 0.9};
  const std::vector<std::pair<std::string, cc::decomp_variant>> variants = {
      {"decomp-arb-CC", cc::decomp_variant::kArb},
      {"decomp-arb-hybrid-CC", cc::decomp_variant::kArbHybrid},
      {"decomp-min-CC", cc::decomp_variant::kMin},
  };

  for (const auto& [gname, g] : suite) {
    std::printf("\n--- %s (n=%zu, m=%zu) ---\n", gname.c_str(),
                g.num_vertices(), g.num_undirected_edges());
    std::printf("%-22s", "beta:");
    for (double b : betas) std::printf(" %8.2f", b);
    std::printf("\n");
    for (const auto& [vname, variant] : variants) {
      std::printf("%-22s", vname.c_str());
      for (double beta : betas) {
        cc::cc_options opt;
        opt.variant = variant;
        opt.beta = beta;
        // Options fix at engine construction; trials 2..k reuse its arenas.
        cc::cc_engine engine(opt);
        const double t = median_time([&] { (void)engine.run(g); });
        std::printf(" %8.4f", t);
      }
      std::printf("\n");
    }
  }
  return 0;
}
