// Figures 5, 6 and 7 of the paper: per-phase running-time breakdowns of
// decomp-min-CC (init / bfsPre / bfsPhase1 / bfsPhase2 / contractGraph),
// decomp-arb-CC (init / bfsPre / bfsMain / contractGraph) and
// decomp-arb-hybrid-CC (init / bfsPre / bfsSparse / bfsDense / filterEdges /
// contractGraph) on random, rMat, 3D-grid and line.
//
// Shape expectations: decomp-min spends 80-90% in the two BFS phases with
// phase 1 the heavier; decomp-arb spends 55-75% in its single BFS phase;
// hybrid uses bfsDense only on random/rMat (their frontiers get dense) and
// pays for it in filterEdges, while 3D-grid and line stay entirely sparse.

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace pcc;
using namespace pcc::bench;

void print_breakdown(const std::string& title, cc::decomp_variant variant,
                     const std::vector<std::string>& phases,
                     const std::vector<named_graph>& suite) {
  std::printf("\n--- %s ---\n", title.c_str());
  std::printf("%-10s", "graph");
  for (const auto& p : phases) std::printf(" %12s", p.c_str());
  std::printf(" %12s %8s\n", "total", "bfs%");
  for (const auto& [gname, g] : suite) {
    cc::cc_options opt;
    opt.algorithm = "decomp";
    opt.variant = variant;
    opt.beta = 0.2;
    cc::cc_stats stats;
    (void)cc::connected_components(g, opt, &stats);
    std::printf("%-10s", gname.c_str());
    double bfs_time = 0;
    for (const auto& p : phases) {
      const double t = stats.phases.get(p);
      if (p.rfind("bfs", 0) == 0 || p == "filterEdges") bfs_time += t;
      std::printf(" %12.4f", t);
    }
    const double total = stats.phases.total();
    std::printf(" %12.4f %7.1f%%\n", total,
                total > 0 ? 100.0 * bfs_time / total : 0.0);
  }
}

}  // namespace

int main() {
  print_header("Figures 5-7: per-phase breakdown of the decomposition CCs");

  const size_t base = scaled(50000);
  std::vector<named_graph> suite;
  suite.push_back({"random", graph::random_graph(base, 5, 51)});
  suite.push_back({"rMat", graph::rmat_graph(base, 5 * base, 52,
                                             {.a = 0.5, .b = 0.1, .c = 0.1})});
  suite.push_back({"3D-grid", graph::grid3d_graph(base, true, 53)});
  suite.push_back({"line", graph::line_graph(2 * base, false)});

  print_breakdown(
      "Figure 5: decomp-min-CC", cc::decomp_variant::kMin,
      {"init", "bfsPre", "bfsPhase1", "bfsPhase2", "bfsPost", "contractGraph"},
      suite);
  print_breakdown("Figure 6: decomp-arb-CC", cc::decomp_variant::kArb,
                  {"init", "bfsPre", "bfsMain", "contractGraph"}, suite);
  print_breakdown("Figure 7: decomp-arb-hybrid-CC",
                  cc::decomp_variant::kArbHybrid,
                  {"init", "bfsPre", "bfsSparse", "bfsDense", "filterEdges",
                   "contractGraph"},
                  suite);
  return 0;
}
