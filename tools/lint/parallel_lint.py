#!/usr/bin/env python3
"""parallel_lint: concurrency-discipline checker for the pcc runtime.

A libclang-free, token-level linter that enforces the repo's shared-memory
rules inside parallel regions (the lambda bodies passed to
``pcc::parallel::parallel_for`` / ``par_do`` / ``parallel_do``):

  raw-captured-write
      A plain assignment (``=``, ``+=``, ``++`` ...) whose target reaches
      memory captured from outside the lambda — through a captured
      pointer/span/vector subscript, a dereference, or a captured scalar —
      is flagged unless one of:
        * the statement goes through an ``atomics.hpp`` helper
          (``cas``/``write_min``/``write_max``/``write_once``/``read_once``/
          ``atomic_load``/``atomic_store``/``fetch_add``/``fetch_or``);
        * the write is owner-indexed: ``arr[i] = ...`` where ``i`` is
          exactly the innermost lambda's loop parameter (distinct
          invocations get distinct ``i``, so the writes are disjoint);
        * the line (or the comment line directly above) carries
          ``// lint: private-write(<reason>)`` stating the disjointness
          invariant.

  shared-cursor-emission
      The atomic-index scatter ``out[fetch_add(&cursor, 1)] = x;`` inside a
      parallel region. The store itself is race-free, but every emitting
      task contends on one cache line and the output order depends on the
      scheduler — nondeterministic across runs and thread counts. Checked
      *before* the atomic-helper waiver above (the helper is exactly what
      makes the pattern tempting). Use ``parallel::emit_pack`` /
      ``parallel::count_then_emit`` / ``parallel::frontier_edge_for``
      (parallel/emit.hpp): block-local staging + an exclusive scan place
      the same elements contention-free and in deterministic order.

  std-function-in-parallel
      ``std::function`` inside a parallel region (type-erased callables
      heap-allocate and synchronize; use templates / function pointers).

  rand-in-parallel
      ``rand()`` / ``srand()`` inside a parallel region (global hidden
      state; use ``parallel/random.hpp``'s counter-based rng).

  static-in-parallel
      A ``static`` local inside a parallel region unless it is
      ``static constexpr`` or ``static thread_local`` (magic-static init
      serializes and mutable static state is shared by definition).

Any rule can be waived for one line with
``// lint: allow(<rule>: <reason>)``.

Known limitations (token-level, by design): writes through a *local*
pointer that aliases captured memory are not tracked, and helper lambdas
that are only *called* (not defined) inside a parallel region are not
scanned. The TSan CI job is the backstop for what the tokens cannot see.

Usage:
    parallel_lint.py [--compile-commands build/compile_commands.json]
                     [paths...]

With ``--compile-commands`` the translation units listed there (filtered
to the given paths) are linted, plus every header found under the given
paths; with bare paths, all ``*.cpp/*.hpp/*.h`` files under them.
Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

PARALLEL_CALLS = {"parallel_for", "par_do", "parallel_do"}

ATOMIC_HELPERS = {
    "cas",
    "write_min",
    "write_max",
    "write_once",
    "read_once",
    "atomic_load",
    "atomic_store",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "compare_exchange_strong",
    "compare_exchange_weak",
    "exchange",
    "test_and_set",
    "clear",
    "store",
    "load",
    "notify_all",
    "notify_one",
}

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>="}
INCDEC_OPS = {"++", "--"}

TYPE_KEYWORDS = {
    "auto", "bool", "char", "short", "int", "long", "unsigned", "signed",
    "float", "double", "void", "size_t", "uint8_t", "uint16_t", "uint32_t",
    "uint64_t", "int8_t", "int16_t", "int32_t", "int64_t", "ptrdiff_t",
}

MARKER_PRIVATE = re.compile(r"lint:\s*private-write\s*\(([^)]*)\)")
MARKER_ALLOW = re.compile(r"lint:\s*allow\s*\(\s*([a-z-]+)\s*:?([^)]*)\)")


@dataclass
class Token:
    kind: str  # 'id', 'num', 'str', 'punct'
    text: str
    line: int


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class LineMarkers:
    """lint: markers harvested from comments, keyed by source line."""

    private_write: dict[int, str] = field(default_factory=dict)
    allow: dict[int, set[str]] = field(default_factory=dict)

    def waives(self, rule: str, line: int) -> bool:
        # A marker applies to its own line and to the line directly below
        # it (comment-above-the-statement style).
        for ln in (line, line - 1):
            if rule == "raw-captured-write" and ln in self.private_write:
                return True
            if rule in self.allow.get(ln, ()):  # explicit allow
                return True
        return False


_TOKEN_RE = re.compile(
    r"""
      (?P<id>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<num>\.?\d(?:[\w.']|[eEpP][+-])*)
    | (?P<punct><<=|>>=|->\*|\.\.\.|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\|
                |[+\-*/%&|^!=<>]=|[{}()\[\];,.<>?:~!%^&*+=/|\\-])
    """,
    re.VERBOSE,
)


def strip_and_tokenize(text: str) -> tuple[list[Token], LineMarkers]:
    """Remove comments/literals, collect lint markers, emit tokens."""
    tokens: list[Token] = []
    markers = LineMarkers()
    i, n, line = 0, len(text), 1

    def harvest(comment: str, ln: int) -> None:
        m = MARKER_PRIVATE.search(comment)
        if m:
            markers.private_write[ln] = m.group(1).strip()
        m = MARKER_ALLOW.search(comment)
        if m:
            markers.allow.setdefault(ln, set()).add(m.group(1).strip())

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c in " \t\r\f\v":
            i += 1
        elif text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            harvest(text[i:j], line)
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            start_line = line
            harvest(text[i : j + 2], start_line)
            line += text.count("\n", i, j + 2)
            i = j + 2
        elif c == '"':
            if text.startswith('R"', i - 1) and i >= 1:  # raw string R"delim(
                m = re.match(r'R"([^(]*)\(', text[i - 1 :])
                if m and tokens and tokens[-1].text == "R":
                    tokens.pop()  # merge the 'R' id into the literal
                    end = text.find(f"){m.group(1)}\"", i)
                    end = n - 1 if end < 0 else end + len(m.group(1)) + 1
                    line += text.count("\n", i, end + 1)
                    tokens.append(Token("str", '""', line))
                    i = end + 1
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            line += text.count("\n", i, j + 1)
            tokens.append(Token("str", '""', line))
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            tokens.append(Token("str", "''", line))
            i = j + 1
        else:
            m = _TOKEN_RE.match(text, i)
            if m is None:
                i += 1
                continue
            kind = m.lastgroup or "punct"
            tokens.append(Token(kind, m.group(), line))
            i = m.end()
    return tokens, markers


def match_forward(tokens: list[Token], i: int, open_t: str, close_t: str) -> int:
    """Index of the token closing the bracket opened at i (or len)."""
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return j
    return len(tokens)


def is_lambda_intro(tokens: list[Token], i: int) -> bool:
    """True if tokens[i] == '[' starts a lambda (vs a subscript)."""
    if tokens[i].text != "[":
        return False
    if i == 0:
        return True
    prev = tokens[i - 1]
    # A subscript follows a primary expression; a lambda follows an
    # operator, separator, or opening bracket.
    if prev.kind in ("id", "num", "str") or prev.text in ("]", ")"):
        return False
    return True


@dataclass
class Lambda:
    params: set[str]
    body_start: int  # index of '{'
    body_end: int  # index of matching '}'


def parse_lambda(tokens: list[Token], i: int) -> Lambda | None:
    """Parse a lambda starting at tokens[i] == '['; None if not a lambda."""
    cap_end = match_forward(tokens, i, "[", "]")
    if cap_end >= len(tokens):
        return None
    j = cap_end + 1
    params: set[str] = set()
    if j < len(tokens) and tokens[j].text == "(":
        par_end = match_forward(tokens, j, "(", ")")
        # Parameter names: the last identifier of each comma-separated
        # declarator (at paren depth 1, ignoring template commas).
        depth, angle = 0, 0
        last_id: str | None = None
        for k in range(j, par_end + 1):
            t = tokens[k]
            if t.text in "([{":
                depth += 1
            elif t.text in ")]}":
                depth -= 1
                if depth == 0:
                    if last_id:
                        params.add(last_id)
                    break
            elif depth == 1:
                if t.text == "<":
                    angle += 1
                elif t.text == ">":
                    angle = max(0, angle - 1)
                elif angle == 0 and t.text == ",":
                    if last_id:
                        params.add(last_id)
                    last_id = None
                elif angle == 0 and t.kind == "id" and t.text not in TYPE_KEYWORDS \
                        and t.text != "const":
                    last_id = t.text
        j = par_end + 1
    # Skip specifiers / trailing return type up to the body brace.
    while j < len(tokens) and tokens[j].text != "{":
        if tokens[j].text in (";", ")", "]"):
            return None  # e.g. `[0]` style false positive: no body
        j += 1
    if j >= len(tokens):
        return None
    body_end = match_forward(tokens, j, "{", "}")
    return Lambda(params, j, body_end)


def find_parallel_lambdas(tokens: list[Token]) -> list[Lambda]:
    """All lambdas that appear in the argument list of a parallel call."""
    out: list[Lambda] = []
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in PARALLEL_CALLS:
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
            continue
        call_end = match_forward(tokens, i + 1, "(", ")")
        j = i + 2
        while j < call_end:
            if is_lambda_intro(tokens, j):
                lam = parse_lambda(tokens, j)
                if lam is not None and lam.body_end <= call_end:
                    out.append(lam)
                    j = lam.body_end + 1
                    continue
            j += 1
    return out


def collect_locals(tokens: list[Token], body_start: int, body_end: int,
                   inner_spans: list[tuple[int, int]]) -> set[str]:
    """Names declared inside the body (heuristic, left-to-right).

    A declaration is recognized at statement-ish positions as
    `type-tokens NAME (=|;|:|{|()`, where the token before NAME is a
    type-ish token (identifier, closing `>`, `&`, `*`, or a fundamental
    type keyword). Also handles structured bindings `auto [a, b] = ...`
    and range-for `for (T x : ...)`.
    """
    names: set[str] = set()
    i = body_start + 1
    while i < body_end:
        for lo, hi in inner_spans:
            if lo <= i <= hi:
                i = hi + 1
                break
        if i >= body_end:
            break
        t = tokens[i]
        # Structured binding: auto [a, b] = ...
        if t.text == "auto" and i + 1 < body_end and tokens[i + 1].text == "[":
            close = match_forward(tokens, i + 1, "[", "]")
            for k in range(i + 2, close):
                if tokens[k].kind == "id":
                    names.add(tokens[k].text)
            i = close + 1
            continue
        if t.kind == "id" and i + 1 < body_end:
            nxt = tokens[i + 1]
            prev = tokens[i - 1]
            # `T* p` / `T& r`: the ref/pointer punctuation must itself
            # follow a type token, or this is a dereference/address-of
            # expression (e.g. `*shared = 7;`), not a declaration.
            ptr_decl = prev.text in (">", "&", "*") and i >= 2 and (
                tokens[i - 2].kind == "id" or tokens[i - 2].text == ">"
            )
            if (
                nxt.text in ("=", ";", ":", "{", "(", ",")
                and (
                    (prev.kind == "id" and prev.text not in ("return", "co_return"))
                    or ptr_decl
                )
                and t.text not in TYPE_KEYWORDS
                and t.text != "const"
            ):
                # `prev` must itself look like part of a declaration's type,
                # not an expression: reject `a b` where a is followed by an
                # operator... (kept simple: the id-id adjacency is already
                # rare outside declarations in this codebase).
                names.add(t.text)
        i += 1
    return names


def lvalue_info(tokens: list[Token], op_idx: int, stmt_start: int):
    """Analyze the lvalue ending just before tokens[op_idx].

    Returns (base_identifier | None, is_subscript, subscript_index_tokens,
    is_indirect) where is_indirect covers `*p = ...` and `p->x = ...`.
    """
    j = op_idx - 1
    is_subscript = False
    index_tokens: list[str] = []
    is_indirect = False
    base: str | None = None
    # Walk the postfix expression backwards.
    while j >= stmt_start:
        t = tokens[j]
        if t.text == "]":
            lo = j
            depth = 0
            while lo >= stmt_start:
                if tokens[lo].text == "]":
                    depth += 1
                elif tokens[lo].text == "[":
                    depth -= 1
                    if depth == 0:
                        break
                lo -= 1
            if not is_subscript:  # record only the outermost subscript
                is_subscript = True
                index_tokens = [tokens[k].text for k in range(lo + 1, j)]
            j = lo - 1
        elif t.text == ")":
            lo = j
            depth = 0
            while lo >= stmt_start:
                if tokens[lo].text == ")":
                    depth += 1
                elif tokens[lo].text == "(":
                    depth -= 1
                    if depth == 0:
                        break
                lo -= 1
            before = tokens[lo - 1] if lo - 1 >= stmt_start else None
            if before is not None and (
                before.kind == "id" or before.text in (")", "]")
            ) and (before.kind != "id" or before.text not in (
                    "if", "while", "for", "switch", "return")):
                j = lo - 1  # call postfix `f(...)`: keep walking to the base
            else:
                # Parenthesized primary, e.g. `(*old_ids)[i] = ...`: the
                # base lives inside the group.
                for k in range(lo + 1, j):
                    if tokens[k].text == "*":
                        is_indirect = True
                    elif tokens[k].kind == "id" and base is None:
                        base = tokens[k].text
                break
        elif t.kind == "id":
            base = t.text
            if j - 1 >= stmt_start and tokens[j - 1].text in (".", "->", "::"):
                if tokens[j - 1].text == "->":
                    is_indirect = True
                j -= 2  # keep walking to the base object
            else:
                # Prefix dereference `*base = ...`: the star right before
                # the base id, unless it reads as multiplication (which
                # cannot produce an lvalue anyway).
                if j - 1 >= stmt_start and tokens[j - 1].text == "*":
                    prev2 = tokens[j - 2] if j - 2 >= stmt_start else None
                    if prev2 is None or not (
                        prev2.kind in ("id", "num") or prev2.text in (")", "]")
                    ):
                        is_indirect = True
                break
        elif t.text == "*":
            # Prefix dereference (only meaningful at the statement start).
            is_indirect = True
            break
        else:
            break
    return base, is_subscript, index_tokens, is_indirect


def statement_start(tokens: list[Token], op_idx: int, body_start: int) -> int:
    depth = 0
    j = op_idx - 1
    while j > body_start:
        t = tokens[j].text
        if t in (")", "]"):
            depth += 1
        elif t in ("(", "["):
            if depth == 0:
                return j + 1
            depth -= 1
        elif depth == 0 and t in (";", "{", "}", ","):
            return j + 1
        j -= 1
    return body_start + 1


def statement_end(tokens: list[Token], op_idx: int, body_end: int) -> int:
    depth = 0
    j = op_idx
    while j < body_end:
        t = tokens[j].text
        if t in ("(", "["):
            depth += 1
        elif t in (")", "]"):
            if depth == 0:
                return j
            depth -= 1
        elif depth == 0 and t in (";", "{", "}"):
            return j
        j += 1
    return body_end


def check_lambda(path: str, tokens: list[Token], lam: Lambda,
                 markers: LineMarkers, inner_spans: list[tuple[int, int]],
                 findings: list[Finding]) -> None:
    locals_ = collect_locals(tokens, lam.body_start, lam.body_end, inner_spans)
    locals_ |= lam.params

    def in_inner(idx: int) -> bool:
        return any(lo <= idx <= hi for lo, hi in inner_spans)

    def stmt_has_atomic_helper(lo: int, hi: int) -> bool:
        return any(
            tokens[k].kind == "id" and tokens[k].text in ATOMIC_HELPERS
            for k in range(lo, hi)
        )

    i = lam.body_start + 1
    while i < lam.body_end:
        if in_inner(i):
            i += 1
            continue
        tok = tokens[i]

        # --- std::function -------------------------------------------------
        if (
            tok.text == "function"
            and i >= 2
            and tokens[i - 1].text == "::"
            and tokens[i - 2].text == "std"
        ):
            if not markers.waives("std-function-in-parallel", tok.line):
                findings.append(Finding(
                    path, tok.line, "std-function-in-parallel",
                    "std::function inside a parallel region (type-erased "
                    "callables allocate and synchronize; use a template "
                    "parameter or function pointer)",
                ))
            i += 1
            continue

        # --- rand() / srand() ---------------------------------------------
        if (
            tok.kind == "id"
            and tok.text in ("rand", "srand")
            and i + 1 < lam.body_end
            and tokens[i + 1].text == "("
            and (i == 0 or tokens[i - 1].text not in (".", "->"))
        ):
            if not markers.waives("rand-in-parallel", tok.line):
                findings.append(Finding(
                    path, tok.line, "rand-in-parallel",
                    f"{tok.text}() inside a parallel region (hidden global "
                    "state; use parallel/random.hpp's counter-based rng)",
                ))
            i += 1
            continue

        # --- static locals -------------------------------------------------
        if tok.text == "static":
            nxt = tokens[i + 1].text if i + 1 < lam.body_end else ""
            if nxt not in ("constexpr", "thread_local"):
                if not markers.waives("static-in-parallel", tok.line):
                    findings.append(Finding(
                        path, tok.line, "static-in-parallel",
                        "unguarded static local inside a parallel region "
                        "(shared mutable state; magic-static init "
                        "serializes). Use static constexpr, thread_local, "
                        "or hoist it out",
                    ))
            i += 1
            continue

        # --- raw captured writes -------------------------------------------
        if tok.text in ASSIGN_OPS or tok.text in INCDEC_OPS:
            op_idx = i
            if tok.text in INCDEC_OPS:
                # Normalize to the operand: prefix `++x[...]` or postfix
                # `x[...]++`. For prefix, analyze the expression that
                # follows by finding its end.
                if (
                    op_idx + 1 < lam.body_end
                    and (tokens[op_idx + 1].kind == "id"
                         or tokens[op_idx + 1].text == "*")
                ):
                    # prefix: pretend the operator sits after the operand
                    end = statement_end(tokens, op_idx + 1, lam.body_end)
                    op_idx = end
                # postfix: lvalue already sits to the left of tokens[i]
            stmt_lo = statement_start(tokens, op_idx, lam.body_start)
            stmt_hi = statement_end(tokens, op_idx, lam.body_end)
            base, is_sub, idx_toks, indirect = lvalue_info(
                tokens, op_idx, stmt_lo)
            line = tokens[min(op_idx, lam.body_end - 1)].line
            i += 1
            if base is None and not indirect:
                continue
            if base in TYPE_KEYWORDS or base in ("const", "constexpr"):
                continue  # declaration lvalue (e.g. structured binding)
            # Declarations with initializers: `T x = ...` — the decl
            # scanner already recorded x; a decl is also recognizable by a
            # type-ish token right before the base identifier.
            if base is not None and base in locals_ and not indirect:
                continue
            if indirect and base is not None and base in locals_:
                # `*p = ...` / `p->x = ...` through a local pointer: out of
                # scope for a token-level check (documented limitation).
                continue
            if is_sub and len(idx_toks) == 1 and idx_toks[0] in lam.params:
                continue  # owner-indexed write: disjoint by construction
            if is_sub and "fetch_add" in idx_toks:
                # `out[fetch_add(&cursor, 1)] = x`: race-free but contended
                # and order-nondeterministic. Checked before the atomic-
                # helper waiver — the helper is what makes it tempting.
                if not markers.waives("shared-cursor-emission", line):
                    findings.append(Finding(
                        path, line, "shared-cursor-emission",
                        "shared-cursor emission: subscript computed with "
                        "fetch_add on a shared cursor. All emitters contend "
                        "on one counter and the output order depends on the "
                        "scheduler. Use emit_pack / count_then_emit / "
                        "frontier_edge_for (parallel/emit.hpp) for "
                        "contention-free, deterministic placement",
                    ))
                continue
            if stmt_has_atomic_helper(stmt_lo, stmt_hi):
                continue  # helper-mediated write (cas / write_min / ...)
            if markers.waives("raw-captured-write", line):
                continue
            what = f"`{base}`" if base is not None else "a dereference"
            findings.append(Finding(
                path, line, "raw-captured-write",
                f"raw write through captured {what} inside a parallel "
                "region. Route it through an atomics.hpp helper, index it "
                "by the lambda parameter, or annotate the disjointness "
                "invariant with `// lint: private-write(<reason>)`",
            ))
            continue

        i += 1
    return


def lint_file(path: str) -> list[Finding]:
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [Finding(path, 0, "io-error", str(e))]
    tokens, markers = strip_and_tokenize(text)
    lambdas = find_parallel_lambdas(tokens)
    findings: list[Finding] = []
    for lam in lambdas:
        # Nested parallel lambdas are checked on their own; mask their
        # token span out of the enclosing body scan. Non-parallel inner
        # lambdas (helpers defined in the body) are scanned as part of the
        # enclosing body with the *inner* lambda's params added? No —
        # simplest sound-ish choice: mask all inner lambda bodies; a
        # helper lambda defined AND invoked inside a parallel body is rare
        # and the TSan job covers it.
        inner = [
            (o.body_start, o.body_end)
            for o in lambdas
            if o is not lam
            and o.body_start > lam.body_start
            and o.body_end < lam.body_end
        ]
        check_lambda(path, tokens, lam, markers, inner, findings)
    return findings


def gather_files(args: argparse.Namespace) -> list[str]:
    exts = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh")
    roots = [os.path.abspath(p) for p in args.paths] or [os.getcwd()]
    files: set[str] = set()
    if args.compile_commands:
        try:
            with open(args.compile_commands, "r", encoding="utf-8") as f:
                db = json.load(f)
        except (OSError, ValueError) as e:
            print(f"parallel_lint: cannot read {args.compile_commands}: {e}",
                  file=sys.stderr)
            sys.exit(2)
        for entry in db:
            src = os.path.abspath(
                os.path.join(entry.get("directory", "."), entry["file"]))
            if any(os.path.commonpath([src, r]) == r for r in roots
                   if os.path.isdir(r)):
                files.add(src)
    for r in roots:
        if os.path.isfile(r):
            files.add(r)
            continue
        for dirpath, _, names in os.walk(r):
            for name in names:
                if name.endswith(exts):
                    files.add(os.path.join(dirpath, name))
    return sorted(files)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="files or directories to lint (default: cwd)")
    ap.add_argument("--compile-commands", metavar="PATH",
                    help="compile_commands.json to take the TU list from "
                         "(headers under the given paths are added)")
    ap.add_argument("--skip", metavar="RULES", default="",
                    help="comma-separated rules to drop (rules superseded "
                         "by tools/analyze/pcc_analyze.py are skipped in "
                         "CI so each check has exactly one owner)")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress the per-file progress summary")
    args = ap.parse_args(argv)

    known = {"raw-captured-write", "shared-cursor-emission",
             "std-function-in-parallel", "rand-in-parallel",
             "static-in-parallel"}
    skip = {r.strip() for r in args.skip.split(",") if r.strip()}
    unknown = skip - known
    if unknown:
        print(f"parallel_lint: unknown rules in --skip: "
              f"{', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    files = gather_files(args)
    if not files:
        print("parallel_lint: no input files", file=sys.stderr)
        return 2
    findings: list[Finding] = []
    for path in files:
        findings.extend(f for f in lint_file(path) if f.rule not in skip)
    for f in findings:
        print(f.render())
    if not args.quiet:
        print(
            f"parallel_lint: {len(files)} files, {len(findings)} finding(s)",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
