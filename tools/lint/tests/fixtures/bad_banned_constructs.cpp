// Fixture: the three banned constructs inside parallel regions.
#include <cstddef>
#include <cstdlib>
#include <functional>

namespace pcc::parallel {
template <typename F>
void parallel_for(size_t, size_t, F&&, size_t = 0);
template <typename L, typename R>
void par_do(L&&, R&&);
}  // namespace pcc::parallel

void banned(std::size_t n) {
  pcc::parallel::parallel_for(0, n, [&](size_t i) {
    std::function<int(int)> f = [](int x) { return x; };  // BAD
    int r = rand();                                       // BAD
    static int counter = 0;                               // BAD
    counter += r + f(static_cast<int>(i));
  });

  pcc::parallel::par_do(
      [&] {
        srand(42);  // BAD: srand in a parallel thunk
      },
      [&] {
        static constexpr int kFine = 3;   // OK: constexpr static
        static thread_local int tl = 0;   // OK: thread-local
        tl += kFine;
      });
}
