// Fixture: disciplined parallel bodies — every cross-thread write goes
// through the atomics.hpp vocabulary or is owner-indexed. Must lint clean.
#include <cstddef>
#include <span>

namespace pcc::parallel {
template <typename F>
void parallel_for(size_t, size_t, F&&, size_t = 0);
template <typename T>
bool cas(T*, T, T);
template <typename T>
bool write_min(T*, T);
template <typename T>
void write_once(T*, T);
template <typename T>
T fetch_add(T*, T);
}  // namespace pcc::parallel

void disciplined(std::span<unsigned> C, std::span<unsigned> next,
                 std::span<unsigned char> flags) {
  using namespace pcc::parallel;
  size_t claimed = 0;
  parallel_for(0, C.size(), [&](size_t v) {
    C[v] = 0;  // owner-indexed: the loop parameter is the only writer of v
    if (cas(&C[v], 0u, 1u)) {
      fetch_add<size_t>(&claimed, 1);  // plain counter: no subscript
    }
    write_min(&C[v], 5u);
    write_once(&flags[v], static_cast<unsigned char>(1));
  });
  next[0] = static_cast<unsigned>(claimed);
}

void locals_are_fine(std::span<const unsigned> in, std::span<unsigned> out) {
  pcc::parallel::parallel_for(0, in.size(), [&](size_t i) {
    unsigned acc = 0;
    for (size_t k = 0; k < 3; ++k) acc += in[i];
    const unsigned doubled = acc * 2;
    out[i] = doubled;
  });
}

void marked_private_write(std::span<unsigned> E, std::span<const size_t> off) {
  pcc::parallel::parallel_for(0, off.size(), [&](size_t v) {
    // lint: private-write(each v owns the slice [off[v], off[v+1]))
    E[off[v]] = 0;
    E[off[v] + 1] = 1;  // lint: private-write(same per-v slice invariant)
  });
}
