// Fixture: the banned constructs are fine OUTSIDE parallel regions, and
// sequential code with arbitrary assignments must not be flagged.
#include <cstddef>
#include <cstdlib>
#include <functional>
#include <span>

namespace pcc::parallel {
template <typename F>
void parallel_for(size_t, size_t, F&&, size_t = 0);
}

int sequential_world(std::span<unsigned> v) {
  std::function<int()> f = [] { return rand(); };  // fine: not parallel
  static int call_count = 0;                       // fine: not parallel
  ++call_count;
  for (size_t i = 0; i < v.size(); ++i) v[i] = 0;  // fine: sequential loop
  unsigned* p = v.data();
  *p = 1;  // fine: sequential write
  // A lambda that is not a parallel-region argument is not scanned:
  const auto helper = [&](size_t i) { v[i / 2] = 9; };
  helper(0);
  return f() + call_count;
}

void nested_inner_checked_once(std::span<unsigned> a) {
  // The inner parallel_for's body is attributed to the inner region only;
  // the outer scan must not double-report it.
  pcc::parallel::parallel_for(0, 4, [&](size_t b) {
    pcc::parallel::parallel_for(0, 4, [&](size_t i) {
      a[i] = static_cast<unsigned>(b);  // owner-indexed by inner param
    });
  });
}
