// Fixture: policy-templated claim loops in the style of core/labeling.cpp —
// the hook is selected by a template parameter and every branch funnels
// cross-thread writes through the atomics vocabulary. Must lint clean: the
// linter sees through `if constexpr` dispatch the same as plain code.
#include <cstddef>
#include <cstdint>
#include <span>

namespace pcc::parallel {
template <typename F>
void parallel_for(size_t, size_t, F&&, size_t = 0);
template <typename T>
bool cas(T*, T, T);
template <typename T>
bool write_min(T*, T);
template <typename T>
T atomic_load(const T*);
template <typename T>
void atomic_store(T*, T);
template <typename T>
void write_once(T*, T);
}  // namespace pcc::parallel

enum class hook_kind : uint8_t { kDirect, kParent, kRoots };

template <hook_kind H>
void hook_pass(std::span<uint32_t> p, std::span<const uint32_t> endpoints,
               uint8_t* changed) {
  using namespace pcc::parallel;
  parallel_for(0, endpoints.size() / 2, [&](size_t e) {
    const uint32_t u = endpoints[2 * e];
    const uint32_t pv = atomic_load(&p[endpoints[2 * e + 1]]);
    bool hooked = false;
    if constexpr (H == hook_kind::kDirect) {
      hooked = write_min(&p[u], pv);
    } else if constexpr (H == hook_kind::kParent) {
      const uint32_t pu = atomic_load(&p[u]);
      hooked = write_min(&p[pu], pv);
    } else {
      // Roots-only claim loop: CAS claims the root slot, losers retry on
      // the updated parent.
      uint32_t pu = atomic_load(&p[u]);
      while (pu == u && !cas(&p[u], pu, pv)) {
        pu = atomic_load(&p[u]);
      }
      hooked = pu == u;
    }
    if (hooked) write_once(changed, uint8_t{1});
  });
}

template <bool Full>
void shortcut_pass(std::span<uint32_t> p) {
  using namespace pcc::parallel;
  parallel_for(0, p.size(), [&](size_t v) {
    uint32_t target = atomic_load(&p[v]);
    if constexpr (Full) {
      for (uint32_t next = atomic_load(&p[target]); next != target;
           next = atomic_load(&p[target])) {
        target = next;
      }
    }
    write_min(&p[v], target);
  });
}

void instantiate(std::span<uint32_t> p, std::span<const uint32_t> ep,
                 uint8_t* c) {
  hook_pass<hook_kind::kDirect>(p, ep, c);
  hook_pass<hook_kind::kParent>(p, ep, c);
  hook_pass<hook_kind::kRoots>(p, ep, c);
  shortcut_pass<false>(p);
  shortcut_pass<true>(p);
}
