// Fixture: shared-cursor emission — the atomic-index scatter
// `out[fetch_add(&cursor, 1)] = x` inside a parallel region. Race-free but
// contended and order-nondeterministic; the linter must point at the
// emit_pack family instead. One occurrence carries an allow marker and
// must NOT be flagged.
#include <cstddef>
#include <span>

namespace pcc::parallel {
template <typename F>
void parallel_for(size_t, size_t, F&&, size_t = 0);
template <typename T>
T fetch_add(T*, T);
template <typename T>
bool cas(T*, T, T);
}  // namespace pcc::parallel

void cursor_scatter(std::span<unsigned> C, std::span<unsigned> next) {
  using namespace pcc::parallel;
  size_t next_size = 0;
  parallel_for(0, C.size(), [&](size_t v) {
    if (cas(&C[v], 0u, 1u)) {
      // BAD: every emitter bounces the cursor's cache line, and the slot
      // order depends on the scheduler.
      next[fetch_add<size_t>(&next_size, 1)] = static_cast<unsigned>(v);
    }
  });
}

void cursor_scatter_qualified(std::span<unsigned> out) {
  size_t k = 0;
  pcc::parallel::parallel_for(0, out.size(), [&](size_t i) {
    if (i % 2 == 0) {
      // BAD: same pattern through the qualified helper name.
      out[pcc::parallel::fetch_add<size_t>(&k, 1)] = static_cast<unsigned>(i);
    }
  });
}

void cursor_scatter_waived(std::span<unsigned> out) {
  size_t k = 0;
  pcc::parallel::parallel_for(0, out.size(), [&](size_t i) {
    // lint: allow(shared-cursor-emission: cold error path, order irrelevant)
    out[pcc::parallel::fetch_add<size_t>(&k, 1)] = static_cast<unsigned>(i);
  });
}
