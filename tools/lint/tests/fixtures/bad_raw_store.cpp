// Fixture: the exact bug class the lint exists for — a raw racing store
// through a captured span inside a parallel_for body.
#include <cstddef>
#include <span>

namespace pcc::parallel {
template <typename F>
void parallel_for(size_t, size_t, F&&, size_t = 0);
}

void racy_frontier(std::span<unsigned> D, std::span<const unsigned> frontier) {
  using pcc::parallel::parallel_for;
  parallel_for(0, frontier.size(), [&](size_t fi) {
    const unsigned v = frontier[fi];
    D[v] = 0;                 // BAD: index is not the loop parameter
    D[frontier[fi] + 1] = 1;  // BAD: computed index, no marker
  });
}

void racy_scalar(std::span<unsigned> out) {
  size_t next_size = 0;
  pcc::parallel::parallel_for(0, out.size(), [&](size_t i) {
    out[i] = 1;
    next_size += 1;  // BAD: captured scalar counter without fetch_add
  });
}

void racy_deref(unsigned* shared) {
  pcc::parallel::parallel_for(0, 8, [&](size_t) {
    *shared = 7;  // BAD: dereference of a captured pointer
  });
}
