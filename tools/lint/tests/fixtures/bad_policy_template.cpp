// Fixture: the same policy-templated shape as good_policy_template.cpp,
// but with the bug class the template can hide — one `if constexpr` branch
// stores raw through a computed index. Templates are no excuse: the linter
// must flag the branch even though it only races for some instantiations.
#include <cstddef>
#include <cstdint>
#include <span>

namespace pcc::parallel {
template <typename F>
void parallel_for(size_t, size_t, F&&, size_t = 0);
template <typename T>
bool write_min(T*, T);
template <typename T>
T atomic_load(const T*);
}  // namespace pcc::parallel

enum class hook_kind : uint8_t { kDirect, kParent };

template <hook_kind H>
void racy_hook_pass(std::span<uint32_t> p,
                    std::span<const uint32_t> endpoints) {
  using namespace pcc::parallel;
  parallel_for(0, endpoints.size() / 2, [&](size_t e) {
    const uint32_t u = endpoints[2 * e];
    const uint32_t pv = atomic_load(&p[endpoints[2 * e + 1]]);
    if constexpr (H == hook_kind::kDirect) {
      p[u] = pv;  // BAD: raw store through a computed index
    } else {
      const uint32_t pu = atomic_load(&p[u]);
      p[pu] = pv;  // BAD: raw store, two hops from the loop parameter
    }
  });
}

void instantiate(std::span<uint32_t> p, std::span<const uint32_t> ep) {
  racy_hook_pass<hook_kind::kDirect>(p, ep);
  racy_hook_pass<hook_kind::kParent>(p, ep);
}
