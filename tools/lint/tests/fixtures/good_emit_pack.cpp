// Fixture: the replacement for shared-cursor emission — block-local
// staging through the emit_pack family (parallel/emit.hpp). The emitter's
// append is a private write into the block's own slice; placement happens
// via an exclusive scan outside the parallel body. Must lint clean.
#include <cstddef>
#include <span>

namespace pcc::parallel {
template <typename F>
void parallel_for(size_t, size_t, F&&, size_t = 0);
template <typename T>
bool cas(T*, T, T);
struct workspace {};
template <typename T>
struct emitter {
  T* buf_;
  size_t n_ = 0;
  void operator()(const T& x) {
    buf_[n_++] = x;  // lint: private-write(each block appends to its slice)
  }
};
template <typename T, typename Body>
size_t emit_pack(size_t n, std::span<T> out, workspace& ws, Body&& body,
                 size_t max_per_index = 1, size_t grain = 0);
}  // namespace pcc::parallel

size_t emit_survivors(std::span<unsigned> C, std::span<unsigned> next,
                      pcc::parallel::workspace& ws) {
  return pcc::parallel::emit_pack<unsigned>(
      C.size(), next, ws, [&](size_t v, pcc::parallel::emitter<unsigned>& em) {
        if (pcc::parallel::cas(&C[v], 0u, 1u)) {
          em(static_cast<unsigned>(v));
        }
      });
}
