"""Unit tests for parallel_lint.py, driven by the fixture snippets.

Run directly (python3 -m unittest discover -s tools/lint/tests) or via the
`lint_selftest` CTest target.
"""

import os
import sys
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
LINT_DIR = os.path.dirname(TESTS_DIR)
FIXTURES = os.path.join(TESTS_DIR, "fixtures")

sys.path.insert(0, LINT_DIR)

import parallel_lint  # noqa: E402


def lint(name):
    return parallel_lint.lint_file(os.path.join(FIXTURES, name))


def rules(findings):
    return [f.rule for f in findings]


class RawStoreTests(unittest.TestCase):
    def test_catches_raw_racing_stores(self):
        findings = lint("bad_raw_store.cpp")
        raw = [f for f in findings if f.rule == "raw-captured-write"]
        # D[v], D[frontier[fi] + 1], next_size +=, *shared.
        self.assertEqual(len(raw), 4, msg="\n".join(f.render() for f in findings))
        self.assertEqual(rules(findings), ["raw-captured-write"] * 4)

    def test_reports_file_and_line(self):
        findings = lint("bad_raw_store.cpp")
        self.assertTrue(all(f.line > 0 for f in findings))
        self.assertTrue(all(f.path.endswith("bad_raw_store.cpp")
                            for f in findings))
        # The first raw store in the fixture is the `D[v] = 0;` line.
        with open(os.path.join(FIXTURES, "bad_raw_store.cpp")) as f:
            lines = f.read().splitlines()
        self.assertIn("D[v] = 0;", lines[findings[0].line - 1])

    def test_clean_disciplined_code(self):
        findings = lint("good_atomics.cpp")
        self.assertEqual(findings, [],
                         msg="\n".join(f.render() for f in findings))


class SharedCursorTests(unittest.TestCase):
    def test_catches_cursor_scatters(self):
        findings = lint("bad_shared_cursor.cpp")
        cursor = [f for f in findings if f.rule == "shared-cursor-emission"]
        # Two scatters; the waived one must not appear.
        self.assertEqual(
            len(cursor), 2, msg="\n".join(f.render() for f in findings))
        self.assertEqual(rules(findings), ["shared-cursor-emission"] * 2)
        self.assertTrue(all("emit_pack" in f.message for f in cursor))

    def test_emit_pack_replacement_is_clean(self):
        findings = lint("good_emit_pack.cpp")
        self.assertEqual(findings, [],
                         msg="\n".join(f.render() for f in findings))


class BannedConstructTests(unittest.TestCase):
    def test_catches_std_function_rand_and_static(self):
        findings = lint("bad_banned_constructs.cpp")
        got = rules(findings)
        self.assertIn("std-function-in-parallel", got)
        self.assertIn("rand-in-parallel", got)
        self.assertIn("static-in-parallel", got)
        # srand in the par_do thunk is also caught.
        self.assertEqual(got.count("rand-in-parallel"), 2)
        # static constexpr / static thread_local are allowed.
        self.assertEqual(got.count("static-in-parallel"), 1)

    def test_constructs_allowed_outside_regions(self):
        findings = lint("good_outside_region.cpp")
        self.assertEqual(findings, [],
                         msg="\n".join(f.render() for f in findings))


class MarkerTests(unittest.TestCase):
    def _lint_source(self, source):
        import tempfile

        with tempfile.NamedTemporaryFile(
                "w", suffix=".cpp", delete=False) as tmp:
            tmp.write(source)
            path = tmp.name
        try:
            return parallel_lint.lint_file(path)
        finally:
            os.unlink(path)

    PRELUDE = (
        "namespace pcc::parallel { template <typename F>"
        " void parallel_for(unsigned long, unsigned long, F&&); }\n"
        "using pcc::parallel::parallel_for;\n"
    )

    def test_private_write_marker_waives_same_line(self):
        findings = self._lint_source(self.PRELUDE + """
void f(unsigned* a) {
  parallel_for(0, 4, [&](unsigned long i) {
    a[i + 1] = 0;  // lint: private-write(stride-2 slices are disjoint)
  });
}
""")
        self.assertEqual(findings, [])

    def test_private_write_marker_waives_line_above(self):
        findings = self._lint_source(self.PRELUDE + """
void f(unsigned* a) {
  parallel_for(0, 4, [&](unsigned long i) {
    // lint: private-write(stride-2 slices are disjoint)
    a[i * 2] = 0;
  });
}
""")
        self.assertEqual(findings, [])

    def test_marker_reason_is_required_syntax(self):
        # A bare `lint: private-write` without parentheses does not waive.
        findings = self._lint_source(self.PRELUDE + """
void f(unsigned* a) {
  parallel_for(0, 4, [&](unsigned long i) {
    a[i + 1] = 0;  // lint: private-write
  });
}
""")
        self.assertEqual(rules(findings), ["raw-captured-write"])

    def test_allow_marker_waives_named_rule(self):
        findings = self._lint_source(self.PRELUDE + """
void f() {
  parallel_for(0, 4, [&](unsigned long) {
    static int x = 0;  // lint: allow(static-in-parallel: init-once cache)
    (void)x;
  });
}
""")
        self.assertEqual(findings, [])


class IdiomTests(unittest.TestCase):
    """Patterns from the real runtime that must stay clean."""

    def _lint_source(self, source):
        return MarkerTests._lint_source(self, source)

    PRELUDE = MarkerTests.PRELUDE + (
        "namespace pcc::parallel { template <typename T>"
        " T fetch_add(T*, T); template <typename T>"
        " bool cas(T*, T, T); }\n"
    )

    def test_atomic_index_scatter_is_shared_cursor_emission(self):
        # The old "canonical" emission idiom: race-free, but contended and
        # order-nondeterministic — now flagged with a pointer at emit_pack.
        findings = self._lint_source(self.PRELUDE + """
void f(unsigned* next, unsigned long* next_size) {
  parallel_for(0, 4, [&](unsigned long i) {
    next[pcc::parallel::fetch_add<unsigned long>(next_size, 1ul)] =
        static_cast<unsigned>(i);
  });
}
""")
        self.assertEqual(rules(findings), ["shared-cursor-emission"])
        self.assertIn("emit_pack", findings[0].message)

    def test_plain_fetch_add_counter_is_clean(self):
        # fetch_add as a counter (no subscript) is still fine.
        findings = self._lint_source(self.PRELUDE + """
void f(unsigned long* total) {
  parallel_for(0, 4, [&](unsigned long i) {
    pcc::parallel::fetch_add<unsigned long>(total, i);
  });
}
""")
        self.assertEqual(findings, [],
                         msg="\n".join(f.render() for f in findings))

    def test_compound_assign_on_captured_is_flagged(self):
        findings = self._lint_source(self.PRELUDE + """
void f(unsigned long* total) {
  parallel_for(0, 4, [&](unsigned long i) {
    *total += i;
  });
}
""")
        self.assertEqual(rules(findings), ["raw-captured-write"])

    def test_increment_of_captured_subscript_is_flagged(self):
        findings = self._lint_source(self.PRELUDE + """
void f(unsigned long* counts) {
  parallel_for(0, 64, [&](unsigned long i) {
    ++counts[i % 8];
  });
}
""")
        self.assertEqual(rules(findings), ["raw-captured-write"])

    def test_locals_and_owner_index_are_clean(self):
        findings = self._lint_source(self.PRELUDE + """
void f(unsigned* out, const unsigned* in) {
  parallel_for(0, 64, [&](unsigned long b) {
    unsigned acc = 0;
    for (unsigned long k = 0; k < 4; ++k) acc += in[k];
    out[b] = acc;
  });
}
""")
        self.assertEqual(findings, [],
                         msg="\n".join(f.render() for f in findings))


class PolicyTemplateTests(unittest.TestCase):
    """Policy-templated claim loops (core/labeling.cpp style): template
    parameters and `if constexpr` dispatch must neither hide races nor
    produce false positives on disciplined branches."""

    def test_templated_hook_and_shortcut_passes_are_clean(self):
        findings = lint("good_policy_template.cpp")
        self.assertEqual(findings, [],
                         msg="\n".join(f.render() for f in findings))

    def test_raw_store_inside_constexpr_branch_is_flagged(self):
        findings = lint("bad_policy_template.cpp")
        # Both branches store raw: direct `p[u]` and parent-hop `p[pu]`.
        self.assertEqual(rules(findings), ["raw-captured-write"] * 2)
        with open(os.path.join(FIXTURES, "bad_policy_template.cpp")) as f:
            lines = f.read().splitlines()
        self.assertIn("p[u] = pv;", lines[findings[0].line - 1])
        self.assertIn("p[pu] = pv;", lines[findings[1].line - 1])


if __name__ == "__main__":
    unittest.main()
