// pcc_query: forest-backed structure queries on a graph file.
//
// Runs the registered spanning-forest algorithm once (labels + forest in
// one pass), builds a forest_index, and answers the query subcommand:
//
//   pcc_query graph.adj path 17 93        # forest path, original edges
//   pcc_query graph.adj bridges           # bridge edges of the graph
//   pcc_query graph.adj stats 5           # root/size/diameter, 5 largest
//   pcc_query graph.adj largest 3         # sizes of the 3 largest
//
// The connectivity knobs mean exactly what they mean for pcc_components:
// --beta/--seed steer the decomposition, --threads/--backend the
// scheduler, --reorder the locality relabeling (answers are always in
// original vertex ids).

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "pcc.hpp"
#include "tool_common.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: pcc_query [--format {auto|adj|badj|snap}] [--beta B] [--seed S]\n"
    "                 [--threads T] [--backend {openmp|pool}]\n"
    "                 [--reorder {auto|none|degree|hub|bfs}] [--serial-io]\n"
    "                 INPUT COMMAND [ARGS]\n"
    "commands:\n"
    "  path U V     edges on the unique forest path between vertices U, V\n"
    "               (every edge is an edge of the input graph)\n"
    "  bridges      the bridge edges of the graph\n"
    "  stats [K]    root / size / forest diameter of the K largest\n"
    "               components (default 10)\n"
    "  largest [K]  sizes of the K largest components (default 10)\n";

using namespace pcc;

vertex_id parse_vertex(const std::string& s, size_t n) {
  long long v = -1;
  try {
    v = std::stoll(s);
  } catch (...) {
    throw tools::arg_error("not a vertex id: \"" + s + "\"");
  }
  if (v < 0 || static_cast<size_t>(v) >= n) {
    throw tools::arg_error("vertex " + s + " out of range [0, " +
                           std::to_string(n) + ")");
  }
  return static_cast<vertex_id>(v);
}

int run(int argc, char** argv) {
  tools::arg_parser args(
      argc, argv,
      {"format", "beta", "seed", "threads", "backend", "reorder"},
      {"serial-io"});
  if (args.positionals().size() < 2) tools::usage_and_exit(kUsage);
  const std::string input = args.positionals()[0];
  const std::string command = args.positionals()[1];

  const std::string backend = args.get("backend", "openmp");
  if (backend == "pool") {
    parallel::set_backend(parallel::backend::kThreadPool);
  } else if (backend != "openmp") {
    throw tools::arg_error("unknown --backend " + backend +
                           " (expected openmp or pool)");
  }
  const int threads = static_cast<int>(args.get_int("threads", 0));
  if (threads > 0) parallel::set_num_workers(threads);

  cc::cc_options opt;
  opt.algorithm = "spanning-forest";
  opt.beta = args.get_double("beta", 0.2);
  opt.seed = static_cast<uint64_t>(args.get_int("seed", 42));
  const std::string reorder_arg = args.get("reorder", "none");
  if (reorder_arg == "auto") {
    opt.reorder = cc::reorder_policy::kAuto;
  } else if (reorder_arg == "none") {
    opt.reorder = cc::reorder_policy::kNone;
  } else if (reorder_arg == "degree") {
    opt.reorder = cc::reorder_policy::kDegree;
  } else if (reorder_arg == "hub") {
    opt.reorder = cc::reorder_policy::kHub;
  } else if (reorder_arg == "bfs") {
    opt.reorder = cc::reorder_policy::kBfs;
  } else {
    throw tools::arg_error("unknown --reorder " + reorder_arg +
                           " (expected auto, none, degree, hub or bfs)");
  }

  graph::io_options io;
  io.parallel = !args.has("serial-io");
  graph::graph g;
  parallel::timer load_timer;
  try {
    g = graph::load_graph(input, graph::format_from_name(
                                     args.get("format", "auto")), io);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const size_t n = g.num_vertices();
  std::printf("loaded %s: n=%zu, m=%zu undirected edges in %.4fs\n",
              input.c_str(), n, g.num_undirected_edges(),
              load_timer.elapsed());

  const cc::algorithm* sfa = cc::find_algorithm("spanning-forest");
  std::vector<vertex_id> labels(n);
  cc::algo_workspace ws;
  parallel::timer run_timer;
  cc::run_algorithm(*sfa, g, opt, ws, labels);
  const double run_elapsed = run_timer.elapsed();

  parallel::timer index_timer;
  const cc::forest_index idx(n, ws.last_forest, labels);
  std::printf(
      "spanning forest: %zu edges, %zu component(s) in %.4fs (+%.4fs index) "
      "on %d thread(s)\n",
      idx.forest().size(), idx.components().num_components(), run_elapsed,
      index_timer.elapsed(), parallel::num_workers());

  if (command == "path") {
    if (args.positionals().size() != 4) tools::usage_and_exit(kUsage);
    const vertex_id u = parse_vertex(args.positionals()[2], n);
    const vertex_id v = parse_vertex(args.positionals()[3], n);
    if (!idx.connected(u, v)) {
      std::printf("%u and %u are not connected\n", u, v);
      return 0;
    }
    const auto path = idx.path(u, v);
    std::printf("path %u -> %u: %zu edge(s)\n", u, v, path.size());
    for (const auto& [a, b] : path) std::printf("  %u\t%u\n", a, b);
  } else if (command == "bridges") {
    const auto bridges = idx.bridges(g);
    std::printf("%zu bridge(s)\n", bridges.size());
    for (const auto& [a, b] : bridges) std::printf("  %u\t%u\n", a, b);
  } else if (command == "stats" || command == "largest") {
    size_t k = 10;
    if (args.positionals().size() > 2) {
      k = static_cast<size_t>(
          parse_vertex(args.positionals()[2], ~uint32_t{0}));
    }
    const auto ids = idx.k_largest(k);
    for (const vertex_id c : ids) {
      const auto st = idx.stats(c);
      if (command == "stats") {
        std::printf("component %u: root=%u size=%zu diameter=%zu\n", c,
                    st.root, st.size, st.diameter);
      } else {
        std::printf("component %u: size=%zu\n", c, st.size);
      }
    }
  } else {
    throw tools::arg_error("unknown command \"" + command + "\"");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const tools::arg_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    tools::usage_and_exit(kUsage);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
