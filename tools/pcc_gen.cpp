// pcc_gen: generate the paper's synthetic input graphs to files.
//
//   pcc_gen --type random --n 100000 --degree 5 --seed 1 out.adj
//   pcc_gen --type rmat --n 131072 --m 655360 out.adj
//   pcc_gen --type grid3d --n 97336 out.adj
//   pcc_gen --type line --n 500000 out.adj
//   pcc_gen --type orkut-like --n 16384 out.adj
//   ... --format snap writes a SNAP edge list instead of AdjacencyGraph;
//   --format auto picks from the output extension.

#include <cstdio>
#include <string>

#include "pcc.hpp"
#include "tool_common.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: pcc_gen --type {random|rmat|grid3d|line|orkut-like|star|cycle}\n"
    "               --n N [--degree D] [--m M] [--seed S]\n"
    "               [--format {auto|adj|badj|snap}] [--no-relabel] OUTPUT\n";

int run(int argc, char** argv) {
  using namespace pcc;
  tools::arg_parser args(argc, argv,
                         {"type", "n", "degree", "m", "seed", "format"},
                         {"no-relabel", "relabel"});
  if (args.positionals().size() != 1 || !args.has("type") || !args.has("n")) {
    tools::usage_and_exit(kUsage);
  }
  const std::string type = args.get("type", "");
  const size_t n = static_cast<size_t>(args.get_int("n", 0));
  const size_t degree = static_cast<size_t>(args.get_int("degree", 5));
  const size_t m = static_cast<size_t>(args.get_int("m", 5 * n));
  const uint64_t seed = static_cast<uint64_t>(args.get_int("seed", 1));
  const bool relabel = !args.has("no-relabel");
  const graph::file_format format =
      graph::format_from_name(args.get("format", "adj"));
  const std::string out = args.positionals()[0];

  graph::graph g;
  if (type == "random") {
    g = graph::random_graph(n, degree, seed);
  } else if (type == "rmat") {
    g = graph::rmat_graph(n, m, seed, {.a = 0.5, .b = 0.1, .c = 0.1});
  } else if (type == "grid3d") {
    g = graph::grid3d_graph(n, relabel, seed);
  } else if (type == "line") {
    g = graph::line_graph(n, relabel && args.has("relabel"), seed);
  } else if (type == "orkut-like") {
    g = graph::social_network_like(n, seed);
  } else if (type == "star") {
    g = graph::star_graph(n);
  } else if (type == "cycle") {
    g = graph::cycle_graph(n);
  } else {
    tools::usage_and_exit(kUsage);
  }

  try {
    graph::save_graph(g, out, format);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("wrote %s: n=%zu, m=%zu undirected edges (%s)\n", out.c_str(),
              g.num_vertices(), g.num_undirected_edges(),
              args.get("format", "adj").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const pcc::tools::arg_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    pcc::tools::usage_and_exit(kUsage);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
