// pcc_gen: generate the paper's synthetic input graphs to files.
//
//   pcc_gen --type random --n 100000 --degree 5 --seed 1 out.adj
//   pcc_gen --type rmat --n 131072 --m 655360 out.adj
//   pcc_gen --type grid3d --n 97336 out.adj
//   pcc_gen --type line --n 500000 out.adj
//   pcc_gen --type orkut-like --n 16384 out.adj
//   ... --format snap writes a SNAP edge list instead of AdjacencyGraph.

#include <cstdio>
#include <string>

#include "pcc.hpp"
#include "tool_common.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: pcc_gen --type {random|rmat|grid3d|line|orkut-like|star|cycle}\n"
    "               --n N [--degree D] [--m M] [--seed S]\n"
    "               [--format {adj|badj|snap}] [--no-relabel] OUTPUT\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace pcc;
  tools::arg_parser args(argc, argv);
  if (args.positionals().size() != 1 || !args.has("type") || !args.has("n")) {
    tools::usage_and_exit(kUsage);
  }
  const std::string type = args.get("type", "");
  const size_t n = static_cast<size_t>(args.get_int("n", 0));
  const size_t degree = static_cast<size_t>(args.get_int("degree", 5));
  const size_t m = static_cast<size_t>(args.get_int("m", 5 * n));
  const uint64_t seed = static_cast<uint64_t>(args.get_int("seed", 1));
  const bool relabel = !args.has("no-relabel");
  const std::string out = args.positionals()[0];

  graph::graph g;
  if (type == "random") {
    g = graph::random_graph(n, degree, seed);
  } else if (type == "rmat") {
    g = graph::rmat_graph(n, m, seed, {.a = 0.5, .b = 0.1, .c = 0.1});
  } else if (type == "grid3d") {
    g = graph::grid3d_graph(n, relabel, seed);
  } else if (type == "line") {
    g = graph::line_graph(n, relabel && args.has("relabel"), seed);
  } else if (type == "orkut-like") {
    g = graph::social_network_like(n, seed);
  } else if (type == "star") {
    g = graph::star_graph(n);
  } else if (type == "cycle") {
    g = graph::cycle_graph(n);
  } else {
    tools::usage_and_exit(kUsage);
  }

  const std::string format = args.get("format", "adj");
  if (format == "adj") {
    graph::write_adjacency_graph(g, out);
  } else if (format == "badj") {
    graph::write_binary_graph(g, out);
  } else if (format == "snap") {
    graph::write_edge_list(g, out);
  } else {
    tools::usage_and_exit(kUsage);
  }
  std::printf("wrote %s: n=%zu, m=%zu undirected edges (%s)\n", out.c_str(),
              g.num_vertices(), g.num_undirected_edges(), format.c_str());
  return 0;
}
