// Minimal flag parsing shared by the command-line tools.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace pcc::tools {

// Parses "--key value" pairs and bare positionals from argv.
class arg_parser {
 public:
  arg_parser(int argc, char** argv) {
    program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.rfind("--", 0) == 0) {
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          flags_[a.substr(2)] = argv[++i];
        } else {
          flags_[a.substr(2)] = "";  // boolean flag
        }
      } else {
        positionals_.push_back(a);
      }
    }
  }

  const std::string& program() const { return program_; }
  const std::vector<std::string>& positionals() const { return positionals_; }

  bool has(const std::string& key) const { return flags_.contains(key); }

  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? dflt : it->second;
  }

  long long get_int(const std::string& key, long long dflt) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? dflt : std::atoll(it->second.c_str());
  }

  double get_double(const std::string& key, double dflt) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? dflt : std::atof(it->second.c_str());
  }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positionals_;
};

[[noreturn]] inline void usage_and_exit(const std::string& text) {
  std::fprintf(stderr, "%s", text.c_str());
  std::exit(2);
}

}  // namespace pcc::tools
