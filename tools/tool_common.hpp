// Minimal flag parsing shared by the command-line tools.
#pragma once

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace pcc::tools {

// Thrown for any command-line problem (unknown flag, missing value,
// malformed number). Tools catch it, print the message plus usage text and
// exit 2 — distinct from runtime failures, which exit 1.
struct arg_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Parses "--key value" / "--key=value" flags and bare positionals from
// argv. Every tool declares its flags up front: `value_flags` take exactly
// one argument, `bool_flags` never consume one — so a boolean flag can
// precede a positional ("pcc_components --stats graph.adj") without
// swallowing it. Anything else starting with "--" is an error rather than
// a silently ignored typo.
class arg_parser {
 public:
  arg_parser(int argc, const char* const* argv,
             std::vector<std::string> value_flags,
             std::vector<std::string> bool_flags)
      : program_(argc > 0 ? argv[0] : "") {
    const auto is_in = [](const std::vector<std::string>& set,
                          const std::string& key) {
      return std::find(set.begin(), set.end(), key) != set.end();
    };
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.rfind("--", 0) != 0) {
        positionals_.push_back(a);
        continue;
      }
      std::string key = a.substr(2);
      std::string value;
      bool has_value = false;
      if (const size_t eq = key.find('='); eq != std::string::npos) {
        value = key.substr(eq + 1);
        key.resize(eq);
        has_value = true;
      }
      if (is_in(bool_flags, key)) {
        if (has_value) throw arg_error("flag --" + key + " takes no value");
        flags_[key] = "";
      } else if (is_in(value_flags, key)) {
        if (!has_value) {
          if (i + 1 >= argc) throw arg_error("missing value for --" + key);
          value = argv[++i];
        }
        flags_[key] = value;
      } else {
        throw arg_error("unknown flag --" + key);
      }
    }
  }

  const std::string& program() const { return program_; }
  const std::vector<std::string>& positionals() const { return positionals_; }

  bool has(const std::string& key) const { return flags_.contains(key); }

  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = flags_.find(key);
    return it == flags_.end() ? dflt : it->second;
  }

  // Numeric getters parse with std::from_chars and reject anything but a
  // fully consumed number ("--beta abc" and "--seed 12x" are errors, not
  // silent zeros the way atoll/atof made them).
  long long get_int(const std::string& key, long long dflt) const {
    auto it = flags_.find(key);
    if (it == flags_.end()) return dflt;
    long long v = 0;
    if (!parse_full(it->second, &v)) {
      throw arg_error("flag --" + key + " expects an integer, got \"" +
                      it->second + "\"");
    }
    return v;
  }

  double get_double(const std::string& key, double dflt) const {
    auto it = flags_.find(key);
    if (it == flags_.end()) return dflt;
    double v = 0;
    if (!parse_full(it->second, &v)) {
      throw arg_error("flag --" + key + " expects a number, got \"" +
                      it->second + "\"");
    }
    return v;
  }

 private:
  template <typename T>
  static bool parse_full(const std::string& s, T* out) {
    const char* b = s.data();
    const char* e = b + s.size();
    const auto [p, ec] = std::from_chars(b, e, *out);
    return b != e && ec == std::errc{} && p == e;
  }

  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positionals_;
};

[[noreturn]] inline void usage_and_exit(const std::string& text) {
  std::fprintf(stderr, "%s", text.c_str());
  std::exit(2);
}

}  // namespace pcc::tools
