// pcc_components: run connectivity on a graph file and report / save the
// labeling.
//
//   pcc_components input.adj
//   pcc_components --format snap input.txt --algo decomp-arb-hybrid
//   pcc_components input.adj --beta 0.1 --threads 8 --out labels.txt
//   pcc_components input.adj --algo serial-sf --verify
//   pcc_components input.adj --verbose          # show the probe + selection
//
// Algorithms come from the cc::algorithm registry; `--algo help` lists
// every registered name with a one-line description.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <span>
#include <string>

#include "pcc.hpp"
#include "tool_common.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: pcc_components [--format {auto|adj|badj|snap}] [--algo NAME]\n"
    "                      [--beta B] [--seed S] [--threads T] [--repeat N]\n"
    "                      [--backend {openmp|pool}]\n"
    "                      [--reorder {auto|none|degree|hub|bfs}]\n"
    "                      [--out labels.txt] [--forest forest.txt]\n"
    "                      [--stats] [--verify] [--verbose] [--serial-io]\n"
    "                      INPUT\n"
    "  --backend B  scheduler backend for the run (default: openmp);\n"
    "               --threads caps the worker count on that backend.\n"
    "  --algo NAME  a registered algorithm (default: auto, which probes the\n"
    "               graph and picks one); `--algo help` lists them all.\n"
    "  --repeat N   answer the query N times through one reusable\n"
    "               algo_workspace and report per-run times; for\n"
    "               workspace-backed algorithms runs after the first are\n"
    "               allocation-free.\n"
    "  --reorder M  locality relabeling (graph/reorder.hpp). `auto` (the\n"
    "               default) lets `--algo auto` decide from the probe, per\n"
    "               query; a named mode relabels ONCE up front, runs every\n"
    "               repeat on the relabeled CSR, and maps the labels back —\n"
    "               the relabel cost is reported separately, amortized over\n"
    "               --repeat. Output labels are always original vertex ids.\n"
    "  --verbose    print the probed graph statistics and which algorithm\n"
    "               `auto` selected.\n"
    "  --serial-io  use the reference serial loaders instead of the\n"
    "               parallel mmap + from_chars path (A/B debugging aid).\n";

using namespace pcc;

int run(int argc, char** argv) {
  tools::arg_parser args(
      argc, argv,
      {"format", "algo", "beta", "seed", "threads", "repeat", "out", "forest",
       "backend", "reorder"},
      {"stats", "verify", "verbose", "serial-io"});
  if (args.positionals().size() != 1) tools::usage_and_exit(kUsage);

  const std::string input = args.positionals()[0];
  const graph::file_format format =
      graph::format_from_name(args.get("format", "auto"));
  const std::string algo = args.get("algo", "auto");
  if (algo == "help" || algo == "list") {
    throw tools::arg_error("registered algorithms:\n" +
                           cc::algorithm_listing());
  }
  const double beta = args.get_double("beta", 0.2);
  const uint64_t seed = static_cast<uint64_t>(args.get_int("seed", 42));
  // Backend first: set_num_workers applies to the current backend.
  const std::string backend = args.get("backend", "openmp");
  if (backend == "pool") {
    parallel::set_backend(parallel::backend::kThreadPool);
  } else if (backend != "openmp") {
    throw tools::arg_error("unknown --backend " + backend +
                           " (expected openmp or pool)");
  }
  const int threads = static_cast<int>(args.get_int("threads", 0));
  if (threads > 0) parallel::set_num_workers(threads);
  const int repeat = std::max(1, static_cast<int>(args.get_int("repeat", 1)));

  cc::cc_options opt;
  opt.algorithm = algo;
  opt.beta = beta;
  opt.seed = seed;
  const cc::algorithm* algorithm = nullptr;
  try {
    algorithm = &cc::resolve_algorithm(opt);
  } catch (const std::invalid_argument& e) {
    throw tools::arg_error(std::string(e.what()) +
                           "\nregistered algorithms:\n" +
                           cc::algorithm_listing());
  }

  parallel::phase_timer io_phases;
  graph::io_options io;
  io.parallel = !args.has("serial-io");
  io.phases = &io_phases;

  graph::graph g;
  parallel::timer load_timer;
  try {
    g = graph::load_graph(input, format, io);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const double load_elapsed = load_timer.elapsed();
  std::printf("loaded %s: n=%zu, m=%zu undirected edges in %.4fs\n",
              input.c_str(), g.num_vertices(), g.num_undirected_edges(),
              load_elapsed);
  if (args.has("stats")) {
    for (const auto& [phase, secs] : io_phases.phases()) {
      std::printf("  %-12s %.4fs\n", phase.c_str(), secs);
    }
  }

  // Locality relabeling. "auto" defers to the selector per query; a named
  // mode is applied once here, every repeat runs on the relabeled CSR, and
  // the labels are mapped back after the timing loop — the transform cost
  // amortizes over --repeat and is reported on its own line.
  const std::string reorder_arg = args.get("reorder", "auto");
  graph::reorder_result rr;
  bool pre_reordered = false;
  const graph::graph* run_g = &g;
  if (reorder_arg == "auto") {
    opt.reorder = cc::reorder_policy::kAuto;
  } else {
    graph::reorder_mode mode;
    if (!graph::reorder_from_name(reorder_arg, &mode)) {
      throw tools::arg_error("unknown --reorder " + reorder_arg +
                             " (expected auto, none, degree, hub or bfs)");
    }
    opt.reorder = cc::reorder_policy::kNone;  // applied here, not per query
    if (mode != graph::reorder_mode::kNone) {
      parallel::timer rt;
      rr = graph::reorder_graph(g, mode);
      run_g = &rr.g;
      pre_reordered = true;
      std::printf("reorder (%s): relabeled in %.4fs (amortized over %d run(s))\n",
                  graph::reorder_name(mode), rt.elapsed(), repeat);
    }
  }

  const bool want_stats = args.has("stats") || args.has("verbose");
  cc::cc_stats stats;
  std::vector<vertex_id> labels(g.num_vertices());
  cc::algo_workspace ws;
  ws.reserve(g.num_vertices(), g.num_edges());

  std::vector<double> times(static_cast<size_t>(repeat));
  for (int r = 0; r < repeat; ++r) {
    parallel::timer t;
    cc::run_algorithm(*algorithm, *run_g, opt, ws, labels,
                      want_stats && r == 0 ? &stats : nullptr);
    times[static_cast<size_t>(r)] = t.elapsed();
    if (repeat > 1) {
      std::printf("run %d: %.4fs\n", r, times[static_cast<size_t>(r)]);
    }
  }
  if (pre_reordered) {
    // Back to original vertex ids before counting / verifying / writing.
    std::vector<vertex_id> original(g.num_vertices());
    graph::map_labels_to_original(labels, rr.perm, rr.inv, original);
    labels.swap(original);
  }
  std::sort(times.begin(), times.end());
  const double elapsed = times[times.size() / 2];
  if (repeat > 1) {
    std::printf("min %.4fs / median %.4fs over %d runs\n", times.front(),
                elapsed, repeat);
  }
  const size_t components = cc::num_components(labels);

  // stats.algorithm holds the concrete algorithm that ran ("auto" resolves
  // to its selection before the inner run records it).
  const char* ran = want_stats && stats.algorithm ? stats.algorithm
                                                  : algorithm->name;
  std::printf("%s: %zu component(s) in %.4fs on %d thread(s)\n", ran,
              components, elapsed, parallel::num_workers());

  if (args.has("verbose") && stats.selected) {
    const cc::probe_stats& ps = stats.probe;
    std::printf(
        "probe: n=%zu m=%zu sampled=%zu avg_degree=%.2f skew=%.2f "
        "isolated=%.2f bfs_rounds=%zu bfs_visited=%zu "
        "diameter_proxy=%.2f large_component=%s\n",
        ps.n, ps.m, ps.sampled, ps.avg_degree, ps.degree_skew,
        ps.isolated_fraction, ps.bfs_rounds, ps.bfs_visited, ps.diameter_proxy,
        ps.large_component ? "yes" : "no");
    std::printf("auto selected: %s (reorder: %s)\n", stats.algorithm,
                stats.reorder);
  }

  if (args.has("stats") && !stats.levels.empty()) {
    std::printf("levels:\n");
    for (size_t i = 0; i < stats.levels.size(); ++i) {
      const auto& ls = stats.levels[i];
      std::printf("  %zu: n=%zu m=%zu clusters=%zu rounds=%zu\n", i, ls.n,
                  ls.m, ls.num_clusters, ls.bfs_rounds);
    }
  }

  if (args.has("verify")) {
    const bool ok = baselines::is_valid_components_labeling(g, labels);
    std::printf("verification against sequential BFS: %s\n",
                ok ? "passed" : "FAILED");
    if (!ok) return 1;
  }

  const std::string forest_out = args.get("forest", "");
  if (!forest_out.empty()) {
    // If the query algorithm already produced a forest (--algo
    // spanning-forest), reuse it; otherwise answer with one run of the
    // registered spanning-forest entry through the same workspace. Either
    // way --beta/--seed/--backend/--threads apply uniformly.
    std::span<const graph::edge> forest = ws.last_forest;
    std::vector<graph::edge> mapped;
    if (!algorithm->produces_forest) {
      const cc::algorithm* sfa = cc::find_algorithm("spanning-forest");
      std::vector<vertex_id> sf_labels(run_g->num_vertices());
      cc::run_algorithm(*sfa, *run_g, opt, ws, sf_labels, nullptr);
      forest = ws.last_forest;
    }
    if (pre_reordered) {
      // The run used the relabeled CSR; endpoints pull back through inv.
      mapped.resize(forest.size());
      parallel::parallel_for(0, forest.size(), [&](size_t i) {
        // lint: private-write(owner index i)
        mapped[i] = {rr.inv[forest[i].first], rr.inv[forest[i].second]};
      });
      forest = mapped;
    }
    std::ofstream f(forest_out);
    f << "# spanning forest: " << forest.size() << " edges\n";
    for (auto [u, w] : forest) f << u << '\t' << w << '\n';
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", forest_out.c_str());
      return 1;
    }
    std::printf("spanning forest (%zu edges) written to %s\n", forest.size(),
                forest_out.c_str());
  }

  const std::string out = args.get("out", "");
  if (!out.empty()) {
    std::ofstream f(out);
    for (vertex_id l : labels) f << l << '\n';
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("labels written to %s\n", out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const tools::arg_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    tools::usage_and_exit(kUsage);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
