// pcc_components: run connectivity on a graph file and report / save the
// labeling.
//
//   pcc_components input.adj
//   pcc_components --format snap input.txt --algo decomp-arb-hybrid
//   pcc_components input.adj --beta 0.1 --threads 8 --out labels.txt
//   pcc_components input.adj --algo serial-sf --verify
//
// Algorithms: decomp-arb-hybrid (default), decomp-arb, decomp-min,
// serial-sf, serial-sf-rem, parallel-sf-prm, parallel-sf-pbbs,
// parallel-sf-rem, hybrid-bfs, multistep, label-prop, shiloach-vishkin,
// random-mate, awerbuch-shiloach, afforest.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <span>
#include <string>

#include "pcc.hpp"
#include "tool_common.hpp"

namespace {

constexpr const char kUsage[] =
    "usage: pcc_components [--format {auto|adj|badj|snap}] [--algo NAME]\n"
    "                      [--beta B] [--seed S] [--threads T] [--repeat N]\n"
    "                      [--out labels.txt] [--forest forest.txt]\n"
    "                      [--stats] [--verify] [--serial-io] INPUT\n"
    "  --repeat N   (decomp-* algos) answer the query N times through one\n"
    "               reusable cc_engine and report per-run times; runs after\n"
    "               the first are allocation-free.\n"
    "  --serial-io  use the reference serial loaders instead of the\n"
    "               parallel mmap + from_chars path (A/B debugging aid).\n";

using namespace pcc;

bool decomp_variant_of(const std::string& algo, cc::decomp_variant* v) {
  if (algo == "decomp-arb-hybrid") *v = cc::decomp_variant::kArbHybrid;
  else if (algo == "decomp-arb") *v = cc::decomp_variant::kArb;
  else if (algo == "decomp-min") *v = cc::decomp_variant::kMin;
  else return false;
  return true;
}

std::vector<vertex_id> run_algo(const std::string& algo, const graph::graph& g,
                                double beta, uint64_t seed,
                                cc::cc_stats* stats) {
  const auto decomp = [&](cc::decomp_variant v) {
    cc::cc_options opt;
    opt.variant = v;
    opt.beta = beta;
    opt.seed = seed;
    return cc::connected_components(g, opt, stats);
  };
  if (algo == "decomp-arb-hybrid") return decomp(cc::decomp_variant::kArbHybrid);
  if (algo == "decomp-arb") return decomp(cc::decomp_variant::kArb);
  if (algo == "decomp-min") return decomp(cc::decomp_variant::kMin);
  if (algo == "serial-sf") return baselines::serial_sf_components(g);
  if (algo == "serial-sf-rem") return baselines::serial_sf_rem_components(g);
  if (algo == "parallel-sf-prm") return baselines::parallel_sf_prm_components(g);
  if (algo == "parallel-sf-pbbs") return baselines::parallel_sf_pbbs_components(g);
  if (algo == "hybrid-bfs") return baselines::hybrid_bfs_components(g);
  if (algo == "multistep") return baselines::multistep_components(g);
  if (algo == "label-prop") return baselines::label_prop_components(g);
  if (algo == "shiloach-vishkin") return baselines::shiloach_vishkin_components(g);
  if (algo == "random-mate") return baselines::random_mate_components(g, seed);
  if (algo == "awerbuch-shiloach") return baselines::awerbuch_shiloach_components(g);
  if (algo == "parallel-sf-rem") return baselines::parallel_sf_rem_components(g);
  if (algo == "afforest") return baselines::afforest_components(g);
  tools::usage_and_exit(kUsage);
}

int run(int argc, char** argv) {
  tools::arg_parser args(
      argc, argv,
      {"format", "algo", "beta", "seed", "threads", "repeat", "out", "forest"},
      {"stats", "verify", "serial-io"});
  if (args.positionals().size() != 1) tools::usage_and_exit(kUsage);

  const std::string input = args.positionals()[0];
  const graph::file_format format =
      graph::format_from_name(args.get("format", "auto"));
  const std::string algo = args.get("algo", "decomp-arb-hybrid");
  const double beta = args.get_double("beta", 0.2);
  const uint64_t seed = static_cast<uint64_t>(args.get_int("seed", 42));
  const int threads = static_cast<int>(args.get_int("threads", 0));
  if (threads > 0) parallel::set_num_workers(threads);

  const int repeat = static_cast<int>(args.get_int("repeat", 1));
  cc::decomp_variant variant;
  if (repeat > 1 && !decomp_variant_of(algo, &variant)) {
    std::fprintf(stderr, "error: --repeat needs a decomp-* algorithm\n");
    return 1;
  }

  parallel::phase_timer io_phases;
  graph::io_options io;
  io.parallel = !args.has("serial-io");
  io.phases = &io_phases;

  graph::graph g;
  parallel::timer load_timer;
  try {
    g = graph::load_graph(input, format, io);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const double load_elapsed = load_timer.elapsed();
  std::printf("loaded %s: n=%zu, m=%zu undirected edges in %.4fs\n",
              input.c_str(), g.num_vertices(), g.num_undirected_edges(),
              load_elapsed);
  if (args.has("stats")) {
    for (const auto& [phase, secs] : io_phases.phases()) {
      std::printf("  %-12s %.4fs\n", phase.c_str(), secs);
    }
  }

  cc::cc_stats stats;
  std::vector<vertex_id> labels;
  size_t components = 0;
  double elapsed = 0;
  if (repeat > 1) {
    // Repeated-query mode: one engine, N runs. The first run sizes the
    // arenas; later runs never touch the heap, so their times isolate the
    // algorithmic cost.
    cc::cc_options opt;
    opt.variant = variant;
    opt.beta = beta;
    opt.seed = seed;
    cc::cc_engine engine(opt);
    engine.reserve(g.num_vertices(), g.num_edges());
    std::vector<double> times(static_cast<size_t>(repeat));
    std::span<const vertex_id> last;
    for (int r = 0; r < repeat; ++r) {
      parallel::timer t;
      last = engine.run(g, args.has("stats") && r == 0 ? &stats : nullptr);
      times[static_cast<size_t>(r)] = t.elapsed();
      std::printf("run %d: %.4fs\n", r, times[static_cast<size_t>(r)]);
    }
    // Query index straight from the engine-owned span — no label copy.
    const cc::component_index index(last);
    components = index.num_components();
    if (args.has("verify") || !args.get("out", "").empty()) {
      labels.assign(last.begin(), last.end());
    }
    std::vector<double> sorted = times;
    std::sort(sorted.begin(), sorted.end());
    elapsed = sorted[sorted.size() / 2];
    std::printf("min %.4fs / median %.4fs over %d runs\n", sorted.front(),
                elapsed, repeat);
  } else {
    parallel::timer t;
    labels = run_algo(algo, g, beta, seed,
                      args.has("stats") ? &stats : nullptr);
    elapsed = t.elapsed();
    components = cc::num_components(labels);
  }

  std::printf("%s: %zu component(s) in %.4fs on %d thread(s)\n", algo.c_str(),
              components, elapsed, parallel::num_workers());

  if (args.has("stats") && !stats.levels.empty()) {
    std::printf("levels:\n");
    for (size_t i = 0; i < stats.levels.size(); ++i) {
      const auto& ls = stats.levels[i];
      std::printf("  %zu: n=%zu m=%zu clusters=%zu rounds=%zu\n", i, ls.n,
                  ls.m, ls.num_clusters, ls.bfs_rounds);
    }
  }

  if (args.has("verify")) {
    const bool ok = baselines::is_valid_components_labeling(g, labels);
    std::printf("verification against sequential BFS: %s\n",
                ok ? "passed" : "FAILED");
    if (!ok) return 1;
  }

  const std::string forest_out = args.get("forest", "");
  if (!forest_out.empty()) {
    cc::sf_options sopt;
    sopt.beta = beta;
    sopt.seed = seed;
    const auto forest = cc::spanning_forest(g, sopt);
    std::ofstream f(forest_out);
    f << "# spanning forest: " << forest.size() << " edges\n";
    for (auto [u, w] : forest) f << u << '\t' << w << '\n';
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", forest_out.c_str());
      return 1;
    }
    std::printf("spanning forest (%zu edges) written to %s\n", forest.size(),
                forest_out.c_str());
  }

  const std::string out = args.get("out", "");
  if (!out.empty()) {
    std::ofstream f(out);
    for (vertex_id l : labels) f << l << '\n';
    if (!f) {
      std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("labels written to %s\n", out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const tools::arg_error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    tools::usage_and_exit(kUsage);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
