"""checks: the pcc_analyze check families over the cppast IR.

Four families (see CONTRIBUTING.md "Concurrency discipline" for the
catalog):

  shared-write              raw stores reaching memory visible to other
                            iterations of a parallel region, including
                            through local pointer aliases and one level of
                            helper-function calls.
  shared-cursor-emission    fetch_add-cursor output loops (direct subscript
                            or via a local index) that bypass emit.hpp.
  workspace-escape          spans/pointers carved from a *locally owned*
                            workspace arena escaping the owning scope;
                            plus workspace mutation inside parallel bodies
                            (a workspace is not thread-safe).
  hygiene                   std::function, allocation, rand/time, and
                            iteration-order-dependent hash traversal inside
                            parallel bodies and registry run_* impls.

Plus the annotation audit: `// lint: private-write(<invariant>)` must carry
non-empty text and anchor a store expression; `// analyze: suppress(check:
reason)` (and the legacy `// lint: allow(rule: reason)`) must carry a
reason and actually suppress something.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import cppast
from cppast import (
    CallExpr,
    Decl,
    FunctionDef,
    Group,
    LambdaExpr,
    LexedFile,
    Store,
    flat_text,
    iter_tokens,
)

# ---------------------------------------------------------------------------
# Vocabulary
# ---------------------------------------------------------------------------

# Calls whose lambda arguments run once per index across workers. The value
# is the index of the lambda parameter whose distinct values make plain
# writes disjoint ("owner index"), or None when no such parameter exists
# (par_do halves, frontier pieces that may share a vertex, ...).
PARALLEL_CONTEXTS: dict[str, int | None] = {
    "parallel_for": 0,
    "parallel_do": None,
    "par_do": None,
    "emit_pack": 0,
    "count_then_emit": 0,
    "frontier_edge_for": None,
    "fix_split_pieces": None,
    "add_new_centers": 0,
    "tabulate": 0,
    "map": 0,
    "reduce": 0,
    "reduce_ws": 0,
    "reduce_sum": 0,
    "reduce_sum_ws": 0,
    "reduce_max": 0,
    "reduce_min": 0,
    "scan_exclusive_into": 0,
    "scan_exclusive_span": 0,
    "pack_index_into": 0,
    "pack_into": 0,
    "filter_into": 0,
    "edge_map": None,
}

# The atomics.hpp vocabulary (plus std::atomic member spellings): a store
# expressed through these is disciplined by construction.
ATOMIC_HELPERS = {
    "cas", "write_min", "write_max", "write_once", "read_once",
    "atomic_load", "atomic_store", "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "fetch_xor", "compare_exchange_strong",
    "compare_exchange_weak", "exchange", "test_and_set", "store", "load",
}

# Library calls that write through an argument (argument indices listed).
# A call to one of these inside a parallel region is a store to whatever
# the destination argument aliases.
KNOWN_WRITERS: dict[str, tuple[int, ...]] = {
    "memcpy": (0,),
    "memmove": (0,),
    "memset": (0,),
    "copy": (2,),
    "copy_n": (2,),
    "copy_backward": (2,),
    "move_backward": (2,),
    "fill": (0,),
    "fill_n": (0,),
    "iota": (0,),
    "swap": (0, 1),
    "uninitialized_copy": (2,),
    "uninitialized_fill": (0,),
}

ALLOC_CALLS = {
    "malloc", "calloc", "realloc", "aligned_alloc", "strdup",
    "make_unique", "make_shared", "to_string",
}

ALLOC_METHODS = {"resize", "reserve", "push_back", "emplace_back",
                 "emplace", "insert", "append", "shrink_to_fit"}

RAND_TIME_CALLS = {"rand", "srand", "random", "drand48", "lrand48",
                   "time", "clock", "gettimeofday", "clock_gettime"}

CHECK_NAMES = [
    "shared-write",
    "shared-cursor-emission",
    "workspace-escape",
    "workspace-take-in-parallel",
    "std-function-in-parallel",
    "alloc-in-parallel",
    "rand-time-in-parallel",
    "hash-iteration-order",
    "orphaned-annotation",
    "empty-annotation",
    "unused-suppression",
]

# Legacy parallel_lint rule names accepted in `lint: allow(...)` markers.
LEGACY_RULE_MAP = {
    "raw-captured-write": "shared-write",
    "shared-cursor-emission": "shared-cursor-emission",
    "std-function-in-parallel": "std-function-in-parallel",
    "rand-in-parallel": "rand-time-in-parallel",
}

MARKER_PRIVATE = re.compile(r"lint:\s*private-write\s*\(([^)]*)\)")
MARKER_SUPPRESS = re.compile(
    r"(?:analyze:\s*suppress|lint:\s*allow)\s*\(\s*([a-z-]+)\s*:?([^)]*)\)")


# ---------------------------------------------------------------------------
# Findings & file context
# ---------------------------------------------------------------------------


@dataclass
class Finding:
    path: str
    line: int
    col: int
    check: str
    message: str
    function: str = ""
    region_line: int = 0
    suppressed: bool = False
    suppress_reason: str = ""

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: warning: "
                f"[{self.check}] {self.message}")


@dataclass
class Annotation:
    line: int
    reason: str
    kind: str  # 'private-write' | 'suppress'
    check: str = ""  # suppress target
    used: bool = False
    anchored: bool = False


@dataclass
class FileContext:
    lf: LexedFile
    functions: list[FunctionDef]
    private_write: dict[int, Annotation] = field(default_factory=dict)
    suppress: dict[int, list[Annotation]] = field(default_factory=dict)
    all_store_lines: set[int] = field(default_factory=set)

    def private_write_at(self, line: int) -> Annotation | None:
        for ln in (line, line - 1):
            a = self.private_write.get(ln)
            if a is not None:
                return a
        return None

    def suppression_at(self, line: int, check: str) -> Annotation | None:
        for ln in (line, line - 1):
            for a in self.suppress.get(ln, ()):
                if a.check == check:
                    return a
        return None


def build_file_context(lf: LexedFile) -> FileContext:
    ctx = FileContext(lf, cppast.find_functions(lf))
    for c in lf.comments:
        m = MARKER_PRIVATE.search(c.text)
        if m:
            ctx.private_write[c.line] = Annotation(
                c.line, m.group(1).strip(), "private-write")
        for m in MARKER_SUPPRESS.finditer(c.text):
            check = m.group(1).strip()
            check = LEGACY_RULE_MAP.get(check, check)
            ctx.suppress.setdefault(c.line, []).append(Annotation(
                c.line, m.group(2).strip(" :"), "suppress", check))
    for s in cppast.find_stores(lf.nodes, skip_lambda_bodies=False):
        ctx.all_store_lines.add(s.line)
    # Known-writer calls and atomic-helper calls also anchor annotations
    # (the annotated "store" may be a memcpy or a CAS loop).
    for call in cppast.find_calls(lf.nodes):
        if call.name in KNOWN_WRITERS or call.name in ATOMIC_HELPERS:
            ctx.all_store_lines.add(call.line)
    return ctx


# ---------------------------------------------------------------------------
# Scopes & regions
# ---------------------------------------------------------------------------


@dataclass
class Region:
    kind: str  # context call name
    lam: LambdaExpr
    owner: str | None  # induction parameter name, if any
    scope_chain: list[dict[str, Decl]]  # outermost-first, excl. lambda
    fn: FunctionDef
    call_line: int
    # names declared inside the region body (locals — includes params)
    locals: dict[str, Decl] = field(default_factory=dict)

    def lookup(self, name: str):
        if name in self.locals:
            return "local", self.locals[name]
        for scope in reversed(self.scope_chain):
            if name in scope:
                return "captured", scope[name]
        return "unknown", None


def _lambda_scope(lam: LambdaExpr) -> dict[str, Decl]:
    scope: dict[str, Decl] = {}
    for p in lam.params:
        scope.setdefault(p.name, p)
    cppast.collect_decls(lam.body, into=scope, skip_lambda_bodies=True)
    for c in lam.captures:
        if c.is_init:
            scope.setdefault(c.name, Decl(c.name, "auto", c.init, lam.line,
                                          lam.col))
    return scope


def find_regions(fn: FunctionDef) -> list[Region]:
    """Parallel regions in a function, including regions nested inside
    other regions' bodies (each gets the full enclosing scope chain)."""
    regions: list[Region] = []
    fn_scope: dict[str, Decl] = {}
    for p in fn.params:
        fn_scope.setdefault(p.name, p)
    cppast.collect_decls(fn.body, into=fn_scope, skip_lambda_bodies=True)

    def scan(siblings: list, chain: list[dict[str, Decl]]) -> None:
        i = 0
        while i < len(siblings):
            x = siblings[i]
            if not x.is_group() and x.kind == "id" and \
                    x.text in PARALLEL_CONTEXTS:
                # template args then an argument list
                j = i + 1
                if j < len(siblings) and not siblings[j].is_group() and \
                        siblings[j].text == "<":
                    depth = 0
                    while j < len(siblings):
                        y = siblings[j]
                        if y.is_group():
                            break
                        if y.text == "<":
                            depth += 1
                        elif y.text == ">":
                            depth -= 1
                            if depth == 0:
                                j += 1
                                break
                        elif y.text == ">>":
                            depth -= 2
                            if depth <= 0:
                                j += 1
                                break
                        elif y.text in (";", "{"):
                            break
                        j += 1
                if j < len(siblings) and siblings[j].is_group() and \
                        siblings[j].opener == "(":
                    owner_idx = PARALLEL_CONTEXTS[x.text]
                    for arg in cppast.split_commas(siblings[j].kids):
                        k = 0
                        while k < len(arg):
                            lam = cppast._lambda_at(arg, k)
                            if lam is not None:
                                owner = None
                                if owner_idx is not None and \
                                        len(lam.params) > owner_idx:
                                    owner = lam.params[owner_idx].name
                                reg = Region(x.text, lam, owner,
                                             list(chain), fn, x.line)
                                reg.locals = _lambda_scope(lam)
                                regions.append(reg)
                                # nested regions inside this body
                                scan(lam.body.kids, chain + [reg.locals])
                                k = lam.end_index
                                continue
                            if arg[k].is_group():
                                scan(arg[k].kids, chain)
                            k += 1
                    i = j + 1
                    continue
            if x.is_group():
                if x.opener == "[":
                    lam = cppast._lambda_at(siblings, i)
                    if lam is not None:
                        # non-region lambda: scan its body in an extended
                        # chain so regions inside helpers are still found
                        scan(lam.body.kids, chain + [_lambda_scope(lam)])
                        i = lam.end_index
                        continue
                scan(x.kids, chain)
            i += 1

    scan(fn.body.kids, [fn_scope])
    return regions


# ---------------------------------------------------------------------------
# Injectivity of index expressions in the owner parameter
# ---------------------------------------------------------------------------


def _strip_casts(nodes: list) -> list:
    """Peel `static_cast<T>(e)`, `T(e)`-style single-group wrappers and
    parentheses down to the underlying expression."""
    while True:
        if len(nodes) == 1 and nodes[0].is_group() and \
                nodes[0].opener == "(":
            nodes = nodes[0].kids
            continue
        # static_cast < T > ( e )  /  size_t ( e )
        if nodes and not nodes[0].is_group() and nodes[0].kind == "id":
            if nodes[-1].is_group() and nodes[-1].opener == "(":
                mid = nodes[1:-1]
                mid_ok = all(
                    (not m.is_group()) and
                    (m.kind in ("id", "num") or
                     m.text in ("<", ">", ">>", "::", "*", "&", ","))
                    for m in mid)
                if mid_ok:
                    nodes = nodes[-1].kids
                    continue
        return nodes


def _split_additive(nodes: list) -> list[tuple[str, list]] | None:
    """Split an expression at top-level + and -; None if other top-level
    operators (besides * inside parts) make the shape unhandled."""
    parts: list[tuple[str, list]] = []
    cur: list = []
    sign = "+"
    for x in nodes:
        if not x.is_group() and x.kind == "punct":
            if x.text in ("+", "-"):
                if cur:
                    parts.append((sign, cur))
                cur = []
                sign = x.text
                continue
            if x.text in ("*", "<<", "::", ".", "->"):
                cur.append(x)
                continue
            return None
        cur.append(x)
    if cur:
        parts.append((sign, cur))
    return parts or None


def _ids_in(nodes: list):
    for t in iter_tokens(nodes):
        if t.kind == "id":
            yield t.text


_VALUE_METHODS = {"size", "empty", "ssize", "length", "count"}


def _pointer_escape(nodes: list, names: set[str]) -> bool:
    """True iff an identifier from `names` appears in pointer-carrying
    position in the expression: the span/pointer itself (bare, `.data()`,
    `.subspan(...)`, `&x[i]`) rather than a value read (`x[i]`,
    `x.size()`), which copies and cannot dangle."""

    def walk(siblings: list) -> bool:
        for i, x in enumerate(siblings):
            if x.is_group():
                if walk(x.kids):
                    return True
                continue
            if x.kind != "id" or x.text not in names:
                continue
            prev = siblings[i - 1] if i > 0 else None
            if prev is not None and not prev.is_group() and \
                    prev.text in (".", "->", "::"):
                continue  # member of some other object sharing the name
            if prev is not None and not prev.is_group() and prev.text == "&":
                return True  # address-of: a pointer even through a subscript
            nxt = siblings[i + 1] if i + 1 < len(siblings) else None
            if nxt is not None and nxt.is_group() and nxt.opener == "[":
                continue  # x[i]: a value read, not the span itself
            if nxt is not None and not nxt.is_group() and \
                    nxt.text in (".", "->"):
                mem = siblings[i + 2] if i + 2 < len(siblings) else None
                if mem is not None and not mem.is_group() and \
                        mem.text in _VALUE_METHODS:
                    continue  # x.size(): a value
            return True
        return False

    return walk(nodes)


_CAST_HEADS = {"static_cast", "const_cast", "reinterpret_cast"}
_INT_TYPE_HEADS = {"int", "unsigned", "long", "short", "signed", "size_t",
                   "ptrdiff_t", "uint32_t", "uint64_t", "int32_t", "int64_t",
                   "uintptr_t", "intptr_t"}


def _is_worker_id_call(nodes: list) -> bool:
    """True iff the expression is exactly a (possibly qualified, possibly
    cast-wrapped) call `worker_id()` — e.g. `worker_id()`,
    `pcc::parallel::worker_id()`, `static_cast<size_t>(worker_id())`.
    NOTE: does not use _strip_casts, which would peel the nullary call
    itself; only recognized cast spellings are descended so `f(worker_id())`
    with an arbitrary `f` is NOT accepted."""
    while True:
        toks = [x for x in nodes if not (not x.is_group() and x.text == "::")]
        if len(toks) == 1 and toks[0].is_group() and toks[0].opener == "(":
            nodes = toks[0].kids
            continue
        if len(toks) < 2:
            return False
        call = toks[-1]
        if not (call.is_group() and call.opener == "(" and
                all(not t.is_group() for t in toks[:-1])):
            return False
        if not call.kids:
            return (toks[-2].text == "worker_id" and
                    all(t.kind == "id" for t in toks[:-1]))
        head = toks[0].text
        if head in _CAST_HEADS or (len(toks) == 2 and
                                   head in _INT_TYPE_HEADS):
            nodes = call.kids
            continue
        return False


def worker_slot_index(sub: list, worker_locals: set[str]) -> bool:
    """True iff the subscript pins the touched cell to the calling worker:
    exactly `worker_id()` or exactly a local initialized from worker_id().
    Distinct workers get distinct slots and a worker re-writing its own
    slot races with nobody, so such stores are per-owner private — the
    parked-worker / per-worker-deque pattern (each participant owns the
    deque at its own worker index). Deliberately narrow: any arithmetic
    around the id (`worker_id() + i`, `base - worker_id()`) can collide
    across workers and stays flagged."""
    if _is_worker_id_call(sub):
        return True
    toks = [x for x in _strip_casts(sub)
            if not (not x.is_group() and x.text == "::")]
    return (len(toks) == 1 and not toks[0].is_group() and
            toks[0].text in worker_locals)


def injective_in_owner(nodes: list, owner: str | None, is_invariant) -> bool:
    """True iff the index expression provably takes distinct values for
    distinct values of `owner` while everything else is loop-invariant:
    `i`, `i ± inv`, `inv ± i`, `i * LIT`, `LIT * i`, `i << LIT`, and sums
    of one such owner term with invariant terms."""
    if owner is None:
        return False
    nodes = _strip_casts(nodes)
    parts = _split_additive(nodes)
    if parts is None:
        return False
    owner_parts = []
    for sign, part in parts:
        # Checked BEFORE stripping: _strip_casts treats the nullary call
        # `worker_id()` itself as a cast-like wrapper and peels it to
        # nothing, which would make the part look vacuously invariant.
        # worker_id() varies per THREAD, not per iteration: an owner term
        # plus a worker offset can collide across workers (wid 0 at i=5 ==
        # wid 1 at i=4), so it is never a loop-invariant offset.
        if "worker_id" in set(_ids_in(part)):
            return False
        part = _strip_casts(part)
        ids = set(_ids_in(part))
        if owner in ids:
            owner_parts.append((sign, part))
        else:
            if not all(is_invariant(n) for n in ids):
                return False
    if len(owner_parts) != 1:
        return False
    _, part = owner_parts[0]
    toks = [x for x in part if not (not x.is_group() and x.text == "::")]
    # bare owner
    if len(toks) == 1 and not toks[0].is_group() and toks[0].text == owner:
        return True
    # owner * LIT | LIT * owner | owner << LIT
    if len(toks) == 3 and all(not t.is_group() for t in toks):
        a, op, b = toks
        if op.text in ("*", "<<"):
            if a.text == owner and b.kind == "num":
                return True
            if op.text == "*" and b.text == owner and a.kind == "num":
                return True
    return False


# ---------------------------------------------------------------------------
# Alias resolution
# ---------------------------------------------------------------------------


@dataclass
class Origin:
    name: str | None  # ultimate base, None if unresolvable
    cat: str  # 'local' | 'captured' | 'unknown'
    decl: Decl | None
    binding: str  # 'inj' | 'inv' | 'other' — offset shape vs owner


def resolve_origin(name: str, region: Region, depth: int = 0) -> Origin:
    cat, decl = region.lookup(name)
    if cat != "local" or decl is None:
        return Origin(name, cat, decl, "inv")
    if not (decl.is_pointer_like() or decl.is_ref()):
        return Origin(name, cat, decl, "inv")
    init = _strip_casts(list(decl.init)) if decl.init else []
    if not init:
        return Origin(name, cat, decl, "inv")
    if depth >= 3:
        return Origin(name, "unknown", decl, "other")

    def invariant(n: str) -> bool:
        return n not in region.locals

    # `&X[e]` → base X offset e
    if not init[0].is_group() and init[0].text == "&":
        rest = init[1:]
        base_tok = rest[0] if rest and not rest[0].is_group() else None
        if base_tok is not None and base_tok.kind == "id" and \
                len(rest) >= 2 and rest[1].is_group() and \
                rest[1].opener == "[":
            inner = resolve_origin(base_tok.text, region, depth + 1)
            idx = rest[1].kids
            if injective_in_owner(idx, region.owner, invariant):
                b = "inj" if inner.binding in ("inv",) else "other"
            elif all(invariant(n) for n in _ids_in(idx)):
                b = inner.binding
            else:
                b = "other"
            return Origin(inner.name, inner.cat, inner.decl, b)

    # additive: base (.data() | bare | alias) [+ offsets]
    parts = _split_additive(init)
    if parts is None:
        return Origin(name, "unknown", decl, "other")
    base_origin: Origin | None = None
    inj_parts = 0
    other = False
    for _, part in parts:
        part = _strip_casts(part)
        ptoks = [x for x in part if not (not x.is_group() and
                                         x.text == "::")]
        base_candidate = None
        if ptoks and not ptoks[0].is_group() and ptoks[0].kind == "id":
            nxt = ptoks[1] if len(ptoks) > 1 else None
            if nxt is None or (not nxt.is_group() and
                               nxt.text in (".", "->")) or \
                    (nxt.is_group() and nxt.opener == "["):
                base_candidate = ptoks[0].text
        if base_candidate is not None and base_origin is None:
            cat2, decl2 = region.lookup(base_candidate)
            if decl2 is None or decl2.is_pointer_like() or \
                    decl2.is_container():
                # `X.data()` / `X` / `X.begin()` — a memory base
                sub = next((x for x in ptoks[1:] if x.is_group() and
                            x.opener == "["), None)
                inner = resolve_origin(base_candidate, region, depth + 1)
                if sub is not None:
                    if injective_in_owner(sub.kids, region.owner,
                                          invariant):
                        inj_parts += 1
                    elif not all(invariant(n) for n in _ids_in(sub.kids)):
                        other = True
                base_origin = inner
                continue
        # offset part
        ids = set(_ids_in(part))
        if region.owner is not None and region.owner in ids:
            if injective_in_owner(part, region.owner, invariant):
                inj_parts += 1
            else:
                other = True
        elif not all(invariant(n) for n in ids):
            other = True
    if base_origin is None:
        return Origin(name, "unknown", decl, "other")
    if other or base_origin.binding == "other":
        binding = "other"
    elif inj_parts == 1 or base_origin.binding == "inj":
        binding = "inj" if inj_parts + (base_origin.binding == "inj") == 1 \
            else "other"
    else:
        binding = "inv"
    return Origin(base_origin.name, base_origin.cat, base_origin.decl,
                  binding)


# ---------------------------------------------------------------------------
# The analyzer
# ---------------------------------------------------------------------------


class Analyzer:
    def __init__(self, contexts: dict[str, FileContext]):
        self.contexts = contexts
        self.findings: list[Finding] = []
        # cross-file function index for one-level callee resolution
        self.fn_index: dict[str, list[FunctionDef]] = {}
        for ctx in contexts.values():
            for fn in ctx.functions:
                self.fn_index.setdefault(fn.name, []).append(fn)
        self._callee_cache: dict[int, dict[str, list]] = {}

    # -- plumbing -----------------------------------------------------------

    def report(self, ctx: FileContext, line: int, col: int, check: str,
               message: str, fn: FunctionDef | None = None,
               region: Region | None = None) -> None:
        f = Finding(ctx.lf.path, line, col, check, message,
                    fn.qualname if fn else "",
                    region.call_line if region else 0)
        if check == "shared-write":
            a = ctx.private_write_at(line)
            if a is not None and a.reason:
                a.used = True
                return
        sup = ctx.suppression_at(line, check)
        if sup is not None and sup.reason:
            sup.used = True
            f.suppressed = True
            f.suppress_reason = sup.reason
        self.findings.append(f)

    # -- entry --------------------------------------------------------------

    def run(self) -> list[Finding]:
        for ctx in self.contexts.values():
            seen_bodies: set[int] = set()
            for fn in ctx.functions:
                # nested function defs are listed on their own; skip bodies
                # we already visited through an enclosing definition
                if id(fn.body) in seen_bodies:
                    continue
                seen_bodies.add(id(fn.body))
                self.check_function(ctx, fn)
        for ctx in self.contexts.values():
            self.audit_annotations(ctx)
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.check))
        return self.findings

    # -- per function -------------------------------------------------------

    def check_function(self, ctx: FileContext, fn: FunctionDef) -> None:
        regions = find_regions(fn)
        region_coords = {(r.lam.line, r.lam.col) for r in regions}
        for region in regions:
            self.check_region(ctx, fn, region, region_coords)
        self.check_workspace_escape(ctx, fn)
        if fn.name.startswith("run_") or fn.name == "run":
            self.check_hygiene(ctx, fn, fn.body.kids, region=None,
                               include_alloc=False)

    # -- region checks ------------------------------------------------------

    def check_region(self, ctx: FileContext, fn: FunctionDef,
                     region: Region, region_coords: set) -> None:
        body = region.lam.body.kids
        cursor_locals = {
            name for name, d in region.locals.items()
            if d.init and any(n == "fetch_add" for n in _ids_in(d.init))
        }
        for store in cppast.find_stores(body, skip_lambda_bodies=True):
            self.check_store(ctx, fn, region, store, cursor_locals)
        self.check_region_calls(ctx, fn, region)
        self.check_hygiene(ctx, fn, body, region, include_alloc=True)
        # Non-region lambdas defined directly in this body: when invoked
        # here their stores run on this region's threads — analyze them in
        # the region's scope. Lambdas that are arguments of a (nested)
        # parallel context are their own regions and are skipped.
        def walk(siblings: list, chain: list) -> None:
            i = 0
            while i < len(siblings):
                x = siblings[i]
                if x.is_group():
                    if x.opener == "[":
                        lam = cppast._lambda_at(siblings, i)
                        if lam is not None:
                            if (lam.line, lam.col) in region_coords:
                                i = lam.end_index
                                continue
                            inner = Region(region.kind, lam, None,
                                           chain, fn, region.call_line)
                            inner.locals = _lambda_scope(lam)
                            for store in cppast.find_stores(
                                    lam.body.kids,
                                    skip_lambda_bodies=True):
                                self.check_store(ctx, fn, inner, store,
                                                 set())
                            walk(lam.body.kids, chain + [inner.locals])
                            i = lam.end_index
                            continue
                    walk(x.kids, chain)
                i += 1

        walk(body, region.scope_chain + [region.locals])

    def check_store(self, ctx: FileContext, fn: FunctionDef, region: Region,
                    store: Store, cursor_locals: set[str]) -> None:
        lv = store.lvalue

        # `T& p = expr;` / `T* p = expr;`: the `=` is a declaration
        # initializer binding a fresh local, not a write through it.
        if store.op == "=" and lv.base is not None and not lv.indirect \
                and not lv.member and not lv.subscripts:
            d = region.locals.get(lv.base)
            if d is not None and d.init and d.line == store.line:
                return

        def invariant(n: str) -> bool:
            return n not in region.locals

        # shared-cursor: subscript computed with fetch_add, directly or
        # through a local initialized from fetch_add
        for sub in lv.subscripts:
            ids = set(_ids_in(sub))
            if "fetch_add" in ids or (ids & cursor_locals):
                self.report(
                    ctx, store.line, store.col, "shared-cursor-emission",
                    "subscript computed from a fetch_add shared cursor; "
                    "emitters contend on one cache line and output order "
                    "depends on the schedule. Use emit_pack / "
                    "count_then_emit / frontier_edge_for "
                    "(parallel/emit.hpp)", fn, region)
                return

        target_shared = False
        what = lv.base or "a dereference"

        if lv.this_member:
            target_shared = True
            what = "this->" + (lv.base or "?")
        elif lv.base is None:
            target_shared = True
        else:
            cat, decl = region.lookup(lv.base)
            if cat == "local" and decl is not None:
                if decl.is_atomic():
                    return
                if decl.is_ref() or ((decl.is_pointer_like() or
                                      decl.is_container()) and
                                     (lv.indirect or lv.member or
                                      lv.subscripts)):
                    origin = resolve_origin(lv.base, region)
                    if origin.cat == "local":
                        od = origin.decl
                        if od is not None and (od.is_container() or
                                               od.is_arena()):
                            return  # storage owned by this iteration
                        if od is not None and not od.is_pointer_like():
                            return
                        # local pointer of unknown provenance: treat as
                        # shared only if it has no resolvable origin at all
                        if origin.binding == "other":
                            target_shared = True
                        else:
                            return
                    elif origin.binding == "inj":
                        return  # alias pinned to an owner-owned slot
                    else:
                        target_shared = True
                        what = f"`{lv.base}` (aliases `{origin.name}`)" \
                            if origin.name and origin.name != lv.base \
                            else f"`{lv.base}`"
                else:
                    return  # plain local value
            elif cat == "captured" and decl is not None:
                if decl.is_atomic():
                    return
                by_ref = region.lam.captures_name(lv.base) and \
                    region.lam.capture_by_ref(lv.base)
                if decl.is_scalar_value() and not by_ref and \
                        not lv.subscripts and not lv.indirect and \
                        not lv.member:
                    return  # mutable by-value copy, private
                target_shared = True
                what = f"`{lv.base}`"
            else:
                # unknown: file-scope / class member / template name
                target_shared = True
                what = f"`{lv.base}`"

        if not target_shared:
            return
        # owner-indexed disjointness: any subscript level injective in the
        # owner parameter makes the touched cells iteration-private; a
        # subscript that is exactly the calling worker's id pins the cell
        # to one thread (per-worker slot / parked-worker deque pattern)
        worker_locals = {
            name for name, d in region.locals.items()
            if d.init and _is_worker_id_call(list(d.init))
        }
        for sub in lv.subscripts:
            if injective_in_owner(sub, region.owner, invariant):
                return
            if worker_slot_index(sub, worker_locals):
                return
        self.report(
            ctx, store.line, store.col, "shared-write",
            f"raw write through captured {what} inside a "
            f"{region.kind} body; route it through parallel/atomics.hpp, "
            "index it injectively by the region's owner parameter, or "
            "state the disjointness invariant with "
            "`// lint: private-write(<invariant>)`", fn, region)

    # -- one-level callee resolution ----------------------------------------

    def _callee_param_stores(self, callee: FunctionDef) -> dict[str, list]:
        """param name -> [(line, col, annotated)] raw stores through that
        parameter in the callee body (one level, no recursion)."""
        cached = self._callee_cache.get(id(callee))
        if cached is not None:
            return cached
        ctx = self.contexts.get(callee.path)
        out: dict[str, list] = {}
        pnames = {p.name: p for p in callee.params}
        scope: dict[str, Decl] = dict(pnames)
        cppast.collect_decls(callee.body, into=scope,
                             skip_lambda_bodies=False)
        # one-level aliases of params
        alias_of: dict[str, str] = {}
        for name, d in scope.items():
            if name in pnames or not (d.is_pointer_like() or d.is_ref()):
                continue
            ids = [n for n in _ids_in(d.init)] if d.init else []
            for n in ids:
                if n in pnames:
                    alias_of[name] = n
                    break
        for store in cppast.find_stores(callee.body.kids,
                                        skip_lambda_bodies=False):
            lv = store.lvalue
            if lv.base is None:
                continue
            pname = None
            if lv.base in pnames and (lv.indirect or lv.member or
                                      lv.subscripts or
                                      pnames[lv.base].is_ref()):
                pname = lv.base
            elif lv.base in alias_of and (lv.indirect or lv.subscripts or
                                          lv.member):
                pname = alias_of[lv.base]
            if pname is None:
                continue
            p = pnames[pname]
            if p.is_atomic() or not (p.is_pointer_like() or
                                     p.is_container()):
                continue
            if _const_protected(p.type_text):
                continue
            annotated = False
            if ctx is not None:
                a = ctx.private_write_at(store.line)
                annotated = a is not None and bool(a.reason)
            out.setdefault(pname, []).append(
                (store.line, store.col, annotated))
        self._callee_cache[id(callee)] = out
        return out

    def check_region_calls(self, ctx: FileContext, fn: FunctionDef,
                           region: Region) -> None:
        def invariant(n: str) -> bool:
            return n not in region.locals

        for call in cppast.find_calls(region.lam.body.kids,
                                      skip_lambda_bodies=True):
            if call.name in ATOMIC_HELPERS or \
                    call.name in PARALLEL_CONTEXTS:
                continue
            # carving from the arena inside the region: the bump cursor is
            # plain state, so concurrent take() calls race
            if call.name in ("take", "take_bytes") and call.base is not None:
                cat, decl = region.lookup(call.base)
                if decl is None or decl.is_arena() or decl.is_arena_ref():
                    self.report(
                        ctx, call.line, call.col,
                        "workspace-take-in-parallel",
                        f"`{call.base}.{call.name}()` inside a "
                        f"{region.kind} body: the arena bump cursor is not "
                        "synchronized across iterations; take spans before "
                        "entering the region", fn, region)
                continue
            # library writers: the destination argument is a store target
            if call.name in KNOWN_WRITERS:
                for di in KNOWN_WRITERS[call.name]:
                    if di >= len(call.args):
                        continue
                    shared = self._arg_shared_base(call.args[di], region)
                    if shared is not None:
                        self.report(
                            ctx, call.line, call.col, "shared-write",
                            f"{call.name}() writes through captured "
                            f"`{shared}` inside a {region.kind} body; "
                            "prove disjointness with `// lint: "
                            "private-write(<invariant>)` or restructure "
                            "through parallel/emit.hpp", fn, region)
                continue
            defs = self.fn_index.get(call.name)
            if not defs or len(defs) > 4:
                continue
            for callee in defs:
                if callee is fn:
                    continue
                pstores = self._callee_param_stores(callee)
                if not pstores:
                    continue
                nargs = min(len(call.args), len(callee.params))
                for ai in range(nargs):
                    pname = callee.params[ai].name
                    raw = [s for s in pstores.get(pname, ()) if not s[2]]
                    if not raw:
                        continue
                    shared = self._arg_shared_base(call.args[ai], region)
                    if shared is None:
                        continue
                    line0, col0, _ = raw[0]
                    self.report(
                        ctx, call.line, call.col, "shared-write",
                        f"helper `{callee.name}` "
                        f"({_rel(callee.path)}:{line0}) stores through "
                        f"parameter `{pname}`, which receives captured "
                        f"`{shared}` here; the store is raw for every "
                        "caller in a parallel region — use atomics in the "
                        "helper or annotate the store there", fn, region)

    def _arg_shared_base(self, arg: list, region: Region) -> str | None:
        """If an argument expression passes memory shared across
        iterations, return the base name; None if private/invariant-safe."""
        nodes = _strip_casts(list(arg))

        def invariant(n: str) -> bool:
            return n not in region.locals

        toks = [x for x in nodes if not (not x.is_group() and
                                         x.text in ("::",))]
        if not toks:
            return None
        # &X[inj] → iteration-private element
        if not toks[0].is_group() and toks[0].text == "&":
            rest = toks[1:]
            if rest and not rest[0].is_group() and rest[0].kind == "id" \
                    and len(rest) >= 2 and rest[1].is_group() and \
                    rest[1].opener == "[":
                if injective_in_owner(rest[1].kids, region.owner,
                                      invariant):
                    return None
                return self._shared_name(rest[0].text, region)
            return None
        base_tok = toks[0]
        if base_tok.is_group() or base_tok.kind != "id":
            return None
        name = base_tok.text
        # X | X.data() | X.data() + inj
        rest = toks[1:]
        if rest:
            # method call chain on X is fine; check a trailing +offset
            parts = _split_additive(toks)
            if parts and len(parts) > 1:
                tail_ids = set()
                inj = False
                for _, part in parts[1:]:
                    if injective_in_owner(part, region.owner, invariant):
                        inj = True
                    else:
                        tail_ids |= set(_ids_in(part))
                if inj and all(invariant(n) for n in tail_ids):
                    return None  # X.data() + i*k : private slice base
        cat, decl = region.lookup(name)
        if cat == "local" and decl is not None:
            if not (decl.is_pointer_like() or decl.is_container()):
                return None
            origin = resolve_origin(name, region)
            if origin.cat == "local" or origin.binding == "inj":
                return None
            return origin.name or name
        if cat == "captured" and decl is not None:
            if decl.is_pointer_like() or decl.is_container():
                return name
            return None
        return None  # unknown names: too little info, stay quiet

    def _shared_name(self, name: str, region: Region) -> str | None:
        cat, decl = region.lookup(name)
        if cat == "local":
            return None
        if decl is not None and not (decl.is_pointer_like() or
                                     decl.is_container()):
            return None
        return name

    # -- workspace escape ---------------------------------------------------

    def check_workspace_escape(self, ctx: FileContext,
                               fn: FunctionDef) -> None:
        scope: dict[str, Decl] = {}
        for p in fn.params:
            scope.setdefault(p.name, p)
        cppast.collect_decls(fn.body, into=scope, skip_lambda_bodies=False)
        arenas = {n for n, d in scope.items()
                  if d.is_arena() and n not in {p.name for p in fn.params}}
        if not arenas:
            return
        # taint: locals initialized from a local arena's take()/data()
        tainted: set[str] = set()
        for _ in range(3):
            grew = False
            for n, d in scope.items():
                if n in tainted or not d.init:
                    continue
                ids = set(_ids_in(d.init))
                if ids & arenas:
                    # only memory-yielding uses taint (take/data/chain)
                    txt = flat_text(d.init)
                    if re.search(r"\b(take|data|take_bytes)\b", txt) or \
                            ids & tainted:
                        tainted.add(n)
                        grew = True
                elif ids & tainted:
                    if d.is_pointer_like() or d.is_container() or \
                            "span" in d.type_text or d.type_text == "auto":
                        tainted.add(n)
                        grew = True
            if not grew:
                break

        params = {p.name: p for p in fn.params}

        def is_escape_target(lv) -> str | None:
            if lv.this_member:
                return "a class member"
            if lv.base is None:
                return None
            if lv.base in scope and lv.base not in params:
                return None  # local
            if lv.base in params:
                p = params[lv.base]
                if (p.is_ref() or p.is_pointer_like()) and \
                        (lv.indirect or lv.member or lv.subscripts or
                         p.is_ref()):
                    if p.is_arena_ref():
                        return None
                    return f"out-parameter `{lv.base}`"
                return None
            # not local, not param: member or global
            return f"`{lv.base}` (not function-local)"

        # stores whose RHS carries tainted memory into an escaping target
        for store in cppast.find_stores(fn.body.kids,
                                        skip_lambda_bodies=False):
            carries = _pointer_escape(store.rhs, tainted)
            if not carries:
                rhs_ids = set(_ids_in(store.rhs))
                txt = flat_text(store.rhs)
                carries = bool(rhs_ids & arenas and
                               re.search(r"\b(take|data)\b", txt))
            if not carries:
                continue
            target = is_escape_target(store.lvalue)
            if target is None:
                continue
            self.report(
                ctx, store.line, store.col, "workspace-escape",
                f"memory carved from locally-owned workspace "
                f"`{sorted(arenas)[0]}` is stored into {target}, which "
                "outlives the arena's scope; the span dangles once the "
                "workspace resets or is destroyed", fn)
        # return statements that carry tainted memory out
        self._check_escape_returns(ctx, fn, arenas, tainted)

    def _check_escape_returns(self, ctx: FileContext, fn: FunctionDef,
                              arenas: set[str], tainted: set[str]) -> None:
        def walk(siblings: list) -> None:
            i = 0
            while i < len(siblings):
                x = siblings[i]
                if x.is_group():
                    walk(x.kids)
                    i += 1
                    continue
                if x.kind == "id" and x.text == "return":
                    j = i + 1
                    expr: list = []
                    while j < len(siblings):
                        y = siblings[j]
                        if not y.is_group() and y.kind == "punct" and \
                                y.text == ";":
                            break
                        expr.append(y)
                        j += 1
                    ids = set(_ids_in(expr))
                    txt = flat_text(expr)
                    if _pointer_escape(expr, tainted) or \
                            (ids & arenas and
                             re.search(r"\btake\b", txt)):
                        self.report(
                            ctx, x.line, x.col, "workspace-escape",
                            "returning memory carved from a "
                            "locally-owned workspace arena; the arena "
                            "dies with this scope and the returned "
                            "span/pointer dangles", fn)
                    i = j
                    continue
                i += 1

        walk(fn.body.kids)

    # -- hygiene ------------------------------------------------------------

    def check_hygiene(self, ctx: FileContext, fn: FunctionDef, body: list,
                      region: Region | None, include_alloc: bool) -> None:
        where = f"a {region.kind} body" if region else \
            f"registry hot path `{fn.qualname}`"

        # token-level: std::function, raw new
        toks = list(iter_tokens(body))
        for k, t in enumerate(toks):
            if t.kind != "id":
                continue
            if t.text == "function" and k >= 2 and \
                    toks[k - 1].text == "::" and toks[k - 2].text == "std":
                self.report(
                    ctx, t.line, t.col, "std-function-in-parallel",
                    f"std::function inside {where}: type-erased callables "
                    "heap-allocate and synchronize; use a template "
                    "parameter or a function pointer", fn, region)
            elif t.text == "new" and include_alloc and region is not None:
                prev = toks[k - 1] if k > 0 else None
                if prev is None or prev.text != "operator":
                    self.report(
                        ctx, t.line, t.col, "alloc-in-parallel",
                        f"operator new inside {where}: parallel bodies "
                        "must draw scratch from the caller's workspace "
                        "arena, not the system allocator", fn, region)

        # call-level
        for call in cppast.find_calls(body):
            if call.name in RAND_TIME_CALLS and call.base in (None, "std"):
                self.report(
                    ctx, call.line, call.col, "rand-time-in-parallel",
                    f"{call.name}() inside {where}: hidden global state "
                    "(and a syscall for time sources); use "
                    "parallel/random.hpp's counter-based rng and hoist "
                    "time reads out of the region", fn, region)
            elif include_alloc and region is not None and \
                    call.name in ALLOC_CALLS:
                self.report(
                    ctx, call.line, call.col, "alloc-in-parallel",
                    f"{call.name}() allocates inside {where}; draw from "
                    "the workspace arena instead", fn, region)
            elif include_alloc and region is not None and \
                    call.base is not None and call.name in ALLOC_METHODS:
                # growing a container inside the body; private local
                # vectors still allocate — the discipline is arena scratch.
                # The repo's hash_map/hash_map64/hash_table are fixed
                # capacity (CAS-slot insert, no rehash), so insert() on
                # them never allocates.
                cat, decl = region.lookup(call.base)
                if decl is not None and re.search(
                        r"\bhash_(map64|map|table|set)\b", decl.type_text):
                    continue
                if decl is None or decl.is_container():
                    self.report(
                        ctx, call.line, call.col, "alloc-in-parallel",
                        f"`{call.base}.{call.name}()` may allocate inside "
                        f"{where}; pre-size outside the region or use the "
                        "workspace arena", fn, region)
            elif call.name == "begin" and call.base is not None:
                self._maybe_hash_iteration(ctx, fn, region, call.base,
                                           call.line, call.col, where)

        # range-for over unordered containers
        self._hash_range_for(ctx, fn, region, body, where)

        # container declarations allocate
        if include_alloc and region is not None:
            for name, d in _body_decls(body).items():
                if d.is_container() and not d.is_ref() and \
                        "span" not in d.type_text:
                    self.report(
                        ctx, d.line, d.col, "alloc-in-parallel",
                        f"`{name}` ({d.type_text.strip()}) is an "
                        f"allocating container declared inside {where}; "
                        "use workspace spans", fn, region)

    def _maybe_hash_iteration(self, ctx, fn, region, base, line, col,
                              where) -> None:
        decl = None
        if region is not None:
            _, decl = region.lookup(base)
        else:
            scope: dict[str, Decl] = {p.name: p for p in fn.params}
            cppast.collect_decls(fn.body, into=scope,
                                 skip_lambda_bodies=False)
            decl = scope.get(base)
        if decl is not None and decl.is_unordered():
            self.report(
                ctx, line, col, "hash-iteration-order",
                f"iterating hash container `{base}` inside {where}: "
                "traversal order is seed/rehash-dependent, which makes "
                "output nondeterministic; iterate a sorted snapshot or "
                "key order instead", fn, region)

    def _hash_range_for(self, ctx, fn, region, body, where) -> None:
        def walk(siblings: list) -> None:
            i = 0
            while i < len(siblings):
                x = siblings[i]
                if not x.is_group() and x.kind == "id" and \
                        x.text == "for" and i + 1 < len(siblings) and \
                        siblings[i + 1].is_group() and \
                        siblings[i + 1].opener == "(":
                    kids = siblings[i + 1].kids
                    for k, y in enumerate(kids):
                        if not y.is_group() and y.kind == "punct" and \
                                y.text == ":":
                            range_ids = [n for n in
                                         _ids_in(kids[k + 1 :])]
                            for nm in range_ids[:1]:
                                self._maybe_hash_iteration(
                                    ctx, fn, region, nm,
                                    x.line, x.col, where)
                            break
                if x.is_group():
                    walk(x.kids)
                i += 1

        walk(body)

    # -- annotation audit ---------------------------------------------------

    def audit_annotations(self, ctx: FileContext) -> None:
        for line, a in sorted(ctx.private_write.items()):
            if not a.reason:
                self.report(
                    ctx, line, 1, "empty-annotation",
                    "lint: private-write() with empty invariant text; "
                    "state the disjointness argument or delete the "
                    "annotation")
                continue
            anchored = line in ctx.all_store_lines or \
                (line + 1) in ctx.all_store_lines
            a.anchored = anchored
            if not anchored:
                self.report(
                    ctx, line, 1, "orphaned-annotation",
                    "lint: private-write annotation no longer anchors a "
                    "store expression (the store moved or was deleted); "
                    "move or remove it")
        for line, anns in sorted(ctx.suppress.items()):
            for a in anns:
                if not a.reason:
                    self.report(
                        ctx, line, 1, "empty-annotation",
                        f"suppression for [{a.check}] with no reason "
                        "text; suppressions must explain themselves")
                elif a.check not in CHECK_NAMES:
                    self.report(
                        ctx, line, 1, "unused-suppression",
                        f"suppression names unknown check `{a.check}` "
                        f"(catalog: {', '.join(CHECK_NAMES)})")
                elif not a.used:
                    self.report(
                        ctx, line, 1, "unused-suppression",
                        f"suppression for [{a.check}] matched no finding; "
                        "stale suppressions hide future regressions — "
                        "remove it")


def _body_decls(body: list) -> dict[str, Decl]:
    g = Group("{", 0, 0, list(body))
    return cppast.collect_decls(g, skip_lambda_bodies=True)


def _const_protected(type_text: str) -> bool:
    t = type_text
    if "span" in t:
        return bool(re.search(r"span\s*<\s*const\b", t))
    return "const" in t.split()


def _rel(path: str) -> str:
    for marker in ("/src/", "/tools/", "/tests/", "/bench/"):
        k = path.find(marker)
        if k >= 0:
            return path[k + 1 :]
    return path
