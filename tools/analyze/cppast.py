"""cppast: a self-contained structural C++ front-end for pcc_analyze.

This module builds the AST-ish IR the analyzer's checks run on. It is
deliberately NOT a full C++ parser: it lexes, builds balanced token trees,
and then recognizes exactly the constructs the concurrency checks need —
function definitions, lambda expressions with parsed capture lists,
block-scoped declarations with their type text, store expressions with a
resolved lvalue shape, and call expressions with argument slices.

The design mirrors the libclang cursor model (every IR node carries a
file/line/col and checks walk a tree), so a `clang.cindex` front-end can be
slotted in behind the same IR if/when the bindings are available; this
implementation has zero dependencies beyond the Python standard library,
which is what lets `ctest -R analyze` run on any machine that can build
the repo.

Known envelope (enforced by the fixture corpus rather than by hope):
  * templates are handled textually — template headers are skipped, bodies
    are parsed like ordinary code;
  * overload resolution is by name only; the checks that resolve callees
    treat multiple same-name definitions conservatively;
  * preprocessor conditionals are taken as written (all branches lexed).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

KEYWORDS_CONTROL = {
    "if", "for", "while", "switch", "catch", "return", "do", "else",
    "case", "default", "goto", "co_return", "co_await", "co_yield",
}

TYPE_KEYWORDS = {
    "auto", "bool", "char", "short", "int", "long", "unsigned", "signed",
    "float", "double", "void", "size_t", "uint8_t", "uint16_t", "uint32_t",
    "uint64_t", "int8_t", "int16_t", "int32_t", "int64_t", "ptrdiff_t",
    "wchar_t", "char8_t", "char16_t", "char32_t",
}

QUALIFIER_KEYWORDS = {
    "const", "constexpr", "consteval", "constinit", "volatile", "static",
    "inline", "extern", "mutable", "register", "thread_local", "typename",
    "struct", "class", "enum", "union", "restrict", "__restrict",
    "__restrict__",
}

_TOKEN_RE = re.compile(
    r"""
      (?P<id>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<num>\.?\d(?:[\w.']|[eEpP][+-])*)
    | (?P<punct><<=|>>=|->\*|\.\.\.|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\|
                |[+\-*/%&|^!=<>]=|[{}()\[\];,.<>?:~!%^&*+=/|\\-])
    """,
    re.VERBOSE,
)


@dataclass
class Tok:
    kind: str  # 'id' | 'num' | 'str' | 'chr' | 'punct'
    text: str
    line: int
    col: int

    def is_group(self) -> bool:
        return False


@dataclass
class Group:
    """A balanced (), [] or {} token group."""

    opener: str  # '(', '[', '{'
    line: int
    col: int
    kids: list = field(default_factory=list)  # list[Tok | Group]

    @property
    def kind(self) -> str:
        return "group"

    @property
    def text(self) -> str:
        return self.opener

    def is_group(self) -> bool:
        return True


@dataclass
class Comment:
    line: int
    text: str


@dataclass
class LexedFile:
    path: str
    nodes: list  # top-level token tree
    comments: list  # list[Comment]
    n_lines: int


_CLOSER = {"(": ")", "[": "]", "{": "}"}


def lex(text: str, path: str = "<buf>") -> LexedFile:
    """Lex `text` into a balanced token tree plus the comment stream."""
    tokens: list[Tok] = []
    comments: list[Comment] = []
    i, n = 0, len(text)
    line, bol = 1, 0  # bol = index of start-of-line, for columns

    def col(pos: int) -> int:
        return pos - bol + 1

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            bol = i
        elif c in " \t\r\f\v":
            i += 1
        elif c == "#" and (not tokens or tokens[-1].line != line):
            # Preprocessor directive: swallow to end of line, honoring
            # backslash continuations.
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    j = n
                    break
                if text[k - 1] == "\\" or (text[k - 1] == "\r" and
                                           text[k - 2] == "\\"):
                    line += 1
                    j = k + 1
                    continue
                j = k
                break
            i = j
        elif text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            comments.append(Comment(line, text[i:j]))
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            comments.append(Comment(line, text[i : j + 2]))
            line += text.count("\n", i, j + 2)
            i = j + 2
            bol = text.rfind("\n", 0, i) + 1
        elif c == '"':
            if tokens and tokens[-1].text == "R" and tokens[-1].kind == "id":
                m = re.match(r'"([^(\s]*)\(', text[i:])
                if m:
                    tokens.pop()
                    end = text.find(f"){m.group(1)}\"", i)
                    end = n - 1 if end < 0 else end + len(m.group(1)) + 1
                    line += text.count("\n", i, end + 1)
                    tokens.append(Tok("str", '""', line, col(i)))
                    i = end + 1
                    bol = text.rfind("\n", 0, i) + 1
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            tokens.append(Tok("str", '""', line, col(i)))
            i = j + 1
        elif c == "'":
            # Either a char literal or a digit separator; the tokenizer's
            # number rule consumes separators inside numbers, so a bare
            # quote here is a char literal.
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            tokens.append(Tok("chr", "''", line, col(i)))
            i = j + 1
        else:
            m = _TOKEN_RE.match(text, i)
            if m is None:
                i += 1
                continue
            kind = m.lastgroup or "punct"
            tokens.append(Tok(kind, m.group(), line, col(i)))
            i = m.end()

    # Fold the flat token list into balanced groups.
    root: list = []
    stack: list[Group] = []
    for t in tokens:
        if t.text in "([{" and t.kind == "punct":
            g = Group(t.text, t.line, t.col)
            (stack[-1].kids if stack else root).append(g)
            stack.append(g)
        elif t.kind == "punct" and t.text in ")]}":
            # Pop to the nearest matching opener; tolerate imbalance from
            # preprocessor tricks by dropping strays.
            while stack and _CLOSER[stack[-1].opener] != t.text:
                stack.pop()
            if stack:
                stack.pop()
        else:
            (stack[-1].kids if stack else root).append(t)
    return LexedFile(path, root, comments, line)


# ---------------------------------------------------------------------------
# Tree helpers
# ---------------------------------------------------------------------------


def flat_text(nodes) -> str:
    """Space-joined source-ish text of a node slice (for messages)."""
    out: list[str] = []

    def walk(ns):
        for x in ns:
            if x.is_group():
                out.append(x.opener)
                walk(x.kids)
                out.append(_CLOSER[x.opener])
            else:
                out.append(x.text)

    walk(nodes)
    return " ".join(out)


def iter_tokens(nodes):
    for x in nodes:
        if x.is_group():
            yield from iter_tokens(x.kids)
        else:
            yield x


def split_commas(nodes) -> list[list]:
    """Split a node list at top-level commas (template-angle unaware by
    construction: angles never group, but top-level commas inside a call's
    () group are exactly the argument separators because nested calls are
    already grouped)."""
    parts: list[list] = [[]]
    depth_angle = 0
    for x in nodes:
        if not x.is_group() and x.kind == "punct":
            if x.text == "<":
                depth_angle += 1
            elif x.text == ">":
                depth_angle = max(0, depth_angle - 1)
            elif x.text == ">>":
                depth_angle = max(0, depth_angle - 2)
            elif x.text == "," and depth_angle == 0:
                parts.append([])
                continue
        parts[-1].append(x)
    if parts == [[]]:
        return []
    return parts


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Decl:
    name: str
    type_text: str
    init: list  # node slice of the initializer (may be empty)
    line: int
    col: int
    is_lambda: bool = False  # initializer is a lambda expression

    # -- classification helpers the checks use -----------------------------
    def is_pointer_like(self) -> bool:
        t = self.type_text
        return (
            "*" in t
            or "span" in t
            or self.is_ref()
            or re.search(r"\b(iterator|pointer)\b", t) is not None
        )

    def is_ref(self) -> bool:
        return "&" in self.type_text

    def is_container(self) -> bool:
        return re.search(
            r"\b(vector|array|string|deque|map|set|hash_map|hash_table|"
            r"hash_map64|sequence)\b",
            self.type_text,
        ) is not None

    def is_atomic(self) -> bool:
        return "atomic" in self.type_text

    def is_arena(self) -> bool:
        t = self.type_text
        return ("workspace" in t or "uninitialized_buffer" in t) and \
            "&" not in t and "*" not in t

    def is_arena_ref(self) -> bool:
        t = self.type_text
        return ("workspace" in t or "uninitialized_buffer" in t) and \
            ("&" in t or "*" in t)

    def is_unordered(self) -> bool:
        return re.search(
            r"\b(unordered_map|unordered_set|hash_map|hash_map64|hash_table)\b",
            self.type_text,
        ) is not None

    def is_scalar_value(self) -> bool:
        return not (self.is_pointer_like() or self.is_container()
                    or self.is_ref())


_DECL_STOP = KEYWORDS_CONTROL | {"delete", "new", "throw", "using",
                                 "namespace", "template", "public",
                                 "private", "protected", "operator"}


def _type_prefix_ok(nodes) -> bool:
    """True if `nodes` (the tokens before a candidate declarator name) look
    like a type: identifiers, ::, <...> template args, qualifiers, * & &&."""
    if not nodes:
        return False
    saw_id = False
    angle = 0
    for x in nodes:
        if x.is_group():
            return False
        if x.kind == "id":
            if x.text in _DECL_STOP:
                return False
            saw_id = True
        elif x.kind == "punct":
            if x.text == "<":
                angle += 1
            elif x.text == ">":
                angle -= 1
            elif x.text == ">>":
                angle -= 2
            elif x.text in ("*", "&", "&&", "::", ","):
                pass
            elif angle == 0:
                return False
        else:
            return False
    # A prefix ending in `::` makes the candidate name part of a qualified
    # path (a call or nested name), not a declarator.
    last = nodes[-1]
    if not last.is_group() and last.text == "::":
        return False
    return saw_id and angle <= 0


def _harvest_decl_from_stmt(stmt: list, out: list[Decl]) -> None:
    """Recognize `type name = init;` / `type name{...};` / `type name(...);`
    / `type name;` plus structured bindings; append Decl entries."""
    if not stmt:
        return
    # Structured binding: [qualifiers] auto [&] [ids] = init
    for k, x in enumerate(stmt):
        if not x.is_group() and x.kind == "id" and x.text == "auto":
            j = k + 1
            while j < len(stmt) and not stmt[j].is_group() and \
                    stmt[j].text in ("&", "&&", "const"):
                j += 1
            if j < len(stmt) and stmt[j].is_group() and stmt[j].opener == "[":
                for t in iter_tokens(stmt[j].kids):
                    if t.kind == "id":
                        out.append(Decl(t.text, "auto&", stmt[j + 2 :],
                                        t.line, t.col))
                return
            break
        if x.is_group() or x.text not in QUALIFIER_KEYWORDS:
            break

    # General declarator scan: find `name` followed by = | group | ; | ,
    # where everything before `name` forms a plausible type.
    i = 0
    n = len(stmt)
    while i < n:
        x = stmt[i]
        if x.is_group() or x.kind != "id" or x.text in _DECL_STOP:
            i += 1
            continue
        prefix = stmt[:i]
        # strip leading qualifiers from the type prefix
        lead = 0
        while lead < len(prefix) and not prefix[lead].is_group() and \
                prefix[lead].text in QUALIFIER_KEYWORDS:
            lead += 1
        prefix = prefix[lead:]
        if not _type_prefix_ok(prefix):
            i += 1
            continue
        nxt = stmt[i + 1] if i + 1 < n else None
        init: list = []
        ok = False
        if nxt is None:
            ok = True
        elif not nxt.is_group() and nxt.text in ("=", ";", ","):
            ok = True
            if nxt.text == "=":
                init = stmt[i + 2 :]
        elif nxt.is_group() and nxt.opener in ("{", "("):
            ok = True
            init = nxt.kids
        elif nxt.is_group() and nxt.opener == "[":
            # array declarator: `type name[dims]...` optionally `= init`
            j = i + 1
            while j < n and stmt[j].is_group() and stmt[j].opener == "[":
                j += 1
            if j >= n or (not stmt[j].is_group() and
                          stmt[j].text in ("=", ";", ",")):
                ok = True
                if j < n and not stmt[j].is_group() and stmt[j].text == "=":
                    init = stmt[j + 1 :]
        if ok:
            ttext = " ".join(
                t.text for t in stmt[:i] if not t.is_group()
            )
            is_lam = bool(init) and _lambda_at(init, 0) is not None
            out.append(Decl(x.text, ttext, init, x.line, x.col, is_lam))
            # multi-declarator `int a, b = 0;` — scan remaining at same type
            j = i + 1
            depth = 0
            while j < n:
                y = stmt[j]
                if y.is_group():
                    j += 1
                    continue
                if y.text == "," and depth == 0:
                    if j + 1 < n and not stmt[j + 1].is_group() and \
                            stmt[j + 1].kind == "id":
                        y2 = stmt[j + 1]
                        out.append(Decl(y2.text, ttext, [], y2.line, y2.col))
                elif y.text == "<":
                    depth += 1
                elif y.text == ">":
                    depth -= 1
                j += 1
            return
        i += 1


def _split_statements(kids: list) -> list[list]:
    """Split a brace-body kid list into statement-ish chunks at `;` and at
    nested `{}` groups (which become their own chunk)."""
    stmts: list[list] = []
    cur: list = []
    for x in kids:
        if not x.is_group() and x.kind == "punct" and x.text == ";":
            if cur:
                stmts.append(cur)
            cur = []
        elif x.is_group() and x.opener == "{":
            if cur:
                stmts.append(cur)
                cur = []
            stmts.append([x])
        else:
            cur.append(x)
    if cur:
        stmts.append(cur)
    return stmts


def collect_decls(body: Group, *, into: dict[str, Decl] | None = None,
                  skip_lambda_bodies: bool = False) -> dict[str, Decl]:
    """All declarations in a body, recursively (first declaration wins —
    shadowing is rare in this codebase and conservative either way)."""
    decls: dict[str, Decl] = {} if into is None else into

    def add(d: Decl) -> None:
        decls.setdefault(d.name, d)

    def walk_body(g: Group) -> None:
        for stmt in _split_statements(g.kids):
            harvested: list[Decl] = []
            if len(stmt) == 1 and stmt[0].is_group() and \
                    stmt[0].opener == "{":
                walk_body(stmt[0])
                continue
            _harvest_decl_from_stmt(stmt, harvested)
            for d in harvested:
                add(d)
            # Recurse into control statements: for/if/while headers can
            # declare, their () and trailing {} live in the same chunk.
            for k, x in enumerate(stmt):
                if x.is_group() and x.opener == "(":
                    prev = stmt[k - 1] if k > 0 else None
                    if prev is not None and not prev.is_group() and \
                            prev.text in ("for", "if", "while", "switch",
                                          "catch"):
                        _harvest_header_decls(x, add)
                    walk_groups(x)
                elif x.is_group() and x.opener == "{":
                    walk_body(x)
                elif x.is_group():
                    walk_groups(x)

    def walk_groups(g: Group) -> None:
        # Expression context: recurse looking for nested braces (lambda
        # bodies excluded when requested) and parenthesized declarations.
        idx = 0
        while idx < len(g.kids):
            x = g.kids[idx]
            if x.is_group():
                if x.opener == "{":
                    walk_body(x)
                else:
                    if skip_lambda_bodies and x.opener == "[":
                        lam = _lambda_at(g.kids, idx)
                        if lam is not None:
                            idx = lam.end_index
                            continue
                    walk_groups(x)
            idx += 1

    walk_body(body)
    return decls


def _harvest_header_decls(paren: Group, add) -> None:
    """Declarations in a for/if/while/switch/catch header."""
    kids = paren.kids
    # range-for: `decl : range`
    for k, x in enumerate(kids):
        if not x.is_group() and x.kind == "punct" and x.text == ":":
            harvested: list[Decl] = []
            _harvest_decl_from_stmt(kids[:k], harvested)
            for d in harvested:
                d.init = kids[k + 1 :]
                add(d)
            return
    for stmt in _split_statements(kids):
        harvested: list[Decl] = []
        _harvest_decl_from_stmt(stmt, harvested)
        for d in harvested:
            add(d)


# ---------------------------------------------------------------------------
# Lambdas
# ---------------------------------------------------------------------------


@dataclass
class Capture:
    name: str  # '&' / '=' for defaults, 'this', or an identifier
    by_ref: bool
    is_init: bool = False  # init-capture `x = expr`
    init: list = field(default_factory=list)


@dataclass
class LambdaExpr:
    captures: list[Capture]
    default_ref: bool  # [&...] default
    default_val: bool  # [=...] default
    params: list[Decl]
    body: Group
    line: int
    col: int
    end_index: int  # sibling index just past the body (for scan resumption)

    def capture_of(self, name: str) -> Capture | None:
        for c in self.captures:
            if c.name == name:
                return c
        return None

    def captures_name(self, name: str) -> bool:
        return self.default_ref or self.default_val or \
            self.capture_of(name) is not None

    def capture_by_ref(self, name: str) -> bool:
        c = self.capture_of(name)
        if c is not None:
            return c.by_ref
        return self.default_ref


def parse_params(paren: Group) -> list[Decl]:
    """Parameter declarators of a function/lambda parameter list."""
    params: list[Decl] = []
    for part in split_commas(paren.kids):
        if not part:
            continue
        # The parameter name is the last top-level identifier not inside a
        # group and not a type keyword... unless the param is unnamed.
        name_tok = None
        angle = 0
        for x in part:
            if x.is_group():
                continue
            if x.kind == "punct":
                if x.text == "<":
                    angle += 1
                elif x.text == ">":
                    angle -= 1
                elif x.text == ">>":
                    angle -= 2
                continue
            if angle == 0 and x.kind == "id" and \
                    x.text not in QUALIFIER_KEYWORDS:
                name_tok = x
        if name_tok is None:
            continue
        tokens_before = []
        for x in part:
            if x is name_tok:
                break
            if not x.is_group():
                tokens_before.append(x.text)
        if not tokens_before:
            continue  # lone identifier: a type, unnamed param
        params.append(Decl(name_tok.text, " ".join(tokens_before), [],
                           name_tok.line, name_tok.col))
    return params


def _lambda_at(siblings: list, i: int) -> LambdaExpr | None:
    """Parse a lambda whose capture group is siblings[i]; None if the `[`
    group isn't a lambda introducer here."""
    x = siblings[i]
    if not x.is_group() or x.opener != "[":
        return None
    if i > 0:
        prev = siblings[i - 1]
        if prev.is_group() and prev.opener in ("(", "["):
            pass  # `([...]` → lambda as first arg
        elif prev.is_group():
            return None  # `{...}[...]` — unlikely, treat as subscript
        elif prev.kind in ("id", "num", "str", "chr"):
            return None  # subscript of a primary
        elif prev.kind == "punct" and prev.text in (")", "]", ">"):
            return None
    # captures
    captures: list[Capture] = []
    default_ref = default_val = False
    for part in split_commas(x.kids):
        if not part:
            continue
        toks = [t for t in part if not t.is_group()]
        if len(toks) == 1 and toks[0].text == "&":
            default_ref = True
        elif len(toks) == 1 and toks[0].text == "=":
            default_val = True
        elif toks and toks[0].text == "this":
            captures.append(Capture("this", True))
        elif len(toks) >= 2 and toks[0].text == "*" and \
                toks[1].text == "this":
            captures.append(Capture("this", False))
        elif toks and toks[0].text == "&":
            if len(toks) >= 2 and toks[1].kind == "id":
                init = part[3:] if len(toks) >= 3 and toks[2].text == "=" \
                    else []
                captures.append(Capture(toks[1].text, True,
                                        bool(init), init))
        elif toks and toks[0].kind == "id":
            init = part[2:] if len(toks) >= 2 and toks[1].text == "=" else []
            captures.append(Capture(toks[0].text, False, bool(init), init))
    # optional (params), then specifiers, then { body }
    j = i + 1
    params: list[Decl] = []
    if j < len(siblings) and siblings[j].is_group() and \
            siblings[j].opener == "(":
        params = parse_params(siblings[j])
        j += 1
    # skip mutable/noexcept/-> T specifiers (tokens only)
    while j < len(siblings):
        y = siblings[j]
        if y.is_group() and y.opener == "{":
            return LambdaExpr(captures, default_ref, default_val, params, y,
                              x.line, x.col, j + 1)
        if y.is_group():
            return None
        if y.kind == "punct" and y.text in (";", ",", "="):
            return None
        j += 1
    return None


def find_lambdas(nodes: list) -> list[LambdaExpr]:
    """All lambda expressions in a node list (recursive, including nested
    lambdas inside lambda bodies)."""
    out: list[LambdaExpr] = []

    def walk(siblings: list) -> None:
        i = 0
        while i < len(siblings):
            x = siblings[i]
            if x.is_group():
                if x.opener == "[":
                    lam = _lambda_at(siblings, i)
                    if lam is not None:
                        out.append(lam)
                        walk(lam.body.kids)
                        # capture-list + params already covered via body
                        i = lam.end_index
                        continue
                walk(x.kids)
            i += 1

    walk(nodes)
    return out


# ---------------------------------------------------------------------------
# Function definitions
# ---------------------------------------------------------------------------


@dataclass
class FunctionDef:
    name: str
    qualname: str  # `A::B::name` as written at the definition
    params: list[Decl]
    body: Group
    line: int
    col: int
    path: str = ""

    def param_index(self, name: str) -> int:
        for i, p in enumerate(self.params):
            if p.name == name:
                return i
        return -1


def find_functions(lf: LexedFile) -> list[FunctionDef]:
    """Function definitions: `name (params) [specs] { body }` at any
    nesting depth outside of expression context."""
    out: list[FunctionDef] = []

    def walk(siblings: list) -> None:
        i = 0
        while i < len(siblings):
            x = siblings[i]
            if x.is_group() and x.opener == "(":
                # candidate param list: next non-token specifiers then `{`
                name_i = i - 1
                if name_i >= 0 and not siblings[name_i].is_group() and \
                        siblings[name_i].kind == "id" and \
                        siblings[name_i].text not in KEYWORDS_CONTROL and \
                        siblings[name_i].text not in QUALIFIER_KEYWORDS:
                    j = i + 1
                    body = None
                    while j < len(siblings):
                        y = siblings[j]
                        if y.is_group() and y.opener == "{":
                            body = y
                            break
                        if y.is_group():
                            # `noexcept(...)` / trailing-return `-> T<...>`
                            if y.opener == "(":
                                j += 1
                                continue
                            break
                        if y.kind == "punct" and y.text in (";", ",", "=",
                                                            ")"):
                            break
                        if y.kind == "punct" and y.text in ("{",):
                            break
                        if y.kind == "id" and y.text in ("if", "while",
                                                         "for", "switch"):
                            break
                        j += 1
                    if body is not None and _looks_like_fn_header(
                            siblings, name_i):
                        name = siblings[name_i].text
                        qual = _qualname(siblings, name_i)
                        out.append(FunctionDef(
                            name, qual, parse_params(x), body,
                            siblings[name_i].line, siblings[name_i].col,
                            lf.path))
                        walk(body.kids)
                        i = j + 1
                        continue
                walk(x.kids)
            elif x.is_group():
                walk(x.kids)
            i += 1

    walk(lf.nodes)
    return out


def _qualname(siblings: list, name_i: int) -> str:
    parts = [siblings[name_i].text]
    k = name_i - 1
    while k - 1 >= 0 and not siblings[k].is_group() and \
            siblings[k].text == "::" and not siblings[k - 1].is_group() and \
            siblings[k - 1].kind == "id":
        parts.append(siblings[k - 1].text)
        k -= 2
    return "::".join(reversed(parts))


def _looks_like_fn_header(siblings: list, name_i: int) -> bool:
    """Reject obvious non-definitions: `call(args) { ... }` can't occur at
    statement level in C++, but control keywords and initializer lists can.
    The name must be preceded by type-ish tokens, `::`, start-of-scope, or
    nothing."""
    k = name_i - 1
    # Walk over a :: qualification chain.
    while k - 1 >= 0 and not siblings[k].is_group() and \
            siblings[k].text == "::":
        k -= 2
    if k < 0:
        return True
    prev = siblings[k]
    if prev.is_group():
        return prev.opener == "{"  # previous function body / class body
    if prev.kind == "punct":
        return prev.text in (";", "}", ">", "*", "&", ":")
    if prev.kind == "id":
        return prev.text not in ("return", "case", "goto", "else", "do",
                                 "new", "delete", "throw", "co_return",
                                 "in", "not")
    return False


# ---------------------------------------------------------------------------
# Store & call expressions
# ---------------------------------------------------------------------------

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=",
              ">>="}
INCDEC_OPS = {"++", "--"}


@dataclass
class Lvalue:
    base: str | None  # leftmost identifier of the postfix chain
    indirect: bool  # *p / p-> / (*p)
    member: bool  # has .x / ->x member access
    subscripts: list  # list of node slices, outermost-first
    this_member: bool  # this->x or implicit member (trailing underscore)


@dataclass
class Store:
    lvalue: Lvalue
    op: str
    rhs: list
    line: int
    col: int
    stmt: list  # full statement slice (for context)


@dataclass
class CallExpr:
    name: str  # last path component
    path: str  # full dotted/arrow path text, e.g. 'ws.take'
    base: str | None  # object expression base for method calls
    args: list  # list of node slices
    template_args: list
    line: int
    col: int


def _lvalue_before(siblings: list, op_i: int) -> Lvalue | None:
    """Analyze the postfix expression ending just before siblings[op_i]."""
    j = op_i - 1
    subscripts: list = []
    indirect = False
    member = False
    this_member = False
    base: str | None = None
    while j >= 0:
        x = siblings[j]
        if x.is_group() and x.opener == "[":
            subscripts.insert(0, x.kids)
            j -= 1
        elif x.is_group() and x.opener == "(":
            before = siblings[j - 1] if j - 1 >= 0 else None
            if before is not None and not before.is_group() and (
                before.kind == "id" and before.text not in KEYWORDS_CONTROL
            ):
                j -= 1  # call postfix, walk to callee base
            else:
                inner = x.kids
                if inner and not inner[0].is_group() and \
                        inner[0].text == "*":
                    indirect = True
                    for t in iter_tokens(inner):
                        if t.kind == "id":
                            base = t.text
                            break
                break
        elif not x.is_group() and x.kind == "id":
            if x.text == "this":
                this_member = True
                break
            base = x.text
            if j - 1 >= 0 and not siblings[j - 1].is_group() and \
                    siblings[j - 1].text in (".", "->", "::"):
                if siblings[j - 1].text == "->":
                    indirect = True
                if siblings[j - 1].text in (".", "->"):
                    member = True
                j -= 2
            else:
                if j - 1 >= 0 and not siblings[j - 1].is_group() and \
                        siblings[j - 1].text == "*":
                    prev2 = siblings[j - 2] if j - 2 >= 0 else None
                    if prev2 is None or (not prev2.is_group() and
                                         prev2.kind == "punct" and
                                         prev2.text not in (")", "]")):
                        indirect = True
                break
        elif not x.is_group() and x.text == "*":
            indirect = True
            break
        else:
            break
    if base is None and not indirect and not this_member:
        return None
    return Lvalue(base, indirect, member, subscripts, this_member)


def _stmt_bounds(siblings: list, op_i: int) -> tuple[int, int]:
    lo = op_i
    while lo > 0:
        x = siblings[lo - 1]
        if not x.is_group() and x.kind == "punct" and x.text in (";", ",",
                                                                 ":"):
            break
        if x.is_group() and x.opener == "{":
            break
        lo -= 1
    hi = op_i
    while hi < len(siblings):
        x = siblings[hi]
        if not x.is_group() and x.kind == "punct" and x.text == ";":
            break
        hi += 1
    return lo, hi


def find_stores(nodes: list, *, skip_lambda_bodies: bool = True) -> \
        list[Store]:
    """All assignment / increment stores in a node list. Lambda bodies are
    skipped by default (they are analyzed as their own scopes)."""
    out: list[Store] = []

    def walk(siblings: list) -> None:
        i = 0
        while i < len(siblings):
            x = siblings[i]
            if x.is_group():
                if skip_lambda_bodies and x.opener == "[":
                    lam = _lambda_at(siblings, i)
                    if lam is not None:
                        i = lam.end_index
                        continue
                walk(x.kids)
                i += 1
                continue
            if x.kind == "punct" and (x.text in ASSIGN_OPS or
                                      x.text in INCDEC_OPS):
                op_i = i
                if x.text in INCDEC_OPS:
                    # prefix `++expr`: normalize to the operand's end
                    nxt = siblings[i + 1] if i + 1 < len(siblings) else None
                    if nxt is not None and (
                        (not nxt.is_group() and nxt.kind == "id") or
                        (not nxt.is_group() and nxt.text == "*")
                    ):
                        j = i + 1
                        while j < len(siblings):
                            y = siblings[j]
                            if not y.is_group() and y.kind == "punct" and \
                                    y.text not in ("::", ".", "->", "*"):
                                break
                            if not y.is_group() and y.kind != "id" and \
                                    y.kind != "punct":
                                break
                            j += 1
                        op_i = j
                lv = _lvalue_before(siblings, op_i)
                # `auto [u, v] = ...` is a structured-binding declaration,
                # not a subscript store through a base named `auto`.
                if lv is not None and lv.base == "auto":
                    lv = None
                if lv is not None:
                    lo, hi = _stmt_bounds(siblings, op_i)
                    out.append(Store(lv, x.text, siblings[i + 1 : hi],
                                     x.line, x.col, siblings[lo:hi]))
            i += 1

    walk(nodes)
    return out


def find_calls(nodes: list, *, skip_lambda_bodies: bool = False) -> \
        list[CallExpr]:
    """All call expressions `path(args)` in a node list."""
    out: list[CallExpr] = []

    def walk(siblings: list) -> None:
        i = 0
        while i < len(siblings):
            x = siblings[i]
            if x.is_group():
                if skip_lambda_bodies and x.opener == "[":
                    lam = _lambda_at(siblings, i)
                    if lam is not None:
                        i = lam.end_index
                        continue
                walk(x.kids)
                i += 1
                continue
            if x.kind == "id" and x.text not in KEYWORDS_CONTROL:
                # gather path backwards: a.b->c::d
                path_parts = [x.text]
                base = None
                k = i - 1
                while k - 1 >= 0 and not siblings[k].is_group() and \
                        siblings[k].text in (".", "->", "::") and \
                        not siblings[k - 1].is_group() and \
                        siblings[k - 1].kind == "id":
                    path_parts.append(siblings[k].text)
                    path_parts.append(siblings[k - 1].text)
                    base = siblings[k - 1].text
                    k -= 2
                # template args then call parens
                j = i + 1
                template_args: list = []
                if j < len(siblings) and not siblings[j].is_group() and \
                        siblings[j].text == "<":
                    depth = 0
                    k2 = j
                    closed = -1
                    while k2 < len(siblings) and k2 - j < 24:
                        y = siblings[k2]
                        if y.is_group():
                            k2 += 1
                            continue
                        if y.text == "<":
                            depth += 1
                        elif y.text == ">":
                            depth -= 1
                            if depth == 0:
                                closed = k2
                                break
                        elif y.text == ">>":
                            depth -= 2
                            if depth <= 0:
                                closed = k2
                                break
                        elif y.text in (";", "{", ")"):
                            break
                        k2 += 1
                    if closed > 0 and closed + 1 < len(siblings) and \
                            siblings[closed + 1].is_group() and \
                            siblings[closed + 1].opener == "(":
                        template_args = siblings[j : closed + 1]
                        j = closed + 1
                if j < len(siblings) and siblings[j].is_group() and \
                        siblings[j].opener == "(":
                    out.append(CallExpr(
                        x.text, "".join(reversed(path_parts)), base,
                        split_commas(siblings[j].kids), template_args,
                        x.line, x.col))
            i += 1

    walk(nodes)
    return out
