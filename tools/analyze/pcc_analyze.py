#!/usr/bin/env python3
"""pcc_analyze: AST-based concurrency & memory-discipline analyzer.

Supersedes the token heuristics of tools/lint/parallel_lint.py with
structural checks over every parallel region (`parallel_for`, `par_do`,
`emit_pack`, `frontier_edge_for`, ... bodies) and over registry `run_*`
implementations:

  shared-write               stores reaching memory visible to other
                             iterations must go through parallel/atomics.hpp,
                             be injectively owner-indexed, or carry a
                             validated `// lint: private-write(<invariant>)`.
                             Local pointer aliases of captured spans are
                             tracked, and helper functions are resolved one
                             call level deep.
  shared-cursor-emission     fetch_add-cursor output loops that bypass
                             parallel/emit.hpp.
  workspace-escape           spans carved from a locally-owned cc::workspace
                             arena stored into objects that outlive it;
                             also workspace mutation inside parallel bodies.
  hygiene                    std::function / allocation / rand-time /
                             hash-iteration-order in hot parallel paths.

Suppressions: `// analyze: suppress(<check>: <reason>)` on the finding's
line or the line above (reason text is mandatory; unused suppressions are
themselves findings). The legacy `// lint: allow(rule: reason)` spelling is
accepted for the ported rules.

Usage:
    pcc_analyze.py [--compile-commands build/compile_commands.json]
                   [--json REPORT.json] [--checks a,b,...] [paths...]

Exit status: 0 = clean, 1 = findings, 2 = usage error.

The front-end is the self-contained cppast module (stdlib only), designed
around the libclang cursor model so a clang.cindex front-end can replace it
where the bindings exist; nothing here needs an LLVM link step or any
third-party package — `ctest -R analyze` runs wherever the repo builds.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import checks as C  # noqa: E402
import cppast  # noqa: E402

REPORT_SCHEMA_VERSION = 1


def gather_files(paths: list[str], compile_commands: str | None) -> \
        list[str]:
    exts = (".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh")
    roots = [os.path.abspath(p) for p in paths] or [os.getcwd()]
    files: set[str] = set()
    if compile_commands:
        try:
            with open(compile_commands, "r", encoding="utf-8") as f:
                db = json.load(f)
        except (OSError, ValueError) as e:
            print(f"pcc_analyze: cannot read {compile_commands}: {e}",
                  file=sys.stderr)
            sys.exit(2)
        for entry in db:
            src = os.path.abspath(
                os.path.join(entry.get("directory", "."), entry["file"]))
            if any(os.path.commonpath([src, r]) == r for r in roots
                   if os.path.isdir(r)):
                files.add(src)
    for r in roots:
        if os.path.isfile(r):
            files.add(r)
            continue
        for dirpath, _, names in os.walk(r):
            for name in names:
                if name.endswith(exts):
                    files.add(os.path.join(dirpath, name))
    return sorted(files)


def analyze_files(files: list[str]) -> tuple[C.Analyzer, list[C.Finding]]:
    contexts: dict[str, C.FileContext] = {}
    for path in files:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"pcc_analyze: cannot read {path}: {e}", file=sys.stderr)
            continue
        lf = cppast.lex(text, path)
        contexts[path] = C.build_file_context(lf)
    analyzer = C.Analyzer(contexts)
    findings = analyzer.run()
    return analyzer, findings


def write_report(path: str, files: list[str], findings: list[C.Finding],
                 analyzer: C.Analyzer, checks_run: list[str]) -> None:
    active = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]

    def row(f: C.Finding) -> dict:
        d = {
            "file": _rel(f.path),
            "line": f.line,
            "col": f.col,
            "check": f.check,
            "message": f.message,
        }
        if f.function:
            d["function"] = f.function
        if f.region_line:
            d["region_line"] = f.region_line
        if f.suppressed:
            d["suppress_reason"] = f.suppress_reason
        return d

    pw_total = pw_anchored = 0
    for ctx in analyzer.contexts.values():
        for a in ctx.private_write.values():
            pw_total += 1
            if a.anchored:
                pw_anchored += 1
    report = {
        "tool": "pcc_analyze",
        "schema_version": REPORT_SCHEMA_VERSION,
        "checks": checks_run,
        "files_scanned": len(files),
        "findings": [row(f) for f in active],
        "suppressed": [row(f) for f in suppressed],
        "annotations": {
            "private_write_total": pw_total,
            "private_write_anchored": pw_anchored,
        },
        "summary": {
            "findings": len(active),
            "suppressed": len(suppressed),
        },
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")


def _rel(path: str) -> str:
    cwd = os.getcwd()
    try:
        r = os.path.relpath(path, cwd)
    except ValueError:
        return path
    return path if r.startswith("..") else r


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        prog="pcc_analyze")
    ap.add_argument("paths", nargs="*",
                    help="files or directories to analyze (default: cwd)")
    ap.add_argument("--compile-commands", metavar="PATH",
                    help="compile_commands.json to take the TU list from "
                         "(headers under the given paths are added)")
    ap.add_argument("--json", metavar="PATH",
                    help="write a machine-readable report here")
    ap.add_argument("--checks", metavar="NAMES",
                    help="comma-separated subset of checks to report "
                         f"(catalog: {', '.join(C.CHECK_NAMES)})")
    ap.add_argument("--list-checks", action="store_true",
                    help="print the check catalog and exit")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress the summary line")
    args = ap.parse_args(argv)

    if args.list_checks:
        for name in C.CHECK_NAMES:
            print(name)
        return 0

    selected = None
    if args.checks:
        selected = {c.strip() for c in args.checks.split(",") if c.strip()}
        unknown = selected - set(C.CHECK_NAMES)
        if unknown:
            print(f"pcc_analyze: unknown checks: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    files = gather_files(args.paths, args.compile_commands)
    if not files:
        print("pcc_analyze: no input files", file=sys.stderr)
        return 2

    analyzer, findings = analyze_files(files)
    if selected is not None:
        findings = [f for f in findings if f.check in selected]
    active = [f for f in findings if not f.suppressed]
    for f in active:
        rel = _rel(f.path)
        print(f"{rel}:{f.line}:{f.col}: warning: [{f.check}] {f.message}")
    if args.json:
        write_report(args.json, files, findings, analyzer,
                     sorted(selected) if selected else list(C.CHECK_NAMES))
    if not args.quiet:
        nsup = sum(1 for f in findings if f.suppressed)
        print(f"pcc_analyze: {len(files)} files, {len(active)} finding(s), "
              f"{nsup} suppressed", file=sys.stderr)
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
