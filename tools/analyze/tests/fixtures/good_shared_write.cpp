// Negative fixtures for the shared-write check: every store here follows
// the discipline — owner-injective indexing, the atomics vocabulary, a
// validated private-write annotation, or purely local effects.
#include "prelude.hpp"

// Owner-indexed stores: i, i + invariant, i * literal are all injective.
void owner_indexed(unsigned* D, unsigned base) {
  parallel_for(0, 64, [&](unsigned long i) {
    D[i] = 0;
    D[base + i] = 1;
    D[i * 2 + 1] = 2;
  });
}

// The atomics vocabulary is always allowed, scatter or not.
void atomic_scatter(unsigned* C, const unsigned* x) {
  parallel_for(0, 64, [&](unsigned long i) {
    pcc::parallel::cas(&C[x[i]], 0u, 1u);
    pcc::parallel::write_min(&C[x[i]], static_cast<unsigned>(i));
    pcc::parallel::write_once(&C[x[i]], 1u);
  });
}

// A disjointness invariant the matcher cannot prove, stated explicitly.
void annotated_scatter(unsigned* D, const unsigned* start) {
  parallel_for(0, 64, [&](unsigned long i) {
    // lint: private-write(rows are disjoint: start[i+1] - start[i] slots)
    D[start[i]] = 1;
  });
}

// Locals are invisible to other iterations; aliases of locals too.
void local_only(const unsigned* in, unsigned* out) {
  parallel_for(0, 64, [&](unsigned long i) {
    unsigned acc = 0;
    unsigned scratch[4] = {0, 0, 0, 0};
    for (unsigned long k = 0; k < 4; ++k) {
      scratch[k] = in[i + k];
      acc += scratch[k];
    }
    out[i] = acc;
  });
}
