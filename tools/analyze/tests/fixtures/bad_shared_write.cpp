// Positive fixtures for the shared-write check: raw stores into captured
// memory that are not owner-injective, not atomic, and not annotated.
#include "prelude.hpp"

// Arbitrary scatter: x[i] is not injective in the owner i.
void raw_scatter(unsigned* D, const unsigned* x) {
  parallel_for(0, 64, [&](unsigned long i) {
    D[x[i]] = 1;
  });
}

// Same store laundered through a local alias of the captured pointer.
void alias_scatter(unsigned* D, const unsigned* x) {
  parallel_for(0, 64, [&](unsigned long i) {
    unsigned* d = D;
    d[x[i]] = 1;
  });
}

// The store hides one call level down; the callee writes through its
// pointer parameter, so the call site is charged.
static void bump(unsigned* p, unsigned long v) { p[v] += 1; }

void callee_scatter(unsigned* D, const unsigned* x) {
  parallel_for(0, 64, [&](unsigned long i) {
    bump(D, x[i]);
  });
}

// Library writers count as stores through their destination argument.
void writer_scatter(unsigned char* out, const unsigned char* in,
                    const unsigned long* off) {
  parallel_for(0, 64, [&](unsigned long i) {
    std::memcpy(out + off[i], in, 4);
  });
}

// Compound assignment through a captured reference-like target.
void compound(unsigned long* total) {
  parallel_for(0, 64, [&](unsigned long i) {
    *total += i;
  });
}
