// Negative fixtures for the shared-write check on witness spans: the
// disciplined store shapes of the spanning-forest decomposition
// (src/core/sf_engine.cpp). A forest edge's identity depends on WHICH
// claim wins, so the pipeline resolves targets with a two-phase protocol
// and keeps every witness write either owner-indexed, behind the atomics
// vocabulary, or under a stated disjointness invariant.
#include "prelude.hpp"

// Phase A of the claim protocol: propose the minimum rank per target.
// write_min is the atomics vocabulary — scatter by x[i] is fine.
void claim_propose(unsigned* claim, const unsigned* x) {
  parallel_for(0, 64, [&](unsigned long i) {
    pcc::parallel::write_min(&claim[x[i]], static_cast<unsigned>(i));
  });
}

// Phase B: only the rank winner touches the target's witness slot, so the
// store is private under the invariant phase A established.
void claim_resolve(unsigned* wit, unsigned* C, const unsigned* claim,
                   const unsigned* x) {
  parallel_for(0, 64, [&](unsigned long i) {
    const unsigned w = x[i];
    if (claim[w] == static_cast<unsigned>(i)) {
      // lint: private-write(rank winner: claim[w] picks exactly one i)
      wit[w] = static_cast<unsigned>(i);
      // lint: private-write(same winner invariant)
      C[w] = 1;
    }
  });
}

// Dense (pull) round: each unvisited vertex adopts a label and records the
// witness of the edge it adopted through — v values are distinct by
// construction of the unvisited list.
void dense_pull(unsigned* C, unsigned* dense_wit, const unsigned* unvisited,
                const unsigned* x) {
  parallel_for(0, 64, [&](unsigned long i) {
    const unsigned v = unvisited[i];
    // lint: private-write(unvisited holds distinct vertex ids)
    C[v] = x[v];
    // lint: private-write(same owner invariant)
    dense_wit[v] = x[v];
  });
}

// Compaction: kept edges and their witnesses move together, both stores
// owner-indexed by the emission slot.
void compact_kept(unsigned* edges, unsigned* wit, const unsigned* src,
                  unsigned base) {
  parallel_for(0, 64, [&](unsigned long i) {
    edges[base + i] = src[i];
    wit[base + i] = src[i];
  });
}
