// Negative fixtures for shared-cursor-emission: the emit.hpp vocabulary
// and fetch_add used as a plain counter (no output subscript).
#include "prelude.hpp"

unsigned long packed_emission(unsigned long n, unsigned* out,
                              pcc::parallel::workspace& ws,
                              const unsigned* keep) {
  return pcc::parallel::emit_pack<unsigned>(
      n, out, ws,
      [&](unsigned long i, pcc::parallel::emitter<unsigned>& em) {
        if (keep[i]) em(static_cast<unsigned>(i));
      });
}

void plain_counter(unsigned long* total) {
  parallel_for(0, 64, [&](unsigned long i) {
    pcc::parallel::fetch_add(total, i);
  });
}
