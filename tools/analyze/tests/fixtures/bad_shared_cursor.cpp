// Positive fixtures for shared-cursor-emission: output slots claimed with
// a fetch_add cursor, directly in the subscript or through a local.
#include "prelude.hpp"

void direct_cursor(unsigned* out, unsigned long* cur) {
  parallel_for(0, 64, [&](unsigned long i) {
    out[pcc::parallel::fetch_add(cur, 1ul)] = static_cast<unsigned>(i);
  });
}

void cursor_through_local(unsigned* out, unsigned long* cur) {
  parallel_for(0, 64, [&](unsigned long i) {
    const unsigned long slot = pcc::parallel::fetch_add(cur, 1ul);
    out[slot] = static_cast<unsigned>(i);
  });
}
