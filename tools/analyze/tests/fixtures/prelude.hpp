// Shared declarations for analyzer fixtures. Fixtures are analyzed, never
// compiled, so these are the minimal shapes the checker keys on.
#pragma once

namespace pcc::parallel {
template <typename F>
void parallel_for(unsigned long lo, unsigned long hi, F&& f, long grain = 0);
template <typename A, typename B>
void par_do(A&& a, B&& b);
template <typename T>
T fetch_add(T* p, T v);
template <typename T>
bool cas(T* p, T expect, T desired);
template <typename T>
bool write_min(T* p, T v);
template <typename T>
void write_once(T* p, T v);
template <typename T>
T read_once(const T* p);
int worker_id();

struct workspace {
  template <typename T>
  T* take(unsigned long count);
  struct scope {
    explicit scope(workspace& w);
  };
};

struct hash_map {
  explicit hash_map(unsigned long capacity);
  void insert(unsigned key, unsigned value);
  bool find(unsigned key, unsigned* value) const;
};

template <typename T>
struct emitter {
  void operator()(const T& v);
};
template <typename T, typename F>
unsigned long emit_pack(unsigned long n, T* out, workspace& ws, F&& f);
}  // namespace pcc::parallel

using pcc::parallel::parallel_for;
using pcc::parallel::par_do;

namespace std {
template <typename T>
struct function;
template <typename T>
struct vector {
  explicit vector(unsigned long n);
  unsigned long size() const;
};
template <typename K, typename V>
struct unordered_map {
  struct value_type {
    K first;
    V second;
  };
  const value_type* begin() const;
  const value_type* end() const;
};
void* memcpy(void* dst, const void* src, unsigned long n);
int rand();
}  // namespace std
