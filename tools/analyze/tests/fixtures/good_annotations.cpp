// Negative fixtures for the annotation audit: an anchored annotation with
// real invariant text, a suppression that suppresses a real finding (both
// the new spelling and the legacy lint: allow one).
#include "prelude.hpp"

void anchored(unsigned* D, const unsigned* start) {
  parallel_for(0, 64, [&](unsigned long i) {
    // lint: private-write(iteration i owns the row at start[i])
    D[start[i]] = 1;
  });
}

void used_suppression(unsigned* D, const unsigned* x) {
  parallel_for(0, 64, [&](unsigned long i) {
    // analyze: suppress(shared-write: duplicate writes store the same value)
    D[x[i]] = 1;
  });
}

void used_legacy_suppression(unsigned* D, const unsigned* x) {
  parallel_for(0, 64, [&](unsigned long i) {
    // lint: allow(raw-captured-write: idempotent flag set, benign race)
    D[x[i]] = 1;
  });
}
