// Positive fixtures for the shared-write check on witness spans: the
// store shapes the spanning-forest pipeline must NOT use — claim-target
// scatters into the witness array without the two-phase protocol, the
// atomics vocabulary, or a stated invariant. Two frontier entries can
// pick the same target, so every one of these is a lost-update race that
// silently corrupts the forest.
#include "prelude.hpp"

// Stamping a witness by claim target: x[i] is not injective in i.
void stamp_by_target(unsigned* wit, const unsigned* x) {
  parallel_for(0, 64, [&](unsigned long i) {
    wit[x[i]] = static_cast<unsigned>(i);
  });
}

// "Check then write" without a rank protocol: the comparison and the
// store are not one atomic step, so two winners can interleave.
void racy_claim(unsigned* wit, unsigned* C, const unsigned* x) {
  parallel_for(0, 64, [&](unsigned long i) {
    const unsigned w = x[i];
    if (C[w] == 0) {
      C[w] = 1;
      wit[w] = static_cast<unsigned>(i);
    }
  });
}

// The scatter hides one call level down in a witness-recording helper.
static void record(unsigned* wit, unsigned long slot, unsigned v) {
  wit[slot] = v;
}

void helper_scatter(unsigned* wit, const unsigned* x) {
  parallel_for(0, 64, [&](unsigned long i) {
    record(wit, x[i], static_cast<unsigned>(i));
  });
}
