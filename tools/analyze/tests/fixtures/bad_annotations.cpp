// Positive fixtures for the annotation audit: an orphaned private-write
// whose store vanished, one with empty invariant text, and a suppression
// that suppresses nothing.
#include "prelude.hpp"

void orphaned(unsigned* D) {
  parallel_for(0, 64, [&](unsigned long i) {
    // lint: private-write(slot i is owned by iteration i)
    if (D[i]) return;
  });
}

void empty_reason(unsigned* D) {
  parallel_for(0, 64, [&](unsigned long i) {
    // lint: private-write()
    D[i] = 0;
  });
}

void unused_suppression(unsigned* D) {
  parallel_for(0, 64, [&](unsigned long i) {
    // analyze: suppress(shared-write: nothing here actually races)
    D[i] = 0;
  });
}
