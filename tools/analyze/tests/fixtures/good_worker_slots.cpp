// Negative fixtures for per-worker-slot stores: a subscript that is
// exactly the calling worker's id pins the cell to one thread, so the
// store is private no matter which iterations the worker claims — the
// pattern behind the thread pool's per-worker block deques (each
// participant owns the deque at its own worker index; parked workers
// never touch one) and per-worker counter/staging arrays.
#include "prelude.hpp"

// Direct worker_id() subscript, unqualified and qualified.
void direct_worker_slot(unsigned* counts) {
  parallel_for(0, 64, [&](unsigned long i) {
    counts[pcc::parallel::worker_id()] += static_cast<unsigned>(i);
  });
}

// Through a local initialized from worker_id() — the idiomatic spelling
// (hoist the id once per block, then index with the local).
void hoisted_worker_slot(unsigned* counts, unsigned* sums) {
  parallel_for(0, 64, [&](unsigned long i) {
    const int wid = pcc::parallel::worker_id();
    counts[wid] += 1;
    sums[wid] += static_cast<unsigned>(i);
  });
}

// Per-worker struct fields: deque-style {next, end} records owned by the
// worker at that index.
struct block_deque {
  unsigned long next;
  unsigned long end;
};

void worker_deque_fields(block_deque* deques) {
  parallel_for(0, 64, [&](unsigned long) {
    const int self = pcc::parallel::worker_id();
    deques[self].next = 0;
    deques[self].end = 16;
  });
}
