// Positive fixtures for the hot-path hygiene checks: type-erased
// callables, allocation, hidden-global randomness inside parallel bodies,
// and iteration-order-dependent hash traversal in a registry run impl.
#include "prelude.hpp"

void erased_callable(unsigned* out) {
  parallel_for(0, 64, [&](unsigned long i) {
    std::function<unsigned(unsigned)> f;
    out[i] = i;
  });
}

void alloc_in_body(unsigned* out) {
  parallel_for(0, 64, [&](unsigned long i) {
    std::vector<unsigned> tmp(4);
    out[i] = static_cast<unsigned>(tmp.size());
  });
}

void hidden_global_rng(unsigned* out) {
  parallel_for(0, 64, [&](unsigned long i) {
    out[i] = static_cast<unsigned>(std::rand());
  });
}

// Registry hot path: results must not depend on hash iteration order.
unsigned run_sum_labels(const std::unordered_map<unsigned, unsigned>& m) {
  unsigned acc = 0;
  for (const auto& kv : m) acc += kv.second;
  return acc;
}
