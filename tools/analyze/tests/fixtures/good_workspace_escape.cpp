// Negative fixtures for workspace-escape: value copies out of arena
// memory are fine, and returning memory carved from a CALLER-owned arena
// is the repo's `*_into` idiom.
#include "prelude.hpp"

// Values read out of the span are copies; nothing dangles.
void value_copy_out(unsigned long n, unsigned* out) {
  pcc::parallel::workspace ws;
  unsigned* s = ws.take<unsigned>(n);
  for (unsigned long i = 0; i < n; ++i) out[i] = s[i] + 1;
}

// The arena is a reference parameter: the caller owns its lifetime, so
// handing back memory carved from it is the whole point (`*_into`).
unsigned* carve_into(pcc::parallel::workspace& ws, unsigned long n) {
  unsigned* s = ws.take<unsigned>(n);
  s[0] = 0;
  return s;
}
