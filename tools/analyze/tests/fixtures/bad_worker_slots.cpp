// Positive fixtures for per-worker-slot stores: the worker-slot exemption
// is exactly `worker_id()` (or a local holding it) — any arithmetic
// around the id can collide across workers and must still be flagged.
#include "prelude.hpp"

// worker_id() + i: two workers can land on the same cell.
void offset_from_worker_id(unsigned* counts) {
  parallel_for(0, 64, [&](unsigned long i) {
    counts[pcc::parallel::worker_id() + i] = 1;  // finding: shared-write
  });
}

// A local derived from worker_id() with arithmetic is not a bare slot id.
void derived_from_worker_id(unsigned* counts, unsigned stride) {
  parallel_for(0, 64, [&](unsigned long) {
    const unsigned base = pcc::parallel::worker_id() * stride;
    counts[base] = 1;  // finding: shared-write
  });
}
