// Negative fixtures for the hygiene checks: fixed-capacity hash_map
// insert does not allocate, spans into preallocated storage are fine, and
// allocation outside any parallel region is nobody's business.
#include "prelude.hpp"

void fixed_capacity_insert(pcc::parallel::hash_map& hm,
                           const unsigned* keys) {
  parallel_for(0, 64, [&](unsigned long i) {
    hm.insert(keys[i], static_cast<unsigned>(i));
  });
}

void alloc_outside_region(unsigned* out) {
  std::vector<unsigned> staging(64);
  parallel_for(0, 64, [&](unsigned long i) {
    out[i] = static_cast<unsigned>(i + staging.size());
  });
}

// A run impl that walks a vector: deterministic order, no findings.
unsigned run_sum_vector(const std::vector<unsigned>& v) {
  unsigned acc = 0;
  for (unsigned long i = 0; i < v.size(); ++i) acc += i;
  return acc;
}
