// Positive fixtures for workspace-escape: memory carved from a
// locally-owned arena outliving the arena's scope, and arena mutation
// inside a parallel body.
#include "prelude.hpp"

// The arena dies with the function; the returned pointer dangles.
unsigned* leak_by_return(unsigned long n) {
  pcc::parallel::workspace ws;
  unsigned* s = ws.take<unsigned>(n);
  return s;
}

struct sink {
  unsigned* p;
};

// Storing the span into an out-parameter that outlives the arena.
void leak_by_out_param(unsigned long n, sink& out) {
  pcc::parallel::workspace ws;
  unsigned* s = ws.take<unsigned>(n);
  out.p = s;
}

// take() inside a parallel body: the bump cursor is not synchronized.
void take_in_region(unsigned long n) {
  pcc::parallel::workspace ws;
  parallel_for(0, n, [&](unsigned long) {
    unsigned* t = ws.take<unsigned>(16);
    t[0] = 1;
  });
}
