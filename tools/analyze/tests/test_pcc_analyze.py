"""Unit tests for pcc_analyze, driven by the fixture corpus.

Every check family has at least one positive fixture (each check fires at
the expected line) and one negative fixture (the analyzer stays silent on
disciplined code). The JSON report schema is pinned by a regression test.

Run directly (python3 -m unittest discover -s tools/analyze/tests) or via
the `analyze_selftest` CTest target.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
ANALYZE_DIR = os.path.dirname(TESTS_DIR)
FIXTURES = os.path.join(TESTS_DIR, "fixtures")

sys.path.insert(0, ANALYZE_DIR)

import checks  # noqa: E402
import pcc_analyze  # noqa: E402


def analyze(*names):
    files = [os.path.join(FIXTURES, n) for n in names]
    _, findings = pcc_analyze.analyze_files(files)
    return findings


def active(findings):
    return [f for f in findings if not f.suppressed]


def by_check(findings):
    return sorted(f.check for f in active(findings))


def line_text(name, line):
    with open(os.path.join(FIXTURES, name)) as f:
        return f.read().splitlines()[line - 1]


class SharedWriteTests(unittest.TestCase):
    def test_positive_fixture(self):
        findings = active(analyze("bad_shared_write.cpp"))
        self.assertEqual([f.check for f in findings], ["shared-write"] * 5)
        # raw scatter, alias scatter, one-deep callee, known writer,
        # compound assign — in file order.
        self.assertIn("D[x[i]] = 1;", line_text("bad_shared_write.cpp",
                                                findings[0].line))
        self.assertIn("d[x[i]] = 1;", line_text("bad_shared_write.cpp",
                                                findings[1].line))
        self.assertIn("bump(D, x[i]);", line_text("bad_shared_write.cpp",
                                                  findings[2].line))
        self.assertIn("memcpy", line_text("bad_shared_write.cpp",
                                          findings[3].line))
        self.assertIn("*total += i;", line_text("bad_shared_write.cpp",
                                                findings[4].line))

    def test_callee_resolution_names_the_helper(self):
        findings = active(analyze("bad_shared_write.cpp"))
        helper = [f for f in findings if "bump" in f.message]
        self.assertEqual(len(helper), 1)
        self.assertIn("parameter `p`", helper[0].message)

    def test_negative_fixture(self):
        findings = analyze("good_shared_write.cpp")
        self.assertEqual(findings, [],
                         msg="\n".join(f.message for f in findings))


class WitnessSpanTests(unittest.TestCase):
    """Witness-span discipline (src/core/sf_engine.cpp): a forest edge's
    identity depends on WHICH claim wins, so witness stores must be
    owner-indexed, atomic (the two-phase claim's write_min), or carry a
    validated private-write invariant. The fixtures mirror the pipeline's
    real store shapes."""

    def test_positive_fixture(self):
        findings = active(analyze("bad_witness_spans.cpp"))
        self.assertEqual([f.check for f in findings], ["shared-write"] * 4)
        # Raw stamp by target, check-then-write pair, one-deep helper —
        # in file order.
        self.assertIn("wit[x[i]] = static_cast<unsigned>(i);",
                      line_text("bad_witness_spans.cpp", findings[0].line))
        self.assertIn("C[w] = 1;",
                      line_text("bad_witness_spans.cpp", findings[1].line))
        self.assertIn("wit[w] = static_cast<unsigned>(i);",
                      line_text("bad_witness_spans.cpp", findings[2].line))
        self.assertIn("record(wit, x[i], static_cast<unsigned>(i));",
                      line_text("bad_witness_spans.cpp", findings[3].line))

    def test_negative_fixture(self):
        findings = analyze("good_witness_spans.cpp")
        self.assertEqual(findings, [],
                         msg="\n".join(f.message for f in findings))


class WorkerSlotTests(unittest.TestCase):
    """Per-worker-slot stores: a subscript that is exactly worker_id()
    (or a local holding it) pins the cell to one thread — the thread
    pool's parked-worker deque fields and per-worker counters are
    per-owner, not shared."""

    def test_negative_fixture(self):
        findings = analyze("good_worker_slots.cpp")
        self.assertEqual(findings, [],
                         msg="\n".join(f.message for f in findings))

    def test_positive_fixture(self):
        findings = active(analyze("bad_worker_slots.cpp"))
        self.assertEqual([f.check for f in findings], ["shared-write"] * 2)
        # worker_id() + i offset, then the derived (scaled) local —
        # arithmetic around the id is never exempt.
        self.assertIn("counts[pcc::parallel::worker_id() + i] = 1;",
                      line_text("bad_worker_slots.cpp", findings[0].line))
        self.assertIn("counts[base] = 1;",
                      line_text("bad_worker_slots.cpp", findings[1].line))


class SharedCursorTests(unittest.TestCase):
    def test_positive_fixture(self):
        findings = active(analyze("bad_shared_cursor.cpp"))
        self.assertEqual([f.check for f in findings],
                         ["shared-cursor-emission"] * 2)
        self.assertTrue(all("emit_pack" in f.message for f in findings))

    def test_negative_fixture(self):
        findings = analyze("good_emission.cpp")
        self.assertEqual(findings, [],
                         msg="\n".join(f.message for f in findings))


class WorkspaceEscapeTests(unittest.TestCase):
    def test_positive_fixture(self):
        findings = active(analyze("bad_workspace_escape.cpp"))
        got = by_check(findings)
        self.assertEqual(got.count("workspace-escape"), 2)
        self.assertEqual(got.count("workspace-take-in-parallel"), 1)
        returns = [f for f in findings if "returning" in f.message]
        self.assertEqual(len(returns), 1)
        out_params = [f for f in findings if "out-parameter" in f.message]
        self.assertEqual(len(out_params), 1)

    def test_negative_fixture(self):
        findings = analyze("good_workspace_escape.cpp")
        self.assertEqual(findings, [],
                         msg="\n".join(f.message for f in findings))


class HygieneTests(unittest.TestCase):
    def test_positive_fixture(self):
        findings = active(analyze("bad_hygiene.cpp"))
        got = by_check(findings)
        self.assertIn("std-function-in-parallel", got)
        self.assertIn("alloc-in-parallel", got)
        self.assertIn("rand-time-in-parallel", got)
        self.assertIn("hash-iteration-order", got)

    def test_registry_run_impl_is_scanned(self):
        findings = active(analyze("bad_hygiene.cpp"))
        hashes = [f for f in findings if f.check == "hash-iteration-order"]
        self.assertEqual(len(hashes), 1)
        self.assertIn("run_sum_labels", hashes[0].message)

    def test_negative_fixture(self):
        findings = analyze("good_hygiene.cpp")
        self.assertEqual(findings, [],
                         msg="\n".join(f.message for f in findings))


class AnnotationAuditTests(unittest.TestCase):
    def test_positive_fixture(self):
        findings = active(analyze("bad_annotations.cpp"))
        got = by_check(findings)
        self.assertIn("orphaned-annotation", got)
        self.assertIn("empty-annotation", got)
        self.assertIn("unused-suppression", got)
        self.assertEqual(len(got), 3)

    def test_suppressions_apply_and_count_as_used(self):
        findings = analyze("good_annotations.cpp")
        self.assertEqual(active(findings), [],
                         msg="\n".join(f.message for f in findings))
        suppressed = [f for f in findings if f.suppressed]
        # both the analyze: suppress and the legacy lint: allow spelling
        self.assertEqual([f.check for f in suppressed],
                         ["shared-write"] * 2)
        self.assertTrue(all(f.suppress_reason for f in suppressed))


class ReportSchemaTests(unittest.TestCase):
    """Pin the machine-readable report schema: tooling downstream (CI
    gating, trend dashboards) parses these exact keys."""

    TOP_KEYS = {"tool", "schema_version", "checks", "files_scanned",
                "findings", "suppressed", "annotations", "summary"}
    ROW_REQUIRED = {"file", "line", "col", "check", "message"}
    ROW_OPTIONAL = {"function", "region_line", "suppress_reason"}

    def _report(self, *names):
        files = [os.path.join(FIXTURES, n) for n in names]
        analyzer, findings = pcc_analyze.analyze_files(files)
        with tempfile.NamedTemporaryFile("r", suffix=".json",
                                         delete=False) as tmp:
            path = tmp.name
        try:
            pcc_analyze.write_report(path, files, findings, analyzer,
                                     list(checks.CHECK_NAMES))
            with open(path) as f:
                return json.load(f)
        finally:
            os.unlink(path)

    def test_top_level_schema(self):
        rep = self._report("bad_shared_write.cpp", "good_annotations.cpp")
        self.assertEqual(set(rep), self.TOP_KEYS)
        self.assertEqual(rep["tool"], "pcc_analyze")
        self.assertEqual(rep["schema_version"],
                         pcc_analyze.REPORT_SCHEMA_VERSION)
        self.assertEqual(rep["files_scanned"], 2)
        self.assertEqual(rep["checks"], list(checks.CHECK_NAMES))

    def test_finding_rows(self):
        rep = self._report("bad_shared_write.cpp", "good_annotations.cpp")
        self.assertEqual(len(rep["findings"]), rep["summary"]["findings"])
        self.assertEqual(len(rep["suppressed"]),
                         rep["summary"]["suppressed"])
        self.assertGreater(len(rep["findings"]), 0)
        self.assertGreater(len(rep["suppressed"]), 0)
        for row in rep["findings"] + rep["suppressed"]:
            self.assertTrue(self.ROW_REQUIRED <= set(row))
            self.assertTrue(set(row) <=
                            self.ROW_REQUIRED | self.ROW_OPTIONAL)
            self.assertIn(row["check"], checks.CHECK_NAMES)
            self.assertIsInstance(row["line"], int)
            self.assertIsInstance(row["col"], int)
        for row in rep["suppressed"]:
            self.assertIn("suppress_reason", row)

    def test_annotation_counters(self):
        rep = self._report("good_annotations.cpp")
        ann = rep["annotations"]
        self.assertEqual(set(ann),
                         {"private_write_total", "private_write_anchored"})
        self.assertEqual(ann["private_write_total"], 1)
        self.assertEqual(ann["private_write_anchored"], 1)


class CliTests(unittest.TestCase):
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, os.path.join(ANALYZE_DIR, "pcc_analyze.py"),
             *args],
            capture_output=True, text=True)

    def test_exit_zero_on_clean_input(self):
        r = self._run(os.path.join(FIXTURES, "good_shared_write.cpp"))
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertEqual(r.stdout, "")

    def test_exit_one_with_diagnostics_on_findings(self):
        r = self._run(os.path.join(FIXTURES, "bad_shared_write.cpp"))
        self.assertEqual(r.returncode, 1)
        first = r.stdout.splitlines()[0]
        # clang-style file:line:col: warning: [check] message
        self.assertRegex(first,
                         r"bad_shared_write\.cpp:\d+:\d+: warning: "
                         r"\[shared-write\] ")

    def test_exit_two_on_unknown_check(self):
        r = self._run("--checks", "no-such-check",
                      os.path.join(FIXTURES, "good_shared_write.cpp"))
        self.assertEqual(r.returncode, 2)

    def test_check_filter_narrows_output(self):
        r = self._run("--checks", "shared-cursor-emission",
                      os.path.join(FIXTURES, "bad_shared_cursor.cpp"),
                      os.path.join(FIXTURES, "bad_hygiene.cpp"))
        self.assertEqual(r.returncode, 1)
        lines = r.stdout.splitlines()
        self.assertEqual(len(lines), 2)
        self.assertTrue(all("[shared-cursor-emission]" in ln
                            for ln in lines))

    def test_list_checks_matches_catalog(self):
        r = self._run("--list-checks")
        self.assertEqual(r.returncode, 0)
        self.assertEqual(r.stdout.split(), list(checks.CHECK_NAMES))


if __name__ == "__main__":
    unittest.main()
