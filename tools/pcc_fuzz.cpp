// pcc_fuzz: differential testing harness. Generates random graphs across
// generator families and sizes, runs EVERY algorithm in the cc::algorithm
// registry (including the Liu–Tarjan variants and "auto") plus the
// spanning forest, and cross-checks all of them against the sequential BFS
// oracle. Exits non-zero (and prints a reproducer) on the first mismatch.
//
//   pcc_fuzz --trials 200 --max-n 5000 --seed 1

#include <algorithm>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "pcc.hpp"
#include "tool_common.hpp"

namespace {

using namespace pcc;

graph::graph make_graph(uint64_t kind, size_t n, uint64_t seed) {
  switch (kind % 7) {
    case 0:
      return graph::random_graph(n, 1 + seed % 6, seed);
    case 1:
      return graph::rmat_graph(n, 3 * n, seed);
    case 2:
      return graph::grid3d_graph(n, true, seed);
    case 3:
      return graph::line_graph(n, true, seed);
    case 4:
      return graph::erdos_renyi(std::min<size_t>(n, 400), 0.01, seed);
    case 5:
      return graph::cliques_with_bridges(1 + n / 50, 8);
    default:
      return graph::social_network_like(std::max<size_t>(n / 4, 32), seed);
  }
}

const char* kind_name(uint64_t kind) {
  static const char* names[] = {"random", "rmat",    "grid3d", "line",
                                "er",     "cliques", "social"};
  return names[kind % 7];
}

// Options for one registry entry in one trial. The decomp-* entries sweep
// their pipeline knobs off the seed so the fuzzer exercises the whole
// configuration space, not just the defaults.
cc::cc_options options_for(std::string_view name, uint64_t s) {
  cc::cc_options o;
  o.seed = s;
  if (name == "decomp-min") {
    o.beta = 0.05 + (s % 18) * 0.05;  // sweep beta with the seed
  } else if (name == "decomp-arb") {
    o.dedup = s % 2 == 0;
    o.parallel_edge_threshold = s % 3 == 0 ? 16 : SIZE_MAX;
  } else if (name == "decomp-arb-hybrid") {
    o.shifts = s % 2 != 0 ? ldd::shift_mode::kExponentialShifts
                          : ldd::shift_mode::kPermutationChunks;
    o.dense_threshold = 0.05 + (s % 5) * 0.1;
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) try {
  tools::arg_parser args(argc, argv, {"trials", "max-n", "seed"}, {});
  const int trials = static_cast<int>(args.get_int("trials", 50));
  const size_t max_n = static_cast<size_t>(args.get_int("max-n", 4000));
  const uint64_t base_seed = static_cast<uint64_t>(args.get_int("seed", 1));

  // One shared workspace across all trials: also fuzzes arena reuse, since
  // every algorithm re-runs over a warm arena shaped by earlier graphs.
  cc::algo_workspace ws;
  std::vector<vertex_id> labels;

  parallel::rng gen(base_seed);
  size_t checks = 0;
  for (int t = 0; t < trials; ++t) {
    const uint64_t kind = gen[3 * t];
    const size_t n = 2 + gen.bounded(3 * t + 1, max_n);
    const uint64_t seed = gen[3 * t + 2];
    const graph::graph g = make_graph(kind, n, seed);
    const auto oracle = graph::reference_components(g);

    labels.assign(g.num_vertices(), 0);
    for (const cc::algorithm& algo : cc::algorithms()) {
      const cc::cc_options opt = options_for(algo.name, seed);
      cc::run_algorithm(algo, g, opt, ws, labels);
      if (!baselines::labels_equivalent(oracle, labels)) {
        std::printf("MISMATCH: %s on %s n=%zu seed=%llu (trial %d)\n",
                    algo.name, kind_name(kind), n,
                    static_cast<unsigned long long>(seed), t);
        return 1;
      }
      ++checks;
    }

    // Spanning forest: exact size, acyclicity, and every edge a real edge
    // of the input graph (the witness pullback must never invent edges).
    cc::cc_options sopt;
    sopt.seed = seed;
    const auto forest = cc::spanning_forest(g, sopt);
    size_t comps = 0;
    for (size_t v = 0; v < oracle.size(); ++v) comps += oracle[v] == v ? 1 : 0;
    if (forest.size() != g.num_vertices() - comps) {
      std::printf("FOREST SIZE MISMATCH on %s n=%zu seed=%llu\n",
                  kind_name(kind), n, static_cast<unsigned long long>(seed));
      return 1;
    }
    baselines::union_find uf(g.num_vertices());
    for (auto [u, w] : forest) {
      if (!uf.unite(u, w)) {
        std::printf("FOREST CYCLE on %s n=%zu seed=%llu\n", kind_name(kind), n,
                    static_cast<unsigned long long>(seed));
        return 1;
      }
      const auto adj = g.neighbors(u);
      if (std::find(adj.begin(), adj.end(), w) == adj.end()) {
        std::printf("FOREST EDGE (%llu,%llu) NOT IN GRAPH on %s n=%zu "
                    "seed=%llu\n",
                    static_cast<unsigned long long>(u),
                    static_cast<unsigned long long>(w), kind_name(kind), n,
                    static_cast<unsigned long long>(seed));
        return 1;
      }
    }
    ++checks;

    if ((t + 1) % 10 == 0) {
      std::printf("  %d/%d trials, %zu checks OK\n", t + 1, trials, checks);
    }
  }
  std::printf("fuzz passed: %d trials, %zu checks across %zu algorithms\n",
              trials, checks, cc::algorithms().size());
  return 0;
} catch (const pcc::tools::arg_error& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  pcc::tools::usage_and_exit("usage: pcc_fuzz [--trials N] [--max-n N] [--seed S]\n");
}
