// pcc_fuzz: differential testing harness. Generates random graphs across
// generator families and sizes, runs EVERY connectivity implementation in
// the library plus the spanning forest, and cross-checks all of them
// against the sequential BFS oracle. Exits non-zero (and prints a
// reproducer) on the first mismatch.
//
//   pcc_fuzz --trials 200 --max-n 5000 --seed 1

#include <cstdio>
#include <string>
#include <vector>

#include "pcc.hpp"
#include "tool_common.hpp"

namespace {

using namespace pcc;

graph::graph make_graph(uint64_t kind, size_t n, uint64_t seed) {
  switch (kind % 7) {
    case 0:
      return graph::random_graph(n, 1 + seed % 6, seed);
    case 1:
      return graph::rmat_graph(n, 3 * n, seed);
    case 2:
      return graph::grid3d_graph(n, true, seed);
    case 3:
      return graph::line_graph(n, true, seed);
    case 4:
      return graph::erdos_renyi(std::min<size_t>(n, 400), 0.01, seed);
    case 5:
      return graph::cliques_with_bridges(1 + n / 50, 8);
    default:
      return graph::social_network_like(std::max<size_t>(n / 4, 32), seed);
  }
}

const char* kind_name(uint64_t kind) {
  static const char* names[] = {"random", "rmat",    "grid3d", "line",
                                "er",     "cliques", "social"};
  return names[kind % 7];
}

}  // namespace

int main(int argc, char** argv) try {
  tools::arg_parser args(argc, argv, {"trials", "max-n", "seed"}, {});
  const int trials = static_cast<int>(args.get_int("trials", 50));
  const size_t max_n = static_cast<size_t>(args.get_int("max-n", 4000));
  const uint64_t base_seed = static_cast<uint64_t>(args.get_int("seed", 1));

  struct impl {
    std::string name;
    std::function<std::vector<vertex_id>(const graph::graph&, uint64_t)> run;
  };
  const std::vector<impl> impls = {
      {"decomp-min-CC",
       [](const graph::graph& g, uint64_t s) {
         cc::cc_options o;
         o.variant = cc::decomp_variant::kMin;
         o.seed = s;
         o.beta = 0.05 + (s % 18) * 0.05;  // sweep beta with the seed
         return cc::connected_components(g, o);
       }},
      {"decomp-arb-CC",
       [](const graph::graph& g, uint64_t s) {
         cc::cc_options o;
         o.variant = cc::decomp_variant::kArb;
         o.seed = s;
         o.dedup = s % 2 == 0;
         o.parallel_edge_threshold = s % 3 == 0 ? 16 : SIZE_MAX;
         return cc::connected_components(g, o);
       }},
      {"decomp-arb-hybrid-CC",
       [](const graph::graph& g, uint64_t s) {
         cc::cc_options o;
         o.variant = cc::decomp_variant::kArbHybrid;
         o.seed = s;
         o.shifts = s % 2 != 0 ? ldd::shift_mode::kExponentialShifts
                               : ldd::shift_mode::kPermutationChunks;
         o.dense_threshold = 0.05 + (s % 5) * 0.1;
         return cc::connected_components(g, o);
       }},
      {"parallel-SF-PRM",
       [](const graph::graph& g, uint64_t) {
         return baselines::parallel_sf_prm_components(g);
       }},
      {"parallel-SF-PBBS",
       [](const graph::graph& g, uint64_t) {
         return baselines::parallel_sf_pbbs_components(g);
       }},
      {"parallel-SF-REM",
       [](const graph::graph& g, uint64_t) {
         return baselines::parallel_sf_rem_components(g);
       }},
      {"hybrid-BFS-CC",
       [](const graph::graph& g, uint64_t) {
         return baselines::hybrid_bfs_components(g);
       }},
      {"multistep-CC",
       [](const graph::graph& g, uint64_t) {
         return baselines::multistep_components(g);
       }},
      {"label-prop-CC",
       [](const graph::graph& g, uint64_t) {
         return baselines::label_prop_components(g);
       }},
      {"shiloach-vishkin-CC",
       [](const graph::graph& g, uint64_t) {
         return baselines::shiloach_vishkin_components(g);
       }},
      {"random-mate-CC",
       [](const graph::graph& g, uint64_t s) {
         return baselines::random_mate_components(g, s);
       }},
      {"awerbuch-shiloach-CC",
       [](const graph::graph& g, uint64_t) {
         return baselines::awerbuch_shiloach_components(g);
       }},
      {"afforest-CC",
       [](const graph::graph& g, uint64_t) {
         return baselines::afforest_components(g);
       }},
  };

  parallel::rng gen(base_seed);
  size_t checks = 0;
  for (int t = 0; t < trials; ++t) {
    const uint64_t kind = gen[3 * t];
    const size_t n = 2 + gen.bounded(3 * t + 1, max_n);
    const uint64_t seed = gen[3 * t + 2];
    const graph::graph g = make_graph(kind, n, seed);
    const auto oracle = graph::reference_components(g);

    for (const auto& im : impls) {
      if (!baselines::labels_equivalent(oracle, im.run(g, seed))) {
        std::printf("MISMATCH: %s on %s n=%zu seed=%llu (trial %d)\n",
                    im.name.c_str(), kind_name(kind), n,
                    static_cast<unsigned long long>(seed), t);
        return 1;
      }
      ++checks;
    }

    // Spanning forest: size + acyclicity + spanning.
    cc::sf_options sopt;
    sopt.seed = seed;
    const auto forest = cc::spanning_forest(g, sopt);
    size_t comps = 0;
    for (size_t v = 0; v < oracle.size(); ++v) comps += oracle[v] == v ? 1 : 0;
    if (forest.size() != g.num_vertices() - comps) {
      std::printf("FOREST SIZE MISMATCH on %s n=%zu seed=%llu\n",
                  kind_name(kind), n, static_cast<unsigned long long>(seed));
      return 1;
    }
    baselines::union_find uf(g.num_vertices());
    for (auto [u, w] : forest) {
      if (!uf.unite(u, w)) {
        std::printf("FOREST CYCLE on %s n=%zu seed=%llu\n", kind_name(kind), n,
                    static_cast<unsigned long long>(seed));
        return 1;
      }
    }
    ++checks;

    if ((t + 1) % 10 == 0) {
      std::printf("  %d/%d trials, %zu checks OK\n", t + 1, trials, checks);
    }
  }
  std::printf("fuzz passed: %d trials, %zu checks, no mismatches\n", trials,
              checks);
  return 0;
} catch (const pcc::tools::arg_error& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  pcc::tools::usage_and_exit("usage: pcc_fuzz [--trials N] [--max-n N] [--seed S]\n");
}
