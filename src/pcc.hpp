// Umbrella header for the pcc library: parallel connectivity via
// low-diameter decomposition (Shun, Dhulipala, Blelloch, SPAA'14), the
// decomposition variants, the graph substrate, and the baseline algorithms.
//
// Quickstart:
//   pcc::graph::graph g = pcc::graph::random_graph(1'000'000, 5, /*seed=*/1);
//   std::vector<pcc::vertex_id> labels = pcc::cc::connected_components(g);
#pragma once

#include "baselines/baselines.hpp"
#include "baselines/bfs.hpp"
#include "baselines/rem_union_find.hpp"
#include "baselines/union_find.hpp"
#include "baselines/verify.hpp"
#include "core/cc_engine.hpp"
#include "core/component_index.hpp"
#include "core/connectivity.hpp"
#include "core/contract.hpp"
#include "core/forest_index.hpp"
#include "core/labeling.hpp"
#include "core/registry.hpp"
#include "core/select.hpp"
#include "core/ldd.hpp"
#include "core/sf_engine.hpp"
#include "core/spanning_forest.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/edge_map.hpp"
#include "graph/io.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"
#include "graph/subgraph.hpp"
#include "graph/vertex_subset.hpp"
#include "parallel/arena.hpp"
#include "parallel/atomics.hpp"
#include "parallel/hash_map.hpp"
#include "parallel/hash_table.hpp"
#include "parallel/histogram.hpp"
#include "parallel/integer_sort.hpp"
#include "parallel/random.hpp"
#include "parallel/sample_sort.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/sequence.hpp"
#include "parallel/timer.hpp"
