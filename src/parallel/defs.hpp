// Basic type aliases and small utilities shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace pcc {

// Vertex and edge index types. The paper's experiments use graphs with up
// to 5e8 edges; 32-bit vertex ids and 64-bit edge offsets cover that while
// halving the memory traffic relative to all-64-bit, which matters for the
// cache behaviour the paper's engineering section discusses.
using vertex_id = uint32_t;
using edge_id = uint64_t;

inline constexpr vertex_id kNoVertex = std::numeric_limits<vertex_id>::max();

// Cache line size used for padding shared counters.
inline constexpr size_t kCacheLineBytes = 64;

namespace parallel {

// Granularity below which parallel loops run sequentially. Chosen large
// enough that per-task scheduling overhead is amortized.
inline constexpr size_t kDefaultGrain = 2048;

}  // namespace parallel
}  // namespace pcc
