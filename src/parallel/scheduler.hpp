// Thin scheduler abstraction with two interchangeable backends.
//
// The paper's code uses Cilk Plus (cilk_for / cilk_spawn). This layer keeps
// the algorithms scheduler-agnostic: they call pcc::parallel::parallel_for
// and pcc::parallel::par_do, which dispatch at runtime to either
//   - OpenMP (default), or
//   - the library's own work-stealing thread pool (parallel/thread_pool.hpp),
// selected with set_backend(). The whole test suite runs under both, so
// swapping in a third scheduler (Cilk, TBB, ...) only means reimplementing
// the two functions below.
#pragma once

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <utility>

#include "parallel/defs.hpp"
#include "parallel/thread_pool.hpp"

// ThreadSanitizer cannot see libgomp's fork/join barriers (libgomp ships
// uninstrumented), so under TSan a plain `#pragma omp parallel for` yields
// false reports everywhere: the compiler-generated capture struct written
// at the pragma, the loop body's writes, and the post-join reads all look
// unordered. The suppression file must stay empty, so instead TSan builds
// dispatch OpenMP regions through detail::tsan_omp_run below, which shares
// no function locals with the region — the job is published via a
// namespace-scope release/acquire atomic and blocks are handed out with an
// atomic counter (the same shape as thread_pool::work_on), making every
// cross-thread edge TSan-visible. Scheduling semantics match the normal
// path (dynamic self-scheduling over blocks); only TSan builds pay the
// extra atomics.
#if defined(__SANITIZE_THREAD__)
#define PCC_TSAN_SCHEDULER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PCC_TSAN_SCHEDULER 1
#endif
#endif
#ifndef PCC_TSAN_SCHEDULER
#define PCC_TSAN_SCHEDULER 0
#endif

namespace pcc::parallel {

enum class backend {
  kOpenMP,
  kThreadPool,
};

namespace detail {
inline backend& backend_ref() {
  static backend b = backend::kOpenMP;
  return b;
}

#if PCC_TSAN_SCHEDULER
struct tsan_omp_job {
  void (*invoke)(void*, size_t) = nullptr;
  void* ctx = nullptr;
  size_t num_blocks = 0;
  std::atomic<size_t> next{0};
};

// Job slot for the current top-level OpenMP region. Namespace scope on
// purpose: the region body below must reference no function locals, or
// the compiler would pass them through a shared capture struct whose
// accesses TSan cannot order across the uninstrumented team barriers.
// Only one top-level region runs at a time (nested calls serialize before
// reaching this path), so a single slot suffices.
inline std::atomic<tsan_omp_job*> tsan_omp_current{nullptr};

template <typename Body>
void tsan_omp_run(size_t num_blocks, Body& body) {
  tsan_omp_job j;
  j.invoke = [](void* ctx, size_t b) { (*static_cast<Body*>(ctx))(b); };
  j.ctx = &body;
  j.num_blocks = num_blocks;
  // Fork edge: workers acquire-load the slot inside the region, ordering
  // the job fields and the body's captures ahead of every block.
  tsan_omp_current.store(&j, std::memory_order_release);
#pragma omp parallel
  {
    tsan_omp_job* jp = tsan_omp_current.load(std::memory_order_acquire);
    // Snapshot the job fields up front: the overrunning fetch_add below is
    // each worker's release into the join edge, so no plain read of the
    // job (which lives on the submitter's stack) may follow it.
    void (*const invoke)(void*, size_t) = jp->invoke;
    void* const ctx = jp->ctx;
    const size_t blocks = jp->num_blocks;
    while (true) {
      const size_t b = jp->next.fetch_add(1, std::memory_order_acq_rel);
      if (b >= blocks) break;
      invoke(ctx, b);
    }
  }
  // Join edge: every worker's final (overrunning) fetch_add is an acq-rel
  // RMW on `next`, so this acquire load orders all block work ahead of
  // everything after the region.
  (void)j.next.load(std::memory_order_acquire);
  tsan_omp_current.store(nullptr, std::memory_order_relaxed);
}
#endif  // PCC_TSAN_SCHEDULER
}  // namespace detail

inline backend current_backend() { return detail::backend_ref(); }
inline void set_backend(backend b) { detail::backend_ref() = b; }

// RAII backend override (tests).
class scoped_backend {
 public:
  explicit scoped_backend(backend b) : saved_(current_backend()) {
    set_backend(b);
  }
  ~scoped_backend() { set_backend(saved_); }
  scoped_backend(const scoped_backend&) = delete;
  scoped_backend& operator=(const scoped_backend&) = delete;

 private:
  backend saved_;
};

// Number of worker threads parallel regions will use.
inline int num_workers() {
  if (current_backend() == backend::kThreadPool) {
    return static_cast<int>(thread_pool::instance().num_threads());
  }
  return omp_get_max_threads();
}

// Identifier of the calling worker in [0, num_workers()). On the pool
// backend this is the thread-local index stamped on each worker at startup
// (0 = the submitting thread); on OpenMP it is the team-local thread id.
inline int worker_id() {
  if (current_backend() == backend::kThreadPool) {
    return thread_pool::worker_index;
  }
  return omp_get_thread_num();
}

// Set the number of worker threads on the ACTIVE backend (global). On
// OpenMP this is omp_set_num_threads; on the pool backend it bounds the
// pool's active-thread cap (parking or lazily spawning workers as needed),
// so num_workers(), worker_id(), emit.hpp's per-worker staging sizes and
// speculative_for's granularity all read the same capped value. Must not
// be called while a parallel region is open (the pool asserts this; see
// emit.hpp for why the invariant matters).
inline void set_num_workers(int n) {
  if (current_backend() == backend::kThreadPool) {
    thread_pool::instance().set_active_threads(
        static_cast<size_t>(std::max(1, n)));
    return;
  }
  omp_set_num_threads(std::max(1, n));
}

// RAII guard that sets the worker count and restores the previous value.
// Both the save and the restore target the backend that was active at
// construction, so a guard opened on the pool backend restores the pool's
// cap (and leaves the OpenMP setting untouched) even if the current
// backend changed in between.
class scoped_workers {
 public:
  explicit scoped_workers(int n)
      : backend_(current_backend()), saved_(num_workers()) {
    set_num_workers(n);
  }
  ~scoped_workers() {
    const scoped_backend restore_on_saved_backend(backend_);
    set_num_workers(saved_);
  }
  scoped_workers(const scoped_workers&) = delete;
  scoped_workers& operator=(const scoped_workers&) = delete;

 private:
  backend backend_;
  int saved_;
};

// Parallel loop over [start, end). `f` is invoked once per index. Runs
// sequentially when the range is below `grain` or when already inside a
// parallel region at full occupancy (nested parallel-for serializes — the
// right policy for the divide-and-conquer sorts on both backends).
template <typename F>
void parallel_for(size_t start, size_t end, F&& f, size_t grain = kDefaultGrain) {
  if (end <= start) return;
  const size_t n = end - start;
  const size_t num_blocks = (n + grain - 1) / grain;

  if (current_backend() == backend::kThreadPool) {
    if (n <= grain || thread_pool::instance().num_threads() == 1 ||
        thread_pool::in_region) {
      for (size_t i = start; i < end; ++i) f(i);
      return;
    }
    thread_pool::instance().run(num_blocks, [&](size_t b) {
      const size_t lo = start + b * grain;
      const size_t hi = std::min(end, lo + grain);
      for (size_t i = lo; i < hi; ++i) f(i);
    });
    return;
  }

  if (n <= grain || omp_get_max_threads() == 1 || omp_in_parallel()) {
    for (size_t i = start; i < end; ++i) f(i);
    return;
  }
#if PCC_TSAN_SCHEDULER
  auto block = [&](size_t b) {
    const size_t lo = start + b * grain;
    const size_t hi = std::min(end, lo + grain);
    for (size_t i = lo; i < hi; ++i) f(i);
  };
  detail::tsan_omp_run(num_blocks, block);
#else
#pragma omp parallel for schedule(dynamic, 1)
  for (long long b = 0; b < static_cast<long long>(num_blocks); ++b) {
    const size_t lo = start + static_cast<size_t>(b) * grain;
    const size_t hi = std::min(end, lo + grain);
    for (size_t i = lo; i < hi; ++i) f(i);
  }
#endif
}

// Fork-join pair: run `left` and `right` potentially in parallel, join both.
// Equivalent of cilk_spawn/cilk_sync for two-way divide and conquer.
template <typename L, typename R>
void par_do(L&& left, R&& right) {
  if (current_backend() == backend::kThreadPool) {
    if (thread_pool::instance().num_threads() == 1 || thread_pool::in_region) {
      left();
      right();
      return;
    }
    thread_pool::instance().run(2, [&](size_t b) {
      if (b == 0) {
        left();
      } else {
        right();
      }
    });
    return;
  }

  if (omp_get_max_threads() == 1) {
    left();
    right();
    return;
  }
#if PCC_TSAN_SCHEDULER
  if (omp_in_parallel()) {
    // omp task/taskwait synchronizes through uninstrumented libgomp
    // barriers TSan cannot order, so nested forks run serially here.
    left();
    right();
    return;
  }
  auto both = [&](size_t b) {
    if (b == 0) {
      left();
    } else {
      right();
    }
  };
  detail::tsan_omp_run(2, both);
#else
  if (omp_in_parallel()) {
#pragma omp task untied shared(left)
    left();
    right();
#pragma omp taskwait
  } else {
#pragma omp parallel
#pragma omp single nowait
    {
#pragma omp task untied shared(left)
      left();
      right();
#pragma omp taskwait
    }
  }
#endif
}

}  // namespace pcc::parallel
