// A self-contained work-stealing thread pool — the library's second
// scheduler backend.
//
// The algorithms only ever call pcc::parallel::parallel_for / par_do
// (scheduler.hpp), which dispatch either to OpenMP (default) or to this
// pool, selected at runtime via set_backend(). The pool exists so the
// library runs without an OpenMP runtime and so the scheduler abstraction
// is demonstrably real (the test suite runs the full pipeline under both
// backends).
//
// Design: a persistent set of workers parked on a condition variable; a
// parallel region publishes a job = {block function, per-participant block
// deques}. The flattened block range [0, num_blocks) is partitioned into
// one contiguous bounded deque per participant; each participant drains
// its own deque with a private fetch_add (its own cache line — the common
// case has zero cross-thread contention, unlike the old single shared
// cursor), then steals leftover blocks from the other deques in cyclic
// order. Steals claim one block at a time with the same fetch_add, so a
// block is executed exactly once no matter how owner and thieves
// interleave.
//
// Worker-count control: the pool has a bounded *active-thread cap*
// (set_active_threads), distinct from how many worker threads exist.
// Workers above the cap park on the condition variable and never join a
// job; num_threads() returns the cap, which is what scheduler.hpp's
// num_workers() reports on this backend. Raising the cap beyond the
// spawned count lazily spawns more workers (bounded by kMaxThreads), so
// scoped_workers can sweep 1..P even on small machines. The cap must not
// change while a region is open (asserted): emit.hpp sizes per-worker
// staging from num_workers() at region entry and relies on the value
// staying put until the stitch.
//
// Nested regions execute inline on the calling thread, mirroring the
// OpenMP backend's policy.
#pragma once

#include <atomic>
#include <cassert>
#include <cerrno>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "parallel/defs.hpp"

namespace pcc::parallel {

class thread_pool {
 public:
  // Hard ceiling on total threads (submitter + workers): bounds lazy
  // growth from set_active_threads and the PCC_POOL_THREADS override.
  static constexpr size_t kMaxThreads = 512;

  // Global pool, created on first use with hardware_concurrency - 1
  // workers (the submitting thread participates too).
  static thread_pool& instance() {
    static thread_pool pool(default_worker_count());
    return pool;
  }

  explicit thread_pool(size_t num_workers)
      : deques_(std::make_unique<block_deque[]>(kMaxThreads)) {
    num_workers = std::min(num_workers, kMaxThreads - 1);
    workers_.reserve(num_workers);
    for (size_t i = 0; i < num_workers; ++i) {
      // Worker i gets id i + 1; id 0 belongs to whichever thread submits
      // the region (see worker_index below).
      workers_.emplace_back([this, i] { worker_loop(static_cast<int>(i) + 1); });
    }
    active_threads_.store(num_workers + 1, std::memory_order_relaxed);
  }

  ~thread_pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    wake_.notify_all();
    for (auto& t : workers_) t.join();
  }

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  // Run block_fn(b) for every b in [0, num_blocks), in parallel with the
  // calling thread participating. Blocking; returns when all blocks ran.
  // Must not be called from inside a pool job (callers handle nesting by
  // running inline — see scheduler.hpp). The callable is passed by
  // reference through a raw (fn pointer, context) pair — unlike
  // std::function this never heap-allocates, which keeps parallel regions
  // off the allocator on the engine's hot path.
  template <typename F>
  void run(size_t num_blocks, F&& block_fn) {
    using Fn = std::remove_reference_t<F>;
    run_erased(
        num_blocks,
        [](void* ctx, size_t b) { (*static_cast<Fn*>(ctx))(b); },
        const_cast<void*>(static_cast<const void*>(&block_fn)));
  }

  void run_erased(size_t num_blocks, void (*invoke)(void*, size_t),
                  void* ctx) {
    if (num_blocks == 0) return;
    job j;
    j.invoke = invoke;
    j.ctx = ctx;
    j.deques = deques_.get();
    j.num_participants = active_threads_.load(std::memory_order_relaxed);
    // Partition [0, num_blocks) into one contiguous bounded deque per
    // participant (empty deques for participants past num_blocks). The
    // plain stores here are published to every participant by the mutex
    // hand-off below, and `end` never changes while the job is live.
    const size_t p = j.num_participants;
    const size_t q = num_blocks / p;
    const size_t r = num_blocks % p;
    size_t lo = 0;
    for (size_t s = 0; s < p; ++s) {
      const size_t len = q + (s < r ? 1 : 0);
      deques_[s].next.store(lo, std::memory_order_relaxed);
      deques_[s].end = lo + len;
      lo += len;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      current_ = &j;
      ++epoch_;
    }
    wake_.notify_all();

    in_region = true;
    j.active.fetch_add(1, std::memory_order_acq_rel);
    work_on(j, /*self=*/0);
    in_region = false;

    // Wait for stragglers. The submitter drained every deque itself (its
    // steal loop visits all of them), so once `active` drops to zero all
    // blocks have executed.
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock,
               [&] { return j.active.load(std::memory_order_acquire) == 0; });
    current_ = nullptr;
  }

  // Active thread count (submitter + participating workers): the value
  // scheduler.hpp's num_workers() reports on this backend, and the number
  // of deques a job is partitioned into.
  size_t num_threads() const {
    return active_threads_.load(std::memory_order_relaxed);
  }

  // Worker threads actually spawned (>= num_threads() - 1; the excess is
  // parked).
  size_t spawned_threads() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return workers_.size() + 1;
  }

  // Bound the number of threads that participate in jobs to n (clamped to
  // [1, kMaxThreads]); workers above the cap park. Spawns workers lazily
  // when n exceeds the current pool size. Must NOT be called while a
  // region is open — num_workers()/worker_id()/per-worker staging sizes
  // must stay consistent for the whole region (see emit.hpp).
  void set_active_threads(size_t n) {
    n = std::min(std::max<size_t>(n, 1), kMaxThreads);
    assert(!in_region &&
           "worker count cannot change inside an open parallel region");
    std::lock_guard<std::mutex> lock(mutex_);
    assert(current_ == nullptr &&
           "worker count cannot change while a job is in flight");
    while (workers_.size() + 1 < n) {
      const size_t i = workers_.size();
      workers_.emplace_back(
          [this, i] { worker_loop(static_cast<int>(i) + 1); });
    }
    active_threads_.store(n, std::memory_order_relaxed);
  }

  // True while the calling thread executes inside a pool region (used for
  // the inline-nesting policy).
  static thread_local bool in_region;

  // Stable per-thread worker id: 0 for the submitting thread, i + 1 for
  // pool worker i. Backs parallel::worker_id() on this backend; always
  // < num_threads() inside a region (parked workers never enter one).
  static thread_local int worker_index;

 private:
  // One participant's bounded block deque: the contiguous range
  // [next, end) of still-unclaimed flattened block indices. `next` is the
  // only contended word and each deque has its own cache line; `end` is
  // immutable while the job is live. Owned by participant s == its index
  // for the drain phase; thieves claim from the same end once the owner
  // is done or slow (the fetch_add hands out each block exactly once
  // either way).
  struct alignas(kCacheLineBytes) block_deque {
    std::atomic<size_t> next{0};
    size_t end = 0;
  };

  struct job {
    void (*invoke)(void*, size_t) = nullptr;
    void* ctx = nullptr;
    block_deque* deques = nullptr;
    size_t num_participants = 1;
    std::atomic<int> active{0};
  };

  static size_t default_worker_count() {
    // PCC_POOL_THREADS overrides the initial pool size (total threads
    // including the submitter). Lets stress/TSan runs force real
    // parallelism on machines where hardware_concurrency() would yield
    // zero workers. The value must be a complete decimal number in
    // [1, kMaxThreads]; anything else (garbage suffix, overflow, zero,
    // negative, absurd sizes) is rejected with a diagnostic instead of
    // being silently wrapped through strtol.
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, before any worker
    // thread exists (function-local static init of the singleton pool).
    if (const char* env = std::getenv("PCC_POOL_THREADS")) {
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(env, &end, 10);
      if (end == env || *end != '\0' || errno == ERANGE || v < 1 ||
          v > static_cast<long>(kMaxThreads)) {
        std::fprintf(stderr,
                     "pcc: ignoring invalid PCC_POOL_THREADS=\"%s\" "
                     "(expected an integer in [1, %zu])\n",
                     env, kMaxThreads);
      } else {
        return static_cast<size_t>(v) - 1;
      }
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 1 ? hc - 1 : 0;
  }

  // Caller must have registered itself in j.active (under the pool mutex
  // for workers — that registration is what keeps the job alive: run()
  // only destroys the job once active drops to 0, checked under the same
  // mutex). `self` is the caller's deque index.
  void work_on(job& j, size_t self) {
    // Drain our own deque first (private cache line, contiguous blocks),
    // then steal leftovers from the other participants' deques in cyclic
    // order. A probe of an exhausted deque overshoots its `next` by one —
    // harmless, fetch_add still hands out each in-range block exactly
    // once.
    for (size_t d = 0; d < j.num_participants; ++d) {
      block_deque& dq = j.deques[(self + d) % j.num_participants];
      while (true) {
        const size_t b = dq.next.fetch_add(1, std::memory_order_acq_rel);
        if (b >= dq.end) break;
        j.invoke(j.ctx, b);
      }
    }
    if (j.active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Possibly the last one out: wake the submitter.
      std::lock_guard<std::mutex> lock(mutex_);
      done_.notify_all();
    }
  }

  void worker_loop(int id) {
    worker_index = id;
    uint64_t seen_epoch = 0;
    while (true) {
      job* j = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] {
          return shutdown_ || (current_ != nullptr && epoch_ != seen_epoch);
        });
        if (shutdown_) return;
        seen_epoch = epoch_;
        // Parked worker: above the job's active cap — never registers,
        // never touches the deques, goes back to sleep until the next
        // epoch.
        if (static_cast<size_t>(id) >= current_->num_participants) continue;
        j = current_;
        // Register while holding the mutex: run()'s completion check reads
        // `active` under this mutex, so a registered worker keeps the job
        // alive until its final fetch_sub.
        j->active.fetch_add(1, std::memory_order_acq_rel);
      }
      in_region = true;
      work_on(*j, static_cast<size_t>(id));
      in_region = false;
    }
  }

  std::vector<std::thread> workers_;
  std::unique_ptr<block_deque[]> deques_;
  std::atomic<size_t> active_threads_{1};
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  job* current_ = nullptr;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;
};

inline thread_local bool thread_pool::in_region = false;
inline thread_local int thread_pool::worker_index = 0;

}  // namespace pcc::parallel
