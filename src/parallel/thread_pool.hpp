// A self-contained work-sharing thread pool — the library's second
// scheduler backend.
//
// The algorithms only ever call pcc::parallel::parallel_for / par_do
// (scheduler.hpp), which dispatch either to OpenMP (default) or to this
// pool, selected at runtime via set_backend(). The pool exists so the
// library runs without an OpenMP runtime and so the scheduler abstraction
// is demonstrably real (the test suite runs the full pipeline under both
// backends).
//
// Design: a persistent set of workers parked on a condition variable; a
// parallel region publishes a job = {block function, block count}; workers
// (and the submitting thread) grab block indices from a shared atomic
// counter (work sharing with dynamic chunking — same load-balancing
// behaviour as `omp parallel for schedule(dynamic, 1)` over blocks).
// Nested regions execute inline on the calling thread, mirroring the
// OpenMP backend's policy.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pcc::parallel {

class thread_pool {
 public:
  // Global pool, created on first use with hardware_concurrency - 1
  // workers (the submitting thread participates too).
  static thread_pool& instance() {
    static thread_pool pool(default_worker_count());
    return pool;
  }

  explicit thread_pool(size_t num_workers) {
    workers_.reserve(num_workers);
    for (size_t i = 0; i < num_workers; ++i) {
      // Worker i gets id i + 1; id 0 belongs to whichever thread submits
      // the region (see worker_index below).
      workers_.emplace_back([this, i] { worker_loop(static_cast<int>(i) + 1); });
    }
  }

  ~thread_pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    wake_.notify_all();
    for (auto& t : workers_) t.join();
  }

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  // Run block_fn(b) for every b in [0, num_blocks), in parallel with the
  // calling thread participating. Blocking; returns when all blocks ran.
  // Must not be called from inside a pool job (callers handle nesting by
  // running inline — see scheduler.hpp). The callable is passed by
  // reference through a raw (fn pointer, context) pair — unlike
  // std::function this never heap-allocates, which keeps parallel regions
  // off the allocator on the engine's hot path.
  template <typename F>
  void run(size_t num_blocks, F&& block_fn) {
    using Fn = std::remove_reference_t<F>;
    run_erased(
        num_blocks,
        [](void* ctx, size_t b) { (*static_cast<Fn*>(ctx))(b); },
        const_cast<void*>(static_cast<const void*>(&block_fn)));
  }

  void run_erased(size_t num_blocks, void (*invoke)(void*, size_t),
                  void* ctx) {
    if (num_blocks == 0) return;
    job j;
    j.invoke = invoke;
    j.ctx = ctx;
    j.num_blocks = num_blocks;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      current_ = &j;
      ++epoch_;
    }
    wake_.notify_all();

    in_region = true;
    j.active.fetch_add(1, std::memory_order_acq_rel);
    work_on(j);
    in_region = false;

    // Wait for stragglers.
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return j.active == 0 && j.next >= j.num_blocks; });
    current_ = nullptr;
  }

  size_t num_threads() const { return workers_.size() + 1; }

  // True while the calling thread executes inside a pool region (used for
  // the inline-nesting policy).
  static thread_local bool in_region;

  // Stable per-thread worker id: 0 for the submitting thread, i + 1 for
  // pool worker i. Backs parallel::worker_id() on this backend.
  static thread_local int worker_index;

 private:
  struct job {
    void (*invoke)(void*, size_t) = nullptr;
    void* ctx = nullptr;
    size_t num_blocks = 0;
    std::atomic<size_t> next{0};
    std::atomic<int> active{0};
  };

  static size_t default_worker_count() {
    // PCC_POOL_THREADS overrides the pool size (total threads including
    // the submitter). Lets stress/TSan runs force real parallelism on
    // machines where hardware_concurrency() would yield zero workers.
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, before any worker
    // thread exists (function-local static init of the singleton pool).
    if (const char* env = std::getenv("PCC_POOL_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<size_t>(v) - 1;
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 1 ? hc - 1 : 0;
  }

  // Caller must have registered itself in j.active (under the pool mutex
  // for workers — that registration is what keeps the job alive: run()
  // only destroys the job once active drops to 0 and all blocks are
  // claimed, both checked under the same mutex).
  void work_on(job& j) {
    while (true) {
      const size_t b = j.next.fetch_add(1, std::memory_order_acq_rel);
      if (b >= j.num_blocks) break;
      j.invoke(j.ctx, b);
    }
    if (j.active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Possibly the last one out: wake the submitter.
      std::lock_guard<std::mutex> lock(mutex_);
      done_.notify_all();
    }
  }

  void worker_loop(int id) {
    worker_index = id;
    uint64_t seen_epoch = 0;
    while (true) {
      job* j = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] {
          return shutdown_ || (current_ != nullptr && epoch_ != seen_epoch);
        });
        if (shutdown_) return;
        seen_epoch = epoch_;
        j = current_;
        // Register while holding the mutex: run()'s completion check reads
        // `active` under this mutex, so a registered worker keeps the job
        // alive until its final fetch_sub.
        j->active.fetch_add(1, std::memory_order_acq_rel);
      }
      in_region = true;
      work_on(*j);
      in_region = false;
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  job* current_ = nullptr;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;
};

inline thread_local bool thread_pool::in_region = false;
inline thread_local int thread_pool::worker_index = 0;

}  // namespace pcc::parallel
