// Parallel comparison sort (sample sort).
//
// Complements the radix integer_sort for keys that are not small integers:
// sample ~p*log n pivots, bucket every element by binary search over the
// sorted sample, scatter bucket-by-bucket with per-block counting (stable
// within the scatter order of each block), and finish each bucket with a
// sequential sort. O(n log n) work, O(log^2 n)-ish depth — the standard
// PBBS-style construction.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "parallel/defs.hpp"
#include "parallel/integer_sort.hpp"
#include "parallel/random.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::parallel {

namespace detail {
inline constexpr size_t kSampleSortCutoff = 1 << 14;
inline constexpr size_t kSampleSortBlock = 1 << 12;
// Cap on bucket count: beyond this the per-block histogram matrix
// (num_blocks x num_buckets) outgrows the cache and its transpose-scan
// turns quadratic-ish, which is where the old n/block rule lost badly to
// the radix sort on large inputs.
inline constexpr size_t kSampleSortMaxBuckets = 512;
}  // namespace detail

template <typename T, typename Less = std::less<T>>
void sample_sort(std::vector<T>& v, Less less = Less{}, uint64_t seed = 0x5a) {
  const size_t n = v.size();
  if (n < detail::kSampleSortCutoff) {
    std::sort(v.begin(), v.end(), less);
    return;
  }

  // Radix fast path: sorting unsigned integers by value is exactly what
  // the LSD radix sort does in O(n) sweeps per digit — no pivots, no
  // binary searches, no per-bucket comparison sort. One reduce finds the
  // key width so narrow-keyed inputs pay only the passes they need. This
  // is the fix for the measured sample/integer sort gap on packed keys
  // (BM_SampleSort vs BM_IntegerSort in bench_micro).
  if constexpr (std::is_unsigned_v<T> && std::is_same_v<Less, std::less<T>>) {
    const T max_key = reduce(
        n, [&](size_t i) { return v[i]; }, T{0},
        [](T a, T b) { return a < b ? b : a; });
    // bit_width, not bits_needed(max + 1): full-range keys (max >= 2^63)
    // must yield 64, where the +1 would overflow.
    const int bits = std::bit_width(static_cast<uint64_t>(max_key));
    workspace ws;
    integer_sort_span(std::span<T>(v), bits,
                      [](T x) { return static_cast<uint64_t>(x); }, ws);
    return;
  }

  // Pivot selection: oversample, sort, take evenly spaced pivots. The
  // bucket count targets block-sized buckets but is capped (see
  // kSampleSortMaxBuckets); the oversampling factor is high enough that
  // bucket sizes concentrate near n/num_buckets instead of the 3-4x
  // overloads an 8x oversample produced.
  const size_t num_buckets =
      std::clamp<size_t>(n / detail::kSampleSortBlock, 2,
                         detail::kSampleSortMaxBuckets);
  const size_t oversample = 32;
  rng gen(seed);
  std::vector<T> sample(num_buckets * oversample);
  parallel_for(0, sample.size(),
               [&](size_t i) { sample[i] = v[gen.bounded(i, n)]; });
  std::sort(sample.begin(), sample.end(), less);
  std::vector<T> pivots(num_buckets - 1);
  for (size_t i = 0; i + 1 < num_buckets; ++i) {
    pivots[i] = sample[(i + 1) * oversample];
  }

  // Bucket index per element.
  std::vector<uint32_t> bucket(n);
  parallel_for(0, n, [&](size_t i) {
    bucket[i] = static_cast<uint32_t>(
        std::upper_bound(pivots.begin(), pivots.end(), v[i], less) -
        pivots.begin());
  });

  // Per-block bucket counts -> global offsets (bucket-major), scatter.
  const size_t nb = 1 + (n - 1) / detail::kSampleSortBlock;
  std::vector<size_t> counts(nb * num_buckets, 0);
  parallel_for(
      0, nb,
      [&](size_t b) {
        const size_t lo = b * detail::kSampleSortBlock;
        const size_t hi = std::min(n, lo + detail::kSampleSortBlock);
        size_t* c = counts.data() + b * num_buckets;
        // lint: private-write(block b owns counters [b*nbk, (b+1)*nbk))
        for (size_t i = lo; i < hi; ++i) ++c[bucket[i]];
      },
      1);
  std::vector<size_t> offsets(nb * num_buckets);
  std::vector<size_t> bucket_start(num_buckets + 1);
  size_t total = 0;
  for (size_t k = 0; k < num_buckets; ++k) {
    bucket_start[k] = total;
    for (size_t b = 0; b < nb; ++b) {
      offsets[b * num_buckets + k] = total;
      total += counts[b * num_buckets + k];
    }
  }
  bucket_start[num_buckets] = n;

  std::vector<T> out(n);
  parallel_for(
      0, nb,
      [&](size_t b) {
        const size_t lo = b * detail::kSampleSortBlock;
        const size_t hi = std::min(n, lo + detail::kSampleSortBlock);
        size_t* off = offsets.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) {
          // lint: private-write(scanned histograms give blocks disjoint ranges)
          out[off[bucket[i]]++] = v[i];
        }
      },
      1);

  // Sort each bucket (sequentially per bucket, buckets in parallel).
  parallel_for(
      0, num_buckets,
      [&](size_t k) {
        std::sort(out.begin() + bucket_start[k],
                  out.begin() + bucket_start[k + 1], less);
      },
      1);
  v.swap(out);
}

}  // namespace pcc::parallel
