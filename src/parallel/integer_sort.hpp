// Parallel stable LSD radix (integer) sort.
//
// The paper's contraction phase "uses an integer sort to collect all the
// vertices of the same component together", citing the linear-work PBBS
// integer sort. This is that substrate: a stable least-significant-digit
// radix sort with per-block histograms — each digit pass is O(n) work and
// O(log n + radix) depth, so sorting b-bit keys costs O(n * b/8) work.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "parallel/defs.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::parallel {

namespace detail {

inline constexpr int kRadixBits = 8;
inline constexpr size_t kRadix = size_t{1} << kRadixBits;
inline constexpr size_t kSortBlock = 1 << 14;  // elements per counting block
inline constexpr size_t kSerialSortCutoff = 1 << 13;

// One stable counting pass over `in`, scattering into `out`, keyed on
// bits [shift, shift + kRadixBits) of key(x).
template <typename T, typename Key>
void radix_pass(const std::vector<T>& in, std::vector<T>& out, int shift,
                Key&& key) {
  const size_t n = in.size();
  const size_t nb = n == 0 ? 0 : 1 + (n - 1) / kSortBlock;
  const uint64_t mask = kRadix - 1;

  // counts[b * kRadix + d] = #elements with digit d in block b.
  std::vector<size_t> counts(nb * kRadix, 0);
  parallel_for(
      0, nb,
      [&](size_t b) {
        size_t* c = counts.data() + b * kRadix;
        const size_t lo = b * kSortBlock;
        const size_t hi = std::min(n, lo + kSortBlock);
        for (size_t i = lo; i < hi; ++i) ++c[(key(in[i]) >> shift) & mask];
      },
      1);

  // Stable scatter order = digit-major, then block, then position in block.
  // Transpose counts into digit-major order, scan, transpose back.
  std::vector<size_t> offsets(nb * kRadix);
  size_t total = 0;
  for (size_t d = 0; d < kRadix; ++d) {
    for (size_t b = 0; b < nb; ++b) {
      offsets[b * kRadix + d] = total;
      total += counts[b * kRadix + d];
    }
  }

  parallel_for(
      0, nb,
      [&](size_t b) {
        size_t* off = offsets.data() + b * kRadix;
        const size_t lo = b * kSortBlock;
        const size_t hi = std::min(n, lo + kSortBlock);
        for (size_t i = lo; i < hi; ++i) {
          const size_t d = (key(in[i]) >> shift) & mask;
          out[off[d]++] = in[i];
        }
      },
      1);
}

}  // namespace detail

// Stable sort of `v` by the low `key_bits` bits of key(x) (key returns an
// unsigned integer). key_bits is rounded up to a whole number of 8-bit
// digit passes.
template <typename T, typename Key>
void integer_sort(std::vector<T>& v, int key_bits, Key&& key) {
  const size_t n = v.size();
  if (n <= 1) return;
  if (n <= detail::kSerialSortCutoff) {
    std::stable_sort(v.begin(), v.end(), [&](const T& a, const T& b) {
      return key(a) < key(b);
    });
    return;
  }
  std::vector<T> tmp(n);
  bool in_v = true;
  for (int shift = 0; shift < key_bits; shift += detail::kRadixBits) {
    if (in_v) {
      detail::radix_pass(v, tmp, shift, key);
    } else {
      detail::radix_pass(tmp, v, shift, key);
    }
    in_v = !in_v;
  }
  if (!in_v) v.swap(tmp);
}

// Convenience: sort a vector of unsigned integers by value.
template <typename T>
void integer_sort_keys(std::vector<T>& v, int key_bits) {
  integer_sort(v, key_bits, [](const T& x) { return x; });
}

// Convenience: sort (anything) by an explicit projection — alias kept for
// call sites that sort pair arrays; identical to integer_sort.
template <typename T, typename Key>
void integer_sort_pairs(std::vector<T>& v, int key_bits, Key&& key) {
  integer_sort(v, key_bits, std::forward<Key>(key));
}

// Number of bits needed to represent values in [0, bound).
inline int bits_needed(uint64_t bound) {
  int b = 0;
  while ((uint64_t{1} << b) < bound) ++b;
  return b;
}

}  // namespace pcc::parallel
