// Parallel stable LSD radix (integer) sort.
//
// The paper's contraction phase "uses an integer sort to collect all the
// vertices of the same component together", citing the linear-work PBBS
// integer sort. This is that substrate: a stable least-significant-digit
// radix sort with per-block histograms — each digit pass is O(n) work and
// O(log n + radix) depth, so sorting b-bit keys costs O(n * b/8) work.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/arena.hpp"
#include "parallel/defs.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::parallel {

namespace detail {

inline constexpr int kRadixBits = 8;
inline constexpr size_t kRadix = size_t{1} << kRadixBits;
inline constexpr size_t kSortBlock = 1 << 14;  // elements per counting block
inline constexpr size_t kSerialSortCutoff = 1 << 13;

// One stable counting pass over in[0, n), scattering into out, keyed on
// bits [shift, shift + kRadixBits) of key(x). `counts` and `offsets` are
// caller-provided scratch of nb * kRadix entries each.
template <typename T, typename Key>
void radix_pass(const T* in, T* out, size_t n, int shift, Key&& key,
                size_t* counts, size_t* offsets) {
  const size_t nb = n == 0 ? 0 : 1 + (n - 1) / kSortBlock;
  const uint64_t mask = kRadix - 1;

  // counts[b * kRadix + d] = #elements with digit d in block b.
  parallel_for(
      0, nb,
      [&](size_t b) {
        size_t* c = counts + b * kRadix;
        // lint: private-write(block b owns counters [b*kRadix, (b+1)*kRadix))
        for (size_t d = 0; d < kRadix; ++d) c[d] = 0;
        const size_t lo = b * kSortBlock;
        const size_t hi = std::min(n, lo + kSortBlock);
        // lint: private-write(same block-owned counter slice)
        for (size_t i = lo; i < hi; ++i) ++c[(key(in[i]) >> shift) & mask];
      },
      1);

  // Stable scatter order = digit-major, then block, then position in block.
  // Transpose counts into digit-major order, scan, transpose back.
  size_t total = 0;
  for (size_t d = 0; d < kRadix; ++d) {
    for (size_t b = 0; b < nb; ++b) {
      offsets[b * kRadix + d] = total;
      total += counts[b * kRadix + d];
    }
  }

  parallel_for(
      0, nb,
      [&](size_t b) {
        size_t* off = offsets + b * kRadix;
        const size_t lo = b * kSortBlock;
        const size_t hi = std::min(n, lo + kSortBlock);
        for (size_t i = lo; i < hi; ++i) {
          const size_t d = (key(in[i]) >> shift) & mask;
          // lint: private-write(scanned histograms give blocks disjoint ranges)
          out[off[d]++] = in[i];
        }
      },
      1);
}

// LSD radix over a span with all scratch (the ping-pong buffer and the
// per-block histograms) provided by a workspace. Stable, so it produces the
// same ordering as the std::stable_sort small-input path of the vector
// overload.
template <typename T, typename Key>
void integer_sort_ws(std::span<T> v, int key_bits, Key&& key, workspace& ws) {
  const size_t n = v.size();
  if (n <= 1) return;
  workspace::scope s(ws);
  std::span<T> tmp = ws.take<T>(n);
  const size_t nb = 1 + (n - 1) / kSortBlock;
  std::span<size_t> counts = ws.take<size_t>(nb * kRadix);
  std::span<size_t> offsets = ws.take<size_t>(nb * kRadix);
  T* a = v.data();
  T* b = tmp.data();
  for (int shift = 0; shift < key_bits; shift += kRadixBits) {
    radix_pass(a, b, n, shift, key, counts.data(), offsets.data());
    std::swap(a, b);
  }
  if (a != v.data()) {
    parallel_for(0, n, [&](size_t i) { v[i] = tmp[i]; });
  }
}

}  // namespace detail

// Stable sort of `v` by the low `key_bits` bits of key(x) (key returns an
// unsigned integer). key_bits is rounded up to a whole number of 8-bit
// digit passes.
template <typename T, typename Key>
void integer_sort(std::vector<T>& v, int key_bits, Key&& key) {
  const size_t n = v.size();
  if (n <= 1) return;
  if (n <= detail::kSerialSortCutoff) {
    std::stable_sort(v.begin(), v.end(), [&](const T& a, const T& b) {
      return key(a) < key(b);
    });
    return;
  }
  if constexpr (std::is_trivially_copyable_v<T> &&
                std::is_trivially_destructible_v<T>) {
    workspace ws;
    detail::integer_sort_ws(std::span<T>(v), key_bits, std::forward<Key>(key),
                            ws);
  } else {
    // Types the workspace cannot hold (e.g. std::pair, which is not
    // trivially copyable) get properly-constructed vector scratch. Same
    // passes, same stable order.
    std::vector<T> tmp(n);
    const size_t nb = 1 + (n - 1) / detail::kSortBlock;
    std::vector<size_t> counts(nb * detail::kRadix);
    std::vector<size_t> offsets(nb * detail::kRadix);
    T* a = v.data();
    T* b = tmp.data();
    for (int shift = 0; shift < key_bits; shift += detail::kRadixBits) {
      detail::radix_pass(a, b, n, shift, key, counts.data(), offsets.data());
      std::swap(a, b);
    }
    if (a != v.data()) {
      parallel_for(0, n, [&](size_t i) { v[i] = tmp[i]; });
    }
  }
}

// Stable sort of span `v` by the low `key_bits` bits of key(x), with every
// temporary carved from `ws` (no system allocation once `ws` is warm).
template <typename T, typename Key>
void integer_sort_span(std::span<T> v, int key_bits, Key&& key,
                       workspace& ws) {
  detail::integer_sort_ws(v, key_bits, std::forward<Key>(key), ws);
}

// Convenience: sort a vector of unsigned integers by value.
template <typename T>
void integer_sort_keys(std::vector<T>& v, int key_bits) {
  integer_sort(v, key_bits, [](const T& x) { return x; });
}

// Convenience: sort (anything) by an explicit projection — alias kept for
// call sites that sort pair arrays; identical to integer_sort.
template <typename T, typename Key>
void integer_sort_pairs(std::vector<T>& v, int key_bits, Key&& key) {
  integer_sort(v, key_bits, std::forward<Key>(key));
}

// Number of bits needed to represent values in [0, bound).
inline int bits_needed(uint64_t bound) {
  int b = 0;
  while ((uint64_t{1} << b) < bound) ++b;
  return b;
}

}  // namespace pcc::parallel
