// Parallel sequence primitives: tabulate, map, reduce, scan, pack, filter.
//
// These are the "simple parallel routines" the paper's implementation is
// built from: prefix sums compute offsets into shared arrays; pack removes
// deleted (intra-component) edges; filter/pack_index gather the vertices of
// a frontier. All are work-efficient: O(n) work, O(log n) depth (block
// two-pass formulations).
#pragma once

#include <cassert>
#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "parallel/arena.hpp"
#include "parallel/defs.hpp"
#include "parallel/scheduler.hpp"

namespace pcc::parallel {

namespace detail {

// Number of blocks used by the two-pass (block) scan/pack formulations.
inline size_t num_blocks(size_t n, size_t grain) {
  return n == 0 ? 0 : 1 + (n - 1) / grain;
}

}  // namespace detail

// Build a vector of length n with v[i] = f(i), in parallel.
template <typename T, typename F>
std::vector<T> tabulate(size_t n, F&& f, size_t grain = kDefaultGrain) {
  std::vector<T> out(n);
  parallel_for(0, n, [&](size_t i) { out[i] = f(i); }, grain);
  return out;
}

// out[i] = f(in[i]).
template <typename T, typename F>
auto map(const std::vector<T>& in, F&& f, size_t grain = kDefaultGrain) {
  using R = decltype(f(in[0]));
  std::vector<R> out(in.size());
  parallel_for(0, in.size(), [&](size_t i) { out[i] = f(in[i]); }, grain);
  return out;
}

// Parallel reduction of f(0) + f(1) + ... + f(n-1) under an associative,
// commutative monoid (sum by default). Two-pass: per-block sequential
// reduce, then reduce over block results.
template <typename T, typename F, typename Combine>
T reduce(size_t n, F&& f, T identity, Combine&& combine,
         size_t grain = kDefaultGrain) {
  if (n == 0) return identity;
  const size_t nb = detail::num_blocks(n, grain);
  if (nb == 1) {
    T acc = identity;
    for (size_t i = 0; i < n; ++i) acc = combine(acc, f(i));
    return acc;
  }
  std::vector<T> block(nb, identity);
  parallel_for(
      0, nb,
      [&](size_t b) {
        const size_t lo = b * grain;
        const size_t hi = std::min(n, lo + grain);
        T acc = identity;
        for (size_t i = lo; i < hi; ++i) acc = combine(acc, f(i));
        block[b] = acc;
      },
      1);
  T acc = identity;
  for (size_t b = 0; b < nb; ++b) acc = combine(acc, block[b]);
  return acc;
}

// Workspace-backed reduction: identical to reduce() but the block-sum
// temporary comes from `ws` (rewound before returning) — the
// allocation-free twin for the engine's hot path.
template <typename T, typename F, typename Combine>
T reduce_ws(size_t n, F&& f, T identity, Combine&& combine, workspace& ws,
            size_t grain = kDefaultGrain) {
  if (n == 0) return identity;
  const size_t nb = detail::num_blocks(n, grain);
  if (nb == 1) {
    T acc = identity;
    for (size_t i = 0; i < n; ++i) acc = combine(acc, f(i));
    return acc;
  }
  workspace::scope s(ws);
  std::span<T> block = ws.take<T>(nb);
  parallel_for(
      0, nb,
      [&](size_t b) {
        const size_t lo = b * grain;
        const size_t hi = std::min(n, lo + grain);
        T acc = identity;
        for (size_t i = lo; i < hi; ++i) acc = combine(acc, f(i));
        block[b] = acc;
      },
      1);
  T acc = identity;
  for (size_t b = 0; b < nb; ++b) acc = combine(acc, block[b]);
  return acc;
}

// Sum of f(i) over [0, n) with workspace-backed scratch.
template <typename T, typename F>
T reduce_sum_ws(size_t n, F&& f, workspace& ws, size_t grain = kDefaultGrain) {
  return reduce_ws(
      n, std::forward<F>(f), T{0}, [](T a, T b) { return a + b; }, ws, grain);
}

// Sum of f(i) over [0, n).
template <typename T, typename F>
T reduce_sum(size_t n, F&& f, size_t grain = kDefaultGrain) {
  return reduce(
      n, std::forward<F>(f), T{0}, [](T a, T b) { return a + b; }, grain);
}

// Maximum of f(i) over [0, n); returns `lowest` for an empty range.
template <typename T, typename F>
T reduce_max(size_t n, F&& f, T lowest, size_t grain = kDefaultGrain) {
  return reduce(
      n, std::forward<F>(f), lowest, [](T a, T b) { return a < b ? b : a; },
      grain);
}

// Exclusive scan (prefix sums): out[i] = sum of f(0..i-1); returns total.
// Classic two-pass block scan: block sums, sequential scan of block sums,
// then per-block local scans offset by the block prefix.
template <typename T, typename F>
T scan_exclusive_into(size_t n, F&& f, std::vector<T>& out,
                      size_t grain = kDefaultGrain) {
  out.resize(n);
  if (n == 0) return T{0};
  const size_t nb = detail::num_blocks(n, grain);
  if (nb == 1) {
    T acc{0};
    for (size_t i = 0; i < n; ++i) {
      out[i] = acc;
      acc += f(i);
    }
    return acc;
  }
  std::vector<T> block(nb);
  parallel_for(
      0, nb,
      [&](size_t b) {
        const size_t lo = b * grain;
        const size_t hi = std::min(n, lo + grain);
        T acc{0};
        for (size_t i = lo; i < hi; ++i) acc += f(i);
        block[b] = acc;
      },
      1);
  T total{0};
  for (size_t b = 0; b < nb; ++b) {
    const T s = block[b];
    block[b] = total;
    total += s;
  }
  parallel_for(
      0, nb,
      [&](size_t b) {
        const size_t lo = b * grain;
        const size_t hi = std::min(n, lo + grain);
        T acc = block[b];
        for (size_t i = lo; i < hi; ++i) {
          out[i] = acc;  // lint: private-write(block b owns [lo, hi))
          acc += f(i);
        }
      },
      1);
  return total;
}

// Workspace-backed exclusive scan: out (size n) is caller-provided and the
// block-sum temporary comes from `ws` (rewound before returning). This is
// the allocation-free twin of scan_exclusive_into for the engine's hot path.
template <typename T, typename F>
T scan_exclusive_span(size_t n, F&& f, std::span<T> out, workspace& ws,
                      size_t grain = kDefaultGrain) {
  assert(out.size() >= n);
  if (n == 0) return T{0};
  const size_t nb = detail::num_blocks(n, grain);
  if (nb == 1) {
    T acc{0};
    for (size_t i = 0; i < n; ++i) {
      out[i] = acc;
      acc += f(i);
    }
    return acc;
  }
  workspace::scope s(ws);
  std::span<T> block = ws.take<T>(nb);
  parallel_for(
      0, nb,
      [&](size_t b) {
        const size_t lo = b * grain;
        const size_t hi = std::min(n, lo + grain);
        T acc{0};
        for (size_t i = lo; i < hi; ++i) acc += f(i);
        block[b] = acc;
      },
      1);
  T total{0};
  for (size_t b = 0; b < nb; ++b) {
    const T s2 = block[b];
    block[b] = total;
    total += s2;
  }
  parallel_for(
      0, nb,
      [&](size_t b) {
        const size_t lo = b * grain;
        const size_t hi = std::min(n, lo + grain);
        T acc = block[b];
        for (size_t i = lo; i < hi; ++i) {
          out[i] = acc;  // lint: private-write(block b owns [lo, hi))
          acc += f(i);
        }
      },
      1);
  return total;
}

// Workspace-backed pack_index: write the indices i in [0, n) with keep(i)
// into `out` (capacity >= count), returning the count. Scan scratch comes
// from `ws`.
template <typename Index = size_t, typename Keep>
size_t pack_index_span(size_t n, Keep&& keep, std::span<Index> out,
                       workspace& ws, size_t grain = kDefaultGrain) {
  workspace::scope s(ws);
  std::span<size_t> offsets = ws.take<size_t>(n);
  const size_t total = scan_exclusive_span<size_t>(
      n, [&](size_t i) { return keep(i) ? size_t{1} : size_t{0}; }, offsets,
      ws, grain);
  assert(out.size() >= total);
  parallel_for(
      0, n,
      [&](size_t i) {
        // lint: private-write(offsets is an exclusive scan, injective)
        if (keep(i)) out[offsets[i]] = static_cast<Index>(i);
      },
      grain);
  return total;
}

// Exclusive scan of a vector in place; returns the total.
template <typename T>
T scan_exclusive(std::vector<T>& v, size_t grain = kDefaultGrain) {
  std::vector<T> out;
  const T total =
      scan_exclusive_into(v.size(), [&](size_t i) { return v[i]; }, out, grain);
  v.swap(out);
  return total;
}

// Pack: keep in[i] where keep(i), preserving order. Two-pass via scan.
template <typename T, typename Keep>
std::vector<T> pack(const std::vector<T>& in, Keep&& keep,
                    size_t grain = kDefaultGrain) {
  const size_t n = in.size();
  std::vector<size_t> offsets;
  const size_t total = scan_exclusive_into(
      n, [&](size_t i) { return keep(i) ? size_t{1} : size_t{0}; }, offsets,
      grain);
  std::vector<T> out(total);
  parallel_for(
      0, n,
      [&](size_t i) {
        // lint: private-write(offsets is an exclusive scan, injective)
        if (keep(i)) out[offsets[i]] = in[i];
      },
      grain);
  return out;
}

// Pack the *indices* i in [0, n) where keep(i), in increasing order.
// Used to build sparse frontiers from dense flag arrays.
template <typename Index = size_t, typename Keep>
std::vector<Index> pack_index(size_t n, Keep&& keep,
                              size_t grain = kDefaultGrain) {
  std::vector<size_t> offsets;
  const size_t total = scan_exclusive_into(
      n, [&](size_t i) { return keep(i) ? size_t{1} : size_t{0}; }, offsets,
      grain);
  std::vector<Index> out(total);
  parallel_for(
      0, n,
      [&](size_t i) {
        // lint: private-write(offsets is an exclusive scan, injective)
        if (keep(i)) out[offsets[i]] = static_cast<Index>(i);
      },
      grain);
  return out;
}

// filter: keep elements satisfying a predicate on the value.
template <typename T, typename Pred>
std::vector<T> filter(const std::vector<T>& in, Pred&& pred,
                      size_t grain = kDefaultGrain) {
  return pack(in, [&](size_t i) { return pred(in[i]); }, grain);
}

// Count elements of [0, n) satisfying pred(i).
template <typename Pred>
size_t count_if_index(size_t n, Pred&& pred, size_t grain = kDefaultGrain) {
  return reduce_sum<size_t>(
      n, [&](size_t i) { return pred(i) ? size_t{1} : size_t{0}; }, grain);
}

}  // namespace pcc::parallel
