// Atomic primitives used by the connectivity algorithms: compare-and-swap,
// writeMin / writeMax (priority update), and fetch-and-add.
//
// These follow the semantics in Section 2 of the paper: writeMin(loc, val)
// atomically replaces *loc with min(*loc, val) under a comparator and
// reports whether it changed the location. The loop-over-CAS implementation
// is the one described in [Shun et al., "Reducing contention through
// priority updates", SPAA'13].
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <type_traits>

namespace pcc::parallel {

// Atomically: if (*loc == expected) { *loc = desired; return true; }
// Plain-memory CAS — the algorithms operate on big flat arrays and taking
// std::atomic_ref keeps the arrays themselves ordinary (cheap to allocate,
// scan, sort).
template <typename T>
inline bool cas(T* loc, T expected, T desired) {
  static_assert(std::atomic_ref<T>::is_always_lock_free);
  return std::atomic_ref<T>(*loc).compare_exchange_strong(
      expected, desired, std::memory_order_acq_rel, std::memory_order_acquire);
}

// Atomic load / store with acquire/release ordering. atomic_ref<const T>
// only arrives in C++26, so the load const_casts internally (it never
// writes through the pointer).
template <typename T>
inline T atomic_load(const T* loc) {
  return std::atomic_ref<T>(*const_cast<T*>(loc))
      .load(std::memory_order_acquire);
}

template <typename T>
inline void atomic_store(T* loc, T value) {
  std::atomic_ref<T>(*loc).store(value, std::memory_order_release);
}

// Relaxed atomic store/load for intentionally racy flag writes where every
// racing writer stores the same value (e.g. contract()'s has_edge marks).
// Semantically equivalent to a plain store, but tells the compiler and the
// thread sanitizer that the race is by design.
template <typename T>
inline void write_once(T* loc, T value) {
  std::atomic_ref<T>(*loc).store(value, std::memory_order_relaxed);
}

template <typename T>
inline T read_once(const T* loc) {
  return std::atomic_ref<T>(*const_cast<T*>(loc))
      .load(std::memory_order_relaxed);
}

// writeMin: atomically update *loc to min(*loc, val) under `less`.
// Returns true iff this call changed the stored value.
template <typename T, typename Less = std::less<T>>
inline bool write_min(T* loc, T val, Less less = Less{}) {
  T observed = atomic_load(loc);
  while (less(val, observed)) {
    if (cas(loc, observed, val)) return true;
    observed = atomic_load(loc);
  }
  return false;
}

// writeMax: dual of write_min.
template <typename T, typename Less = std::less<T>>
inline bool write_max(T* loc, T val, Less less = Less{}) {
  T observed = atomic_load(loc);
  while (less(observed, val)) {
    if (cas(loc, observed, val)) return true;
    observed = atomic_load(loc);
  }
  return false;
}

// Atomic fetch-and-add; returns the previous value.
template <typename T>
inline T fetch_add(T* loc, T delta) {
  return std::atomic_ref<T>(*loc).fetch_add(delta, std::memory_order_acq_rel);
}

// Atomic fetch-or; returns the previous value. Used to set bits in shared
// bitmap words (e.g. a bit-packed frontier) where several writers may hit
// the same word with different masks.
template <typename T>
inline T fetch_or(T* loc, T bits) {
  return std::atomic_ref<T>(*loc).fetch_or(bits, std::memory_order_acq_rel);
}

// --- Packed (key, value) pairs for the pair-writeMin of Decomp-Min. ---
//
// Decomp-Min (Algorithm 2) keeps per-vertex pairs C[v] = (c1, c2) where c1
// is the fractional-shift used to resolve which BFS wins an unvisited
// neighbour and c2 is the component id. Keeping the pair in ONE 64-bit word
// (c1 in the high bits) makes the paper's pair writeMin a single-word
// atomic min and — as the paper notes for its pair array — avoids a second
// cache miss per visit.
using packed_pair = uint64_t;

inline constexpr packed_pair pack_pair(uint32_t hi, uint32_t lo) {
  return (static_cast<packed_pair>(hi) << 32) | lo;
}
inline constexpr uint32_t pair_first(packed_pair p) {
  return static_cast<uint32_t>(p >> 32);
}
inline constexpr uint32_t pair_second(packed_pair p) {
  return static_cast<uint32_t>(p);
}

}  // namespace pcc::parallel
