// Phase-concurrent open-addressing hash set for 64-bit keys.
//
// The paper removes duplicate edges between contracted components "using a
// parallel hash table [Shun-Blelloch, Phase-concurrent hash tables for
// determinism, SPAA'14]". Phase-concurrency means all threads perform the
// same operation type between synchronization points; during an insert
// phase, linear probing with CAS is linearizable and the final table
// contents are deterministic (a set is order-independent).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "parallel/atomics.hpp"
#include "parallel/defs.hpp"
#include "parallel/random.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::parallel {

class hash_set64 {
 public:
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  // Capacity for up to `max_elements` inserts at load factor <= 1/2.
  explicit hash_set64(size_t max_elements) {
    size_t cap = 16;
    while (cap < 2 * max_elements + 1) cap <<= 1;
    mask_ = cap - 1;
    slots_.assign(cap, kEmpty);
  }

  // Insert `key` (must not equal kEmpty). Returns true iff the key was not
  // already present. Safe to call concurrently with other inserts.
  bool insert(uint64_t key) {
    size_t i = static_cast<size_t>(hash64(key)) & mask_;
    while (true) {
      uint64_t cur = atomic_load(&slots_[i]);
      if (cur == key) return false;
      if (cur == kEmpty) {
        if (cas(&slots_[i], kEmpty, key)) return true;
        // Lost the race; re-read this slot (the winner may hold our key).
        continue;
      }
      i = (i + 1) & mask_;
    }
  }

  // Membership test. Only valid when no insert phase is running.
  bool contains(uint64_t key) const {
    size_t i = static_cast<size_t>(hash64(key)) & mask_;
    while (true) {
      const uint64_t cur = slots_[i];
      if (cur == key) return true;
      if (cur == kEmpty) return false;
      i = (i + 1) & mask_;
    }
  }

  // Number of occupied slots (parallel count). Phase-separated from inserts.
  size_t size() const {
    return count_if_index(slots_.size(),
                          [&](size_t i) { return slots_[i] != kEmpty; });
  }

  // Extract all stored keys (arbitrary but deterministic order: slot order).
  std::vector<uint64_t> elements() const {
    return pack(slots_, [&](size_t i) { return slots_[i] != kEmpty; });
  }

  size_t capacity() const { return slots_.size(); }

 private:
  std::vector<uint64_t> slots_;
  size_t mask_ = 0;
};

// Non-owning twin of hash_set64 over caller-provided (workspace) storage —
// same capacity rule, same probing, so it deduplicates identically. The
// caller takes `slots_needed(max_elements)` words from its arena and hands
// them over; the view fills them with kEmpty in parallel.
class hash_set64_view {
 public:
  static constexpr uint64_t kEmpty = hash_set64::kEmpty;

  // Slot count for up to `max_elements` inserts at load factor <= 1/2.
  static size_t slots_needed(size_t max_elements) {
    size_t cap = 16;
    while (cap < 2 * max_elements + 1) cap <<= 1;
    return cap;
  }

  // `slots` must be a power-of-two span (as returned by slots_needed).
  explicit hash_set64_view(std::span<uint64_t> slots) : slots_(slots) {
    mask_ = slots.size() - 1;
    parallel_for(0, slots_.size(), [&](size_t i) { slots_[i] = kEmpty; });
  }

  // Phase-concurrent insert; true iff the key was newly added.
  bool insert(uint64_t key) {
    size_t i = static_cast<size_t>(hash64(key)) & mask_;
    while (true) {
      uint64_t cur = atomic_load(&slots_[i]);
      if (cur == key) return false;
      if (cur == kEmpty) {
        if (cas(&slots_[i], kEmpty, key)) return true;
        continue;  // lost the race; the winner may hold our key
      }
      i = (i + 1) & mask_;
    }
  }

 private:
  std::span<uint64_t> slots_;
  size_t mask_ = 0;
};

}  // namespace pcc::parallel
