// Phase-concurrent open-addressing hash map (64-bit keys -> 64-bit
// values), first-writer-wins.
//
// Companion to hash_set64: the spanning-forest pipeline deduplicates
// inter-cluster edges while keeping one *witness* (an original graph edge)
// per surviving contracted edge, which needs a map rather than a set.
// Inserts are safe concurrently with inserts; reads/extraction require a
// phase boundary (the parallel-for join) after the last insert.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "parallel/atomics.hpp"
#include "parallel/defs.hpp"
#include "parallel/random.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::parallel {

class hash_map64 {
 public:
  static constexpr uint64_t kEmptyKey = ~uint64_t{0};

  // `initial_value` seeds every value slot; insert() overwrites it after
  // claiming a key, but insert_min() folds into it, so min-reductions pass
  // the identity (e.g. ~0) here.
  explicit hash_map64(size_t max_elements, uint64_t initial_value = 0) {
    size_t cap = 16;
    while (cap < 2 * max_elements + 1) cap <<= 1;
    mask_ = cap - 1;
    keys_.assign(cap, kEmptyKey);
    values_.assign(cap, initial_value);
  }

  // Insert (key, value); if the key is already present the stored value is
  // kept (first writer wins). Returns true iff this call inserted the key.
  bool insert(uint64_t key, uint64_t value) {
    size_t i = static_cast<size_t>(hash64(key)) & mask_;
    while (true) {
      const uint64_t cur = atomic_load(&keys_[i]);
      if (cur == key) return false;
      if (cur == kEmptyKey) {
        // Claim the slot first, then store the value. Concurrent inserters
        // never read values, so the value only needs to be visible after
        // the insert phase's join barrier — which the post-CAS store is.
        if (cas(&keys_[i], kEmptyKey, key)) {
          values_[i] = value;
          return true;
        }
        continue;  // lost the claim: re-inspect this slot (winner may hold
                   // our key, or a different one and we probe onward)
      }
      i = (i + 1) & mask_;
    }
  }

  // Insert (key, value) keeping the MINIMUM value ever offered for the
  // key — an atomic write_min on the slot, so unlike insert() the stored
  // value is deterministic regardless of arrival order. Requires the map
  // to have been constructed with an `initial_value` no smaller than any
  // offered value. Safe concurrently with itself and with insert();
  // returns true iff this call claimed a fresh slot. The graph loaders
  // use this to compute each raw vertex id's first occurrence position
  // for order-stable id compaction.
  bool insert_min(uint64_t key, uint64_t value) {
    size_t i = static_cast<size_t>(hash64(key)) & mask_;
    while (true) {
      const uint64_t cur = atomic_load(&keys_[i]);
      if (cur == key) {
        write_min(&values_[i], value);
        return false;
      }
      if (cur == kEmptyKey) {
        // Publish the key first; the pre-seeded value slot makes the
        // claim/fold order race-free (a concurrent same-key writer folds
        // into initial_value, never into garbage).
        if (cas(&keys_[i], kEmptyKey, key)) {
          write_min(&values_[i], value);
          return true;
        }
        continue;  // lost the claim: re-inspect this slot
      }
      i = (i + 1) & mask_;
    }
  }

  // Lookup after the insert phase; returns false if absent.
  bool find(uint64_t key, uint64_t* value) const {
    size_t i = static_cast<size_t>(hash64(key)) & mask_;
    while (true) {
      const uint64_t cur = keys_[i];
      if (cur == key) {
        if (value != nullptr) *value = values_[i];
        return true;
      }
      if (cur == kEmptyKey) return false;
      i = (i + 1) & mask_;
    }
  }

  size_t size() const {
    return count_if_index(keys_.size(),
                          [&](size_t i) { return keys_[i] != kEmptyKey; });
  }

  // All (key, value) pairs, in slot order (deterministic for a fixed key
  // set; values are first-writer-wins so may vary run to run under real
  // concurrency).
  std::vector<std::pair<uint64_t, uint64_t>> elements() const {
    const auto idx =
        pack_index(keys_.size(), [&](size_t i) { return keys_[i] != kEmptyKey; });
    std::vector<std::pair<uint64_t, uint64_t>> out(idx.size());
    parallel_for(0, idx.size(), [&](size_t j) {
      out[j] = {keys_[idx[j]], values_[idx[j]]};
    });
    return out;
  }

  size_t capacity() const { return keys_.size(); }

 private:
  std::vector<uint64_t> keys_;
  std::vector<uint64_t> values_;
  size_t mask_ = 0;
};

// Non-owning twin of hash_map64 over caller-provided storage, for
// allocation-free hot paths (companion to hash_set64_view): the caller
// takes `slots_needed(max_elements)` words from its arena TWICE (keys,
// values) and hands both over. Only the subset of the hash_map64 API the
// witness-preserving contraction dedup needs: insert_min during the
// phase-concurrent pass, find after the join barrier. insert_min's
// write_min makes the stored value deterministic regardless of arrival
// order — the property the spanning-forest witness selection relies on.
class hash_map64_view {
 public:
  static constexpr uint64_t kEmptyKey = hash_map64::kEmptyKey;

  // Slot count for up to `max_elements` inserts at load factor <= 1/2.
  static size_t slots_needed(size_t max_elements) {
    size_t cap = 16;
    while (cap < 2 * max_elements + 1) cap <<= 1;
    return cap;
  }

  // `keys` and `values` must be power-of-two spans of equal size (as
  // returned by slots_needed). Every key slot is reset to kEmptyKey and
  // every value slot to `initial_value` (the fold identity for
  // insert_min — pass a value no smaller than any that will be offered).
  hash_map64_view(std::span<uint64_t> keys, std::span<uint64_t> values,
                  uint64_t initial_value = ~uint64_t{0})
      : keys_(keys), values_(values) {
    assert(keys.size() == values.size());
    mask_ = keys.size() - 1;
    parallel_for(0, keys_.size(), [&](size_t i) {
      keys_[i] = kEmptyKey;  // lint: private-write(owner index i)
      values_[i] = initial_value;  // lint: private-write(owner index i)
    });
  }

  // Insert (key, value) keeping the MINIMUM value ever offered for the
  // key. Phase-concurrent with itself; returns true iff this call claimed
  // a fresh slot (first-writer-wins, so the return value is NOT
  // deterministic — only the stored minimum is).
  bool insert_min(uint64_t key, uint64_t value) {
    size_t i = static_cast<size_t>(hash64(key)) & mask_;
    while (true) {
      const uint64_t cur = atomic_load(&keys_[i]);
      if (cur == key) {
        write_min(&values_[i], value);
        return false;
      }
      if (cur == kEmptyKey) {
        // Publish the key first; the pre-seeded value slot makes the
        // claim/fold order race-free (a concurrent same-key writer folds
        // into initial_value, never into garbage).
        if (cas(&keys_[i], kEmptyKey, key)) {
          write_min(&values_[i], value);
          return true;
        }
        continue;  // lost the claim: re-inspect this slot
      }
      i = (i + 1) & mask_;
    }
  }

  // Lookup after the insert phase; returns false if absent.
  bool find(uint64_t key, uint64_t* value) const {
    size_t i = static_cast<size_t>(hash64(key)) & mask_;
    while (true) {
      const uint64_t cur = keys_[i];
      if (cur == key) {
        if (value != nullptr) *value = values_[i];
        return true;
      }
      if (cur == kEmptyKey) return false;
      i = (i + 1) & mask_;
    }
  }

 private:
  std::span<uint64_t> keys_;
  std::span<uint64_t> values_;
  size_t mask_ = 0;
};

}  // namespace pcc::parallel
