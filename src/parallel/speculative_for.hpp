// Deterministic reservations (PBBS-style speculative_for).
//
// Substrate for the parallel-SF-PBBS baseline: the PBBS spanning forest
// processes edges speculatively in rounds — each iterate *reserves* the
// shared state it needs with a priority writeMin, then iterates whose
// reservations survived *commit*; failed iterates retry in later rounds.
// The result is deterministic: equal to processing iterates in index order.
//
// Reference: Blelloch, Fineman, Gibbons, Shun, "Internally deterministic
// parallel algorithms can be fast", PPoPP'12 (the PBBS framework the paper
// benchmarks against).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "parallel/atomics.hpp"
#include "parallel/defs.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::parallel {

// A reservation cell: holds the smallest iterate index that claimed it.
class reservation {
 public:
  static constexpr uint64_t kFree = ~uint64_t{0};

  reservation() : holder_(kFree) {}

  // Claim with priority = lower index wins.
  void reserve(uint64_t iterate) { write_min(&holder_, iterate); }

  // True iff `iterate` holds the reservation; resets the cell for the next
  // round when it does. Atomic accesses throughout: during a commit phase
  // other iterates may inspect the cell while its holder releases it.
  bool check_and_release(uint64_t iterate) {
    if (atomic_load(&holder_) == iterate) {
      atomic_store(&holder_, kFree);
      return true;
    }
    return false;
  }

  bool reserved_by(uint64_t iterate) const {
    return atomic_load(&holder_) == iterate;
  }
  bool free() const { return atomic_load(&holder_) == kFree; }
  void reset() { atomic_store(&holder_, kFree); }

 private:
  uint64_t holder_;
};

// Run iterates [0, num_iterates) with deterministic reservations.
//
// `Step` must provide:
//   bool reserve(uint64_t i)  — try to reserve state; false = iterate is
//                               already done and needs no commit.
//   bool commit(uint64_t i)   — apply if reservations held; false = retry.
//
// `granularity` controls how many iterates are attempted per round
// (PBBS default style: a multiple of the worker count, growing when rounds
// mostly succeed). Returns the number of rounds executed.
template <typename Step>
size_t speculative_for(Step& step, size_t num_iterates,
                       size_t granularity = 0) {
  if (granularity == 0) {
    // num_workers() reports the active backend's capped value (the pool's
    // active-thread cap, not its spawned size), so the batch size tracks
    // scoped_workers consistently with emit.hpp's per-worker sizing.
    granularity = std::max<size_t>(64, 16 * static_cast<size_t>(num_workers()));
  }

  // Iterates still live, in priority (index) order.
  std::vector<uint64_t> live;
  size_t next_fresh = 0;  // first never-attempted iterate
  size_t rounds = 0;

  while (next_fresh < num_iterates || !live.empty()) {
    ++rounds;
    // Top up the working set to `granularity` iterates: retries first
    // (they have the highest priority), then fresh ones.
    const size_t fresh =
        std::min(granularity > live.size() ? granularity - live.size() : 0,
                 num_iterates - next_fresh);
    const size_t batch = live.size() + fresh;
    std::vector<uint64_t> attempt(batch);
    parallel_for(0, live.size(), [&](size_t i) { attempt[i] = live[i]; });
    parallel_for(0, fresh, [&](size_t i) {
      // lint: private-write(live.size() + i is injective in i)
      attempt[live.size() + i] = next_fresh + i;
    });
    next_fresh += fresh;

    // Reserve phase.
    std::vector<uint8_t> needs_commit(batch);
    parallel_for(0, batch, [&](size_t i) {
      needs_commit[i] = step.reserve(attempt[i]) ? 1 : 0;
    });
    // Commit phase (phase-separated from reserves).
    std::vector<uint8_t> failed(batch);
    parallel_for(0, batch, [&](size_t i) {
      failed[i] = (needs_commit[i] != 0 && !step.commit(attempt[i])) ? 1 : 0;
    });
    live = pack(attempt, [&](size_t i) { return failed[i] != 0; });

    // Adaptive granularity: grow when few retries, as PBBS does.
    if (live.size() < granularity / 4) granularity *= 2;
  }
  return rounds;
}

}  // namespace pcc::parallel
