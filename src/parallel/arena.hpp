// Uninitialized-memory buffer pool backing the connectivity engine.
//
// The paper's engineering section (Section 5) observes that allocation and
// first-touch page faults are a first-order cost in practical parallel
// connectivity: every std::vector the recursion builds is zero-initialized
// sequentially and faulted in on one NUMA node. This header provides the
// two pieces the engine uses to remove that cost:
//
//   uninitialized_buffer<T> — a raw, RAII-owned, cache-line-aligned
//     allocation whose pages are faulted in by a parallel first touch but
//     whose contents are NOT value-initialized.
//
//   workspace — a bump allocator over uninitialized_buffer chunks with
//     high-water-mark reuse. take<T>(n) carves spans out of the current
//     chunk in O(1); when a chunk runs out a new one is chained on (so
//     previously handed-out spans stay valid), and reset() coalesces the
//     chain into a single chunk sized to the observed high-water mark. A
//     workspace that has warmed up over one full engine run therefore
//     serves every later run without touching the system allocator.
//
// A workspace is NOT thread-safe: take()/reset() must be called from the
// orchestrating thread only (the parallel loops then read/write the spans).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "parallel/defs.hpp"
#include "parallel/scheduler.hpp"

namespace pcc::parallel {

// Fault in [p, p + bytes) in parallel by touching one byte per page, so
// page placement follows the threads that will use the memory (first-touch
// NUMA policy) instead of the single thread that allocated it.
inline void parallel_first_touch(std::byte* p, size_t bytes) {
  constexpr size_t kPage = 4096;
  if (bytes == 0) return;
  const size_t pages = (bytes + kPage - 1) / kPage;
  parallel_for(
      0, pages,
      [&](size_t i) {
        // lint: private-write(one byte per page, pages are disjoint)
        p[i * kPage] = std::byte{0};
      },
      /*grain=*/16);
}

// A cache-line-aligned heap allocation of `count` Ts with NO value
// initialization. Move-only RAII; restricted to trivial types (everything
// the engine stores is a POD id, offset, flag, or packed pair).
template <typename T>
class uninitialized_buffer {
  static_assert(std::is_trivially_copyable_v<T> &&
                std::is_trivially_destructible_v<T>);

 public:
  uninitialized_buffer() = default;

  explicit uninitialized_buffer(size_t count, bool first_touch = true)
      : size_(count) {
    if (count == 0) return;
    data_ = static_cast<T*>(::operator new(
        count * sizeof(T), std::align_val_t{kCacheLineBytes}));
    if (first_touch) {
      parallel_first_touch(reinterpret_cast<std::byte*>(data_),
                           count * sizeof(T));
    }
  }

  ~uninitialized_buffer() { release(); }

  uninitialized_buffer(uninitialized_buffer&& o) noexcept
      : data_(o.data_), size_(o.size_) {
    o.data_ = nullptr;
    o.size_ = 0;
  }
  uninitialized_buffer& operator=(uninitialized_buffer&& o) noexcept {
    if (this != &o) {
      release();
      data_ = o.data_;
      size_ = o.size_;
      o.data_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }
  uninitialized_buffer(const uninitialized_buffer&) = delete;
  uninitialized_buffer& operator=(const uninitialized_buffer&) = delete;

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::span<T> span() { return {data_, size_}; }

 private:
  void release() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kCacheLineBytes});
    }
  }

  T* data_ = nullptr;
  size_t size_ = 0;
};

// Bump allocator with chunk chaining and high-water-mark reuse.
class workspace {
 public:
  workspace() = default;
  explicit workspace(size_t initial_bytes) { reserve(initial_bytes); }

  workspace(workspace&&) = default;
  workspace& operator=(workspace&&) = default;
  workspace(const workspace&) = delete;
  workspace& operator=(const workspace&) = delete;

  // Ensure at least `bytes` of contiguous capacity exist up front. Only
  // meaningful on an empty (or freshly reset) workspace.
  void reserve(size_t bytes) {
    if (bytes <= capacity()) return;
    assert(used_total() == 0 && "reserve() requires an empty workspace");
    chunks_.clear();
    chunks_.emplace_back(bytes);
    active_ = 0;
  }

  // Carve an uninitialized span of `count` Ts out of the pool. O(1) unless
  // a new chunk must be chained on. Spans stay valid until reset()/rewind
  // past them — chaining never moves existing chunks.
  template <typename T>
  std::span<T> take(size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);
    if (count == 0) return {};
    const size_t bytes = count * sizeof(T);
    std::byte* p = bump(bytes);
    return {reinterpret_cast<T*>(p), count};
  }

  // take() + parallel zero fill.
  template <typename T>
  std::span<T> take_zeroed(size_t count) {
    std::span<T> s = take<T>(count);
    constexpr size_t kBlock = size_t{1} << 16;
    const size_t bytes = count * sizeof(T);
    const size_t nb = (bytes + kBlock - 1) / kBlock;
    std::byte* base = reinterpret_cast<std::byte*>(s.data());
    parallel_for(
        0, nb,
        [&](size_t b) {
          const size_t lo = b * kBlock;
          // lint: private-write(block b owns bytes [b*kBlock, b*kBlock+len))
          std::memset(base + lo, 0, std::min(kBlock, bytes - lo));
        },
        1);
    return s;
  }

  // take() + parallel fill with `value`.
  template <typename T>
  std::span<T> take_filled(size_t count, T value) {
    std::span<T> s = take<T>(count);
    parallel_for(0, count, [&](size_t i) { s[i] = value; });
    return s;
  }

  // Rewind everything. If the workspace overflowed into extra chunks since
  // the last reset, coalesce them into one chunk sized to the high-water
  // mark, so the next fill pattern of the same size is chain-free. Invalidates
  // all outstanding spans.
  void reset() {
    high_water_ = std::max(high_water_, used_total());
    if (chunks_.size() > 1) {
      chunks_.clear();
      chunks_.emplace_back(high_water_);
    } else if (!chunks_.empty()) {
      chunks_.front().used = 0;
    }
    active_ = 0;
  }

  // Bytes currently handed out (including alignment padding).
  size_t used_total() const {
    size_t u = 0;
    for (const chunk& c : chunks_) u += c.used;
    return u;
  }

  // Total bytes owned across all chunks.
  size_t capacity() const {
    size_t c = 0;
    for (const chunk& ch : chunks_) c += ch.buf.size();
    return c;
  }

  size_t high_water() const { return std::max(high_water_, used_total()); }

  // True once the workspace is a single chunk — i.e. take() can no longer
  // hit the system allocator for any fill pattern within capacity().
  bool consolidated() const { return chunks_.size() <= 1; }

  // Stack-discipline rewind point.
  struct mark {
    size_t chunk_index = 0;
    size_t offset = 0;
  };

  mark save() const {
    return {active_, chunks_.empty() ? 0 : chunks_[active_].used};
  }

  // Rewind to a previously saved mark, invalidating spans taken since.
  void rewind(mark m) {
    if (chunks_.empty()) return;
    high_water_ = std::max(high_water_, used_total());
    for (size_t i = m.chunk_index + 1; i < chunks_.size(); ++i) {
      chunks_[i].used = 0;
    }
    chunks_[m.chunk_index].used = m.offset;
    active_ = m.chunk_index;
  }

  // RAII rewind-on-exit scope for transient takes.
  class scope {
   public:
    explicit scope(workspace& ws) : ws_(ws), mark_(ws.save()) {}
    ~scope() { ws_.rewind(mark_); }
    scope(const scope&) = delete;
    scope& operator=(const scope&) = delete;

   private:
    workspace& ws_;
    mark mark_;
  };

 private:
  struct chunk {
    explicit chunk(size_t bytes)
        : buf(std::max<size_t>(bytes, kCacheLineBytes)) {}
    uninitialized_buffer<std::byte> buf;
    size_t used = 0;
  };

  std::byte* bump(size_t bytes) {
    const size_t aligned = align_up(bytes);
    while (true) {
      if (!chunks_.empty()) {
        chunk& c = chunks_[active_];
        if (c.used + aligned <= c.buf.size()) {
          std::byte* p = c.buf.data() + c.used;
          c.used += aligned;
          return p;
        }
        if (active_ + 1 < chunks_.size()) {
          // A later chunk survives from before a rewind: reuse it.
          ++active_;
          chunks_[active_].used = 0;
          continue;
        }
      }
      // Chain on a new chunk, geometrically sized so long fill sequences
      // settle after O(log) allocations.
      const size_t grow = std::max(aligned, capacity());
      chunks_.emplace_back(std::max<size_t>(grow, size_t{1} << 16));
      active_ = chunks_.size() - 1;
    }
  }

  static size_t align_up(size_t bytes) {
    return (bytes + kCacheLineBytes - 1) & ~(kCacheLineBytes - 1);
  }

  std::vector<chunk> chunks_;
  size_t active_ = 0;
  size_t high_water_ = 0;
};

}  // namespace pcc::parallel
