// Parallel histogram: count occurrences of integer keys in [0, buckets).
//
// Work-efficient per-block counting with a tree merge over blocks — the
// counting substrate behind degree computation, component-size statistics
// and the radix sort passes. For bucket counts much larger than n, falls
// back to atomic scatter increments (the dense count array would dominate).
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/atomics.hpp"
#include "parallel/defs.hpp"
#include "parallel/scheduler.hpp"

namespace pcc::parallel {

// counts[k] = |{ i : key(i) == k }| for i in [0, n). Keys must be < buckets.
template <typename Key>
std::vector<size_t> histogram(size_t n, size_t buckets, Key&& key) {
  std::vector<size_t> counts(buckets, 0);
  if (n == 0 || buckets == 0) return counts;

  const size_t block = 1 << 14;
  const size_t nb = 1 + (n - 1) / block;
  // Dense per-block counting only pays off while the per-block count
  // arrays stay small relative to the work.
  if (buckets <= 4 * block && nb > 1) {
    std::vector<size_t> per_block(nb * buckets, 0);
    parallel_for(
        0, nb,
        [&](size_t b) {
          size_t* c = per_block.data() + b * buckets;
          const size_t lo = b * block;
          const size_t hi = std::min(n, lo + block);
          // lint: private-write(block b owns counters [b*buckets, (b+1)*buckets))
          for (size_t i = lo; i < hi; ++i) ++c[key(i)];
        },
        1);
    parallel_for(0, buckets, [&](size_t k) {
      size_t total = 0;
      for (size_t b = 0; b < nb; ++b) total += per_block[b * buckets + k];
      counts[k] = total;
    });
    return counts;
  }

  // Sparse/huge-bucket case: atomic increments.
  parallel_for(0, n, [&](size_t i) { fetch_add<size_t>(&counts[key(i)], 1); });
  return counts;
}

}  // namespace pcc::parallel
