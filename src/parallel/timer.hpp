// Wall-clock timers and a named phase accumulator used by the benchmark
// harnesses to produce the per-phase breakdowns of Figures 5-7.
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace pcc::parallel {

// Simple wall-clock stopwatch.
class timer {
 public:
  timer() { start(); }
  void start() { start_ = clock::now(); }
  // Seconds elapsed since the last start().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  // Returns elapsed seconds and restarts the stopwatch.
  double lap() {
    const double e = elapsed();
    start();
    return e;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Accumulates time into named phases. The decomposition implementations
// report into one of these so benches can print the same breakdown bars the
// paper plots (init / bfsPre / bfsPhase1 / bfsPhase2 / bfsMain / bfsSparse /
// bfsDense / filterEdges / contractGraph).
class phase_timer {
 public:
  void add(const std::string& phase, double seconds) { phases_[phase] += seconds; }

  double get(const std::string& phase) const {
    auto it = phases_.find(phase);
    return it == phases_.end() ? 0.0 : it->second;
  }

  const std::map<std::string, double>& phases() const { return phases_; }

  double total() const {
    double t = 0;
    for (const auto& [name, s] : phases_) t += s;
    return t;
  }

  void clear() { phases_.clear(); }

  // Merge another accumulator into this one (used when CC sums the phase
  // times of all its recursive decomposition calls).
  void merge(const phase_timer& other) {
    for (const auto& [name, s] : other.phases_) phases_[name] += s;
  }

 private:
  std::map<std::string, double> phases_;
};

// RAII helper: accumulates the scope's duration into `pt[phase]`.
// A null phase_timer disables measurement at zero cost in call sites.
class scoped_phase {
 public:
  scoped_phase(phase_timer* pt, std::string phase)
      : pt_(pt), phase_(std::move(phase)) {}
  ~scoped_phase() {
    if (pt_ != nullptr) pt_->add(phase_, t_.elapsed());
  }
  scoped_phase(const scoped_phase&) = delete;
  scoped_phase& operator=(const scoped_phase&) = delete;

 private:
  phase_timer* pt_;
  std::string phase_;
  timer t_;
};

}  // namespace pcc::parallel
