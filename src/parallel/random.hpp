// Deterministic splittable randomness and a parallel random permutation.
//
// The paper simulates exponential shift values by generating a random
// permutation of the vertices in parallel and adding exponentially growing
// chunks of it as BFS centers (Section 4). Vertices also draw random
// integers from a large range to simulate the fractional parts of shifts.
// Both uses need cheap, seedable, location-independent random numbers, so
// we use a counter-based construction: hash64(seed, i).
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "parallel/defs.hpp"
#include "parallel/integer_sort.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::parallel {

// Strong 64-bit mix (splitmix64 finalizer). Counter-based: uncorrelated
// values for distinct inputs, identical values for identical inputs, which
// makes every parallel algorithm in the library deterministic given a seed.
inline uint64_t hash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// A splittable random source: rng(seed)[i] is a pure function of (seed, i).
class rng {
 public:
  explicit rng(uint64_t seed = 0) : seed_(seed) {}

  uint64_t operator[](uint64_t i) const { return hash64(seed_ ^ hash64(i)); }

  // Integer in [0, bound). bound must be > 0. Slight modulo bias is
  // irrelevant at the 64-bit range sizes used here.
  uint64_t bounded(uint64_t i, uint64_t bound) const {
    return (*this)[i] % bound;
  }

  // Uniform double in (0, 1] (never exactly 0, so log() below is safe).
  double uniform01(uint64_t i) const {
    return (static_cast<double>((*this)[i] >> 11) + 1.0) * 0x1.0p-53;
  }

  // Exponential with rate lambda (mean 1/lambda) via inverse transform.
  // Used by the exact-shift mode of the decomposition (ablation of the
  // paper's permutation-chunk simulation).
  double exponential(uint64_t i, double lambda) const {
    return -std::log(uniform01(i)) / lambda;
  }

  // Derive an independent stream.
  rng split(uint64_t stream) const { return rng(hash64(seed_ ^ (stream + 0x5851f42d4c957f2dULL))); }

 private:
  uint64_t seed_;
};

// Parallel random permutation of [0, n).
//
// Implementation: attach the random key hash64(seed, i) to each index and
// integer-sort by key. Radix sort is linear work per pass, giving a
// work-efficient, deterministic parallel permutation. Ties in the 64-bit
// keys are broken by the sort's stability (by index), so the result is a
// valid permutation regardless.
std::vector<vertex_id> random_permutation(size_t n, uint64_t seed);

// Workspace-backed variant: writes the permutation into `out` (size n) and
// takes the (key, index) scratch from `ws`. Produces exactly the same
// permutation as random_permutation (both sorts are stable over the same
// keys).
inline void random_permutation_into(size_t n, uint64_t seed,
                                    std::span<vertex_id> out, workspace& ws) {
  // std::pair is not trivially copyable, which workspace::take requires;
  // use an equivalent aggregate.
  struct keyed_index {
    uint64_t key;
    vertex_id idx;
  };
  rng gen(seed);
  workspace::scope s(ws);
  std::span<keyed_index> pairs = ws.take<keyed_index>(n);
  parallel_for(0, n, [&](size_t i) {
    pairs[i] = {gen[i], static_cast<vertex_id>(i)};
  });
  integer_sort_span(pairs, /*key_bits=*/40,
                    [](const keyed_index& p) { return p.key >> 24; }, ws);
  parallel_for(0, n, [&](size_t i) { out[i] = pairs[i].idx; });
}

inline std::vector<vertex_id> random_permutation(size_t n, uint64_t seed) {
  rng gen(seed);
  // Sort (key, index) pairs by key. 64-bit keys: sort the low 40 bits,
  // which is ample to make collisions rare at any n we handle, and an
  // order-of-magnitude cheaper than all 8 digit passes.
  std::vector<std::pair<uint64_t, vertex_id>> pairs(n);
  parallel_for(0, n, [&](size_t i) {
    pairs[i] = {gen[i], static_cast<vertex_id>(i)};
  });
  integer_sort_pairs(pairs, /*key_bits=*/40,
                     [](const std::pair<uint64_t, vertex_id>& p) { return p.first >> 24; });
  std::vector<vertex_id> perm(n);
  parallel_for(0, n, [&](size_t i) { perm[i] = pairs[i].second; });
  return perm;
}

}  // namespace pcc::parallel
