// Contention-free emission and edge-balanced frontier traversal.
//
// Every hot loop of the decompose-contract pipeline produces a compacted
// output stream (the next BFS frontier, the deduplicated edge list, a
// per-vertex compacted adjacency prefix). The naive way to build such a
// stream in parallel is one shared cursor bumped with fetch_add — which
// serializes all writers on a single cache line and makes the output order
// scheduling-dependent. This header replaces that pattern with the
// two-pass, block-local discipline of Ligra [Shun & Blelloch, PPoPP'13]:
//
//   emit_pack        — run a body once per index into block-local staging,
//                      exclusive-scan the block counts, copy into place.
//                      For bodies with side effects (CAS claims, hash-set
//                      inserts) that must not run twice.
//   count_then_emit  — pure two-pass variant: the body runs twice (count,
//                      then write at the scanned offset) and needs no
//                      staging memory. For side-effect-free bodies.
//   frontier_edge_for — edge-balanced frontier iteration: exclusive-scan
//                      the frontier degrees, split the flattened *edge*
//                      space into near-equal chunks (binary search over the
//                      scanned offsets), and hand each chunk contiguous
//                      [jlo, jhi) pieces of per-vertex adjacency ranges. A
//                      hub vertex is split across many chunks instead of
//                      serializing the round. Emissions land in flattened
//                      edge order, so the output is deterministic for
//                      deterministic visit bodies — and independent of the
//                      worker count, because positions come from scans, not
//                      from racing cursors.
//
// A visit body that compacts a vertex's adjacency in place returns its
// piece's kept count; pieces covering a whole vertex finalize that vertex
// themselves, while split vertices are recorded as `frontier_piece` runs
// and stitched back together with fix_split_pieces.
//
// All scratch comes from a caller-supplied workspace; nothing here touches
// the system allocator after the workspace has warmed up.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstring>
#include <span>
#include <type_traits>

#include "parallel/arena.hpp"
#include "parallel/defs.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::parallel {

// Writing emitter over a raw buffer: each chunk/block appends into its own
// private staging range, so operator() is a plain store — no atomics.
template <typename T>
class emitter {
 public:
  explicit emitter(T* buf) : buf_(buf) {}
  void operator()(T item) {
    // lint: private-write(each emitter appends into its own staging range)
    buf_[n_++] = item;
  }
  size_t count() const { return n_; }

 private:
  T* buf_;
  size_t n_ = 0;
};

// Counting emitter: pass 1 of count_then_emit only tallies.
template <typename T>
class counting_emitter {
 public:
  void operator()(const T&) { ++n_; }
  size_t count() const { return n_; }

 private:
  size_t n_ = 0;
};

namespace detail {

// Worker-count stability invariant: every emission primitive here sizes
// its per-block / per-chunk staging from num_workers()-derived values at
// entry and stitches the pieces back together at exit. A
// set_num_workers() / scoped_workers change interleaving with an open
// emission region would let the stitch-time worker view disagree with the
// sizing. The pool backend structurally forbids this
// (thread_pool::set_active_threads asserts no region is open); this
// debug-only guard also catches an omp_set_num_threads sneaking in
// through the OpenMP backend or from a visit body. Zero-size and
// zero-cost in NDEBUG builds.
class stable_workers_guard {
 public:
#ifndef NDEBUG
  stable_workers_guard() : entry_(num_workers()) {}
  ~stable_workers_guard() {
    assert(num_workers() == entry_ &&
           "worker count changed inside an open emission region");
  }
  stable_workers_guard(const stable_workers_guard&) = delete;
  stable_workers_guard& operator=(const stable_workers_guard&) = delete;

 private:
  int entry_;
#endif
};

}  // namespace detail

// emit_pack: run body(i, emit) once for every i in [0, n); each call may
// emit up to `max_per_index` items (default 1). Emitted items are packed
// into `out` in index order; returns the total count. The body runs
// EXACTLY once per index, so it may have side effects (CAS claims,
// hash-table inserts). Staging of n * max_per_index items comes from `ws`.
template <typename T, typename Body>
size_t emit_pack(size_t n, std::span<T> out, workspace& ws, Body&& body,
                 size_t max_per_index = 1, size_t grain = kDefaultGrain) {
  if (n == 0) return 0;
  const size_t nb = detail::num_blocks(n, grain);
  if (nb == 1) {
    // Single block: emit straight into the output, no staging or copy.
    emitter<T> em(out.data());
    for (size_t i = 0; i < n; ++i) body(i, em);
    assert(em.count() <= out.size());
    return em.count();
  }
  [[maybe_unused]] const detail::stable_workers_guard wg;
  workspace::scope s(ws);
  const size_t cap = grain * max_per_index;
  std::span<T> stage = ws.take<T>(nb * cap);
  std::span<size_t> counts = ws.take<size_t>(nb);
  parallel_for(
      0, nb,
      [&](size_t b) {
        const size_t lo = b * grain;
        const size_t hi = std::min(n, lo + grain);
        emitter<T> em(stage.data() + b * cap);
        for (size_t i = lo; i < hi; ++i) body(i, em);
        assert(em.count() <= cap);
        counts[b] = em.count();  // lint: private-write(block b owns slot b)
      },
      1);
  size_t total = 0;
  for (size_t b = 0; b < nb; ++b) {
    const size_t c = counts[b];
    counts[b] = total;
    total += c;
  }
  assert(total <= out.size());
  parallel_for(
      0, nb,
      [&](size_t b) {
        const size_t c = (b + 1 < nb ? counts[b + 1] : total) - counts[b];
        // lint: private-write(exclusive-scan dest ranges are disjoint per b)
        std::memcpy(out.data() + counts[b], stage.data() + b * cap,
                    c * sizeof(T));
      },
      1);
  return total;
}

// count_then_emit: pure two-pass emission. body(i, em) runs TWICE — once
// with a counting emitter, once with a writing emitter positioned at the
// scanned block offset — so it must be deterministic and side-effect-free
// (it may read shared state as long as nothing mutates it in between).
// No staging memory: only the per-block count array comes from `ws`.
template <typename T, typename Body>
size_t count_then_emit(size_t n, std::span<T> out, workspace& ws, Body&& body,
                       size_t grain = kDefaultGrain) {
  if (n == 0) return 0;
  const size_t nb = detail::num_blocks(n, grain);
  if (nb == 1) {
    emitter<T> em(out.data());
    for (size_t i = 0; i < n; ++i) body(i, em);
    assert(em.count() <= out.size());
    return em.count();
  }
  [[maybe_unused]] const detail::stable_workers_guard wg;
  workspace::scope s(ws);
  std::span<size_t> counts = ws.take<size_t>(nb);
  parallel_for(
      0, nb,
      [&](size_t b) {
        const size_t lo = b * grain;
        const size_t hi = std::min(n, lo + grain);
        counting_emitter<T> em;
        for (size_t i = lo; i < hi; ++i) body(i, em);
        counts[b] = em.count();  // lint: private-write(block b owns slot b)
      },
      1);
  size_t total = 0;
  for (size_t b = 0; b < nb; ++b) {
    const size_t c = counts[b];
    counts[b] = total;
    total += c;
  }
  assert(total <= out.size());
  parallel_for(
      0, nb,
      [&](size_t b) {
        const size_t lo = b * grain;
        const size_t hi = std::min(n, lo + grain);
        emitter<T> em(out.data() + counts[b]);
        for (size_t i = lo; i < hi; ++i) body(i, em);
      },
      1);
  return total;
}

// One piece of a frontier entry whose adjacency range was split across
// chunks: the visit body saw [jlo, jhi) of entry `fi`'s `deg` slots and
// returned `value` (for compacting bodies: the piece's kept count).
struct frontier_piece {
  uint32_t fi;     // frontier index, NOT the vertex id
  uint32_t jlo;    // first adjacency slot this piece covered
  uint32_t jhi;    // one past the last slot covered
  uint32_t value;  // visit's return value for this piece
};

struct frontier_result {
  size_t emitted = 0;  // total items written to `out`
  // Pieces of entries split across chunks, in (chunk, piece) order —
  // consecutive pieces of one entry are adjacent. Whole-entry pieces are
  // NOT recorded (the visit body finalizes those itself). Backed by the
  // caller's workspace: valid until the caller rewinds past its own mark.
  std::span<const frontier_piece> partials;
};

struct frontier_edge_opts {
  // Target chunk width in edges. 0 = auto: spread the flattened edge space
  // across ~8 chunks per worker, clamped to [2048, 64K]. The OUTPUT is
  // identical for every chunk width (emissions land in flattened edge
  // order regardless), so auto-sizing does not break determinism; at one
  // worker it degenerates to a plain serial loop over whole entries — no
  // degree scan, no staging, no partial pieces — matching the cost of a
  // hand-written sequential traversal.
  size_t edges_per_chunk = 0;
};

namespace detail {

inline size_t resolve_chunk_width(size_t total_edges, size_t requested) {
  if (requested != 0) return requested;
  const size_t workers = static_cast<size_t>(num_workers());
  if (workers <= 1) return std::max<size_t>(total_edges, 1);
  const size_t target = total_edges / (8 * workers);
  return std::min<size_t>(std::max<size_t>(target, 2048), size_t{1} << 16);
}

// Walk the pieces of chunk [lo, hi) of the flattened edge space. `off` is
// the exclusive degree scan with off[fs] = total. Calls
// piece(fi, jlo, jhi, deg) for each non-empty piece in order.
template <typename Piece>
inline void walk_chunk(std::span<const edge_id> off, size_t fs, edge_id lo,
                       edge_id hi, Piece&& piece) {
  // First entry overlapping `lo`: the last fi with off[fi] <= lo.
  size_t fi =
      static_cast<size_t>(
          std::upper_bound(off.begin(), off.begin() + fs + 1, lo) -
          off.begin()) -
      1;
  edge_id pos = lo;
  while (pos < hi && fi < fs) {
    const edge_id vstart = off[fi];
    const edge_id vend = off[fi + 1];
    if (vend <= pos) {  // zero-degree entries (and the seek-in entry's end)
      ++fi;
      continue;
    }
    const uint32_t deg = static_cast<uint32_t>(vend - vstart);
    const uint32_t jlo = static_cast<uint32_t>(pos - vstart);
    const uint32_t jhi = static_cast<uint32_t>(std::min(vend, hi) - vstart);
    piece(fi, jlo, jhi, deg);
    pos = vstart + jhi;
    ++fi;
  }
}

}  // namespace detail

// Edge-balanced frontier traversal with emission.
//
// deg_of(fi) gives the adjacency length of frontier entry fi; the flattened
// edge space [0, sum deg) is cut into near-equal chunks and each chunk
// visits its pieces via visit(fi, jlo, jhi, deg, em) -> uint32_t. Emissions
// are staged per chunk and packed into `out` in flattened edge order.
// Pieces that do not cover their whole entry (jlo > 0 || jhi < deg) are
// recorded in the result for fix_split_pieces; a visit body that covers the
// whole entry (jlo == 0 && jhi == deg) must finalize the entry itself.
//
// The chunk staging capacity equals the chunk width, so a body may emit at
// most one item per adjacency slot it covers.
template <typename T, typename Deg, typename Visit>
frontier_result frontier_edge_for(size_t fs, Deg&& deg_of, std::span<T> out,
                                  workspace& ws, Visit&& visit,
                                  frontier_edge_opts opt = {}) {
  frontier_result res;
  if (fs == 0) return res;
  if (opt.edges_per_chunk == 0 && num_workers() <= 1) {
    // Serial fast path: visit whole entries in frontier order — already
    // flattened edge order, so the output is identical to the chunked
    // path's — and skip the degree reduce/scan entirely.
    emitter<T> em(out.data());
    for (size_t fi = 0; fi < fs; ++fi) {
      const uint32_t deg = static_cast<uint32_t>(deg_of(fi));
      if (deg == 0) continue;
      visit(fi, 0, deg, deg, em);
    }
    assert(em.count() <= out.size());
    res.emitted = em.count();
    return res;
  }
  [[maybe_unused]] const detail::stable_workers_guard wg;
  const edge_id total = reduce_sum_ws<edge_id>(
      fs, [&](size_t fi) { return static_cast<edge_id>(deg_of(fi)); }, ws);
  if (total == 0) return res;
  const size_t chunk = detail::resolve_chunk_width(total, opt.edges_per_chunk);
  const size_t nchunks = 1 + (total - 1) / chunk;

  // The partial-piece array outlives the internal scratch scope (it is part
  // of the result), so it is taken first: the scope below rewinds the
  // workspace only to this point.
  std::span<frontier_piece> partials = ws.take<frontier_piece>(2 * nchunks);
  workspace::scope s(ws);

  std::span<edge_id> off = ws.take<edge_id>(fs + 1);
  scan_exclusive_span<edge_id>(
      fs, [&](size_t fi) { return static_cast<edge_id>(deg_of(fi)); },
      off.first(fs), ws);
  off[fs] = total;

  if (nchunks == 1) {
    // Single chunk: emit straight into `out`, record partials in place.
    emitter<T> em(out.data());
    emitter<frontier_piece> pem(partials.data());
    detail::walk_chunk(off, fs, 0, total,
                       [&](size_t fi, uint32_t jlo, uint32_t jhi,
                           uint32_t deg) {
                         const uint32_t v =
                             visit(fi, jlo, jhi, deg, em);
                         if (jlo != 0 || jhi != deg) {
                           pem({static_cast<uint32_t>(fi), jlo, jhi, v});
                         }
                       });
    assert(em.count() <= out.size());
    res.emitted = em.count();
    res.partials = partials.first(pem.count());
    return res;
  }

  std::span<T> stage = ws.take<T>(nchunks * chunk);
  std::span<frontier_piece> pstage = ws.take<frontier_piece>(2 * nchunks);
  std::span<size_t> counts = ws.take<size_t>(nchunks);
  std::span<size_t> pcounts = ws.take<size_t>(nchunks);
  parallel_for(
      0, nchunks,
      [&](size_t c) {
        const edge_id lo = static_cast<edge_id>(c) * chunk;
        const edge_id hi = std::min<edge_id>(total, lo + chunk);
        emitter<T> em(stage.data() + c * chunk);
        emitter<frontier_piece> pem(pstage.data() + 2 * c);
        detail::walk_chunk(off, fs, lo, hi,
                           [&](size_t fi, uint32_t jlo, uint32_t jhi,
                               uint32_t deg) {
                             const uint32_t v = visit(fi, jlo, jhi, deg, em);
                             if (jlo != 0 || jhi != deg) {
                               pem({static_cast<uint32_t>(fi), jlo, jhi, v});
                             }
                           });
        assert(em.count() <= hi - lo);
        assert(pem.count() <= 2);
        counts[c] = em.count();    // lint: private-write(chunk c owns slot c)
        pcounts[c] = pem.count();  // lint: private-write(chunk c owns slot c)
      },
      1);
  size_t etotal = 0;
  size_t ptotal = 0;
  for (size_t c = 0; c < nchunks; ++c) {
    const size_t e = counts[c];
    const size_t p = pcounts[c];
    counts[c] = etotal;
    pcounts[c] = ptotal;
    etotal += e;
    ptotal += p;
  }
  assert(etotal <= out.size());
  parallel_for(
      0, nchunks,
      [&](size_t c) {
        const size_t e =
            (c + 1 < nchunks ? counts[c + 1] : etotal) - counts[c];
        // lint: private-write(exclusive-scan dest ranges are disjoint per c)
        std::memcpy(out.data() + counts[c], stage.data() + c * chunk,
                    e * sizeof(T));
        const size_t p =
            (c + 1 < nchunks ? pcounts[c + 1] : ptotal) - pcounts[c];
        // lint: private-write(exclusive-scan piece ranges are disjoint per c)
        std::memcpy(partials.data() + pcounts[c], pstage.data() + 2 * c,
                    p * sizeof(frontier_piece));
      },
      1);
  res.emitted = etotal;
  res.partials = partials.first(ptotal);
  return res;
}

// Non-emitting twin for pure compaction passes (decomp-min phase 1, the
// hybrid's filterEdges): same chunking and partial-piece protocol, no
// output stream and therefore no staging memory at all.
template <typename Deg, typename Visit>
frontier_result frontier_edge_for(size_t fs, Deg&& deg_of, workspace& ws,
                                  Visit&& visit, frontier_edge_opts opt = {}) {
  frontier_result res;
  if (fs == 0) return res;
  if (opt.edges_per_chunk == 0 && num_workers() <= 1) {
    // Serial fast path: whole entries in order, no scan, no partials.
    for (size_t fi = 0; fi < fs; ++fi) {
      const uint32_t deg = static_cast<uint32_t>(deg_of(fi));
      if (deg == 0) continue;
      visit(fi, 0, deg, deg);
    }
    return res;
  }
  [[maybe_unused]] const detail::stable_workers_guard wg;
  const edge_id total = reduce_sum_ws<edge_id>(
      fs, [&](size_t fi) { return static_cast<edge_id>(deg_of(fi)); }, ws);
  if (total == 0) return res;
  const size_t chunk = detail::resolve_chunk_width(total, opt.edges_per_chunk);
  const size_t nchunks = 1 + (total - 1) / chunk;

  std::span<frontier_piece> partials = ws.take<frontier_piece>(2 * nchunks);
  workspace::scope s(ws);

  std::span<edge_id> off = ws.take<edge_id>(fs + 1);
  scan_exclusive_span<edge_id>(
      fs, [&](size_t fi) { return static_cast<edge_id>(deg_of(fi)); },
      off.first(fs), ws);
  off[fs] = total;

  std::span<frontier_piece> pstage = ws.take<frontier_piece>(2 * nchunks);
  std::span<size_t> pcounts = ws.take<size_t>(nchunks);
  parallel_for(
      0, nchunks,
      [&](size_t c) {
        const edge_id lo = static_cast<edge_id>(c) * chunk;
        const edge_id hi = std::min<edge_id>(total, lo + chunk);
        emitter<frontier_piece> pem(pstage.data() + 2 * c);
        detail::walk_chunk(off, fs, lo, hi,
                           [&](size_t fi, uint32_t jlo, uint32_t jhi,
                               uint32_t deg) {
                             const uint32_t v = visit(fi, jlo, jhi, deg);
                             if (jlo != 0 || jhi != deg) {
                               pem({static_cast<uint32_t>(fi), jlo, jhi, v});
                             }
                           });
        assert(pem.count() <= 2);
        pcounts[c] = pem.count();  // lint: private-write(chunk c owns slot c)
      },
      1);
  size_t ptotal = 0;
  for (size_t c = 0; c < nchunks; ++c) {
    const size_t p = pcounts[c];
    pcounts[c] = ptotal;
    ptotal += p;
  }
  parallel_for(
      0, nchunks,
      [&](size_t c) {
        const size_t p =
            (c + 1 < nchunks ? pcounts[c + 1] : ptotal) - pcounts[c];
        // lint: private-write(exclusive-scan piece ranges are disjoint per c)
        std::memcpy(partials.data() + pcounts[c], pstage.data() + 2 * c,
                    p * sizeof(frontier_piece));
      },
      1);
  res.partials = partials.first(ptotal);
  return res;
}

// Stitch split entries back together after a compacting frontier_edge_for:
// each piece locally compacted its kept slots to the FRONT of its own
// [jlo, jhi) subrange and returned the kept count; this pass slides those
// runs down so the entry's kept slots form the prefix [0, K), then calls
// finish(fi, K) to publish the final count.
//
//   move(fi, dst, src, len) — move len kept slots of entry fi from local
//     offset src down to dst (dst <= src, ranges may overlap forward).
//   finish(fi, K)           — publish entry fi's total kept count.
//
// One leader task per split entry walks that entry's consecutive piece run
// sequentially — there are at most two partial pieces per chunk, so this
// pass is tiny.
template <typename Move, typename Finish>
void fix_split_pieces(std::span<const frontier_piece> partials, Move&& move,
                      Finish&& finish) {
  parallel_for(
      0, partials.size(),
      [&](size_t i) {
        if (i > 0 && partials[i - 1].fi == partials[i].fi) return;
        const uint32_t fi = partials[i].fi;
        uint32_t k = 0;
        for (size_t j = i; j < partials.size() && partials[j].fi == fi; ++j) {
          const frontier_piece& p = partials[j];
          if (p.value > 0 && k != p.jlo) move(fi, k, p.jlo, p.value);
          k += p.value;
        }
        finish(fi, k);
      },
      /*grain=*/1);
}

}  // namespace pcc::parallel
