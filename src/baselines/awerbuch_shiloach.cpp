// awerbuch-shiloach-CC: the tree-hooking connectivity algorithm of
// Awerbuch and Shiloach (ICPP'83), the second classic the paper names in
// the "simple but O(m log n) work" family. Each round: (1) conditional
// hooking — star roots hook under strictly smaller neighbouring labels,
// (2) unconditional hooking — stars that could not hook in (1) hook under
// any different neighbouring label (all of which are now strictly larger,
// so no cycles form), (3) pointer-jumping shortcut.

#include "baselines/baselines.hpp"
#include "parallel/atomics.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::baselines {

namespace {

using parallel::atomic_load;
using parallel::atomic_store;
using parallel::parallel_for;
using parallel::read_once;
using parallel::write_once;

// Classic parallel star detection: st[v] is true iff v belongs to a tree
// of depth <= 1 (a star).
void detect_stars(const std::vector<vertex_id>& parent,
                  std::vector<uint8_t>& st) {
  const size_t n = parent.size();
  parallel_for(0, n, [&](size_t v) { st[v] = 1; });
  parallel_for(0, n, [&](size_t v) {
    const vertex_id p = parent[v];
    const vertex_id gp = parent[p];
    if (p != gp) {
      // Benign same-value races: every concurrent writer stores 0, and v
      // may simultaneously be some other vertex's grandparent.
      write_once(&st[v], uint8_t{0});
      write_once(&st[gp], uint8_t{0});  // the grandparent heads a non-star tree
    }
  });
  parallel_for(0, n, [&](size_t v) {
    // Members of a non-star tree inherit the verdict of their parent.
    // Benign race: st[parent[v]] can only be rewritten with its own value
    // here (a root's parent is itself), so either read order is correct.
    if (st[v]) write_once(&st[v], read_once(&st[parent[v]]));
  });
}

}  // namespace

std::vector<vertex_id> awerbuch_shiloach_components(const graph::graph& g) {
  const size_t n = g.num_vertices();
  std::vector<vertex_id> parent(n);
  parallel_for(0, n, [&](size_t v) { parent[v] = static_cast<vertex_id>(v); });
  if (n == 0) return parent;
  std::vector<uint8_t> star(n);

  bool changed = true;
  while (changed) {
    uint8_t any = 0;

    // (1) Conditional star hooking: strictly decreasing targets keep the
    // forest acyclic under arbitrary write races.
    detect_stars(parent, star);
    parallel_for(0, n, [&](size_t ui) {
      const vertex_id u = static_cast<vertex_id>(ui);
      if (!star[u]) return;
      const vertex_id pu = atomic_load(&parent[u]);
      for (vertex_id w : g.neighbors(u)) {
        const vertex_id pw = atomic_load(&parent[w]);
        if (pw < pu) {
          if (parallel::write_min(&parent[pu], pw)) {
            atomic_store(&any, uint8_t{1});
          }
        }
      }
    });

    // (2) Unconditional star hooking: a star that survived (1) has no
    // strictly smaller neighbouring label, so every hook here strictly
    // increases the root label — again acyclic.
    detect_stars(parent, star);
    parallel_for(0, n, [&](size_t ui) {
      const vertex_id u = static_cast<vertex_id>(ui);
      if (!star[u]) return;
      const vertex_id pu = atomic_load(&parent[u]);
      for (vertex_id w : g.neighbors(u)) {
        const vertex_id pw = atomic_load(&parent[w]);
        if (pw != pu && pw > pu) {
          if (parallel::cas(&parent[pu], pu, pw)) {
            atomic_store(&any, uint8_t{1});
          }
          break;
        }
      }
    });

    // (3) Shortcut. Benign pointer-jumping race: parent[p] may be
    // concurrently shortcut by p itself, but every value ever stored is a
    // valid (weakly closer) ancestor, so any interleaving converges.
    parallel_for(0, n, [&](size_t v) {
      const vertex_id p = parent[v];
      const vertex_id gp = read_once(&parent[p]);
      if (p != gp) {
        write_once(&parent[v], gp);
        atomic_store(&any, uint8_t{1});
      }
    });

    changed = any != 0;
  }
  return parent;
}

}  // namespace pcc::baselines
