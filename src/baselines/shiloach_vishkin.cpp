// shiloach-vishkin-CC: the classic O(m log n)-work, O(log n)-depth PRAM
// connectivity algorithm (Shiloach and Vishkin, J. Algorithms 1982), in the
// practical hook-and-shortcut formulation. Each round hooks the root of
// one endpoint's tree under the smaller-rooted tree of the other endpoint,
// then fully compresses all trees with pointer jumping. The trees halve in
// count per round but edges are revisited every round — the archetype of
// the "simple but super-linear work" family the paper improves upon.

#include "baselines/baselines.hpp"
#include "parallel/atomics.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::baselines {

std::vector<vertex_id> shiloach_vishkin_components(const graph::graph& g) {
  const size_t n = g.num_vertices();
  std::vector<vertex_id> parent(n);
  parallel::parallel_for(0, n, [&](size_t v) {
    parent[v] = static_cast<vertex_id>(v);
  });
  if (n == 0) return parent;

  bool changed = true;
  while (changed) {
    changed = false;
    // Hook: for every edge (u, w) between different stars, point the larger
    // root at the smaller. writeMin keeps the forest acyclic (roots only
    // ever decrease).
    uint8_t any_hook = 0;
    parallel::parallel_for(0, n, [&](size_t ui) {
      const vertex_id u = static_cast<vertex_id>(ui);
      const vertex_id pu = parallel::atomic_load(&parent[u]);
      for (vertex_id w : g.neighbors(u)) {
        const vertex_id pw = parallel::atomic_load(&parent[w]);
        if (pu < pw) {
          if (parallel::write_min(&parent[pw], pu)) {
            parallel::atomic_store(&any_hook, uint8_t{1});
          }
        }
      }
    });
    changed = any_hook != 0;

    // Shortcut: pointer-jump every tree down to a star.
    bool jumped = true;
    while (jumped) {
      uint8_t any_jump = 0;
      parallel::parallel_for(0, n, [&](size_t v) {
        const vertex_id p = parallel::atomic_load(&parent[v]);
        const vertex_id gp = parallel::atomic_load(&parent[p]);
        if (p != gp) {
          parallel::atomic_store(&parent[v], gp);
          parallel::atomic_store(&any_jump, uint8_t{1});
        }
      });
      jumped = any_jump != 0;
    }
  }
  return parent;
}

}  // namespace pcc::baselines
