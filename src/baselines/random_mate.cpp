// random-mate-CC: the classic contraction algorithm of Reif (1985) /
// Phillips (1989), cited by the paper as the archetypal simple parallel
// connectivity algorithm that is NOT work-efficient: a constant fraction of
// the vertices disappears per round in expectation, but all remaining edges
// are revisited every round, giving O(m log n) expected work.
//
// Each round every root flips a coin; every cross edge whose tail-root sees
// a head-root hooks the tail under the head (arbitrary winner), then all
// trees are compressed to stars.

#include "baselines/baselines.hpp"
#include "parallel/atomics.hpp"
#include "parallel/random.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::baselines {

std::vector<vertex_id> random_mate_components(const graph::graph& g,
                                              uint64_t seed) {
  const size_t n = g.num_vertices();
  std::vector<vertex_id> parent(n);
  parallel::parallel_for(0, n, [&](size_t v) {
    parent[v] = static_cast<vertex_id>(v);
  });
  if (n == 0) return parent;

  const parallel::rng gen(seed);
  uint64_t round = 0;
  while (true) {
    ++round;
    const uint64_t salt = parallel::hash64(round);
    const auto heads = [&](vertex_id root) {
      return (gen[salt ^ root] & 1) != 0;
    };

    // Hook tails under adjacent heads. Roots are stars after the previous
    // round's compression, so parent[x] is the root of x.
    uint8_t any_cross = 0;
    parallel::parallel_for(0, n, [&](size_t ui) {
      const vertex_id u = static_cast<vertex_id>(ui);
      const vertex_id ru = parallel::atomic_load(&parent[u]);
      for (vertex_id w : g.neighbors(u)) {
        const vertex_id rw = parallel::atomic_load(&parent[w]);
        if (ru == rw) continue;
        parallel::atomic_store(&any_cross, uint8_t{1});
        if (!heads(ru) && heads(rw)) {
          // Arbitrary winner among concurrent hooks of ru; all targets are
          // heads, and heads never hook, so the result stays a forest of
          // depth <= 2.
          parallel::atomic_store(&parent[ru], rw);
        }
      }
    });
    if (any_cross == 0) break;

    // Compress to stars (depth <= 2 after hooking, so two jumps suffice).
    // Benign pointer-jumping race: parent[parent[v]] may be concurrently
    // rewritten by its owner, but every stored value is a valid ancestor.
    for (int jump = 0; jump < 2; ++jump) {
      parallel::parallel_for(0, n, [&](size_t v) {
        const vertex_id p = parent[v];
        parallel::write_once(&parent[v], parallel::read_once(&parent[p]));
      });
    }
  }
  return parent;
}

std::vector<vertex_id> random_mate_components(const graph::graph& g) {
  return random_mate_components(g, 0x5eed);
}

}  // namespace pcc::baselines
