#include "baselines/rem_union_find.hpp"

#include "baselines/baselines.hpp"

namespace pcc::baselines {

bool parallel_rem_union_find::unite(vertex_id u, vertex_id v) {
  while (true) {
    vertex_id pu = parallel::atomic_load(&parent_[u]);
    vertex_id pv = parallel::atomic_load(&parent_[v]);
    if (pu == pv) return false;
    if (pu < pv) {
      std::swap(u, v);
      std::swap(pu, pv);
    }
    // pu > pv: advance / link on the u side.
    if (u == pu) {
      // u looks like a root: confirm under its lock and link it below pv.
      lock(u);
      const bool still_root = parallel::atomic_load(&parent_[u]) == u;
      if (still_root) parallel::atomic_store(&parent_[u], pv);
      unlock(u);
      if (still_root) return true;
      continue;  // someone re-rooted u meanwhile: retry with fresh parents
    }
    // Splice: point u at the smaller pv (racy CAS; failure just retries
    // from fresh values). Links only ever decrease, so no cycles.
    parallel::cas(&parent_[u], pu, pv);
    u = pu;
  }
}

std::vector<vertex_id> parallel_rem_union_find::flatten() {
  const size_t n = parent_.size();
  std::vector<vertex_id> labels(n);
  parallel::parallel_for(0, n, [&](size_t v) {
    vertex_id x = static_cast<vertex_id>(v);
    while (parent_[x] != x) x = parent_[x];
    labels[v] = x;
  });
  return labels;
}

std::vector<vertex_id> parallel_sf_rem_components(const graph::graph& g) {
  const size_t n = g.num_vertices();
  parallel_rem_union_find uf(n);
  parallel::parallel_for(0, n, [&](size_t ui) {
    const vertex_id u = static_cast<vertex_id>(ui);
    for (vertex_id w : g.neighbors(u)) {
      if (u < w) uf.unite(u, w);
    }
  });
  return uf.flatten();
}

}  // namespace pcc::baselines
