#include "baselines/rem_union_find.hpp"

#include "baselines/baselines.hpp"
#include "parallel/arena.hpp"

namespace pcc::baselines {

bool rem_view::unite(vertex_id u, vertex_id v) {
  while (true) {
    vertex_id pu = parallel::atomic_load(&parent_[u]);
    vertex_id pv = parallel::atomic_load(&parent_[v]);
    if (pu == pv) return false;
    if (pu < pv) {
      std::swap(u, v);
      std::swap(pu, pv);
    }
    // pu > pv: advance / link on the u side.
    if (u == pu) {
      // u looks like a root: confirm under its lock and link it below pv.
      lock_slot(u);
      const bool still_root = parallel::atomic_load(&parent_[u]) == u;
      if (still_root) parallel::atomic_store(&parent_[u], pv);
      unlock_slot(u);
      if (still_root) return true;
      continue;  // someone re-rooted u meanwhile: retry with fresh parents
    }
    // Splice: point u at the smaller pv (racy CAS; failure just retries
    // from fresh values). Links only ever decrease, so no cycles.
    parallel::cas(&parent_[u], pu, pv);
    u = pu;
  }
}

void rem_view::flatten_into(std::span<vertex_id> labels) const {
  parallel::parallel_for(0, parent_.size(), [&](size_t v) {
    vertex_id x = static_cast<vertex_id>(v);
    while (true) {
      const vertex_id p = parallel::atomic_load(&parent_[x]);
      if (p == x) break;
      x = p;
    }
    // Atomic store because labels may alias the parent array (see header).
    parallel::atomic_store(&labels[v], x);
  });
}

void parallel_sf_rem_into(const graph::graph& g, parallel::workspace& ws,
                          std::span<vertex_id> labels) {
  const size_t n = g.num_vertices();
  parallel::workspace::scope scope(ws);
  rem_view uf(labels, ws.take<uint8_t>(n));
  uf.init();
  parallel::parallel_for(0, n, [&](size_t ui) {
    const vertex_id u = static_cast<vertex_id>(ui);
    for (vertex_id w : g.neighbors(u)) {
      if (u < w) uf.unite(u, w);
    }
  });
  uf.flatten_into(labels);
}

std::vector<vertex_id> parallel_sf_rem_components(const graph::graph& g) {
  std::vector<vertex_id> labels(g.num_vertices());
  parallel::workspace ws;
  parallel_sf_rem_into(g, ws, labels);
  return labels;
}

}  // namespace pcc::baselines
