// The comparison implementations from Section 5 of the paper.
//
// Every function returns a connected-components labeling (same contract as
// pcc::cc::connected_components: equal labels iff same component). None of
// these algorithms is work-efficient with polylogarithmic depth — that is
// the paper's point — but they are the fastest practical codes it compares
// against.
//
// All of them are registered in the cc::algorithm registry (core/
// registry.hpp); the free functions below are kept as thin wrappers for
// API compatibility. The `_into` variants write into caller-provided
// storage and draw scratch from a workspace, so registry-driven repeated
// runs stay allocation-free after warm-up.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "parallel/arena.hpp"

namespace pcc::baselines {

// --- Union-find spanning forests ---------------------------------------
// serial-SF: sequential union-find spanning forest (PBBS's sequential
// baseline), and the Rem's-algorithm variant Patwary et al.'s serial code
// prefers (the paper's Table 2 footnote picks it on two inputs).
std::vector<vertex_id> serial_sf_components(const graph::graph& g);
std::vector<vertex_id> serial_sf_rem_components(const graph::graph& g);
// Rem's sequential splicing walk directly over caller storage; labels
// become each component's minimum vertex id (canonical).
void serial_sf_rem_into(const graph::graph& g, std::span<vertex_id> parent);
// parallel-SF-PRM: lock-based multicore union-find spanning forest in the
// style of Patwary, Refsnes, Manne (IPDPS'12).
std::vector<vertex_id> parallel_sf_prm_components(const graph::graph& g);
// parallel-SF-PBBS: deterministic-reservations spanning forest as in PBBS.
std::vector<vertex_id> parallel_sf_pbbs_components(const graph::graph& g);
// Lock-based parallel Rem's algorithm (the union-find variant inside the
// PRM study; see rem_union_find.hpp).
std::vector<vertex_id> parallel_sf_rem_components(const graph::graph& g);
void parallel_sf_rem_into(const graph::graph& g, parallel::workspace& ws,
                          std::span<vertex_id> labels);

// --- BFS / propagation families -----------------------------------------
// hybrid-BFS-CC: direction-optimizing BFS run on each component one by one
// (Ligra-style). The `_into` flavour lives in bfs.hpp next to its scratch.
std::vector<vertex_id> hybrid_bfs_components(const graph::graph& g);
// multistep-CC: Slota, Rajamanickam, Madduri (IPDPS'14) — one parallel BFS
// for the largest component, label propagation for the rest.
std::vector<vertex_id> multistep_components(const graph::graph& g);
// Pure label propagation (the graph-systems baseline the paper discusses;
// diameter-bounded depth, not work-efficient).
std::vector<vertex_id> label_prop_components(const graph::graph& g);

// --- Classic PRAM algorithms --------------------------------------------
// Shiloach-Vishkin hook-and-shortcut (O(m log n) work, textbook).
std::vector<vertex_id> shiloach_vishkin_components(const graph::graph& g);
// Reif / Phillips random-mate contraction (O(m log n) expected work).
std::vector<vertex_id> random_mate_components(const graph::graph& g);
std::vector<vertex_id> random_mate_components(const graph::graph& g,
                                              uint64_t seed);
// Awerbuch-Shiloach tree hooking (O(m log n) work).
std::vector<vertex_id> awerbuch_shiloach_components(const graph::graph& g);

// --- Post-paper sampling techniques ------------------------------------
// Afforest-style sampling connectivity (Sutton et al., IPDPS'18) — union a
// few neighbours per vertex, identify the emerging giant component, and
// only process the remaining edges of vertices outside it.
std::vector<vertex_id> afforest_components(const graph::graph& g);
void afforest_into(const graph::graph& g, uint64_t seed,
                   parallel::workspace& ws, std::span<vertex_id> labels);

}  // namespace pcc::baselines
