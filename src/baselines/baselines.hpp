// The comparison implementations from Section 5 of the paper.
//
// Every function returns a connected-components labeling (same contract as
// pcc::cc::connected_components: equal labels iff same component). None of
// these algorithms is work-efficient with polylogarithmic depth — that is
// the paper's point — but they are the fastest practical codes it compares
// against:
//
//   serial_sf_components      — sequential union-find spanning forest
//                               (serial-SF; PBBS's sequential baseline).
//   parallel_sf_prm_components— lock-based multicore union-find spanning
//                               forest in the style of Patwary, Refsnes,
//                               Manne (IPDPS'12) (parallel-SF-PRM).
//   parallel_sf_pbbs_components — deterministic-reservations spanning
//                               forest as in PBBS (parallel-SF-PBBS).
//   hybrid_bfs_components     — direction-optimizing BFS run on each
//                               component one by one (hybrid-BFS-CC,
//                               Ligra-style).
//   multistep_components      — Slota, Rajamanickam, Madduri (IPDPS'14):
//                               one parallel BFS for the largest component,
//                               label propagation for the rest
//                               (multistep-CC).
//   label_prop_components     — pure label propagation (the graph-systems
//                               baseline the paper discusses; diameter-
//                               bounded depth, not work-efficient).
//   shiloach_vishkin_components — classic O(m log n) hook-and-shortcut
//                               (the textbook non-work-efficient PRAM
//                               algorithm, for reference).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pcc::baselines {

std::vector<vertex_id> serial_sf_components(const graph::graph& g);
// Sequential spanning forest on Rem's algorithm (Patwary et al.'s serial
// code, which the paper's Table 2 footnote prefers on two inputs).
std::vector<vertex_id> serial_sf_rem_components(const graph::graph& g);
std::vector<vertex_id> parallel_sf_prm_components(const graph::graph& g);
std::vector<vertex_id> parallel_sf_pbbs_components(const graph::graph& g);
std::vector<vertex_id> hybrid_bfs_components(const graph::graph& g);
std::vector<vertex_id> multistep_components(const graph::graph& g);
std::vector<vertex_id> label_prop_components(const graph::graph& g);
std::vector<vertex_id> shiloach_vishkin_components(const graph::graph& g);
// Reif / Phillips random-mate contraction (O(m log n) expected work).
std::vector<vertex_id> random_mate_components(const graph::graph& g);
std::vector<vertex_id> random_mate_components(const graph::graph& g,
                                              uint64_t seed);
// Awerbuch-Shiloach tree hooking (O(m log n) work).
std::vector<vertex_id> awerbuch_shiloach_components(const graph::graph& g);
// Lock-based parallel Rem's algorithm (the union-find variant inside the
// PRM study; see rem_union_find.hpp).
std::vector<vertex_id> parallel_sf_rem_components(const graph::graph& g);
// Afforest-style sampling connectivity (Sutton et al., IPDPS'18) — a
// post-paper technique influenced by this line of work: union a few
// neighbours per vertex, identify the emerging giant component, and only
// process the remaining edges of vertices outside it.
std::vector<vertex_id> afforest_components(const graph::graph& g);

}  // namespace pcc::baselines
