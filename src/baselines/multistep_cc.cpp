// multistep-CC: the algorithm of Slota, Rajamanickam, Madduri ("BFS and
// coloring-based parallel algorithms for strongly connected components and
// related problems", IPDPS'14), specialized to connectivity as the paper
// describes: one direction-optimizing parallel BFS computes the (expected)
// largest component, then label propagation finishes the remaining
// vertices. Worst case quadratic work and linear depth, but very fast on
// graphs with one giant component.

#include "baselines/baselines.hpp"
#include "baselines/bfs.hpp"
#include "parallel/atomics.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::baselines {

std::vector<vertex_id> multistep_components(const graph::graph& g) {
  const size_t n = g.num_vertices();
  std::vector<vertex_id> labels(n, kNoVertex);
  if (n == 0) return labels;

  // Step 1: BFS from the maximum-degree vertex — the heuristic pick for a
  // seed inside the largest component.
  vertex_id seed = 0;
  for (size_t v = 1; v < n; ++v) {
    if (g.degree(static_cast<vertex_id>(v)) > g.degree(seed)) {
      seed = static_cast<vertex_id>(v);
    }
  }
  hybrid_bfs_label(g, seed, labels, seed);

  // Step 2: label propagation over the residual vertices. Everyone not in
  // the giant component starts with its own id and repeatedly writeMins its
  // label onto its neighbours until a fixpoint.
  std::vector<vertex_id> active = parallel::pack_index<vertex_id>(
      n, [&](size_t v) { return labels[v] == kNoVertex; });
  parallel::parallel_for(0, active.size(), [&](size_t i) {
    // lint: private-write(active[] holds distinct vertex ids, one writer each)
    labels[active[i]] = active[i];
  });

  while (!active.empty()) {
    std::vector<uint8_t> changed(n, 0);
    parallel::parallel_for(0, active.size(), [&](size_t i) {
      const vertex_id v = active[i];
      const vertex_id lv = parallel::atomic_load(&labels[v]);
      for (vertex_id w : g.neighbors(v)) {
        // Propagate the smaller label across the edge. Concurrent winners
        // all store the same flag value, so the mark is a write_once.
        if (parallel::write_min(&labels[w], lv)) {
          parallel::write_once(&changed[w], uint8_t{1});
        }
      }
    });
    // A vertex whose label changed must re-broadcast next round.
    active = parallel::pack_index<vertex_id>(
        n, [&](size_t v) { return changed[v] != 0; });
  }
  return labels;
}

}  // namespace pcc::baselines
