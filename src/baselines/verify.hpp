// Labeling verification utilities shared by tests and benches.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace pcc::baselines {

// True iff the two labelings induce exactly the same partition of the
// vertices (labels themselves may differ).
bool labels_equivalent(const std::vector<vertex_id>& a,
                       const std::vector<vertex_id>& b);

// Full check of `labels` against a sequential BFS oracle on g.
bool is_valid_components_labeling(const graph::graph& g,
                                  const std::vector<vertex_id>& labels);

// True iff every label is the id of a vertex inside the labeled component
// (the representative invariant pcc::cc maintains).
bool labels_are_representatives(const std::vector<vertex_id>& labels);

}  // namespace pcc::baselines
