#include "baselines/bfs.hpp"

#include "parallel/atomics.hpp"
#include "parallel/emit.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::baselines {

namespace {
using parallel::atomic_load;
using parallel::cas;
using parallel::parallel_for;

// One edge-balanced top-down step shared by every BFS variant here: each
// frontier vertex's neighbours are scanned in near-equal edge chunks
// (frontier_edge_for splits hubs across chunks) and claimed neighbours are
// emitted into `next` without a shared cursor. `claim(w, v)` must be the
// atomic claim (CAS-guarded), true at most once per destination.
template <typename Claim>
size_t top_down_step(const graph::graph& g,
                     std::span<const vertex_id> frontier,
                     std::span<vertex_id> next, parallel::workspace& ws,
                     Claim&& claim) {
  parallel::workspace::scope s(ws);
  const parallel::frontier_result run =
      parallel::frontier_edge_for<vertex_id>(
          frontier.size(), [&](size_t fi) { return g.degree(frontier[fi]); },
          next, ws,
          [&](size_t fi, uint32_t jlo, uint32_t jhi, uint32_t,
              parallel::emitter<vertex_id>& em) -> uint32_t {
            const vertex_id v = frontier[fi];
            const std::span<const vertex_id> nbrs = g.neighbors(v);
            for (uint32_t i = jlo; i < jhi; ++i) {
              const vertex_id w = nbrs[i];
              if (claim(w, v)) em(w);
            }
            return 0;
          });
  return run.emitted;
}

}  // namespace

void bfs_scratch::ensure(size_t n) {
  if (next.size() < n) {
    frontier.reserve(n);
    next.resize(n);
    on_frontier.assign(n, 0);
    next_flags.assign(n, 0);
  }
}

bfs_result hybrid_bfs_label(const graph::graph& g, vertex_id source,
                            std::span<vertex_id> labels, vertex_id label,
                            double dense_threshold, bfs_scratch* scratch) {
  const size_t n = g.num_vertices();
  bfs_result res;
  if (labels[source] != kNoVertex) return res;
  labels[source] = label;
  res.num_visited = 1;

  bfs_scratch local;
  bfs_scratch& s = scratch != nullptr ? *scratch : local;
  s.ensure(n);
  std::vector<vertex_id>& frontier = s.frontier;
  frontier.assign(1, source);
  std::vector<vertex_id>& next = s.next;
  std::vector<uint8_t>& on_frontier = s.on_frontier;
  std::vector<uint8_t>& next_flags = s.next_flags;
  const size_t dense_cutoff =
      static_cast<size_t>(dense_threshold * static_cast<double>(n));

  while (!frontier.empty()) {
    ++res.num_rounds;
    if (frontier.size() > dense_cutoff) {
      // Bottom-up step: unvisited vertices look for a frontier neighbour.
      ++res.dense_rounds;
      parallel_for(0, frontier.size(), [&](size_t i) {
        // lint: private-write(frontier holds distinct vertex ids)
        on_frontier[frontier[i]] = 1;
      });
      parallel_for(0, n, [&](size_t vi) {
        const vertex_id v = static_cast<vertex_id>(vi);
        if (labels[v] != kNoVertex) return;
        for (vertex_id u : g.neighbors(v)) {
          if (on_frontier[u]) {
            // lint: private-write(v == vi; only iteration vi touches slot v)
            labels[v] = label;
            next_flags[v] = 1;  // lint: private-write(same owner invariant)
            break;
          }
        }
      });
      parallel_for(0, frontier.size(), [&](size_t i) {
        // lint: private-write(frontier holds distinct vertex ids)
        on_frontier[frontier[i]] = 0;
      });
      const size_t gathered = parallel::pack_index_span<vertex_id>(
          n, [&](size_t v) { return next_flags[v] != 0; },
          std::span<vertex_id>(next), s.ws);
      parallel_for(0, gathered, [&](size_t i) {
        // lint: private-write(next holds distinct vertex ids)
        next_flags[next[i]] = 0;
      });
      res.num_visited += gathered;
      frontier.assign(next.begin(), next.begin() + gathered);
    } else {
      // Top-down step: frontier vertices claim unvisited neighbours.
      const size_t next_size = top_down_step(
          g, frontier, next, s.ws, [&](vertex_id w, vertex_id) {
            return atomic_load(&labels[w]) == kNoVertex &&
                   cas(&labels[w], kNoVertex, label);
          });
      res.num_visited += next_size;
      frontier.assign(next.begin(), next.begin() + next_size);
    }
  }
  return res;
}

std::vector<vertex_id> parallel_bfs_parents(const graph::graph& g,
                                            vertex_id source) {
  const size_t n = g.num_vertices();
  std::vector<vertex_id> parents(n, kNoVertex);
  parents[source] = source;
  std::vector<vertex_id> frontier{source};
  std::vector<vertex_id> next(n);
  parallel::workspace ws;
  while (!frontier.empty()) {
    const size_t next_size =
        top_down_step(g, frontier, next, ws, [&](vertex_id w, vertex_id v) {
          return atomic_load(&parents[w]) == kNoVertex &&
                 cas(&parents[w], kNoVertex, v);
        });
    frontier.assign(next.begin(), next.begin() + next_size);
  }
  return parents;
}

std::vector<uint32_t> parallel_bfs_distances(const graph::graph& g,
                                             vertex_id source) {
  const size_t n = g.num_vertices();
  constexpr uint32_t kInf = ~0u;
  std::vector<uint32_t> dist(n, kInf);
  dist[source] = 0;
  std::vector<vertex_id> frontier{source};
  std::vector<vertex_id> next(n);
  parallel::workspace ws;
  uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    const uint32_t lvl = level;
    const size_t next_size =
        top_down_step(g, frontier, next, ws, [&](vertex_id w, vertex_id) {
          return atomic_load(&dist[w]) == kInf && cas(&dist[w], kInf, lvl);
        });
    frontier.assign(next.begin(), next.begin() + next_size);
  }
  return dist;
}

}  // namespace pcc::baselines
