// hybrid-BFS-CC: direction-optimizing BFS performed on each component of
// the graph one by one (the Ligra-style baseline in the paper). Linear
// work, but the depth is the sum of the component diameters — great on
// dense low-diameter graphs, terrible on `line` or on graphs with millions
// of components (rMat), exactly the behaviour Table 2 shows.

#include "baselines/baselines.hpp"
#include "baselines/bfs.hpp"
#include "parallel/scheduler.hpp"

namespace pcc::baselines {

void hybrid_bfs_components_into(const graph::graph& g,
                                std::span<vertex_id> labels,
                                bfs_scratch& scratch) {
  const size_t n = g.num_vertices();
  parallel::parallel_for(0, n, [&](size_t v) {
    labels[v] = kNoVertex;  // lint: private-write(owner index v)
  });
  for (size_t v = 0; v < n; ++v) {
    // Sweep for the next unvisited vertex; the sweep pointer only moves
    // forward so the scan is O(n) overall.
    if (labels[v] == kNoVertex) {
      hybrid_bfs_label(g, static_cast<vertex_id>(v), labels,
                       static_cast<vertex_id>(v), 0.2, &scratch);
    }
  }
}

std::vector<vertex_id> hybrid_bfs_components(const graph::graph& g) {
  std::vector<vertex_id> labels(g.num_vertices());
  bfs_scratch scratch;  // shared across components: one O(n) allocation
  hybrid_bfs_components_into(g, labels, scratch);
  return labels;
}

}  // namespace pcc::baselines
