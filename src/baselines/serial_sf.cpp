// serial-SF: the sequential spanning-forest connectivity baseline
// (union-find over all edges, then a flattening pass), as in PBBS.

#include "baselines/baselines.hpp"
#include "baselines/rem_union_find.hpp"
#include "baselines/union_find.hpp"

namespace pcc::baselines {

std::vector<vertex_id> serial_sf_components(const graph::graph& g) {
  const size_t n = g.num_vertices();
  union_find uf(n);
  for (size_t u = 0; u < n; ++u) {
    for (vertex_id w : g.neighbors(static_cast<vertex_id>(u))) {
      // Each undirected edge is stored twice; process one direction.
      if (u < w) uf.unite(static_cast<vertex_id>(u), w);
    }
  }
  std::vector<vertex_id> labels(n);
  for (size_t v = 0; v < n; ++v) labels[v] = uf.find(static_cast<vertex_id>(v));
  return labels;
}

std::vector<vertex_id> serial_sf_rem_components(const graph::graph& g) {
  // The paper's Table 2 footnote: for two inputs it reports Patwary et
  // al.'s sequential code because it beat the PBBS one — that code is
  // Rem's algorithm, provided here as the alternative serial baseline.
  const size_t n = g.num_vertices();
  rem_union_find uf(n);
  for (size_t u = 0; u < n; ++u) {
    for (vertex_id w : g.neighbors(static_cast<vertex_id>(u))) {
      if (u < w) uf.unite(static_cast<vertex_id>(u), w);
    }
  }
  std::vector<vertex_id> labels(n);
  for (size_t v = 0; v < n; ++v) labels[v] = uf.find(static_cast<vertex_id>(v));
  return labels;
}

}  // namespace pcc::baselines
