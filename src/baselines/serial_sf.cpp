// serial-SF: the sequential spanning-forest connectivity baseline
// (union-find over all edges, then a flattening pass), as in PBBS.

#include "baselines/baselines.hpp"
#include "baselines/rem_union_find.hpp"
#include "baselines/union_find.hpp"

namespace pcc::baselines {

std::vector<vertex_id> serial_sf_components(const graph::graph& g) {
  const size_t n = g.num_vertices();
  union_find uf(n);
  for (size_t u = 0; u < n; ++u) {
    for (vertex_id w : g.neighbors(static_cast<vertex_id>(u))) {
      // Each undirected edge is stored twice; process one direction.
      if (u < w) uf.unite(static_cast<vertex_id>(u), w);
    }
  }
  std::vector<vertex_id> labels(n);
  for (size_t v = 0; v < n; ++v) labels[v] = uf.find(static_cast<vertex_id>(v));
  return labels;
}

void serial_sf_rem_into(const graph::graph& g, std::span<vertex_id> parent) {
  // Rem's splicing walk directly over the output span: links strictly
  // decrease, so every root is its set's minimum and the flattened labels
  // are canonical. The in-place flatten is safe because flattened cells
  // hold roots and roots are fixpoints of the walk.
  const size_t n = g.num_vertices();
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<vertex_id>(i);
  for (size_t ui = 0; ui < n; ++ui) {
    for (vertex_id w : g.neighbors(static_cast<vertex_id>(ui))) {
      vertex_id u = static_cast<vertex_id>(ui);
      if (u >= w) continue;
      vertex_id v = w;
      while (parent[u] != parent[v]) {
        if (parent[u] < parent[v]) std::swap(u, v);
        if (u == parent[u]) {
          parent[u] = parent[v];
          break;
        }
        const vertex_id z = parent[u];
        parent[u] = parent[v];
        u = z;
      }
    }
  }
  for (size_t v = 0; v < n; ++v) {
    vertex_id x = static_cast<vertex_id>(v);
    while (parent[x] != x) x = parent[x];
    parent[v] = x;
  }
}

std::vector<vertex_id> serial_sf_rem_components(const graph::graph& g) {
  // The paper's Table 2 footnote: for two inputs it reports Patwary et
  // al.'s sequential code because it beat the PBBS one — that code is
  // Rem's algorithm, provided here as the alternative serial baseline.
  std::vector<vertex_id> labels(g.num_vertices());
  serial_sf_rem_into(g, labels);
  return labels;
}

}  // namespace pcc::baselines
