// Parallel breadth-first search, plain and direction-optimizing.
//
// The direction-optimizing (hybrid) BFS of Beamer, Asanovic, Patterson
// (SC'12) switches from the write-based "top-down" step to a read-based
// "bottom-up" step when the frontier grows large: every unvisited vertex
// scans its neighbours and stops at the first one found on the frontier.
// This is the engine of the hybrid-BFS-CC and multistep-CC baselines and
// of the read-based rounds in decomp-arb-hybrid.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "parallel/arena.hpp"

namespace pcc::baselines {

struct bfs_result {
  size_t num_visited = 0;
  size_t num_rounds = 0;
  size_t dense_rounds = 0;
};

// Reusable O(n) work buffers so callers that run one BFS per component
// (hybrid-BFS-CC) pay the allocation once, not once per component. The
// frontier lives here too: repeated searches through one scratch stay
// allocation-free once the vectors have grown to their high-water mark.
struct bfs_scratch {
  std::vector<vertex_id> frontier;
  std::vector<vertex_id> next;
  std::vector<uint8_t> on_frontier;
  std::vector<uint8_t> next_flags;
  parallel::workspace ws;  // frontier_edge_for / pack staging
  void ensure(size_t n);
};

// Visit the component of `source`, writing `label` into labels[v] for every
// vertex reached (labels must hold kNoVertex for unvisited vertices; the
// search never crosses already-labeled vertices). Direction-optimizing with
// the given frontier-fraction threshold.
bfs_result hybrid_bfs_label(const graph::graph& g, vertex_id source,
                            std::span<vertex_id> labels, vertex_id label,
                            double dense_threshold = 0.2,
                            bfs_scratch* scratch = nullptr);

// hybrid-BFS-CC with caller-provided output and scratch: one
// direction-optimizing BFS per component, sweeping sources in id order —
// so labels[v] is the minimum vertex id of v's component (canonical).
void hybrid_bfs_components_into(const graph::graph& g,
                                std::span<vertex_id> labels,
                                bfs_scratch& scratch);

// Plain level-synchronous parallel BFS; returns the parent of each reached
// vertex (source's parent is itself) and kNoVertex elsewhere.
std::vector<vertex_id> parallel_bfs_parents(const graph::graph& g,
                                            vertex_id source);

// BFS distances from source; unreachable vertices get UINT32_MAX.
std::vector<uint32_t> parallel_bfs_distances(const graph::graph& g,
                                             vertex_id source);

}  // namespace pcc::baselines
