// Rem's union-find algorithm, sequential and lock-based parallel.
//
// Patwary, Refsnes and Manne's multicore spanning-forest study (the
// parallel-SF-PRM baseline of the paper) found Rem's algorithm — an
// interleaved union-find that splices the two find paths into each other —
// to be the fastest disjoint-set variant both sequentially and as the core
// of their lock-based parallel code. This header provides both flavours;
// parallel_sf_rem_components (baselines.hpp) is the connectivity entry
// point built on the parallel one.
//
// Reference: Patwary, Blair, Manne, "Experiments on union-find algorithms
// for the disjoint-set data structure" (SEA'10); Rem's algorithm is
// exercise 2.3.3-story in Dijkstra's "A Discipline of Programming".
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "parallel/atomics.hpp"
#include "parallel/defs.hpp"
#include "parallel/scheduler.hpp"

namespace pcc::baselines {

// Sequential Rem's algorithm with splicing (SPS variant). The classic
// interleaved walk: advance whichever endpoint has the smaller parent,
// splicing it onto the other side, until the walks meet or a root is
// settled. unite() returns true iff the edge merged two distinct sets.
class rem_union_find {
 public:
  explicit rem_union_find(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<vertex_id>(i);
  }

  bool unite(vertex_id u, vertex_id v) {
    while (parent_[u] != parent_[v]) {
      // Invariant-friendly orientation: work on the side with the larger
      // parent (links always point to smaller ids).
      if (parent_[u] < parent_[v]) std::swap(u, v);
      if (u == parent_[u]) {  // u is a root: link it and finish
        parent_[u] = parent_[v];
        return true;
      }
      // Splice: redirect u one step down while walking up.
      const vertex_id z = parent_[u];
      parent_[u] = parent_[v];
      u = z;
    }
    return false;
  }

  // Representative lookup (plain walk; unite() keeps paths short).
  vertex_id find(vertex_id x) const {
    while (parent_[x] != x) x = parent_[x];
    return x;
  }

  size_t size() const { return parent_.size(); }

 private:
  std::vector<vertex_id> parent_;
};

// Lock-based parallel Rem (the PRM scheme): the splicing walk runs
// lock-free; only the final root link takes the root's lock and re-checks
// rootness under it. Links strictly decrease ids, so the structure stays
// acyclic under concurrency.
class parallel_rem_union_find {
 public:
  explicit parallel_rem_union_find(size_t n)
      : parent_(n), locks_(n) {
    parallel::parallel_for(0, n, [&](size_t i) {
      parent_[i] = static_cast<vertex_id>(i);
    });
    for (auto& l : locks_) l.clear();
  }

  bool unite(vertex_id u, vertex_id v);

  // Publish every vertex's root (call after all unions have completed).
  std::vector<vertex_id> flatten();

 private:
  void lock(vertex_id i) {
    // Test-and-test-and-set with a yield: when threads outnumber cores
    // (stress/TSan runs), a bare spin starves the preempted lock holder.
    while (locks_[i].test_and_set(std::memory_order_acquire)) {
      while (locks_[i].test(std::memory_order_relaxed)) {
        std::this_thread::yield();
      }
    }
  }
  void unlock(vertex_id i) { locks_[i].clear(std::memory_order_release); }

  std::vector<vertex_id> parent_;
  std::vector<std::atomic_flag> locks_;
};

}  // namespace pcc::baselines
