// Rem's union-find algorithm, sequential and lock-based parallel.
//
// Patwary, Refsnes and Manne's multicore spanning-forest study (the
// parallel-SF-PRM baseline of the paper) found Rem's algorithm — an
// interleaved union-find that splices the two find paths into each other —
// to be the fastest disjoint-set variant both sequentially and as the core
// of their lock-based parallel code. This header provides both flavours;
// parallel_sf_rem_components (baselines.hpp) is the connectivity entry
// point built on the parallel one.
//
// The parallel flavour is split into a non-owning `rem_view` over caller
// memory (so the registry can run it out of a workspace arena with zero
// allocations) and the original owning `parallel_rem_union_find` class,
// now a thin wrapper. Locks are plain bytes driven by cas/read_once —
// std::atomic_flag cannot live in an arena (not trivially copyable).
//
// Reference: Patwary, Blair, Manne, "Experiments on union-find algorithms
// for the disjoint-set data structure" (SEA'10); Rem's algorithm is
// exercise 2.3.3-story in Dijkstra's "A Discipline of Programming".
#pragma once

#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "parallel/atomics.hpp"
#include "parallel/defs.hpp"
#include "parallel/scheduler.hpp"

namespace pcc::baselines {

// Sequential Rem's algorithm with splicing (SPS variant). The classic
// interleaved walk: advance whichever endpoint has the smaller parent,
// splicing it onto the other side, until the walks meet or a root is
// settled. unite() returns true iff the edge merged two distinct sets.
class rem_union_find {
 public:
  explicit rem_union_find(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<vertex_id>(i);
  }

  bool unite(vertex_id u, vertex_id v) {
    while (parent_[u] != parent_[v]) {
      // Invariant-friendly orientation: work on the side with the larger
      // parent (links always point to smaller ids).
      if (parent_[u] < parent_[v]) std::swap(u, v);
      if (u == parent_[u]) {  // u is a root: link it and finish
        parent_[u] = parent_[v];
        return true;
      }
      // Splice: redirect u one step down while walking up.
      const vertex_id z = parent_[u];
      parent_[u] = parent_[v];
      u = z;
    }
    return false;
  }

  // Representative lookup (plain walk; unite() keeps paths short).
  vertex_id find(vertex_id x) const {
    while (parent_[x] != x) x = parent_[x];
    return x;
  }

  size_t size() const { return parent_.size(); }

 private:
  std::vector<vertex_id> parent_;
};

// Lock-based parallel Rem (the PRM scheme) over caller-provided parent and
// lock storage: the splicing walk runs lock-free; only the final root link
// takes the root's lock and re-checks rootness under it. Links strictly
// decrease ids, so the structure stays acyclic under concurrency — and the
// root of every set is its minimum vertex id, which makes flatten_into()'s
// labels canonical (schedule-independent).
class rem_view {
 public:
  rem_view() = default;
  rem_view(std::span<vertex_id> parent, std::span<uint8_t> locks)
      : parent_(parent), locks_(locks) {}

  // Parallel reset: every vertex its own set, all locks released.
  void init() {
    parallel::parallel_for(0, parent_.size(), [&](size_t i) {
      parent_[i] = static_cast<vertex_id>(i);  // lint: private-write(owner i)
      locks_[i] = 0;                           // lint: private-write(owner i)
    });
  }

  bool unite(vertex_id u, vertex_id v);

  // Publish every set's root into labels[v] (call after all unions have
  // completed). `labels` MAY alias the parent span: the writes are full
  // path compression, and a concurrent walker that reads a freshly
  // written root simply finishes one step later.
  void flatten_into(std::span<vertex_id> labels) const;

  size_t size() const { return parent_.size(); }

 private:
  void lock_slot(vertex_id i) {
    // Test-and-test-and-set with a yield: when threads outnumber cores
    // (stress/TSan runs), a bare spin starves the preempted lock holder.
    while (!parallel::cas(&locks_[i], uint8_t{0}, uint8_t{1})) {
      while (parallel::read_once(&locks_[i]) != 0) {
        std::this_thread::yield();
      }
    }
  }
  void unlock_slot(vertex_id i) {
    parallel::atomic_store(&locks_[i], uint8_t{0});
  }

  std::span<vertex_id> parent_;
  std::span<uint8_t> locks_;
};

// Owning wrapper kept for API compatibility with pre-registry callers.
class parallel_rem_union_find {
 public:
  explicit parallel_rem_union_find(size_t n)
      : parent_(n), locks_(n), view_(parent_, locks_) {
    view_.init();
  }

  bool unite(vertex_id u, vertex_id v) { return view_.unite(u, v); }

  // Publish every vertex's root (call after all unions have completed).
  std::vector<vertex_id> flatten() {
    std::vector<vertex_id> labels(parent_.size());
    view_.flatten_into(labels);
    return labels;
  }

 private:
  std::vector<vertex_id> parent_;
  std::vector<uint8_t> locks_;
  rem_view view_;
};

}  // namespace pcc::baselines
