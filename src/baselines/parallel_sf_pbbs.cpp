// parallel-SF-PBBS: spanning-forest connectivity via deterministic
// reservations, following the PBBS implementation (Blelloch, Fineman,
// Gibbons, Shun, PPoPP'12; benchmarked by the paper as parallel-SF-PBBS).
//
// Edges are processed speculatively in prefix batches. Each live edge
// reserves the roots of both its endpoints with a priority writeMin of its
// edge index; an edge commits (links the two roots) only if it still holds
// both reservations, otherwise it retries in a later round. The committed
// link set is therefore independent of thread scheduling.

#include "baselines/baselines.hpp"
#include "baselines/union_find.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"
#include "parallel/speculative_for.hpp"

namespace pcc::baselines {

namespace {

struct sf_step {
  // One direction of each undirected edge, gathered up front.
  const std::vector<graph::edge>& edges;
  concurrent_union_find& uf;
  std::vector<parallel::reservation>& cells;
  // Roots snapshotted by reserve() for use by commit() in the same round.
  std::vector<std::pair<vertex_id, vertex_id>>& roots;

  bool reserve(uint64_t i) {
    const auto [u, w] = edges[i];
    const vertex_id ru = uf.find_compress(u);
    const vertex_id rw = uf.find_compress(w);
    if (ru == rw) return false;  // endpoints already connected: drop
    roots[i] = {ru, rw};
    cells[ru].reserve(i);
    cells[rw].reserve(i);
    return true;
  }

  bool commit(uint64_t i) {
    const auto [ru, rw] = roots[i];
    // As in PBBS: holding EITHER root's reservation suffices — the edge
    // links the root it owns under the other one. (Requiring both would
    // serialize the merges into a popular root, e.g. a giant component's.)
    // Acyclicity: a cycle would need edges i linking ru->rw and j linking
    // rw->ru; both would have reserved both cells, so one of them holds
    // both and the other holds neither — contradiction.
    if (cells[ru].check_and_release(i)) {
      cells[rw].check_and_release(i);
      parallel::atomic_store(uf.data() + ru, rw);
      return true;
    }
    if (cells[rw].check_and_release(i)) {
      parallel::atomic_store(uf.data() + rw, ru);
      return true;
    }
    return false;  // retry in a later round
  }
};

}  // namespace

std::vector<vertex_id> parallel_sf_pbbs_components(const graph::graph& g) {
  const size_t n = g.num_vertices();

  // Gather one direction of each edge (the speculative loop needs indexed
  // random access to the edge sequence).
  std::vector<graph::edge> edges;
  edges.reserve(g.num_undirected_edges());
  {
    std::vector<size_t> offsets;
    const size_t total = parallel::scan_exclusive_into(
        n,
        [&](size_t u) {
          size_t c = 0;
          for (vertex_id w : g.neighbors(static_cast<vertex_id>(u))) {
            if (u < w) ++c;
          }
          return c;
        },
        offsets);
    edges.resize(total);
    parallel::parallel_for(0, n, [&](size_t u) {
      size_t k = offsets[u];
      for (vertex_id w : g.neighbors(static_cast<vertex_id>(u))) {
        // lint: private-write(u owns the slice [offsets[u], offsets[u+1]))
        if (u < w) edges[k++] = {static_cast<vertex_id>(u), w};
      }
    });
  }

  concurrent_union_find uf(n);
  std::vector<parallel::reservation> cells(n);
  std::vector<std::pair<vertex_id, vertex_id>> roots(edges.size());
  sf_step step{edges, uf, cells, roots};
  parallel::speculative_for(step, edges.size());
  return uf.flatten();
}

}  // namespace pcc::baselines
