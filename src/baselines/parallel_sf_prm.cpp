// parallel-SF-PRM: multicore spanning-forest connectivity in the style of
// Patwary, Refsnes, Manne, "Multi-core spanning forest algorithms using the
// disjoint-set data structure" (IPDPS'12) — the lock-based variant the
// paper benchmarks (their verification-based variant can fail to
// terminate, so the paper uses this one).
//
// Structure of the PRM code: statically partition the edges across
// threads; each thread performs unions into a shared disjoint-set
// structure, synchronizing only on root updates; finish with a parallel
// pass that publishes every vertex's root (the "post-processing step that
// finds the ID of the root of the tree for each vertex" included in the
// paper's timings).
//
// Root updates here use a short spinlock per vertex (the lock-based
// flavour of PRM); locks are ordered by vertex id so no deadlock is
// possible.

#include <atomic>
#include <thread>

#include "baselines/baselines.hpp"
#include "baselines/union_find.hpp"
#include "parallel/scheduler.hpp"

namespace pcc::baselines {

namespace {

// Minimal spinlock array; PRM guard their root links the same way.
class spinlocks {
 public:
  explicit spinlocks(size_t n) : locks_(n) {
    for (auto& l : locks_) l.clear();
  }
  void lock(vertex_id i) {
    // Test-and-test-and-set with a yield: when threads outnumber cores
    // (stress/TSan runs), a bare spin starves the preempted lock holder.
    while (locks_[i].test_and_set(std::memory_order_acquire)) {
      while (locks_[i].test(std::memory_order_relaxed)) {
        std::this_thread::yield();
      }
    }
  }
  void unlock(vertex_id i) { locks_[i].clear(std::memory_order_release); }

 private:
  std::vector<std::atomic_flag> locks_;
};

}  // namespace

std::vector<vertex_id> parallel_sf_prm_components(const graph::graph& g) {
  const size_t n = g.num_vertices();
  std::vector<vertex_id> parent(n);
  parallel::parallel_for(0, n, [&](size_t v) {
    parent[v] = static_cast<vertex_id>(v);
  });
  spinlocks locks(n);

  const auto find = [&](vertex_id x) {
    while (true) {
      const vertex_id p = parallel::atomic_load(&parent[x]);
      if (p == x) return x;
      // Path halving; racing writes all point x at an ancestor, so the
      // structure stays a forest.
      const vertex_id gp = parallel::atomic_load(&parent[p]);
      parallel::atomic_store(&parent[x], gp);
      x = gp;
    }
  };

  // Edge partitioning: parallel over vertices, one direction per edge.
  parallel::parallel_for(0, n, [&](size_t ui) {
    const vertex_id u = static_cast<vertex_id>(ui);
    for (vertex_id w : g.neighbors(u)) {
      if (u >= w) continue;
      while (true) {
        const vertex_id ru = find(u);
        const vertex_id rw = find(w);
        if (ru == rw) break;
        // Lock the larger root; link it under the smaller. Re-check
        // rootness under the lock (it may have been linked meanwhile).
        const vertex_id hi = ru > rw ? ru : rw;
        const vertex_id lo = ru > rw ? rw : ru;
        locks.lock(hi);
        const bool still_root = parallel::atomic_load(&parent[hi]) == hi;
        if (still_root) parallel::atomic_store(&parent[hi], lo);
        locks.unlock(hi);
        if (still_root) break;
        // hi stopped being a root: retry with fresh roots.
      }
    }
  });

  // Post-processing: publish the root id of every vertex, in parallel.
  std::vector<vertex_id> labels(n);
  parallel::parallel_for(0, n, [&](size_t v) {
    labels[v] = find(static_cast<vertex_id>(v));
  });
  return labels;
}

}  // namespace pcc::baselines
