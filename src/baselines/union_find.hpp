// Disjoint-set (union-find) structures: a sequential one for serial-SF and
// a concurrent one shared by the parallel spanning-forest baselines.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "parallel/atomics.hpp"
#include "parallel/defs.hpp"
#include "parallel/scheduler.hpp"

namespace pcc::baselines {

// Sequential union-find with union by rank and path halving: near-linear
// total work, the standard sequential spanning-forest substrate.
class union_find {
 public:
  explicit union_find(size_t n) : parent_(n), rank_(n, 0) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<vertex_id>(i);
  }

  vertex_id find(vertex_id x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  // Returns true iff x and y were in different sets (an edge joining them
  // belongs to the spanning forest).
  bool unite(vertex_id x, vertex_id y) {
    vertex_id rx = find(x);
    vertex_id ry = find(y);
    if (rx == ry) return false;
    if (rank_[rx] < rank_[ry]) std::swap(rx, ry);
    parent_[ry] = rx;
    if (rank_[rx] == rank_[ry]) ++rank_[rx];
    return true;
  }

  size_t size() const { return parent_.size(); }

 private:
  std::vector<vertex_id> parent_;
  std::vector<uint8_t> rank_;
};

// Concurrent union-find over a shared parent array. find() is wait-free
// reading; unite() links the larger root under the smaller with a CAS and
// retries on contention (lock-free "union by index" — a standard concurrent
// scheme with the same guarantees the lock-based PRM code relies on: roots
// only ever point to smaller ids, so no cycles form).
class concurrent_union_find {
 public:
  explicit concurrent_union_find(size_t n) : parent_(n) {
    parallel::parallel_for(0, n, [&](size_t i) {
      parent_[i] = static_cast<vertex_id>(i);
    });
  }

  vertex_id find(vertex_id x) const {
    while (true) {
      const vertex_id p = parallel::atomic_load(&parent_[x]);
      if (p == x) return x;
      x = p;
    }
  }

  // Find with path compression (safe concurrently: compression only ever
  // re-points a node at an ancestor).
  vertex_id find_compress(vertex_id x) {
    const vertex_id root = find(x);
    while (x != root) {
      const vertex_id p = parallel::atomic_load(&parent_[x]);
      parallel::atomic_store(&parent_[x], root);
      x = p;
    }
    return root;
  }

  // Concurrent union. Returns true iff this call performed the link that
  // merged two distinct sets (its edge is a spanning-forest edge).
  bool unite(vertex_id x, vertex_id y) {
    while (true) {
      vertex_id rx = find_compress(x);
      vertex_id ry = find_compress(y);
      if (rx == ry) return false;
      if (rx > ry) std::swap(rx, ry);  // link larger root under smaller
      // ry is a root; try to hang it below rx.
      if (parallel::cas(&parent_[ry], ry, rx)) return true;
      // Lost a race: ry stopped being a root; retry from the new roots.
    }
  }

  // After all unions: flatten so parent_[v] is the set representative.
  std::vector<vertex_id> flatten() {
    const size_t n = parent_.size();
    std::vector<vertex_id> labels(n);
    parallel::parallel_for(0, n, [&](size_t v) {
      labels[v] = find_compress(static_cast<vertex_id>(v));
    });
    return labels;
  }

  vertex_id* data() { return parent_.data(); }
  size_t size() const { return parent_.size(); }

 private:
  std::vector<vertex_id> parent_;
};

}  // namespace pcc::baselines
