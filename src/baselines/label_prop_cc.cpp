// label-prop-CC: pure label propagation, the connectivity algorithm found
// in diameter-bound graph-processing systems (Pegasus, GraphChi, Ligra's
// Components example). Every vertex starts with its own id; each round the
// active frontier writeMins its labels onto neighbours; vertices whose
// label shrank become the next frontier. Depth is proportional to the
// component diameter and work is super-linear — the paper cites this as
// the reason such systems underperform.
//
// Written on the Ligra-lite edge_map substrate (graph/edge_map.hpp), so
// large frontiers automatically take the read-based dense step, exactly as
// Ligra's Components example does.

#include "baselines/baselines.hpp"
#include "graph/edge_map.hpp"
#include "parallel/atomics.hpp"
#include "parallel/scheduler.hpp"

namespace pcc::baselines {

std::vector<vertex_id> label_prop_components(const graph::graph& g) {
  const size_t n = g.num_vertices();
  std::vector<vertex_id> labels(n);
  parallel::parallel_for(0, n, [&](size_t v) {
    labels[v] = static_cast<vertex_id>(v);
  });

  // The propagation relation is symmetric, so `update` works unchanged in
  // both the push and pull directions; writeMin returns true at most once
  // per (destination, round) winner, keeping sparse outputs duplicate-free
  // enough for correctness (a destination improved twice in one round may
  // appear twice on the frontier; the extra work is benign and the dense
  // representation collapses it).
  const auto update = [&](vertex_id s, vertex_id d) {
    return parallel::write_min(&labels[d], parallel::atomic_load(&labels[s]));
  };
  const auto cond = [](vertex_id) { return true; };  // never settled early

  graph::vertex_subset frontier = graph::vertex_subset::from_sparse(
      n, parallel::pack_index<vertex_id>(n, [&](size_t v) {
        return g.degree(static_cast<vertex_id>(v)) > 0;
      }));
  parallel::workspace ws;  // round scratch: flags + emission staging
  while (!frontier.empty()) {
    frontier = graph::edge_map(g, frontier, update, cond, ws);
  }
  return labels;
}

}  // namespace pcc::baselines
