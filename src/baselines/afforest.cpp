// afforest-CC: the sampling connectivity scheme of Sutton, Ben-Nun and
// Barak ("Optimizing parallel graph connectivity computation via subgraph
// sampling", IPDPS'18) — included here as a representative of the modern
// union-find-with-sampling family that followed the paper (and that
// ConnectIt later systematized).
//
// Phase 1 (neighbour rounds): for r = 0..k-1, every vertex unions itself
// with its r-th neighbour. After a couple of rounds most vertices of a
// skewed real-world graph already share one giant set.
// Phase 2 (skip the giant): sample vertices to find the most common
// representative c, then finish by processing the remaining edges ONLY for
// vertices whose representative is not c — the bulk of the edge list is
// never touched.

#include <algorithm>

#include "baselines/baselines.hpp"
#include "baselines/rem_union_find.hpp"
#include "parallel/arena.hpp"
#include "parallel/random.hpp"
#include "parallel/scheduler.hpp"

namespace pcc::baselines {

namespace {

constexpr size_t kNeighborRounds = 2;
constexpr size_t kSampleSize = 1024;

}  // namespace

void afforest_into(const graph::graph& g, uint64_t seed,
                   parallel::workspace& ws, std::span<vertex_id> labels) {
  const size_t n = g.num_vertices();
  if (n == 0) return;
  parallel::workspace::scope scope(ws);
  rem_view uf(labels, ws.take<uint8_t>(n));
  uf.init();

  // Phase 1: neighbour rounds.
  for (size_t r = 0; r < kNeighborRounds; ++r) {
    parallel::parallel_for(0, n, [&](size_t vi) {
      const vertex_id v = static_cast<vertex_id>(vi);
      const auto nbrs = g.neighbors(v);
      if (r < nbrs.size()) uf.unite(v, nbrs[r]);
    });
  }

  // Identify the (probable) giant component from a vertex sample. The
  // snapshot of representatives also serves as phase 2's membership test.
  std::span<vertex_id> reps = ws.take<vertex_id>(n);
  uf.flatten_into(reps);
  const size_t samples = std::min(kSampleSize, n);
  std::span<vertex_id> sample = ws.take<vertex_id>(samples);
  const parallel::rng gen(seed);
  for (size_t s = 0; s < samples; ++s) sample[s] = reps[gen.bounded(s, n)];
  // Mode of a 1K sample: sort + longest run (no hash map, no allocation).
  std::sort(sample.begin(), sample.end());
  vertex_id giant = sample[0];
  size_t giant_count = 0;
  for (size_t i = 0; i < samples;) {
    size_t j = i;
    while (j < samples && sample[j] == sample[i]) ++j;
    if (j - i > giant_count) {
      giant_count = j - i;
      giant = sample[i];
    }
    i = j;
  }

  // Phase 2: finish the stragglers — vertices not yet in the giant set
  // process their remaining (un-sampled) edges.
  parallel::parallel_for(0, n, [&](size_t vi) {
    const vertex_id v = static_cast<vertex_id>(vi);
    if (reps[v] == giant) return;
    const auto nbrs = g.neighbors(v);
    for (size_t i = kNeighborRounds; i < nbrs.size(); ++i) {
      uf.unite(v, nbrs[i]);
    }
  });
  uf.flatten_into(labels);
}

std::vector<vertex_id> afforest_components(const graph::graph& g) {
  std::vector<vertex_id> labels(g.num_vertices());
  parallel::workspace ws;
  afforest_into(g, /*seed=*/0xAFF0, ws, labels);
  return labels;
}

}  // namespace pcc::baselines
