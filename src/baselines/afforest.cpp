// afforest-CC: the sampling connectivity scheme of Sutton, Ben-Nun and
// Barak ("Optimizing parallel graph connectivity computation via subgraph
// sampling", IPDPS'18) — included here as a representative of the modern
// union-find-with-sampling family that followed the paper (and that
// ConnectIt later systematized).
//
// Phase 1 (neighbour rounds): for r = 0..k-1, every vertex unions itself
// with its r-th neighbour. After a couple of rounds most vertices of a
// skewed real-world graph already share one giant set.
// Phase 2 (skip the giant): sample vertices to find the most common
// representative c, then finish by processing the remaining edges ONLY for
// vertices whose representative is not c — the bulk of the edge list is
// never touched.

#include <unordered_map>

#include "baselines/baselines.hpp"
#include "baselines/rem_union_find.hpp"
#include "parallel/random.hpp"
#include "parallel/scheduler.hpp"

namespace pcc::baselines {

namespace {

constexpr size_t kNeighborRounds = 2;
constexpr size_t kSampleSize = 1024;

}  // namespace

std::vector<vertex_id> afforest_components(const graph::graph& g) {
  const size_t n = g.num_vertices();
  parallel_rem_union_find uf(n);
  if (n == 0) return {};

  // Phase 1: neighbour rounds.
  for (size_t r = 0; r < kNeighborRounds; ++r) {
    parallel::parallel_for(0, n, [&](size_t vi) {
      const vertex_id v = static_cast<vertex_id>(vi);
      const auto nbrs = g.neighbors(v);
      if (r < nbrs.size()) uf.unite(v, nbrs[r]);
    });
  }

  // Identify the (probable) giant component from a vertex sample.
  auto labels = uf.flatten();
  const parallel::rng gen(0xAFF0);
  std::unordered_map<vertex_id, size_t> counts;
  for (size_t s = 0; s < kSampleSize; ++s) {
    ++counts[labels[gen.bounded(s, n)]];
  }
  vertex_id giant = labels[0];
  size_t giant_count = 0;
  for (const auto& [rep, c] : counts) {
    if (c > giant_count) {
      giant = rep;
      giant_count = c;
    }
  }

  // Phase 2: finish the stragglers — vertices not yet in the giant set
  // process their remaining (un-sampled) edges.
  parallel::parallel_for(0, n, [&](size_t vi) {
    const vertex_id v = static_cast<vertex_id>(vi);
    if (labels[v] == giant) return;
    const auto nbrs = g.neighbors(v);
    for (size_t i = kNeighborRounds; i < nbrs.size(); ++i) {
      uf.unite(v, nbrs[i]);
    }
  });
  return uf.flatten();
}

}  // namespace pcc::baselines
