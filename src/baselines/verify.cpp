#include "baselines/verify.hpp"

#include <unordered_map>

#include "graph/stats.hpp"

namespace pcc::baselines {

bool labels_equivalent(const std::vector<vertex_id>& a,
                       const std::vector<vertex_id>& b) {
  if (a.size() != b.size()) return false;
  // Same partition <=> the label maps a->b and b->a are both functions.
  std::unordered_map<vertex_id, vertex_id> fwd;
  std::unordered_map<vertex_id, vertex_id> bwd;
  for (size_t v = 0; v < a.size(); ++v) {
    if (const auto [it, inserted] = fwd.try_emplace(a[v], b[v]);
        !inserted && it->second != b[v]) {
      return false;
    }
    if (const auto [it, inserted] = bwd.try_emplace(b[v], a[v]);
        !inserted && it->second != a[v]) {
      return false;
    }
  }
  return true;
}

bool is_valid_components_labeling(const graph::graph& g,
                                  const std::vector<vertex_id>& labels) {
  if (labels.size() != g.num_vertices()) return false;
  return labels_equivalent(labels, graph::reference_components(g));
}

bool labels_are_representatives(const std::vector<vertex_id>& labels) {
  // label L names component {v : labels[v] == L}; L must be a member.
  for (size_t v = 0; v < labels.size(); ++v) {
    const vertex_id l = labels[v];
    if (l >= labels.size() || labels[l] != l) return false;
  }
  return true;
}

}  // namespace pcc::baselines
