// Edge-list -> CSR builder.
#pragma once

#include <cstdint>
#include <span>

#include "graph/graph.hpp"
#include "parallel/arena.hpp"

namespace pcc::graph {

struct build_options {
  // Add the reverse of every edge so the CSR stores both directions.
  bool symmetrize = true;
  // Drop (u, u) edges.
  bool remove_self_loops = true;
  // Drop duplicate directed edges after symmetrization.
  bool remove_duplicates = true;
};

// Build a CSR graph over vertices [0, n) from a directed edge list.
// Runs in parallel: radix sort by (source, target), adjacent dedup, and a
// scan for the offsets. Edges referencing vertices >= n are invalid
// (asserted in debug builds).
graph from_edges(size_t n, edge_list edges, const build_options& opt = {});

// Same pipeline starting from already-packed directed edges
// ((u << 32) | v), skipping from_edges' packing pass. The caller is
// responsible for having materialized both directions if it wants a
// symmetric graph (opt.symmetrize is ignored); the parallel SNAP loader
// uses this to avoid one full copy of the edge array.
graph from_packed_edges(size_t n, std::vector<uint64_t> packed,
                        const build_options& opt = {});

// Build directly from sorted CSR pieces without checks (internal use by
// contraction, which guarantees its invariants).
graph from_sorted_pairs(size_t n, const std::vector<uint64_t>& packed_pairs);

// CSR pieces built into caller-provided arena storage (mutable so the
// engine can run decompositions over them in place).
struct csr_spans {
  std::span<edge_id> offsets;   // size n+1
  std::span<vertex_id> edges;   // size m
};

// Workspace-backed twin of from_sorted_pairs: the offsets and edge arrays
// are carved from `out_ws` (they outlive the call), the per-vertex counts
// and scan temporaries from `scratch_ws` (rewound before returning).
csr_spans from_sorted_pairs_into(size_t n,
                                 std::span<const uint64_t> packed_pairs,
                                 parallel::workspace& out_ws,
                                 parallel::workspace& scratch_ws);

// Apply a random permutation to the vertex ids of g (the paper randomly
// assigns vertex labels of the synthetic inputs to destroy memory locality).
graph relabel_randomly(const graph& g, uint64_t seed);

}  // namespace pcc::graph
