#include "graph/builder.hpp"

#include <cassert>

#include "parallel/atomics.hpp"
#include "parallel/integer_sort.hpp"
#include "parallel/random.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::graph {

namespace {

using parallel::parallel_for;

// Pack a directed edge into one 64-bit key so one radix sort orders the
// whole list by (source, target).
inline uint64_t pack_edge(vertex_id u, vertex_id v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}
inline vertex_id edge_src(uint64_t p) { return static_cast<vertex_id>(p >> 32); }
inline vertex_id edge_tgt(uint64_t p) { return static_cast<vertex_id>(p); }

// CSR from a (source, target)-sorted, deduplicated packed edge array.
graph csr_from_sorted(size_t n, const std::vector<uint64_t>& sorted) {
  const size_t m = sorted.size();
  // counts[u] = out-degree of u.
  std::vector<edge_id> counts(n, 0);
  parallel_for(0, m, [&](size_t i) {
    parallel::fetch_add<edge_id>(&counts[edge_src(sorted[i])], 1);
  });
  std::vector<edge_id> offsets(n + 1);
  edge_id total = 0;
  std::vector<edge_id> scanned;
  total = parallel::scan_exclusive_into(
      n, [&](size_t i) { return counts[i]; }, scanned);
  parallel_for(0, n, [&](size_t i) { offsets[i] = scanned[i]; });
  offsets[n] = total;
  assert(total == m);
  std::vector<vertex_id> edges(m);
  parallel_for(0, m, [&](size_t i) { edges[i] = edge_tgt(sorted[i]); });
  return graph(std::move(offsets), std::move(edges));
}

}  // namespace

graph from_edges(size_t n, edge_list edges, const build_options& opt) {
  assert(n <= kMaxVertices);
  const size_t m_in = edges.size();

  std::vector<uint64_t> packed;
  packed.resize(opt.symmetrize ? 2 * m_in : m_in);
  parallel_for(0, m_in, [&](size_t i) {
    const auto [u, v] = edges[i];
    assert(u < n && v < n);
    packed[i] = pack_edge(u, v);
    // lint: private-write(m_in + i is injective in i)
    if (opt.symmetrize) packed[m_in + i] = pack_edge(v, u);
  });
  edges.clear();
  edges.shrink_to_fit();
  return from_packed_edges(n, std::move(packed), opt);
}

graph from_packed_edges(size_t n, std::vector<uint64_t> packed,
                        const build_options& opt) {
  assert(n <= kMaxVertices);
  if (opt.remove_self_loops) {
    packed = parallel::filter(
        packed, [](uint64_t p) { return edge_src(p) != edge_tgt(p); });
  }

  // Sort by (source, target). The packed key keeps source in the high
  // 32 bits, so compact it through an extractor: a plain low-bits radix
  // sort would never reach the source field.
  const int b = parallel::bits_needed(n == 0 ? 1 : n);
  const uint64_t tmask = b >= 32 ? ~uint32_t{0} : (uint64_t{1} << b) - 1;
  parallel::integer_sort(packed, 2 * b, [b, tmask](uint64_t p) {
    return ((p >> 32) << b) | (p & tmask);
  });

  if (opt.remove_duplicates) {
    packed = parallel::pack(packed, [&](size_t i) {
      return i == 0 || packed[i] != packed[i - 1];
    });
  }
  return csr_from_sorted(n, packed);
}

graph from_sorted_pairs(size_t n, const std::vector<uint64_t>& packed_pairs) {
  return csr_from_sorted(n, packed_pairs);
}

csr_spans from_sorted_pairs_into(size_t n,
                                 std::span<const uint64_t> sorted,
                                 parallel::workspace& out_ws,
                                 parallel::workspace& scratch_ws) {
  const size_t m = sorted.size();
  std::span<edge_id> offsets = out_ws.take<edge_id>(n + 1);
  std::span<vertex_id> edges = out_ws.take<vertex_id>(m);
  {
    parallel::workspace::scope s(scratch_ws);
    std::span<edge_id> counts = scratch_ws.take_zeroed<edge_id>(n);
    parallel_for(0, m, [&](size_t i) {
      parallel::fetch_add<edge_id>(&counts[edge_src(sorted[i])], 1);
    });
    const edge_id total = parallel::scan_exclusive_span<edge_id>(
        n, [&](size_t i) { return counts[i]; }, offsets, scratch_ws);
    offsets[n] = total;
    assert(total == m);
    (void)total;
  }
  parallel_for(0, m, [&](size_t i) { edges[i] = edge_tgt(sorted[i]); });
  return {offsets, edges};
}

graph relabel_randomly(const graph& g, uint64_t seed) {
  const size_t n = g.num_vertices();
  const std::vector<vertex_id> perm = parallel::random_permutation(n, seed);
  // perm[old] = new id.
  edge_list edges(g.num_edges());
  parallel_for(0, n, [&](size_t u) {
    const edge_id base = g.offset(static_cast<vertex_id>(u));
    const auto nbrs = g.neighbors(static_cast<vertex_id>(u));
    for (size_t j = 0; j < nbrs.size(); ++j) {
      // lint: private-write(u owns the slice [offset(u), offset(u+1)))
      edges[base + j] = {perm[u], perm[nbrs[j]]};
    }
  });
  // Both directions are already present in the source graph.
  return from_edges(n, std::move(edges),
                    {.symmetrize = false,
                     .remove_self_loops = false,
                     .remove_duplicates = false});
}

}  // namespace pcc::graph
