#include "graph/reorder.hpp"

#include <cassert>
#include <cstring>

#include "parallel/integer_sort.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::graph {

namespace {

using parallel::parallel_for;

// Scatter perm from inv: inv is a permutation, so every write lands on a
// distinct slot.
void perm_from_inv(std::span<const vertex_id> inv, std::span<vertex_id> perm) {
  parallel_for(0, inv.size(), [&](size_t i) {
    // lint: private-write(inv is a permutation, injective in i)
    perm[inv[i]] = static_cast<vertex_id>(i);
  });
}

void identity_perm(std::span<vertex_id> perm, std::span<vertex_id> inv) {
  parallel_for(0, perm.size(), [&](size_t v) {
    perm[v] = static_cast<vertex_id>(v);  // lint: private-write(owner index v)
    inv[v] = static_cast<vertex_id>(v);   // lint: private-write(owner index v)
  });
}

// Degree-descending order, ties in original id order: one stable radix
// sort of (max_degree - degree) keys over the vertex ids. The id rides in
// the low 32 bits of the packed key, so the sort only touches the degree
// field and stability keeps ties in id order.
void degree_order_into(const graph& g, std::span<vertex_id> perm,
                       std::span<vertex_id> inv, parallel::workspace& ws) {
  const size_t n = g.num_vertices();
  parallel::workspace::scope s(ws);
  const size_t max_degree = parallel::reduce_ws<size_t>(
      n, [&](size_t v) { return g.degree(static_cast<vertex_id>(v)); },
      size_t{0}, [](size_t a, size_t b) { return a < b ? b : a; }, ws);
  std::span<uint64_t> keyed = ws.take<uint64_t>(n);
  parallel_for(0, n, [&](size_t v) {
    const uint64_t anti = max_degree - g.degree(static_cast<vertex_id>(v));
    // lint: private-write(owner index v)
    keyed[v] = (anti << 32) | v;
  });
  parallel::integer_sort_span(
      keyed, parallel::bits_needed(max_degree + 1),
      [](uint64_t p) { return p >> 32; }, ws);
  parallel_for(0, n, [&](size_t i) {
    // lint: private-write(owner index i)
    inv[i] = static_cast<vertex_id>(keyed[i] & 0xFFFFFFFFull);
  });
  perm_from_inv(inv, perm);
}

// Hubs packed first (original relative order), tails after them (original
// relative order): two stable index packs.
void hub_cluster_into(const graph& g, std::span<vertex_id> perm,
                      std::span<vertex_id> inv, parallel::workspace& ws) {
  const size_t n = g.num_vertices();
  const size_t threshold = hub_degree_threshold(g);
  const auto is_hub = [&](size_t v) {
    return g.degree(static_cast<vertex_id>(v)) >= threshold;
  };
  const size_t num_hubs = parallel::pack_index_span<vertex_id>(
      n, is_hub, inv, ws);
  parallel::pack_index_span<vertex_id>(
      n, [&](size_t v) { return !is_hub(v); }, inv.subspan(num_hubs), ws);
  perm_from_inv(inv, perm);
}

// BFS visit order. Roots are taken in increasing original id over the
// unvisited vertices, and each frontier expands in visit order with
// neighbours in adjacency order — fully deterministic. The walk itself is
// sequential (a parallel frontier would need tie-breaking to stay
// deterministic); the perm scatter and the relabel pass that follows are
// parallel, and this mode is an opt-in for mesh-shaped inputs rather than
// part of any hot path.
void bfs_order_into(const graph& g, std::span<vertex_id> perm,
                    std::span<vertex_id> inv, parallel::workspace& ws) {
  const size_t n = g.num_vertices();
  parallel::workspace::scope s(ws);
  std::span<uint8_t> visited = ws.take_zeroed<uint8_t>(n);
  size_t head = 0;  // inv[0, head) doubles as the BFS queue
  size_t tail = 0;
  for (size_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    visited[root] = 1;
    inv[tail++] = static_cast<vertex_id>(root);
    while (head < tail) {
      const vertex_id u = inv[head++];
      for (const vertex_id w : g.neighbors(u)) {
        if (!visited[w]) {
          visited[w] = 1;
          inv[tail++] = w;
        }
      }
    }
  }
  assert(tail == n);
  perm_from_inv(inv, perm);
}

}  // namespace

const char* reorder_name(reorder_mode m) {
  switch (m) {
    case reorder_mode::kNone:
      return "none";
    case reorder_mode::kDegree:
      return "degree";
    case reorder_mode::kHub:
      return "hub";
    case reorder_mode::kBfs:
      return "bfs";
  }
  return "?";
}

bool reorder_from_name(std::string_view name, reorder_mode* out) {
  for (const reorder_mode m :
       {reorder_mode::kNone, reorder_mode::kDegree, reorder_mode::kHub,
        reorder_mode::kBfs}) {
    if (name == reorder_name(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

size_t hub_degree_threshold(const graph& g) {
  const size_t n = g.num_vertices();
  if (n == 0) return kHubMinDegree;
  // Ceiling of the average directed degree, so threshold >= 1 on any
  // non-empty graph and the factor scales with density.
  const size_t avg_ceil = (g.num_edges() + n - 1) / n;
  const size_t scaled = kHubDegreeFactor * std::max<size_t>(avg_ceil, 1);
  return std::max(kHubMinDegree, scaled);
}

void build_reorder_perm_into(const graph& g, reorder_mode mode,
                             std::span<vertex_id> perm,
                             std::span<vertex_id> inv,
                             parallel::workspace& ws) {
  assert(perm.size() == g.num_vertices() && inv.size() == g.num_vertices());
  switch (mode) {
    case reorder_mode::kNone:
      identity_perm(perm, inv);
      return;
    case reorder_mode::kDegree:
      degree_order_into(g, perm, inv, ws);
      return;
    case reorder_mode::kHub:
      hub_cluster_into(g, perm, inv, ws);
      return;
    case reorder_mode::kBfs:
      bfs_order_into(g, perm, inv, ws);
      return;
  }
}

void relabel_into(const graph& g, std::span<const vertex_id> perm,
                  std::span<const vertex_id> inv,
                  std::vector<edge_id>& offsets, std::vector<vertex_id>& edges,
                  parallel::workspace& ws) {
  const size_t n = g.num_vertices();
  const size_t m = g.num_edges();
  offsets.resize(n + 1);
  edges.resize(m);
  const edge_id total = parallel::scan_exclusive_span<edge_id>(
      n,
      [&](size_t v) {
        return static_cast<edge_id>(g.degree(inv[v]));
      },
      std::span<edge_id>(offsets), ws);
  offsets[n] = total;
  assert(total == m);
  (void)total;
  parallel_for(0, n, [&](size_t v) {
    const std::span<const vertex_id> nbrs = g.neighbors(inv[v]);
    const edge_id base = offsets[v];
    for (size_t j = 0; j < nbrs.size(); ++j) {
      // lint: private-write(v owns the slice [offsets[v], offsets[v+1]))
      edges[base + j] = perm[nbrs[j]];
    }
  });
}

reorder_result reorder_graph(const graph& g, reorder_mode mode) {
  const size_t n = g.num_vertices();
  reorder_result out;
  out.perm.resize(n);
  out.inv.resize(n);
  parallel::workspace ws;
  build_reorder_perm_into(g, mode, out.perm, out.inv, ws);
  std::vector<edge_id> offsets;
  std::vector<vertex_id> edges;
  relabel_into(g, out.perm, out.inv, offsets, edges, ws);
  out.g = graph(std::move(offsets), std::move(edges));
  return out;
}

void map_labels_to_original(std::span<const vertex_id> labels_new,
                            std::span<const vertex_id> perm,
                            std::span<const vertex_id> inv,
                            std::span<vertex_id> out) {
  assert(labels_new.size() == perm.size() && out.size() == perm.size());
  parallel_for(0, perm.size(), [&](size_t v) {
    // lint: private-write(owner index v)
    out[v] = inv[labels_new[perm[v]]];
  });
}

}  // namespace pcc::graph
