// vertex_subset: a set of vertices with dual sparse (id list) and dense
// (flag array) representations, converted lazily — the frontier abstraction
// of Ligra [Shun-Blelloch PPoPP'13], which the paper's hybrid-BFS-CC
// baseline and direction-optimizing traversals are built on.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "parallel/defs.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::graph {

class vertex_subset {
 public:
  vertex_subset() = default;

  // The empty subset of a universe of n vertices.
  static vertex_subset empty(size_t n) {
    vertex_subset s;
    s.n_ = n;
    s.has_sparse_ = true;
    return s;
  }

  // Singleton {v}.
  static vertex_subset single(size_t n, vertex_id v) {
    vertex_subset s = empty(n);
    s.sparse_ = {v};
    s.count_ = 1;
    return s;
  }

  // Every vertex of the universe.
  static vertex_subset all(size_t n) {
    vertex_subset s;
    s.n_ = n;
    s.dense_.assign(n, 1);
    s.has_dense_ = true;
    s.count_ = n;
    return s;
  }

  static vertex_subset from_sparse(size_t n, std::vector<vertex_id> ids) {
    vertex_subset s;
    s.n_ = n;
    s.count_ = ids.size();
    s.sparse_ = std::move(ids);
    s.has_sparse_ = true;
    return s;
  }

  // flags.size() == n; count computed if not supplied.
  static vertex_subset from_dense(std::vector<uint8_t> flags,
                                  size_t count = SIZE_MAX) {
    vertex_subset s;
    s.n_ = flags.size();
    s.dense_ = std::move(flags);
    s.has_dense_ = true;
    s.count_ = count != SIZE_MAX
                   ? count
                   : parallel::count_if_index(
                         s.n_, [&](size_t v) { return s.dense_[v] != 0; });
    return s;
  }

  size_t universe_size() const { return n_; }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Which views exist without materialization — lets workspace-backed
  // callers (edge_map) build the missing view in scratch storage instead
  // of triggering the cached O(n) allocation here.
  bool sparse_ready() const { return has_sparse_; }
  bool dense_ready() const { return has_dense_; }

  // Fraction of the universe on the frontier (the dense/sparse switch
  // criterion; the paper switches above 20%).
  double density() const {
    return n_ == 0 ? 0.0
                   : static_cast<double>(count_) / static_cast<double>(n_);
  }

  // Sparse view; materializes (O(n)) if only dense exists.
  const std::vector<vertex_id>& sparse() const {
    if (!has_sparse_) {
      sparse_ = parallel::pack_index<vertex_id>(
          n_, [&](size_t v) { return dense_[v] != 0; });
      has_sparse_ = true;
    }
    return sparse_;
  }

  // Dense view; materializes (O(n)) if only sparse exists.
  const std::vector<uint8_t>& dense() const {
    if (!has_dense_) {
      dense_.assign(n_, 0);
      parallel::parallel_for(0, sparse_.size(), [&](size_t i) {
        // lint: private-write(sparse_ holds distinct vertex ids)
        dense_[sparse_[i]] = 1;
      });
      has_dense_ = true;
    }
    return dense_;
  }

  // Membership; materializes the dense view on first use.
  bool contains(vertex_id v) const { return dense()[v] != 0; }

  // Apply f to every member (parallel; uses whichever view exists).
  template <typename F>
  void for_each(F&& f) const {
    if (has_sparse_) {
      parallel::parallel_for(0, sparse_.size(),
                             [&](size_t i) { f(sparse_[i]); });
    } else {
      parallel::parallel_for(0, n_, [&](size_t v) {
        if (dense_[v]) f(static_cast<vertex_id>(v));
      });
    }
  }

 private:
  size_t n_ = 0;
  size_t count_ = 0;
  mutable std::vector<vertex_id> sparse_;
  mutable std::vector<uint8_t> dense_;
  mutable bool has_sparse_ = false;
  mutable bool has_dense_ = false;
};

}  // namespace pcc::graph
