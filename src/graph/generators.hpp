// Synthetic graph generators covering every input class in Table 1 of the
// paper plus structured helpers used by the tests and examples.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pcc::graph {

// `random` input: every vertex draws `degree` neighbours uniformly at
// random; symmetrized and deduplicated (PBBS randomGraph analogue).
graph random_graph(size_t n, size_t degree, uint64_t seed);

// R-MAT power-law generator (Chakrabarti, Zhan, Faloutsos, SDM'04) with the
// standard (a, b, c) partition probabilities. `n` is rounded up to a power
// of two internally; `num_edges` directed edges are sampled, then the graph
// is symmetrized and deduplicated. The paper's `rMat` input uses m = 5n and
// its dense `rMat2` a much higher edge-to-vertex ratio.
struct rmat_options {
  double a = 0.5;
  double b = 0.1;
  double c = 0.1;
  // d = 1 - a - b - c.
  // Perturb the quadrant probabilities per level (smooths degree spikes).
  bool noise = true;
};
graph rmat_graph(size_t n, size_t num_edges, uint64_t seed,
                 const rmat_options& opt = {});

// `3D-grid` input: vertices on a side^3 torus, six neighbours each (two per
// dimension). If randomize_labels, vertex ids are randomly permuted as in
// the paper's experimental setup.
graph grid3d_graph(size_t n, bool randomize_labels = true, uint64_t seed = 1);

// `line` input: a path of n vertices (diameter n - 1), the paper's
// worst-case high-diameter graph.
graph line_graph(size_t n, bool randomize_labels = false, uint64_t seed = 1);

// Stand-in for com-Orkut (see DESIGN.md substitutions): a skewed, dense,
// low-diameter social-network-like graph — R-MAT at com-Orkut's
// edge-to-vertex ratio (~38) with randomized labels.
graph social_network_like(size_t n, uint64_t seed);

// --- Structured graphs for tests and examples. ---

// Graph with n vertices and no edges.
graph empty_graph(size_t n);
// Single cycle through all n vertices (n >= 3).
graph cycle_graph(size_t n);
// Star: vertex 0 connected to all others.
graph star_graph(size_t n);
// Complete graph on n vertices.
graph complete_graph(size_t n);
// Complete binary tree on n vertices (parent i/2 convention).
graph binary_tree_graph(size_t n);
// 2-D grid (no wraparound), rows x cols vertices.
graph grid2d_graph(size_t rows, size_t cols);
// `count` cliques of `clique_size` vertices, consecutive cliques joined by
// a single bridge edge — one big component with dense local structure.
graph cliques_with_bridges(size_t count, size_t clique_size);
// Disjoint union of the given graphs (vertex ids offset in order).
graph disjoint_union(const std::vector<graph>& parts);
// Erdos-Renyi G(n, p) for small n (tests only; O(n^2) work).
graph erdos_renyi(size_t n, double p, uint64_t seed);

}  // namespace pcc::graph
