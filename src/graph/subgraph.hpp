// Subgraph extraction utilities built on the connectivity labeling:
// induced subgraphs, per-component extraction, largest component.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace pcc::graph {

// The subgraph induced by the vertices with keep[v] != 0, with vertices
// renumbered compactly in increasing original-id order. `old_ids` (if
// non-null) receives the original id of each new vertex.
graph induced_subgraph(const graph& g, const std::vector<uint8_t>& keep,
                       std::vector<vertex_id>* old_ids = nullptr);

// The subgraph induced by one component of a labeling (the component whose
// label is `component_label`).
graph extract_component(const graph& g, const std::vector<vertex_id>& labels,
                        vertex_id component_label,
                        std::vector<vertex_id>* old_ids = nullptr);

// The largest connected component (ties broken toward the smaller label).
// Labels sequentially for convenience; for big graphs run
// pcc::cc::connected_components yourself and call extract_component.
graph largest_component(const graph& g,
                        std::vector<vertex_id>* old_ids = nullptr);

}  // namespace pcc::graph
