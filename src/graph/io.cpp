#include "graph/io.hpp"

#include <charconv>
#include <cstring>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "graph/builder.hpp"

namespace pcc::graph {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("graph io: " + path + ": " + what);
}

uint64_t next_number(std::istream& in, const std::string& path,
                     const char* what) {
  uint64_t x = 0;
  if (!(in >> x)) fail(path, std::string("expected ") + what);
  return x;
}

}  // namespace

graph read_adjacency_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open");
  std::string header;
  if (!(in >> header) || header != "AdjacencyGraph") {
    fail(path, "missing AdjacencyGraph header");
  }
  const uint64_t n = next_number(in, path, "vertex count");
  const uint64_t m = next_number(in, path, "edge count");
  if (n > kMaxVertices) fail(path, "too many vertices");

  std::vector<edge_id> offsets(n + 1);
  for (uint64_t i = 0; i < n; ++i) {
    offsets[i] = next_number(in, path, "offset");
    if (offsets[i] > m) fail(path, "offset out of range");
  }
  offsets[n] = m;
  for (uint64_t i = 1; i < n; ++i) {
    if (offsets[i] < offsets[i - 1]) fail(path, "offsets not monotone");
  }
  std::vector<vertex_id> edges(m);
  for (uint64_t i = 0; i < m; ++i) {
    const uint64_t t = next_number(in, path, "edge target");
    if (t >= n) fail(path, "edge target out of range");
    edges[i] = static_cast<vertex_id>(t);
  }
  return graph(std::move(offsets), std::move(edges));
}

void write_adjacency_graph(const graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open for writing");
  out << "AdjacencyGraph\n" << g.num_vertices() << '\n' << g.num_edges() << '\n';
  for (size_t i = 0; i < g.num_vertices(); ++i) {
    out << g.offset(static_cast<vertex_id>(i)) << '\n';
  }
  for (vertex_id t : g.edges()) out << t << '\n';
  if (!out) fail(path, "write failed");
}

graph read_snap_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open");
  edge_list raw;
  std::unordered_map<uint64_t, vertex_id> compact;
  const auto to_id = [&](uint64_t x) {
    auto [it, inserted] =
        compact.try_emplace(x, static_cast<vertex_id>(compact.size()));
    (void)inserted;
    return it->second;
  };
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    uint64_t u = 0;
    uint64_t v = 0;
    if (!(ls >> u >> v)) {
      fail(path, "malformed edge at line " + std::to_string(lineno));
    }
    raw.push_back({to_id(u), to_id(v)});
  }
  return from_edges(compact.size(), std::move(raw));
}

void write_edge_list(const graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open for writing");
  out << "# undirected; each edge listed once (u < v)\n";
  for (size_t u = 0; u < g.num_vertices(); ++u) {
    for (vertex_id v : g.neighbors(static_cast<vertex_id>(u))) {
      if (u < v) out << u << '\t' << v << '\n';
    }
  }
  if (!out) fail(path, "write failed");
}

}  // namespace pcc::graph

namespace pcc::graph {
namespace {

constexpr char kBinaryMagic[4] = {'P', 'C', 'C', 'G'};

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::ifstream& in, const std::string& path, T* v,
              const char* what) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  if (!in) fail(path, std::string("truncated reading ") + what);
}

}  // namespace

graph read_binary_graph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open");
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kBinaryMagic, 4) != 0) {
    fail(path, "bad magic (not a pcc binary graph)");
  }
  uint64_t n = 0;
  uint64_t m = 0;
  read_pod(in, path, &n, "vertex count");
  read_pod(in, path, &m, "edge count");
  if (n > kMaxVertices) fail(path, "too many vertices");
  std::vector<edge_id> offsets(n + 1);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>((n + 1) * sizeof(edge_id)));
  if (!in) fail(path, "truncated offsets");
  if (offsets[0] != 0 || offsets[n] != m) fail(path, "inconsistent offsets");
  for (uint64_t i = 0; i < n; ++i) {
    if (offsets[i] > offsets[i + 1]) fail(path, "offsets not monotone");
  }
  std::vector<vertex_id> edges(m);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(m * sizeof(vertex_id)));
  if (!in) fail(path, "truncated edges");
  for (vertex_id t : edges) {
    if (t >= n) fail(path, "edge target out of range");
  }
  return graph(std::move(offsets), std::move(edges));
}

void write_binary_graph(const graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(path, "cannot open for writing");
  out.write(kBinaryMagic, 4);
  write_pod(out, static_cast<uint64_t>(g.num_vertices()));
  write_pod(out, static_cast<uint64_t>(g.num_edges()));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() * sizeof(edge_id)));
  out.write(reinterpret_cast<const char*>(g.edges().data()),
            static_cast<std::streamsize>(g.edges().size() * sizeof(vertex_id)));
  if (!out) fail(path, "write failed");
}

}  // namespace pcc::graph
