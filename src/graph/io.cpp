#include "graph/io.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#if __has_include(<sys/mman.h>)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define PCC_HAVE_MMAP 1
#else
#define PCC_HAVE_MMAP 0
#endif

#include "graph/builder.hpp"
#include "parallel/hash_map.hpp"
#include "parallel/sample_sort.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::graph {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("graph io: " + path + ": " + what);
}

// istream's default whitespace set under the "C" locale ('\t'..'\r' plus
// space); the parallel tokenizer must agree with the serial `operator>>`
// readers byte for byte. Two compares so the tokenizing loops stay cheap.
inline bool is_ws(char c) { return c == ' ' || (c >= '\t' && c <= '\r'); }

uint64_t next_number(std::istream& in, const std::string& path,
                     const char* what) {
  uint64_t x = 0;
  if (!(in >> x)) fail(path, std::string("expected ") + what);
  return x;
}

// ---------------------------------------------------------------------------
// Mapped input: mmap the file read-only, falling back to buffered read()
// when mmap is unavailable, fails, or is disabled via io_options.
// ---------------------------------------------------------------------------

class input_buffer {
 public:
  input_buffer() = default;
  input_buffer(input_buffer&& o) noexcept { *this = std::move(o); }
  input_buffer& operator=(input_buffer&& o) noexcept {
    if (this != &o) {
      release();
      data_ = o.data_;
      size_ = o.size_;
      mapped_ = o.mapped_;
      owned_ = std::move(o.owned_);
      o.data_ = nullptr;
      o.size_ = 0;
      o.mapped_ = false;
    }
    return *this;
  }
  input_buffer(const input_buffer&) = delete;
  input_buffer& operator=(const input_buffer&) = delete;
  ~input_buffer() { release(); }

  static input_buffer open(const std::string& path, bool use_mmap);

  const char* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  void release() {
#if PCC_HAVE_MMAP
    if (mapped_ && data_ != nullptr) {
      ::munmap(const_cast<char*>(data_), size_);
    }
#endif
    data_ = nullptr;
    size_ = 0;
    mapped_ = false;
    owned_.clear();
  }

  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<char> owned_;
};

input_buffer input_buffer::open(const std::string& path, bool use_mmap) {
  input_buffer buf;
#if PCC_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, "cannot open");
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(path, "cannot stat");
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    fail(path, "not a regular file");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (use_mmap && size > 0) {
    void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p != MAP_FAILED) {
      ::close(fd);
      buf.data_ = static_cast<const char*>(p);
      buf.size_ = size;
      buf.mapped_ = true;
      return buf;
    }
  }
  buf.owned_.resize(size);
  size_t got = 0;
  while (got < size) {
    const ssize_t r = ::read(fd, buf.owned_.data() + got, size - got);
    if (r < 0) {
      ::close(fd);
      fail(path, "read failed");
    }
    if (r == 0) break;
    got += static_cast<size_t>(r);
  }
  ::close(fd);
  buf.owned_.resize(got);
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open");
  buf.owned_.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
#endif
  buf.data_ = buf.owned_.data();
  buf.size_ = buf.owned_.size();
  return buf;
}

// ---------------------------------------------------------------------------
// Checksum: XXH64 (Yann Collet's public-domain algorithm), applied per
// fixed-size block with a final XXH64 over the block digests so writer and
// reader can both compute it with parallel_for. Not byte-compatible with
// streaming XXH64 — it is *the* checksum of the "PCC2" format, nothing else.
// ---------------------------------------------------------------------------

constexpr uint64_t kXxP1 = 0x9E3779B185EBCA87ull;
constexpr uint64_t kXxP2 = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kXxP3 = 0x165667B19E3779F9ull;
constexpr uint64_t kXxP4 = 0x85EBCA77C2B2AE63ull;
constexpr uint64_t kXxP5 = 0x27D4EB2F165667C5ull;

inline uint64_t rotl64(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t xx_read64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline uint32_t xx_read32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t xx_round(uint64_t acc, uint64_t input) {
  acc += input * kXxP2;
  acc = rotl64(acc, 31);
  return acc * kXxP1;
}

inline uint64_t xx_merge(uint64_t h, uint64_t v) {
  h ^= xx_round(0, v);
  return h * kXxP1 + kXxP4;
}

uint64_t xxh64(const char* p, size_t len, uint64_t seed) {
  const char* const end = p + len;
  uint64_t h;
  if (len >= 32) {
    uint64_t v1 = seed + kXxP1 + kXxP2;
    uint64_t v2 = seed + kXxP2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kXxP1;
    do {
      v1 = xx_round(v1, xx_read64(p));
      v2 = xx_round(v2, xx_read64(p + 8));
      v3 = xx_round(v3, xx_read64(p + 16));
      v4 = xx_round(v4, xx_read64(p + 24));
      p += 32;
    } while (p + 32 <= end);
    h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18);
    h = xx_merge(h, v1);
    h = xx_merge(h, v2);
    h = xx_merge(h, v3);
    h = xx_merge(h, v4);
  } else {
    h = seed + kXxP5;
  }
  h += len;
  while (p + 8 <= end) {
    h ^= xx_round(0, xx_read64(p));
    h = rotl64(h, 27) * kXxP1 + kXxP4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(xx_read32(p)) * kXxP1;
    h = rotl64(h, 23) * kXxP2 + kXxP3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(static_cast<uint8_t>(*p)) * kXxP5;
    h = rotl64(h, 11) * kXxP1;
    ++p;
  }
  h ^= h >> 33;
  h *= kXxP2;
  h ^= h >> 29;
  h *= kXxP3;
  h ^= h >> 32;
  return h;
}

constexpr size_t kSumBlock = size_t{1} << 23;  // 8 MiB per digest block
constexpr uint64_t kSumSeed = 0x50434332ull;   // "PCC2"

uint64_t chunked_xxh64(const char* data, size_t len) {
  const size_t nb = len == 0 ? 1 : (len + kSumBlock - 1) / kSumBlock;
  std::vector<uint64_t> digests(nb);
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        const size_t lo = b * kSumBlock;
        const size_t hi = std::min(len, lo + kSumBlock);
        digests[b] = xxh64(data + lo, hi - lo, kSumSeed);
      },
      1);
  return xxh64(reinterpret_cast<const char*>(digests.data()), nb * 8, kSumSeed);
}

uint64_t binary_checksum(uint64_t n, uint64_t m, const char* offset_bytes,
                         size_t offset_len, const char* edge_bytes,
                         size_t edge_len) {
  const uint64_t parts[4] = {n, m, chunked_xxh64(offset_bytes, offset_len),
                             chunked_xxh64(edge_bytes, edge_len)};
  return xxh64(reinterpret_cast<const char*>(parts), sizeof(parts), kSumSeed);
}

// ---------------------------------------------------------------------------
// Chunking: split [lo, hi) into record-aligned chunks. A chunk may only
// begin right after a separator byte, so every token/line is owned by
// exactly one chunk (the one its first byte falls into).
// ---------------------------------------------------------------------------

size_t io_num_chunks(size_t bytes) {
  if (bytes == 0) return 1;
  const size_t workers = static_cast<size_t>(parallel::num_workers());
  return std::clamp<size_t>(std::max(bytes >> 20, 4 * workers), 1, 4096);
}

template <typename IsSep>
std::vector<size_t> chunk_starts(const char* data, size_t lo, size_t hi,
                                 size_t nb, IsSep is_sep) {
  std::vector<size_t> starts(nb + 1);
  starts[0] = lo;
  starts[nb] = hi;
  const size_t chunk = (hi - lo + nb - 1) / std::max<size_t>(nb, 1);
  for (size_t b = 1; b < nb; ++b) {
    size_t pos = std::min(hi, lo + b * chunk);
    while (pos < hi && pos > lo && !is_sep(data[pos - 1])) ++pos;
    starts[b] = pos;
  }
  return starts;
}

// First-wins error collection across chunks: each chunk records at most
// one error with its byte/line position; the positionally first one is
// reported, matching what a serial scan would have hit first.
struct chunk_error {
  size_t at = std::numeric_limits<size_t>::max();
  std::string msg;
};

void fail_on_first(const std::string& path,
                   const std::vector<chunk_error>& errs) {
  const chunk_error* first = nullptr;
  for (const auto& e : errs) {
    if (!e.msg.empty() && (first == nullptr || e.at < first->at)) first = &e;
  }
  if (first != nullptr) fail(path, first->msg);
}

bool parse_u64(const char* begin, const char* end, uint64_t* out) {
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end;
}

// SWAR fast path for short decimal tokens: load 8 bytes at once, locate
// the first non-digit, and fold up to 8 digit bytes into a value with
// three multiplies. Returns false (leaving `q` and `*out` untouched) for
// empty/long tokens, non-digit bytes, or near the buffer end; callers
// then take the byte-at-a-time path, so this only has to be exact when
// it claims success.
inline bool parse_short_u64(const char* data, size_t& q, size_t size,
                            uint64_t* out) {
  if constexpr (std::endian::native != std::endian::little) {
    return false;
  } else {
    if (q + 8 > size) return false;
    uint64_t w;
    std::memcpy(&w, data + q, 8);
    const uint64_t y = w ^ 0x3030303030303030ull;  // digit bytes -> 0..9
    // Bytes that are not ASCII digits get their high bit set. A carry
    // from the +0x76 can only over-approximate (flag a digit byte as
    // non-digit), which safely shortens the run and fails the separator
    // check below.
    const uint64_t nd =
        (y | (y + 0x7676767676767676ull)) & 0x8080808080808080ull;
    const unsigned k =
        nd == 0 ? 8u : static_cast<unsigned>(std::countr_zero(nd)) >> 3;
    if (k == 0) return false;
    // The token must end exactly at the k-th byte (or the buffer end).
    if (k == 8 ? (q + 8 < size && !is_ws(data[q + 8]))
               : !is_ws(data[q + k])) {
      return false;
    }
    uint64_t d = k == 8 ? y : (y & ((uint64_t{1} << (8 * k)) - 1));
    d <<= 8 * (8 - k);  // pad with leading zero digits
    d = (d * 2561) >> 8;
    d = ((d & 0x00FF00FF00FF00FFull) * 6553601) >> 16;
    d = ((d & 0x0000FFFF0000FFFFull) * 42949672960001ull) >> 32;
    *out = d;
    q += k;
    return true;
  }
}

// Fast decimal scan: advances `q` over [q, end) consuming leading
// whitespace then a run of digits. Returns false if there is no digit.
// Runs of more than 19 digits (the only way a u64 can overflow) take the
// std::from_chars slow path, which rejects out-of-range values the same
// way the serial operator>> readers do (failbit on overflow). The fast
// path is what makes the parallel readers beat iostreams per byte, not
// just per core.
inline bool scan_number(const char* data, size_t& q, size_t end,
                        uint64_t* out) {
  while (q < end && is_ws(data[q])) ++q;
  if (parse_short_u64(data, q, end, out)) return true;
  const size_t s = q;
  uint64_t v = 0;
  while (q < end) {
    const unsigned d = static_cast<unsigned char>(data[q]) - unsigned{'0'};
    if (d > 9) break;
    v = v * 10 + d;
    ++q;
  }
  if (q == s) return false;
  if (q - s > 19) {
    const auto [ptr, ec] = std::from_chars(data + s, data + end, v);
    if (ec != std::errc{}) return false;
    q = static_cast<size_t>(ptr - data);
  }
  *out = v;
  return true;
}

void append_num(std::string& buf, uint64_t v, char sep) {
  char tmp[20];
  const auto [ptr, ec] = std::to_chars(tmp, tmp + sizeof(tmp), v);
  (void)ec;
  buf.append(tmp, ptr);
  buf.push_back(sep);
}

void flush_buf(std::ofstream& out, std::string& buf, size_t threshold) {
  if (buf.size() >= threshold) {
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    buf.clear();
  }
}

// ---------------------------------------------------------------------------
// AdjacencyGraph text format.
// ---------------------------------------------------------------------------

// Reference serial reader (operator>> per number); kept behind
// io_options::parallel=false for A/B measurement and differential tests.
graph read_adjacency_serial(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open");
  std::string header;
  if (!(in >> header) || header != "AdjacencyGraph") {
    fail(path, "missing AdjacencyGraph header");
  }
  const uint64_t n = next_number(in, path, "vertex count");
  const uint64_t m = next_number(in, path, "edge count");
  if (n > kMaxVertices) fail(path, "too many vertices");

  std::vector<edge_id> offsets(n + 1);
  for (uint64_t i = 0; i < n; ++i) {
    offsets[i] = next_number(in, path, "offset");
    if (offsets[i] > m) fail(path, "offset out of range");
  }
  offsets[n] = m;
  if (n > 0 && offsets[0] != 0) fail(path, "first offset must be 0");
  for (uint64_t i = 1; i < n; ++i) {
    if (offsets[i] < offsets[i - 1]) fail(path, "offsets not monotone");
  }
  std::vector<vertex_id> edges(m);
  for (uint64_t i = 0; i < m; ++i) {
    const uint64_t t = next_number(in, path, "edge target");
    if (t >= n) fail(path, "edge target out of range");
    edges[i] = static_cast<vertex_id>(t);
  }
  return graph(std::move(offsets), std::move(edges));
}

graph read_adjacency_parallel(const std::string& path, const io_options& opt) {
  input_buffer buf;
  {
    parallel::scoped_phase ph(opt.phases, "io.map");
    buf = input_buffer::open(path, opt.use_mmap);
  }
  const char* data = buf.data();
  const size_t size = buf.size();

  // Header (serial, a handful of bytes): "AdjacencyGraph", n, m.
  size_t pos = 0;
  const auto next_token = [&]() -> std::string_view {
    while (pos < size && is_ws(data[pos])) ++pos;
    const size_t s = pos;
    while (pos < size && !is_ws(data[pos])) ++pos;
    return {data + s, pos - s};
  };
  if (next_token() != "AdjacencyGraph") {
    fail(path, "missing AdjacencyGraph header");
  }
  uint64_t n = 0;
  uint64_t m = 0;
  {
    const std::string_view tn = next_token();
    if (!parse_u64(tn.data(), tn.data() + tn.size(), &n)) {
      fail(path, "expected vertex count");
    }
    const std::string_view tm = next_token();
    if (!parse_u64(tm.data(), tm.data() + tm.size(), &m)) {
      fail(path, "expected edge count");
    }
  }
  if (n > kMaxVertices) fail(path, "too many vertices");
  // Structural bound before allocating: every number occupies at least one
  // digit plus one separator (except possibly the last), so a header
  // declaring more numbers than the file can hold is rejected without
  // trusting n or m.
  const size_t rest = size - pos;
  if (m > rest || n > rest || (n + m > 0 && 2 * (n + m) - 1 > rest)) {
    fail(path, "truncated: header declares more numbers than the file holds");
  }

  std::vector<edge_id> offsets(n + 1);
  std::vector<vertex_id> edges(m);
  {
    parallel::scoped_phase ph(opt.phases, "io.parse");
    const size_t nb = io_num_chunks(rest);
    const std::vector<size_t> starts =
        chunk_starts(data, pos, size, nb, is_ws);

    std::vector<size_t> counts(nb);
    parallel::parallel_for(
        0, nb,
        [&](size_t b) {
          // Tokens never cross chunk boundaries (the byte before a chunk
          // start is always a separator), so counting ws -> non-ws
          // transitions is exact. Comparing each byte against its
          // predecessor instead of carrying a prev_ws flag keeps the loop
          // free of loop-carried dependencies so it vectorizes.
          const size_t lo = starts[b];
          const size_t hi = starts[b + 1];
          const auto ws = [&](size_t p) {
            const char ch = data[p];
            return static_cast<int>(ch == ' ') |
                   static_cast<int>(ch >= '\t' && ch <= '\r');
          };
          size_t c = (lo < hi && ws(lo) == 0) ? 1 : 0;
          for (size_t p = lo + 1; p < hi; ++p) {
            c += static_cast<size_t>(ws(p - 1) & (ws(p) ^ 1));
          }
          counts[b] = c;
        },
        1);
    std::vector<size_t> base(nb + 1);
    for (size_t b = 0; b < nb; ++b) base[b + 1] = base[b] + counts[b];
    if (base[nb] < n + m) {
      fail(path, "truncated: expected " + std::to_string(n + m) +
                     " numbers, found " + std::to_string(base[nb]));
    }

    std::vector<chunk_error> errs(nb);
    parallel::parallel_for(
        0, nb,
        [&](size_t b) {
          size_t t = base[b];
          size_t p = starts[b];
          while (p < starts[b + 1]) {
            if (is_ws(data[p])) {
              ++p;
              continue;
            }
            const size_t tok = p;
            uint64_t v = 0;
            bool ok = true;
            if (!parse_short_u64(data, p, size, &v)) {
              // Fused tokenize + parse: accumulate digits while scanning
              // for the token end. Non-digit bytes or tokens past 19
              // digits punt to the checked slow path, which rejects them
              // the way the serial reader's failbit would.
              bool fast = true;
              while (p < size && !is_ws(data[p])) {
                const unsigned d =
                    static_cast<unsigned char>(data[p]) - unsigned{'0'};
                fast &= (d <= 9);
                v = v * 10 + d;
                ++p;
              }
              if (!fast || p - tok > 19) {
                ok = parse_u64(data + tok, data + p, &v);
              }
            }
            if (t >= n + m) break;  // trailing extras are ignored (as the
                                    // serial reader never reads them)
            if (!ok) {
              errs[b] = {tok, "malformed number at byte " +
                                  // analyze: suppress(alloc-in-parallel: cold error path, one short string per failing chunk)
                                  std::to_string(tok)};
              break;
            }
            if (t < n) {
              if (v > m) {
                errs[b] = {tok, "offset out of range"};
                break;
              }
              // lint: private-write(token t is owned by exactly one chunk)
              offsets[t] = v;
            } else {
              if (v >= n) {
                errs[b] = {tok, "edge target out of range"};
                break;
              }
              // lint: private-write(token t is owned by exactly one chunk)
              edges[t - n] = static_cast<vertex_id>(v);
            }
            ++t;
          }
        },
        1);
    fail_on_first(path, errs);
  }
  {
    parallel::scoped_phase ph(opt.phases, "io.validate");
    offsets[n] = m;
    if (n > 0 && offsets[0] != 0) fail(path, "first offset must be 0");
    const size_t bad = parallel::count_if_index(
        n, [&](size_t i) { return offsets[i] > offsets[i + 1]; });
    if (bad != 0) fail(path, "offsets not monotone");
  }
  return graph(std::move(offsets), std::move(edges));
}

// ---------------------------------------------------------------------------
// SNAP edge lists.
// ---------------------------------------------------------------------------

graph read_snap_serial(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open");
  edge_list raw;
  std::unordered_map<uint64_t, vertex_id> compact;
  const auto to_id = [&](uint64_t x) {
    auto [it, inserted] =
        compact.try_emplace(x, static_cast<vertex_id>(compact.size()));
    (void)inserted;
    return it->second;
  };
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    uint64_t u = 0;
    uint64_t v = 0;
    if (!(ls >> u >> v)) {
      fail(path, "malformed edge at line " + std::to_string(lineno));
    }
    raw.push_back({to_id(u), to_id(v)});
  }
  return from_edges(compact.size(), std::move(raw));
}

graph read_snap_parallel(const std::string& path, const io_options& opt) {
  input_buffer buf;
  {
    parallel::scoped_phase ph(opt.phases, "io.map");
    buf = input_buffer::open(path, opt.use_mmap);
  }
  const char* data = buf.data();
  const size_t size = buf.size();

  std::vector<uint64_t> srcs;
  std::vector<uint64_t> dsts;
  uint64_t max_id = 0;
  {
    parallel::scoped_phase ph(opt.phases, "io.parse");
    const size_t nb = io_num_chunks(size);
    const std::vector<size_t> starts =
        chunk_starts(data, 0, size, nb, [](char c) { return c == '\n'; });

    // Pass 1: per-chunk line and edge-line counts (comments and empty
    // lines are skipped, exactly as the serial reader classifies them).
    std::vector<size_t> line_counts(nb);
    std::vector<size_t> edge_counts(nb);
    parallel::parallel_for(
        0, nb,
        [&](size_t b) {
          size_t lines = 0;
          size_t edges = 0;
          size_t p = starts[b];
          while (p < starts[b + 1]) {
            size_t e = p;
            while (e < size && data[e] != '\n') ++e;
            ++lines;
            if (e > p && data[p] != '#') ++edges;
            p = e + 1;
          }
          line_counts[b] = lines;
          edge_counts[b] = edges;
        },
        1);
    std::vector<size_t> line_base(nb + 1);
    std::vector<size_t> edge_base(nb + 1);
    for (size_t b = 0; b < nb; ++b) {
      line_base[b + 1] = line_base[b] + line_counts[b];
      edge_base[b + 1] = edge_base[b] + edge_counts[b];
    }
    const size_t num_lines_total = line_base[nb];
    srcs.resize(edge_base[nb]);
    dsts.resize(edge_base[nb]);

    // Pass 2: parse both endpoints of every edge line into its slot,
    // tracking the largest raw id per chunk (it picks the compaction
    // strategy below).
    std::vector<uint64_t> maxs(nb, 0);
    std::vector<chunk_error> errs(nb);
    parallel::parallel_for(
        0, nb,
        [&](size_t b) {
          size_t line = line_base[b];
          size_t ei = edge_base[b];
          uint64_t mx = 0;
          size_t p = starts[b];
          while (p < starts[b + 1]) {
            size_t e = p;
            while (e < size && data[e] != '\n') ++e;
            ++line;
            if (e > p && data[p] != '#') {
              uint64_t u = 0;
              uint64_t v = 0;
              size_t q = p;
              if (!scan_number(data, q, e, &u) ||
                  !scan_number(data, q, e, &v)) {
                errs[b] = {line, "malformed edge at line " +
                                     // analyze: suppress(alloc-in-parallel: cold error path, one short string per failing chunk)
                                     std::to_string(line)};
                break;
              }
              mx = std::max(mx, std::max(u, v));
              // lint: private-write(edge slot ei is owned by this chunk)
              srcs[ei] = u;
              // lint: private-write(edge slot ei is owned by this chunk)
              dsts[ei] = v;
              ++ei;
            }
            p = e + 1;
          }
          maxs[b] = mx;
        },
        1);
    (void)num_lines_total;
    fail_on_first(path, errs);
    for (size_t b = 0; b < nb; ++b) max_id = std::max(max_id, maxs[b]);
  }

  const size_t num_edges = srcs.size();
  if (num_edges == 0) return from_edges(0, edge_list{});

  // Id compaction in first-appearance order (identical to the serial
  // reader's insertion order): each raw id's minimum occurrence position
  // — u counts before v within a line — ranks it. Both edge directions
  // are emitted pre-packed so from_packed_edges can skip a full copy of
  // the edge array; the interleaved direction order differs from
  // from_edges' concatenated one only among duplicates, which the stable
  // sort + dedup collapse to the same CSR.
  size_t num_ids = 0;
  std::vector<uint64_t> packed(2 * num_edges);
  {
    parallel::scoped_phase ph(opt.phases, "io.compact");
    constexpr uint64_t kUnseen = std::numeric_limits<uint64_t>::max();
    const uint64_t num_endpoints = 2 * static_cast<uint64_t>(num_edges);
    if (max_id < std::max<uint64_t>(4 * num_endpoints, uint64_t{1} << 16)) {
      // Dense ids (the common case for generated and relabeled graphs): a
      // direct position table beats hashing — no probing, and the table
      // is at most 4x the endpoint count.
      const size_t universe = static_cast<size_t>(max_id) + 1;
      std::vector<uint64_t> pos(universe, kUnseen);
      parallel::parallel_for(0, num_edges, [&](size_t i) {
        parallel::write_min(&pos[srcs[i]], 2 * i);
        parallel::write_min(&pos[dsts[i]], 2 * i + 1);
      });
      const std::vector<size_t> occupied = parallel::pack_index<size_t>(
          universe, [&](size_t id) { return pos[id] != kUnseen; });
      num_ids = occupied.size();
      if (num_ids > kMaxVertices) fail(path, "too many vertices");
      // (first occurrence, raw id), ranked by occurrence position.
      std::vector<std::pair<uint64_t, uint64_t>> ids(num_ids);
      parallel::parallel_for(0, num_ids, [&](size_t r) {
        ids[r] = {pos[occupied[r]], occupied[r]};
      });
      parallel::sample_sort(ids, [](const std::pair<uint64_t, uint64_t>& a,
                                    const std::pair<uint64_t, uint64_t>& b) {
        return a.first < b.first;
      });
      // Reuse pos[] as the rank table.
      parallel::parallel_for(0, num_ids, [&](size_t r) {
        // lint: private-write(ids[r].second values are distinct raw ids)
        pos[ids[r].second] = r;
      });
      parallel::parallel_for(0, num_edges, [&](size_t i) {
        const uint64_t ru = pos[srcs[i]];
        const uint64_t rv = pos[dsts[i]];
        // lint: private-write(slot 2i is owned by iteration i)
        packed[2 * i] = (ru << 32) | rv;
        // lint: private-write(slot 2i+1 is owned by iteration i)
        packed[2 * i + 1] = (rv << 32) | ru;
      });
    } else {
      // Sparse ids: phase-concurrent hash map. Keys are biased by +1 so a
      // raw id of 2^64-1 cannot collide with hash_map64::kEmptyKey.
      parallel::hash_map64 first_pos(2 * num_edges, kUnseen);
      parallel::parallel_for(0, num_edges, [&](size_t i) {
        first_pos.insert_min(srcs[i] + 1, 2 * i);
        first_pos.insert_min(dsts[i] + 1, 2 * i + 1);
      });
      auto ids = first_pos.elements();  // (biased raw id, first occurrence)
      parallel::sample_sort(ids, [](const std::pair<uint64_t, uint64_t>& a,
                                    const std::pair<uint64_t, uint64_t>& b) {
        return a.second < b.second;
      });
      num_ids = ids.size();
      if (num_ids > kMaxVertices) fail(path, "too many vertices");
      parallel::hash_map64 rank_of(num_ids);
      parallel::parallel_for(0, num_ids, [&](size_t r) {
        rank_of.insert(ids[r].first, r);
      });
      parallel::parallel_for(0, num_edges, [&](size_t i) {
        uint64_t ru = 0;
        uint64_t rv = 0;
        rank_of.find(srcs[i] + 1, &ru);
        rank_of.find(dsts[i] + 1, &rv);
        // lint: private-write(slot 2i is owned by iteration i)
        packed[2 * i] = (ru << 32) | rv;
        // lint: private-write(slot 2i+1 is owned by iteration i)
        packed[2 * i + 1] = (rv << 32) | ru;
      });
    }
  }
  parallel::scoped_phase ph(opt.phases, "io.build");
  return from_packed_edges(num_ids, std::move(packed), {});
}

}  // namespace

// ---------------------------------------------------------------------------
// Public text-format entry points.
// ---------------------------------------------------------------------------

graph read_adjacency_graph(const std::string& path, const io_options& opt) {
  return opt.parallel ? read_adjacency_parallel(path, opt)
                      : read_adjacency_serial(path);
}

void write_adjacency_graph(const graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(path, "cannot open for writing");
  constexpr size_t kFlush = size_t{1} << 22;
  std::string buf;
  buf.reserve(kFlush + 32);
  buf += "AdjacencyGraph\n";
  append_num(buf, g.num_vertices(), '\n');
  append_num(buf, g.num_edges(), '\n');
  for (size_t i = 0; i < g.num_vertices(); ++i) {
    append_num(buf, g.offset(static_cast<vertex_id>(i)), '\n');
    flush_buf(out, buf, kFlush);
  }
  for (vertex_id t : g.edges()) {
    append_num(buf, t, '\n');
    flush_buf(out, buf, kFlush);
  }
  flush_buf(out, buf, 0);
  if (!out) fail(path, "write failed");
}

graph read_snap_edge_list(const std::string& path, const io_options& opt) {
  return opt.parallel ? read_snap_parallel(path, opt) : read_snap_serial(path);
}

void write_edge_list(const graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(path, "cannot open for writing");
  constexpr size_t kFlush = size_t{1} << 22;
  std::string buf;
  buf.reserve(kFlush + 64);
  buf += "# undirected; each edge listed once (u < v)\n";
  for (size_t u = 0; u < g.num_vertices(); ++u) {
    for (vertex_id v : g.neighbors(static_cast<vertex_id>(u))) {
      if (u < v) {
        append_num(buf, u, '\t');
        append_num(buf, v, '\n');
      }
    }
    flush_buf(out, buf, kFlush);
  }
  flush_buf(out, buf, 0);
  if (!out) fail(path, "write failed");
}

}  // namespace pcc::graph

// ---------------------------------------------------------------------------
// Binary format.
// ---------------------------------------------------------------------------

namespace pcc::graph {
namespace {

constexpr char kBinaryMagicV1[4] = {'P', 'C', 'C', 'G'};
constexpr char kBinaryMagicV2[4] = {'P', 'C', 'C', '2'};
constexpr uint32_t kFlagChecksum = 1u << 0;
constexpr size_t kHeaderV1 = 4 + 8 + 8;
constexpr size_t kHeaderV2 = 4 + 4 + 8 + 8;

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

// memcpy in parallel chunks: at the paper's scale the copy out of the page
// cache is itself a measurable fraction of binary load time.
void copy_region(void* dst, const char* src, size_t bytes, bool par) {
  constexpr size_t kChunk = size_t{1} << 22;
  if (bytes == 0) return;  // dst may be null for empty regions
  if (!par || bytes <= kChunk) {
    std::memcpy(dst, src, bytes);
    return;
  }
  const size_t nb = (bytes + kChunk - 1) / kChunk;
  parallel::parallel_for(
      0, nb,
      [&](size_t b) {
        const size_t lo = b * kChunk;
        const size_t hi = std::min(bytes, lo + kChunk);
        std::memcpy(static_cast<char*>(dst) + lo, src + lo, hi - lo);
      },
      1);
}

}  // namespace

graph read_binary_graph(const std::string& path, const io_options& opt) {
  input_buffer buf;
  {
    parallel::scoped_phase ph(opt.phases, "io.map");
    buf = input_buffer::open(path, opt.use_mmap);
  }
  const char* data = buf.data();
  const size_t size = buf.size();
  if (size < 4) fail(path, "bad magic (not a pcc binary graph)");
  const bool v2 = std::memcmp(data, kBinaryMagicV2, 4) == 0;
  if (!v2 && std::memcmp(data, kBinaryMagicV1, 4) != 0) {
    fail(path, "bad magic (not a pcc binary graph)");
  }
  const size_t header = v2 ? kHeaderV2 : kHeaderV1;
  if (size < header) fail(path, "truncated header");
  uint32_t flags = 0;
  if (v2) std::memcpy(&flags, data + 4, 4);
  if ((flags & ~kFlagChecksum) != 0) {
    fail(path, "unknown header flags (written by a newer version?)");
  }
  uint64_t n = 0;
  uint64_t m = 0;
  std::memcpy(&n, data + (v2 ? 8 : 4), 8);
  std::memcpy(&m, data + (v2 ? 16 : 12), 8);
  if (n > kMaxVertices) fail(path, "too many vertices");
  const bool has_sum = v2 && (flags & kFlagChecksum) != 0;

  // Structural size check BEFORE any allocation: the header fully
  // determines the file size, so truncation, a corrupt header, and
  // trailing garbage are all caught here. (v1 files keep the legacy
  // leniency of ignoring trailing bytes.)
  const unsigned __int128 expected =
      static_cast<unsigned __int128>(header) +
      sizeof(edge_id) * (static_cast<unsigned __int128>(n) + 1) +
      sizeof(vertex_id) * static_cast<unsigned __int128>(m) +
      (has_sum ? 8 : 0);
  if (expected > size || (v2 && expected != size)) {
    fail(path, "file size mismatch (truncated or corrupt): header declares n=" +
                   std::to_string(n) + " m=" + std::to_string(m) + " but file has " +
                   std::to_string(size) + " bytes");
  }

  const char* offset_bytes = data + header;
  const size_t offset_len = (static_cast<size_t>(n) + 1) * sizeof(edge_id);
  const char* edge_bytes = offset_bytes + offset_len;
  const size_t edge_len = static_cast<size_t>(m) * sizeof(vertex_id);

  if (has_sum && opt.verify_checksum) {
    parallel::scoped_phase ph(opt.phases, "io.checksum");
    uint64_t stored = 0;
    std::memcpy(&stored, data + size - 8, 8);
    const uint64_t computed =
        binary_checksum(n, m, offset_bytes, offset_len, edge_bytes, edge_len);
    if (stored != computed) fail(path, "checksum mismatch (corrupt file)");
  }

  std::vector<edge_id> offsets(n + 1);
  std::vector<vertex_id> edges(m);
  {
    parallel::scoped_phase ph(opt.phases, "io.parse");
    copy_region(offsets.data(), offset_bytes, offset_len, opt.parallel);
    copy_region(edges.data(), edge_bytes, edge_len, opt.parallel);
  }
  {
    parallel::scoped_phase ph(opt.phases, "io.validate");
    if (offsets[0] != 0) fail(path, "first offset must be 0");
    if (offsets[n] != m) fail(path, "inconsistent offsets");
    if (opt.parallel) {
      const size_t bad_off = parallel::count_if_index(
          n, [&](size_t i) { return offsets[i] > offsets[i + 1]; });
      if (bad_off != 0) fail(path, "offsets not monotone");
      const size_t bad_tgt = parallel::count_if_index(
          m, [&](size_t i) { return edges[i] >= n; });
      if (bad_tgt != 0) fail(path, "edge target out of range");
    } else {
      for (uint64_t i = 0; i < n; ++i) {
        if (offsets[i] > offsets[i + 1]) fail(path, "offsets not monotone");
      }
      for (vertex_id t : edges) {
        if (t >= n) fail(path, "edge target out of range");
      }
    }
  }
  return graph(std::move(offsets), std::move(edges));
}

void write_binary_graph(const graph& g, const std::string& path,
                        const io_options& opt) {
  if (opt.binary_version != 1 && opt.binary_version != 2) {
    fail(path, "unsupported binary version " +
                   std::to_string(opt.binary_version));
  }
  parallel::scoped_phase ph(opt.phases, "io.write");
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(path, "cannot open for writing");
  const uint64_t n = g.num_vertices();
  const uint64_t m = g.num_edges();
  const char* offset_bytes =
      reinterpret_cast<const char*>(g.offsets().data());
  const size_t offset_len = g.offsets().size() * sizeof(edge_id);
  const char* edge_bytes = reinterpret_cast<const char*>(g.edges().data());
  const size_t edge_len = g.edges().size() * sizeof(vertex_id);
  if (opt.binary_version == 1) {
    out.write(kBinaryMagicV1, 4);
    write_pod(out, n);
    write_pod(out, m);
  } else {
    const uint32_t flags = opt.binary_checksum ? kFlagChecksum : 0;
    out.write(kBinaryMagicV2, 4);
    write_pod(out, flags);
    write_pod(out, n);
    write_pod(out, m);
  }
  out.write(offset_bytes, static_cast<std::streamsize>(offset_len));
  out.write(edge_bytes, static_cast<std::streamsize>(edge_len));
  if (opt.binary_version == 2 && opt.binary_checksum) {
    const uint64_t sum =
        binary_checksum(n, m, offset_bytes, offset_len, edge_bytes, edge_len);
    write_pod(out, sum);
  }
  if (!out) fail(path, "write failed");
}

// ---------------------------------------------------------------------------
// load_graph / save_graph: the one entry point the tools and benches use.
// ---------------------------------------------------------------------------

file_format format_from_name(const std::string& name) {
  if (name == "auto") return file_format::kAuto;
  if (name == "adj") return file_format::kAdjacency;
  if (name == "badj" || name == "bin") return file_format::kBinary;
  if (name == "snap" || name == "txt" || name == "el") return file_format::kSnap;
  throw std::runtime_error("graph io: unknown format name: " + name);
}

namespace {

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

file_format sniff_format(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open");
  char head[64] = {};
  in.read(head, sizeof(head));
  const size_t got = static_cast<size_t>(in.gcount());
  if (got >= 4 && (std::memcmp(head, kBinaryMagicV2, 4) == 0 ||
                   std::memcmp(head, kBinaryMagicV1, 4) == 0)) {
    return file_format::kBinary;
  }
  size_t i = 0;
  while (i < got && is_ws(head[i])) ++i;
  constexpr std::string_view kAdjHeader = "AdjacencyGraph";
  if (got - i >= kAdjHeader.size() &&
      std::memcmp(head + i, kAdjHeader.data(), kAdjHeader.size()) == 0) {
    return file_format::kAdjacency;
  }
  return file_format::kSnap;
}

file_format format_from_extension(const std::string& path) {
  if (ends_with(path, ".badj") || ends_with(path, ".bin")) {
    return file_format::kBinary;
  }
  if (ends_with(path, ".txt") || ends_with(path, ".snap") ||
      ends_with(path, ".el")) {
    return file_format::kSnap;
  }
  return file_format::kAdjacency;
}

}  // namespace

graph load_graph(const std::string& path, file_format format,
                 const io_options& opt) {
  if (format == file_format::kAuto) format = sniff_format(path);
  switch (format) {
    case file_format::kAdjacency:
      return read_adjacency_graph(path, opt);
    case file_format::kBinary:
      return read_binary_graph(path, opt);
    case file_format::kSnap:
      return read_snap_edge_list(path, opt);
    case file_format::kAuto:
      break;
  }
  fail(path, "unresolved format");
}

void save_graph(const graph& g, const std::string& path, file_format format,
                const io_options& opt) {
  if (format == file_format::kAuto) format = format_from_extension(path);
  switch (format) {
    case file_format::kAdjacency:
      write_adjacency_graph(g, path);
      return;
    case file_format::kBinary:
      write_binary_graph(g, path, opt);
      return;
    case file_format::kSnap:
      write_edge_list(g, path);
      return;
    case file_format::kAuto:
      break;
  }
  fail(path, "unresolved format");
}

}  // namespace pcc::graph
