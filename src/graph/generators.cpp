#include "graph/generators.hpp"

#include <cassert>
#include <cmath>

#include "graph/builder.hpp"
#include "parallel/random.hpp"
#include "parallel/scheduler.hpp"

namespace pcc::graph {

namespace {
using parallel::parallel_for;
using parallel::rng;
}  // namespace

graph random_graph(size_t n, size_t degree, uint64_t seed) {
  if (n == 0) return empty_graph(0);
  rng gen(seed);
  edge_list edges(n * degree);
  parallel_for(0, n, [&](size_t u) {
    for (size_t j = 0; j < degree; ++j) {
      // lint: private-write(u owns the slice [u*degree, (u+1)*degree))
      edges[u * degree + j] = {static_cast<vertex_id>(u),
                               static_cast<vertex_id>(gen.bounded(u * degree + j, n))};
    }
  });
  return from_edges(n, std::move(edges));
}

graph rmat_graph(size_t n, size_t num_edges, uint64_t seed,
                 const rmat_options& opt) {
  if (n == 0) return empty_graph(0);
  int levels = 0;
  while ((size_t{1} << levels) < n) ++levels;
  const size_t side = size_t{1} << levels;

  rng gen(seed);
  edge_list edges(num_edges);
  parallel_for(0, num_edges, [&](size_t e) {
    uint64_t u = 0;
    uint64_t v = 0;
    const rng egen = gen.split(e);
    for (int level = 0; level < levels; ++level) {
      double a = opt.a;
      double b = opt.b;
      double c = opt.c;
      if (opt.noise) {
        // +-10% multiplicative noise per level, renormalized; keeps the
        // power law while avoiding the lockstep artifacts of pure R-MAT.
        const double na = 0.9 + 0.2 * egen.uniform01(4 * level + 1);
        const double nb = 0.9 + 0.2 * egen.uniform01(4 * level + 2);
        const double nc = 0.9 + 0.2 * egen.uniform01(4 * level + 3);
        const double nd = 0.9 + 0.2 * egen.uniform01(4 * level + 4);
        const double d = (1.0 - opt.a - opt.b - opt.c) * nd;
        const double norm = opt.a * na + opt.b * nb + opt.c * nc + d;
        a = opt.a * na / norm;
        b = opt.b * nb / norm;
        c = opt.c * nc / norm;
      }
      const double r = egen.uniform01(4 * level);
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    edges[e] = {static_cast<vertex_id>(u % n), static_cast<vertex_id>(v % n)};
  });
  (void)side;
  return from_edges(n, std::move(edges));
}

graph grid3d_graph(size_t n, bool randomize_labels, uint64_t seed) {
  if (n == 0) return empty_graph(0);
  const size_t side = std::max<size_t>(
      1, static_cast<size_t>(std::llround(std::cbrt(static_cast<double>(n)))));
  const size_t total = side * side * side;
  if (side < 2) return empty_graph(total);
  edge_list edges(3 * total);
  const auto id = [&](size_t x, size_t y, size_t z) {
    return static_cast<vertex_id>((x * side + y) * side + z);
  };
  parallel_for(0, total, [&](size_t i) {
    const size_t z = i % side;
    const size_t y = (i / side) % side;
    const size_t x = i / (side * side);
    // One direction per dimension (torus wrap); symmetrization adds the
    // reverse, giving the six neighbours of the paper's description.
    // lint: private-write(iteration i owns the slice [3i, 3i+3))
    edges[3 * i + 0] = {id(x, y, z), id((x + 1) % side, y, z)};
    // lint: private-write(same per-i slice invariant)
    edges[3 * i + 1] = {id(x, y, z), id(x, (y + 1) % side, z)};
    // lint: private-write(same per-i slice invariant)
    edges[3 * i + 2] = {id(x, y, z), id(x, y, (z + 1) % side)};
  });
  graph g = from_edges(total, std::move(edges));
  return randomize_labels ? relabel_randomly(g, seed) : g;
}

graph line_graph(size_t n, bool randomize_labels, uint64_t seed) {
  if (n <= 1) return empty_graph(n);
  edge_list edges(n - 1);
  parallel_for(0, n - 1, [&](size_t i) {
    edges[i] = {static_cast<vertex_id>(i), static_cast<vertex_id>(i + 1)};
  });
  graph g = from_edges(n, std::move(edges));
  return randomize_labels ? relabel_randomly(g, seed) : g;
}

graph social_network_like(size_t n, uint64_t seed) {
  // com-Orkut: 3.07M vertices, 117M undirected edges => ratio ~38.
  const size_t m = 38 * n;
  graph g = rmat_graph(n, m, seed, {.a = 0.57, .b = 0.19, .c = 0.19});
  return relabel_randomly(g, seed + 1);
}

graph empty_graph(size_t n) {
  return graph(std::vector<edge_id>(n + 1, 0), {});
}

graph cycle_graph(size_t n) {
  assert(n >= 3);
  edge_list edges(n);
  for (size_t i = 0; i < n; ++i) {
    edges[i] = {static_cast<vertex_id>(i), static_cast<vertex_id>((i + 1) % n)};
  }
  return from_edges(n, std::move(edges));
}

graph star_graph(size_t n) {
  if (n == 0) return empty_graph(0);
  edge_list edges;
  edges.reserve(n - 1);
  for (size_t i = 1; i < n; ++i) {
    edges.push_back({0, static_cast<vertex_id>(i)});
  }
  return from_edges(n, std::move(edges));
}

graph complete_graph(size_t n) {
  edge_list edges;
  edges.reserve(n * (n - 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      edges.push_back({static_cast<vertex_id>(i), static_cast<vertex_id>(j)});
    }
  }
  return from_edges(n, std::move(edges));
}

graph binary_tree_graph(size_t n) {
  edge_list edges;
  for (size_t i = 1; i < n; ++i) {
    edges.push_back({static_cast<vertex_id>((i - 1) / 2), static_cast<vertex_id>(i)});
  }
  return from_edges(n, std::move(edges));
}

graph grid2d_graph(size_t rows, size_t cols) {
  edge_list edges;
  const auto id = [&](size_t r, size_t c) {
    return static_cast<vertex_id>(r * cols + c);
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c)});
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1)});
    }
  }
  return from_edges(rows * cols, std::move(edges));
}

graph cliques_with_bridges(size_t count, size_t clique_size) {
  edge_list edges;
  const size_t n = count * clique_size;
  for (size_t k = 0; k < count; ++k) {
    const size_t base = k * clique_size;
    for (size_t i = 0; i < clique_size; ++i) {
      for (size_t j = i + 1; j < clique_size; ++j) {
        edges.push_back({static_cast<vertex_id>(base + i),
                         static_cast<vertex_id>(base + j)});
      }
    }
    if (k + 1 < count) {
      edges.push_back({static_cast<vertex_id>(base + clique_size - 1),
                       static_cast<vertex_id>(base + clique_size)});
    }
  }
  return from_edges(n, std::move(edges));
}

graph disjoint_union(const std::vector<graph>& parts) {
  size_t n = 0;
  edge_list edges;
  for (const graph& g : parts) {
    for (size_t u = 0; u < g.num_vertices(); ++u) {
      for (vertex_id w : g.neighbors(static_cast<vertex_id>(u))) {
        edges.push_back({static_cast<vertex_id>(n + u),
                         static_cast<vertex_id>(n + w)});
      }
    }
    n += g.num_vertices();
  }
  return from_edges(n, std::move(edges),
                    {.symmetrize = false,
                     .remove_self_loops = false,
                     .remove_duplicates = false});
}

graph erdos_renyi(size_t n, double p, uint64_t seed) {
  rng gen(seed);
  edge_list edges;
  size_t counter = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (gen.uniform01(counter++) < p) {
        edges.push_back({static_cast<vertex_id>(i), static_cast<vertex_id>(j)});
      }
    }
  }
  return from_edges(n, std::move(edges));
}

}  // namespace pcc::graph
