// Structural queries and integrity checks over graphs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pcc::graph {

struct degree_stats {
  size_t min = 0;
  size_t max = 0;
  double mean = 0.0;
  size_t isolated = 0;  // vertices of degree zero
};

degree_stats compute_degree_stats(const graph& g);

// True iff every directed edge (u, v) has its reverse (v, u).
bool is_symmetric(const graph& g);

// True iff some edge (u, u) exists.
bool has_self_loops(const graph& g);

// True iff some vertex lists the same neighbour twice.
bool has_duplicate_edges(const graph& g);

// Reference connected-components labeling by sequential BFS; label of a
// vertex is the smallest vertex id in its component. This is the oracle the
// test suite compares every parallel implementation against.
std::vector<vertex_id> reference_components(const graph& g);

// Number of connected components (via reference_components).
size_t count_components(const graph& g);

// Eccentricity of `source` in its component (longest BFS distance).
size_t bfs_eccentricity(const graph& g, vertex_id source);

// Sizes of all components, descending.
std::vector<size_t> component_sizes(const std::vector<vertex_id>& labels);

}  // namespace pcc::graph
