// edge_map: Ligra-style direction-optimizing edge traversal.
//
// Given a frontier U, apply `update(s, d)` across the edges leaving U and
// return the subset of destinations d for which some update returned true
// (each destination appears once). Two executions:
//
//   sparse (push): parallel over U's out-edges; `update` runs concurrently
//     and MUST be atomic — it must return true at most once per destination
//     (e.g. a CAS-guarded write), which is what keeps the output duplicate
//     free.
//   dense (pull): parallel over all vertices d with cond(d) true, scanning
//     d's in-neighbours for frontier members; `update` runs sequentially
//     per destination, and the scan early-exits as soon as cond(d) turns
//     false (the direction-optimization saving of Beamer et al.).
//
// The representation switches to dense when the frontier exceeds
// options::dense_threshold of the vertices — the criterion the paper uses
// (20%). The graph must store both edge directions (undirected CSR), so
// in-neighbours equal out-neighbours.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/vertex_subset.hpp"
#include "parallel/atomics.hpp"

namespace pcc::graph {

struct edge_map_options {
  double dense_threshold = 0.2;
  // Force a representation regardless of density (tests / ablations).
  enum class mode { kAuto, kAlwaysSparse, kAlwaysDense };
  mode force = mode::kAuto;
};

template <typename Update, typename Cond>
vertex_subset edge_map(const graph& g, const vertex_subset& frontier,
                       Update&& update, Cond&& cond,
                       const edge_map_options& opt = {}) {
  const size_t n = g.num_vertices();
  const bool go_dense =
      opt.force == edge_map_options::mode::kAlwaysDense ||
      (opt.force == edge_map_options::mode::kAuto &&
       frontier.density() > opt.dense_threshold);

  if (go_dense) {
    const std::vector<uint8_t>& on = frontier.dense();
    std::vector<uint8_t> out(n, 0);
    parallel::parallel_for(0, n, [&](size_t di) {
      const vertex_id d = static_cast<vertex_id>(di);
      if (!cond(d)) return;
      for (vertex_id s : g.neighbors(d)) {
        if (on[s] && update(s, d)) {
          // lint: private-write(d == di: only iteration di writes out[d])
          out[d] = 1;
          if (!cond(d)) break;  // early exit once d is settled
        }
      }
    });
    return vertex_subset::from_dense(std::move(out));
  }

  // Sparse: push along out-edges. The output holds one slot per frontier
  // out-edge (as in Ligra): an update relation that can fire several times
  // for one destination in a round (e.g. successive writeMin improvements)
  // then yields benign duplicates rather than overflowing.
  const std::vector<vertex_id>& members = frontier.sparse();
  const size_t out_degree = parallel::reduce_sum<size_t>(
      members.size(), [&](size_t i) { return g.degree(members[i]); });
  std::vector<vertex_id> out(out_degree);
  size_t out_size = 0;
  parallel::parallel_for(0, members.size(), [&](size_t i) {
    const vertex_id s = members[i];
    for (vertex_id d : g.neighbors(s)) {
      if (cond(d) && update(s, d)) {
        out[parallel::fetch_add<size_t>(&out_size, 1)] = d;
      }
    }
  });
  out.resize(out_size);
  return vertex_subset::from_sparse(n, std::move(out));
}

// vertex_map: apply f to every member of the subset; returns the members
// for which f returned true.
template <typename F>
vertex_subset vertex_filter(const vertex_subset& s, F&& f) {
  const std::vector<vertex_id>& members = s.sparse();
  std::vector<uint8_t> keep(members.size());
  parallel::parallel_for(0, members.size(),
                         [&](size_t i) { keep[i] = f(members[i]) ? 1 : 0; });
  return vertex_subset::from_sparse(
      s.universe_size(),
      parallel::pack(members, [&](size_t i) { return keep[i] != 0; }));
}

}  // namespace pcc::graph
