// edge_map: Ligra-style direction-optimizing edge traversal.
//
// Given a frontier U, apply `update(s, d)` across the edges leaving U and
// return the subset of destinations d for which some update returned true
// (each destination appears once). Two executions:
//
//   sparse (push): parallel over U's out-edges, edge-balanced via
//     frontier_edge_for (a hub's adjacency is split across chunks);
//     `update` runs concurrently and MUST be atomic — it must return true
//     at most once per destination (e.g. a CAS-guarded write), which is
//     what keeps the output duplicate free. Accepted destinations are
//     emitted block-locally (no shared cursor), so the output order is the
//     flattened edge order — deterministic given a deterministic update.
//   dense (pull): parallel over all vertices d with cond(d) true, scanning
//     d's in-neighbours for frontier members; `update` runs sequentially
//     per destination, and the scan early-exits as soon as cond(d) turns
//     false (the direction-optimization saving of Beamer et al.).
//
// The representation switches to dense when the frontier exceeds
// options::dense_threshold of the vertices — the criterion the paper uses
// (20%). The graph must store both edge directions (undirected CSR), so
// in-neighbours equal out-neighbours.
//
// The workspace-taking overload keeps every O(n) intermediate (membership
// flags, dense output flags, emission staging) in the caller's arena; the
// returned subset allocates only its member list. The workspace-free
// overload exists for one-shot callers and tests.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/vertex_subset.hpp"
#include "parallel/atomics.hpp"
#include "parallel/emit.hpp"

namespace pcc::graph {

struct edge_map_options {
  double dense_threshold = 0.2;
  // Force a representation regardless of density (tests / ablations).
  enum class mode { kAuto, kAlwaysSparse, kAlwaysDense };
  mode force = mode::kAuto;
};

template <typename Update, typename Cond>
vertex_subset edge_map(const graph& g, const vertex_subset& frontier,
                       Update&& update, Cond&& cond, parallel::workspace& ws,
                       const edge_map_options& opt = {}) {
  const size_t n = g.num_vertices();
  const bool go_dense =
      opt.force == edge_map_options::mode::kAlwaysDense ||
      (opt.force == edge_map_options::mode::kAuto &&
       frontier.density() > opt.dense_threshold);

  parallel::workspace::scope s(ws);
  if (go_dense) {
    // Frontier membership flags: reuse the frontier's dense view if it
    // already exists, otherwise build one in scratch (don't trigger the
    // subset's own cached O(n) allocation).
    std::span<const uint8_t> on;
    if (frontier.dense_ready()) {
      on = frontier.dense();
    } else {
      std::span<uint8_t> flags = ws.take_zeroed<uint8_t>(n);
      const std::vector<vertex_id>& members = frontier.sparse();
      parallel::parallel_for(0, members.size(), [&](size_t i) {
        // lint: private-write(members holds distinct vertex ids)
        flags[members[i]] = 1;
      });
      on = flags;
    }
    std::span<uint8_t> hit = ws.take_zeroed<uint8_t>(n);
    parallel::parallel_for(0, n, [&](size_t di) {
      const vertex_id d = static_cast<vertex_id>(di);
      if (!cond(d)) return;
      for (vertex_id s_id : g.neighbors(d)) {
        if (on[s_id] && update(s_id, d)) {
          // lint: private-write(d == di: only iteration di writes hit[d])
          hit[d] = 1;
          if (!cond(d)) break;  // early exit once d is settled
        }
      }
    });
    std::span<vertex_id> ids = ws.take<vertex_id>(n);
    const size_t count = parallel::pack_index_span<vertex_id>(
        n, [&](size_t v) { return hit[v] != 0; }, ids, ws);
    return vertex_subset::from_sparse(
        n, std::vector<vertex_id>(ids.begin(), ids.begin() + count));
  }

  // Sparse: push along out-edges, edge-balanced. The staging holds one slot
  // per frontier out-edge (as in Ligra): an update relation that can fire
  // several times for one destination in a round (e.g. successive writeMin
  // improvements) then yields benign duplicates rather than overflowing.
  const std::vector<vertex_id>& members = frontier.sparse();
  const size_t out_degree = parallel::reduce_sum_ws<size_t>(
      members.size(), [&](size_t i) { return g.degree(members[i]); }, ws);
  std::span<vertex_id> out = ws.take<vertex_id>(out_degree);
  const parallel::frontier_result run = parallel::frontier_edge_for<vertex_id>(
      members.size(), [&](size_t fi) { return g.degree(members[fi]); }, out,
      ws,
      [&](size_t fi, uint32_t jlo, uint32_t jhi, uint32_t,
          parallel::emitter<vertex_id>& em) -> uint32_t {
        const vertex_id s_id = members[fi];
        const std::span<const vertex_id> nbrs = g.neighbors(s_id);
        for (uint32_t i = jlo; i < jhi; ++i) {
          const vertex_id d = nbrs[i];
          if (cond(d) && update(s_id, d)) em(d);
        }
        return 0;
      });
  return vertex_subset::from_sparse(
      n, std::vector<vertex_id>(out.begin(), out.begin() + run.emitted));
}

// Workspace-free convenience overload for one-shot callers and tests.
template <typename Update, typename Cond>
vertex_subset edge_map(const graph& g, const vertex_subset& frontier,
                       Update&& update, Cond&& cond,
                       const edge_map_options& opt = {}) {
  parallel::workspace ws;
  return edge_map(g, frontier, update, cond, ws, opt);
}

// vertex_map: apply f to every member of the subset; returns the members
// for which f returned true.
template <typename F>
vertex_subset vertex_filter(const vertex_subset& s, F&& f) {
  const std::vector<vertex_id>& members = s.sparse();
  std::vector<uint8_t> keep(members.size());
  parallel::parallel_for(0, members.size(),
                         [&](size_t i) { keep[i] = f(members[i]) ? 1 : 0; });
  return vertex_subset::from_sparse(
      s.universe_size(),
      parallel::pack(members, [&](size_t i) { return keep[i] != 0; }));
}

}  // namespace pcc::graph
