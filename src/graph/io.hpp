// Graph I/O: PBBS AdjacencyGraph text format, SNAP-style edge lists and a
// checksummed binary format, behind one `load_graph` entry point.
//
// The paper's inputs are PBBS-generated graphs plus com-Orkut from SNAP;
// at that scale (1e8-5e8 edges) a serial `operator>>` parse dwarfs the
// connectivity computation itself, so every reader has a parallel path:
// the file is mapped (mmap, with a read() fallback), split into
// token/record-aligned chunks, and parsed with std::from_chars in
// parallel_for. The serial readers are kept behind io_options::parallel
// for A/B measurement (bench_io) and produce byte-identical CSR output.
#pragma once

#include <string>

#include "graph/graph.hpp"
#include "parallel/timer.hpp"

namespace pcc::graph {

// On-disk formats understood by load_graph/save_graph.
enum class file_format {
  kAuto,       // load: sniff the file contents; save: use the extension
  kAdjacency,  // PBBS AdjacencyGraph text (".adj")
  kBinary,     // pcc binary (".badj"), v1 "PCCG" or v2 "PCC2"
  kSnap,       // SNAP edge list (".txt", ".snap", ".el")
};

// Map a CLI/extension name ("auto", "adj", "badj", "snap") to a format.
// Throws std::runtime_error on an unknown name.
file_format format_from_name(const std::string& name);

struct io_options {
  // Chunked mmap + from_chars parse; false selects the reference serial
  // readers (kept for A/B benchmarking and differential tests).
  bool parallel = true;
  // Map the file read-only; false (or an mmap failure) falls back to
  // buffered read() into memory.
  bool use_mmap = true;
  // Verify the checksum trailer of binary v2 files that carry one.
  bool verify_checksum = true;
  // Write side: binary format version to emit (2, or 1 for the legacy
  // uncheckedsummed "PCCG" layout) and whether v2 appends a checksum.
  int binary_version = 2;
  bool binary_checksum = true;
  // Per-phase wall-clock accounting ("io.map", "io.parse", "io.compact",
  // "io.build", "io.validate", "io.checksum", "io.write"); null disables.
  parallel::phase_timer* phases = nullptr;
};

// One entry point for every reader: dispatches on `format` (kAuto sniffs
// the leading bytes: binary magic, then "AdjacencyGraph", else SNAP).
// Throws std::runtime_error with a path-prefixed diagnostic on any
// malformed, truncated or corrupt input.
graph load_graph(const std::string& path, file_format format = file_format::kAuto,
                 const io_options& opt = {});

// Writer twin of load_graph; kAuto picks the format from the extension
// (".badj"/".bin" binary, ".txt"/".snap"/".el" edge list, else adj text).
void save_graph(const graph& g, const std::string& path,
                file_format format = file_format::kAuto,
                const io_options& opt = {});

// PBBS format:
//   AdjacencyGraph
//   <n>
//   <m>
//   <n offsets, one per line>
//   <m edge targets, one per line>
// Throws std::runtime_error on malformed input (including offsets[0] != 0,
// which would silently orphan edges before the first vertex's range).
graph read_adjacency_graph(const std::string& path, const io_options& opt = {});
void write_adjacency_graph(const graph& g, const std::string& path);

// Binary format (".badj"), little-endian:
//   v2: magic "PCC2", u32 flags, u64 n, u64 m, (n+1) u64 offsets,
//       m u32 edge targets, then (if flags bit 0) a u64 checksum of
//       everything after the flags word (block-chunked XXH64, see
//       DESIGN.md). The file size must match the header exactly, so
//       truncation and trailing garbage are detected structurally.
//   v1: magic "PCCG", u64 n, u64 m, offsets, edges (no flags/checksum);
//       still readable, no longer written by default.
// Orders of magnitude faster than the text format at the paper's
// 1e8-edge scale.
graph read_binary_graph(const std::string& path, const io_options& opt = {});
void write_binary_graph(const graph& g, const std::string& path,
                        const io_options& opt = {});

// SNAP edge list: lines of "u<TAB or SPACE>v"; '#' lines are comments.
// Vertex ids are compacted to [0, n) in first-appearance order (identical
// for the serial and parallel paths); the graph is symmetrized and
// deduplicated. Throws std::runtime_error on malformed input.
graph read_snap_edge_list(const std::string& path, const io_options& opt = {});
void write_edge_list(const graph& g, const std::string& path);

}  // namespace pcc::graph
