// Graph I/O: PBBS AdjacencyGraph text format and SNAP-style edge lists.
//
// The paper's inputs are PBBS-generated graphs plus com-Orkut from SNAP;
// these readers let the genuine files be used when available.
#pragma once

#include <string>

#include "graph/graph.hpp"

namespace pcc::graph {

// PBBS format:
//   AdjacencyGraph
//   <n>
//   <m>
//   <n offsets, one per line>
//   <m edge targets, one per line>
// Throws std::runtime_error on malformed input.
graph read_adjacency_graph(const std::string& path);
void write_adjacency_graph(const graph& g, const std::string& path);

// Binary format (".badj"): magic "PCCG", u64 n, u64 m, n+1 u64 offsets,
// m u32 edge targets, little-endian. Orders of magnitude faster than the
// text format at the paper's 1e8-edge scale.
graph read_binary_graph(const std::string& path);
void write_binary_graph(const graph& g, const std::string& path);

// SNAP edge list: lines of "u<TAB or SPACE>v"; '#' lines are comments.
// Vertex ids are compacted to [0, n); the graph is symmetrized and
// deduplicated. Throws std::runtime_error on malformed input.
graph read_snap_edge_list(const std::string& path);
void write_edge_list(const graph& g, const std::string& path);

}  // namespace pcc::graph
