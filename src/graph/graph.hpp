// Immutable undirected graph in adjacency-array (CSR) form.
//
// Matches the representation in Section 4 of the paper: an array of vertex
// offsets V into an array of edges E; the graph is undirected and every
// edge is stored in both directions. The library requires vertex ids to
// fit in 31 bits because the decomposition algorithms use the sign bit of
// an edge entry to mark edges that were relabeled on the fly.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "parallel/defs.hpp"

namespace pcc::graph {

// Maximum supported vertex count (sign bit reserved for edge marking).
inline constexpr size_t kMaxVertices = size_t{1} << 31;

class graph {
 public:
  graph() : offsets_(1, 0) {}

  // offsets.size() == n+1, offsets[n] == edges.size(); edges holds the
  // targets of each directed edge. For an undirected graph both directions
  // must be present (builder::from_edges enforces this when asked).
  graph(std::vector<edge_id> offsets, std::vector<vertex_id> edges)
      : offsets_(std::move(offsets)), edges_(std::move(edges)) {
    assert(!offsets_.empty());
    assert(offsets_.back() == edges_.size());
    assert(num_vertices() <= kMaxVertices);
  }

  // Number of vertices.
  size_t num_vertices() const { return offsets_.size() - 1; }

  // Number of directed (stored) edges; an undirected edge counts twice.
  size_t num_edges() const { return edges_.size(); }

  // Number of undirected edges (assumes symmetric storage).
  size_t num_undirected_edges() const { return edges_.size() / 2; }

  edge_id offset(vertex_id v) const { return offsets_[v]; }

  vertex_id degree(vertex_id v) const {
    return static_cast<vertex_id>(offsets_[v + 1] - offsets_[v]);
  }

  // Neighbours of v as a read-only span.
  std::span<const vertex_id> neighbors(vertex_id v) const {
    return {edges_.data() + offsets_[v], degree(v)};
  }

  const std::vector<edge_id>& offsets() const { return offsets_; }
  const std::vector<vertex_id>& edges() const { return edges_; }

  // Give the backing vectors (and their capacity) back to the caller,
  // leaving an empty graph. Lets repeated-query paths that rebuild a CSR
  // each round (the registry's reorder wrapper) recycle the storage
  // instead of reallocating.
  std::pair<std::vector<edge_id>, std::vector<vertex_id>> release() && {
    std::pair<std::vector<edge_id>, std::vector<vertex_id>> out{
        std::move(offsets_), std::move(edges_)};
    offsets_.assign(1, 0);
    edges_.clear();
    return out;
  }

  bool empty() const { return num_vertices() == 0; }

 private:
  std::vector<edge_id> offsets_;   // size n+1
  std::vector<vertex_id> edges_;   // size m (directed)
};

// Non-owning CSR view: the same offsets/edges shape as `graph`, but over
// caller-managed storage (the connectivity engine keeps its per-level
// contracted graphs in workspace arenas and hands them around as views).
struct csr_view {
  std::span<const edge_id> offsets;  // size n+1
  std::span<const vertex_id> edges;  // size m

  size_t num_vertices() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  size_t num_edges() const { return edges.size(); }

  vertex_id degree(vertex_id v) const {
    return static_cast<vertex_id>(offsets[v + 1] - offsets[v]);
  }

  std::span<const vertex_id> neighbors(vertex_id v) const {
    return edges.subspan(offsets[v], degree(v));
  }

  static csr_view of(const graph& g) {
    return {std::span<const edge_id>(g.offsets()),
            std::span<const vertex_id>(g.edges())};
  }
};

// A directed edge as a (source, target) pair; edge lists are the interchange
// format between generators, the builder and I/O.
using edge = std::pair<vertex_id, vertex_id>;
using edge_list = std::vector<edge>;

}  // namespace pcc::graph
