// Locality layer: vertex relabelings that make the CSR cache-friendly.
//
// Every phase of the connectivity pipeline is memory-bound and streams over
// a CSR whose vertex order is whatever the input file (or generator)
// happened to use. On skewed inputs the hubs' label/parent words are the
// hot set, and scattering them across the id space turns every hub touch
// into a cache miss. This module builds permutations that pack that hot
// set — and the modes mirror the levers ROADMAP item 2 names:
//
//   kDegree  degree-descending: hubs first, ties in original id order
//            (stable radix sort of (max_degree - degree, id) keys).
//   kHub     hub-clustered: vertices with degree >= threshold packed
//            first in original relative order, tails after them also in
//            original relative order — cheaper than a full degree sort
//            and keeps tail locality the input already had.
//   kBfs     BFS visit order from per-component roots: neighbours get
//            nearby ids, which helps mesh/grid-shaped inputs.
//
// The contract, used by everything downstream (registry reorder wrapper,
// pcc_components --reorder): perm[old] = new, inv[new] = old, both proper
// permutations of [0, n); the relabeled graph is isomorphic to the input
// under perm, and a labeling of the relabeled graph maps back to original
// ids with map_labels_to_original (labels stay representatives of their
// component — see DESIGN.md "The locality layer").
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "parallel/arena.hpp"

namespace pcc::graph {

enum class reorder_mode : uint8_t { kNone, kDegree, kHub, kBfs };

// Stable printable name ("none", "degree", "hub", "bfs").
const char* reorder_name(reorder_mode m);

// Parse a mode name; returns false (and leaves *out untouched) on an
// unknown name. Accepts exactly the reorder_name spellings.
bool reorder_from_name(std::string_view name, reorder_mode* out);

// Build the permutation for `mode` into caller storage (perm and inv must
// each have g.num_vertices() elements); temporaries come from `ws`
// (rewound before returning). Deterministic: a fixed input graph gives the
// same permutation on every backend and worker count. kNone writes the
// identity.
void build_reorder_perm_into(const graph& g, reorder_mode mode,
                             std::span<vertex_id> perm,
                             std::span<vertex_id> inv,
                             parallel::workspace& ws);

// Relabel g under perm/inv into caller-provided CSR vectors (resized to
// n + 1 / m; capacity is reused across calls). The adjacency list of new
// vertex v' is the perm-image of inv[v']'s list, in that list's original
// order — no per-list sort, the CSR stays valid for every algorithm in the
// library (none assume sorted neighbours).
void relabel_into(const graph& g, std::span<const vertex_id> perm,
                  std::span<const vertex_id> inv,
                  std::vector<edge_id>& offsets, std::vector<vertex_id>& edges,
                  parallel::workspace& ws);

// One-shot convenience: permutation + relabeled graph.
struct reorder_result {
  graph g;                      // relabeled CSR
  std::vector<vertex_id> perm;  // perm[old] = new
  std::vector<vertex_id> inv;   // inv[new] = old
};
reorder_result reorder_graph(const graph& g, reorder_mode mode);

// Map a labeling of the relabeled graph back to original vertex ids:
// out[old] = inv[labels_new[perm[old]]]. If labels_new satisfies the
// representative invariant (every label is a vertex inside its component)
// so does the output, in original id space.
void map_labels_to_original(std::span<const vertex_id> labels_new,
                            std::span<const vertex_id> perm,
                            std::span<const vertex_id> inv,
                            std::span<vertex_id> out);

// Hub threshold used by kHub (exposed for tests/benches): a vertex is a
// hub when its degree is at least max(kHubMinDegree, kHubDegreeFactor *
// average directed degree).
inline constexpr size_t kHubMinDegree = 8;
inline constexpr size_t kHubDegreeFactor = 4;
size_t hub_degree_threshold(const graph& g);

}  // namespace pcc::graph
