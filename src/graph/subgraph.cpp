#include "graph/subgraph.hpp"

#include <unordered_map>

#include "graph/builder.hpp"
#include "graph/stats.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::graph {

graph induced_subgraph(const graph& g, const std::vector<uint8_t>& keep,
                       std::vector<vertex_id>* old_ids) {
  const size_t n = g.num_vertices();
  // Compact renumbering of kept vertices.
  std::vector<size_t> new_of;
  const size_t k = parallel::scan_exclusive_into(
      n, [&](size_t v) { return keep[v] ? size_t{1} : size_t{0}; }, new_of);
  if (old_ids != nullptr) {
    old_ids->resize(k);
    parallel::parallel_for(0, n, [&](size_t v) {
      // lint: private-write(new_of is an exclusive scan, injective on kept v)
      if (keep[v]) (*old_ids)[new_of[v]] = static_cast<vertex_id>(v);
    });
  }

  // Count surviving edges per kept vertex, scan, fill.
  std::vector<size_t> deg_off;
  const size_t m = parallel::scan_exclusive_into(
      n,
      [&](size_t v) {
        if (!keep[v]) return size_t{0};
        size_t d = 0;
        for (vertex_id w : g.neighbors(static_cast<vertex_id>(v))) {
          if (keep[w]) ++d;
        }
        return d;
      },
      deg_off);

  std::vector<edge_id> offsets(k + 1);
  std::vector<vertex_id> edges(m);
  parallel::parallel_for(0, n, [&](size_t v) {
    if (!keep[v]) return;
    // lint: private-write(new_of is an exclusive scan, injective on kept v)
    offsets[new_of[v]] = deg_off[v];
    size_t pos = deg_off[v];
    for (vertex_id w : g.neighbors(static_cast<vertex_id>(v))) {
      // lint: private-write(v owns the slice [deg_off[v], deg_off[v+1]))
      if (keep[w]) edges[pos++] = static_cast<vertex_id>(new_of[w]);
    }
  });
  offsets[k] = m;
  return graph(std::move(offsets), std::move(edges));
}

graph extract_component(const graph& g, const std::vector<vertex_id>& labels,
                        vertex_id component_label,
                        std::vector<vertex_id>* old_ids) {
  std::vector<uint8_t> keep(g.num_vertices());
  parallel::parallel_for(0, g.num_vertices(), [&](size_t v) {
    keep[v] = labels[v] == component_label ? 1 : 0;
  });
  return induced_subgraph(g, keep, old_ids);
}

graph largest_component(const graph& g, std::vector<vertex_id>* old_ids) {
  if (g.num_vertices() == 0) return graph();
  // Sequential labeling: this is a convenience utility; for large graphs
  // compute labels with pcc::cc::connected_components and call
  // extract_component directly.
  const auto labels = reference_components(g);
  std::unordered_map<vertex_id, size_t> counts;
  for (vertex_id l : labels) ++counts[l];
  vertex_id best = labels[0];
  size_t best_size = 0;
  for (const auto& [label, count] : counts) {
    if (count > best_size || (count == best_size && label < best)) {
      best = label;
      best_size = count;
    }
  }
  return extract_component(g, labels, best, old_ids);
}

}  // namespace pcc::graph
