#include "graph/stats.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "parallel/histogram.hpp"
#include "parallel/sample_sort.hpp"
#include "parallel/sequence.hpp"

namespace pcc::graph {

degree_stats compute_degree_stats(const graph& g) {
  degree_stats s;
  const size_t n = g.num_vertices();
  if (n == 0) return s;
  s.min = g.num_edges();
  for (size_t v = 0; v < n; ++v) {
    const size_t d = g.degree(static_cast<vertex_id>(v));
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    if (d == 0) ++s.isolated;
  }
  s.mean = static_cast<double>(g.num_edges()) / static_cast<double>(n);
  return s;
}

bool is_symmetric(const graph& g) {
  std::unordered_set<uint64_t> dir;
  dir.reserve(g.num_edges() * 2);
  for (size_t u = 0; u < g.num_vertices(); ++u) {
    for (vertex_id v : g.neighbors(static_cast<vertex_id>(u))) {
      dir.insert((static_cast<uint64_t>(u) << 32) | v);
    }
  }
  for (size_t u = 0; u < g.num_vertices(); ++u) {
    for (vertex_id v : g.neighbors(static_cast<vertex_id>(u))) {
      if (!dir.contains((static_cast<uint64_t>(v) << 32) | u)) return false;
    }
  }
  return true;
}

bool has_self_loops(const graph& g) {
  for (size_t u = 0; u < g.num_vertices(); ++u) {
    for (vertex_id v : g.neighbors(static_cast<vertex_id>(u))) {
      if (v == u) return true;
    }
  }
  return false;
}

bool has_duplicate_edges(const graph& g) {
  std::vector<vertex_id> nbrs;
  for (size_t u = 0; u < g.num_vertices(); ++u) {
    const auto span = g.neighbors(static_cast<vertex_id>(u));
    nbrs.assign(span.begin(), span.end());
    std::sort(nbrs.begin(), nbrs.end());
    if (std::adjacent_find(nbrs.begin(), nbrs.end()) != nbrs.end()) return true;
  }
  return false;
}

std::vector<vertex_id> reference_components(const graph& g) {
  const size_t n = g.num_vertices();
  std::vector<vertex_id> labels(n, kNoVertex);
  std::vector<vertex_id> queue;
  queue.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    if (labels[s] != kNoVertex) continue;
    const vertex_id root = static_cast<vertex_id>(s);
    labels[s] = root;
    queue.clear();
    queue.push_back(root);
    for (size_t head = 0; head < queue.size(); ++head) {
      const vertex_id u = queue[head];
      for (vertex_id w : g.neighbors(u)) {
        if (labels[w] == kNoVertex) {
          labels[w] = root;
          queue.push_back(w);
        }
      }
    }
  }
  return labels;
}

size_t count_components(const graph& g) {
  const auto labels = reference_components(g);
  size_t count = 0;
  for (size_t v = 0; v < labels.size(); ++v) {
    if (labels[v] == v) ++count;
  }
  return count;
}

size_t bfs_eccentricity(const graph& g, vertex_id source) {
  const size_t n = g.num_vertices();
  std::vector<uint32_t> dist(n, ~0u);
  std::vector<vertex_id> queue{source};
  dist[source] = 0;
  size_t ecc = 0;
  for (size_t head = 0; head < queue.size(); ++head) {
    const vertex_id u = queue[head];
    for (vertex_id w : g.neighbors(u)) {
      if (dist[w] == ~0u) {
        dist[w] = dist[u] + 1;
        ecc = std::max<size_t>(ecc, dist[w]);
        queue.push_back(w);
      }
    }
  }
  return ecc;
}

std::vector<size_t> component_sizes(const std::vector<vertex_id>& labels) {
  const size_t n = labels.size();
  // Labels produced by this library are vertex ids, so a dense parallel
  // histogram applies; fall back to a hash map for arbitrary labels.
  bool dense = true;
  for (vertex_id l : labels) {
    if (l >= n) {
      dense = false;
      break;
    }
  }
  std::vector<size_t> sizes;
  if (dense) {
    const auto counts =
        parallel::histogram(n, n, [&](size_t i) { return labels[i]; });
    sizes = parallel::filter(counts, [](size_t c) { return c > 0; });
  } else {
    std::unordered_map<vertex_id, size_t> counts;
    for (vertex_id l : labels) ++counts[l];
    sizes.reserve(counts.size());
    for (const auto& [label, c] : counts) sizes.push_back(c);
  }
  parallel::sample_sort(sizes, std::greater<>());
  return sizes;
}

}  // namespace pcc::graph
