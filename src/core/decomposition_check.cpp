// Decomposition quality measurement (test oracle + decomposition_demo).

#include <algorithm>
#include <unordered_map>

#include "core/ldd.hpp"
#include "graph/stats.hpp"

namespace pcc::ldd {

decomposition_quality check_decomposition(
    const graph::graph& g, const std::vector<vertex_id>& cluster) {
  decomposition_quality q;
  const size_t n = g.num_vertices();
  if (cluster.size() != n) return q;

  // Well-formedness: every vertex labeled, every label is a center that
  // labels itself.
  for (size_t v = 0; v < n; ++v) {
    const vertex_id c = cluster[v];
    if (c == kNoVertex || c >= n || cluster[c] != c) return q;
  }

  // Group vertices by cluster.
  std::unordered_map<vertex_id, std::vector<vertex_id>> members;
  for (size_t v = 0; v < n; ++v) {
    members[cluster[v]].push_back(static_cast<vertex_id>(v));
  }
  q.num_clusters = members.size();

  // Inter-cluster edge count (directed, over the original graph).
  size_t inter = 0;
  for (size_t u = 0; u < n; ++u) {
    for (vertex_id w : g.neighbors(static_cast<vertex_id>(u))) {
      if (cluster[u] != cluster[w]) ++inter;
    }
  }
  q.inter_cluster_edges = inter;
  q.inter_cluster_fraction =
      g.num_edges() == 0
          ? 0.0
          : static_cast<double>(inter) / static_cast<double>(g.num_edges());

  // Connectivity and diameter of each cluster, by BFS restricted to the
  // cluster. Diameter is measured exactly (all-pairs via per-vertex BFS)
  // for small clusters and lower-bounded by double-sweep for large ones;
  // either way a violation of the O(log n / beta) bound would show up.
  std::vector<uint32_t> dist(n);
  std::vector<vertex_id> queue;
  const auto bfs_within = [&](vertex_id source, const vertex_id label,
                              size_t* reached) {
    // Returns eccentricity of source inside its cluster.
    constexpr uint32_t kInf = ~0u;
    queue.clear();
    queue.push_back(source);
    dist[source] = 0;
    size_t count = 1;
    uint32_t ecc = 0;
    for (size_t head = 0; head < queue.size(); ++head) {
      const vertex_id u = queue[head];
      for (vertex_id w : g.neighbors(u)) {
        if (cluster[w] == label && dist[w] == kInf) {
          dist[w] = dist[u] + 1;
          ecc = std::max(ecc, dist[w]);
          ++count;
          queue.push_back(w);
        }
      }
    }
    if (reached != nullptr) *reached = count;
    return ecc;
  };

  constexpr size_t kExactDiameterLimit = 256;
  std::fill(dist.begin(), dist.end(), ~0u);
  for (const auto& [label, verts] : members) {
    size_t reached = 0;
    uint32_t ecc = bfs_within(label, label, &reached);
    if (reached != verts.size()) return q;  // cluster not connected
    size_t diameter = ecc;
    if (verts.size() <= kExactDiameterLimit) {
      for (vertex_id s : verts) {
        for (vertex_id u : verts) dist[u] = ~0u;
        diameter = std::max<size_t>(diameter, bfs_within(s, label, nullptr));
      }
    } else {
      // Double sweep from the farthest vertex found.
      vertex_id far = label;
      uint32_t best = 0;
      for (vertex_id u : verts) {
        if (dist[u] != ~0u && dist[u] >= best) {
          best = dist[u];
          far = u;
        }
      }
      for (vertex_id u : verts) dist[u] = ~0u;
      diameter = std::max<size_t>(diameter, bfs_within(far, label, nullptr));
    }
    for (vertex_id u : verts) dist[u] = ~0u;
    q.max_cluster_diameter = std::max(q.max_cluster_diameter, diameter);
  }
  q.well_formed = true;
  return q;
}

}  // namespace pcc::ldd
