// Reusable executor for the paper's Algorithm 1.
//
// connected_components() answers one query and returns; every level of its
// decompose-contract-recurse pipeline used to allocate (and fault in) fresh
// vectors. The engine replaces the recursion with an iterative level loop
// whose state lives in three workspace arenas (parallel/arena.hpp):
//
//   persist_   — the final labels plus, per level, the cluster / new_id /
//                rep arrays the lift pass reads back down the level stack.
//   scratch_   — per-level transients (shift schedule, frontiers, flag
//                arrays, packed pairs, hash table); rewound after each use.
//   graph_[2]  — the level graphs' CSR storage, ping-ponged: contraction at
//                level L writes G_{L+1} into the arena not holding G_L.
//
// The arenas warm up over the first run (and consolidate to their
// high-water mark); after that, run() performs no heap allocation — the
// property the repeated-query benchmarks and tools/pcc_components --repeat
// rely on, and which tests/core/test_cc_engine.cpp verifies with an
// operator-new counting hook.
#pragma once

#include <span>
#include <vector>

#include "core/connectivity.hpp"
#include "graph/graph.hpp"
#include "parallel/arena.hpp"

namespace pcc::cc {

class cc_engine {
 public:
  explicit cc_engine(const cc_options& opt = {}) : opt_(opt) {}

  // Pre-size the arenas for a graph with n vertices and m directed edges so
  // the first run() mostly avoids mid-flight chunk chaining. Optional: the
  // arenas self-size from the first run's high-water mark regardless.
  void reserve(size_t n, size_t m);

  // Compute connected components of g. The returned span (size
  // g.num_vertices()) points into the engine's persistent arena and stays
  // valid until the next run()/reserve() call or the engine's destruction.
  // Results are identical to connected_components(g, options()).
  std::span<const vertex_id> run(const graph::graph& g,
                                 cc_stats* stats = nullptr);

  // Same, but with per-run options (the registry shares ONE engine across
  // the decomp-* variants, so the variant/beta/seed travel with the call
  // rather than being baked in at construction). The arenas are shaped by
  // sizes, not options, so switching options between runs keeps the
  // allocation-free property.
  std::span<const vertex_id> run(const graph::graph& g, const cc_options& opt,
                                 cc_stats* stats = nullptr);

  const cc_options& options() const { return opt_; }

 private:
  // Lift state recorded per level, read back bottom-up by the lift pass.
  struct level_frame {
    std::span<const vertex_id> cluster;  // size n (this level's graph)
    std::span<const vertex_id> new_id;   // size n
    std::span<const vertex_id> rep;      // size k (next level's graph)
    size_t n = 0;
  };

  cc_options opt_;
  parallel::workspace persist_;
  parallel::workspace scratch_;
  parallel::workspace graph_[2];
  std::vector<level_frame> frames_;
};

}  // namespace pcc::cc
