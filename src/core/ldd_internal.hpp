// Shared internals of the decomposition variants: the shift-value schedule
// and the edge-marking helpers. Not part of the public API.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "core/ldd.hpp"
#include "parallel/arena.hpp"
#include "parallel/integer_sort.hpp"
#include "parallel/random.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::ldd::internal {

// Sign-bit marking of edge entries (paper: "sets the sign bit of the value
// (negates it and subtracts 1)"). With 31-bit vertex ids we use the top bit
// of the uint32 entry.
inline constexpr vertex_id kEdgeMark = vertex_id{1} << 31;
inline constexpr vertex_id mark_edge(vertex_id label) { return label | kEdgeMark; }
inline constexpr vertex_id unmark_edge(vertex_id e) { return e & ~kEdgeMark; }
inline constexpr bool is_marked(vertex_id e) { return (e & kEdgeMark) != 0; }

// Produces, per BFS round, the batch of vertices whose shift value falls in
// [round, round+1) — the candidates to become new BFS centers (those still
// unvisited actually start one).
//
// kPermutationChunks simulates the exponential shifts as the paper
// describes: a random permutation is generated in parallel and round t
// takes the prefix of size ceil(e^{beta*t}) (so chunk sizes grow
// exponentially); round 0 always starts exactly one BFS.
//
// kExponentialShifts draws delta_v ~ Exp(beta) exactly, buckets vertices by
// floor(delta_v) with one integer sort, and serves bucket t at round t.
class shift_schedule {
 public:
  // The order array (and, in permutation mode, the sort scratch) comes from
  // `ws`; it must stay live for the schedule's lifetime, so the caller's
  // rewind scope has to enclose the schedule.
  shift_schedule(size_t n, const options& opt, parallel::workspace& ws)
      : n_(n) {
    order_ = ws.take<vertex_id>(n);
    if (opt.shifts == shift_mode::kPermutationChunks) {
      parallel::random_permutation_into(n, opt.seed, order_, ws);
      beta_ = opt.beta;
    } else {
      // Exact shifts: delta_v ~ Exp(beta); the BFS of v starts at time
      // delta_max - delta_v (the largest shift starts first — this reversal
      // is what makes the number of active BFS's grow exponentially, which
      // the permutation-chunk mode simulates). Bucket vertices by
      // floor(start time) with one integer sort.
      const parallel::rng gen = parallel::rng(opt.seed).split(7);
      std::vector<double> delta(n);
      parallel::parallel_for(0, n, [&](size_t v) {
        delta[v] = gen.exponential(v, opt.beta);
      });
      const double delta_max = parallel::reduce_max<double>(
          n, [&](size_t v) { return delta[v]; }, 0.0);
      std::vector<std::pair<uint32_t, vertex_id>> keyed(n);
      parallel::parallel_for(0, n, [&](size_t v) {
        const double start = std::max(0.0, delta_max - delta[v]);
        keyed[v] = {static_cast<uint32_t>(std::min(start, 4.0e9)),
                    static_cast<vertex_id>(v)};
      });
      uint32_t max_floor = parallel::reduce_max<uint32_t>(
          n, [&](size_t i) { return keyed[i].first; }, 0);
      parallel::integer_sort(
          keyed, parallel::bits_needed(static_cast<uint64_t>(max_floor) + 1),
          [](const auto& p) { return p.first; });
      bucket_end_.assign(static_cast<size_t>(max_floor) + 2, 0);
      parallel::parallel_for(0, n, [&](size_t i) {
        order_[i] = keyed[i].second;
      });
      // bucket_end_[t] = first index with floor > t (sequential; #buckets
      // is O(log n / beta)).
      size_t i = 0;
      for (size_t t = 0; t + 1 < bucket_end_.size(); ++t) {
        while (i < n && keyed[i].first <= t) ++i;
        bucket_end_[t] = i;
      }
      bucket_end_.back() = n;
    }
  }

  // Vertices whose shift lies in [round, round+1), as a subrange of the
  // internal order array. Returns {begin_index, end_index}.
  std::pair<size_t, size_t> batch(size_t round) const {
    if (bucket_end_.empty()) {
      // Permutation chunks: by the end of round t the first
      // ceil(e^{beta*t}) permutation entries have been offered, so round 0
      // starts exactly one BFS and chunk sizes grow by e^beta per round.
      const size_t end = chunk_prefix(round);
      const size_t begin = round == 0 ? 0 : chunk_prefix(round - 1);
      return {begin, end};
    }
    const size_t t = std::min(round, bucket_end_.size() - 1);
    const size_t begin = t == 0 ? 0 : bucket_end_[t - 1];
    return {begin, bucket_end_[t]};
  }

  vertex_id vertex_at(size_t i) const { return order_[i]; }

  // True when every vertex has been offered as a center candidate.
  bool exhausted(size_t round) const { return batch(round).second >= n_; }

 private:
  // Number of permutation entries offered by the START of `round`:
  // ceil(e^{beta * round}), clamped to n; round 0 offers exactly 1 center.
  size_t chunk_prefix(size_t round) const {
    const double expo = beta_ * static_cast<double>(round);
    if (expo > std::log(static_cast<double>(n_) + 1.0) + 1.0) return n_;
    return std::min(n_, static_cast<size_t>(std::ceil(std::exp(expo))));
  }

  size_t n_;
  double beta_ = 0.0;
  std::span<vertex_id> order_;      // workspace-backed, size n
  std::vector<size_t> bucket_end_;  // non-empty iff exponential mode
};

// Append the unvisited members of this round's batch as new BFS centers:
// sets visited-state via `make_center(v)` and pushes v onto `frontier`
// starting at index `frontier_size` (the caller advances its size by the
// returned count — a vertex joins the frontier at most once over a whole
// decomposition, so a capacity of n always suffices). Candidates within
// one batch are distinct (they come from a permutation), so no
// synchronization is needed against each other; the caller guarantees
// phase separation from edge processing. Flag/scan scratch comes from `ws`
// and is rewound before returning.
template <typename IsUnvisited, typename MakeCenter>
size_t add_new_centers(const shift_schedule& sched, size_t round,
                       std::span<vertex_id> frontier, size_t frontier_size,
                       parallel::workspace& ws, IsUnvisited&& is_unvisited,
                       MakeCenter&& make_center) {
  const auto [begin, end] = sched.batch(round);
  if (begin >= end) return 0;
  parallel::workspace::scope s(ws);
  // Two-pass pack keeps the frontier deterministic: flag, scan, scatter.
  std::span<uint8_t> flags = ws.take<uint8_t>(end - begin);
  std::span<size_t> pos = ws.take<size_t>(end - begin);
  parallel::parallel_for(begin, end, [&](size_t i) {
    const vertex_id v = sched.vertex_at(i);
    // lint: private-write(iteration i owns slot i - begin)
    flags[i - begin] = is_unvisited(v) ? 1 : 0;
  });
  const size_t added = parallel::scan_exclusive_span<size_t>(
      flags.size(), [&](size_t i) { return static_cast<size_t>(flags[i]); },
      pos, ws);
  parallel::parallel_for(begin, end, [&](size_t i) {
    if (flags[i - begin]) {
      const vertex_id v = sched.vertex_at(i);
      make_center(v);
      // lint: private-write(pos is an exclusive scan, injective on flagged i)
      frontier[frontier_size + pos[i - begin]] = v;
    }
  });
  return added;
}

// Assemble the vector-returning `result` the public wrappers expose from a
// span-based core's outputs.
inline result to_result(std::vector<vertex_id>&& cluster,
                        const decomp_info& info) {
  result res;
  res.cluster = std::move(cluster);
  res.num_clusters = info.num_clusters;
  res.num_rounds = info.num_rounds;
  res.num_dense_rounds = info.num_dense_rounds;
  res.edges_kept = info.edges_kept;
  return res;
}

}  // namespace pcc::ldd::internal
