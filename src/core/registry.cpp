// The algorithm registry table and the runners adapting every
// implementation to the common workspace-backed signature.

#include "core/registry.hpp"

#include <array>
#include <cassert>
#include <stdexcept>
#include <vector>
#include <thread>

#include "baselines/baselines.hpp"
#include "core/labeling.hpp"
#include "core/select.hpp"
#include "graph/reorder.hpp"
#include "parallel/atomics.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/timer.hpp"

namespace pcc::cc {

namespace {

void copy_labels(std::span<const vertex_id> src, std::span<vertex_id> dst) {
  parallel::parallel_for(0, src.size(), [&](size_t i) {
    dst[i] = src[i];  // lint: private-write(owner index i)
  });
}

// --- decomp-*: the paper's pipeline through the shared engine ----------
// The variant is pinned by the registry entry; every other knob (beta,
// shifts, dedup, seed, ...) travels with the caller's options. The options
// copy below builds a fresh cc_options rather than copying opt wholesale
// so no std::string copy can touch the heap on the repeated-query path.
template <decomp_variant V>
void run_decomp(const graph::graph& g, const cc_options& opt,
                algo_workspace& ws, std::span<vertex_id> out, cc_stats* stats) {
  cc_options o;
  o.variant = V;
  o.beta = opt.beta;
  o.shifts = opt.shifts;
  o.dedup = opt.dedup;
  o.dedup_route = opt.dedup_route;
  o.seed = opt.seed;
  o.dense_threshold = opt.dense_threshold;
  o.parallel_edge_threshold = opt.parallel_edge_threshold;
  o.max_levels = opt.max_levels;
  copy_labels(ws.engine.run(g, o, stats), out);
}

// --- spanning-forest: the witness-carrying pipeline ---------------------
// Labels AND a forest in one pass; the forest lands in ws.last_forest for
// consumers that asked for it (pcc_components --forest, pcc_query) and is
// free to ignore otherwise. Same fresh-options discipline as run_decomp.
void run_spanning_forest(const graph::graph& g, const cc_options& opt,
                         algo_workspace& ws, std::span<vertex_id> out,
                         cc_stats* stats) {
  cc_options o;
  o.beta = opt.beta;
  o.shifts = opt.shifts;
  o.dedup = opt.dedup;
  o.dedup_route = opt.dedup_route;
  o.seed = opt.seed;
  o.max_levels = opt.max_levels;
  const sf_engine::result r = ws.sf.run(g, o, stats);
  copy_labels(r.labels, out);
  ws.last_forest = r.forest;
}

// --- Liu–Tarjan labeling variants, indexed into liu_tarjan_variants() ---
template <size_t I>
void run_lt(const graph::graph& g, const cc_options&, algo_workspace& ws,
            std::span<vertex_id> out, cc_stats*) {
  liu_tarjan_into(g, liu_tarjan_variants()[I].policy, out, ws.scratch);
}

// --- workspace-backed baselines ----------------------------------------
void run_serial_sf_rem(const graph::graph& g, const cc_options&,
                       algo_workspace&, std::span<vertex_id> out, cc_stats*) {
  baselines::serial_sf_rem_into(g, out);
}

void run_parallel_sf_rem(const graph::graph& g, const cc_options&,
                         algo_workspace& ws, std::span<vertex_id> out,
                         cc_stats*) {
  baselines::parallel_sf_rem_into(g, ws.scratch, out);
}

void run_afforest(const graph::graph& g, const cc_options& opt,
                  algo_workspace& ws, std::span<vertex_id> out, cc_stats*) {
  baselines::afforest_into(g, opt.seed, ws.scratch, out);
}

void run_hybrid_bfs(const graph::graph& g, const cc_options&,
                    algo_workspace& ws, std::span<vertex_id> out, cc_stats*) {
  baselines::hybrid_bfs_components_into(g, out, ws.bfs);
}

// --- vector-returning baselines, adapted by copy ------------------------
void run_serial_sf(const graph::graph& g, const cc_options&, algo_workspace&,
                   std::span<vertex_id> out, cc_stats*) {
  copy_labels(baselines::serial_sf_components(g), out);
}

void run_parallel_sf_prm(const graph::graph& g, const cc_options&,
                         algo_workspace&, std::span<vertex_id> out, cc_stats*) {
  copy_labels(baselines::parallel_sf_prm_components(g), out);
}

void run_parallel_sf_pbbs(const graph::graph& g, const cc_options&,
                          algo_workspace&, std::span<vertex_id> out,
                          cc_stats*) {
  copy_labels(baselines::parallel_sf_pbbs_components(g), out);
}

void run_multistep(const graph::graph& g, const cc_options&, algo_workspace&,
                   std::span<vertex_id> out, cc_stats*) {
  copy_labels(baselines::multistep_components(g), out);
}

void run_label_prop(const graph::graph& g, const cc_options&, algo_workspace&,
                    std::span<vertex_id> out, cc_stats*) {
  copy_labels(baselines::label_prop_components(g), out);
}

void run_shiloach_vishkin(const graph::graph& g, const cc_options&,
                          algo_workspace&, std::span<vertex_id> out,
                          cc_stats*) {
  copy_labels(baselines::shiloach_vishkin_components(g), out);
}

void run_random_mate(const graph::graph& g, const cc_options& opt,
                     algo_workspace&, std::span<vertex_id> out, cc_stats*) {
  copy_labels(baselines::random_mate_components(g, opt.seed), out);
}

void run_awerbuch_shiloach(const graph::graph& g, const cc_options&,
                           algo_workspace&, std::span<vertex_id> out,
                           cc_stats*) {
  copy_labels(baselines::awerbuch_shiloach_components(g), out);
}

// --- the reorder wrapper -------------------------------------------------
// Run `algo` on a relabeled copy of g and map the labels back to original
// vertex ids (contract in graph/reorder.hpp). Applied by run_algorithm for
// a pinned cc_options::reorder and by run_auto when select_reorder fires.
// algo.run never consults opt.reorder, so the options pass through
// unchanged and a query is wrapped at most once. The relabeled CSR's
// storage is recycled through the workspace vectors, so repeated wrapped
// queries stop allocating once the capacities are warm.
void run_reordered(const algorithm& algo, const graph::graph& g,
                   const cc_options& opt, graph::reorder_mode mode,
                   algo_workspace& ws, std::span<vertex_id> out,
                   cc_stats* stats) {
  const size_t n = g.num_vertices();
  parallel::timer build_timer;
  ws.perm.resize(n);
  ws.inv.resize(n);
  graph::build_reorder_perm_into(g, mode, ws.perm, ws.inv, ws.scratch);
  graph::relabel_into(g, ws.perm, ws.inv, ws.reorder_offsets,
                      ws.reorder_edges, ws.scratch);
  graph::graph rg(std::move(ws.reorder_offsets),
                  std::move(ws.reorder_edges));
  ws.staged_labels.resize(n);
  if (stats != nullptr) {
    stats->reorder = graph::reorder_name(mode);
    stats->phases.add("reorder", build_timer.elapsed());
  }

  algo.run(rg, opt, ws, ws.staged_labels, stats);

  parallel::timer map_timer;
  graph::map_labels_to_original(ws.staged_labels, ws.perm, ws.inv, out);
  if (algo.produces_forest) {
    // The forest's endpoints are relabeled ids; pull them back through inv
    // into workspace storage (the engine's own forest describes rg, not g).
    const std::span<const graph::edge> rf = ws.last_forest;
    ws.forest_remap.resize(rf.size());
    parallel::parallel_for(0, rf.size(), [&](size_t i) {
      // lint: private-write(owner index i)
      ws.forest_remap[i] = {ws.inv[rf[i].first], ws.inv[rf[i].second]};
    });
    ws.last_forest = {ws.forest_remap.data(), ws.forest_remap.size()};
  }
  if (algo.canonical_labels) {
    // Restore the min-label form the descriptor promises: the relabeled
    // run's minima map back to the vertex with the smallest NEW id in each
    // component, which need not be the smallest original id.
    parallel::workspace::scope s(ws.scratch);
    std::span<vertex_id> cmin =
        ws.scratch.take_filled<vertex_id>(n, kNoVertex);
    parallel::parallel_for(0, n, [&](size_t v) {
      parallel::write_min(&cmin[out[v]], static_cast<vertex_id>(v));
    });
    parallel::parallel_for(0, n, [&](size_t v) {
      out[v] = cmin[out[v]];  // lint: private-write(owner index v)
    });
  }
  auto released = std::move(rg).release();
  ws.reorder_offsets = std::move(released.first);
  ws.reorder_edges = std::move(released.second);
  if (stats != nullptr) stats->phases.add("reorder", map_timer.elapsed());
}

// --- auto: probe, select, delegate --------------------------------------
void run_auto(const graph::graph& g, const cc_options& opt, algo_workspace& ws,
              std::span<vertex_id> out, cc_stats* stats) {
  const probe_stats ps = probe_graph(g, opt.seed, ws.scratch);
  // The selector's >1-worker branches are about parallel speedup, and
  // workers beyond the physical cores provide none: the fig8 thread sweep
  // (results/BENCH_fig8_threads.json) shows oversubscribed decomp runs no
  // faster than the core-count point, only noisier. num_workers() can
  // legitimately exceed the core count (scoped_workers sweeps, the pool's
  // lazily-spawned cap), so feed the selector min(workers, cores). Before
  // the worker-count plumbing fix the pool backend fed its full spawned
  // size here regardless of scoped_workers — auto picks now honour the
  // caller's cap.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int workers = parallel::num_workers();
  const char* pick =
      select_algorithm(ps, hw > 0 ? std::min(workers, hw) : workers);
  const algorithm* chosen = find_algorithm(pick);
  assert(chosen != nullptr && chosen->run != &run_auto);
  // Locality relabeling around the pick: kAuto consults the probe (the
  // selector only fires on large, heavily skewed inputs), anything else is
  // the caller's pinned choice passed through.
  graph::reorder_mode mode = graph::reorder_mode::kNone;
  if (opt.reorder == reorder_policy::kAuto) {
    mode = select_reorder(ps);
  } else if (opt.reorder != reorder_policy::kNone) {
    mode = reorder_mode_of(opt.reorder);
  }
  if (stats != nullptr) stats->algorithm = chosen->name;
  if (mode != graph::reorder_mode::kNone && g.num_vertices() > 0) {
    run_reordered(*chosen, g, opt, mode, ws, out, stats);
  } else {
    chosen->run(g, opt, ws, out, stats);
  }
  if (stats != nullptr) {
    stats->selected = true;
    stats->probe = ps;
  }
}

std::vector<algorithm> build_table() {
  std::vector<algorithm> t;
  const auto add = [&](const char* name, const char* description,
                       bool canonical, bool seeded, bool ws_backed,
                       decltype(algorithm::run) run, bool forest = false) {
    t.push_back({name, description, canonical, seeded, ws_backed, forest,
                 run});
  };
  add("auto", "probe the graph, pick a registered algorithm (core/select)",
      false, true, true, &run_auto);
  add("decomp-arb-hybrid",
      "decompose-contract, arbitrary-CC hybrid traversal (paper default)",
      false, true, true, &run_decomp<decomp_variant::kArbHybrid>);
  add("decomp-arb", "decompose-contract, arbitrary-CC write-based traversal",
      false, true, true, &run_decomp<decomp_variant::kArb>);
  add("decomp-min", "decompose-contract, deterministic min-CC traversal",
      false, true, true, &run_decomp<decomp_variant::kMin>);
  add("spanning-forest",
      "witness-carrying decompose-contract: labels + spanning forest",
      false, true, true, &run_spanning_forest, /*forest=*/true);
  add("serial-sf", "sequential union-find spanning forest (PBBS baseline)",
      false, false, false, &run_serial_sf);
  add("serial-sf-rem", "sequential Rem's splicing union-find (Patwary et al.)",
      true, false, true, &run_serial_sf_rem);
  add("parallel-sf-prm", "lock-based multicore union-find (PRM, IPDPS'12)",
      false, false, false, &run_parallel_sf_prm);
  add("parallel-sf-pbbs", "deterministic-reservations spanning forest (PBBS)",
      false, false, false, &run_parallel_sf_pbbs);
  add("parallel-sf-rem", "lock-based parallel Rem's union-find (PRM study)",
      true, false, true, &run_parallel_sf_rem);
  add("hybrid-bfs", "direction-optimizing BFS per component (Ligra-style)",
      true, false, true, &run_hybrid_bfs);
  add("multistep", "BFS giant component + label propagation (Slota et al.)",
      false, false, false, &run_multistep);
  add("label-prop", "pure label propagation (graph-systems baseline)", true,
      false, false, &run_label_prop);
  add("shiloach-vishkin", "classic hook-and-shortcut (Shiloach-Vishkin 1982)",
      true, false, false, &run_shiloach_vishkin);
  add("random-mate", "Reif/Phillips random-mate contraction", false, true,
      false, &run_random_mate);
  add("awerbuch-shiloach", "Awerbuch-Shiloach tree hooking", false, false,
      false, &run_awerbuch_shiloach);
  add("afforest", "sampled neighbour rounds + giant-component skip (Afforest)",
      true, true, true, &run_afforest);

  // The Liu–Tarjan lattice, one entry per named variant. kLtRuns must stay
  // in lockstep with liu_tarjan_variants() — checked below.
  constexpr std::array<decltype(algorithm::run), 10> kLtRuns = {
      &run_lt<0>, &run_lt<1>, &run_lt<2>, &run_lt<3>, &run_lt<4>,
      &run_lt<5>, &run_lt<6>, &run_lt<7>, &run_lt<8>, &run_lt<9>};
  const std::span<const lt_variant> lts = liu_tarjan_variants();
  assert(lts.size() == kLtRuns.size());
  for (size_t i = 0; i < lts.size() && i < kLtRuns.size(); ++i) {
    add(lts[i].name, lts[i].description, true, false, true, kLtRuns[i]);
  }
  return t;
}

const std::vector<algorithm>& table() {
  static const std::vector<algorithm> t = build_table();
  return t;
}

}  // namespace

void algo_workspace::reserve(size_t n, size_t m) {
  engine.reserve(n, m);
  // Worst scratch customer is an alter-mode labeling run: two m-sized
  // packed-pair ping-pong buffers plus emission block counts.
  scratch.reserve(2 * sizeof(parallel::packed_pair) * m +
                  8 * sizeof(vertex_id) * n);
  bfs.ensure(n);
}

std::span<const algorithm> algorithms() { return table(); }

const algorithm* find_algorithm(std::string_view name) {
  for (const algorithm& a : table()) {
    if (name == a.name) return &a;
  }
  return nullptr;
}

const algorithm& resolve_algorithm(const cc_options& opt) {
  std::string_view name = opt.algorithm;
  if (name == "decomp") {
    switch (opt.variant) {
      case decomp_variant::kMin:
        name = "decomp-min";
        break;
      case decomp_variant::kArb:
        name = "decomp-arb";
        break;
      case decomp_variant::kArbHybrid:
        name = "decomp-arb-hybrid";
        break;
    }
  }
  const algorithm* a = find_algorithm(name);
  if (a == nullptr) {
    throw std::invalid_argument("unknown connectivity algorithm \"" +
                                opt.algorithm + "\" (see cc::algorithms())");
  }
  return *a;
}

void run_algorithm(const algorithm& algo, const graph::graph& g,
                   const cc_options& opt, algo_workspace& ws,
                   std::span<vertex_id> labels_out, cc_stats* stats) {
  assert(labels_out.size() == g.num_vertices());
  ws.last_forest = {};  // stale forests must not outlive their query
  if (stats != nullptr) {
    stats->algorithm = algo.name;
    stats->reorder = "none";  // reused stats must not keep a stale mode
  }
  // A pinned reorder wraps any fixed algorithm here; "auto" decides inside
  // run_auto with the probe in hand (and is excluded here so a query is
  // wrapped exactly once).
  const bool pinned = opt.reorder != reorder_policy::kAuto &&
                      opt.reorder != reorder_policy::kNone;
  if (pinned && algo.run != &run_auto && g.num_vertices() > 0) {
    run_reordered(algo, g, opt, reorder_mode_of(opt.reorder), ws, labels_out,
                  stats);
    return;
  }
  algo.run(g, opt, ws, labels_out, stats);
}

std::string algorithm_listing() {
  std::string out;
  for (const algorithm& a : table()) {
    out += "  ";
    out += a.name;
    size_t pad = a.name[0] != '\0' ? std::string_view(a.name).size() : 0;
    for (; pad < 20; ++pad) out += ' ';
    out += a.description;
    out += '\n';
  }
  return out;
}

}  // namespace pcc::cc
