// Decomp-Arb (Algorithm 3 of the paper).
//
// One phase per BFS frontier: a frontier vertex v scans its remaining
// edges; an unvisited neighbour w is claimed with a CAS on C[w] (arbitrary
// tie-breaking — whichever BFS's CAS lands first wins, which Theorem 2
// shows only doubles the inter-cluster edge bound). Claimed neighbours
// join the next frontier and the edge is deleted as intra-cluster;
// otherwise the edge is kept iff the labels differ, with the target
// relabeled to its cluster id on the fly.

#include "core/ldd.hpp"
#include "core/ldd_internal.hpp"
#include "parallel/atomics.hpp"

namespace pcc::ldd {

namespace {
using parallel::atomic_load;
using parallel::cas;
using parallel::fetch_add;
using parallel::parallel_for;
using parallel::timer;
}  // namespace

decomp_info decomp_arb_into(work_graph& wg, const options& opt,
                            std::span<vertex_id> cluster,
                            parallel::workspace& ws,
                            parallel::phase_timer* pt) {
  const size_t n = wg.n;
  decomp_info res;
  if (n == 0) return res;
  std::span<const edge_id> V = wg.offsets;
  std::span<vertex_id> E = wg.edges;
  std::span<vertex_id> D = wg.degrees;
  std::span<vertex_id> C = cluster;
  parallel_for(0, n, [&](size_t v) { C[v] = kNoVertex; });  // the paper's inf

  timer t;
  parallel::workspace::scope outer(ws);
  internal::shift_schedule schedule(n, opt, ws);
  std::span<vertex_id> frontier = ws.take<vertex_id>(n);
  std::span<vertex_id> next = ws.take<vertex_id>(n);
  size_t frontier_size = 0;
  if (pt != nullptr) pt->add("init", t.lap());

  size_t num_visited = 0;
  size_t round = 0;
  while (num_visited < n) {
    // bfsPre: start BFS's at the unvisited vertices whose shift value fell
    // into this round, appending them to the shared frontier array.
    t.start();
    const size_t added = internal::add_new_centers(
        schedule, round, frontier, frontier_size, ws,
        [&](vertex_id v) { return C[v] == kNoVertex; },
        [&](vertex_id v) { C[v] = v; });
    res.num_clusters += added;
    frontier_size += added;
    // Every frontier member was first visited this round (carried-over
    // vertices were claimed during the previous round's edge phase).
    num_visited += frontier_size;
    if (pt != nullptr) pt->add("bfsPre", t.lap());

    // bfsMain: single pass over the frontier's edges (Lines 9-20).
    size_t next_size = 0;
    parallel_for(0, frontier_size, [&](size_t fi) {
      const vertex_id v = frontier[fi];
      const vertex_id my_label = C[v];
      const edge_id start = V[v];
      const vertex_id deg = D[v];
      if (deg > opt.parallel_edge_threshold) {
        // High-degree path (Section 4): parallel loop over the edges,
        // deleted edges marked with a sentinel, then packed with a prefix
        // sum. kNoVertex never appears as a kept label, so it serves as
        // the deletion mark. Runs inside the frontier loop, so its
        // temporaries are plain vectors (a workspace is single-producer);
        // this is an ablation path, off by default.
        parallel_for(0, deg, [&](size_t i) {
          const vertex_id w = E[start + i];
          if (atomic_load(&C[w]) == kNoVertex &&
              cas(&C[w], kNoVertex, my_label)) {
            next[fetch_add<size_t>(&next_size, 1)] = w;
            // lint: private-write(iteration i owns edge slot start + i)
            E[start + i] = kNoVertex;
          } else {
            const vertex_id w_label = atomic_load(&C[w]);
            // lint: private-write(iteration i owns edge slot start + i)
            E[start + i] = w_label != my_label ? w_label : kNoVertex;
          }
        });
        std::vector<size_t> pos;
        const size_t kept = parallel::scan_exclusive_into(
            deg,
            [&](size_t i) {
              return E[start + i] != kNoVertex ? size_t{1} : size_t{0};
            },
            pos);
        std::vector<vertex_id> packed(kept);
        parallel_for(0, deg, [&](size_t i) {
          // lint: private-write(pos is an exclusive scan, injective on kept i)
          if (E[start + i] != kNoVertex) packed[pos[i]] = E[start + i];
        });
        parallel_for(0, kept, [&](size_t i) {
          // lint: private-write(iteration i owns edge slot start + i)
          E[start + i] = packed[i];
        });
        // lint: private-write(frontier holds distinct vertices)
        D[v] = static_cast<vertex_id>(kept);
        return;
      }
      vertex_id k = 0;
      for (vertex_id i = 0; i < deg; ++i) {
        const vertex_id w = E[start + i];
        if (atomic_load(&C[w]) == kNoVertex &&
            cas(&C[w], kNoVertex, my_label)) {
          // v claimed w: intra-cluster edge, deleted by not keeping it.
          next[fetch_add<size_t>(&next_size, 1)] = w;
        } else {
          const vertex_id w_label = atomic_load(&C[w]);
          if (w_label != my_label) {
            // lint: private-write(v owns its own CSR slice [start, start+deg))
            E[start + k] = w_label;  // inter-cluster: keep, relabeled
            ++k;
          }
        }
      }
      D[v] = k;  // lint: private-write(frontier holds distinct vertices)
    });
    std::swap(frontier, next);
    frontier_size = next_size;
    if (pt != nullptr) pt->add("bfsMain", t.lap());
    ++round;
  }
  res.num_rounds = round;
  res.edges_kept = parallel::reduce_sum_ws<size_t>(
      n, [&](size_t v) { return D[v]; }, ws);
  return res;
}

result decomp_arb(work_graph& wg, const options& opt,
                  parallel::phase_timer* pt) {
  std::vector<vertex_id> cluster(wg.n);
  parallel::workspace ws;
  const decomp_info info = decomp_arb_into(wg, opt, cluster, ws, pt);
  return internal::to_result(std::move(cluster), info);
}

result decompose_arb(const graph::graph& g, const options& opt) {
  work_graph wg = work_graph::from(g);
  return decomp_arb(wg, opt, nullptr);
}

}  // namespace pcc::ldd
