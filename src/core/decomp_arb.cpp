// Decomp-Arb (Algorithm 3 of the paper).
//
// One phase per BFS frontier: a frontier vertex v scans its remaining
// edges; an unvisited neighbour w is claimed with a CAS on C[w] (arbitrary
// tie-breaking — whichever BFS's CAS lands first wins, which Theorem 2
// shows only doubles the inter-cluster edge bound). Claimed neighbours
// join the next frontier and the edge is deleted as intra-cluster;
// otherwise the edge is kept iff the labels differ, with the target
// relabeled to its cluster id on the fly.
//
// The round is edge-balanced: frontier_edge_for splits the frontier's
// flattened edge space into near-equal chunks, so a hub vertex is shared
// by many chunks instead of serializing the round, and the next frontier
// is emitted contention-free in flattened edge order (no shared cursor).
// A piece compacts its kept edges to the front of its own [jlo, jhi)
// subrange; split vertices are stitched together by fix_split_pieces.

#include "core/ldd.hpp"
#include "core/ldd_internal.hpp"
#include "parallel/atomics.hpp"
#include "parallel/emit.hpp"

namespace pcc::ldd {

namespace {
using parallel::atomic_load;
using parallel::cas;
using parallel::parallel_for;
using parallel::timer;
}  // namespace

decomp_info decomp_arb_into(work_graph& wg, const options& opt,
                            std::span<vertex_id> cluster,
                            parallel::workspace& ws,
                            parallel::phase_timer* pt) {
  const size_t n = wg.n;
  decomp_info res;
  if (n == 0) return res;
  std::span<const edge_id> V = wg.offsets;
  std::span<vertex_id> E = wg.edges;
  std::span<vertex_id> D = wg.degrees;
  std::span<vertex_id> C = cluster;
  parallel_for(0, n, [&](size_t v) { C[v] = kNoVertex; });  // the paper's inf

  timer t;
  parallel::workspace::scope outer(ws);
  internal::shift_schedule schedule(n, opt, ws);
  std::span<vertex_id> frontier = ws.take<vertex_id>(n);
  std::span<vertex_id> next = ws.take<vertex_id>(n);
  size_t frontier_size = 0;
  if (pt != nullptr) pt->add("init", t.lap());

  size_t num_visited = 0;
  size_t round = 0;
  while (num_visited < n) {
    // bfsPre: start BFS's at the unvisited vertices whose shift value fell
    // into this round, appending them to the shared frontier array.
    t.start();
    const size_t added = internal::add_new_centers(
        schedule, round, frontier, frontier_size, ws,
        [&](vertex_id v) { return C[v] == kNoVertex; },
        [&](vertex_id v) { C[v] = v; });
    res.num_clusters += added;
    frontier_size += added;
    // Every frontier member was first visited this round (carried-over
    // vertices were claimed during the previous round's edge phase).
    num_visited += frontier_size;
    if (pt != nullptr) pt->add("bfsPre", t.lap());

    // bfsMain: one edge-balanced pass over the frontier's edges (Lines
    // 9-20). Each piece claims/relabels its slots and compacts the kept
    // edges to the front of its own subrange.
    parallel::workspace::scope round_scope(ws);
    const parallel::frontier_result run =
        parallel::frontier_edge_for<vertex_id>(
            frontier_size, [&](size_t fi) { return D[frontier[fi]]; }, next,
            ws,
            [&](size_t fi, uint32_t jlo, uint32_t jhi, uint32_t deg,
                parallel::emitter<vertex_id>& em) -> uint32_t {
              const vertex_id v = frontier[fi];
              // Local raw pointers: the CAS below is a compiler barrier
              // that forces captured spans to be re-read every edge, but a
              // non-escaping local stays in a register across it.
              vertex_id* const cl = C.data();
              vertex_id* const ed = E.data();
              const vertex_id my_label = cl[v];
              const edge_id start = V[v];
              uint32_t k = jlo;
              for (uint32_t i = jlo; i < jhi; ++i) {
                const vertex_id w = ed[start + i];
                if (atomic_load(&cl[w]) == kNoVertex &&
                    cas(&cl[w], kNoVertex, my_label)) {
                  // v claimed w: intra-cluster edge, deleted by not
                  // keeping it.
                  em(w);
                } else {
                  const vertex_id w_label = atomic_load(&cl[w]);
                  if (w_label != my_label) {
                    // lint: private-write(piece owns slots [jlo, jhi) of v)
                    ed[start + k] = w_label;  // inter-cluster: keep, relabeled
                    ++k;
                  }
                }
              }
              if (jlo == 0 && jhi == deg) {
                // lint: private-write(whole-vertex piece: sole writer of D[v])
                D[v] = k;
              }
              return k - jlo;
            });
    parallel::fix_split_pieces(
        run.partials,
        [&](uint32_t fi, uint32_t dst, uint32_t src, uint32_t len) {
          const edge_id start = V[frontier[fi]];
          // Forward copy; dst <= src so overlapping ranges are safe.
          // lint: private-write(leader task owns entry fi's whole CSR slice)
          std::copy(E.begin() + start + src, E.begin() + start + src + len,
                    E.begin() + start + dst);
        },
        [&](uint32_t fi, uint32_t kept) {
          // lint: private-write(one leader task per split vertex)
          D[frontier[fi]] = kept;
        });
    std::swap(frontier, next);
    frontier_size = run.emitted;
    if (pt != nullptr) pt->add("bfsMain", t.lap());
    ++round;
  }
  res.num_rounds = round;
  res.edges_kept = parallel::reduce_sum_ws<size_t>(
      n, [&](size_t v) { return D[v]; }, ws);
  return res;
}

result decomp_arb(work_graph& wg, const options& opt,
                  parallel::phase_timer* pt) {
  std::vector<vertex_id> cluster(wg.n);
  parallel::workspace ws;
  const decomp_info info = decomp_arb_into(wg, opt, cluster, ws, pt);
  return internal::to_result(std::move(cluster), info);
}

result decompose_arb(const graph::graph& g, const options& opt) {
  work_graph wg = work_graph::from(g);
  return decomp_arb(wg, opt, nullptr);
}

}  // namespace pcc::ldd
