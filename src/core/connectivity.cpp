// Algorithm 1 of the paper: CC(G) = relabel-up(DECOMP + CONTRACT + recurse).
// The level loop itself lives in core/cc_engine.cpp; this translation unit
// keeps the one-shot convenience API and the labeling helpers.

#include "core/connectivity.hpp"

#include <cassert>
#include <unordered_set>

#include "core/cc_engine.hpp"
#include "core/registry.hpp"
#include "parallel/arena.hpp"
#include "parallel/atomics.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::cc {

namespace {
using parallel::parallel_for;
}  // namespace

const char* variant_name(decomp_variant v) {
  switch (v) {
    case decomp_variant::kMin:
      return "decomp-min-CC";
    case decomp_variant::kArb:
      return "decomp-arb-CC";
    case decomp_variant::kArbHybrid:
      return "decomp-arb-hybrid-CC";
  }
  return "?";
}

const char* reorder_policy_name(reorder_policy p) {
  switch (p) {
    case reorder_policy::kAuto:
      return "auto";
    case reorder_policy::kNone:
      return "none";
    case reorder_policy::kDegree:
      return "degree";
    case reorder_policy::kHub:
      return "hub";
    case reorder_policy::kBfs:
      return "bfs";
  }
  return "?";
}

graph::reorder_mode reorder_mode_of(reorder_policy p) {
  switch (p) {
    case reorder_policy::kNone:
      return graph::reorder_mode::kNone;
    case reorder_policy::kDegree:
      return graph::reorder_mode::kDegree;
    case reorder_policy::kHub:
      return graph::reorder_mode::kHub;
    case reorder_policy::kBfs:
      return graph::reorder_mode::kBfs;
    case reorder_policy::kAuto:
      break;
  }
  assert(!"reorder_mode_of(kAuto)");
  return graph::reorder_mode::kNone;
}

std::vector<vertex_id> connected_components(const graph::graph& g,
                                            const cc_options& opt,
                                            cc_stats* stats) {
  // One-shot path through the registry: resolve the requested algorithm
  // ("auto" probes and selects), run it into the result vector. Callers
  // with repeated queries should hold an algo_workspace (or a cc_engine)
  // themselves and use run_algorithm() directly.
  std::vector<vertex_id> labels(g.num_vertices());
  algo_workspace ws;
  run_algorithm(resolve_algorithm(opt), g, opt, ws, labels, stats);
  return labels;
}

size_t num_components(const std::vector<vertex_id>& labels) {
  const size_t n = labels.size();
  if (n == 0) return 0;
  // The library's labelings use representative vertex ids, so every label
  // is < n: count distinct labels with a parallel flag array + reduce.
  const bool in_range = parallel::reduce(
      n, [&](size_t i) { return labels[i] < n; }, true,
      [](bool a, bool b) { return a && b; });
  if (!in_range) {
    // Arbitrary labelings (not produced by this library): hash them.
    std::unordered_set<vertex_id> distinct(labels.begin(), labels.end());
    return distinct.size();
  }
  parallel::workspace ws;
  std::span<uint8_t> seen = ws.take_zeroed<uint8_t>(n);
  parallel_for(0, n, [&](size_t i) {
    // Concurrent same-value stores; write_once declares the race.
    parallel::write_once(&seen[labels[i]], uint8_t{1});
  });
  return parallel::reduce_sum<size_t>(
      n, [&](size_t i) { return static_cast<size_t>(seen[i]); });
}

}  // namespace pcc::cc
