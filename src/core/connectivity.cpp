// Algorithm 1 of the paper: CC(G) = relabel-up(DECOMP + CONTRACT + recurse).

#include "core/connectivity.hpp"

#include <unordered_set>

#include "core/contract.hpp"
#include "parallel/random.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"
#include "parallel/timer.hpp"

namespace pcc::cc {

namespace {

using parallel::parallel_for;

// Sequential union-find fallback for the (never-observed) case that the
// recursion fails to make progress within opt.max_levels.
std::vector<vertex_id> sequential_components(const graph::graph& g) {
  const size_t n = g.num_vertices();
  std::vector<vertex_id> parent(n);
  for (size_t v = 0; v < n; ++v) parent[v] = static_cast<vertex_id>(v);
  const auto find = [&](vertex_id x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t u = 0; u < n; ++u) {
    for (vertex_id w : g.neighbors(static_cast<vertex_id>(u))) {
      const vertex_id ru = find(static_cast<vertex_id>(u));
      const vertex_id rw = find(w);
      if (ru != rw) parent[ru < rw ? rw : ru] = ru < rw ? ru : rw;
    }
  }
  std::vector<vertex_id> labels(n);
  for (size_t v = 0; v < n; ++v) labels[v] = find(static_cast<vertex_id>(v));
  return labels;
}

ldd::result run_decomposition(ldd::work_graph& wg, const cc_options& opt,
                              uint64_t level, cc_stats* stats) {
  ldd::options dopt;
  dopt.beta = opt.beta;
  dopt.shifts = opt.shifts;
  // Fresh randomness per level: otherwise an unlucky schedule could repeat.
  dopt.seed = parallel::hash64(opt.seed + 0x9e37 * (level + 1));
  dopt.dense_threshold = opt.dense_threshold;
  dopt.parallel_edge_threshold = opt.parallel_edge_threshold;
  parallel::phase_timer* pt = stats != nullptr ? &stats->phases : nullptr;
  switch (opt.variant) {
    case decomp_variant::kMin:
      return ldd::decomp_min(wg, dopt, pt);
    case decomp_variant::kArb:
      return ldd::decomp_arb(wg, dopt, pt);
    case decomp_variant::kArbHybrid:
      return ldd::decomp_arb_hybrid(wg, dopt, pt);
  }
  return {};  // unreachable
}

// The recursive CC of Algorithm 1. Returns labels over g's vertices, each
// label being the id of a representative vertex of the component.
std::vector<vertex_id> cc_recurse(const graph::graph& g, const cc_options& opt,
                                  size_t level, cc_stats* stats) {
  const size_t n = g.num_vertices();
  if (n == 0) return {};
  if (g.num_edges() == 0) {
    // Every vertex is its own component.
    return parallel::tabulate<vertex_id>(
        n, [](size_t v) { return static_cast<vertex_id>(v); });
  }
  if (level >= opt.max_levels) {
    if (stats != nullptr) stats->used_fallback = true;
    return sequential_components(g);
  }

  // L = DECOMP(G, beta)
  ldd::work_graph wg = ldd::work_graph::from(g);
  const ldd::result dec = run_decomposition(wg, opt, level, stats);

  // G' = CONTRACT(G, L)
  parallel::timer contract_timer;
  const contraction con = contract(wg, dec, opt.dedup);
  if (stats != nullptr) {
    stats->phases.add("contractGraph", contract_timer.elapsed());
    level_stats ls;
    ls.n = n;
    ls.m = g.num_edges();
    ls.edges_kept = dec.edges_kept;
    ls.edges_after_dedup = con.contracted.num_edges();
    ls.num_clusters = dec.num_clusters;
    ls.num_singletons = con.num_singleton_clusters;
    ls.bfs_rounds = dec.num_rounds;
    ls.dense_rounds = dec.num_dense_rounds;
    stats->levels.push_back(ls);
  }

  // if |E'| = 0 return L
  if (con.contracted.num_edges() == 0) return dec.cluster;

  // L' = CC(G'); L'' = RELABELUP(L, L').
  const std::vector<vertex_id> sub_labels =
      cc_recurse(con.contracted, opt, level + 1, stats);

  // Lift: a cluster that survived into G' takes the representative of its
  // contracted component, mapped back through rep[]; a singleton cluster
  // keeps its center as the label. Representatives of distinct components
  // stay distinct (rep is injective and centers of singleton clusters are
  // never reps of non-singleton ones).
  parallel::timer relabel_timer;
  std::vector<vertex_id> lifted(n);
  parallel_for(0, n, [&](size_t v) {
    const vertex_id c = dec.cluster[v];
    const vertex_id x = con.new_id[c];
    lifted[v] = (x == kNoVertex) ? c : con.rep[sub_labels[x]];
  });
  if (stats != nullptr) {
    stats->phases.add("contractGraph", relabel_timer.elapsed());
  }
  return lifted;
}

}  // namespace

const char* variant_name(decomp_variant v) {
  switch (v) {
    case decomp_variant::kMin:
      return "decomp-min-CC";
    case decomp_variant::kArb:
      return "decomp-arb-CC";
    case decomp_variant::kArbHybrid:
      return "decomp-arb-hybrid-CC";
  }
  return "?";
}

std::vector<vertex_id> connected_components(const graph::graph& g,
                                            const cc_options& opt,
                                            cc_stats* stats) {
  return cc_recurse(g, opt, 0, stats);
}

size_t num_components(const std::vector<vertex_id>& labels) {
  std::unordered_set<vertex_id> distinct(labels.begin(), labels.end());
  return distinct.size();
}

}  // namespace pcc::cc
