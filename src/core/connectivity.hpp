// Parallel connected components — the paper's Algorithm 1.
//
// connected_components(G) returns a labeling L with L(u) == L(v) iff u and
// v are in the same component. The labels satisfy a stronger invariant this
// implementation maintains and the tests check: L(v) is always the id of
// some vertex inside v's component (a representative).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/contract.hpp"
#include "core/ldd.hpp"
#include "core/select.hpp"
#include "graph/graph.hpp"
#include "graph/reorder.hpp"
#include "parallel/timer.hpp"

namespace pcc::cc {

enum class decomp_variant {
  kMin,       // decomp-min-CC
  kArb,       // decomp-arb-CC
  kArbHybrid  // decomp-arb-hybrid-CC
};

const char* variant_name(decomp_variant v);

// Locality relabeling policy (cc_options::reorder; see graph/reorder.hpp
// and DESIGN.md "The locality layer"). kAuto defers to the selector —
// select_reorder() fires only for algorithm == "auto", on large skewed
// giant-component graphs; every other value pins a graph::reorder_mode
// (kNone disables relabeling outright). Whatever runs, labels come back
// in original vertex ids — the relabeled CSR is never user-visible.
enum class reorder_policy : uint8_t { kAuto, kNone, kDegree, kHub, kBfs };

const char* reorder_policy_name(reorder_policy p);

// The pinned mode of a non-kAuto policy (kAuto asserts).
graph::reorder_mode reorder_mode_of(reorder_policy p);

struct cc_options {
  // Which registered algorithm answers the query (see core/registry.hpp).
  // "auto" (the default) probes the graph and picks via core/select.hpp;
  // "decomp" pins the decompose-contract pipeline configured by `variant`
  // and the knobs below; any registered name ("decomp-arb-hybrid",
  // "serial-sf", "lt-ps", ...) pins that algorithm. Unknown names make
  // connected_components throw std::invalid_argument.
  std::string algorithm = "auto";
  // beta must lie in (0, 1); the linear-work guarantee for the Arb variants
  // needs beta < 1/2 (Theorem 2), and the paper's sweet spot is 0.05-0.2.
  double beta = 0.2;
  decomp_variant variant = decomp_variant::kArbHybrid;
  ldd::shift_mode shifts = ldd::shift_mode::kPermutationChunks;
  // Remove duplicate inter-cluster edges when contracting (paper default;
  // correctness holds either way).
  bool dedup = true;
  // Duplicate-removal route when dedup is on: kAuto picks per level via
  // choose_dedup_route from that level's measured edge/vertex counts;
  // kHash / kSort pin one route. Pure performance knob — the contracted
  // CSR is byte-identical either way.
  dedup_strategy dedup_route = dedup_strategy::kAuto;
  // Locality relabeling applied around the selected algorithm.
  reorder_policy reorder = reorder_policy::kAuto;
  uint64_t seed = 42;
  double dense_threshold = 0.2;  // hybrid read/write switch point
  // Historical, now ignored: rounds are edge-balanced unconditionally
  // (see ldd::options::parallel_edge_threshold).
  size_t parallel_edge_threshold = SIZE_MAX;
  // Safety net: beyond this recursion depth, finish with a sequential
  // spanning forest (never reached for beta in the supported range; guards
  // against adversarial degenerate configurations).
  size_t max_levels = 128;
};

// Per-recursion-level measurements — the raw series behind Figure 4.
struct level_stats {
  size_t n = 0;                  // vertices at this level
  size_t m = 0;                  // directed edges at this level
  size_t edges_kept = 0;         // directed inter-cluster edges after decomp
  size_t edges_after_dedup = 0;  // directed edges passed to the next level
  size_t num_clusters = 0;
  size_t num_singletons = 0;
  size_t bfs_rounds = 0;
  size_t dense_rounds = 0;
  // Dedup route the contraction took at this level: "hash", "sort", or
  // "off" (static string, never owned).
  const char* dedup_route = "off";
};

struct cc_stats {
  std::vector<level_stats> levels;
  parallel::phase_timer phases;  // summed across levels (Figures 5-7)
  bool used_fallback = false;    // max_levels safety net triggered
  // Which registered algorithm actually ran. Points at the registry's
  // static name string (no allocation — repeated engine-workspace runs
  // must stay heap-free), so it outlives every cc_stats.
  const char* algorithm = nullptr;
  bool selected = false;  // true when "auto" consulted the probe
  probe_stats probe;      // the probed statistics (valid when `selected`)
  // Locality relabeling actually applied ("none" unless the reorder
  // wrapper ran; static string from graph::reorder_name). The build +
  // relabel + map-back cost is in phases under "reorder" — callers that
  // amortize the transform over repeated queries report it separately.
  const char* reorder = "none";
};

// Algorithm 1: recursive decompose-contract-relabel connectivity.
std::vector<vertex_id> connected_components(const graph::graph& g,
                                            const cc_options& opt = {},
                                            cc_stats* stats = nullptr);

// Number of distinct labels (= components) in a labeling.
size_t num_components(const std::vector<vertex_id>& labels);

}  // namespace pcc::cc
