// component_index: constant-time component queries on top of a labeling.
//
// Connectivity consumers rarely want the raw label array; they ask "how
// many components", "how big is v's component", "give me the members of
// this component", "are u, v connected". This index builds those answers
// once, in parallel (a counting sort of the vertices by label), and serves
// them in O(1) / O(size) afterwards.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace pcc::cc {

class component_index {
 public:
  // labels[v] must be a vertex id (the representative invariant of
  // pcc::cc::connected_components / the baselines in this library). The
  // span overload indexes a labeling in place — cc_engine::run() hands out
  // a span over engine-owned memory, and building the query index from it
  // must not force a copy. The labels are only read during construction.
  explicit component_index(std::span<const vertex_id> labels);
  explicit component_index(const std::vector<vertex_id>& labels)
      : component_index(std::span<const vertex_id>(labels)) {}

  // Number of components.
  size_t num_components() const { return starts_.size() - 1; }

  // Dense component id of vertex v, in [0, num_components()).
  vertex_id component_of(vertex_id v) const { return comp_of_[v]; }

  // Number of vertices in component c (dense id).
  size_t size(vertex_id c) const { return starts_[c + 1] - starts_[c]; }

  // Members of component c, as a span of vertex ids.
  std::span<const vertex_id> members(vertex_id c) const {
    return {vertices_.data() + starts_[c], size(c)};
  }

  bool connected(vertex_id u, vertex_id v) const {
    return comp_of_[u] == comp_of_[v];
  }

  // Dense id of the largest component.
  vertex_id largest() const { return largest_; }

  // Component sizes indexed by dense id.
  const std::vector<size_t>& sizes() const { return sizes_; }

 private:
  std::vector<vertex_id> comp_of_;   // vertex -> dense component id
  std::vector<vertex_id> vertices_;  // vertices grouped by component
  std::vector<size_t> starts_;       // component -> range in vertices_
  std::vector<size_t> sizes_;
  vertex_id largest_ = 0;
};

}  // namespace pcc::cc
