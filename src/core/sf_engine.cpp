// Iterative witness-carrying engine: DECOMP + CONTRACT per level going up
// (claim witnesses joining the forest at every BFS round), RELABELUP back
// down the recorded level stack. Structurally a twin of cc_engine.cpp; the
// differences are the deterministic two-phase claim resolution and the
// witness arrays threaded alongside every level graph.

#include "core/sf_engine.hpp"

#include <cassert>

#include "core/contract.hpp"
#include "core/ldd.hpp"
#include "core/ldd_internal.hpp"
#include "parallel/atomics.hpp"
#include "parallel/emit.hpp"
#include "parallel/random.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"
#include "parallel/timer.hpp"

namespace pcc::cc {

namespace {

using parallel::atomic_load;
using parallel::atomic_store;
using parallel::parallel_for;

inline uint64_t pack_witness(vertex_id u, vertex_id v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}
inline graph::edge unpack_witness(uint64_t w) {
  return {static_cast<vertex_id>(w >> 32), static_cast<vertex_id>(w)};
}

// A resolved claim from one BFS round: the claimed vertex (joins the next
// frontier) and the witness of the claiming edge (joins the forest).
struct claim_rec {
  vertex_id w;
  uint64_t witness;
};

// Deterministic direction-optimizing Decomp-Arb over a level graph with
// witnesses (the sf twin of decomp_arb_hybrid_into). `witness` parallels
// wg.edges; both are compacted in place (targets relabeled to cluster
// ids) so the post-decomposition state satisfies the witness contract_into
// overload's invariant. Claim witnesses are appended to `forest` at
// forest_count, which is advanced.
//
// Dense (pull) rounds are deterministic for free: each still-unvisited
// vertex scans its own adjacency for the FIRST frontier neighbour in slot
// order and adopts that cluster — a private write, no race, and a pure
// function of the previous round's state — and the witness of the
// adopting edge is just witness[slot]. The round-mode choice (frontier
// size vs dense_threshold * n) is itself a pure function of deterministic
// state, so the mixed schedule replays identically across runs, worker
// counts and backends.
//
// Sparse (write-based) claim resolution is two-phase per round:
//   A (propose) — every frontier edge (fi, i) -> w with C[w] still
//     unvisited folds its rank (fi << 32 | i) into claim[w] with an atomic
//     write_min. C is not written, so the racy reads are stable.
//   B (resolve) — the edge whose rank equals claim[w] claims w (atomic
//     store of its label) and emits the claim; every other edge resolves
//     w's label deterministically: if it reads the winner's store it uses
//     that, otherwise it computes the same value as C[frontier[claim[w] >>
//     32]] (claim[w] is stable after phase A, and frontier labels predate
//     the round). Both sides of that race yield the identical label, so the
//     kept/dropped decision and the compacted adjacency are deterministic.
// claim[] needs no reset across rounds: claim[w] is only ever consulted
// while C[w] is unvisited, and a vertex is claimed at most once.
//
// At one worker, phase A is skipped and phase B claims on first arrival:
// the serial traversal meets edges in flattened order, so the first
// proposer IS the minimum rank and the outcome matches the two-phase
// protocol exactly.
// `identity_witness` (level 0 of the engine): incoming edge slots carry no
// stored witness — the witness of slot (v, j) IS pack(v, raw_target) — so
// the initial m-slot stamping sweep is skipped and `witness` is written
// only for slots that survive compaction (exactly what contract reads).
ldd::decomp_info decomp_arb_sf_into(ldd::work_graph& wg,
                                    std::span<uint64_t> witness,
                                    bool identity_witness,
                                    const ldd::options& opt,
                                    std::span<vertex_id> cluster,
                                    std::span<uint64_t> forest,
                                    size_t& forest_count,
                                    parallel::workspace& ws,
                                    parallel::phase_timer* pt) {
  const size_t n = wg.n;
  ldd::decomp_info info;
  if (n == 0) return info;
  parallel::timer t;
  std::span<vertex_id> C = cluster;
  parallel_for(0, n, [&](size_t v) {
    C[v] = kNoVertex;  // lint: private-write(owner index v)
  });
  const bool serial = parallel::num_workers() <= 1;

  ldd::internal::shift_schedule schedule(n, opt, ws);
  std::span<vertex_id> frontier = ws.take<vertex_id>(n);
  std::span<vertex_id> next = ws.take<vertex_id>(n);
  // At most n claims happen across the whole decomposition (each vertex is
  // claimed once), but one ROUND can see any frontier; size for n.
  std::span<claim_rec> claims = ws.take<claim_rec>(n);
  // Proposal ranks; ~0 is the write_min identity. Initialized once — see
  // the no-reset argument above.
  std::span<uint64_t> claim =
      serial ? std::span<uint64_t>{} : ws.take_filled<uint64_t>(n, ~uint64_t{0});
  // resolved[v]: v's adjacency prefix was compacted/relabeled by a sparse
  // round; unresolved vertices go through the final filter pass.
  std::span<uint8_t> resolved = ws.take_zeroed<uint8_t>(n);
  // Dense-round state: bit-packed frontier membership, the shrinking
  // unvisited list, and the witness each vertex was claimed through.
  const size_t num_words = (n + 63) / 64;
  std::span<uint64_t> on_frontier = ws.take<uint64_t>(num_words);
  std::span<vertex_id> unvisited = ws.take<vertex_id>(n);
  std::span<vertex_id> unvisited_next = ws.take<vertex_id>(n);
  std::span<uint64_t> dense_wit = ws.take<uint64_t>(n);
  size_t unvisited_size = 0;
  bool have_unvisited = false;
  const size_t dense_cutoff =
      static_cast<size_t>(opt.dense_threshold * static_cast<double>(n));
  size_t frontier_size = 0;
  if (pt != nullptr) pt->add("init", t.lap());

  size_t num_visited = 0;
  size_t round = 0;
  while (num_visited < n) {
    t.start();
    const size_t added = ldd::internal::add_new_centers(
        schedule, round, frontier, frontier_size, ws,
        [&](vertex_id v) { return C[v] == kNoVertex; },
        [&](vertex_id v) { C[v] = v; });
    info.num_clusters += added;
    frontier_size += added;
    num_visited += frontier_size;
    if (pt != nullptr) pt->add("bfsPre", t.lap());

    if (frontier_size > dense_cutoff) {
      // Read-based (dense) round — see decomp_arb_hybrid.cpp for the list
      // and bitmap maintenance; only the witness capture is new here.
      ++info.num_dense_rounds;
      if (!have_unvisited) {
        unvisited_size = parallel::count_then_emit<vertex_id>(
            n, unvisited, ws, [&](size_t v, auto& em) {
              if (C[v] == kNoVertex) em(static_cast<vertex_id>(v));
            });
        have_unvisited = true;
      } else {
        unvisited_size = parallel::count_then_emit<vertex_id>(
            unvisited_size, unvisited_next, ws, [&](size_t i, auto& em) {
              const vertex_id v = unvisited[i];
              if (C[v] == kNoVertex) em(v);
            });
        std::swap(unvisited, unvisited_next);
      }
      parallel_for(0, num_words, [&](size_t w) {
        on_frontier[w] = 0;  // lint: private-write(iteration w owns word w)
      });
      parallel_for(0, frontier_size, [&](size_t i) {
        const vertex_id v = frontier[i];
        parallel::fetch_or(&on_frontier[v >> 6], uint64_t{1} << (v & 63));
      });
      // Pull: v adopts the first frontier neighbour in slot order. v is
      // unvisited, so its adjacency (and witness slice) is still raw —
      // witness[start + j] IS the original edge that claimed v.
      parallel_for(0, unvisited_size, [&](size_t i) {
        const vertex_id v = unvisited[i];
        const edge_id start = wg.offsets[v];
        const vertex_id deg = wg.degrees[v];
        for (vertex_id j = 0; j < deg; ++j) {
          const vertex_id u = wg.edges[start + j];
          if ((on_frontier[u >> 6] >> (u & 63)) & 1) {
            // lint: private-write(unvisited holds distinct vertex ids)
            C[v] = C[u];
            // lint: private-write(same owner invariant)
            dense_wit[v] =
                identity_witness ? pack_witness(v, u) : witness[start + j];
            break;
          }
        }
      });
      const size_t gathered = parallel::count_then_emit<vertex_id>(
          unvisited_size, next, ws, [&](size_t i, auto& em) {
            const vertex_id v = unvisited[i];
            if (C[v] != kNoVertex) em(v);
          });
      unvisited_size = parallel::count_then_emit<vertex_id>(
          unvisited_size, unvisited_next, ws, [&](size_t i, auto& em) {
            const vertex_id v = unvisited[i];
            if (C[v] == kNoVertex) em(v);
          });
      std::swap(unvisited, unvisited_next);
      parallel_for(0, gathered, [&](size_t i) {
        // lint: private-write(iteration i owns slot forest_count + i)
        forest[forest_count + i] = dense_wit[next[i]];
      });
      forest_count += gathered;
      std::swap(frontier, next);
      frontier_size = gathered;
      if (pt != nullptr) pt->add("bfsDense", t.lap());
      ++round;
      continue;
    }

    size_t next_size = 0;
    {
      parallel::workspace::scope round_scope(ws);
      const auto deg_of = [&](size_t fi) { return wg.degrees[frontier[fi]]; };

      if (!serial) {
        // Phase A: propose. No writes to C, no compaction — partial pieces
        // need no stitching.
        parallel::frontier_edge_for(
            frontier_size, deg_of, ws,
            [&](size_t fi, uint32_t jlo, uint32_t jhi, uint32_t) -> uint32_t {
              const vertex_id v = frontier[fi];
              const edge_id start = wg.offsets[v];
              for (uint32_t i = jlo; i < jhi; ++i) {
                const vertex_id w = wg.edges[start + i];
                if (atomic_load(&C[w]) == kNoVertex) {
                  parallel::write_min(
                      &claim[w], (static_cast<uint64_t>(fi) << 32) | i);
                }
              }
              return 0;
            });
      }

      // Phase B: resolve claims, emit them, and compact the surviving
      // inter-cluster edges (targets relabeled to cluster ids, witnesses
      // carried along) to the front of each piece's subrange.
      const parallel::frontier_result run =
          parallel::frontier_edge_for<claim_rec>(
              frontier_size, deg_of, claims, ws,
              [&](size_t fi, uint32_t jlo, uint32_t jhi, uint32_t deg,
                  parallel::emitter<claim_rec>& em) -> uint32_t {
                const vertex_id v = frontier[fi];
                const vertex_id my_label = C[v];
                const edge_id start = wg.offsets[v];
                uint32_t k = jlo;
                for (uint32_t i = jlo; i < jhi; ++i) {
                  const vertex_id w = wg.edges[start + i];
                  vertex_id w_label;
                  const vertex_id cw = atomic_load(&C[w]);
                  if (cw == kNoVertex) {
                    const uint64_t rank =
                        (static_cast<uint64_t>(fi) << 32) | i;
                    if (serial || claim[w] == rank) {
                      // Rank winner: claim w. The witness is an original
                      // edge and joins the forest.
                      atomic_store(&C[w], my_label);
                      em({w, identity_witness ? pack_witness(v, w)
                                              : witness[start + i]});
                      continue;
                    }
                    // Loser: the winner's label, computed from stable data
                    // (claim[w] is post-phase-A, frontier labels are
                    // pre-round) whether or not the winner's store above
                    // has landed yet.
                    w_label = C[frontier[claim[w] >> 32]];
                  } else {
                    w_label = cw;
                  }
                  if (w_label != my_label) {
                    // Kept edges carry the mark bit: "already relabeled",
                    // so the filter pass below leaves them alone.
                    // lint: private-write(piece owns slots [jlo, jhi) of v)
                    wg.edges[start + k] = ldd::internal::mark_edge(w_label);
                    // lint: private-write(same piece-subrange invariant)
                    witness[start + k] = identity_witness
                                             ? pack_witness(v, w)
                                             : witness[start + i];
                    ++k;
                  }
                }
                if (jlo == 0 && jhi == deg) {
                  // lint: private-write(whole-vertex piece: sole writer)
                  wg.degrees[v] = k;
                  resolved[v] = 1;  // lint: private-write(same owner)
                }
                return k - jlo;
              });
      parallel::fix_split_pieces(
          run.partials,
          [&](uint32_t fi, uint32_t dst, uint32_t src, uint32_t len) {
            const edge_id start = wg.offsets[frontier[fi]];
            // lint: private-write(leader task owns entry fi's CSR slice)
            std::copy(wg.edges.begin() + start + src,
                      wg.edges.begin() + start + src + len,
                      wg.edges.begin() + start + dst);
            // lint: private-write(same leader-owned slice, witness array)
            std::copy(witness.begin() + start + src,
                      witness.begin() + start + src + len,
                      witness.begin() + start + dst);
          },
          [&](uint32_t fi, uint32_t kept) {
            const vertex_id v = frontier[fi];
            // lint: private-write(one leader task per split vertex)
            wg.degrees[v] = kept;
            resolved[v] = 1;  // lint: private-write(same owner invariant)
          });
      next_size = run.emitted;
    }

    parallel_for(0, next_size, [&](size_t i) {
      // lint: private-write(iteration i owns slot i of both outputs)
      next[i] = claims[i].w;
      // lint: private-write(iteration i owns slot forest_count + i)
      forest[forest_count + i] = claims[i].witness;
    });
    forest_count += next_size;
    std::swap(frontier, next);
    frontier_size = next_size;
    if (pt != nullptr) pt->add("bfsSparse", t.lap());
    ++round;
  }

  // Filter pass: resolve the adjacency (and witness slice) of every vertex
  // never processed write-based, and clear the mark bits everywhere. The
  // sf twin of decomp_arb_hybrid's filterEdges, moving witnesses alongside
  // the kept edges.
  t.start();
  {
    parallel::workspace::scope filter_scope(ws);
    const parallel::frontier_result run = parallel::frontier_edge_for(
        n, [&](size_t v) { return wg.degrees[v]; }, ws,
        [&](size_t vi, uint32_t jlo, uint32_t jhi, uint32_t deg) -> uint32_t {
          const vertex_id v = static_cast<vertex_id>(vi);
          const edge_id start = wg.offsets[v];
          if (resolved[v]) {
            for (uint32_t i = jlo; i < jhi; ++i) {
              // lint: private-write(piece owns slots [jlo, jhi) of v)
              wg.edges[start + i] =
                  ldd::internal::unmark_edge(wg.edges[start + i]);
            }
            // "Kept" the whole piece: fix_split_pieces then never moves
            // slots of a resolved vertex and republishes D[v] unchanged.
            return jhi - jlo;
          }
          const vertex_id my_label = C[v];
          uint32_t k = jlo;
          for (uint32_t i = jlo; i < jhi; ++i) {
            const vertex_id w = wg.edges[start + i];  // raw: never relabeled
            const vertex_id w_label = C[w];
            if (w_label != my_label) {
              // lint: private-write(piece owns slots [jlo, jhi) of v)
              wg.edges[start + k] = w_label;
              // lint: private-write(same piece-subrange invariant)
              witness[start + k] = identity_witness ? pack_witness(v, w)
                                                    : witness[start + i];
              ++k;
            }
          }
          if (jlo == 0 && jhi == deg) {
            // lint: private-write(whole-vertex piece: sole writer of D[v])
            wg.degrees[v] = k;
          }
          return k - jlo;
        });
    parallel::fix_split_pieces(
        run.partials,
        [&](uint32_t vi, uint32_t dst, uint32_t src, uint32_t len) {
          const edge_id start = wg.offsets[vi];
          // lint: private-write(leader task owns entry vi's CSR slice)
          std::copy(wg.edges.begin() + start + src,
                    wg.edges.begin() + start + src + len,
                    wg.edges.begin() + start + dst);
          // lint: private-write(same leader-owned slice, witness array)
          std::copy(witness.begin() + start + src,
                    witness.begin() + start + src + len,
                    witness.begin() + start + dst);
        },
        [&](uint32_t vi, uint32_t kept) {
          // lint: private-write(one leader task per split vertex)
          wg.degrees[vi] = kept;
        });
  }
  if (pt != nullptr) pt->add("filterEdges", t.lap());

  info.num_rounds = round;
  info.edges_kept = parallel::reduce_sum_ws<size_t>(
      n, [&](size_t v) { return wg.degrees[v]; }, ws);
  return info;
}

}  // namespace

void sf_engine::reserve(size_t n, size_t m) {
  persist_.reset();
  scratch_.reset();
  graph_[0].reset();
  graph_[1].reset();
  frames_.clear();
  // cc_engine's heuristics plus the witness arrays: one uint64 per edge
  // slot in each graph arena, one packed forest slot per vertex in
  // persist_, and the witness_pair gather array in scratch_.
  persist_.reserve(sizeof(vertex_id) * 4 * n + sizeof(uint64_t) * n);
  graph_[0].reserve(sizeof(vertex_id) * (m + n) + sizeof(uint64_t) * m);
  graph_[1].reserve(sizeof(vertex_id) * (m + n) + sizeof(uint64_t) * m);
  scratch_.reserve(sizeof(vertex_id) * 16 * n + 24 * m);
  frames_.reserve(opt_.max_levels);
  forest_storage_.reserve(n);
}

sf_engine::result sf_engine::run(const graph::graph& g, cc_stats* stats) {
  return run(g, opt_, stats);
}

sf_engine::result sf_engine::run(const graph::graph& g, const cc_options& opt,
                                 cc_stats* stats) {
  const size_t n0 = g.num_vertices();
  const size_t m0 = g.num_edges();

  persist_.reset();
  scratch_.reset();
  graph_[0].reset();
  graph_[1].reset();
  frames_.clear();
  frames_.reserve(opt.max_levels);
  forest_storage_.clear();

  if (n0 == 0) return {};
  std::span<vertex_id> labels = persist_.take<vertex_id>(n0);
  // The forest holds n0 - #components < n0 packed witnesses; claims append
  // here round by round, the fallback appends serially.
  std::span<uint64_t> forest = persist_.take<uint64_t>(n0);
  size_t forest_count = 0;
  if (m0 == 0) {
    parallel_for(0, n0,
                 [&](size_t v) { labels[v] = static_cast<vertex_id>(v); });
    return {labels, {}};
  }

  // Level-0 working graph: offsets borrowed from g; edges copied (the
  // decomposition compacts them in place). The witness array is NOT
  // pre-stamped — level 0 runs the decomposition in identity-witness mode
  // (witness of slot (v, j) = the edge itself), which writes witnesses
  // only into slots that survive compaction.
  std::span<vertex_id> edges0 = graph_[0].take<vertex_id>(m0);
  std::span<vertex_id> degrees0 = graph_[0].take<vertex_id>(n0);
  std::span<uint64_t> witness0 = graph_[0].take<uint64_t>(m0);
  const std::vector<vertex_id>& ge = g.edges();
  parallel_for(0, m0, [&](size_t i) { edges0[i] = ge[i]; });
  const std::vector<edge_id>& go = g.offsets();
  parallel_for(0, n0, [&](size_t v) {
    degrees0[v] = g.degree(static_cast<vertex_id>(v));
  });
  ldd::work_graph cur = ldd::work_graph::over(
      n0, std::span<const edge_id>(go), edges0, degrees0);
  std::span<uint64_t> cur_witness = witness0;
  size_t cur_m = m0;
  int ping = 0;  // graph_ arena holding cur's storage

  // Go up: decompose and contract until the edges run out (or the safety
  // net engages), recording the lift state of each level.
  std::span<const vertex_id> base;  // labels of the topmost solved level
  size_t level = 0;
  while (true) {
    if (level >= opt.max_levels) {
      // Safety net: finish sequentially with union-find, keeping the
      // witness of every uniting edge.
      if (stats != nullptr) stats->used_fallback = true;
      std::span<vertex_id> fb = scratch_.take<vertex_id>(cur.n);
      std::span<vertex_id> parent = scratch_.take<vertex_id>(cur.n);
      for (size_t v = 0; v < cur.n; ++v) {
        parent[v] = static_cast<vertex_id>(v);
      }
      const auto find = [&](vertex_id x) {
        while (parent[x] != x) {
          parent[x] = parent[parent[x]];
          x = parent[x];
        }
        return x;
      };
      for (size_t u = 0; u < cur.n; ++u) {
        const edge_id start = cur.offsets[u];
        for (vertex_id i = 0; i < cur.degrees[u]; ++i) {
          const vertex_id ru = find(static_cast<vertex_id>(u));
          const vertex_id rw = find(cur.edges[start + i]);
          if (ru != rw) {
            parent[ru < rw ? rw : ru] = ru < rw ? ru : rw;
            // Level 0 runs identity-witness: slots carry no stored
            // witness, the edge is its own.
            forest[forest_count++] =
                level == 0 ? pack_witness(static_cast<vertex_id>(u),
                                          cur.edges[start + i])
                           : cur_witness[start + i];
          }
        }
      }
      for (size_t v = 0; v < cur.n; ++v) {
        fb[v] = find(static_cast<vertex_id>(v));
      }
      base = fb;
      break;
    }
    if (level > 0) {
      graph_[1 - ping].reset();
    }

    // L = DECOMP(G, beta) — claim witnesses flow into the forest here.
    std::span<vertex_id> cluster = persist_.take<vertex_id>(cur.n);
    ldd::decomp_info dec;
    {
      parallel::workspace::scope s(scratch_);
      ldd::options dopt;
      dopt.beta = opt.beta;
      dopt.shifts = opt.shifts;
      dopt.dense_threshold = opt.dense_threshold;
      // Same per-level seed schedule as cc_engine, so the two engines see
      // the same decomposition randomness for the same cc_options.
      dopt.seed = parallel::hash64(opt.seed + 0x9e37 * (level + 1));
      dec = decomp_arb_sf_into(cur, cur_witness, /*identity_witness=*/level == 0,
                               dopt, cluster, forest, forest_count, scratch_,
                               stats != nullptr ? &stats->phases : nullptr);
    }

    // G' = CONTRACT(G, L), keeping one witness per surviving pair.
    parallel::timer contract_timer;
    const contraction_view cv = contract_into(
        cur, std::span<const uint64_t>(cur_witness), cluster, opt.dedup,
        persist_, graph_[1 - ping], scratch_, opt.dedup_route);
    if (stats != nullptr) {
      stats->phases.add("contractGraph", contract_timer.elapsed());
      level_stats ls;
      ls.n = cur.n;
      ls.m = cur_m;
      ls.edges_kept = dec.edges_kept;
      ls.edges_after_dedup = cv.edges.size();
      ls.num_clusters = dec.num_clusters;
      ls.num_singletons = dec.num_clusters >= cv.num_vertices
                              ? dec.num_clusters - cv.num_vertices
                              : 0;
      ls.bfs_rounds = dec.num_rounds;
      ls.dense_rounds = dec.num_dense_rounds;
      ls.dedup_route = cv.dedup_route;
      stats->levels.push_back(ls);
    }

    if (cv.edges.empty()) {
      base = cluster;
      break;
    }

    frames_.push_back({cluster, cv.new_id, cv.rep, cur.n});
    ping = 1 - ping;
    std::span<vertex_id> degrees =
        graph_[ping].take<vertex_id>(cv.num_vertices);
    parallel_for(0, cv.num_vertices, [&](size_t v) {
      degrees[v] =
          static_cast<vertex_id>(cv.offsets[v + 1] - cv.offsets[v]);
    });
    cur = ldd::work_graph::over(cv.num_vertices, cv.offsets, cv.edges,
                                degrees);
    cur_witness = cv.edge_witness;
    cur_m = cv.edges.size();
    ++level;
  }

  // Come back down (RELABELUP) — identical to cc_engine.
  parallel::timer relabel_timer;
  {
    parallel::workspace::scope s(scratch_);
    for (size_t f = frames_.size(); f-- > 0;) {
      const level_frame& fr = frames_[f];
      std::span<vertex_id> lifted =
          f == 0 ? labels : scratch_.take<vertex_id>(fr.n);
      parallel_for(0, fr.n, [&](size_t v) {
        const vertex_id c = fr.cluster[v];
        const vertex_id x = fr.new_id[c];
        lifted[v] = (x == kNoVertex) ? c : fr.rep[base[x]];
      });
      base = lifted;
    }
    if (frames_.empty()) {
      parallel_for(0, n0, [&](size_t v) { labels[v] = base[v]; });
    }
  }
  if (stats != nullptr) {
    stats->phases.add("contractGraph", relabel_timer.elapsed());
  }

  // Publish the forest as unpacked (u, v) pairs. Determinism makes
  // forest_count identical run to run, so after warm-up the resize stays
  // within capacity and allocates nothing.
  assert(forest_count < n0);
  forest_storage_.resize(forest_count);
  parallel_for(0, forest_count, [&](size_t i) {
    // lint: private-write(iteration i owns slot i)
    forest_storage_[i] = unpack_witness(forest[i]);
  });
  return {labels, {forest_storage_.data(), forest_storage_.size()}};
}

}  // namespace pcc::cc
