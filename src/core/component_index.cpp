#include "core/component_index.hpp"

#include <cassert>

#include "parallel/histogram.hpp"
#include "parallel/integer_sort.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::cc {

component_index::component_index(std::span<const vertex_id> labels) {
  const size_t n = labels.size();
  comp_of_.resize(n);
  vertices_.resize(n);
  if (n == 0) {
    starts_ = {0};
    return;
  }

  // Dense component ids: representatives (labels[v] == v... not required —
  // any label < n works) ranked by a scan over the occupied label values.
  const std::vector<size_t> counts =
      parallel::histogram(n, n, [&](size_t v) {
        assert(labels[v] < n);
        return labels[v];
      });
  std::vector<size_t> rank;
  const size_t k = parallel::scan_exclusive_into(
      n, [&](size_t l) { return counts[l] > 0 ? size_t{1} : size_t{0}; },
      rank);

  parallel::parallel_for(0, n, [&](size_t v) {
    comp_of_[v] = static_cast<vertex_id>(rank[labels[v]]);
  });

  // Group vertices by component: offsets from the counts, then scatter
  // (stable within a component up to the scatter race; ordering inside a
  // component is not part of the contract).
  sizes_.resize(k);
  parallel::parallel_for(0, n, [&](size_t l) {
    // lint: private-write(rank is injective on labels with counts[l] > 0)
    if (counts[l] > 0) sizes_[rank[l]] = counts[l];
  });
  starts_.resize(k + 1);
  std::vector<size_t> offsets;
  parallel::scan_exclusive_into(
      k, [&](size_t c) { return sizes_[c]; }, offsets);
  parallel::parallel_for(0, k, [&](size_t c) { starts_[c] = offsets[c]; });
  starts_[k] = n;

  // Group the vertices with one stable integer sort on (component, vertex)
  // keys instead of racing per-component cursors: the order within each
  // component becomes deterministic (ascending vertex id — the sort is a
  // stable LSD radix and the input is produced in vertex order).
  std::vector<uint64_t> keyed(n);
  parallel::parallel_for(0, n, [&](size_t v) {
    keyed[v] = (static_cast<uint64_t>(comp_of_[v]) << 32) | v;
  });
  parallel::integer_sort(keyed, parallel::bits_needed(k == 0 ? 1 : k),
                         [](uint64_t p) { return p >> 32; });
  parallel::parallel_for(0, n, [&](size_t i) {
    vertices_[i] = static_cast<vertex_id>(keyed[i]);
  });

  largest_ = 0;
  for (size_t c = 1; c < k; ++c) {
    if (sizes_[c] > sizes_[largest_]) largest_ = static_cast<vertex_id>(c);
  }
}

}  // namespace pcc::cc
