// forest_index construction and queries (see forest_index.hpp).

#include "core/forest_index.hpp"

#include <algorithm>
#include <cassert>

#include "parallel/arena.hpp"
#include "parallel/atomics.hpp"
#include "parallel/emit.hpp"
#include "parallel/hash_map.hpp"
#include "parallel/integer_sort.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::cc {

namespace {

using parallel::parallel_for;

constexpr uint32_t kNoForestEdge = ~uint32_t{0};

// One directed copy of a forest edge, for building the adjacency CSR.
struct dir_edge {
  vertex_id src;
  vertex_id tgt;
  uint32_t eidx;
};

inline uint64_t undirected_key(vertex_id u, vertex_id v) {
  return u < v ? ((static_cast<uint64_t>(u) << 32) | v)
               : ((static_cast<uint64_t>(v) << 32) | u);
}

}  // namespace

forest_index::forest_index(size_t n, std::span<const graph::edge> forest,
                           std::span<const vertex_id> labels)
    : comp_(labels), forest_(forest.begin(), forest.end()) {
  assert(labels.size() == n);
  const size_t f = forest_.size();
  parallel::workspace ws;

  // Forest adjacency: both directions of every forest edge, sorted by
  // source (stable radix keeps the forest order within a vertex, so the
  // adjacency — and everything BFS-derived below — is deterministic).
  std::vector<dir_edge> dirs(2 * f);
  parallel_for(0, f, [&](size_t j) {
    const auto [u, v] = forest_[j];
    assert(u != v && u < n && v < n);
    // lint: private-write(iteration j owns slots 2j and 2j+1)
    dirs[2 * j] = {u, v, static_cast<uint32_t>(j)};
    dirs[2 * j + 1] = {v, u, static_cast<uint32_t>(j)};
  });
  parallel::integer_sort(dirs, parallel::bits_needed(n == 0 ? 1 : n),
                         [](const dir_edge& d) { return d.src; });
  adj_offsets_.resize(n + 1);
  adj_targets_.resize(dirs.size());
  adj_eidx_.resize(dirs.size());
  parallel_for(0, dirs.size(), [&](size_t i) {
    // lint: private-write(iteration i owns slot i of both arrays)
    adj_targets_[i] = dirs[i].tgt;
    adj_eidx_[i] = dirs[i].eidx;
  });
  parallel_for(0, n + 1, [&](size_t v) {
    const auto it = std::lower_bound(
        dirs.begin(), dirs.end(), v,
        [](const dir_edge& d, size_t vv) { return d.src < vv; });
    // lint: private-write(iteration v owns slot v)
    adj_offsets_[v] = static_cast<edge_id>(it - dirs.begin());
  });

  // Root every tree at its component's minimum vertex (members() are in
  // ascending vertex order) and BFS all trees at once. In a forest an
  // unvisited vertex is adjacent to at most one visited vertex per round,
  // so the child writes are plain stores with a unique writer.
  const size_t nc = comp_.num_components();
  parent_.assign(n, kNoVertex);
  parent_eidx_.assign(n, kNoForestEdge);
  depth_.assign(n, 0);
  edge_child_.assign(f, kNoVertex);
  root_of_comp_.resize(nc);
  by_depth_.resize(n);
  level_starts_.clear();
  level_starts_.push_back(0);

  std::span<vertex_id> frontier = ws.take<vertex_id>(n);
  std::span<vertex_id> next = ws.take<vertex_id>(n);
  size_t frontier_size = nc;
  parallel_for(0, nc, [&](size_t c) {
    const vertex_id r = comp_.members(static_cast<vertex_id>(c))[0];
    root_of_comp_[c] = r;  // lint: private-write(iteration c owns slot c)
    frontier[c] = r;       // lint: private-write(iteration c owns slot c)
  });

  size_t filled = 0;
  uint32_t level = 0;
  while (frontier_size > 0) {
    parallel_for(0, frontier_size, [&](size_t i) {
      // lint: private-write(iteration i owns slot filled + i)
      by_depth_[filled + i] = frontier[i];
    });
    filled += frontier_size;
    level_starts_.push_back(filled);
    size_t next_size;
    {
      parallel::workspace::scope round_scope(ws);
      const parallel::frontier_result run =
          parallel::frontier_edge_for<vertex_id>(
              frontier_size,
              [&](size_t fi) {
                const vertex_id v = frontier[fi];
                return adj_offsets_[v + 1] - adj_offsets_[v];
              },
              next, ws,
              [&](size_t fi, uint32_t jlo, uint32_t jhi, uint32_t,
                  parallel::emitter<vertex_id>& em) -> uint32_t {
                const vertex_id v = frontier[fi];
                const edge_id start = adj_offsets_[v];
                for (uint32_t i = jlo; i < jhi; ++i) {
                  const vertex_id w = adj_targets_[start + i];
                  if (w == parent_[v]) continue;
                  const uint32_t j = adj_eidx_[start + i];
                  // lint: private-write(w has one visited neighbor: v)
                  parent_[w] = v;
                  // lint: private-write(same unique-claimer invariant)
                  parent_eidx_[w] = j;
                  // lint: private-write(same unique-claimer invariant)
                  depth_[w] = level + 1;
                  // lint: private-write(edge j's deeper endpoint is only w)
                  edge_child_[j] = w;
                  em(w);
                }
                return 0;
              });
      next_size = run.emitted;
    }
    parallel_for(0, next_size, [&](size_t i) {
      // lint: private-write(iteration i owns slot i)
      frontier[i] = next[i];
    });
    frontier_size = next_size;
    ++level;
  }
  assert(filled == n);

  // Exact tree diameters by the two-sweep argument: the vertex farthest
  // from any vertex (here: the root) is an endpoint of a longest path, and
  // a second BFS from it reaches the other endpoint at distance =
  // diameter. Farthest-vertex selection packs (depth, ~v) so ties break
  // toward the smallest vertex id, keeping the sweep deterministic.
  diameter_.assign(nc, 0);
  if (f > 0) {
    std::span<uint64_t> far = ws.take_filled<uint64_t>(nc, uint64_t{0});
    parallel_for(0, n, [&](size_t v) {
      const vertex_id c = comp_.component_of(static_cast<vertex_id>(v));
      parallel::write_max(&far[c], (static_cast<uint64_t>(depth_[v]) << 32) |
                                       (~static_cast<uint32_t>(v)));
    });

    std::span<vertex_id> prev = ws.take_filled<vertex_id>(n, kNoVertex);
    std::span<uint32_t> depth2 = ws.take_zeroed<uint32_t>(n);
    frontier_size = nc;
    parallel_for(0, nc, [&](size_t c) {
      // lint: private-write(iteration c owns slot c)
      frontier[c] = ~static_cast<uint32_t>(far[c]);
    });
    uint32_t level2 = 0;
    while (frontier_size > 0) {
      size_t next_size;
      {
        parallel::workspace::scope round_scope(ws);
        const parallel::frontier_result run =
            parallel::frontier_edge_for<vertex_id>(
                frontier_size,
                [&](size_t fi) {
                  const vertex_id v = frontier[fi];
                  return adj_offsets_[v + 1] - adj_offsets_[v];
                },
                next, ws,
                [&](size_t fi, uint32_t jlo, uint32_t jhi, uint32_t,
                    parallel::emitter<vertex_id>& em) -> uint32_t {
                  const vertex_id v = frontier[fi];
                  const edge_id start = adj_offsets_[v];
                  for (uint32_t i = jlo; i < jhi; ++i) {
                    const vertex_id w = adj_targets_[start + i];
                    if (w == prev[v]) continue;
                    // lint: private-write(w has one visited neighbor: v)
                    prev[w] = v;
                    // lint: private-write(same unique-claimer invariant)
                    depth2[w] = level2 + 1;
                    em(w);
                  }
                  return 0;
                });
        next_size = run.emitted;
      }
      parallel_for(0, next_size, [&](size_t i) {
        // lint: private-write(iteration i owns slot i)
        frontier[i] = next[i];
      });
      frontier_size = next_size;
      ++level2;
    }
    parallel_for(0, n, [&](size_t v) {
      const vertex_id c = comp_.component_of(static_cast<vertex_id>(v));
      parallel::write_max(&diameter_[c], static_cast<size_t>(depth2[v]));
    });
  }
}

vertex_id forest_index::lca(vertex_id u, vertex_id v) const {
  assert(connected(u, v));
  while (depth_[u] > depth_[v]) u = parent_[u];
  while (depth_[v] > depth_[u]) v = parent_[v];
  while (u != v) {
    u = parent_[u];
    v = parent_[v];
  }
  return u;
}

size_t forest_index::distance(vertex_id u, vertex_id v) const {
  const vertex_id a = lca(u, v);
  return (depth_[u] - depth_[a]) + (depth_[v] - depth_[a]);
}

std::vector<graph::edge> forest_index::path(vertex_id u, vertex_id v) const {
  std::vector<graph::edge> out;
  if (u == v || !connected(u, v)) return out;
  const vertex_id a = lca(u, v);
  out.reserve((depth_[u] - depth_[a]) + (depth_[v] - depth_[a]));
  // u's side, walking up: edges already come out in path order.
  for (vertex_id x = u; x != a; x = parent_[x]) {
    out.push_back(forest_[parent_eidx_[x]]);
  }
  // v's side, walking up collects lca->v edges in reverse; flip them.
  const size_t mid = out.size();
  for (vertex_id x = v; x != a; x = parent_[x]) {
    out.push_back(forest_[parent_eidx_[x]]);
  }
  std::reverse(out.begin() + mid, out.end());
  return out;
}

std::vector<graph::edge> forest_index::bridges(const graph::graph& g) const {
  const size_t n = num_vertices();
  const size_t f = forest_.size();
  assert(g.num_vertices() == n);
  std::vector<graph::edge> out;
  if (f == 0) return out;

  // Tree-edge lookup: packed (min, max) -> forest-edge index. Keys are
  // distinct (a forest has no duplicate edges), so the stored value is
  // deterministic despite first-writer-wins insert.
  parallel::hash_map64 tree(f);
  parallel_for(0, f, [&](size_t j) {
    tree.insert(undirected_key(forest_[j].first, forest_[j].second),
                static_cast<uint64_t>(j));
  });

  // Cover-count every non-tree edge (u, w): +1 at both endpoints, -2 at
  // their LCA; a forest edge is a bridge iff the subtree below its child
  // endpoint sums to zero. Each forest edge has ONE skip budget — the tree
  // copy of itself — claimed with a fetch_add, so parallel duplicates
  // beyond the first count as covering edges (they do de-bridge the edge).
  std::vector<int64_t> cover(n, 0);
  std::vector<uint32_t> used(f, 0);
  const std::vector<edge_id>& go = g.offsets();
  const std::vector<vertex_id>& ge = g.edges();
  parallel_for(0, n, [&](size_t uu) {
    const vertex_id u = static_cast<vertex_id>(uu);
    for (edge_id e = go[uu]; e < go[uu + 1]; ++e) {
      const vertex_id w = ge[e];
      if (u >= w) continue;  // one directed copy per undirected edge
      uint64_t j = 0;
      if (tree.find(undirected_key(u, w), &j) &&
          parallel::fetch_add(&used[j], uint32_t{1}) == 0) {
        continue;  // the tree edge itself covers nothing
      }
      const vertex_id a = lca(u, w);
      parallel::fetch_add(&cover[u], int64_t{1});
      parallel::fetch_add(&cover[w], int64_t{1});
      parallel::fetch_add(&cover[a], int64_t{-2});
    }
  });

  // Subtree sums, deepest level first: every vertex folds its total into
  // its parent once its own level is done, so by the time a level runs all
  // of its children's contributions have landed.
  for (size_t d = level_starts_.size() - 1; d-- > 1;) {
    const size_t lo = level_starts_[d];
    const size_t hi = level_starts_[d + 1];
    parallel_for(lo, hi, [&](size_t i) {
      const vertex_id v = by_depth_[i];
      parallel::fetch_add(&cover[parent_[v]], cover[v]);
    });
  }

  for (size_t j = 0; j < f; ++j) {
    if (cover[edge_child_[j]] == 0) out.push_back(forest_[j]);
  }
  return out;
}

std::vector<vertex_id> forest_index::k_largest(size_t k) const {
  const size_t nc = comp_.num_components();
  std::vector<vertex_id> ids(nc);
  for (size_t c = 0; c < nc; ++c) ids[c] = static_cast<vertex_id>(c);
  k = std::min(k, nc);
  const auto by_size_desc = [&](vertex_id a, vertex_id b) {
    const size_t sa = comp_.size(a);
    const size_t sb = comp_.size(b);
    return sa != sb ? sa > sb : a < b;
  };
  std::partial_sort(ids.begin(), ids.begin() + k, ids.end(), by_size_desc);
  ids.resize(k);
  return ids;
}

}  // namespace pcc::cc
