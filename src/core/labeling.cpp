// Liu–Tarjan labeling kernels: one policy-templated round loop
// instantiated for every hook × shortcut × alter combination.
//
// Shared-memory discipline: the label array doubles as the parent array p
// with the invariant p[x] <= x. Every hook is a write_min, every read of a
// cell that races with hooks is an atomic_load, and the per-round change
// flag is a write_once byte joined by the parallel_for barrier — the same
// vocabulary as the decomposition kernels, so parallel_lint's rules apply
// unchanged.

#include "core/labeling.hpp"

#include <algorithm>
#include <cassert>
#include <type_traits>
#include <utility>

#include "parallel/atomics.hpp"
#include "parallel/emit.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::cc {
namespace {

using parallel::atomic_load;
using parallel::pack_pair;
using parallel::pair_first;
using parallel::pair_second;
using parallel::write_min;
using parallel::write_once;

// One directed hook over edge (u, v): pull p[v]'s label toward u's cell(s).
// Returns true iff some cell changed. The undirected edge is processed in
// both directions by the callers.
template <lt_hook H>
inline bool hook_edge(std::span<vertex_id> p, vertex_id u, vertex_id pv) {
  if constexpr (H == lt_hook::kDirect) {
    return write_min(&p[u], pv);
  } else if constexpr (H == lt_hook::kParent) {
    const vertex_id pu = atomic_load(&p[u]);
    return write_min(&p[pu], pv);
  } else if constexpr (H == lt_hook::kExtended) {
    const vertex_id pu = atomic_load(&p[u]);
    const bool a = write_min(&p[pu], pv);
    const bool b = write_min(&p[u], pv);
    return a || b;
  } else {  // kRoots: only roots accept a hook.
    const vertex_id pu = atomic_load(&p[u]);
    if (pu != u) return false;
    return write_min(&p[u], pv);
  }
}

// Hook pass over the original CSR, vertex-parallel. Gathering the local
// minimum of the neighbours' labels first turns |N(u)| write_min attempts
// into one, which is what keeps direct hooks from becoming a contention
// hot-spot on hub vertices.
template <lt_hook H>
bool hook_pass_csr(const graph::graph& g, std::span<vertex_id> p) {
  uint8_t changed = 0;
  parallel::parallel_for(0, g.num_vertices(), [&](size_t ui) {
    const auto u = static_cast<vertex_id>(ui);
    const auto nbrs = g.neighbors(u);
    if (nbrs.empty()) return;
    vertex_id mn = kNoVertex;
    for (const vertex_id v : nbrs) mn = std::min(mn, atomic_load(&p[v]));
    if (hook_edge<H>(p, u, mn)) write_once(&changed, uint8_t{1});
  });
  return changed != 0;
}

// Hook pass over an altered (packed, deduplicated-by-compaction) edge
// list, edge-parallel, both directions per edge.
template <lt_hook H>
bool hook_pass_edges(std::span<const parallel::packed_pair> edges,
                     std::span<vertex_id> p) {
  uint8_t changed = 0;
  parallel::parallel_for(0, edges.size(), [&](size_t i) {
    const vertex_id a = pair_first(edges[i]);
    const vertex_id b = pair_second(edges[i]);
    const bool ca = hook_edge<H>(p, a, atomic_load(&p[b]));
    const bool cb = hook_edge<H>(p, b, atomic_load(&p[a]));
    if (ca || cb) write_once(&changed, uint8_t{1});
  });
  return changed != 0;
}

// Shortcut pass. kSingle is one pointer jump; kFull chases to the root.
// Concurrent jumps only ever lower cells (p is monotone), so racy reads
// are safe: a stale read just means a later round does the remaining jump.
template <lt_shortcut S>
bool shortcut_pass(std::span<vertex_id> p) {
  uint8_t changed = 0;
  parallel::parallel_for(0, p.size(), [&](size_t vi) {
    const auto v = static_cast<vertex_id>(vi);
    vertex_id parent = atomic_load(&p[v]);
    vertex_id target = atomic_load(&p[parent]);
    if constexpr (S == lt_shortcut::kFull) {
      while (true) {
        const vertex_id next = atomic_load(&p[target]);
        if (next == target) break;
        target = next;
      }
    }
    if (target < parent && write_min(&p[v], target)) {
      write_once(&changed, uint8_t{1});
    }
  });
  return changed != 0;
}

// Alter pass: rewrite every surviving edge to its endpoints' current
// parents and drop the self-loops. p is NOT mutated during this pass, so
// the pure two-pass count_then_emit applies (the body runs twice).
size_t alter_pass(std::span<const parallel::packed_pair> cur, size_t cur_m,
                  std::span<parallel::packed_pair> next,
                  std::span<vertex_id> p, parallel::workspace& ws) {
  return parallel::count_then_emit<parallel::packed_pair>(
      cur_m, next, ws, [&](size_t i, auto& em) {
        const vertex_id a = p[pair_first(cur[i])];
        const vertex_id b = p[pair_second(cur[i])];
        if (a != b) em(a < b ? pack_pair(a, b) : pack_pair(b, a));
      });
}

// Certification epilogue: direct hook over the ORIGINAL edges + single
// shortcut until quiescent. At quiescence the forest is flat and both
// endpoints of every original edge carry the same label, so the labeling
// is exactly min-of-component. Starting from any monotone state reachable
// by the variant rounds this terminates (each changing round strictly
// decreases sum(p)); for variants that already converged it costs a single
// no-change scan.
size_t certify(const graph::graph& g, std::span<vertex_id> p) {
  size_t rounds = 0;
  while (true) {
    ++rounds;
    const bool h = hook_pass_csr<lt_hook::kDirect>(g, p);
    const bool s = shortcut_pass<lt_shortcut::kSingle>(p);
    if (!h && !s) return rounds;
  }
}

template <lt_hook H, lt_shortcut S, bool Alter>
size_t run_lt(const graph::graph& g, std::span<vertex_id> p,
              parallel::workspace& ws) {
  const size_t n = g.num_vertices();
  parallel::parallel_for(0, n, [&](size_t v) {
    p[v] = static_cast<vertex_id>(v);  // lint: private-write(owner index v)
  });
  if (n == 0) return 0;

  size_t rounds = 0;
  if constexpr (Alter) {
    const size_t m = g.num_edges();
    parallel::workspace::scope scope(ws);
    std::span<parallel::packed_pair> cur = ws.take<parallel::packed_pair>(m);
    std::span<parallel::packed_pair> nxt = ws.take<parallel::packed_pair>(m);
    // Materialize the directed CSR as a dense packed-pair list, dropping
    // input self-loops up front. The body only reads the (immutable) CSR,
    // so the pure two-pass emission applies.
    size_t cur_m = parallel::count_then_emit<parallel::packed_pair>(
        n, cur, ws,
        [&](size_t ui, auto& em) {
          const auto u = static_cast<vertex_id>(ui);
          for (const vertex_id v : g.neighbors(u)) {
            if (u != v) em(pack_pair(u, v));
          }
        },
        /*grain=*/512);

    while (cur_m > 0) {
      ++rounds;
      const bool h = hook_pass_edges<H>(cur.first(cur_m), p);
      const bool s = shortcut_pass<S>(p);
      cur_m = alter_pass(cur, cur_m, nxt, p, ws);
      std::swap(cur, nxt);
      if (!h && !s) break;
    }
  } else {
    while (true) {
      ++rounds;
      const bool h = hook_pass_csr<H>(g, p);
      const bool s = shortcut_pass<S>(p);
      if (!h && !s) break;
    }
  }
  return rounds + certify(g, p);
}

using lt_fn = size_t (*)(const graph::graph&, std::span<vertex_id>,
                         parallel::workspace&);

lt_fn dispatch(const lt_policy& pol) {
  const auto pick = [&](auto hook_tag) -> lt_fn {
    constexpr lt_hook H = decltype(hook_tag)::value;
    switch (pol.shortcut) {
      case lt_shortcut::kSingle:
        return pol.alter ? &run_lt<H, lt_shortcut::kSingle, true>
                         : &run_lt<H, lt_shortcut::kSingle, false>;
      case lt_shortcut::kFull:
        break;
    }
    return pol.alter ? &run_lt<H, lt_shortcut::kFull, true>
                     : &run_lt<H, lt_shortcut::kFull, false>;
  };
  switch (pol.hook) {
    case lt_hook::kDirect:
      return pick(std::integral_constant<lt_hook, lt_hook::kDirect>{});
    case lt_hook::kParent:
      return pick(std::integral_constant<lt_hook, lt_hook::kParent>{});
    case lt_hook::kExtended:
      return pick(std::integral_constant<lt_hook, lt_hook::kExtended>{});
    case lt_hook::kRoots:
      break;
  }
  return pick(std::integral_constant<lt_hook, lt_hook::kRoots>{});
}

constexpr lt_variant kVariants[] = {
    {"lt-ds",
     {lt_hook::kDirect, lt_shortcut::kSingle, false},
     "direct hook, single shortcut (Liu-Tarjan algorithm S)"},
    {"lt-df",
     {lt_hook::kDirect, lt_shortcut::kFull, false},
     "direct hook, full shortcut"},
    {"lt-ps",
     {lt_hook::kParent, lt_shortcut::kSingle, false},
     "parent hook, single shortcut (Liu-Tarjan algorithm P)"},
    {"lt-pf",
     {lt_hook::kParent, lt_shortcut::kFull, false},
     "parent hook, full shortcut"},
    {"lt-es",
     {lt_hook::kExtended, lt_shortcut::kSingle, false},
     "extended hook, single shortcut (Liu-Tarjan algorithm E)"},
    {"lt-ef",
     {lt_hook::kExtended, lt_shortcut::kFull, false},
     "extended hook, full shortcut"},
    {"lt-psa",
     {lt_hook::kParent, lt_shortcut::kSingle, true},
     "parent hook, single shortcut, altered edges"},
    {"lt-pfa",
     {lt_hook::kParent, lt_shortcut::kFull, true},
     "parent hook, full shortcut, altered edges"},
    {"lt-rsa",
     {lt_hook::kRoots, lt_shortcut::kSingle, true},
     "roots-only hook, single shortcut, altered edges"},
    {"lt-rfa",
     {lt_hook::kRoots, lt_shortcut::kFull, true},
     "roots-only hook, full shortcut, altered edges"},
};

}  // namespace

std::span<const lt_variant> liu_tarjan_variants() { return kVariants; }

const lt_variant* find_liu_tarjan_variant(std::string_view name) {
  for (const lt_variant& v : kVariants) {
    if (name == v.name) return &v;
  }
  return nullptr;
}

size_t liu_tarjan_into(const graph::graph& g, const lt_policy& policy,
                       std::span<vertex_id> labels, parallel::workspace& ws) {
  assert(labels.size() == g.num_vertices());
  return dispatch(policy)(g, labels, ws);
}

std::vector<vertex_id> liu_tarjan_components(const graph::graph& g,
                                             const lt_policy& policy) {
  std::vector<vertex_id> labels(g.num_vertices());
  parallel::workspace ws;
  liu_tarjan_into(g, policy, labels, ws);
  return labels;
}

}  // namespace pcc::cc
