// forest_index: tree-path / bridge / shape queries on top of a spanning
// forest (sf_engine's second output), the way component_index serves
// label queries on top of a labeling.
//
// Construction roots every tree of the forest at its minimum vertex id
// with one multi-source parallel BFS (race-free: in a forest, an
// unvisited vertex has exactly one visited neighbor per round) and
// records parent pointers, depths, the vertices grouped by BFS level, and
// each tree's exact diameter (two BFS sweeps — exact on trees). Every
// stored forest edge is an ORIGINAL graph edge (the witness property of
// the spanning-forest pipeline), so path() answers are directly usable as
// edge lists of the input graph.
//
// Queries:
//   path(u, v)    — the unique forest path, as original edges, O(path).
//   bridges(g)    — the bridge edges of g (all bridges are forest edges),
//                   by cover-counting non-tree edges against the forest.
//   stats(c)      — per-component root / size / exact forest diameter.
//   k_largest(k)  — dense component ids of the k largest components.
#pragma once

#include <span>
#include <vector>

#include "core/component_index.hpp"
#include "graph/graph.hpp"

namespace pcc::cc {

class forest_index {
 public:
  struct component_stats {
    vertex_id root = 0;   // BFS root: the component's minimum vertex id
    size_t size = 0;      // member count
    size_t diameter = 0;  // longest path (in edges) in the component's tree
  };

  // `forest` must be a spanning forest of the n-vertex graph whose
  // components `labels` describes (both exactly as returned by
  // sf_engine::run). The spans are only read during construction.
  forest_index(size_t n, std::span<const graph::edge> forest,
               std::span<const vertex_id> labels);

  size_t num_vertices() const { return parent_.size(); }
  const component_index& components() const { return comp_; }
  std::span<const graph::edge> forest() const {
    return {forest_.data(), forest_.size()};
  }

  bool connected(vertex_id u, vertex_id v) const {
    return comp_.connected(u, v);
  }

  // BFS parent of v in its tree (kNoVertex for roots) and depth from the
  // root.
  vertex_id parent(vertex_id v) const { return parent_[v]; }
  size_t depth(vertex_id v) const { return depth_[v]; }

  // Lowest common ancestor; u and v must be connected.
  vertex_id lca(vertex_id u, vertex_id v) const;

  // Edges on the unique forest path from u to v (original graph edges, in
  // order from u's end to v's end). Empty if u == v or u, v are in
  // different components — disambiguate with connected().
  std::vector<graph::edge> path(vertex_id u, vertex_id v) const;

  // Number of edges on the forest path (= graph distance in the forest);
  // u and v must be connected.
  size_t distance(vertex_id u, vertex_id v) const;

  // The bridges of g (g must be the graph this forest spans): every
  // forest edge not covered by any non-tree edge, in forest order. A
  // parallel copy of a forest edge counts as a covering edge, so
  // multigraph duplicates correctly de-bridge.
  std::vector<graph::edge> bridges(const graph::graph& g) const;

  // Stats for dense component id c (component_index numbering).
  component_stats stats(vertex_id c) const {
    return {root_of_comp_[c], comp_.size(c), diameter_[c]};
  }

  // Dense ids of the k largest components, size-descending (ties by
  // ascending id); k is clamped to num_components().
  std::vector<vertex_id> k_largest(size_t k) const;

 private:
  component_index comp_;
  std::vector<graph::edge> forest_;  // owned copy, original edges

  // Forest adjacency (CSR over 2 * forest_.size() directed slots), with
  // each slot carrying the forest-edge index it came from.
  std::vector<edge_id> adj_offsets_;
  std::vector<vertex_id> adj_targets_;
  std::vector<uint32_t> adj_eidx_;

  std::vector<vertex_id> parent_;       // kNoVertex at roots
  std::vector<uint32_t> parent_eidx_;   // forest-edge index to parent
  std::vector<uint32_t> depth_;
  std::vector<vertex_id> edge_child_;   // the deeper endpoint of each edge

  // Vertices grouped by BFS depth: level d is
  // by_depth_[level_starts_[d] .. level_starts_[d+1]).
  std::vector<vertex_id> by_depth_;
  std::vector<size_t> level_starts_;

  std::vector<vertex_id> root_of_comp_;  // dense component id -> root
  std::vector<size_t> diameter_;         // dense component id -> diameter
};

}  // namespace pcc::cc
