#include "core/select.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/random.hpp"

namespace pcc::cc {

namespace {

// Probe budgets. Small enough that the probe is a rounding error next to
// any full O(n + m) pass, big enough that the statistics are stable. On
// small graphs the budgets shrink with n (floor 64) so the probe stays
// proportionally cheap even when the whole query takes microseconds.
constexpr size_t kDegreeSamples = 2048;  // degree-skew sample size
constexpr size_t kDegreeBlocks = 32;     // contiguous blocks the sample spans
constexpr size_t kBfsProbes = 2;         // capped BFS runs
constexpr size_t kBfsVisitCap = 1024;    // visit budget per BFS probe
constexpr size_t kBfsRoundCap = 128;     // round budget per BFS probe
constexpr size_t kBfsEdgeCap = 8192;     // adjacency-scan budget per probe

size_t scaled_budget(size_t n, size_t max_budget) {
  return std::min(std::clamp<size_t>(n / 8, 64, max_budget), n);
}

// Selection thresholds, calibrated against the 1-thread section-(e)
// measurements in results/BENCH_ablation.json (see DESIGN.md "Selector
// heuristics"). The diameter proxy compares BFS rounds against the log2
// of the vertices those rounds reached: low-diameter graphs double their
// frontier (proxy ~ 1), meshes grow polynomially (proxy ~ 4-8), paths
// crawl (proxy ~ 100).
constexpr double kHighDiameterProxy = 8.0;
constexpr double kSkewedDegree = 4.0;
constexpr double kDenseDegree = 8.0;
constexpr double kVeryDenseDegree = 32.0;

// Auto-reorder gate (select_reorder). Relabeling costs a permutation build
// plus a full CSR rewrite before the query proper starts, so per-query it
// only pays when (a) the label/parent arrays outrun the last-level cache —
// n below kReorderMinVertices keeps the hot set resident no matter how the
// ids are arranged — and (b) the degree distribution is skewed enough that
// a degree relabel concentrates the hot set by a lot, not a little. The bar
// well above kSkewedDegree: mild skew picks afforest fine but does not
// repay a relabel pass. (The floor also keeps the small pinned-allocation
// registry tests on the unwrapped path.)
constexpr size_t kReorderMinVertices = size_t{1} << 18;
constexpr double kReorderSkew = 16.0;

// Visited set for the probe BFS: a small linear-probing table over vertex
// ids instead of an n-byte array, so the probe never touches (or zeroes)
// O(n) memory — its cost is O(budget) no matter how big the graph is.
class probe_set {
 public:
  explicit probe_set(std::span<vertex_id> slots) : slots_(slots) {
    std::fill(slots_.begin(), slots_.end(), kNoVertex);
  }

  bool contains(vertex_id v) const {
    for (size_t h = slot_of(v); slots_[h] != kNoVertex; h = next_slot(h)) {
      if (slots_[h] == v) return true;
    }
    return false;
  }

  // The table is sized for twice the visit budget, so it never fills.
  void insert(vertex_id v) {
    size_t h = slot_of(v);
    while (slots_[h] != kNoVertex && slots_[h] != v) h = next_slot(h);
    slots_[h] = v;
  }

 private:
  size_t slot_of(vertex_id v) const {
    return parallel::hash64(v) & (slots_.size() - 1);
  }
  size_t next_slot(size_t h) const { return (h + 1) & (slots_.size() - 1); }

  std::span<vertex_id> slots_;
};

// Sequential visit-capped BFS from `source`. Marks `visited`, returns the
// number of rounds; *out_visited gets the visit count, *out_capped is set
// if the budget ran out with the component unexhausted.
size_t capped_bfs(const graph::graph& g, vertex_id source, size_t budget,
                  probe_set& visited, std::span<vertex_id> frontier,
                  std::span<vertex_id> next, size_t* out_visited,
                  bool* out_capped) {
  visited.insert(source);
  frontier[0] = source;
  size_t frontier_size = 1;
  size_t total = 1;
  size_t rounds = 0;
  // On hub-heavy graphs the visit budget alone does not bound the work:
  // one visited hub can mean scanning thousands of adjacency entries. The
  // edge budget keeps the probe O(kBfsEdgeCap) regardless of degrees.
  size_t edge_budget = kBfsEdgeCap;
  bool capped = false;
  --budget;
  while (frontier_size > 0 && !capped) {
    if (rounds >= kBfsRoundCap) {
      // The frontier is still alive after kBfsRoundCap rounds over at most
      // `budget` vertices — the diameter verdict is already decided
      // (proxy >= 128/log2(1026) ~ 12), so stop crawling. The component is
      // unexhausted, which is exactly what `capped` reports.
      capped = true;
      break;
    }
    ++rounds;
    size_t next_size = 0;
    for (size_t i = 0; i < frontier_size && !capped; ++i) {
      for (const vertex_id w : g.neighbors(frontier[i])) {
        if (edge_budget == 0) {
          capped = true;
          break;
        }
        --edge_budget;
        if (visited.contains(w)) continue;
        if (budget == 0) {
          capped = true;
          break;
        }
        visited.insert(w);
        next[next_size++] = w;
        --budget;
        ++total;
      }
    }
    std::copy(next.begin(), next.begin() + static_cast<ptrdiff_t>(next_size),
              frontier.begin());
    frontier_size = next_size;
  }
  *out_visited = total;
  *out_capped = capped;
  return rounds;
}

}  // namespace

probe_stats probe_graph(const graph::graph& g, uint64_t seed,
                        parallel::workspace& ws) {
  probe_stats ps;
  ps.n = g.num_vertices();
  ps.m = g.num_edges();
  if (ps.n == 0) return ps;
  ps.avg_degree = static_cast<double>(ps.m) / static_cast<double>(ps.n);

  const parallel::rng gen(parallel::hash64(seed ^ 0x5e1ec70f));
  // Degrees are sampled in a few contiguous blocks at random offsets
  // rather than vertex-by-vertex: same sample size, but ~kDegreeBlocks
  // cache misses instead of ~kDegreeSamples, so the probe stays a rounding
  // error next to a bandwidth-bound sequential pass.
  const size_t budget = scaled_budget(ps.n, kDegreeSamples);
  const size_t num_blocks = std::min(kDegreeBlocks, budget);
  const size_t block = budget / num_blocks;
  ps.sampled = num_blocks * block;
  size_t degree_sum = 0;
  size_t isolated = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    const auto start =
        static_cast<size_t>(gen.bounded(b, ps.n - block + 1));
    for (size_t i = 0; i < block; ++i) {
      const size_t d = g.degree(static_cast<vertex_id>(start + i));
      degree_sum += d;
      ps.max_sampled_degree = std::max(ps.max_sampled_degree, d);
      isolated += d == 0 ? 1 : 0;
    }
  }
  const double sampled_avg =
      static_cast<double>(degree_sum) / static_cast<double>(ps.sampled);
  ps.degree_skew =
      static_cast<double>(ps.max_sampled_degree) / std::max(sampled_avg, 1.0);
  ps.isolated_fraction =
      static_cast<double>(isolated) / static_cast<double>(ps.sampled);

  // Capped BFS probes: diameter proxy + large-component detection. The
  // visited set and frontiers come from the workspace; everything below is
  // sequential (the budget is a few thousand visits), so the probe is
  // trivially deterministic.
  parallel::workspace::scope scope(ws);
  const size_t cap = scaled_budget(ps.n, kBfsVisitCap);
  // Power-of-two table with load factor <= 1/2 across both probes
  // (kBfsProbes * cap inserts plus a handful of source retries).
  size_t table_size = 64;
  while (table_size < 4 * kBfsProbes * cap) table_size *= 2;
  probe_set visited(ws.take<vertex_id>(table_size));
  std::span<vertex_id> frontier = ws.take<vertex_id>(cap);
  std::span<vertex_id> next = ws.take<vertex_id>(cap);
  for (size_t p = 0; p < kBfsProbes; ++p) {
    // A handful of retries to find an unvisited, non-isolated source.
    vertex_id source = kNoVertex;
    for (size_t t = 0; t < 8; ++t) {
      const auto v =
          static_cast<vertex_id>(gen.bounded(ps.sampled + 8 * p + t, ps.n));
      if (!visited.contains(v) && g.degree(v) > 0) {
        source = v;
        break;
      }
    }
    if (source == kNoVertex) continue;
    size_t visits = 0;
    bool capped = false;
    const size_t rounds =
        capped_bfs(g, source, cap, visited, frontier, next, &visits, &capped);
    ps.bfs_rounds = std::max(ps.bfs_rounds, rounds);
    ps.bfs_visited = std::max(ps.bfs_visited, visits);
    // "Large" = the probe ran out of budget inside one component, or (on
    // graphs small enough to exhaust) one component held half the vertices.
    ps.large_component = ps.large_component || capped || 2 * visits >= ps.n;
  }
  ps.diameter_proxy =
      static_cast<double>(ps.bfs_rounds) /
      std::log2(static_cast<double>(ps.bfs_visited) + 2.0);
  return ps;
}

const char* select_algorithm(const probe_stats& ps, int num_workers) {
  // Edgeless graphs: every labeling algorithm degenerates to iota; the
  // sequential spanning forest gets there with the least ceremony.
  if (ps.n == 0 || ps.m == 0) return "serial-sf-rem";
  // High-diameter inputs (paths, meshes): BFS-depth algorithms and the
  // labeling family degrade with the diameter; the union-find variants
  // are depth-insensitive.
  if (ps.diameter_proxy >= kHighDiameterProxy) {
    return num_workers > 1 ? "parallel-sf-rem" : "serial-sf-rem";
  }
  // Giant-component shortcuts pay off at ANY worker count — both skip the
  // bulk of the giant component's edges, so they beat even sequential
  // Rem's full edge scan (measured 1-thread: afforest 0.62x on rMat,
  // hybrid-bfs ~0.4x on social vs serial-sf-rem).
  //
  // Very dense giants (social-network degree regimes, avg >= ~32): the
  // direction-optimizing BFS's dense rounds stop scanning a vertex at its
  // first visited neighbour, so the denser the graph the smaller the
  // fraction of edges it reads — it edges out afforest in this regime.
  if (ps.large_component && ps.avg_degree >= kVeryDenseDegree) {
    return "hybrid-bfs";
  }
  // Any other visible giant with non-trivial density — skewed degrees
  // (rMat) or supercritical Erdos-Renyi: Afforest's sampled neighbour
  // rounds capture the giant and skip most of its edges, beating a full
  // Rem edge scan even on one thread (on unskewed random graphs the two
  // are within a few percent; afforest wins the worst case).
  if (ps.large_component && (ps.degree_skew >= kSkewedDegree ||
                             ps.avg_degree >= kDenseDegree)) {
    return "afforest";
  }
  if (num_workers <= 1) {
    // Sequentially, with no giant-component shortcut available, nothing in
    // the library beats Rem's splicing union-find (the paper's own Table 2
    // concedes as much): parallel algorithms only add atomics and extra
    // passes on one thread.
    return "serial-sf-rem";
  }
  // Very sparse scattered graphs (forest-like, avg undirected degree
  // ~<= 1): the Liu-Tarjan parent/alter kernel converges in a couple of
  // cheap rounds and its altered edge list collapses immediately.
  if (ps.avg_degree <= 2.0 && !ps.large_component) return "lt-psa";
  // Everything else — the "average" case the paper optimizes — goes to
  // the decompose-contract pipeline.
  return "decomp-arb-hybrid";
}

graph::reorder_mode select_reorder(const probe_stats& ps) {
  if (ps.n < kReorderMinVertices || ps.m == 0) return graph::reorder_mode::kNone;
  // High-diameter graphs go to the union-find family, whose access pattern
  // follows the tree structure rather than the id layout — relabeling buys
  // nothing there.
  if (ps.diameter_proxy >= kHighDiameterProxy) return graph::reorder_mode::kNone;
  // Without a giant component the selector routes to the decompose-contract
  // pipeline, and relabeling actively hurts it (measured on shuffled-id
  // skewed rMat, n=2^23, 1 thread: decomp-arb-hybrid 2.99s -> 3.86s under a
  // degree sort — the BFS frontier order, not the id layout, governs its
  // access pattern). With a giant the pick is afforest/hybrid-bfs, whose
  // random probes into the parent array are exactly what a layout fixes.
  if (!ps.large_component) return graph::reorder_mode::kNone;
  if (ps.degree_skew < kReorderSkew) return graph::reorder_mode::kNone;
  // The full degree sort, not hub clustering: on the same shuffled rMat the
  // degree order halves afforest's run (2.08s -> 1.05s, amortizing the
  // relabel after ~3 runs) while hub packing is a wash (~1.0x) — it moves
  // the hubs but leaves the scattered tail scattered, and past the LLC the
  // tail misses dominate.
  return graph::reorder_mode::kDegree;
}

}  // namespace pcc::cc
