// Graph contraction: collapse each decomposition cluster into one vertex.
#pragma once

#include <span>
#include <vector>

#include "core/ldd.hpp"
#include "graph/graph.hpp"
#include "parallel/arena.hpp"

namespace pcc::cc {

// Result of contracting a decomposed graph.
struct contraction {
  // The contracted graph: one vertex per non-singleton cluster (a cluster
  // is a singleton if no inter-cluster edge touches it — the paper removes
  // those before recursing), edges = deduplicated inter-cluster edges.
  graph::graph contracted;
  // new_id[c] = contracted-vertex id of the cluster centered at c, or
  // kNoVertex if c is not a center or centers a singleton cluster.
  std::vector<vertex_id> new_id;
  // rep[x] = center vertex (in the input graph) of contracted vertex x.
  std::vector<vertex_id> rep;
  size_t num_clusters = 0;            // including singleton clusters
  size_t num_singleton_clusters = 0;  // clusters with no inter-cluster edge
  size_t edges_before_dedup = 0;      // directed inter-cluster edges kept
};

// Span-based contraction output; all spans live in the workspaces passed to
// contract_into and stay valid until those are reset/rewound.
struct contraction_view {
  std::span<edge_id> offsets;   // contracted CSR offsets, size k+1
  std::span<vertex_id> edges;   // contracted CSR targets
  std::span<vertex_id> new_id;  // size n (input graph)
  std::span<vertex_id> rep;     // size k
  size_t num_vertices = 0;      // k = non-singleton clusters
  size_t edges_before_dedup = 0;
};

// Workspace-backed core: contract `wg` according to `cluster` (the
// decomposition labeling). The lift state (new_id, rep) goes into
// `persist_ws`, the contracted CSR into `graph_ws` (the engine ping-pongs
// two of these across levels), and every temporary — gather offsets, flag
// arrays, the packed pair array, the dedup hash table — into `scratch_ws`,
// rewound before returning. Requires the post-decomposition invariant: for
// each v, the first wg.degrees[v] adjacency entries are its inter-cluster
// edges with targets relabeled to cluster ids.
contraction_view contract_into(const ldd::work_graph& wg,
                               std::span<const vertex_id> cluster, bool dedup,
                               parallel::workspace& persist_ws,
                               parallel::workspace& graph_ws,
                               parallel::workspace& scratch_ws);

// Vector-returning convenience wrapper over contract_into (tests, examples,
// one-shot callers). When `dedup` is set, duplicate edges between cluster
// pairs are removed with a phase-concurrent hash table (the paper notes the
// algorithm stays correct without it; it is an ablation knob here).
contraction contract(const ldd::work_graph& wg, const ldd::result& dec,
                     bool dedup = true);

}  // namespace pcc::cc
