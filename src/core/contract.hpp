// Graph contraction: collapse each decomposition cluster into one vertex.
#pragma once

#include <span>
#include <vector>

#include "core/ldd.hpp"
#include "graph/graph.hpp"
#include "parallel/arena.hpp"

namespace pcc::cc {

// How duplicate inter-cluster edges are removed during contraction.
//   kHash  phase-concurrent hash-set insert (the paper's choice): one
//          random probe per edge into a ~2m-slot table, then a radix sort
//          over the survivors.
//   kSort  sort-dedup: radix sort the packed (src, tgt) pairs first, then
//          drop adjacent duplicates with a scan-pack. All sweeps are
//          sequential-access, and the sort the contraction needs anyway is
//          folded in.
//   kAuto  choose_dedup_route() picks per level from the measured
//          inter-cluster edge count and the contracted vertex count.
// Both routes produce the identical deduplicated, sorted pair array (a set
// has one sorted order), so the contracted CSR is byte-identical either
// way — the choice is purely a performance knob.
enum class dedup_strategy : uint8_t { kAuto, kHash, kSort };

const char* dedup_strategy_name(dedup_strategy s);

// The kAuto decision: pure function of the directed inter-cluster edge
// count `m` and the contracted vertex count `k`. Calibrated against the
// BM_SortDedup / BM_HashSetDedup micro pair (results/BENCH_micro.json; see
// EXPERIMENTS.md "Dedup route micro pair"): the radix route wins whenever
// its pass count over m beats one random probe per edge into a 2m-slot
// table, which on the measured corpus is every narrow-key level; the hash
// route only pays off when the key is wide AND duplication is light.
dedup_strategy choose_dedup_route(size_t m, size_t k);

// Result of contracting a decomposed graph.
struct contraction {
  // The contracted graph: one vertex per non-singleton cluster (a cluster
  // is a singleton if no inter-cluster edge touches it — the paper removes
  // those before recursing), edges = deduplicated inter-cluster edges.
  graph::graph contracted;
  // new_id[c] = contracted-vertex id of the cluster centered at c, or
  // kNoVertex if c is not a center or centers a singleton cluster.
  std::vector<vertex_id> new_id;
  // rep[x] = center vertex (in the input graph) of contracted vertex x.
  std::vector<vertex_id> rep;
  size_t num_clusters = 0;            // including singleton clusters
  size_t num_singleton_clusters = 0;  // clusters with no inter-cluster edge
  size_t edges_before_dedup = 0;      // directed inter-cluster edges kept
};

// Span-based contraction output; all spans live in the workspaces passed to
// contract_into and stay valid until those are reset/rewound.
struct contraction_view {
  std::span<edge_id> offsets;   // contracted CSR offsets, size k+1
  std::span<vertex_id> edges;   // contracted CSR targets
  std::span<vertex_id> new_id;  // size n (input graph)
  std::span<vertex_id> rep;     // size k
  size_t num_vertices = 0;      // k = non-singleton clusters
  size_t edges_before_dedup = 0;
  // Route actually used for duplicate removal: "hash", "sort", or "off"
  // when dedup was disabled (static string, never owned).
  const char* dedup_route = "off";
  // Parallel to `edges`: the original-graph edge realizing each contracted
  // edge, packed (u << 32) | v. Only filled by the witness-carrying
  // contract_into overload; empty otherwise.
  std::span<uint64_t> edge_witness;
};

// A gathered inter-cluster edge with its witness, the unit the
// witness-preserving dedup routes operate on. `pair` packs the contracted
// (src << 32) | tgt endpoints; `witness` packs an original-graph edge.
struct witness_pair {
  uint64_t pair;
  uint64_t witness;
};

// Workspace-backed core: contract `wg` according to `cluster` (the
// decomposition labeling). The lift state (new_id, rep) goes into
// `persist_ws`, the contracted CSR into `graph_ws` (the engine ping-pongs
// two of these across levels), and every temporary — gather offsets, flag
// arrays, the packed pair array, the dedup hash table — into `scratch_ws`,
// rewound before returning. Requires the post-decomposition invariant: for
// each v, the first wg.degrees[v] adjacency entries are its inter-cluster
// edges with targets relabeled to cluster ids.
contraction_view contract_into(const ldd::work_graph& wg,
                               std::span<const vertex_id> cluster, bool dedup,
                               parallel::workspace& persist_ws,
                               parallel::workspace& graph_ws,
                               parallel::workspace& scratch_ws,
                               dedup_strategy strategy = dedup_strategy::kAuto);

// Witness-carrying overload (the spanning-forest engine's contraction):
// `witness` parallels wg.edges — witness[e] is the original-graph edge that
// realizes edge slot e — and the result's edge_witness parallels the
// contracted CSR. When dedup removes copies of a contracted (src, tgt)
// pair, the surviving witness is the one at the MINIMUM deterministic
// gather rank (the flattened CSR position of the realizing edge), on both
// dedup routes: the sort route's stable radix sort keeps gather order
// within equal pairs, and the hash route folds gather ranks with an atomic
// write_min and joins the winner back after the barrier. The route choice
// itself is a pure function of (m, k), so the contracted CSR AND its
// witness array are identical across worker counts and backends.
contraction_view contract_into(const ldd::work_graph& wg,
                               std::span<const uint64_t> witness,
                               std::span<const vertex_id> cluster, bool dedup,
                               parallel::workspace& persist_ws,
                               parallel::workspace& graph_ws,
                               parallel::workspace& scratch_ws,
                               dedup_strategy strategy = dedup_strategy::kAuto);

// Vector-returning convenience wrapper over contract_into (tests, examples,
// one-shot callers). When `dedup` is set, duplicate edges between cluster
// pairs are removed via `strategy` (the paper notes the algorithm stays
// correct without dedup; it is an ablation knob here).
contraction contract(const ldd::work_graph& wg, const ldd::result& dec,
                     bool dedup = true,
                     dedup_strategy strategy = dedup_strategy::kAuto);

}  // namespace pcc::cc
