// Graph contraction: collapse each decomposition cluster into one vertex.
#pragma once

#include <vector>

#include "core/ldd.hpp"
#include "graph/graph.hpp"

namespace pcc::cc {

// Result of contracting a decomposed graph.
struct contraction {
  // The contracted graph: one vertex per non-singleton cluster (a cluster
  // is a singleton if no inter-cluster edge touches it — the paper removes
  // those before recursing), edges = deduplicated inter-cluster edges.
  graph::graph contracted;
  // new_id[c] = contracted-vertex id of the cluster centered at c, or
  // kNoVertex if c is not a center or centers a singleton cluster.
  std::vector<vertex_id> new_id;
  // rep[x] = center vertex (in the input graph) of contracted vertex x.
  std::vector<vertex_id> rep;
  size_t num_clusters = 0;            // including singleton clusters
  size_t num_singleton_clusters = 0;  // clusters with no inter-cluster edge
  size_t edges_before_dedup = 0;      // directed inter-cluster edges kept
};

// Contract `wg` according to the decomposition `dec`. Requires the
// post-decomposition invariant: for each v, the first wg.degrees[v] entries
// of its adjacency are its inter-cluster edges with targets relabeled to
// cluster ids. When `dedup` is set, duplicate edges between cluster pairs
// are removed with a phase-concurrent hash table (the paper notes the
// algorithm stays correct without it; it is an ablation knob here).
contraction contract(const ldd::work_graph& wg, const ldd::result& dec,
                     bool dedup = true);

}  // namespace pcc::cc
