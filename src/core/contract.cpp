// Contraction and relabeling (Section 3 / Section 4 of the paper).
//
// The implementation follows the paper's engineering choice: rather than
// bookkeeping per-BFS frontier offsets, gather the surviving inter-cluster
// edges (usually far fewer than the original edges), relabel their sources,
// and use a linear-work integer sort to bring each contracted vertex's
// edges together. Duplicate edges between the same cluster pair are removed
// with a parallel (phase-concurrent) hash table.

#include "core/contract.hpp"

#include <algorithm>
#include <cassert>

#include "graph/builder.hpp"
#include "parallel/atomics.hpp"
#include "parallel/emit.hpp"
#include "parallel/hash_map.hpp"
#include "parallel/hash_table.hpp"
#include "parallel/integer_sort.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::ldd {

work_graph work_graph::from(const graph::graph& g) {
  work_graph wg;
  wg.n = g.num_vertices();
  wg.offsets = std::span<const edge_id>(g.offsets());
  wg.edge_store_ = g.edges();  // mutable copy
  wg.edges = std::span<vertex_id>(wg.edge_store_);
  wg.degree_store_.resize(wg.n);
  wg.degrees = std::span<vertex_id>(wg.degree_store_);
  parallel::parallel_for(0, wg.n, [&](size_t v) {
    wg.degrees[v] = g.degree(static_cast<vertex_id>(v));
  });
  return wg;
}

work_graph work_graph::over(size_t n, std::span<const edge_id> offsets,
                            std::span<vertex_id> edges,
                            std::span<vertex_id> degrees) {
  work_graph wg;
  wg.n = n;
  wg.offsets = offsets;
  wg.edges = edges;
  wg.degrees = degrees;
  return wg;
}

}  // namespace pcc::ldd

namespace pcc::cc {

namespace {
using parallel::parallel_for;
}  // namespace

const char* dedup_strategy_name(dedup_strategy s) {
  switch (s) {
    case dedup_strategy::kAuto:
      return "auto";
    case dedup_strategy::kHash:
      return "hash";
    case dedup_strategy::kSort:
      return "sort";
  }
  return "?";
}

dedup_strategy choose_dedup_route(size_t m, size_t k) {
  if (m == 0) return dedup_strategy::kSort;
  // Cost model, calibrated on the BM_SortDedup / BM_HashSetDedup micro
  // pair (1 thread, n=2^18 pairs: sort 2.0x faster at duplication 1, 1.5x
  // at 4, hash ~1.1x faster at 16): the sort route is ceil(2b/8) radix
  // passes of streaming sweeps over m packed keys (b = bits per
  // contracted id); the hash route is one random probe per key into a
  // ~2m-slot table plus the same sort over the survivors. A streaming
  // pass is far cheaper per element than a cold random probe, so sort
  // wins while keys are narrow — EXCEPT when the undirected pair space
  // k^2/2 is saturated (duplication at least m/(k^2/2)): then the table's
  // hot set is tiny and stays cached, probes get cheap, and the survivor
  // sort shrinks by the duplication factor. Measured crossover ~16x.
  const int passes = (2 * parallel::bits_needed(k == 0 ? 1 : k) + 7) / 8;
  const double cap =
      k == 0 ? 1.0 : std::max(1.0, 0.5 * static_cast<double>(k) *
                                       static_cast<double>(k));
  const double dup_est =
      static_cast<double>(m) / std::min(static_cast<double>(m), cap);
  if (dup_est >= 16.0) return dedup_strategy::kHash;
  if (passes <= 4) return dedup_strategy::kSort;
  // Wide key: the probe (~3 pass-equivalents, cold) beats 5+ passes once
  // duplication shrinks the survivor sort meaningfully.
  const size_t dup_ratio = k == 0 ? m : m / k;
  return dup_ratio >= 8 ? dedup_strategy::kHash : dedup_strategy::kSort;
}

namespace {

// Stages shared by both contract_into overloads: per-vertex gather offsets
// into the packed pair array, surviving-cluster detection, contracted id
// assignment (new_id / rep). gather_off is carved from scratch_ws — the
// caller's rewind scope must already be open.
std::span<edge_id> contract_prelude(const ldd::work_graph& wg,
                                    std::span<const vertex_id> cluster,
                                    contraction_view& out,
                                    parallel::workspace& persist_ws,
                                    parallel::workspace& scratch_ws) {
  const size_t n = wg.n;
  std::span<const edge_id> V = wg.offsets;
  std::span<const vertex_id> E = wg.edges;
  std::span<const vertex_id> D = wg.degrees;

  out.new_id = persist_ws.take<vertex_id>(n);

  // Offsets of each vertex's kept edges in the gathered edge array.
  std::span<edge_id> gather_off = scratch_ws.take<edge_id>(n);
  const edge_id total_kept = parallel::scan_exclusive_span<edge_id>(
      n, [&](size_t v) { return static_cast<edge_id>(D[v]); }, gather_off,
      scratch_ws);
  out.edges_before_dedup = total_kept;

  // A cluster is non-singleton iff an inter-cluster edge touches it. Kept
  // edges appear from both endpoints' sides, so flagging by source suffices;
  // we flag the (already relabeled) target too for robustness. Concurrent
  // same-value stores go through write_once (relaxed atomics) so the race
  // is declared to the memory model.
  std::span<uint8_t> has_edge = scratch_ws.take_zeroed<uint8_t>(n);
  parallel_for(0, n, [&](size_t v) {
    if (D[v] > 0) parallel::write_once(&has_edge[cluster[v]], uint8_t{1});
    const edge_id start = V[v];
    for (vertex_id i = 0; i < D[v]; ++i) {
      parallel::write_once(&has_edge[E[start + i]], uint8_t{1});
    }
  });

  // Assign contracted ids [0, k') to non-singleton clusters by prefix sum
  // over their centers, and record the inverse map `rep`.
  std::span<size_t> center_rank = scratch_ws.take<size_t>(n);
  const size_t k = parallel::scan_exclusive_span<size_t>(
      n,
      [&](size_t c) {
        return (cluster[c] == c && has_edge[c]) ? size_t{1} : size_t{0};
      },
      center_rank, scratch_ws);
  out.rep = persist_ws.take<vertex_id>(k);
  out.num_vertices = k;
  parallel_for(0, n, [&](size_t c) {
    if (cluster[c] == c && has_edge[c]) {
      const vertex_id x = static_cast<vertex_id>(center_rank[c]);
      out.new_id[c] = x;
      // lint: private-write(center_rank is injective on surviving centers)
      out.rep[x] = static_cast<vertex_id>(c);
    } else {
      out.new_id[c] = kNoVertex;
    }
  });
  return gather_off;
}

}  // namespace

contraction_view contract_into(const ldd::work_graph& wg,
                               std::span<const vertex_id> cluster, bool dedup,
                               parallel::workspace& persist_ws,
                               parallel::workspace& graph_ws,
                               parallel::workspace& scratch_ws,
                               dedup_strategy strategy) {
  const size_t n = wg.n;
  std::span<const edge_id> V = wg.offsets;
  std::span<const vertex_id> E = wg.edges;
  std::span<const vertex_id> D = wg.degrees;

  contraction_view out;
  parallel::workspace::scope s(scratch_ws);
  std::span<edge_id> gather_off =
      contract_prelude(wg, cluster, out, persist_ws, scratch_ws);
  const edge_id total_kept = out.edges_before_dedup;
  const size_t k = out.num_vertices;

  // Gather the kept edges as packed (new source id, new target id) pairs.
  // Targets were relabeled to cluster ids during the decomposition; sources
  // are relabeled here via the vertex's own cluster.
  std::span<uint64_t> pairs = scratch_ws.take<uint64_t>(total_kept);
  parallel_for(0, n, [&](size_t v) {
    const vertex_id src = out.new_id[cluster[v]];
    const edge_id start = V[v];
    const edge_id base = gather_off[v];
    for (vertex_id i = 0; i < D[v]; ++i) {
      const vertex_id tgt = out.new_id[E[start + i]];
      assert(src != kNoVertex && tgt != kNoVertex && src != tgt);
      // lint: private-write(v owns the slice [gather_off[v], gather_off[v+1]))
      pairs[base + i] = (static_cast<uint64_t>(src) << 32) | tgt;
    }
  });

  // Semisort key: the packed (src, tgt) pair with the two id fields
  // compacted so the radix passes cover both. One total sort by this key
  // clusters each contracted vertex's edges together and orders them, which
  // keeps the output deterministic whether or not dedup ran — and a set of
  // pairs has exactly one sorted order, so both dedup routes below produce
  // a byte-identical contracted CSR.
  const int b = parallel::bits_needed(k == 0 ? 1 : k);
  const uint64_t tmask = b >= 32 ? ~uint32_t{0} : (uint64_t{1} << b) - 1;
  const auto key = [b, tmask](uint64_t p) {
    return ((p >> 32) << b) | (p & tmask);
  };

  bool sorted = false;
  if (dedup && !pairs.empty()) {
    const dedup_strategy route = strategy == dedup_strategy::kAuto
                                     ? choose_dedup_route(total_kept, k)
                                     : strategy;
    out.dedup_route = dedup_strategy_name(route);
    if (route == dedup_strategy::kSort) {
      // Sort-dedup: sort first (folding in the semisort the contraction
      // needs anyway), then drop adjacent duplicates with a scan-pack.
      parallel::integer_sort_span(pairs, 2 * b, key, scratch_ws);
      std::span<uint64_t> deduped = scratch_ws.take<uint64_t>(pairs.size());
      const size_t num_deduped = parallel::emit_pack<uint64_t>(
          pairs.size(), deduped, scratch_ws,
          [&](size_t i, parallel::emitter<uint64_t>& em) {
            if (i == 0 || pairs[i] != pairs[i - 1]) em(pairs[i]);
          });
      pairs = deduped.first(num_deduped);
      sorted = true;
    } else {
      // Phase-concurrent insert; the winner of each key emits it, and
      // emit_pack's block-local staging packs the winners in index order —
      // no shared cursor, and the compacted array's order depends only on
      // which duplicate won each insert race (the sort below is total on
      // the distinct keys, so the final CSR is deterministic regardless).
      std::span<uint64_t> slots = scratch_ws.take<uint64_t>(
          parallel::hash_set64_view::slots_needed(pairs.size()));
      parallel::hash_set64_view set(slots);
      std::span<uint64_t> deduped = scratch_ws.take<uint64_t>(pairs.size());
      const size_t num_deduped = parallel::emit_pack<uint64_t>(
          pairs.size(), deduped, scratch_ws,
          [&](size_t i, parallel::emitter<uint64_t>& em) {
            if (set.insert(pairs[i])) em(pairs[i]);
          });
      pairs = deduped.first(num_deduped);
    }
  }

  if (!sorted) {
    parallel::integer_sort_span(pairs, 2 * b, key, scratch_ws);
  }

  const graph::csr_spans csr =
      graph::from_sorted_pairs_into(k, pairs, graph_ws, scratch_ws);
  out.offsets = csr.offsets;
  out.edges = csr.edges;
  return out;
}

contraction_view contract_into(const ldd::work_graph& wg,
                               std::span<const uint64_t> witness,
                               std::span<const vertex_id> cluster, bool dedup,
                               parallel::workspace& persist_ws,
                               parallel::workspace& graph_ws,
                               parallel::workspace& scratch_ws,
                               dedup_strategy strategy) {
  const size_t n = wg.n;
  std::span<const edge_id> V = wg.offsets;
  std::span<const vertex_id> E = wg.edges;
  std::span<const vertex_id> D = wg.degrees;

  contraction_view out;
  parallel::workspace::scope s(scratch_ws);
  std::span<edge_id> gather_off =
      contract_prelude(wg, cluster, out, persist_ws, scratch_ws);
  const edge_id total_kept = out.edges_before_dedup;
  const size_t k = out.num_vertices;

  // The flattened gather position (base + i) is an edge's deterministic
  // *gather rank*: it depends only on the CSR layout and the decomposition
  // labeling, never on scheduling, so "minimum gather rank" is a
  // scheduler-independent tie-break for witness selection under dedup.
  //
  // The folded semisort key, shared by every route below.
  const int b = parallel::bits_needed(k == 0 ? 1 : k);
  const uint64_t tmask = b >= 32 ? ~uint32_t{0} : (uint64_t{1} << b) - 1;

  // A gather rank names its original CSR slot through gather_off (an
  // exclusive scan): the owner is the last v with gather_off[v] <= rank,
  // and the slot is rank's offset into v's kept prefix. Only the distinct
  // survivors ever invert, so the binary search cost is negligible.
  const auto slot_of_rank = [&](uint64_t rank) -> edge_id {
    const auto it =
        std::upper_bound(gather_off.begin(), gather_off.end(), rank);
    const size_t v = static_cast<size_t>(it - gather_off.begin()) - 1;
    return V[v] + static_cast<edge_id>(rank - gather_off[v]);
  };

  const dedup_strategy route =
      !dedup ? dedup_strategy::kSort
             : (strategy == dedup_strategy::kAuto
                    ? choose_dedup_route(total_kept, k)
                    : strategy);

  if (dedup && route == dedup_strategy::kHash && total_kept > 0) {
    // Hash route: gather PLAIN packed pairs — byte-for-byte the same
    // traffic as the labels-only overload — and fold each pair's gather
    // rank into the map with an atomic write_min (deterministic regardless
    // of arrival order). Witnesses are pulled only for the distinct
    // survivors, after the sort, through slot_of_rank.
    out.dedup_route = dedup_strategy_name(route);
    std::span<uint64_t> pairs = scratch_ws.take<uint64_t>(total_kept);
    parallel_for(0, n, [&](size_t v) {
      const vertex_id src = out.new_id[cluster[v]];
      const edge_id start = V[v];
      const edge_id base = gather_off[v];
      for (vertex_id i = 0; i < D[v]; ++i) {
        const vertex_id tgt = out.new_id[E[start + i]];
        assert(src != kNoVertex && tgt != kNoVertex && src != tgt);
        // lint: private-write(v owns the slice [gather_off[v], gather_off[v+1]))
        pairs[base + i] = (static_cast<uint64_t>(src) << 32) | tgt;
      }
    });
    std::span<uint64_t> map_keys = scratch_ws.take<uint64_t>(
        parallel::hash_map64_view::slots_needed(pairs.size()));
    std::span<uint64_t> map_vals = scratch_ws.take<uint64_t>(map_keys.size());
    parallel::hash_map64_view map(map_keys, map_vals);
    std::span<uint64_t> deduped = scratch_ws.take<uint64_t>(pairs.size());
    const size_t num_deduped = parallel::emit_pack<uint64_t>(
        pairs.size(), deduped, scratch_ws,
        [&](size_t i, parallel::emitter<uint64_t>& em) {
          if (map.insert_min(pairs[i], i)) em(pairs[i]);
        });
    std::span<uint64_t> kept = deduped.first(num_deduped);
    const auto key = [b, tmask](uint64_t p) {
      return ((p >> 32) << b) | (p & tmask);
    };
    parallel::integer_sort_span(kept, 2 * b, key, scratch_ws);
    std::span<uint64_t> owit = graph_ws.take<uint64_t>(kept.size());
    parallel_for(0, kept.size(), [&](size_t j) {
      uint64_t rank = ~uint64_t{0};
      const bool found = map.find(kept[j], &rank);
      assert(found);
      (void)found;
      // lint: private-write(owner index j)
      owit[j] = witness[slot_of_rank(rank)];
    });
    const graph::csr_spans csr =
        graph::from_sorted_pairs_into(k, kept, graph_ws, scratch_ws);
    out.offsets = csr.offsets;
    out.edges = csr.edges;
    out.edge_witness = owit;
    return out;
  }

  // Sort route (and the no-dedup path): the witness must ride along the
  // radix passes, so the gather carries {pair, witness} records.
  std::span<witness_pair> wpairs = scratch_ws.take<witness_pair>(total_kept);
  parallel_for(0, n, [&](size_t v) {
    const vertex_id src = out.new_id[cluster[v]];
    const edge_id start = V[v];
    const edge_id base = gather_off[v];
    for (vertex_id i = 0; i < D[v]; ++i) {
      const vertex_id tgt = out.new_id[E[start + i]];
      assert(src != kNoVertex && tgt != kNoVertex && src != tgt);
      // lint: private-write(v owns the slice [gather_off[v], gather_off[v+1]))
      wpairs[base + i] = {(static_cast<uint64_t>(src) << 32) | tgt,
                         witness[start + i]};
    }
  });

  // The sort is keyed on the packed pair only, so equal pairs (dedup
  // candidates) are adjacent.
  const auto key = [b, tmask](const witness_pair& wp) {
    return ((wp.pair >> 32) << b) | (wp.pair & tmask);
  };

  bool sorted = false;
  if (dedup && !wpairs.empty()) {
    out.dedup_route = dedup_strategy_name(route);
    // The radix sort is stable (LSD), so within a run of equal pairs the
    // gather order survives; keeping the first of each run selects the
    // minimum-gather-rank witness.
    parallel::integer_sort_span(wpairs, 2 * b, key, scratch_ws);
    std::span<witness_pair> deduped =
        scratch_ws.take<witness_pair>(wpairs.size());
    const size_t num_deduped = parallel::emit_pack<witness_pair>(
        wpairs.size(), deduped, scratch_ws,
        [&](size_t i, parallel::emitter<witness_pair>& em) {
          if (i == 0 || wpairs[i].pair != wpairs[i - 1].pair) em(wpairs[i]);
        });
    wpairs = deduped.first(num_deduped);
    sorted = true;
  }

  if (!sorted) {
    parallel::integer_sort_span(wpairs, 2 * b, key, scratch_ws);
  }

  // Split the sorted array: packed pairs feed the CSR build (temporary),
  // witnesses go to graph_ws so they live exactly as long as the contracted
  // CSR they parallel. from_sorted_pairs_into preserves slot order
  // (edges[i] comes from sorted[i]), so owit stays parallel to out.edges.
  std::span<uint64_t> sorted_pairs = scratch_ws.take<uint64_t>(wpairs.size());
  std::span<uint64_t> owit = graph_ws.take<uint64_t>(wpairs.size());
  parallel_for(0, wpairs.size(), [&](size_t i) {
    sorted_pairs[i] = wpairs[i].pair;  // lint: private-write(owner index i)
    owit[i] = wpairs[i].witness;       // lint: private-write(owner index i)
  });

  const graph::csr_spans csr =
      graph::from_sorted_pairs_into(k, sorted_pairs, graph_ws, scratch_ws);
  out.offsets = csr.offsets;
  out.edges = csr.edges;
  out.edge_witness = owit;
  return out;
}

contraction contract(const ldd::work_graph& wg, const ldd::result& dec,
                     bool dedup, dedup_strategy strategy) {
  parallel::workspace persist_ws;
  parallel::workspace graph_ws;
  parallel::workspace scratch_ws;
  const contraction_view cv = contract_into(
      wg, dec.cluster, dedup, persist_ws, graph_ws, scratch_ws, strategy);

  contraction out;
  out.num_clusters = dec.num_clusters;
  out.num_singleton_clusters = dec.num_clusters >= cv.num_vertices
                                   ? dec.num_clusters - cv.num_vertices
                                   : 0;
  out.edges_before_dedup = cv.edges_before_dedup;
  out.new_id.assign(cv.new_id.begin(), cv.new_id.end());
  out.rep.assign(cv.rep.begin(), cv.rep.end());
  out.contracted = graph::graph(
      std::vector<edge_id>(cv.offsets.begin(), cv.offsets.end()),
      std::vector<vertex_id>(cv.edges.begin(), cv.edges.end()));
  return out;
}

}  // namespace pcc::cc
