// Contraction and relabeling (Section 3 / Section 4 of the paper).
//
// The implementation follows the paper's engineering choice: rather than
// bookkeeping per-BFS frontier offsets, gather the surviving inter-cluster
// edges (usually far fewer than the original edges), relabel their sources,
// and use a linear-work integer sort to bring each contracted vertex's
// edges together. Duplicate edges between the same cluster pair are removed
// with a parallel (phase-concurrent) hash table.

#include "core/contract.hpp"

#include <cassert>

#include "graph/builder.hpp"
#include "parallel/hash_table.hpp"
#include "parallel/integer_sort.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::ldd {

work_graph work_graph::from(const graph::graph& g) {
  work_graph wg;
  wg.n = g.num_vertices();
  wg.offsets = &g.offsets();
  wg.edges = g.edges();  // mutable copy
  wg.degrees.resize(wg.n);
  parallel::parallel_for(0, wg.n, [&](size_t v) {
    wg.degrees[v] = g.degree(static_cast<vertex_id>(v));
  });
  return wg;
}

}  // namespace pcc::ldd

namespace pcc::cc {

namespace {
using parallel::parallel_for;
}  // namespace

contraction contract(const ldd::work_graph& wg, const ldd::result& dec,
                     bool dedup) {
  const size_t n = wg.n;
  const std::vector<edge_id>& V = *wg.offsets;
  const std::vector<vertex_id>& E = wg.edges;
  const std::vector<vertex_id>& D = wg.degrees;
  const std::vector<vertex_id>& cluster = dec.cluster;

  contraction out;
  out.num_clusters = dec.num_clusters;

  // Offsets of each vertex's kept edges in the gathered edge array.
  std::vector<edge_id> gather_off;
  const edge_id total_kept = parallel::scan_exclusive_into(
      n, [&](size_t v) { return static_cast<edge_id>(D[v]); }, gather_off);
  out.edges_before_dedup = total_kept;

  // A cluster is non-singleton iff an inter-cluster edge touches it. Kept
  // edges appear from both endpoints' sides, so flagging by source suffices;
  // we flag the (already relabeled) target too for robustness.
  std::vector<uint8_t> has_edge(n, 0);
  parallel_for(0, n, [&](size_t v) {
    if (D[v] > 0) has_edge[cluster[v]] = 1;  // benign write race: same value
    const edge_id start = V[v];
    for (vertex_id i = 0; i < D[v]; ++i) has_edge[E[start + i]] = 1;
  });

  // Assign contracted ids [0, k') to non-singleton clusters by prefix sum
  // over their centers, and record the inverse map `rep`.
  std::vector<size_t> center_rank;
  const size_t k = parallel::scan_exclusive_into(
      n,
      [&](size_t c) {
        return (cluster[c] == c && has_edge[c]) ? size_t{1} : size_t{0};
      },
      center_rank);
  out.new_id.assign(n, kNoVertex);
  out.rep.resize(k);
  parallel_for(0, n, [&](size_t c) {
    if (cluster[c] == c && has_edge[c]) {
      const vertex_id x = static_cast<vertex_id>(center_rank[c]);
      out.new_id[c] = x;
      out.rep[x] = static_cast<vertex_id>(c);
    }
  });
  out.num_singleton_clusters =
      dec.num_clusters >= k ? dec.num_clusters - k : 0;

  // Gather the kept edges as packed (new source id, new target id) pairs.
  // Targets were relabeled to cluster ids during the decomposition; sources
  // are relabeled here via the vertex's own cluster.
  std::vector<uint64_t> pairs(total_kept);
  parallel_for(0, n, [&](size_t v) {
    const vertex_id src = out.new_id[cluster[v]];
    const edge_id start = V[v];
    const edge_id base = gather_off[v];
    for (vertex_id i = 0; i < D[v]; ++i) {
      const vertex_id tgt = out.new_id[E[start + i]];
      assert(src != kNoVertex && tgt != kNoVertex && src != tgt);
      pairs[base + i] = (static_cast<uint64_t>(src) << 32) | tgt;
    }
  });

  if (dedup && !pairs.empty()) {
    parallel::hash_set64 set(pairs.size());
    parallel_for(0, pairs.size(), [&](size_t i) { set.insert(pairs[i]); });
    pairs = set.elements();
  }

  // Semisort: one radix sort by the packed (src, tgt) key clusters each
  // contracted vertex's edges together (and orders them, which keeps the
  // output deterministic whether or not dedup ran). The key extractor
  // compacts the two id fields so the radix passes cover both.
  const int b = parallel::bits_needed(k == 0 ? 1 : k);
  const uint64_t tmask = b >= 32 ? ~uint32_t{0} : (uint64_t{1} << b) - 1;
  parallel::integer_sort(pairs, 2 * b, [b, tmask](uint64_t p) {
    return ((p >> 32) << b) | (p & tmask);
  });
  out.contracted = graph::from_sorted_pairs(k, pairs);
  return out;
}

}  // namespace pcc::cc
