// Reusable executor for the witness-carrying decompose-contract pipeline:
// connectivity labels AND a spanning forest of original-graph edges in one
// pass, with the same arena discipline as cc_engine.
//
// The algorithm is the paper's Algorithm 1 with one extra invariant: every
// directed edge slot of every level graph carries a *witness*, the
// original-graph edge that realizes it (level 0: the edge itself; level
// L+1: the witness of the minimum-gather-rank duplicate that survived
// contraction dedup at level L). Within each level the BFS claim edges form
// a tree of every cluster, so their witnesses join the forest; per level
// that adds n_l - (#clusters_l) edges, telescoping to n - #components.
//
// Determinism: unlike the connectivity decompositions (whose CAS claim
// races are benign because ANY claimer yields correct components), a forest
// edge's identity depends on WHICH claim wins. The engine therefore resolves
// claims with a two-phase protocol — propose the minimum (frontier index,
// adjacency slot) rank per target with an atomic write_min, then let exactly
// the rank winner claim — so the forest is a pure function of (graph,
// options), identical across worker counts and scheduler backends. The
// witness-preserving contraction dedup keeps the minimum-gather-rank
// witness on both routes (see contract.hpp), preserving the property across
// levels.
//
// State lives in the same three-arena layout as cc_engine (persist_ /
// scratch_ / graph_[2]); after a warm-up run, run() performs no heap
// allocation (tests/core/test_sf_engine.cpp verifies with an operator-new
// counting hook).
#pragma once

#include <span>
#include <vector>

#include "core/connectivity.hpp"
#include "graph/graph.hpp"
#include "parallel/arena.hpp"

namespace pcc::cc {

class sf_engine {
 public:
  explicit sf_engine(const cc_options& opt = {}) : opt_(opt) {}

  // Labels and forest from one run(); both views stay valid until the next
  // run()/reserve() call or the engine's destruction.
  struct result {
    // labels[v] = component representative of v, size g.num_vertices();
    // identical to connected_components(g, opt) up to representative
    // choice (the SF decomposition picks its own centers).
    std::span<const vertex_id> labels;
    // Spanning-forest edges as (u, v) pairs of original vertex ids;
    // exactly n - #components of them, in deterministic order.
    std::span<const graph::edge> forest;
  };

  // Pre-size the arenas for a graph with n vertices and m directed edges so
  // the first run() mostly avoids mid-flight chunk chaining. Optional: the
  // arenas self-size from the first run's high-water mark regardless.
  void reserve(size_t n, size_t m);

  result run(const graph::graph& g, cc_stats* stats = nullptr);

  // Per-run options (the registry shares one engine across calls, so
  // beta/seed/shifts travel with the call). The decomposition is always the
  // claim-based (Decomp-Arb) one — opt.variant does not apply here, and
  // opt.dedup_route steers the witness-preserving dedup.
  result run(const graph::graph& g, const cc_options& opt,
             cc_stats* stats = nullptr);

  // The forest from the most recent run() (empty before the first run).
  std::span<const graph::edge> last_forest() const {
    return {forest_storage_.data(), forest_storage_.size()};
  }

  const cc_options& options() const { return opt_; }

 private:
  // Lift state recorded per level, read back bottom-up by the lift pass.
  struct level_frame {
    std::span<const vertex_id> cluster;  // size n (this level's graph)
    std::span<const vertex_id> new_id;   // size n
    std::span<const vertex_id> rep;      // size k (next level's graph)
    size_t n = 0;
  };

  cc_options opt_;
  parallel::workspace persist_;
  parallel::workspace scratch_;
  parallel::workspace graph_[2];
  std::vector<level_frame> frames_;
  // The unpacked forest; capacity survives runs (determinism makes the
  // size identical run to run, so after warm-up the resize never grows).
  std::vector<graph::edge> forest_storage_;
};

}  // namespace pcc::cc
