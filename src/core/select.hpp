// Sampling-based algorithm selection for `algorithm = "auto"`.
//
// No fixed connectivity algorithm wins on every input class (the paper's
// Section 5 tables make that explicit: decomp-* wins on average, hybrid
// BFS wins on dense low-diameter inputs, union-find wins sequentially, and
// nothing parallel helps on a path). probe_graph() spends a few thousand
// vertex visits estimating the three properties that drive those
// crossovers — degree skew, a diameter proxy, and whether a large
// component is already visible — and select_algorithm() maps the estimate
// to a registered algorithm name.
//
// The probe is sequential and deterministic: a fixed seed gives the same
// statistics (and therefore the same selection) on every backend, worker
// count and run. Selection MAY consult the worker count — every algorithm
// the selector can pick emits schedule-independent labels, so changing the
// pick with the thread count never changes the answer's reproducibility
// for a given configuration.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "graph/reorder.hpp"
#include "parallel/arena.hpp"

namespace pcc::cc {

struct probe_stats {
  size_t n = 0;
  size_t m = 0;        // directed edge slots (2x undirected edges)
  size_t sampled = 0;  // vertices whose degree was inspected
  double avg_degree = 0;          // m / n (exact, from the CSR)
  size_t max_sampled_degree = 0;  // hub detector
  double degree_skew = 0;         // max sampled degree / sampled average
  double isolated_fraction = 0;   // sampled degree-0 fraction
  size_t bfs_rounds = 0;          // max rounds over the capped BFS probes
  size_t bfs_visited = 0;         // max vertices one capped BFS reached
  // Some probe BFS hit its visit cap, or one component held >= n/2.
  bool large_component = false;
  double diameter_proxy = 0;      // bfs_rounds / log2(bfs_visited + 2)
};

// Probe ~4K vertices: exact n/m/average degree, sampled degree skew, and a
// couple of visit-capped sequential BFS runs for the diameter proxy and
// large-component detection. O(n) for the visited bitmap plus O(probe)
// work; scratch comes from `ws` (allocation-free after warm-up).
probe_stats probe_graph(const graph::graph& g, uint64_t seed,
                        parallel::workspace& ws);

// Map probed statistics to a registered algorithm name. Pure function of
// (ps, num_workers); see DESIGN.md ("Selector heuristics") for the
// decision tree and the calibration behind the thresholds. `num_workers`
// should be the number of workers that can actually run concurrently —
// callers clamp oversubscribed counts to the physical core count first
// (registry.cpp's run_auto does; the fig8 thread sweep shows extra
// workers past the cores buy no speedup).
const char* select_algorithm(const probe_stats& ps, int num_workers);

// Locality-relabeling decision for cc_options::reorder == kAuto: returns
// the graph::reorder_mode the registry's reorder wrapper should apply
// around the selected algorithm, or kNone. Pure function of the probe.
// Fires only on graphs big enough that the hot set outruns the caches AND
// skewed enough that hub packing concentrates it (see DESIGN.md "The
// locality layer" for the calibration); per-query it must pay for a full
// permute + relabel pass, so the bar is deliberately high.
graph::reorder_mode select_reorder(const probe_stats& ps);

}  // namespace pcc::cc
