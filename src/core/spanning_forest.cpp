// One-shot wrapper over the workspace-backed spanning-forest engine (see
// core/sf_engine.cpp for the pipeline itself).

#include "core/spanning_forest.hpp"

#include "core/sf_engine.hpp"

namespace pcc::cc {

std::vector<graph::edge> spanning_forest(const graph::graph& g,
                                         const cc_options& opt) {
  sf_engine engine(opt);
  const sf_engine::result r = engine.run(g);
  return std::vector<graph::edge>(r.forest.begin(), r.forest.end());
}

}  // namespace pcc::cc
