// Witness-carrying variant of the decompose-contract pipeline (see
// spanning_forest.hpp). Self-contained: it mirrors decomp_arb and contract
// but threads a per-edge witness (an original-graph edge) through both, so
// the main connectivity path stays lean.

#include "core/spanning_forest.hpp"

#include <cassert>

#include "baselines/union_find.hpp"
#include "core/ldd.hpp"
#include "core/ldd_internal.hpp"
#include "parallel/arena.hpp"
#include "parallel/atomics.hpp"
#include "parallel/emit.hpp"
#include "parallel/hash_map.hpp"
#include "parallel/integer_sort.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::cc {

namespace {

using parallel::atomic_load;
using parallel::cas;
using parallel::parallel_for;

inline uint64_t pack_witness(graph::edge e) {
  return (static_cast<uint64_t>(e.first) << 32) | e.second;
}
inline graph::edge unpack_witness(uint64_t w) {
  return {static_cast<vertex_id>(w >> 32), static_cast<vertex_id>(w)};
}

// A level graph: CSR plus, for every directed edge slot, the original edge
// that realizes it.
struct witness_graph {
  size_t n = 0;
  std::vector<edge_id> offsets;    // size n+1
  std::vector<vertex_id> targets;  // mutable (compacted by the decomp)
  std::vector<uint64_t> witness;   // parallel to targets
  std::vector<vertex_id> degrees;  // live prefix of each adjacency
};

witness_graph level0(const graph::graph& g) {
  witness_graph wg;
  wg.n = g.num_vertices();
  wg.offsets = g.offsets();
  wg.targets = g.edges();
  wg.witness.resize(g.num_edges());
  wg.degrees.resize(wg.n);
  parallel_for(0, wg.n, [&](size_t v) {
    wg.degrees[v] = g.degree(static_cast<vertex_id>(v));
    const edge_id start = wg.offsets[v];
    for (vertex_id i = 0; i < wg.degrees[v]; ++i) {
      // lint: private-write(v owns its CSR slice [start, start+deg))
      wg.witness[start + i] = pack_witness(
          {static_cast<vertex_id>(v), wg.targets[start + i]});
    }
  });
  return wg;
}

// A claim made during one BFS round: the claimed vertex (joins the next
// frontier) and the witness of the claiming edge (joins the forest).
struct claim_rec {
  vertex_id w;
  uint64_t witness;
};

// Decomp-Arb over a witness graph. Claim edges contribute their witnesses
// to `forest`; kept inter-cluster edges are compacted in place (targets
// relabeled to cluster ids, witnesses carried). Rounds are edge-balanced
// via frontier_edge_for: claims are emitted contention-free in flattened
// edge order, and a hub's adjacency is compacted piece-wise.
ldd::result decomp_arb_sf(witness_graph& wg, const ldd::options& opt,
                          std::vector<uint64_t>& forest) {
  const size_t n = wg.n;
  ldd::result res;
  res.cluster.assign(n, kNoVertex);
  if (n == 0) return res;
  std::vector<vertex_id>& C = res.cluster;

  parallel::workspace ws;
  ldd::internal::shift_schedule schedule(n, opt, ws);
  std::span<vertex_id> frontier = ws.take<vertex_id>(n);
  std::span<vertex_id> next = ws.take<vertex_id>(n);
  // Claim records: at most n claims happen in one decomposition (each
  // vertex is claimed once).
  std::span<claim_rec> claims = ws.take<claim_rec>(n);
  size_t frontier_size = 0;

  size_t num_visited = 0;
  size_t round = 0;
  while (num_visited < n) {
    const size_t added = ldd::internal::add_new_centers(
        schedule, round, frontier, frontier_size, ws,
        [&](vertex_id v) { return C[v] == kNoVertex; },
        [&](vertex_id v) { C[v] = v; });
    res.num_clusters += added;
    frontier_size += added;
    num_visited += frontier_size;

    size_t next_size = 0;
    {
      parallel::workspace::scope round_scope(ws);
      const parallel::frontier_result run =
          parallel::frontier_edge_for<claim_rec>(
              frontier_size,
              [&](size_t fi) { return wg.degrees[frontier[fi]]; }, claims, ws,
              [&](size_t fi, uint32_t jlo, uint32_t jhi, uint32_t deg,
                  parallel::emitter<claim_rec>& em) -> uint32_t {
                const vertex_id v = frontier[fi];
                const vertex_id my_label = C[v];
                const edge_id start = wg.offsets[v];
                uint32_t k = jlo;
                for (uint32_t i = jlo; i < jhi; ++i) {
                  const vertex_id w = wg.targets[start + i];
                  if (atomic_load(&C[w]) == kNoVertex &&
                      cas(&C[w], kNoVertex, my_label)) {
                    // Claim edge: a BFS-tree edge of this cluster. Its
                    // witness is an original edge and joins the forest.
                    em({w, wg.witness[start + i]});
                  } else {
                    const vertex_id w_label = atomic_load(&C[w]);
                    if (w_label != my_label) {
                      // lint: private-write(piece owns slots [jlo, jhi) of v)
                      wg.targets[start + k] = w_label;
                      // lint: private-write(same piece-subrange invariant)
                      wg.witness[start + k] = wg.witness[start + i];
                      ++k;
                    }
                  }
                }
                if (jlo == 0 && jhi == deg) {
                  // lint: private-write(whole-vertex piece: sole writer)
                  wg.degrees[v] = k;
                }
                return k - jlo;
              });
      parallel::fix_split_pieces(
          run.partials,
          [&](uint32_t fi, uint32_t dst, uint32_t src, uint32_t len) {
            const edge_id start = wg.offsets[frontier[fi]];
            // lint: private-write(leader task owns entry fi's CSR slice)
            std::copy(wg.targets.begin() + start + src,
                      wg.targets.begin() + start + src + len,
                      wg.targets.begin() + start + dst);
            // lint: private-write(same leader-owned slice, witness array)
            std::copy(wg.witness.begin() + start + src,
                      wg.witness.begin() + start + src + len,
                      wg.witness.begin() + start + dst);
          },
          [&](uint32_t fi, uint32_t kept) {
            // lint: private-write(one leader task per split vertex)
            wg.degrees[frontier[fi]] = kept;
          });
      next_size = run.emitted;
    }
    const size_t forest_base = forest.size();
    forest.resize(forest_base + next_size);
    parallel_for(0, next_size, [&](size_t i) {
      // lint: private-write(iteration i owns slot i of both outputs)
      next[i] = claims[i].w;
      // lint: private-write(iteration i owns slot forest_base + i)
      forest[forest_base + i] = claims[i].witness;
    });
    std::swap(frontier, next);
    frontier_size = next_size;
    ++round;
  }
  res.num_rounds = round;
  res.edges_kept = parallel::reduce_sum<size_t>(
      n, [&](size_t v) { return wg.degrees[v]; });
  return res;
}

}  // namespace

std::vector<graph::edge> spanning_forest(const graph::graph& g,
                                         const sf_options& opt) {
  witness_graph wg = level0(g);
  std::vector<uint64_t> forest;
  forest.reserve(g.num_vertices());

  for (size_t level = 0; wg.n > 0; ++level) {
    ldd::options dopt;
    dopt.beta = opt.beta;
    dopt.seed = parallel::hash64(opt.seed + 0x51ab * (level + 1));
    if (level >= opt.max_levels) {
      // Safety net (mirrors connected_components): finish sequentially.
      baselines::union_find uf(wg.n);
      for (size_t v = 0; v < wg.n; ++v) {
        const edge_id start = wg.offsets[v];
        for (vertex_id i = 0; i < wg.degrees[v]; ++i) {
          if (uf.unite(static_cast<vertex_id>(v), wg.targets[start + i])) {
            forest.push_back(wg.witness[start + i]);
          }
        }
      }
      break;
    }

    const ldd::result dec = decomp_arb_sf(wg, dopt, forest);
    if (dec.edges_kept == 0) break;

    // Contract with witnesses: one surviving (src, tgt) cluster pair keeps
    // one witness (any edge realizing the pair is a valid forest edge).
    // Concurrent same-value stores via write_once (relaxed atomics), so the
    // benign race is declared to the memory model.
    std::vector<uint8_t> has_edge(wg.n, 0);
    parallel_for(0, wg.n, [&](size_t v) {
      if (wg.degrees[v] > 0) {
        parallel::write_once(&has_edge[dec.cluster[v]], uint8_t{1});
      }
      const edge_id start = wg.offsets[v];
      for (vertex_id i = 0; i < wg.degrees[v]; ++i) {
        parallel::write_once(&has_edge[wg.targets[start + i]], uint8_t{1});
      }
    });
    std::vector<size_t> center_rank;
    const size_t k = parallel::scan_exclusive_into(
        wg.n,
        [&](size_t c) {
          return (dec.cluster[c] == c && has_edge[c]) ? size_t{1} : size_t{0};
        },
        center_rank);
    std::vector<vertex_id> new_id(wg.n, kNoVertex);
    parallel_for(0, wg.n, [&](size_t c) {
      if (dec.cluster[c] == c && has_edge[c]) {
        new_id[c] = static_cast<vertex_id>(center_rank[c]);
      }
    });

    // Dedup (src, tgt) pairs, keeping a witness each.
    parallel::hash_map64 dedup(dec.edges_kept);
    parallel_for(0, wg.n, [&](size_t v) {
      const vertex_id src = new_id[dec.cluster[v]];
      const edge_id start = wg.offsets[v];
      for (vertex_id i = 0; i < wg.degrees[v]; ++i) {
        const vertex_id tgt = new_id[wg.targets[start + i]];
        dedup.insert((static_cast<uint64_t>(src) << 32) | tgt,
                     wg.witness[start + i]);
      }
    });
    auto pairs = dedup.elements();

    // Sort by (src, tgt) and rebuild the next witness_graph.
    const int b = parallel::bits_needed(k == 0 ? 1 : k);
    const uint64_t tmask = b >= 32 ? ~uint32_t{0} : (uint64_t{1} << b) - 1;
    parallel::integer_sort(pairs, 2 * b, [b, tmask](const auto& p) {
      return ((p.first >> 32) << b) | (p.first & tmask);
    });

    witness_graph next;
    next.n = k;
    next.offsets.resize(k + 1);
    next.targets.resize(pairs.size());
    next.witness.resize(pairs.size());
    next.degrees.resize(k);
    parallel_for(0, pairs.size(), [&](size_t i) {
      // lint: private-write(iteration i owns slot i of both arrays)
      next.targets[i] = static_cast<vertex_id>(pairs[i].first);
      next.witness[i] = pairs[i].second;
    });
    // The pairs are sorted by (src, tgt), so each vertex's CSR offset is a
    // binary search for its first pair — no shared degree counters.
    parallel_for(0, k + 1, [&](size_t v) {
      const auto it = std::lower_bound(
          pairs.begin(), pairs.end(), v,
          [](const auto& p, size_t vv) { return (p.first >> 32) < vv; });
      // lint: private-write(iteration v owns slot v)
      next.offsets[v] = static_cast<edge_id>(it - pairs.begin());
    });
    parallel_for(0, k, [&](size_t v) {
      // lint: private-write(iteration v owns slot v)
      next.degrees[v] =
          static_cast<vertex_id>(next.offsets[v + 1] - next.offsets[v]);
    });
    wg = std::move(next);
  }

  std::vector<graph::edge> out(forest.size());
  parallel_for(0, forest.size(),
               [&](size_t i) { out[i] = unpack_witness(forest[i]); });
  return out;
}

}  // namespace pcc::cc
