// Witness-carrying variant of the decompose-contract pipeline (see
// spanning_forest.hpp). Self-contained: it mirrors decomp_arb and contract
// but threads a per-edge witness (an original-graph edge) through both, so
// the main connectivity path stays lean.

#include "core/spanning_forest.hpp"

#include <cassert>

#include "baselines/union_find.hpp"
#include "core/ldd.hpp"
#include "core/ldd_internal.hpp"
#include "parallel/arena.hpp"
#include "parallel/atomics.hpp"
#include "parallel/hash_map.hpp"
#include "parallel/integer_sort.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"

namespace pcc::cc {

namespace {

using parallel::atomic_load;
using parallel::cas;
using parallel::fetch_add;
using parallel::parallel_for;

inline uint64_t pack_witness(graph::edge e) {
  return (static_cast<uint64_t>(e.first) << 32) | e.second;
}
inline graph::edge unpack_witness(uint64_t w) {
  return {static_cast<vertex_id>(w >> 32), static_cast<vertex_id>(w)};
}

// A level graph: CSR plus, for every directed edge slot, the original edge
// that realizes it.
struct witness_graph {
  size_t n = 0;
  std::vector<edge_id> offsets;    // size n+1
  std::vector<vertex_id> targets;  // mutable (compacted by the decomp)
  std::vector<uint64_t> witness;   // parallel to targets
  std::vector<vertex_id> degrees;  // live prefix of each adjacency
};

witness_graph level0(const graph::graph& g) {
  witness_graph wg;
  wg.n = g.num_vertices();
  wg.offsets = g.offsets();
  wg.targets = g.edges();
  wg.witness.resize(g.num_edges());
  wg.degrees.resize(wg.n);
  parallel_for(0, wg.n, [&](size_t v) {
    wg.degrees[v] = g.degree(static_cast<vertex_id>(v));
    const edge_id start = wg.offsets[v];
    for (vertex_id i = 0; i < wg.degrees[v]; ++i) {
      // lint: private-write(v owns its CSR slice [start, start+deg))
      wg.witness[start + i] = pack_witness(
          {static_cast<vertex_id>(v), wg.targets[start + i]});
    }
  });
  return wg;
}

// Decomp-Arb over a witness graph. Claim edges contribute their witnesses
// to `forest`; kept inter-cluster edges are compacted in place (targets
// relabeled to cluster ids, witnesses carried).
ldd::result decomp_arb_sf(witness_graph& wg, const ldd::options& opt,
                          std::vector<uint64_t>& forest) {
  const size_t n = wg.n;
  ldd::result res;
  res.cluster.assign(n, kNoVertex);
  if (n == 0) return res;
  std::vector<vertex_id>& C = res.cluster;

  parallel::workspace ws;
  ldd::internal::shift_schedule schedule(n, opt, ws);
  std::span<vertex_id> frontier = ws.take<vertex_id>(n);
  std::span<vertex_id> next = ws.take<vertex_id>(n);
  size_t frontier_size = 0;
  // Claim-edge witnesses, collected race-free: at most n claims happen in
  // one decomposition (each vertex is claimed once).
  std::vector<uint64_t> claims(n);
  size_t num_claims = 0;

  size_t num_visited = 0;
  size_t round = 0;
  while (num_visited < n) {
    const size_t added = ldd::internal::add_new_centers(
        schedule, round, frontier, frontier_size, ws,
        [&](vertex_id v) { return C[v] == kNoVertex; },
        [&](vertex_id v) { C[v] = v; });
    res.num_clusters += added;
    frontier_size += added;
    num_visited += frontier_size;

    size_t next_size = 0;
    parallel_for(0, frontier_size, [&](size_t fi) {
      const vertex_id v = frontier[fi];
      const vertex_id my_label = C[v];
      const edge_id start = wg.offsets[v];
      vertex_id k = 0;
      const vertex_id deg = wg.degrees[v];
      for (vertex_id i = 0; i < deg; ++i) {
        const vertex_id w = wg.targets[start + i];
        if (atomic_load(&C[w]) == kNoVertex &&
            cas(&C[w], kNoVertex, my_label)) {
          next[fetch_add<size_t>(&next_size, 1)] = w;
          // Claim edge: a BFS-tree edge of this cluster. Its witness is an
          // original edge and joins the forest.
          claims[fetch_add<size_t>(&num_claims, 1)] = wg.witness[start + i];
        } else {
          const vertex_id w_label = atomic_load(&C[w]);
          if (w_label != my_label) {
            // lint: private-write(v owns its CSR slice [start, start+deg))
            wg.targets[start + k] = w_label;
            // lint: private-write(same per-v CSR slice invariant)
            wg.witness[start + k] = wg.witness[start + i];
            ++k;
          }
        }
      }
      // lint: private-write(frontier holds distinct vertices)
      wg.degrees[v] = k;
    });
    std::swap(frontier, next);
    frontier_size = next_size;
    ++round;
  }
  res.num_rounds = round;
  res.edges_kept = parallel::reduce_sum<size_t>(
      n, [&](size_t v) { return wg.degrees[v]; });
  forest.insert(forest.end(), claims.begin(), claims.begin() + num_claims);
  return res;
}

}  // namespace

std::vector<graph::edge> spanning_forest(const graph::graph& g,
                                         const sf_options& opt) {
  witness_graph wg = level0(g);
  std::vector<uint64_t> forest;
  forest.reserve(g.num_vertices());

  for (size_t level = 0; wg.n > 0; ++level) {
    ldd::options dopt;
    dopt.beta = opt.beta;
    dopt.seed = parallel::hash64(opt.seed + 0x51ab * (level + 1));
    if (level >= opt.max_levels) {
      // Safety net (mirrors connected_components): finish sequentially.
      baselines::union_find uf(wg.n);
      for (size_t v = 0; v < wg.n; ++v) {
        const edge_id start = wg.offsets[v];
        for (vertex_id i = 0; i < wg.degrees[v]; ++i) {
          if (uf.unite(static_cast<vertex_id>(v), wg.targets[start + i])) {
            forest.push_back(wg.witness[start + i]);
          }
        }
      }
      break;
    }

    const ldd::result dec = decomp_arb_sf(wg, dopt, forest);
    if (dec.edges_kept == 0) break;

    // Contract with witnesses: one surviving (src, tgt) cluster pair keeps
    // one witness (any edge realizing the pair is a valid forest edge).
    // Concurrent same-value stores via write_once (relaxed atomics), so the
    // benign race is declared to the memory model.
    std::vector<uint8_t> has_edge(wg.n, 0);
    parallel_for(0, wg.n, [&](size_t v) {
      if (wg.degrees[v] > 0) {
        parallel::write_once(&has_edge[dec.cluster[v]], uint8_t{1});
      }
      const edge_id start = wg.offsets[v];
      for (vertex_id i = 0; i < wg.degrees[v]; ++i) {
        parallel::write_once(&has_edge[wg.targets[start + i]], uint8_t{1});
      }
    });
    std::vector<size_t> center_rank;
    const size_t k = parallel::scan_exclusive_into(
        wg.n,
        [&](size_t c) {
          return (dec.cluster[c] == c && has_edge[c]) ? size_t{1} : size_t{0};
        },
        center_rank);
    std::vector<vertex_id> new_id(wg.n, kNoVertex);
    parallel_for(0, wg.n, [&](size_t c) {
      if (dec.cluster[c] == c && has_edge[c]) {
        new_id[c] = static_cast<vertex_id>(center_rank[c]);
      }
    });

    // Dedup (src, tgt) pairs, keeping a witness each.
    parallel::hash_map64 dedup(dec.edges_kept);
    parallel_for(0, wg.n, [&](size_t v) {
      const vertex_id src = new_id[dec.cluster[v]];
      const edge_id start = wg.offsets[v];
      for (vertex_id i = 0; i < wg.degrees[v]; ++i) {
        const vertex_id tgt = new_id[wg.targets[start + i]];
        dedup.insert((static_cast<uint64_t>(src) << 32) | tgt,
                     wg.witness[start + i]);
      }
    });
    auto pairs = dedup.elements();

    // Sort by (src, tgt) and rebuild the next witness_graph.
    const int b = parallel::bits_needed(k == 0 ? 1 : k);
    const uint64_t tmask = b >= 32 ? ~uint32_t{0} : (uint64_t{1} << b) - 1;
    parallel::integer_sort(pairs, 2 * b, [b, tmask](const auto& p) {
      return ((p.first >> 32) << b) | (p.first & tmask);
    });

    witness_graph next;
    next.n = k;
    next.offsets.assign(k + 1, 0);
    next.targets.resize(pairs.size());
    next.witness.resize(pairs.size());
    next.degrees.assign(k, 0);
    parallel_for(0, pairs.size(), [&](size_t i) {
      const vertex_id src = static_cast<vertex_id>(pairs[i].first >> 32);
      next.targets[i] = static_cast<vertex_id>(pairs[i].first);
      next.witness[i] = pairs[i].second;
      fetch_add<vertex_id>(&next.degrees[src], 1);
    });
    std::vector<size_t> offs;
    parallel::scan_exclusive_into(
        k, [&](size_t v) { return static_cast<size_t>(next.degrees[v]); },
        offs);
    parallel_for(0, k, [&](size_t v) { next.offsets[v] = offs[v]; });
    next.offsets[k] = pairs.size();
    wg = std::move(next);
  }

  std::vector<graph::edge> out(forest.size());
  parallel_for(0, forest.size(),
               [&](size_t i) { out[i] = unpack_witness(forest[i]); });
  return out;
}

}  // namespace pcc::cc
