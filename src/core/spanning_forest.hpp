// Decomposition-based parallel spanning forest — an extension the paper
// points at (its baselines ARE spanning-forest codes, and footnote 1 notes
// the SF <-> CC reduction).
//
// The same decompose-contract recursion that labels components also yields
// a spanning forest in expected linear work and polylog depth: within each
// decomposition level, the BFS claim edges form a tree of every cluster;
// across levels, each contracted edge carries a *witness* (an edge of the
// ORIGINAL graph connecting the two clusters), so the recursion's tree
// edges pull back to original edges. The union over all levels of
// (cluster BFS trees + pulled-back recursive forest) is a spanning forest:
// per level it adds n_l - (#clusters_l) + F(G_l+1) edges, telescoping to
// n - #components.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace pcc::cc {

struct sf_options {
  double beta = 0.2;
  uint64_t seed = 42;
  size_t max_levels = 128;
};

// Returns the edges of a spanning forest of g, as (u, v) pairs of original
// vertex ids; exactly n - (#components) edges.
std::vector<graph::edge> spanning_forest(const graph::graph& g,
                                         const sf_options& opt = {});

}  // namespace pcc::cc
