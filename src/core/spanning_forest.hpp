// Decomposition-based parallel spanning forest — an extension the paper
// points at (its baselines ARE spanning-forest codes, and footnote 1 notes
// the SF <-> CC reduction).
//
// The same decompose-contract recursion that labels components also yields
// a spanning forest in expected linear work and polylog depth: within each
// decomposition level, the BFS claim edges form a tree of every cluster;
// across levels, each contracted edge carries a *witness* (an edge of the
// ORIGINAL graph connecting the two clusters), so the recursion's tree
// edges pull back to original edges. The union over all levels of
// (cluster BFS trees + pulled-back recursive forest) is a spanning forest:
// per level it adds n_l - (#clusters_l) + F(G_l+1) edges, telescoping to
// n - #components.
//
// This is the one-shot convenience wrapper; the workspace-backed engine
// behind it is core/sf_engine.hpp (repeated queries, labels + forest in
// one pass, registry integration). Options are plain cc_options, so
// --beta/--seed/--shifts/--dedup-route mean the same thing they mean for
// connectivity; opt.variant is ignored (the SF decomposition is always the
// claim-based one).
#pragma once

#include <vector>

#include "core/connectivity.hpp"
#include "graph/graph.hpp"

namespace pcc::cc {

// Returns the edges of a spanning forest of g, as (u, v) pairs of original
// vertex ids; exactly n - (#components) edges, deterministic across worker
// counts and scheduler backends for fixed options.
std::vector<graph::edge> spanning_forest(const graph::graph& g,
                                         const cc_options& opt = {});

}  // namespace pcc::cc
