// Decomp-Min (Algorithm 2 of the paper) — the faithful Miller-Peng-Xu
// decomposition.
//
// Ties between BFS's reaching the same unvisited vertex in one round are
// broken toward the center with the smaller fractional shift value: each
// frontier vertex marks unvisited neighbours with writeMin on the pair
// (delta'_center, center) in phase 1, and in phase 2 the winner confirms
// the visit with a CAS and collects the neighbour onto the next frontier.
//
// Per the paper's engineering notes, the pair array C is kept as packed
// 64-bit words (fractional shift in the high half) so that the pair
// writeMin is a single-word atomic and each visit costs one cache line.
// The "visited" mark (the paper's C1 = -1) is the reserved fractional
// value 0; real fractional shifts are drawn from [1, 2^31), a range large
// enough that ties have negligible probability — the paper's assumption.

#include "core/ldd.hpp"
#include "core/ldd_internal.hpp"
#include "parallel/atomics.hpp"
#include "parallel/emit.hpp"
#include "parallel/random.hpp"

namespace pcc::ldd {

namespace {

using parallel::atomic_load;
using parallel::cas;
using parallel::pack_pair;
using parallel::packed_pair;
using parallel::pair_first;
using parallel::pair_second;
using parallel::parallel_for;
using parallel::timer;
using parallel::write_min;

constexpr uint32_t kVisitedFrac = 0;
constexpr packed_pair kUnvisited = ~packed_pair{0};  // (inf, inf)

}  // namespace

decomp_info decomp_min_into(work_graph& wg, const options& opt,
                            std::span<vertex_id> cluster,
                            parallel::workspace& ws,
                            parallel::phase_timer* pt) {
  const size_t n = wg.n;
  decomp_info res;
  if (n == 0) return res;
  std::span<const edge_id> V = wg.offsets;
  std::span<vertex_id> E = wg.edges;
  std::span<vertex_id> D = wg.degrees;

  timer t;
  parallel::workspace::scope outer(ws);
  internal::shift_schedule schedule(n, opt, ws);
  // delta'_v: the simulated fractional part of v's shift, used only when v
  // becomes a BFS center. Drawn from [1, 2^31) — 0 is the visited mark.
  const parallel::rng frac_gen = parallel::rng(opt.seed).split(11);
  const auto frac_of = [&](vertex_id v) {
    return 1u + static_cast<uint32_t>(frac_gen.bounded(v, (1u << 31) - 2u));
  };

  std::span<packed_pair> C = ws.take_filled<packed_pair>(n, kUnvisited);
  std::span<vertex_id> frontier = ws.take<vertex_id>(n);
  std::span<vertex_id> next = ws.take<vertex_id>(n);
  size_t frontier_size = 0;
  if (pt != nullptr) pt->add("init", t.lap());

  size_t num_visited = 0;
  size_t round = 0;
  while (num_visited < n) {
    t.start();
    const size_t added = internal::add_new_centers(
        schedule, round, frontier, frontier_size, ws,
        [&](vertex_id v) { return C[v] == kUnvisited; },
        [&](vertex_id v) { C[v] = pack_pair(kVisitedFrac, v); });
    res.num_clusters += added;
    frontier_size += added;
    num_visited += frontier_size;
    if (pt != nullptr) pt->add("bfsPre", t.lap());

    // Phase 1 (Lines 9-23): writeMin marking of unvisited neighbours; edges
    // to previously visited vertices are resolved immediately, edges to
    // still-contended vertices are kept raw for phase 2. Edge-balanced and
    // non-emitting: each piece compacts its kept slots to the front of its
    // own [jlo, jhi) subrange.
    const auto slide = [&](uint32_t fi, uint32_t dst, uint32_t src,
                           uint32_t len) {
      const edge_id start = V[frontier[fi]];
      std::copy(E.begin() + start + src, E.begin() + start + src + len,
                E.begin() + start + dst);
    };
    const auto publish = [&](uint32_t fi, uint32_t kept) {
      // lint: private-write(one leader task per split vertex)
      D[frontier[fi]] = kept;
    };
    {
      parallel::workspace::scope phase_scope(ws);
      const parallel::frontier_result run = parallel::frontier_edge_for(
          frontier_size, [&](size_t fi) { return D[frontier[fi]]; }, ws,
          [&](size_t fi, uint32_t jlo, uint32_t jhi,
              uint32_t deg) -> uint32_t {
            const vertex_id v = frontier[fi];
            // Local raw pointers: writeMin is a compiler barrier that
            // forces captured spans to be re-read every edge; a
            // non-escaping local stays in a register across it.
            packed_pair* const cl = C.data();
            vertex_id* const ed = E.data();
            const vertex_id my_label = pair_second(cl[v]);
            const uint32_t my_frac = frac_of(my_label);
            const edge_id start = V[v];
            uint32_t k = jlo;
            for (uint32_t i = jlo; i < jhi; ++i) {
              const vertex_id w = ed[start + i];
              const packed_pair cw = atomic_load(&cl[w]);
              if (pair_first(cw) != kVisitedFrac) {
                // Unvisited (or only writeMin-marked this round): compete.
                write_min(&cl[w], pack_pair(my_frac, my_label));
                // lint: private-write(piece owns slots [jlo, jhi) of v)
                ed[start + k] = w;  // status unknown until phase 2
                ++k;
              } else if (pair_second(cw) != my_label) {
                // Visited in an earlier round, different cluster:
                // inter-cluster. Relabel now and set the mark bit so
                // phase 2 skips it.
                // lint: private-write(piece owns slots [jlo, jhi) of v)
                ed[start + k] = internal::mark_edge(pair_second(cw));
                ++k;
              }
              // else: intra-cluster, deleted.
            }
            if (jlo == 0 && jhi == deg) {
              // lint: private-write(whole-vertex piece: sole writer of D[v])
              D[v] = k;
            }
            return k - jlo;
          });
      parallel::fix_split_pieces(run.partials, slide, publish);
    }
    if (pt != nullptr) pt->add("bfsPhase1", t.lap());

    // Phase 2 (Lines 24-39): winners confirm their visits with a CAS; all
    // remaining raw edges are resolved and the collected neighbours are
    // emitted contention-free in flattened edge order.
    size_t next_size = 0;
    {
      parallel::workspace::scope phase_scope(ws);
      const parallel::frontier_result run =
          parallel::frontier_edge_for<vertex_id>(
              frontier_size, [&](size_t fi) { return D[frontier[fi]]; }, next,
              ws,
              [&](size_t fi, uint32_t jlo, uint32_t jhi, uint32_t deg,
                  parallel::emitter<vertex_id>& em) -> uint32_t {
                const vertex_id v = frontier[fi];
                // Same register-hoisting discipline as phase 1.
                packed_pair* const cl = C.data();
                vertex_id* const ed = E.data();
                const vertex_id my_label = pair_second(cl[v]);
                const uint32_t my_frac = frac_of(my_label);
                const packed_pair winning = pack_pair(my_frac, my_label);
                const edge_id start = V[v];
                uint32_t k = jlo;
                for (uint32_t i = jlo; i < jhi; ++i) {
                  const vertex_id w = ed[start + i];
                  if (!internal::is_marked(w)) {
                    // Our cluster won w iff C[w] still holds our
                    // (frac, label); the CAS ensures only one frontier
                    // vertex of the cluster collects w (several may share
                    // the same winning pair).
                    if (atomic_load(&cl[w]) == winning &&
                        cas(&cl[w], winning,
                            pack_pair(kVisitedFrac, my_label))) {
                      em(w);
                      // Intra-cluster edge: deleted.
                    } else {
                      const vertex_id w_label =
                          pair_second(atomic_load(&cl[w]));
                      if (w_label != my_label) {
                        // lint: private-write(piece owns slots [jlo, jhi))
                        ed[start + k] = internal::mark_edge(w_label);
                        ++k;
                      }
                    }
                  } else {
                    // lint: private-write(piece owns slots [jlo, jhi) of v)
                    ed[start + k] = w;  // resolved in phase 1, keep as-is
                    ++k;
                  }
                }
                if (jlo == 0 && jhi == deg) {
                  // lint: private-write(whole-vertex piece: sole writer)
                  D[v] = k;
                }
                return k - jlo;
              });
      parallel::fix_split_pieces(run.partials, slide, publish);
      next_size = run.emitted;
    }
    std::swap(frontier, next);
    frontier_size = next_size;
    if (pt != nullptr) pt->add("bfsPhase2", t.lap());
    ++round;
  }

  // Unset the mark bits of the surviving inter-cluster edges and publish
  // the final labels.
  t.start();
  parallel_for(0, n, [&](size_t v) {
    const edge_id start = V[v];
    for (vertex_id i = 0; i < D[v]; ++i) {
      // lint: private-write(v owns its CSR slice [start, start+deg))
      E[start + i] = internal::unmark_edge(E[start + i]);
    }
    cluster[v] = pair_second(C[v]);
  });
  if (pt != nullptr) pt->add("bfsPost", t.lap());

  res.num_rounds = round;
  res.edges_kept = parallel::reduce_sum_ws<size_t>(
      n, [&](size_t v) { return D[v]; }, ws);
  return res;
}

result decomp_min(work_graph& wg, const options& opt,
                  parallel::phase_timer* pt) {
  std::vector<vertex_id> cluster(wg.n);
  parallel::workspace ws;
  const decomp_info info = decomp_min_into(wg, opt, cluster, ws, pt);
  return internal::to_result(std::move(cluster), info);
}

result decompose_min(const graph::graph& g, const options& opt) {
  work_graph wg = work_graph::from(g);
  return decomp_min(wg, opt, nullptr);
}

}  // namespace pcc::ldd
