// Decomp-Min (Algorithm 2 of the paper) — the faithful Miller-Peng-Xu
// decomposition.
//
// Ties between BFS's reaching the same unvisited vertex in one round are
// broken toward the center with the smaller fractional shift value: each
// frontier vertex marks unvisited neighbours with writeMin on the pair
// (delta'_center, center) in phase 1, and in phase 2 the winner confirms
// the visit with a CAS and collects the neighbour onto the next frontier.
//
// Per the paper's engineering notes, the pair array C is kept as packed
// 64-bit words (fractional shift in the high half) so that the pair
// writeMin is a single-word atomic and each visit costs one cache line.
// The "visited" mark (the paper's C1 = -1) is the reserved fractional
// value 0; real fractional shifts are drawn from [1, 2^31), a range large
// enough that ties have negligible probability — the paper's assumption.

#include "core/ldd.hpp"
#include "core/ldd_internal.hpp"
#include "parallel/atomics.hpp"
#include "parallel/random.hpp"

namespace pcc::ldd {

namespace {

using parallel::atomic_load;
using parallel::cas;
using parallel::fetch_add;
using parallel::pack_pair;
using parallel::packed_pair;
using parallel::pair_first;
using parallel::pair_second;
using parallel::parallel_for;
using parallel::timer;
using parallel::write_min;

constexpr uint32_t kVisitedFrac = 0;
constexpr packed_pair kUnvisited = ~packed_pair{0};  // (inf, inf)

}  // namespace

decomp_info decomp_min_into(work_graph& wg, const options& opt,
                            std::span<vertex_id> cluster,
                            parallel::workspace& ws,
                            parallel::phase_timer* pt) {
  const size_t n = wg.n;
  decomp_info res;
  if (n == 0) return res;
  std::span<const edge_id> V = wg.offsets;
  std::span<vertex_id> E = wg.edges;
  std::span<vertex_id> D = wg.degrees;

  timer t;
  parallel::workspace::scope outer(ws);
  internal::shift_schedule schedule(n, opt, ws);
  // delta'_v: the simulated fractional part of v's shift, used only when v
  // becomes a BFS center. Drawn from [1, 2^31) — 0 is the visited mark.
  const parallel::rng frac_gen = parallel::rng(opt.seed).split(11);
  const auto frac_of = [&](vertex_id v) {
    return 1u + static_cast<uint32_t>(frac_gen.bounded(v, (1u << 31) - 2u));
  };

  std::span<packed_pair> C = ws.take_filled<packed_pair>(n, kUnvisited);
  std::span<vertex_id> frontier = ws.take<vertex_id>(n);
  std::span<vertex_id> next = ws.take<vertex_id>(n);
  size_t frontier_size = 0;
  if (pt != nullptr) pt->add("init", t.lap());

  size_t num_visited = 0;
  size_t round = 0;
  while (num_visited < n) {
    t.start();
    const size_t added = internal::add_new_centers(
        schedule, round, frontier, frontier_size, ws,
        [&](vertex_id v) { return C[v] == kUnvisited; },
        [&](vertex_id v) { C[v] = pack_pair(kVisitedFrac, v); });
    res.num_clusters += added;
    frontier_size += added;
    num_visited += frontier_size;
    if (pt != nullptr) pt->add("bfsPre", t.lap());

    // Phase 1 (Lines 9-23): writeMin marking of unvisited neighbours; edges
    // to previously visited vertices are resolved immediately, edges to
    // still-contended vertices are kept raw for phase 2.
    parallel_for(0, frontier_size, [&](size_t fi) {
      const vertex_id v = frontier[fi];
      const vertex_id my_label = pair_second(C[v]);
      const uint32_t my_frac = frac_of(my_label);
      const edge_id start = V[v];
      vertex_id k = 0;
      const vertex_id deg = D[v];
      for (vertex_id i = 0; i < deg; ++i) {
        const vertex_id w = E[start + i];
        const packed_pair cw = atomic_load(&C[w]);
        if (pair_first(cw) != kVisitedFrac) {
          // Unvisited (or only writeMin-marked this round): compete.
          write_min(&C[w], pack_pair(my_frac, my_label));
          // lint: private-write(v owns its CSR slice [start, start+deg))
          E[start + k] = w;  // status unknown until phase 2
          ++k;
        } else if (pair_second(cw) != my_label) {
          // Visited in an earlier round, different cluster: inter-cluster.
          // Relabel now and set the mark bit so phase 2 skips it.
          // lint: private-write(v owns its CSR slice [start, start+deg))
          E[start + k] = internal::mark_edge(pair_second(cw));
          ++k;
        }
        // else: intra-cluster, deleted.
      }
      D[v] = k;  // lint: private-write(frontier holds distinct vertices)
    });
    if (pt != nullptr) pt->add("bfsPhase1", t.lap());

    // Phase 2 (Lines 24-39): winners confirm their visits with a CAS; all
    // remaining raw edges are resolved.
    size_t next_size = 0;
    parallel_for(0, frontier_size, [&](size_t fi) {
      const vertex_id v = frontier[fi];
      const vertex_id my_label = pair_second(C[v]);
      const uint32_t my_frac = frac_of(my_label);
      const packed_pair winning = pack_pair(my_frac, my_label);
      const edge_id start = V[v];
      vertex_id k = 0;
      const vertex_id deg = D[v];
      for (vertex_id i = 0; i < deg; ++i) {
        const vertex_id w = E[start + i];
        if (!internal::is_marked(w)) {
          // Our cluster won w iff C[w] still holds our (frac, label); the
          // CAS ensures only one frontier vertex of the cluster collects w
          // (several may share the same winning pair).
          if (atomic_load(&C[w]) == winning &&
              cas(&C[w], winning, pack_pair(kVisitedFrac, my_label))) {
            next[fetch_add<size_t>(&next_size, 1)] = w;
            // Intra-cluster edge: deleted.
          } else {
            const vertex_id w_label = pair_second(atomic_load(&C[w]));
            if (w_label != my_label) {
              // lint: private-write(v owns its CSR slice [start, start+deg))
              E[start + k] = internal::mark_edge(w_label);
              ++k;
            }
          }
        } else {
          // lint: private-write(v owns its CSR slice [start, start+deg))
          E[start + k] = w;  // resolved in phase 1, keep as-is
          ++k;
        }
      }
      D[v] = k;  // lint: private-write(frontier holds distinct vertices)
    });
    std::swap(frontier, next);
    frontier_size = next_size;
    if (pt != nullptr) pt->add("bfsPhase2", t.lap());
    ++round;
  }

  // Unset the mark bits of the surviving inter-cluster edges and publish
  // the final labels.
  t.start();
  parallel_for(0, n, [&](size_t v) {
    const edge_id start = V[v];
    for (vertex_id i = 0; i < D[v]; ++i) {
      // lint: private-write(v owns its CSR slice [start, start+deg))
      E[start + i] = internal::unmark_edge(E[start + i]);
    }
    cluster[v] = pair_second(C[v]);
  });
  if (pt != nullptr) pt->add("bfsPost", t.lap());

  res.num_rounds = round;
  res.edges_kept = parallel::reduce_sum_ws<size_t>(
      n, [&](size_t v) { return D[v]; }, ws);
  return res;
}

result decomp_min(work_graph& wg, const options& opt,
                  parallel::phase_timer* pt) {
  std::vector<vertex_id> cluster(wg.n);
  parallel::workspace ws;
  const decomp_info info = decomp_min_into(wg, opt, cluster, ws, pt);
  return internal::to_result(std::move(cluster), info);
}

result decompose_min(const graph::graph& g, const options& opt) {
  work_graph wg = work_graph::from(g);
  return decomp_min(wg, opt, nullptr);
}

}  // namespace pcc::ldd
