// Iterative engine for Algorithm 1: DECOMP + CONTRACT per level going up,
// RELABELUP back down the recorded level stack. Semantically identical to
// the old allocate-per-level recursion (same per-level seeds, same
// operation order), but every array is carved from reusable arenas.

#include "core/cc_engine.hpp"

#include "core/contract.hpp"
#include "core/ldd.hpp"
#include "parallel/random.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/sequence.hpp"
#include "parallel/timer.hpp"

namespace pcc::cc {

namespace {

using parallel::parallel_for;

// Sequential union-find over a CSR given as spans — the safety net for the
// (never-observed) case that the level loop fails to make progress within
// opt.max_levels. `parent` is scratch of size n.
void sequential_components_into(size_t n, std::span<const edge_id> offsets,
                                std::span<const vertex_id> edges,
                                std::span<vertex_id> labels,
                                std::span<vertex_id> parent) {
  for (size_t v = 0; v < n; ++v) parent[v] = static_cast<vertex_id>(v);
  const auto find = [&](vertex_id x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t u = 0; u < n; ++u) {
    for (edge_id e = offsets[u]; e < offsets[u + 1]; ++e) {
      const vertex_id ru = find(static_cast<vertex_id>(u));
      const vertex_id rw = find(edges[e]);
      if (ru != rw) parent[ru < rw ? rw : ru] = ru < rw ? ru : rw;
    }
  }
  for (size_t v = 0; v < n; ++v) {
    labels[v] = find(static_cast<vertex_id>(v));
  }
}

ldd::decomp_info run_decomposition(ldd::work_graph& wg, const cc_options& opt,
                                   uint64_t level,
                                   std::span<vertex_id> cluster,
                                   parallel::workspace& ws, cc_stats* stats) {
  ldd::options dopt;
  dopt.beta = opt.beta;
  dopt.shifts = opt.shifts;
  // Fresh randomness per level: otherwise an unlucky schedule could repeat.
  dopt.seed = parallel::hash64(opt.seed + 0x9e37 * (level + 1));
  dopt.dense_threshold = opt.dense_threshold;
  dopt.parallel_edge_threshold = opt.parallel_edge_threshold;
  parallel::phase_timer* pt = stats != nullptr ? &stats->phases : nullptr;
  switch (opt.variant) {
    case decomp_variant::kMin:
      return ldd::decomp_min_into(wg, dopt, cluster, ws, pt);
    case decomp_variant::kArb:
      return ldd::decomp_arb_into(wg, dopt, cluster, ws, pt);
    case decomp_variant::kArbHybrid:
      return ldd::decomp_arb_hybrid_into(wg, dopt, cluster, ws, pt);
  }
  return {};  // unreachable
}

}  // namespace

void cc_engine::reserve(size_t n, size_t m) {
  persist_.reset();
  scratch_.reset();
  graph_[0].reset();
  graph_[1].reset();
  frames_.clear();
  // Heuristics for the level-0-dominated footprints; the arenas self-size
  // to the true high-water mark after the first run either way.
  persist_.reserve(sizeof(vertex_id) * 4 * n);
  graph_[0].reserve(sizeof(vertex_id) * (m + n));
  graph_[1].reserve(sizeof(vertex_id) * (m + n));
  scratch_.reserve(sizeof(vertex_id) * 16 * n + 8 * m);
  // Level count varies run to run (the decomposition's benign races make
  // clustering schedule-dependent), so sizing frames_ off the first run's
  // depth would let a deeper rerun reallocate; reserve the cap instead.
  frames_.reserve(opt_.max_levels);
}

std::span<const vertex_id> cc_engine::run(const graph::graph& g,
                                          cc_stats* stats) {
  return run(g, opt_, stats);
}

std::span<const vertex_id> cc_engine::run(const graph::graph& g,
                                          const cc_options& opt,
                                          cc_stats* stats) {
  const size_t n0 = g.num_vertices();
  const size_t m0 = g.num_edges();

  // The previous run's labels die here; this is also where a first-run
  // multi-chunk arena consolidates to its high-water mark.
  persist_.reset();
  scratch_.reset();
  graph_[0].reset();
  graph_[1].reset();
  frames_.clear();
  // No-op after the first run; see the note in reserve() on why frames_
  // is sized by the cap rather than by observed depth.
  frames_.reserve(opt.max_levels);

  if (n0 == 0) return {};
  std::span<vertex_id> labels = persist_.take<vertex_id>(n0);
  if (m0 == 0) {
    // Every vertex is its own component.
    parallel_for(0, n0,
                 [&](size_t v) { labels[v] = static_cast<vertex_id>(v); });
    return labels;
  }

  // Level-0 working graph: offsets borrowed from g; the edge array is
  // copied into graph_[0] because the decomposition compacts it in place.
  std::span<vertex_id> edges0 = graph_[0].take<vertex_id>(m0);
  std::span<vertex_id> degrees0 = graph_[0].take<vertex_id>(n0);
  const std::vector<vertex_id>& ge = g.edges();
  parallel_for(0, m0, [&](size_t i) { edges0[i] = ge[i]; });
  parallel_for(0, n0, [&](size_t v) {
    degrees0[v] = g.degree(static_cast<vertex_id>(v));
  });
  ldd::work_graph cur = ldd::work_graph::over(
      n0, std::span<const edge_id>(g.offsets()), edges0, degrees0);
  size_t cur_m = m0;
  int ping = 0;  // graph_ arena holding cur's storage

  // Go up: decompose and contract until the edges run out (or the safety
  // net engages), recording the lift state of each level.
  std::span<const vertex_id> base;  // labels of the topmost solved level
  size_t level = 0;
  while (true) {
    if (level >= opt.max_levels) {
      if (stats != nullptr) stats->used_fallback = true;
      std::span<vertex_id> fb = scratch_.take<vertex_id>(cur.n);
      std::span<vertex_id> parent = scratch_.take<vertex_id>(cur.n);
      sequential_components_into(cur.n, cur.offsets, cur.edges, fb, parent);
      base = fb;
      break;
    }
    if (level > 0) {
      // The arena not holding cur kept the level before last's graph; that
      // graph is dead (only its lift state in persist_ is still needed).
      graph_[1 - ping].reset();
    }

    // L = DECOMP(G, beta)
    std::span<vertex_id> cluster = persist_.take<vertex_id>(cur.n);
    ldd::decomp_info dec;
    {
      parallel::workspace::scope s(scratch_);
      dec = run_decomposition(cur, opt, level, cluster, scratch_, stats);
    }

    // G' = CONTRACT(G, L)
    parallel::timer contract_timer;
    const contraction_view cv =
        contract_into(cur, cluster, opt.dedup, persist_, graph_[1 - ping],
                      scratch_, opt.dedup_route);
    if (stats != nullptr) {
      stats->phases.add("contractGraph", contract_timer.elapsed());
      level_stats ls;
      ls.n = cur.n;
      ls.m = cur_m;
      ls.edges_kept = dec.edges_kept;
      ls.edges_after_dedup = cv.edges.size();
      ls.num_clusters = dec.num_clusters;
      ls.num_singletons = dec.num_clusters >= cv.num_vertices
                              ? dec.num_clusters - cv.num_vertices
                              : 0;
      ls.bfs_rounds = dec.num_rounds;
      ls.dense_rounds = dec.num_dense_rounds;
      ls.dedup_route = cv.dedup_route;
      stats->levels.push_back(ls);
    }

    // if |E'| = 0 return L — this level's clustering is its labeling, so
    // no lift frame is recorded for it.
    if (cv.edges.empty()) {
      base = cluster;
      break;
    }

    frames_.push_back({cluster, cv.new_id, cv.rep, cur.n});
    ping = 1 - ping;
    std::span<vertex_id> degrees =
        graph_[ping].take<vertex_id>(cv.num_vertices);
    parallel_for(0, cv.num_vertices, [&](size_t v) {
      degrees[v] =
          static_cast<vertex_id>(cv.offsets[v + 1] - cv.offsets[v]);
    });
    cur = ldd::work_graph::over(cv.num_vertices, cv.offsets, cv.edges,
                                degrees);
    cur_m = cv.edges.size();
    ++level;
  }

  // Come back down (RELABELUP): a cluster that survived into the next
  // level takes the representative of its contracted component, mapped
  // back through rep[]; a singleton cluster keeps its center as the label.
  // Representatives of distinct components stay distinct (rep is injective
  // and centers of singleton clusters are never reps of non-singleton
  // ones).
  parallel::timer relabel_timer;
  {
    parallel::workspace::scope s(scratch_);
    for (size_t f = frames_.size(); f-- > 0;) {
      const level_frame& fr = frames_[f];
      std::span<vertex_id> lifted =
          f == 0 ? labels : scratch_.take<vertex_id>(fr.n);
      parallel_for(0, fr.n, [&](size_t v) {
        const vertex_id c = fr.cluster[v];
        const vertex_id x = fr.new_id[c];
        lifted[v] = (x == kNoVertex) ? c : fr.rep[base[x]];
      });
      base = lifted;
    }
    if (frames_.empty()) {
      // The loop solved level 0 directly; publish its labeling.
      parallel_for(0, n0, [&](size_t v) { labels[v] = base[v]; });
    }
  }
  if (stats != nullptr) {
    stats->phases.add("contractGraph", relabel_timer.elapsed());
  }
  return labels;
}

}  // namespace pcc::cc
