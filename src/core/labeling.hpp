// Liu–Tarjan concurrent-labeling connectivity kernels.
//
// Liu & Tarjan ["Simple Concurrent Labeling Algorithms for Connected
// Components", arXiv:1812.06177] organize a family of round-synchronous
// connectivity algorithms as combinations of three independent choices:
//
//   hook     — how an edge (u, v) pulls labels together:
//                direct    p[u] <- min(p[u], p[v])            (both dirs)
//                parent    p[p[u]] <- min(p[p[u]], p[v])
//                extended  both of the above
//                roots     like direct, but only when p[u] == u
//   shortcut — how the label forest is flattened between hook rounds:
//                single    p[v] <- p[p[v]]         (one pointer jump)
//                full      p[v] <- root(v)         (jump to the root)
//   alter    — whether each round rewrites the edge list to connect the
//              endpoints' current parents and drops the self-loops that
//              appear once both endpoints agree (the edge list shrinks as
//              components coalesce, like contraction without building a
//              new graph).
//
// All hooks are monotone write_min updates preserving p[x] <= x, so every
// combination terminates; the kernel below additionally runs a
// certification epilogue (direct hook over the ORIGINAL edges + single
// shortcut, until quiescent) that makes every combination unconditionally
// correct and makes the final labels the minimum vertex id of each
// component — i.e. deterministic across schedules, backends and worker
// counts. See ALGORITHMS.md ("The Liu–Tarjan lattice") for the argument.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "parallel/arena.hpp"
#include "parallel/defs.hpp"

namespace pcc::cc {

enum class lt_hook : uint8_t {
  kDirect,    // P <- min over both endpoints' parents
  kParent,    // update the parent's cell
  kExtended,  // parent + direct
  kRoots,     // direct, but only root vertices hook
};

enum class lt_shortcut : uint8_t {
  kSingle,  // one pointer jump per round
  kFull,    // chase to the root each round
};

struct lt_policy {
  lt_hook hook = lt_hook::kParent;
  lt_shortcut shortcut = lt_shortcut::kSingle;
  // Rewrite edges to (p[a], p[b]) after each round and drop self-loops.
  bool alter = false;
};

// A named point in the lattice, for registration and CLI listing.
struct lt_variant {
  const char* name;  // e.g. "lt-ps" (parent hook, single shortcut)
  lt_policy policy;
  const char* description;
};

// The named variants this library registers. Roots-only hooks are offered
// only with alter: without edge rewriting a roots-only hook can stall with
// non-root endpoints never constrained (the paper's "R" rows all alter).
std::span<const lt_variant> liu_tarjan_variants();

// NULL if `name` is not a registered Liu–Tarjan variant.
const lt_variant* find_liu_tarjan_variant(std::string_view name);

// Run the selected variant; labels[v] becomes the minimum vertex id in
// v's component. `labels` must have g.num_vertices() elements. All scratch
// (the alter edge buffers) comes from `ws`; the call is allocation-free
// once `ws` has warmed up. Returns the number of rounds executed
// (variant rounds + certification rounds).
size_t liu_tarjan_into(const graph::graph& g, const lt_policy& policy,
                       std::span<vertex_id> labels, parallel::workspace& ws);

// Convenience wrapper with a private workspace.
std::vector<vertex_id> liu_tarjan_components(const graph::graph& g,
                                             const lt_policy& policy);

}  // namespace pcc::cc
