// The cc::algorithm registry: every connectivity implementation in the
// library — the decompose-contract pipeline, all of src/baselines/, the
// Liu–Tarjan labeling family, and the "auto" selector — behind one
// descriptor with a common workspace-backed run signature.
//
// The registry exists so the CLI (`pcc_components --algo`), the fuzz
// driver, and the benches enumerate ONE table instead of each keeping its
// own name→function if-chain, and so repeated queries share warm state:
// run_algorithm() draws all transient memory from the caller's
// algo_workspace, which means any workspace_backed algorithm is
// allocation-free after its first run (the property PR 1 established for
// the engine, now uniform across the library).
//
// To register a new algorithm: implement a runner with the `run` signature
// below (draw scratch from the algo_workspace, write labels into the out
// span), append an entry to the table in registry.cpp, and the CLI, fuzz
// battery, equivalence tests and benches pick it up automatically — see
// DESIGN.md ("The algorithm registry").
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/bfs.hpp"
#include "core/cc_engine.hpp"
#include "core/connectivity.hpp"
#include "core/sf_engine.hpp"
#include "graph/graph.hpp"
#include "parallel/arena.hpp"

namespace pcc::cc {

// Reusable execution state shared by every registered algorithm: one
// engine for the decomp-* family, one for the spanning-forest pipeline,
// BFS scratch for the hybrid sweeps, and a workspace arena for everything
// else (labeling edge buffers, union-find locks, the selector's probe).
struct algo_workspace {
  cc_engine engine;
  sf_engine sf;
  baselines::bfs_scratch bfs;
  parallel::workspace scratch;

  // Forest produced by the most recent run_algorithm() call, when the
  // algorithm has produces_forest set (empty otherwise — cleared at the
  // start of every run). Points into sf's storage, or into forest_remap
  // when the reorder wrapper mapped endpoints back to original ids.
  std::span<const graph::edge> last_forest;
  std::vector<graph::edge> forest_remap;

  // Locality-relabeling state for the reorder wrapper (a pinned
  // cc_options::reorder, or "auto" when select_reorder fires): the
  // permutation, the relabeled CSR's backing vectors, and the staging
  // labels in relabeled id space. Plain vectors so their capacity
  // survives repeated queries.
  std::vector<vertex_id> perm;
  std::vector<vertex_id> inv;
  std::vector<vertex_id> staged_labels;
  std::vector<edge_id> reorder_offsets;
  std::vector<vertex_id> reorder_edges;

  // Optional pre-sizing for a graph with n vertices / m directed edges;
  // everything self-sizes from the first run's high-water mark regardless.
  void reserve(size_t n, size_t m);
};

struct algorithm {
  const char* name;
  const char* description;
  // Labels are each component's minimum vertex id — identical across
  // schedules, backends and worker counts. decomp-* labels are
  // schedule-independent representatives instead (PR 4's guarantee), but
  // not minima; either way reruns reproduce exactly.
  bool canonical_labels;
  bool uses_seed;         // consumes opt.seed
  bool workspace_backed;  // allocation-free through algo_workspace after warm-up
  // Also publishes a spanning forest into algo_workspace::last_forest;
  // run_reordered maps its endpoints back to original ids alongside the
  // labels, so --reorder works uniformly for forest producers.
  bool produces_forest;
  void (*run)(const graph::graph& g, const cc_options& opt,
              algo_workspace& ws, std::span<vertex_id> labels_out,
              cc_stats* stats);
};

// Every registered algorithm; "auto" first, then the fixed algorithms in
// listing order.
std::span<const algorithm> algorithms();

// nullptr if `name` is not registered.
const algorithm* find_algorithm(std::string_view name);

// Resolve options to a runnable entry: "auto" and registered names map
// directly; "decomp" maps to the decomp-* entry for opt.variant. Throws
// std::invalid_argument (message names the offender) on unknown names.
const algorithm& resolve_algorithm(const cc_options& opt);

// Run a registered algorithm into caller storage (labels_out must have
// g.num_vertices() elements) and record stats->algorithm.
void run_algorithm(const algorithm& algo, const graph::graph& g,
                   const cc_options& opt, algo_workspace& ws,
                   std::span<vertex_id> labels_out, cc_stats* stats = nullptr);

// Multi-line "name  description" listing for CLIs and error messages.
std::string algorithm_listing();

}  // namespace pcc::cc
