// Decomp-Arb-Hybrid: Decomp-Arb with direction-optimizing traversal
// (Beamer et al.; Ligra-style), as described in Section 4 of the paper.
//
// When the frontier holds more than `dense_threshold` of the vertices the
// round switches to a read-based computation: every unvisited vertex scans
// its neighbours and adopts the cluster of the first one it finds on the
// frontier, then exits the scan early. The read direction is more
// cache-friendly and needs no atomics, but it leaves edge statuses
// undetermined, so a post-processing pass (filterEdges) resolves the edges
// of every vertex that was never processed in a write-based round. Edges
// relabeled on the fly during write-based rounds carry a sign-bit mark so
// filterEdges does not touch them again.
//
// Dense rounds iterate a *shrinking* unvisited list instead of rescanning
// all n vertices every round, and test frontier membership against a
// bit-packed frontier (n/8 bytes, cache-resident for the graphs the paper
// measures) instead of a byte flag per vertex. Write-based rounds and
// filterEdges are edge-balanced via frontier_edge_for, so hub vertices are
// split across chunks and the next frontier is emitted without a shared
// cursor.

#include "core/ldd.hpp"
#include "core/ldd_internal.hpp"
#include "parallel/atomics.hpp"
#include "parallel/emit.hpp"

namespace pcc::ldd {

namespace {
using parallel::atomic_load;
using parallel::cas;
using parallel::parallel_for;
using parallel::timer;
}  // namespace

decomp_info decomp_arb_hybrid_into(work_graph& wg, const options& opt,
                                   std::span<vertex_id> cluster,
                                   parallel::workspace& ws,
                                   parallel::phase_timer* pt) {
  const size_t n = wg.n;
  decomp_info res;
  if (n == 0) return res;
  std::span<const edge_id> V = wg.offsets;
  std::span<vertex_id> E = wg.edges;
  std::span<vertex_id> D = wg.degrees;
  std::span<vertex_id> C = cluster;
  parallel_for(0, n, [&](size_t v) { C[v] = kNoVertex; });

  timer t;
  parallel::workspace::scope outer(ws);
  internal::shift_schedule schedule(n, opt, ws);
  std::span<vertex_id> frontier = ws.take<vertex_id>(n);
  std::span<vertex_id> next = ws.take<vertex_id>(n);
  size_t frontier_size = 0;
  // resolved[v]: v's adjacency prefix was compacted/relabeled by a
  // write-based round; unresolved vertices go through filterEdges.
  std::span<uint8_t> resolved = ws.take_zeroed<uint8_t>(n);
  // Bit-packed frontier membership for the dense (pull) rounds.
  const size_t num_words = (n + 63) / 64;
  std::span<uint64_t> on_frontier = ws.take<uint64_t>(num_words);
  // Shrinking list of still-unvisited vertices, maintained lazily: built at
  // the first dense round, compacted (pure two-pass, so the order stays
  // ascending) at each one after that.
  std::span<vertex_id> unvisited = ws.take<vertex_id>(n);
  std::span<vertex_id> unvisited_next = ws.take<vertex_id>(n);
  size_t unvisited_size = 0;
  bool have_unvisited = false;
  const size_t dense_cutoff = static_cast<size_t>(
      opt.dense_threshold * static_cast<double>(n));
  if (pt != nullptr) pt->add("init", t.lap());

  size_t num_visited = 0;
  size_t round = 0;
  while (num_visited < n) {
    t.start();
    const size_t added = internal::add_new_centers(
        schedule, round, frontier, frontier_size, ws,
        [&](vertex_id v) { return C[v] == kNoVertex; },
        [&](vertex_id v) { C[v] = v; });
    res.num_clusters += added;
    frontier_size += added;
    num_visited += frontier_size;
    if (pt != nullptr) pt->add("bfsPre", t.lap());

    if (frontier_size > dense_cutoff) {
      // Read-based (dense) round.
      ++res.num_dense_rounds;
      // Refresh the unvisited list: drop everything claimed since the last
      // dense round (sparse-round claims, new centers). C is stable here,
      // so the pure two-pass emission is safe and keeps ascending order.
      if (!have_unvisited) {
        unvisited_size = parallel::count_then_emit<vertex_id>(
            n, unvisited, ws, [&](size_t v, auto& em) {
              if (C[v] == kNoVertex) em(static_cast<vertex_id>(v));
            });
        have_unvisited = true;
      } else {
        unvisited_size = parallel::count_then_emit<vertex_id>(
            unvisited_size, unvisited_next, ws, [&](size_t i, auto& em) {
              const vertex_id v = unvisited[i];
              if (C[v] == kNoVertex) em(v);
            });
        std::swap(unvisited, unvisited_next);
      }
      // Publish the frontier as a bitmap: zero n/8 bytes, then set one bit
      // per member (atomic OR — distinct members can share a word).
      parallel_for(0, num_words, [&](size_t w) {
        on_frontier[w] = 0;  // lint: private-write(iteration w owns word w)
      });
      parallel_for(0, frontier_size, [&](size_t i) {
        const vertex_id v = frontier[i];
        parallel::fetch_or(&on_frontier[v >> 6], uint64_t{1} << (v & 63));
      });
      // Pull: only the still-unvisited vertices scan for a frontier
      // neighbour (the early exit keeps hub scans short, so this loop
      // stays at vertex granularity).
      parallel_for(0, unvisited_size, [&](size_t i) {
        const vertex_id v = unvisited[i];
        const edge_id start = V[v];
        const vertex_id deg = D[v];
        for (vertex_id j = 0; j < deg; ++j) {
          const vertex_id u = E[start + j];
          if ((on_frontier[u >> 6] >> (u & 63)) & 1) {
            // C[u] is stable: frontier labels were fixed before this phase.
            // lint: private-write(unvisited holds distinct vertex ids)
            C[v] = C[u];
            break;  // direction-optimization early exit
          }
        }
      });
      // The claimed members of the list are the next frontier; the rest
      // stay unvisited. Both passes are pure reads of C.
      const size_t gathered = parallel::count_then_emit<vertex_id>(
          unvisited_size, next, ws, [&](size_t i, auto& em) {
            const vertex_id v = unvisited[i];
            if (C[v] != kNoVertex) em(v);
          });
      unvisited_size = parallel::count_then_emit<vertex_id>(
          unvisited_size, unvisited_next, ws, [&](size_t i, auto& em) {
            const vertex_id v = unvisited[i];
            if (C[v] == kNoVertex) em(v);
          });
      std::swap(unvisited, unvisited_next);
      std::swap(frontier, next);
      frontier_size = gathered;
      if (pt != nullptr) pt->add("bfsDense", t.lap());
    } else {
      // Write-based (sparse) round: identical to Decomp-Arb, except kept
      // edges carry the mark bit recording "already relabeled".
      parallel::workspace::scope round_scope(ws);
      const parallel::frontier_result run =
          parallel::frontier_edge_for<vertex_id>(
              frontier_size, [&](size_t fi) { return D[frontier[fi]]; }, next,
              ws,
              [&](size_t fi, uint32_t jlo, uint32_t jhi, uint32_t deg,
                  parallel::emitter<vertex_id>& em) -> uint32_t {
                const vertex_id v = frontier[fi];
                // Local raw pointers: the CAS is a compiler barrier that
                // forces captured spans to be re-read every edge; a
                // non-escaping local stays in a register across it.
                vertex_id* const cl = C.data();
                vertex_id* const ed = E.data();
                const vertex_id my_label = cl[v];
                const edge_id start = V[v];
                uint32_t k = jlo;
                for (uint32_t i = jlo; i < jhi; ++i) {
                  const vertex_id w = ed[start + i];
                  if (atomic_load(&cl[w]) == kNoVertex &&
                      cas(&cl[w], kNoVertex, my_label)) {
                    em(w);
                  } else {
                    const vertex_id w_label = atomic_load(&cl[w]);
                    if (w_label != my_label) {
                      // lint: private-write(piece owns slots [jlo, jhi) of v)
                      ed[start + k] = internal::mark_edge(w_label);
                      ++k;
                    }
                  }
                }
                if (jlo == 0 && jhi == deg) {
                  // lint: private-write(whole-vertex piece: sole writer)
                  D[v] = k;
                  resolved[v] = 1;  // lint: private-write(same owner)
                }
                return k - jlo;
              });
      parallel::fix_split_pieces(
          run.partials,
          [&](uint32_t fi, uint32_t dst, uint32_t src, uint32_t len) {
            const edge_id start = V[frontier[fi]];
            // lint: private-write(leader task owns entry fi's CSR slice)
            std::copy(E.begin() + start + src, E.begin() + start + src + len,
                      E.begin() + start + dst);
          },
          [&](uint32_t fi, uint32_t kept) {
            const vertex_id v = frontier[fi];
            // lint: private-write(one leader task per split vertex)
            D[v] = kept;
            resolved[v] = 1;  // lint: private-write(same owner invariant)
          });
      std::swap(frontier, next);
      frontier_size = run.emitted;
      if (pt != nullptr) pt->add("bfsSparse", t.lap());
    }
    ++round;
  }

  // filterEdges: resolve the adjacency of every vertex that was never
  // processed write-based (it was visited in a dense round, or its round's
  // write pass was skipped entirely), then clear the mark bits everywhere.
  // Edge-balanced like the rounds themselves: an unresolved hub's scan is
  // split across chunks instead of serializing the pass.
  t.start();
  {
    parallel::workspace::scope filter_scope(ws);
    const parallel::frontier_result run = parallel::frontier_edge_for(
        n, [&](size_t v) { return D[v]; }, ws,
        [&](size_t vi, uint32_t jlo, uint32_t jhi, uint32_t deg) -> uint32_t {
          const vertex_id v = static_cast<vertex_id>(vi);
          const edge_id start = V[v];
          if (resolved[v]) {
            for (uint32_t i = jlo; i < jhi; ++i) {
              // lint: private-write(piece owns slots [jlo, jhi) of v)
              E[start + i] = internal::unmark_edge(E[start + i]);
            }
            // "Kept" the whole piece: fix_split_pieces then never moves
            // slots of a resolved vertex and republishes D[v] unchanged.
            return jhi - jlo;
          }
          const vertex_id my_label = C[v];
          uint32_t k = jlo;
          for (uint32_t i = jlo; i < jhi; ++i) {
            const vertex_id w = E[start + i];  // raw target: never relabeled
            const vertex_id w_label = C[w];
            if (w_label != my_label) {
              // lint: private-write(piece owns slots [jlo, jhi) of v)
              E[start + k] = w_label;
              ++k;
            }
          }
          if (jlo == 0 && jhi == deg) {
            // lint: private-write(whole-vertex piece: sole writer of D[v])
            D[v] = k;
          }
          return k - jlo;
        });
    parallel::fix_split_pieces(
        run.partials,
        [&](uint32_t vi, uint32_t dst, uint32_t src, uint32_t len) {
          const edge_id start = V[vi];
          // lint: private-write(leader task owns entry vi's CSR slice)
          std::copy(E.begin() + start + src, E.begin() + start + src + len,
                    E.begin() + start + dst);
        },
        [&](uint32_t vi, uint32_t kept) {
          // lint: private-write(one leader task per split vertex)
          D[vi] = kept;
        });
  }
  if (pt != nullptr) pt->add("filterEdges", t.lap());

  res.num_rounds = round;
  res.edges_kept = parallel::reduce_sum_ws<size_t>(
      n, [&](size_t v) { return D[v]; }, ws);
  return res;
}

result decomp_arb_hybrid(work_graph& wg, const options& opt,
                         parallel::phase_timer* pt) {
  std::vector<vertex_id> cluster(wg.n);
  parallel::workspace ws;
  const decomp_info info = decomp_arb_hybrid_into(wg, opt, cluster, ws, pt);
  return internal::to_result(std::move(cluster), info);
}

result decompose_arb_hybrid(const graph::graph& g, const options& opt) {
  work_graph wg = work_graph::from(g);
  return decomp_arb_hybrid(wg, opt, nullptr);
}

}  // namespace pcc::ldd
