// Decomp-Arb-Hybrid: Decomp-Arb with direction-optimizing traversal
// (Beamer et al.; Ligra-style), as described in Section 4 of the paper.
//
// When the frontier holds more than `dense_threshold` of the vertices the
// round switches to a read-based computation: every unvisited vertex scans
// its neighbours and adopts the cluster of the first one it finds on the
// frontier, then exits the scan early. The read direction is more
// cache-friendly and needs no atomics, but it leaves edge statuses
// undetermined, so a post-processing pass (filterEdges) resolves the edges
// of every vertex that was never processed in a write-based round. Edges
// relabeled on the fly during write-based rounds carry a sign-bit mark so
// filterEdges does not touch them again.

#include "core/ldd.hpp"
#include "core/ldd_internal.hpp"
#include "parallel/atomics.hpp"

namespace pcc::ldd {

namespace {
using parallel::atomic_load;
using parallel::cas;
using parallel::fetch_add;
using parallel::parallel_for;
using parallel::timer;
}  // namespace

decomp_info decomp_arb_hybrid_into(work_graph& wg, const options& opt,
                                   std::span<vertex_id> cluster,
                                   parallel::workspace& ws,
                                   parallel::phase_timer* pt) {
  const size_t n = wg.n;
  decomp_info res;
  if (n == 0) return res;
  std::span<const edge_id> V = wg.offsets;
  std::span<vertex_id> E = wg.edges;
  std::span<vertex_id> D = wg.degrees;
  std::span<vertex_id> C = cluster;
  parallel_for(0, n, [&](size_t v) { C[v] = kNoVertex; });

  timer t;
  parallel::workspace::scope outer(ws);
  internal::shift_schedule schedule(n, opt, ws);
  std::span<vertex_id> frontier = ws.take<vertex_id>(n);
  std::span<vertex_id> next = ws.take<vertex_id>(n);
  size_t frontier_size = 0;
  // resolved[v]: v's adjacency prefix was compacted/relabeled by a
  // write-based round; unresolved vertices go through filterEdges.
  std::span<uint8_t> resolved = ws.take_zeroed<uint8_t>(n);
  std::span<uint8_t> on_frontier = ws.take_zeroed<uint8_t>(n);
  std::span<uint8_t> next_flags = ws.take_zeroed<uint8_t>(n);
  const size_t dense_cutoff = static_cast<size_t>(
      opt.dense_threshold * static_cast<double>(n));
  if (pt != nullptr) pt->add("init", t.lap());

  size_t num_visited = 0;
  size_t round = 0;
  while (num_visited < n) {
    t.start();
    const size_t added = internal::add_new_centers(
        schedule, round, frontier, frontier_size, ws,
        [&](vertex_id v) { return C[v] == kNoVertex; },
        [&](vertex_id v) { C[v] = v; });
    res.num_clusters += added;
    frontier_size += added;
    num_visited += frontier_size;
    if (pt != nullptr) pt->add("bfsPre", t.lap());

    if (frontier_size > dense_cutoff) {
      // Read-based (dense) round.
      ++res.num_dense_rounds;
      parallel_for(0, frontier_size, [&](size_t i) {
        // lint: private-write(frontier holds distinct vertex ids)
        on_frontier[frontier[i]] = 1;
      });
      parallel_for(0, n, [&](size_t vi) {
        const vertex_id v = static_cast<vertex_id>(vi);
        if (C[v] != kNoVertex) return;
        const edge_id start = V[v];
        const vertex_id deg = D[v];
        for (vertex_id i = 0; i < deg; ++i) {
          const vertex_id u = E[start + i];
          if (on_frontier[u]) {
            // C[u] is stable: frontier labels were fixed before this phase.
            // lint: private-write(v == vi, only iteration vi writes C[v])
            C[v] = C[u];
            next_flags[v] = 1;  // lint: private-write(same owner invariant)
            break;  // direction-optimization early exit
          }
        }
      });
      // Gather the next frontier and reset the scratch flag arrays by
      // touching only the entries that were set.
      parallel_for(0, frontier_size, [&](size_t i) {
        // lint: private-write(frontier holds distinct vertex ids)
        on_frontier[frontier[i]] = 0;
      });
      const size_t gathered = parallel::pack_index_span<vertex_id>(
          n, [&](size_t v) { return next_flags[v] != 0; }, next, ws);
      parallel_for(0, gathered, [&](size_t i) {
        // lint: private-write(next holds distinct vertex ids)
        next_flags[next[i]] = 0;
      });
      std::swap(frontier, next);
      frontier_size = gathered;
      if (pt != nullptr) pt->add("bfsDense", t.lap());
    } else {
      // Write-based (sparse) round: identical to Decomp-Arb, except kept
      // edges carry the mark bit recording "already relabeled".
      size_t next_size = 0;
      parallel_for(0, frontier_size, [&](size_t fi) {
        const vertex_id v = frontier[fi];
        const vertex_id my_label = C[v];
        const edge_id start = V[v];
        vertex_id k = 0;
        const vertex_id deg = D[v];
        for (vertex_id i = 0; i < deg; ++i) {
          const vertex_id w = E[start + i];
          if (atomic_load(&C[w]) == kNoVertex &&
              cas(&C[w], kNoVertex, my_label)) {
            next[fetch_add<size_t>(&next_size, 1)] = w;
          } else {
            const vertex_id w_label = atomic_load(&C[w]);
            if (w_label != my_label) {
              // lint: private-write(v owns its CSR slice [start, start+deg))
              E[start + k] = internal::mark_edge(w_label);
              ++k;
            }
          }
        }
        D[v] = k;  // lint: private-write(frontier holds distinct vertices)
        resolved[v] = 1;  // lint: private-write(same owner invariant)
      });
      std::swap(frontier, next);
      frontier_size = next_size;
      if (pt != nullptr) pt->add("bfsSparse", t.lap());
    }
    ++round;
  }

  // filterEdges: resolve the adjacency of every vertex that was never
  // processed write-based (it was visited in a dense round, or its round's
  // write pass was skipped entirely), then clear the mark bits everywhere.
  t.start();
  parallel_for(0, n, [&](size_t vi) {
    const vertex_id v = static_cast<vertex_id>(vi);
    const edge_id start = V[v];
    if (!resolved[v]) {
      const vertex_id my_label = C[v];
      vertex_id k = 0;
      const vertex_id deg = D[v];
      for (vertex_id i = 0; i < deg; ++i) {
        const vertex_id w = E[start + i];  // raw target: never relabeled
        const vertex_id w_label = C[w];
        if (w_label != my_label) {
          // lint: private-write(v owns its CSR slice [start, start+deg))
          E[start + k] = w_label;
          ++k;
        }
      }
      D[v] = k;  // lint: private-write(v == vi: one writer per slot)
    } else {
      for (vertex_id i = 0; i < D[v]; ++i) {
        // lint: private-write(v owns its CSR slice [start, start+deg))
        E[start + i] = internal::unmark_edge(E[start + i]);
      }
    }
  });
  if (pt != nullptr) pt->add("filterEdges", t.lap());

  res.num_rounds = round;
  res.edges_kept = parallel::reduce_sum_ws<size_t>(
      n, [&](size_t v) { return D[v]; }, ws);
  return res;
}

result decomp_arb_hybrid(work_graph& wg, const options& opt,
                         parallel::phase_timer* pt) {
  std::vector<vertex_id> cluster(wg.n);
  parallel::workspace ws;
  const decomp_info info = decomp_arb_hybrid_into(wg, opt, cluster, ws, pt);
  return internal::to_result(std::move(cluster), info);
}

result decompose_arb_hybrid(const graph::graph& g, const options& opt) {
  work_graph wg = work_graph::from(g);
  return decomp_arb_hybrid(wg, opt, nullptr);
}

}  // namespace pcc::ldd
