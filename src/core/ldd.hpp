// Low-diameter decomposition (LDD) — the paper's core subroutine.
//
// Public API for the three decomposition variants of Section 4:
//   decomp_min        — Algorithm 2, the faithful Miller-Peng-Xu
//                       decomposition: writeMin on (fractional-shift,
//                       center) pairs, two phases per BFS frontier.
//   decomp_arb        — Algorithm 3, ties broken arbitrarily: one CAS
//                       phase per frontier (Theorem 2: <= 2*beta*m
//                       inter-cluster edges in expectation).
//   decomp_arb_hybrid — decomp_arb with direction-optimizing (read-based)
//                       traversal on dense frontiers plus a post-pass
//                       (filterEdges) that resolves edge statuses.
//
// All variants run on a `work_graph`: a mutable copy of the edge array plus
// per-vertex degrees, so intra-cluster edges can be deleted in place by
// compacting each vertex's adjacency prefix — exactly the paper's scheme.
// On return, for every vertex v the first degrees[v] entries of its
// adjacency hold its inter-cluster edges with targets already relabeled to
// the target's cluster id.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "parallel/arena.hpp"
#include "parallel/timer.hpp"

namespace pcc::ldd {

// How vertices acquire their start times (shift values).
enum class shift_mode {
  // Paper default: random permutation; round t makes centers out of the
  // first ceil(e^{beta*t}) permutation entries not yet visited.
  kPermutationChunks,
  // Ablation: exact Exp(beta) shifts; round t starts the unvisited
  // vertices with floor(shift) == t.
  kExponentialShifts,
};

struct options {
  // Decomposition parameter: cluster radius O(log n / beta), expected
  // inter-cluster edge fraction beta (2*beta for the Arb variants).
  double beta = 0.2;
  shift_mode shifts = shift_mode::kPermutationChunks;
  uint64_t seed = 42;
  // decomp_arb_hybrid switches to the read-based (dense) traversal when the
  // frontier holds more than this fraction of the vertices (paper: 20%).
  double dense_threshold = 0.2;
  // Historical (retained for API compatibility, now ignored): the
  // Section-4 per-hub edge-parallel path. Every round is now edge-balanced
  // unconditionally — frontier_edge_for (parallel/emit.hpp) partitions the
  // flattened edge space into near-equal chunks, so hubs are split across
  // workers at every degree, which subsumes this threshold.
  size_t parallel_edge_threshold = SIZE_MAX;
};

struct result {
  // cluster[v] = id of v's cluster = the vertex id of its BFS center.
  std::vector<vertex_id> cluster;
  size_t num_clusters = 0;
  // BFS rounds executed (bounded by O(log n / beta) w.h.p.).
  size_t num_rounds = 0;
  // Rounds run with the read-based traversal (hybrid only).
  size_t num_dense_rounds = 0;
  // Directed inter-cluster edges kept (sum of post-run degrees).
  size_t edges_kept = 0;
};

// Mutable view of a graph consumed by a decomposition. The spans either
// borrow caller-managed storage (workspace arenas — see `over`) or point
// into the private owning vectors filled by `from`. Move-only: copying
// would leave the spans of the copy aliasing the original's storage.
struct work_graph {
  size_t n = 0;
  std::span<const edge_id> offsets;  // size n+1
  std::span<vertex_id> edges;        // mutable; live prefixes compacted
  std::span<vertex_id> degrees;      // mutable, size n

  work_graph() = default;
  work_graph(work_graph&&) = default;
  work_graph& operator=(work_graph&&) = default;
  work_graph(const work_graph&) = delete;
  work_graph& operator=(const work_graph&) = delete;

  // Owning factory: copies g's edge array and computes degrees into
  // internal storage; `offsets` borrows g's offset array.
  static work_graph from(const graph::graph& g);

  // Non-owning view over caller-managed storage (the engine's arenas).
  static work_graph over(size_t n, std::span<const edge_id> offsets,
                         std::span<vertex_id> edges,
                         std::span<vertex_id> degrees);

 private:
  std::vector<vertex_id> edge_store_;
  std::vector<vertex_id> degree_store_;
};

// Scalar outputs of a decomposition — everything in `result` except the
// cluster array, which the span-based `_into` variants write into caller
// storage instead of allocating.
struct decomp_info {
  size_t num_clusters = 0;
  size_t num_rounds = 0;
  size_t num_dense_rounds = 0;
  size_t edges_kept = 0;
};

// The three decomposition variants. `pt` (optional) accumulates per-phase
// times under the names used by Figures 5-7: "init", "bfsPre", "bfsPhase1",
// "bfsPhase2" (min); "bfsMain" (arb); "bfsSparse", "bfsDense",
// "filterEdges" (hybrid).
result decomp_min(work_graph& wg, const options& opt,
                  parallel::phase_timer* pt = nullptr);
result decomp_arb(work_graph& wg, const options& opt,
                  parallel::phase_timer* pt = nullptr);
result decomp_arb_hybrid(work_graph& wg, const options& opt,
                         parallel::phase_timer* pt = nullptr);

// Workspace-backed cores of the three variants: `cluster` (size wg.n) is
// caller storage for the labeling and every transient — shift schedule,
// frontiers, flag arrays — is carved from `ws` and rewound before
// returning. The vector-returning functions above are thin wrappers.
decomp_info decomp_min_into(work_graph& wg, const options& opt,
                            std::span<vertex_id> cluster,
                            parallel::workspace& ws,
                            parallel::phase_timer* pt = nullptr);
decomp_info decomp_arb_into(work_graph& wg, const options& opt,
                            std::span<vertex_id> cluster,
                            parallel::workspace& ws,
                            parallel::phase_timer* pt = nullptr);
decomp_info decomp_arb_hybrid_into(work_graph& wg, const options& opt,
                                   std::span<vertex_id> cluster,
                                   parallel::workspace& ws,
                                   parallel::phase_timer* pt = nullptr);

// Non-destructive convenience wrappers: copy the graph's edges into a
// work_graph, run the variant, and return only the clustering.
result decompose_min(const graph::graph& g, const options& opt = {});
result decompose_arb(const graph::graph& g, const options& opt = {});
result decompose_arb_hybrid(const graph::graph& g, const options& opt = {});

// --- Decomposition quality checks (tests + decomposition_demo example). ---

struct decomposition_quality {
  size_t num_clusters = 0;
  // Every cluster induced-connected and every vertex labeled with a center
  // whose cluster[center] == center.
  bool well_formed = false;
  // Largest shortest-path diameter among clusters (exact BFS per cluster;
  // O(n * cluster_size) — test-scale only).
  size_t max_cluster_diameter = 0;
  // Inter-cluster directed edges / total directed edges, measured on the
  // ORIGINAL graph.
  double inter_cluster_fraction = 0.0;
  size_t inter_cluster_edges = 0;
};

decomposition_quality check_decomposition(const graph::graph& g,
                                          const std::vector<vertex_id>& cluster);

}  // namespace pcc::ldd
