// ThreadSanitizer stress battery. Built ONLY under PCC_SANITIZE=thread
// (see tests/CMakeLists.txt): the point is not extra correctness coverage
// but driving every cross-thread access pattern — CAS claim frontiers,
// pair writeMin, write_once flags, fetch_add scatters, the hash table, and
// both scheduler backends — under TSan with maximum interleaving, with an
// EMPTY suppression file.
//
// Keep the graphs small: TSan slows execution ~5-15x and serializes
// memory; the races it hunts are about interleavings, not scale, so many
// repetitions of small rounds beat one big run.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace pcc {
namespace {

using cc::cc_options;
using cc::connected_components;
using cc::decomp_variant;

std::vector<graph::graph> stress_graphs() {
  std::vector<graph::graph> graphs;
  graphs.push_back(graph::random_graph(4000, 4, 42));
  graphs.push_back(graph::star_graph(4000));  // one max-contention hub
  graphs.push_back(graph::line_graph(2000));  // chain: many BFS rounds
  graphs.push_back(graph::cliques_with_bridges(20, 12));
  return graphs;
}

class TsanBackends
    : public ::testing::TestWithParam<pcc::parallel::backend> {};

TEST_P(TsanBackends, DecompositionsUnderContention) {
  parallel::scoped_backend bk(GetParam());
  parallel::scoped_workers workers(8);
  for (const auto& g : stress_graphs()) {
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      ldd::options opt;
      opt.beta = 0.2;
      opt.seed = seed;
      const auto rmin = ldd::decompose_min(g, opt);
      EXPECT_TRUE(ldd::check_decomposition(g, rmin.cluster).well_formed);
      const auto rarb = ldd::decompose_arb(g, opt);
      EXPECT_TRUE(ldd::check_decomposition(g, rarb.cluster).well_formed);
      const auto rhyb = ldd::decompose_arb_hybrid(g, opt);
      EXPECT_TRUE(ldd::check_decomposition(g, rhyb.cluster).well_formed);
    }
  }
}

TEST_P(TsanBackends, FullPipelineRepeated) {
  parallel::scoped_backend bk(GetParam());
  parallel::scoped_workers workers(8);
  for (const auto& g : stress_graphs()) {
    const auto reference = baselines::serial_sf_components(g);
    for (auto v : {decomp_variant::kMin, decomp_variant::kArb,
                   decomp_variant::kArbHybrid}) {
      cc_options opt;
      opt.algorithm = "decomp";
      opt.variant = v;
      for (uint64_t seed = 1; seed <= 2; ++seed) {
        opt.seed = seed;
        const auto labels = connected_components(g, opt);
        ASSERT_TRUE(baselines::labels_equivalent(reference, labels))
            << cc::variant_name(v) << " seed=" << seed;
      }
    }
  }
}

TEST_P(TsanBackends, EngineReuseRepeated) {
  // The engine reuses arena memory across runs — a missing barrier between
  // a level's producers and the next run's consumers shows up here.
  parallel::scoped_backend bk(GetParam());
  parallel::scoped_workers workers(8);
  cc::cc_engine engine;
  for (int rep = 0; rep < 3; ++rep) {
    for (const auto& g : stress_graphs()) {
      const auto labels = engine.run(g);
      ASSERT_TRUE(baselines::is_valid_components_labeling(
          g, std::vector<vertex_id>(labels.begin(), labels.end())));
    }
  }
}

TEST_P(TsanBackends, ParallelBaselinesUnderContention) {
  parallel::scoped_backend bk(GetParam());
  parallel::scoped_workers workers(8);
  const graph::graph g = graph::cliques_with_bridges(16, 10);
  const auto reference = baselines::serial_sf_components(g);
  for (int rep = 0; rep < 3; ++rep) {
    ASSERT_TRUE(baselines::labels_equivalent(
        reference, baselines::shiloach_vishkin_components(g)));
    ASSERT_TRUE(baselines::labels_equivalent(
        reference, baselines::awerbuch_shiloach_components(g)));
    ASSERT_TRUE(baselines::labels_equivalent(
        reference, baselines::random_mate_components(g, rep)));
    ASSERT_TRUE(baselines::labels_equivalent(
        reference, baselines::multistep_components(g)));
    ASSERT_TRUE(baselines::labels_equivalent(
        reference, baselines::parallel_sf_pbbs_components(g)));
    ASSERT_TRUE(baselines::labels_equivalent(
        reference, baselines::parallel_sf_prm_components(g)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, TsanBackends,
    ::testing::Values(pcc::parallel::backend::kOpenMP,
                      pcc::parallel::backend::kThreadPool),
    [](const ::testing::TestParamInfo<pcc::parallel::backend>& info) {
      return info.param == pcc::parallel::backend::kOpenMP ? "OpenMP"
                                                           : "ThreadPool";
    });

}  // namespace
}  // namespace pcc
