// CAS / writeMin / writeMax / fetch_add semantics, sequential and under
// real contention.

#include <gtest/gtest.h>

#include <vector>

#include "parallel/atomics.hpp"
#include "parallel/random.hpp"
#include "parallel/scheduler.hpp"

namespace pcc::parallel {
namespace {

TEST(Cas, SucceedsOnMatchFailsOnMismatch) {
  int x = 5;
  EXPECT_TRUE(cas(&x, 5, 7));
  EXPECT_EQ(x, 7);
  EXPECT_FALSE(cas(&x, 5, 9));
  EXPECT_EQ(x, 7);
}

TEST(Cas, WorksOnUint64) {
  uint64_t x = ~uint64_t{0};
  EXPECT_TRUE(cas(&x, ~uint64_t{0}, uint64_t{1}));
  EXPECT_EQ(x, 1u);
}

TEST(WriteMin, UpdatesOnlyWhenSmaller) {
  int x = 10;
  EXPECT_TRUE(write_min(&x, 3));
  EXPECT_EQ(x, 3);
  EXPECT_FALSE(write_min(&x, 5));
  EXPECT_EQ(x, 3);
  EXPECT_FALSE(write_min(&x, 3));  // equal: no change
  EXPECT_EQ(x, 3);
}

TEST(WriteMin, CustomComparatorGivesWriteMaxBehaviour) {
  int x = 2;
  EXPECT_TRUE(write_min(&x, 9, std::greater<int>()));
  EXPECT_EQ(x, 9);
}

TEST(WriteMax, UpdatesOnlyWhenLarger) {
  int x = 10;
  EXPECT_TRUE(write_max(&x, 30));
  EXPECT_EQ(x, 30);
  EXPECT_FALSE(write_max(&x, 20));
  EXPECT_EQ(x, 30);
}

TEST(FetchAdd, ReturnsPrevious) {
  size_t x = 100;
  EXPECT_EQ(fetch_add<size_t>(&x, 5), 100u);
  EXPECT_EQ(x, 105u);
}

TEST(WriteMin, ConcurrentWritersProduceGlobalMinimum) {
  // Many parallel writers race on a few cells; each cell must end with the
  // exact minimum of the values written to it.
  constexpr size_t kCells = 16;
  constexpr size_t kWriters = 100000;
  std::vector<uint64_t> cells(kCells, ~uint64_t{0});
  std::vector<uint64_t> expected(kCells, ~uint64_t{0});
  std::vector<uint64_t> values(kWriters);
  for (size_t i = 0; i < kWriters; ++i) {
    values[i] = hash64(i);
    expected[i % kCells] = std::min(expected[i % kCells], values[i]);
  }
  parallel_for(0, kWriters, [&](size_t i) {
    write_min(&cells[i % kCells], values[i]);
  }, 64);
  EXPECT_EQ(cells, expected);
}

TEST(FetchAdd, ConcurrentCountsExactly) {
  size_t counter = 0;
  parallel_for(0, 50000, [&](size_t) { fetch_add<size_t>(&counter, 1); }, 64);
  EXPECT_EQ(counter, 50000u);
}

TEST(Cas, ConcurrentClaimGrantsExactlyOneWinner) {
  // All threads race to claim each slot; exactly one claim per slot wins.
  constexpr size_t kSlots = 1000;
  std::vector<uint32_t> slots(kSlots, ~0u);
  size_t wins = 0;
  parallel_for(0, kSlots * 8, [&](size_t i) {
    if (cas(&slots[i % kSlots], ~0u, static_cast<uint32_t>(i))) {
      fetch_add<size_t>(&wins, 1);
    }
  }, 16);
  EXPECT_EQ(wins, kSlots);
  for (uint32_t s : slots) EXPECT_NE(s, ~0u);
}

TEST(PackedPair, RoundTripAndOrdering) {
  const packed_pair p = pack_pair(7, 42);
  EXPECT_EQ(pair_first(p), 7u);
  EXPECT_EQ(pair_second(p), 42u);
  // Lexicographic by (first, second): exactly the writeMin order the
  // Decomp-Min pair update needs.
  EXPECT_LT(pack_pair(1, 100), pack_pair(2, 0));
  EXPECT_LT(pack_pair(1, 5), pack_pair(1, 6));
}

TEST(PackedPair, WriteMinResolvesByFractionThenLabel) {
  packed_pair c = pack_pair(~0u, ~0u);
  write_min(&c, pack_pair(10, 3));
  write_min(&c, pack_pair(4, 9));
  write_min(&c, pack_pair(4, 2));  // tie on fraction: smaller label wins
  write_min(&c, pack_pair(7, 1));
  EXPECT_EQ(pair_first(c), 4u);
  EXPECT_EQ(pair_second(c), 2u);
}

}  // namespace
}  // namespace pcc::parallel
