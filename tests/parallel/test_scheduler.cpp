// Scheduler layer: parallel_for coverage/exactness, nested behaviour,
// par_do fork-join, worker-count control, and timers.

#include <gtest/gtest.h>

#include <vector>

#include "parallel/atomics.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/timer.hpp"

namespace pcc::parallel {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (size_t n : {size_t{0}, size_t{1}, size_t{100}, size_t{100000}}) {
    std::vector<uint32_t> hits(n, 0);
    parallel_for(0, n, [&](size_t i) { fetch_add<uint32_t>(&hits[i], 1); }, 128);
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1u) << i;
  }
}

TEST(ParallelFor, RespectsRangeBounds) {
  std::vector<uint32_t> hits(100, 0);
  parallel_for(10, 90, [&](size_t i) { hits[i] = 1; }, 8);
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(hits[i], (i >= 10 && i < 90) ? 1u : 0u);
  }
}

TEST(ParallelFor, EmptyAndReversedRanges) {
  size_t count = 0;
  parallel_for(5, 5, [&](size_t) { ++count; });
  parallel_for(7, 3, [&](size_t) { ++count; });
  EXPECT_EQ(count, 0u);
}

TEST(ParallelFor, NestedLoopsCompleteCorrectly) {
  // Inner loops run (serialized inside the outer region by design) and all
  // work lands exactly once.
  const size_t n = 200;
  std::vector<uint32_t> hits(n * n, 0);
  parallel_for(0, n, [&](size_t i) {
    parallel_for(0, n, [&](size_t j) {
      fetch_add<uint32_t>(&hits[i * n + j], 1);
    }, 16);
  }, 1);
  for (size_t k = 0; k < n * n; ++k) ASSERT_EQ(hits[k], 1u);
}

TEST(ParDo, BothBranchesRun) {
  int a = 0;
  int b = 0;
  par_do([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(ParDo, RecursiveDivideAndConquerSum) {
  // Sum 0..n-1 by binary splitting with par_do.
  const size_t n = 1 << 15;
  std::vector<uint64_t> data(n);
  for (size_t i = 0; i < n; ++i) data[i] = i;
  struct rec {
    static uint64_t sum(const std::vector<uint64_t>& d, size_t lo, size_t hi) {
      if (hi - lo < 1024) {
        uint64_t s = 0;
        for (size_t i = lo; i < hi; ++i) s += d[i];
        return s;
      }
      const size_t mid = lo + (hi - lo) / 2;
      uint64_t left = 0;
      uint64_t right = 0;
      par_do([&] { left = sum(d, lo, mid); }, [&] { right = sum(d, mid, hi); });
      return left + right;
    }
  };
  EXPECT_EQ(rec::sum(data, 0, n), uint64_t{n} * (n - 1) / 2);
}

TEST(Workers, WorkerIdsAreInRangeAndStable) {
  // worker_id() must return a stable id in [0, num_workers()) on both
  // backends — code that partitions per-worker scratch relies on it.
  for (backend b : {backend::kOpenMP, backend::kThreadPool}) {
    scoped_backend guard(b);
    const int nw = num_workers();
    const size_t n = 1 << 16;
    std::vector<int> ids(n, -1);
    parallel_for(0, n, [&](size_t i) { ids[i] = worker_id(); }, 64);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_GE(ids[i], 0) << i;
      ASSERT_LT(ids[i], nw) << i;
    }
    // Two calls on the same thread agree (stability within a region).
    parallel_for(0, n, [&](size_t i) {
      const int a = worker_id();
      const int c = worker_id();
      if (a != c) ids[i] = -1;
    }, 64);
    for (size_t i = 0; i < n; ++i) ASSERT_NE(ids[i], -1) << i;
  }
}

TEST(Workers, ScopedOverrideRestores) {
  const int before = num_workers();
  {
    scoped_workers guard(std::max(1, before - 1) + 1);
    EXPECT_EQ(num_workers(), std::max(1, before - 1) + 1);
  }
  EXPECT_EQ(num_workers(), before);
}

TEST(Workers, SetClampsToOne) {
  const int before = num_workers();
  set_num_workers(0);
  EXPECT_GE(num_workers(), 1);
  set_num_workers(before);
}

TEST(Timer, MeasuresElapsedMonotonically) {
  timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double e1 = t.elapsed();
  EXPECT_GE(e1, 0.0);
  const double lap = t.lap();
  EXPECT_GE(lap, e1);
  EXPECT_LT(t.elapsed(), lap + 1.0);  // restarted
}

TEST(PhaseTimer, AccumulatesAndMerges) {
  phase_timer a;
  a.add("x", 1.0);
  a.add("x", 0.5);
  a.add("y", 2.0);
  EXPECT_DOUBLE_EQ(a.get("x"), 1.5);
  EXPECT_DOUBLE_EQ(a.get("z"), 0.0);
  EXPECT_DOUBLE_EQ(a.total(), 3.5);

  phase_timer b;
  b.add("y", 1.0);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.get("y"), 3.0);
  b.clear();
  EXPECT_DOUBLE_EQ(b.total(), 0.0);
}

TEST(ScopedPhase, NullTimerIsNoOp) {
  scoped_phase p(nullptr, "anything");  // must not crash
  phase_timer pt;
  {
    scoped_phase q(&pt, "scoped");
  }
  EXPECT_GE(pt.get("scoped"), 0.0);
  EXPECT_TRUE(pt.phases().contains("scoped"));
}

}  // namespace
}  // namespace pcc::parallel
