// Parallel sequence primitives against sequential oracles, parameterized
// over sizes that cross the grain boundary (serial path, one block, many
// blocks, non-multiple-of-grain remainders).

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "parallel/random.hpp"
#include "parallel/sequence.hpp"

namespace pcc::parallel {
namespace {

class SequenceSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(SequenceSizes, TabulateMatchesFormula) {
  const size_t n = GetParam();
  const auto v = tabulate<uint64_t>(n, [](size_t i) { return 3 * i + 1; });
  ASSERT_EQ(v.size(), n);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(v[i], 3 * i + 1);
}

TEST_P(SequenceSizes, ReduceSumMatchesSequential) {
  const size_t n = GetParam();
  rng gen(n);
  std::vector<uint64_t> data(n);
  uint64_t expected = 0;
  for (size_t i = 0; i < n; ++i) {
    data[i] = gen[i] % 1000;
    expected += data[i];
  }
  EXPECT_EQ(reduce_sum<uint64_t>(n, [&](size_t i) { return data[i]; }),
            expected);
}

TEST_P(SequenceSizes, ReduceMaxMatchesSequential) {
  const size_t n = GetParam();
  rng gen(n + 1);
  std::vector<uint64_t> data(n);
  uint64_t expected = 0;
  for (size_t i = 0; i < n; ++i) {
    data[i] = gen[i];
    expected = std::max(expected, data[i]);
  }
  EXPECT_EQ(reduce_max<uint64_t>(n, [&](size_t i) { return data[i]; }, 0),
            expected);
}

TEST_P(SequenceSizes, ExclusiveScanMatchesSequential) {
  const size_t n = GetParam();
  rng gen(n + 2);
  std::vector<uint64_t> data(n);
  for (size_t i = 0; i < n; ++i) data[i] = gen[i] % 100;

  std::vector<uint64_t> got;
  const uint64_t total =
      scan_exclusive_into(n, [&](size_t i) { return data[i]; }, got);

  uint64_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(got[i], acc) << "at index " << i;
    acc += data[i];
  }
  EXPECT_EQ(total, acc);
}

TEST_P(SequenceSizes, ScanInPlaceReturnsTotal) {
  const size_t n = GetParam();
  std::vector<uint64_t> v(n, 2);
  const uint64_t total = scan_exclusive(v);
  EXPECT_EQ(total, 2 * n);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(v[i], 2 * i);
}

TEST_P(SequenceSizes, PackKeepsExactlyThePredicate) {
  const size_t n = GetParam();
  rng gen(n + 3);
  std::vector<uint32_t> data(n);
  for (size_t i = 0; i < n; ++i) data[i] = static_cast<uint32_t>(gen[i]);

  const auto got = pack(data, [&](size_t i) { return data[i] % 3 == 0; });
  std::vector<uint32_t> expected;
  for (uint32_t x : data) {
    if (x % 3 == 0) expected.push_back(x);
  }
  EXPECT_EQ(got, expected);  // order preserved
}

TEST_P(SequenceSizes, PackIndexIsSortedAndComplete) {
  const size_t n = GetParam();
  const auto idx = pack_index<uint32_t>(n, [](size_t i) { return i % 7 == 2; });
  std::vector<uint32_t> expected;
  for (size_t i = 0; i < n; ++i) {
    if (i % 7 == 2) expected.push_back(static_cast<uint32_t>(i));
  }
  EXPECT_EQ(idx, expected);
}

TEST_P(SequenceSizes, FilterByValue) {
  const size_t n = GetParam();
  std::vector<int> data(n);
  std::iota(data.begin(), data.end(), 0);
  const auto got = filter(data, [](int x) { return x % 2 == 0; });
  ASSERT_EQ(got.size(), (n + 1) / 2);
  for (size_t i = 0; i < got.size(); ++i) ASSERT_EQ(got[i], 2 * (int)i);
}

TEST_P(SequenceSizes, CountIf) {
  const size_t n = GetParam();
  EXPECT_EQ(count_if_index(n, [](size_t i) { return i % 5 == 0; }),
            n == 0 ? 0 : (n - 1) / 5 + 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SequenceSizes,
                         ::testing::Values(0, 1, 2, 7, 100, 2047, 2048, 2049,
                                           5000, 100001),
                         ::testing::PrintToStringParamName());

TEST(Map, TransformsValues) {
  const std::vector<int> in{1, 2, 3};
  const auto out = map(in, [](int x) { return x * x; });
  EXPECT_EQ(out, (std::vector<int>{1, 4, 9}));
}

TEST(Reduce, CustomMonoid) {
  // Product monoid.
  const auto prod = reduce<uint64_t>(
      10, [](size_t i) { return i + 1; }, 1,
      [](uint64_t a, uint64_t b) { return a * b; });
  EXPECT_EQ(prod, 3628800u);  // 10!
}

TEST(Scan, LargeValuesDoNotOverflow32Bits) {
  // Totals exceeding 2^32 must survive (edge offsets are 64-bit).
  const size_t n = 1 << 16;
  std::vector<uint64_t> out;
  const uint64_t total = scan_exclusive_into(
      n, [](size_t) { return uint64_t{1} << 20; }, out);
  EXPECT_EQ(total, uint64_t{n} << 20);
}

}  // namespace
}  // namespace pcc::parallel
