// The thread-pool backend: pool mechanics, and the full pipeline running
// under backend::kThreadPool (parameterized with the OpenMP backend so both
// execute the identical checks).

#include <gtest/gtest.h>

#include <numeric>

#include "test_helpers.hpp"

namespace pcc::parallel {
namespace {

TEST(ThreadPoolRaw, RunsEveryBlockOnce) {
  thread_pool pool(3);
  std::vector<uint32_t> hits(1000, 0);
  const std::function<void(size_t)> fn = [&](size_t b) {
    fetch_add<uint32_t>(&hits[b], 1);
  };
  pool.run(1000, fn);
  for (uint32_t h : hits) ASSERT_EQ(h, 1u);
}

TEST(ThreadPoolRaw, BackToBackJobs) {
  thread_pool pool(2);
  size_t total = 0;
  for (int round = 0; round < 50; ++round) {
    const std::function<void(size_t)> fn = [&](size_t) {
      fetch_add<size_t>(&total, 1);
    };
    pool.run(64, fn);
  }
  EXPECT_EQ(total, 50u * 64u);
}

TEST(ThreadPoolRaw, ZeroBlocksAndZeroWorkers) {
  thread_pool pool(0);  // submitter-only pool
  size_t count = 0;
  const std::function<void(size_t)> fn = [&](size_t) { ++count; };
  pool.run(0, fn);
  EXPECT_EQ(count, 0u);
  pool.run(10, fn);
  EXPECT_EQ(count, 10u);
}

class BothBackends : public ::testing::TestWithParam<backend> {
 protected:
  scoped_backend guard_{GetParam()};
};

TEST_P(BothBackends, ParallelForExactCoverage) {
  const size_t n = 200000;
  std::vector<uint32_t> hits(n, 0);
  parallel_for(0, n, [&](size_t i) { fetch_add<uint32_t>(&hits[i], 1); }, 64);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1u);
}

TEST_P(BothBackends, PrimitivesAgreeWithSerial) {
  const size_t n = 100000;
  rng gen(1);
  std::vector<uint64_t> data(n);
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    data[i] = gen[i] % 1000;
    sum += data[i];
  }
  EXPECT_EQ(reduce_sum<uint64_t>(n, [&](size_t i) { return data[i]; }), sum);

  std::vector<uint64_t> scanned;
  EXPECT_EQ(scan_exclusive_into(n, [&](size_t i) { return data[i]; }, scanned),
            sum);
  EXPECT_EQ(scanned[1], data[0]);

  auto sorted = data;
  integer_sort_keys(sorted, 10);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));

  const auto perm = random_permutation(n, 3);
  std::vector<uint8_t> seen(n, 0);
  for (vertex_id p : perm) {
    ASSERT_EQ(seen[p], 0u);
    seen[p] = 1;
  }
}

TEST_P(BothBackends, ParDoNestedDivideAndConquer) {
  struct rec {
    static uint64_t sum(size_t lo, size_t hi) {
      if (hi - lo < 512) {
        uint64_t s = 0;
        for (size_t i = lo; i < hi; ++i) s += i;
        return s;
      }
      uint64_t l = 0;
      uint64_t r = 0;
      const size_t mid = lo + (hi - lo) / 2;
      par_do([&] { l = sum(lo, mid); }, [&] { r = sum(mid, hi); });
      return l + r;
    }
  };
  const size_t n = 1 << 14;
  EXPECT_EQ(rec::sum(0, n), uint64_t{n} * (n - 1) / 2);
}

TEST_P(BothBackends, EndToEndConnectivity) {
  const graph::graph g = graph::rmat_graph(4096, 20000, 7);
  for (auto v : {cc::decomp_variant::kMin, cc::decomp_variant::kArb,
                 cc::decomp_variant::kArbHybrid}) {
    cc::cc_options opt;
    opt.algorithm = "decomp";
    opt.variant = v;
    const auto labels = cc::connected_components(g, opt);
    ASSERT_TRUE(baselines::is_valid_components_labeling(g, labels));
  }
  const auto forest = cc::spanning_forest(g);
  baselines::union_find uf(g.num_vertices());
  for (auto [u, w] : forest) ASSERT_TRUE(uf.unite(u, w));
}

TEST_P(BothBackends, EndToEndBaselines) {
  const graph::graph g = graph::cliques_with_bridges(25, 12);
  const auto reference = baselines::serial_sf_components(g);
  EXPECT_TRUE(baselines::labels_equivalent(
      reference, baselines::parallel_sf_pbbs_components(g)));
  EXPECT_TRUE(baselines::labels_equivalent(
      reference, baselines::parallel_sf_prm_components(g)));
  EXPECT_TRUE(baselines::labels_equivalent(
      reference, baselines::parallel_sf_rem_components(g)));
  EXPECT_TRUE(baselines::labels_equivalent(
      reference, baselines::hybrid_bfs_components(g)));
  EXPECT_TRUE(baselines::labels_equivalent(
      reference, baselines::label_prop_components(g)));
}

TEST_P(BothBackends, SamePartitionAcrossBackends) {
  // Tie-breaking in Decomp-Arb is schedule-dependent (by design — that is
  // the paper's point), so labels may differ across backends; the induced
  // partition must not.
  const graph::graph g = graph::random_graph(5000, 4, 9);
  cc::cc_options opt;
  opt.algorithm = "decomp";
  opt.seed = 1234;
  const auto here = cc::connected_components(g, opt);
  scoped_backend other(GetParam() == backend::kOpenMP ? backend::kThreadPool
                                                      : backend::kOpenMP);
  EXPECT_TRUE(
      baselines::labels_equivalent(here, cc::connected_components(g, opt)));
}

TEST_P(BothBackends, DecompMinLabelsAreScheduleIndependent) {
  // Unlike the Arb variants, Decomp-Min's outcome is a pure function of
  // the seed: writeMin outcomes are order-independent, phase-1 branch
  // decisions depend only on the previous round's state, the phase-2 CAS
  // only selects which thread enqueues a claimed vertex, and new-center
  // insertion and contraction are deterministic packs. So decomp-min-CC
  // returns identical LABELS on any backend and worker count.
  const graph::graph g = graph::rmat_graph(4096, 25000, 11);
  cc::cc_options opt;
  opt.algorithm = "decomp";
  opt.variant = cc::decomp_variant::kMin;
  opt.seed = 7;
  const auto here = cc::connected_components(g, opt);
  {
    scoped_backend other(GetParam() == backend::kOpenMP
                             ? backend::kThreadPool
                             : backend::kOpenMP);
    EXPECT_EQ(here, cc::connected_components(g, opt));
  }
  {
    scoped_workers many(8);
    EXPECT_EQ(here, cc::connected_components(g, opt));
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, BothBackends,
                         ::testing::Values(backend::kOpenMP,
                                           backend::kThreadPool),
                         [](const ::testing::TestParamInfo<backend>& info) {
                           return info.param == backend::kOpenMP ? "OpenMP"
                                                                 : "ThreadPool";
                         });

}  // namespace
}  // namespace pcc::parallel
