// Determinism and distribution sanity of the splittable RNG and the
// parallel random permutation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "parallel/random.hpp"

namespace pcc::parallel {
namespace {

TEST(Hash64, DeterministicAndSpreading) {
  EXPECT_EQ(hash64(12345), hash64(12345));
  EXPECT_NE(hash64(1), hash64(2));
  // Avalanche smoke: flipping one input bit flips many output bits.
  const int flipped = __builtin_popcountll(hash64(1) ^ hash64(3));
  EXPECT_GT(flipped, 10);
  EXPECT_LT(flipped, 54);
}

TEST(Rng, StreamsAreIndependentButReproducible) {
  rng a(7);
  rng b(7);
  rng c(8);
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[99], b[99]);
  EXPECT_NE(a[0], c[0]);
  EXPECT_NE(a.split(1)[0], a.split(2)[0]);
  EXPECT_EQ(a.split(1)[5], b.split(1)[5]);
}

TEST(Rng, BoundedStaysInRange) {
  rng gen(11);
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_LT(gen.bounded(i, 17), 17u);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  rng gen(13);
  double mn = 1.0;
  double mx = 0.0;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = gen.uniform01(i);
    ASSERT_GT(u, 0.0);
    ASSERT_LE(u, 1.0);
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
  }
  EXPECT_LT(mn, 0.001);
  EXPECT_GT(mx, 0.999);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean) {
  rng gen(17);
  for (double lambda : {0.1, 0.5, 2.0}) {
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += gen.exponential(i, lambda);
    // Mean of Exp(lambda) is 1/lambda; n large enough for ~1% accuracy.
    EXPECT_NEAR(sum / n, 1.0 / lambda, 0.03 / lambda);
  }
}

class PermutationSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(PermutationSizes, IsAPermutation) {
  const size_t n = GetParam();
  const auto perm = random_permutation(n, 23);
  ASSERT_EQ(perm.size(), n);
  std::vector<uint8_t> seen(n, 0);
  for (vertex_id p : perm) {
    ASSERT_LT(p, n);
    ASSERT_EQ(seen[p], 0) << "duplicate entry " << p;
    seen[p] = 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermutationSizes,
                         ::testing::Values(0, 1, 2, 10, 1000, 8192, 100000),
                         ::testing::PrintToStringParamName());

TEST(Permutation, DeterministicPerSeedDistinctAcrossSeeds) {
  const auto a = random_permutation(5000, 1);
  const auto b = random_permutation(5000, 1);
  const auto c = random_permutation(5000, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Permutation, LooksUniform) {
  // Position of element 0 averaged over seeds should be near n/2, and the
  // permutation should not be the identity.
  const size_t n = 1000;
  double sum = 0;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    const auto perm = random_permutation(n, seed);
    for (size_t i = 0; i < n; ++i) {
      if (perm[i] == 0) sum += static_cast<double>(i);
    }
  }
  const double mean_pos = sum / 64.0;
  EXPECT_GT(mean_pos, n * 0.35);
  EXPECT_LT(mean_pos, n * 0.65);
  const auto perm = random_permutation(n, 3);
  size_t fixed = 0;
  for (size_t i = 0; i < n; ++i) fixed += perm[i] == i ? 1 : 0;
  EXPECT_LT(fixed, 20u);  // E[fixed points] = 1
}

}  // namespace
}  // namespace pcc::parallel
