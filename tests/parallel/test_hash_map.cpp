// Phase-concurrent hash map: insert semantics, first-writer-wins values,
// concurrent duplicate collapsing.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "parallel/hash_map.hpp"

namespace pcc::parallel {
namespace {

TEST(HashMap, InsertAndFind) {
  hash_map64 m(10);
  EXPECT_TRUE(m.insert(5, 50));
  EXPECT_FALSE(m.insert(5, 99));  // first writer wins
  uint64_t v = 0;
  ASSERT_TRUE(m.find(5, &v));
  EXPECT_EQ(v, 50u);
  EXPECT_FALSE(m.find(6, nullptr));
  EXPECT_EQ(m.size(), 1u);
}

TEST(HashMap, ManySequentialInserts) {
  hash_map64 m(1000);
  for (uint64_t k = 0; k < 1000; ++k) m.insert(k * 3 + 1, k);
  EXPECT_EQ(m.size(), 1000u);
  for (uint64_t k = 0; k < 1000; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(m.find(k * 3 + 1, &v));
    EXPECT_EQ(v, k);
  }
}

TEST(HashMap, ElementsMatchContents) {
  hash_map64 m(100);
  std::map<uint64_t, uint64_t> expected;
  for (uint64_t k = 1; k <= 100; ++k) {
    m.insert(hash64(k), k);
    expected[hash64(k)] = k;
  }
  auto elems = m.elements();
  ASSERT_EQ(elems.size(), expected.size());
  for (const auto& [k, v] : elems) {
    ASSERT_TRUE(expected.contains(k));
    EXPECT_EQ(expected[k], v);
  }
}

TEST(HashMap, ConcurrentDistinctKeys) {
  constexpr size_t kN = 100000;
  hash_map64 m(kN);
  parallel_for(0, kN, [&](size_t i) { m.insert(hash64(i) | 1, i); }, 64);
  EXPECT_EQ(m.size(), kN);
  for (size_t i = 0; i < kN; i += 997) {
    uint64_t v = 0;
    ASSERT_TRUE(m.find(hash64(i) | 1, &v));
    EXPECT_EQ(v, i);
  }
}

TEST(HashMap, ConcurrentDuplicateKeysKeepOneProposedValue) {
  // 16 proposals per key; exactly one insert succeeds per key and the
  // stored value is one of the proposals for that key.
  constexpr size_t kKeys = 10000;
  hash_map64 m(kKeys);
  size_t inserted = 0;
  parallel_for(0, kKeys * 16, [&](size_t i) {
    const uint64_t key = (i % kKeys) + 1;
    if (m.insert(key, key * 100 + i / kKeys)) {
      fetch_add<size_t>(&inserted, 1);
    }
  }, 64);
  EXPECT_EQ(inserted, kKeys);
  EXPECT_EQ(m.size(), kKeys);
  for (uint64_t key = 1; key <= kKeys; key += 71) {
    uint64_t v = 0;
    ASSERT_TRUE(m.find(key, &v));
    EXPECT_EQ(v / 100, key);   // value belongs to this key
    EXPECT_LT(v % 100, 16u);   // and is one of the 16 proposals
  }
}

TEST(HashMap, CollidingKeysProbeCorrectly) {
  hash_map64 m(512);
  for (uint64_t k = 1; k <= 512; ++k) m.insert(k << 40, k);
  EXPECT_EQ(m.size(), 512u);
  for (uint64_t k = 1; k <= 512; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(m.find(k << 40, &v));
    EXPECT_EQ(v, k);
  }
}

TEST(HashMap, EmptyMap) {
  hash_map64 m(0);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.elements().empty());
}

TEST(HashMap, InsertMinKeepsMinimum) {
  hash_map64 m(10, ~uint64_t{0});
  EXPECT_TRUE(m.insert_min(7, 30));
  EXPECT_FALSE(m.insert_min(7, 10));
  EXPECT_FALSE(m.insert_min(7, 20));
  uint64_t v = 0;
  ASSERT_TRUE(m.find(7, &v));
  EXPECT_EQ(v, 10u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(HashMap, ConcurrentInsertMinIsDeterministic) {
  // Unlike insert(), the stored value is the exact minimum over all
  // proposals for the key, regardless of arrival order — the property the
  // SNAP loader's first-occurrence id compaction relies on.
  constexpr size_t kKeys = 5000;
  hash_map64 m(kKeys, ~uint64_t{0});
  parallel_for(0, kKeys * 16, [&](size_t i) {
    const uint64_t key = (i % kKeys) + 1;
    m.insert_min(key, key * 1000 + i / kKeys);
  }, 64);
  EXPECT_EQ(m.size(), kKeys);
  for (uint64_t key = 1; key <= kKeys; key += 37) {
    uint64_t v = 0;
    ASSERT_TRUE(m.find(key, &v));
    EXPECT_EQ(v, key * 1000);  // minimum of the 16 proposals, exactly
  }
}

}  // namespace
}  // namespace pcc::parallel
