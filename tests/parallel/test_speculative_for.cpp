// Deterministic reservations: priority semantics of reservation cells and
// end-to-end determinism of speculative_for on a contended toy problem.

#include <gtest/gtest.h>

#include <vector>

#include "parallel/random.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/speculative_for.hpp"

namespace pcc::parallel {
namespace {

TEST(Reservation, LowestIndexWins) {
  reservation r;
  EXPECT_TRUE(r.free());
  r.reserve(10);
  r.reserve(3);
  r.reserve(7);
  EXPECT_TRUE(r.reserved_by(3));
  EXPECT_FALSE(r.check_and_release(7));
  EXPECT_TRUE(r.check_and_release(3));
  EXPECT_TRUE(r.free());
}

// Toy problem: greedy maximal independent set on a path, processed with
// deterministic reservations. Iterate i (vertex i) joins the set iff it
// reserves itself and both neighbours. The committed set must equal the
// result of sequential greedy processing in index order — regardless of
// parallel schedule.
struct mis_step {
  size_t n;
  std::vector<uint8_t>& state;  // 0 = undecided, 1 = in set, 2 = excluded
  std::vector<reservation>& cells;

  bool reserve(uint64_t i) {
    if (state[i] != 0) return false;
    // Excluded by a set neighbour?
    if ((i > 0 && state[i - 1] == 1) || (i + 1 < n && state[i + 1] == 1)) {
      state[i] = 2;
      return false;
    }
    cells[i].reserve(i);
    if (i > 0 && state[i - 1] == 0) cells[i - 1].reserve(i);
    if (i + 1 < n && state[i + 1] == 0) cells[i + 1].reserve(i);
    return true;
  }

  bool commit(uint64_t i) {
    const bool self = cells[i].check_and_release(i);
    const bool left = i == 0 || !cells[i - 1].reserved_by(i) ||
                      cells[i - 1].check_and_release(i);
    const bool right = i + 1 >= n || !cells[i + 1].reserved_by(i) ||
                       cells[i + 1].check_and_release(i);
    if (self && left && right) {
      state[i] = 1;
      if (i > 0 && state[i - 1] == 0) state[i - 1] = 2;
      if (i + 1 < n && state[i + 1] == 0) state[i + 1] = 2;
      return true;
    }
    return false;
  }
};

std::vector<uint8_t> sequential_greedy_mis(size_t n) {
  std::vector<uint8_t> state(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (state[i] == 0) {
      state[i] = 1;
      if (i + 1 < n) state[i + 1] = 2;
    }
  }
  return state;
}

TEST(SpeculativeFor, MatchesSequentialGreedyOrder) {
  const size_t n = 50000;
  for (size_t granularity : {size_t{0}, size_t{17}, size_t{100000}}) {
    std::vector<uint8_t> state(n, 0);
    std::vector<reservation> cells(n);
    mis_step step{n, state, cells};
    speculative_for(step, n, granularity);
    EXPECT_EQ(state, sequential_greedy_mis(n))
        << "granularity=" << granularity;
  }
}

TEST(SpeculativeFor, ZeroIterates) {
  std::vector<uint8_t> state;
  std::vector<reservation> cells;
  mis_step step{0, state, cells};
  EXPECT_EQ(speculative_for(step, 0), 0u);
}

TEST(SpeculativeFor, AllIteratesIndependentFinishInOneRound) {
  // No contention: every iterate reserves a distinct cell.
  struct indep_step {
    std::vector<reservation>& cells;
    std::vector<uint8_t>& done;
    bool reserve(uint64_t i) {
      cells[i].reserve(i);
      return true;
    }
    bool commit(uint64_t i) {
      if (cells[i].check_and_release(i)) {
        done[i] = 1;
        return true;
      }
      return false;
    }
  };
  const size_t n = 10000;
  std::vector<reservation> cells(n);
  std::vector<uint8_t> done(n, 0);
  indep_step step{cells, done};
  speculative_for(step, n, n);  // one big batch
  for (uint8_t d : done) ASSERT_EQ(d, 1);
}

}  // namespace
}  // namespace pcc::parallel
