// Phase-concurrent hash set: set semantics, concurrent insert phases,
// duplicate collapsing (its job in edge deduplication), and load behaviour.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "parallel/hash_table.hpp"

namespace pcc::parallel {
namespace {

TEST(HashSet, InsertReportsNovelty) {
  hash_set64 s(10);
  EXPECT_TRUE(s.insert(42));
  EXPECT_FALSE(s.insert(42));
  EXPECT_TRUE(s.insert(43));
  EXPECT_EQ(s.size(), 2u);
}

TEST(HashSet, ContainsAfterInsertPhase) {
  hash_set64 s(100);
  for (uint64_t k = 0; k < 100; ++k) s.insert(k * 7919);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE(s.contains(k * 7919));
    EXPECT_FALSE(s.contains(k * 7919 + 1));
  }
}

TEST(HashSet, CapacityKeepsLoadUnderHalf) {
  hash_set64 s(1000);
  EXPECT_GE(s.capacity(), 2001u);
}

TEST(HashSet, ElementsReturnsExactSet) {
  hash_set64 s(500);
  std::unordered_set<uint64_t> expected;
  for (uint64_t k = 0; k < 500; ++k) {
    const uint64_t key = hash64(k) | 1;  // never the empty sentinel
    s.insert(key);
    expected.insert(key);
  }
  const auto got = s.elements();
  EXPECT_EQ(got.size(), expected.size());
  for (uint64_t k : got) EXPECT_TRUE(expected.contains(k));
}

TEST(HashSet, ConcurrentInsertsOfDistinctKeys) {
  constexpr size_t kN = 200000;
  hash_set64 s(kN);
  parallel_for(0, kN, [&](size_t i) { s.insert(hash64(i) | 1); }, 64);
  EXPECT_EQ(s.size(), kN);  // hash64 is injective-in-practice at this scale
}

TEST(HashSet, ConcurrentDuplicateInsertsCollapse) {
  // Every key inserted 8 times concurrently; exactly one copy survives and
  // exactly one inserter per key reports novelty.
  constexpr size_t kKeys = 20000;
  hash_set64 s(kKeys);
  size_t novel = 0;
  parallel_for(0, kKeys * 8, [&](size_t i) {
    if (s.insert((i % kKeys) + 1)) fetch_add<size_t>(&novel, 1);
  }, 64);
  EXPECT_EQ(novel, kKeys);
  EXPECT_EQ(s.size(), kKeys);
  auto elems = s.elements();
  std::sort(elems.begin(), elems.end());
  for (size_t i = 0; i < kKeys; ++i) ASSERT_EQ(elems[i], i + 1);
}

TEST(HashSet, AdversarialCollidingKeys) {
  // Keys engineered to collide in the low bits stress linear probing.
  hash_set64 s(4096);
  for (uint64_t k = 1; k <= 4096; ++k) s.insert(k << 20);
  EXPECT_EQ(s.size(), 4096u);
  for (uint64_t k = 1; k <= 4096; ++k) EXPECT_TRUE(s.contains(k << 20));
}

TEST(HashSet, EmptyTable) {
  hash_set64 s(0);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.elements().empty());
  EXPECT_FALSE(s.contains(1));
}

}  // namespace
}  // namespace pcc::parallel
