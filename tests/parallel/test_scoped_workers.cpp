// Worker-count plumbing across both scheduler backends.
//
// Regression battery for the bug where set_num_workers()/scoped_workers
// only called omp_set_num_threads: on the kThreadPool backend the worker
// count was frozen at pool creation, so thread sweeps silently measured
// full-occupancy numbers under a 1..P label. These tests pin the contract:
// scoped_workers(k) makes num_workers() == k on the ACTIVE backend, nested
// scopes restore, a pool-backend guard leaves the OpenMP setting alone,
// parallel regions respect the cap (ids < k, exact coverage), and the
// connectivity results are identical at every worker count.

#include <gtest/gtest.h>

#include <omp.h>

#include <algorithm>
#include <vector>

#include "core/cc_engine.hpp"
#include "core/connectivity.hpp"
#include "graph/generators.hpp"
#include "parallel/atomics.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/thread_pool.hpp"

namespace pcc::parallel {
namespace {

class BothBackendsWorkers : public ::testing::TestWithParam<backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, BothBackendsWorkers,
                         ::testing::Values(backend::kOpenMP,
                                           backend::kThreadPool),
                         [](const auto& info) {
                           return info.param == backend::kOpenMP ? "OpenMP"
                                                                 : "ThreadPool";
                         });

TEST_P(BothBackendsWorkers, ScopedWorkersRoundTrips) {
  const scoped_backend bk(GetParam());
  const int before = num_workers();
  for (const int k : {1, 2, 3, 8}) {
    {
      scoped_workers guard(k);
      EXPECT_EQ(num_workers(), k) << "inside scoped_workers(" << k << ")";
    }
    EXPECT_EQ(num_workers(), before) << "after scoped_workers(" << k << ")";
  }
}

TEST_P(BothBackendsWorkers, NestedScopesRestoreInOrder) {
  const scoped_backend bk(GetParam());
  const int before = num_workers();
  {
    scoped_workers outer(4);
    ASSERT_EQ(num_workers(), 4);
    {
      scoped_workers inner(2);
      ASSERT_EQ(num_workers(), 2);
      {
        scoped_workers innermost(7);
        ASSERT_EQ(num_workers(), 7);
      }
      ASSERT_EQ(num_workers(), 2);
    }
    ASSERT_EQ(num_workers(), 4);
  }
  EXPECT_EQ(num_workers(), before);
}

TEST_P(BothBackendsWorkers, SetNumWorkersClampsToOne) {
  const scoped_backend bk(GetParam());
  const int before = num_workers();
  set_num_workers(0);
  EXPECT_EQ(num_workers(), 1);
  set_num_workers(-3);
  EXPECT_EQ(num_workers(), 1);
  set_num_workers(before);
  EXPECT_EQ(num_workers(), before);
}

TEST_P(BothBackendsWorkers, WorkerIdsStayBelowCap) {
  const scoped_backend bk(GetParam());
  for (const int k : {1, 2, 4}) {
    scoped_workers guard(k);
    std::vector<uint32_t> seen(static_cast<size_t>(k) + 1, 0);
    parallel_for(
        0, 10000,
        [&](size_t) {
          const int id = worker_id();
          ASSERT_GE(id, 0);
          ASSERT_LT(id, k);
          write_once<uint32_t>(&seen[static_cast<size_t>(id)], 1);
        },
        64);
    EXPECT_EQ(seen[static_cast<size_t>(k)], 0u);
  }
}

TEST_P(BothBackendsWorkers, ParallelForExactCoverageAtEveryCap) {
  // Caps above the machine's core count force the pool to lazily spawn
  // (then park) workers; every cap must still visit each index once.
  const scoped_backend bk(GetParam());
  for (const int k : {1, 3, 8}) {
    scoped_workers guard(k);
    const size_t n = 50000;
    std::vector<uint32_t> hits(n, 0);
    parallel_for(0, n, [&](size_t i) { fetch_add<uint32_t>(&hits[i], 1); },
                 128);
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1u) << i;
  }
}

TEST(ScopedWorkersPool, PoolGuardLeavesOpenMPSettingAlone) {
  // Regression: the old scoped_workers saved/restored omp_get_max_threads()
  // regardless of backend, so a pool-backend guard clobbered the OpenMP
  // worker count as collateral damage.
  const int omp_before = omp_get_max_threads();
  {
    const scoped_backend bk(backend::kThreadPool);
    scoped_workers guard(3);
    EXPECT_EQ(num_workers(), 3);
    EXPECT_EQ(omp_get_max_threads(), omp_before);
  }
  EXPECT_EQ(omp_get_max_threads(), omp_before);
}

TEST(ScopedWorkersPool, CapBeyondSpawnedLazilySpawns) {
  const scoped_backend bk(backend::kThreadPool);
  {
    scoped_workers guard(6);
    EXPECT_EQ(num_workers(), 6);
    EXPECT_GE(thread_pool::instance().spawned_threads(), 6u);
  }
  // Spawned workers persist after the guard (they park); only the active
  // cap is restored.
  EXPECT_GE(thread_pool::instance().spawned_threads(), 6u);
}

// The guard must restore on the backend it changed even if the current
// backend differs at destruction time.
TEST(ScopedWorkersPool, RestoresOnTheBackendItChanged) {
  const scoped_backend bk(backend::kThreadPool);
  const int pool_before = num_workers();
  {
    scoped_workers guard(5);
    // Flip the active backend under the guard's feet; its destructor must
    // still restore the POOL cap, not the OpenMP setting.
    const scoped_backend flip(backend::kOpenMP);
    ASSERT_EQ(current_backend(), backend::kOpenMP);
  }
  EXPECT_EQ(num_workers(), pool_before);
}

// Decomposition labels and CC partitions must not depend on the worker
// count, on either backend (the acceptance bar for the thread sweep: every
// (threads, backend) cell of the bench measures the same answer).
class WorkerCountInvariance : public ::testing::TestWithParam<backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, WorkerCountInvariance,
                         ::testing::Values(backend::kOpenMP,
                                           backend::kThreadPool),
                         [](const auto& info) {
                           return info.param == backend::kOpenMP ? "OpenMP"
                                                                 : "ThreadPool";
                         });

TEST_P(WorkerCountInvariance, DecompMinLabelsIdenticalAtEveryWorkerCount) {
  // Decomp-Min's labels are a pure function of the seed (see
  // test_thread_pool's schedule-independence test), so at every worker
  // count — including oversubscribed caps that exercise parked/stolen
  // deques — the LABELS themselves must match, not just the partition.
  const scoped_backend bk(GetParam());
  const graph::graph g = graph::rmat_graph(4096, 16384, 7);
  cc::cc_options opt;
  opt.algorithm = "decomp";
  opt.variant = cc::decomp_variant::kMin;
  opt.seed = 7;
  std::vector<vertex_id> reference;
  {
    scoped_workers guard(1);
    reference = cc::connected_components(g, opt);
  }
  for (const int k : {2, 4, 8}) {
    scoped_workers guard(k);
    EXPECT_EQ(cc::connected_components(g, opt), reference)
        << "decomp-min labels changed at " << k << " workers";
  }
}

TEST_P(WorkerCountInvariance, ComponentPartitionIdenticalAtEveryWorkerCount) {
  const scoped_backend bk(GetParam());
  cc::cc_options opt;
  opt.variant = cc::decomp_variant::kArbHybrid;
  opt.beta = 0.2;
  cc::cc_engine engine(opt);
  for (const auto& g :
       {graph::random_graph(3000, 4, 11), graph::grid3d_graph(2197, true, 12),
        graph::line_graph(2000, false)}) {
    std::vector<vertex_id> reference;
    {
      scoped_workers guard(1);
      const auto labels = engine.run(g);
      reference.assign(labels.begin(), labels.end());
    }
    // Arbitrary-CC labels are schedule-dependent but the PARTITION is not:
    // normalize to first-seen component ids before comparing.
    const auto normalize = [](std::span<const vertex_id> labels) {
      std::vector<vertex_id> canon(labels.size(), kNoVertex);
      std::vector<vertex_id> out(labels.size());
      vertex_id next = 0;
      for (size_t v = 0; v < labels.size(); ++v) {
        if (canon[labels[v]] == kNoVertex) canon[labels[v]] = next++;
        out[v] = canon[labels[v]];
      }
      return out;
    };
    const std::vector<vertex_id> ref_norm = normalize(reference);
    for (const int k : {2, 3, 8}) {
      scoped_workers guard(k);
      const auto labels = engine.run(g);
      EXPECT_EQ(normalize(labels), ref_norm)
          << "component partition changed at " << k << " workers";
    }
  }
}

}  // namespace
}  // namespace pcc::parallel
