// Radix sort: ordering, stability, key-extractor sorting of pair arrays,
// adversarial distributions, and sizes straddling the serial cutoff.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "parallel/integer_sort.hpp"
#include "parallel/random.hpp"

namespace pcc::parallel {
namespace {

class SortSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(SortSizes, SortsRandom64BitKeys) {
  const size_t n = GetParam();
  rng gen(n);
  std::vector<uint64_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = gen[i];
  std::vector<uint64_t> expected = v;
  std::sort(expected.begin(), expected.end());
  integer_sort_keys(v, 64);
  EXPECT_EQ(v, expected);
}

TEST_P(SortSizes, SortsSmallRangeKeys) {
  const size_t n = GetParam();
  rng gen(n + 1);
  std::vector<uint32_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<uint32_t>(gen[i] % 10);
  std::vector<uint32_t> expected = v;
  std::sort(expected.begin(), expected.end());
  integer_sort_keys(v, bits_needed(10));
  EXPECT_EQ(v, expected);
}

TEST_P(SortSizes, StableOnPairsSortedByFirst) {
  // Sort (key, sequence-number) pairs by key only; equal keys must keep
  // their original relative order.
  const size_t n = GetParam();
  rng gen(n + 2);
  std::vector<std::pair<uint32_t, uint32_t>> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = {static_cast<uint32_t>(gen[i] % 50), static_cast<uint32_t>(i)};
  }
  auto expected = v;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  integer_sort(v, bits_needed(50), [](const auto& p) { return p.first; });
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSizes,
                         ::testing::Values(0, 1, 2, 100, 8191, 8192, 8193,
                                           50000, 300000),
                         ::testing::PrintToStringParamName());

TEST(IntegerSort, AlreadySorted) {
  std::vector<uint64_t> v(100000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = i;
  const auto expected = v;
  integer_sort_keys(v, 20);
  EXPECT_EQ(v, expected);
}

TEST(IntegerSort, ReverseSorted) {
  std::vector<uint64_t> v(100000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = v.size() - i;
  integer_sort_keys(v, bits_needed(v.size() + 1));
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(IntegerSort, AllEqualKeysPreserveOrder) {
  std::vector<std::pair<uint32_t, uint32_t>> v(50000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = {7, static_cast<uint32_t>(i)};
  integer_sort(v, 8, [](const auto& p) { return p.first; });
  for (size_t i = 0; i < v.size(); ++i) ASSERT_EQ(v[i].second, i);
}

TEST(IntegerSort, HighBitsOnlyKeys) {
  // Keys that differ only above bit 32: catches truncated-pass bugs.
  std::vector<uint64_t> v = {uint64_t{5} << 40, uint64_t{1} << 40,
                             uint64_t{3} << 40, uint64_t{2} << 40};
  integer_sort_keys(v, 48);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(IntegerSort, ExtractorCompactsSplitFields) {
  // Regression for the builder bug this suite once had: (hi, lo) packed at
  // bit 32 must sort correctly via a compacting extractor even when the
  // requested bit budget is less than 32 + field width.
  rng gen(3);
  std::vector<uint64_t> v(100000);
  for (size_t i = 0; i < v.size(); ++i) {
    const uint64_t hi = gen[2 * i] % 1000;
    const uint64_t lo = gen[2 * i + 1] % 1000;
    v[i] = (hi << 32) | lo;
  }
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  const int b = bits_needed(1000);
  integer_sort(v, 2 * b, [b](uint64_t p) {
    return ((p >> 32) << b) | (p & ((uint64_t{1} << b) - 1));
  });
  EXPECT_EQ(v, expected);
}

TEST(BitsNeeded, Boundaries) {
  EXPECT_EQ(bits_needed(1), 0);
  EXPECT_EQ(bits_needed(2), 1);
  EXPECT_EQ(bits_needed(3), 2);
  EXPECT_EQ(bits_needed(256), 8);
  EXPECT_EQ(bits_needed(257), 9);
  EXPECT_EQ(bits_needed(uint64_t{1} << 31), 31);
}

}  // namespace
}  // namespace pcc::parallel
