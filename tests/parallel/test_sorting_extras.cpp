// sample_sort (comparison sort) and histogram.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "parallel/histogram.hpp"
#include "parallel/random.hpp"
#include "parallel/sample_sort.hpp"

namespace pcc::parallel {
namespace {

class SampleSortSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(SampleSortSizes, SortsRandomUint64) {
  const size_t n = GetParam();
  rng gen(n);
  std::vector<uint64_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = gen[i];
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  sample_sort(v);
  EXPECT_EQ(v, expected);
}

TEST_P(SampleSortSizes, SortsDoublesDescending) {
  const size_t n = GetParam();
  rng gen(n + 1);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = gen.uniform01(i) - 0.5;
  auto expected = v;
  std::sort(expected.begin(), expected.end(), std::greater<double>());
  sample_sort(v, std::greater<double>());
  EXPECT_EQ(v, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SampleSortSizes,
                         ::testing::Values(0, 1, 100, 16383, 16384, 16385,
                                           100000, 400000),
                         ::testing::PrintToStringParamName());

TEST(SampleSort, ManyDuplicates) {
  rng gen(7);
  std::vector<uint32_t> v(200000);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<uint32_t>(gen[i] % 5);
  }
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  sample_sort(v);
  EXPECT_EQ(v, expected);
}

TEST(SampleSort, AlreadySortedAndReversed) {
  std::vector<int> v(100000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int>(i);
  auto asc = v;
  sample_sort(asc);
  EXPECT_TRUE(std::is_sorted(asc.begin(), asc.end()));
  std::reverse(v.begin(), v.end());
  sample_sort(v);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(SampleSort, Strings) {
  rng gen(9);
  std::vector<std::string> v(30000);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = std::to_string(gen[i] % 100000);
  }
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  sample_sort(v);
  EXPECT_EQ(v, expected);
}

TEST(Histogram, ExactCountsSmallBuckets) {
  const size_t n = 300000;
  rng gen(11);
  std::vector<uint32_t> keys(n);
  std::vector<size_t> expected(17, 0);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<uint32_t>(gen[i] % 17);
    ++expected[keys[i]];
  }
  EXPECT_EQ(histogram(n, 17, [&](size_t i) { return keys[i]; }), expected);
}

TEST(Histogram, HugeBucketRangeFallsBackToAtomic) {
  const size_t n = 100000;
  const size_t buckets = 1 << 22;  // forces the sparse path
  rng gen(13);
  std::vector<uint32_t> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<uint32_t>(gen[i] % buckets);
  }
  const auto counts = histogram(n, buckets, [&](size_t i) { return keys[i]; });
  size_t total = 0;
  for (size_t c : counts) total += c;
  EXPECT_EQ(total, n);
  // Spot check a few keys.
  for (size_t i = 0; i < n; i += 9973) {
    EXPECT_GE(counts[keys[i]], 1u);
  }
}

TEST(Histogram, EmptyInputs) {
  EXPECT_EQ(histogram(0, 5, [](size_t) { return 0; }),
            std::vector<size_t>(5, 0));
  EXPECT_TRUE(histogram(0, 0, [](size_t) { return 0; }).empty());
}

TEST(Histogram, SingleBucket) {
  EXPECT_EQ(histogram(1000, 1, [](size_t) { return 0; }),
            std::vector<size_t>{1000});
}

}  // namespace
}  // namespace pcc::parallel
