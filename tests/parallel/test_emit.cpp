// Unit tests for parallel/emit.hpp — block-local emission (emit_pack,
// count_then_emit), edge-balanced traversal (frontier_edge_for), and the
// split-piece stitching protocol — plus pipeline-level determinism checks:
// the emission order and the contracted/dedup output must be identical
// across scheduler backends, worker counts, and chunk widths.

#include "parallel/emit.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/component_index.hpp"
#include "core/connectivity.hpp"
#include "core/contract.hpp"
#include "core/ldd.hpp"
#include "graph/generators.hpp"
#include "parallel/atomics.hpp"
#include "parallel/scheduler.hpp"

namespace {

using namespace pcc;
using parallel::backend;
using parallel::emit_pack;
using parallel::emitter;
using parallel::frontier_edge_opts;
using parallel::frontier_piece;
using parallel::frontier_result;
using parallel::scoped_backend;
using parallel::scoped_workers;
using parallel::workspace;

const backend kBackends[] = {backend::kOpenMP, backend::kThreadPool};

// ---------------------------------------------------------------------------
// emit_pack

TEST(EmitPack, EmptyInput) {
  workspace ws;
  std::vector<uint32_t> out(4, 77);
  const size_t n = emit_pack<uint32_t>(
      0, std::span<uint32_t>(out), ws,
      [&](size_t, emitter<uint32_t>&) { FAIL() << "body ran on empty input"; });
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(out[0], 77u);
}

TEST(EmitPack, SingletonInput) {
  workspace ws;
  std::vector<uint32_t> out(1);
  const size_t n = emit_pack<uint32_t>(
      1, std::span<uint32_t>(out), ws,
      [&](size_t i, emitter<uint32_t>& em) { em(static_cast<uint32_t>(i + 9)); });
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(out[0], 9u);
}

TEST(EmitPack, FilterKeepsIndexOrder) {
  for (const backend b : kBackends) {
    scoped_backend guard(b);
    workspace ws;
    const size_t n = 10000;
    std::vector<uint32_t> out(n);
    // grain 64 forces many blocks even at this size.
    const size_t kept = emit_pack<uint32_t>(
        n, std::span<uint32_t>(out), ws,
        [&](size_t i, emitter<uint32_t>& em) {
          if (i % 3 == 0) em(static_cast<uint32_t>(i));
        },
        1, 64);
    ASSERT_EQ(kept, (n + 2) / 3);
    for (size_t k = 0; k < kept; ++k) EXPECT_EQ(out[k], 3 * k);
  }
}

TEST(EmitPack, BodyRunsExactlyOncePerIndex) {
  workspace ws;
  const size_t n = 5000;
  std::vector<uint32_t> runs(n, 0);
  std::vector<uint32_t> out(n);
  (void)emit_pack<uint32_t>(
      n, std::span<uint32_t>(out), ws,
      [&](size_t i, emitter<uint32_t>& em) {
        parallel::fetch_add(&runs[i], 1u);
        if (i & 1) em(static_cast<uint32_t>(i));
      },
      1, 64);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(runs[i], 1u) << "index " << i;
}

TEST(EmitPack, MaxPerIndexAboveOne) {
  workspace ws;
  const size_t n = 4000;
  std::vector<uint32_t> out(3 * n);
  const size_t total = emit_pack<uint32_t>(
      n, std::span<uint32_t>(out), ws,
      [&](size_t i, emitter<uint32_t>& em) {
        for (size_t r = 0; r < i % 4; ++r) em(static_cast<uint32_t>(i));
      },
      3, 128);
  size_t expect = 0;
  for (size_t i = 0; i < n; ++i) expect += i % 4;
  ASSERT_EQ(total, expect);
  // Index order: all copies of i precede all copies of j for i < j.
  for (size_t k = 1; k < total; ++k) EXPECT_LE(out[k - 1], out[k]);
}

// ---------------------------------------------------------------------------
// count_then_emit

TEST(CountThenEmit, EmptyInput) {
  workspace ws;
  std::vector<uint32_t> out(1);
  EXPECT_EQ(parallel::count_then_emit<uint32_t>(
                0, std::span<uint32_t>(out), ws,
                [&](size_t, auto&) { FAIL(); }),
            0u);
}

TEST(CountThenEmit, MatchesSerialFilter) {
  for (const backend b : kBackends) {
    scoped_backend guard(b);
    workspace ws;
    const size_t n = 20000;
    std::vector<uint32_t> data(n);
    for (size_t i = 0; i < n; ++i) data[i] = static_cast<uint32_t>((i * 7) % 11);
    std::vector<uint32_t> out(n);
    const size_t kept = parallel::count_then_emit<uint32_t>(
        n, std::span<uint32_t>(out), ws,
        [&](size_t i, auto& em) {
          if (data[i] < 4) em(data[i] * 100 + static_cast<uint32_t>(i % 100));
        },
        256);
    std::vector<uint32_t> expect;
    for (size_t i = 0; i < n; ++i) {
      if (data[i] < 4) expect.push_back(data[i] * 100 +
                                        static_cast<uint32_t>(i % 100));
    }
    ASSERT_EQ(kept, expect.size());
    for (size_t k = 0; k < kept; ++k) ASSERT_EQ(out[k], expect[k]);
  }
}

// ---------------------------------------------------------------------------
// frontier_edge_for

TEST(FrontierEdgeFor, EmptyFrontier) {
  workspace ws;
  std::vector<uint32_t> out(1);
  const frontier_result run = parallel::frontier_edge_for<uint32_t>(
      0, [](size_t) { return 0u; }, std::span<uint32_t>(out), ws,
      [&](size_t, uint32_t, uint32_t, uint32_t, emitter<uint32_t>&)
          -> uint32_t {
        ADD_FAILURE() << "visit ran on empty frontier";
        return 0;
      });
  EXPECT_EQ(run.emitted, 0u);
  EXPECT_TRUE(run.partials.empty());
}

TEST(FrontierEdgeFor, AllZeroDegrees) {
  workspace ws;
  std::vector<uint32_t> out(1);
  const frontier_result run = parallel::frontier_edge_for<uint32_t>(
      100, [](size_t) { return 0u; }, std::span<uint32_t>(out), ws,
      [&](size_t, uint32_t, uint32_t, uint32_t, emitter<uint32_t>&)
          -> uint32_t {
        ADD_FAILURE() << "visit ran with no edges";
        return 0;
      });
  EXPECT_EQ(run.emitted, 0u);
}

TEST(FrontierEdgeFor, SingletonEntrySeesWholeRange) {
  workspace ws;
  std::vector<uint32_t> out(10);
  size_t calls = 0;
  const frontier_result run = parallel::frontier_edge_for<uint32_t>(
      1, [](size_t) { return 10u; }, std::span<uint32_t>(out), ws,
      [&](size_t fi, uint32_t jlo, uint32_t jhi, uint32_t deg,
          emitter<uint32_t>& em) -> uint32_t {
        ++calls;
        EXPECT_EQ(fi, 0u);
        EXPECT_EQ(jlo, 0u);
        EXPECT_EQ(jhi, 10u);
        EXPECT_EQ(deg, 10u);
        for (uint32_t j = jlo; j < jhi; ++j) em(j);
        return jhi - jlo;
      });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(run.emitted, 10u);
  EXPECT_TRUE(run.partials.empty());  // whole-entry pieces are not recorded
  for (uint32_t j = 0; j < 10; ++j) EXPECT_EQ(out[j], j);
}

// Mixed degrees with a dominating hub: every flattened slot must be visited
// exactly once, whatever the chunk width.
TEST(FrontierEdgeFor, CoversEveryEdgeSlotExactlyOnce) {
  const std::vector<uint32_t> degs = {3, 0, 5000, 1, 0, 17, 2048, 0, 9};
  const size_t total =
      std::accumulate(degs.begin(), degs.end(), size_t{0});
  std::vector<edge_id> off(degs.size() + 1, 0);
  for (size_t i = 0; i < degs.size(); ++i) off[i + 1] = off[i] + degs[i];
  for (const size_t chunk : {size_t{1}, size_t{7}, size_t{512}, size_t{0}}) {
    workspace ws;
    std::vector<uint32_t> seen(total, 0);
    const frontier_result run = parallel::frontier_edge_for(
        degs.size(), [&](size_t fi) { return degs[fi]; }, ws,
        [&](size_t fi, uint32_t jlo, uint32_t jhi, uint32_t deg) -> uint32_t {
          EXPECT_EQ(deg, degs[fi]);
          EXPECT_LE(jhi, deg);
          for (uint32_t j = jlo; j < jhi; ++j) {
            parallel::fetch_add(&seen[off[fi] + j], 1u);
          }
          return jhi - jlo;
        },
        frontier_edge_opts{chunk});
    for (size_t s = 0; s < total; ++s) {
      ASSERT_EQ(seen[s], 1u) << "slot " << s << " chunk " << chunk;
    }
    // Split pieces of one entry must be consecutive and in ascending order.
    for (size_t i = 1; i < run.partials.size(); ++i) {
      if (run.partials[i].fi == run.partials[i - 1].fi) {
        EXPECT_EQ(run.partials[i].jlo, run.partials[i - 1].jhi);
      }
    }
  }
}

// Emissions land in flattened edge order — independent of chunk width,
// backend, and worker count.
TEST(FrontierEdgeFor, EmissionOrderIsFlattenedEdgeOrder) {
  const std::vector<uint32_t> degs = {5, 4096, 0, 3, 100, 1};
  const size_t total = std::accumulate(degs.begin(), degs.end(), size_t{0});
  const auto body = [&](size_t fi, uint32_t jlo, uint32_t jhi, uint32_t,
                        emitter<uint64_t>& em) -> uint32_t {
    for (uint32_t j = jlo; j < jhi; ++j) {
      if ((fi + j) % 3 == 0) em((static_cast<uint64_t>(fi) << 32) | j);
    }
    return 0;
  };
  // Serial reference = single chunk at one worker.
  std::vector<uint64_t> expect(total);
  size_t expect_n = 0;
  {
    scoped_workers one(1);
    workspace ws;
    expect_n = parallel::frontier_edge_for<uint64_t>(
                   degs.size(), [&](size_t fi) { return degs[fi]; },
                   std::span<uint64_t>(expect), ws, body)
                   .emitted;
  }
  ASSERT_GT(expect_n, 0u);
  for (const backend b : kBackends) {
    scoped_backend bg(b);
    for (const int workers : {1, 2, 4}) {
      scoped_workers wg(workers);
      for (const size_t chunk : {size_t{0}, size_t{9}, size_t{1024}}) {
        workspace ws;
        std::vector<uint64_t> out(total);
        const frontier_result run = parallel::frontier_edge_for<uint64_t>(
            degs.size(), [&](size_t fi) { return degs[fi]; },
            std::span<uint64_t>(out), ws, body, frontier_edge_opts{chunk});
        ASSERT_EQ(run.emitted, expect_n);
        for (size_t k = 0; k < expect_n; ++k) {
          ASSERT_EQ(out[k], expect[k])
              << "backend " << static_cast<int>(b) << " workers " << workers
              << " chunk " << chunk << " pos " << k;
        }
      }
    }
  }
}

// Hub-heavy in-place compaction: pieces compact their own subrange, split
// entries are stitched by fix_split_pieces. Result must equal the serial
// filter whatever the chunk width.
TEST(FrontierEdgeFor, SplitPieceCompactionMatchesSerial) {
  const std::vector<uint32_t> degs = {7, 3000, 2, 0, 41, 999};
  std::vector<edge_id> off(degs.size() + 1, 0);
  for (size_t i = 0; i < degs.size(); ++i) off[i + 1] = off[i] + degs[i];
  const size_t total = off.back();
  std::vector<uint32_t> base(total);
  for (size_t s = 0; s < total; ++s) base[s] = static_cast<uint32_t>((s * 13) % 7);

  // Serial reference: keep values < 3, per entry, order-preserving.
  std::vector<std::vector<uint32_t>> expect(degs.size());
  for (size_t fi = 0; fi < degs.size(); ++fi) {
    for (uint32_t j = 0; j < degs[fi]; ++j) {
      const uint32_t x = base[off[fi] + j];
      if (x < 3) expect[fi].push_back(x);
    }
  }

  for (const size_t chunk : {size_t{1}, size_t{64}, size_t{0}}) {
    std::vector<uint32_t> E = base;
    std::vector<uint32_t> D(degs.begin(), degs.end());
    workspace ws;
    const frontier_result run = parallel::frontier_edge_for(
        degs.size(), [&](size_t fi) { return degs[fi]; }, ws,
        [&](size_t fi, uint32_t jlo, uint32_t jhi, uint32_t deg) -> uint32_t {
          uint32_t k = jlo;
          for (uint32_t j = jlo; j < jhi; ++j) {
            const uint32_t x = E[off[fi] + j];
            if (x < 3) {
              // lint: private-write(piece owns slots [jlo, jhi) of entry fi)
              E[off[fi] + k] = x;
              ++k;
            }
          }
          if (jlo == 0 && jhi == deg) {
            // lint: private-write(whole-entry piece: sole writer)
            D[fi] = k;
          }
          return k - jlo;
        },
        frontier_edge_opts{chunk});
    parallel::fix_split_pieces(
        run.partials,
        [&](uint32_t fi, uint32_t dst, uint32_t src, uint32_t len) {
          std::copy(E.begin() + off[fi] + src, E.begin() + off[fi] + src + len,
                    E.begin() + off[fi] + dst);
        },
        [&](uint32_t fi, uint32_t kept) {
          // lint: private-write(one leader task per split entry)
          D[fi] = kept;
        });
    for (size_t fi = 0; fi < degs.size(); ++fi) {
      ASSERT_EQ(D[fi], expect[fi].size()) << "entry " << fi << " chunk " << chunk;
      for (size_t k = 0; k < expect[fi].size(); ++k) {
        ASSERT_EQ(E[off[fi] + k], expect[fi][k])
            << "entry " << fi << " slot " << k << " chunk " << chunk;
      }
    }
  }
}

TEST(FixSplitPieces, EmptyIsNoOp) {
  parallel::fix_split_pieces(
      std::span<const frontier_piece>{},
      [&](uint32_t, uint32_t, uint32_t, uint32_t) { FAIL(); },
      [&](uint32_t, uint32_t) { FAIL(); });
}

// ---------------------------------------------------------------------------
// Pipeline-level determinism across thread counts and backends.

TEST(Determinism, DecompMinClusterLabelsAcrossThreadCounts) {
  const graph::graph g = graph::rmat_graph(4096, 30000, 11);
  ldd::options opt;
  opt.beta = 0.2;
  opt.seed = 42;
  std::vector<vertex_id> reference;
  for (const backend b : kBackends) {
    scoped_backend bg(b);
    for (const int workers : {1, 2, 4}) {
      scoped_workers wg(workers);
      const ldd::result dec = ldd::decompose_min(g, opt);
      if (reference.empty()) {
        reference = dec.cluster;
        ASSERT_FALSE(reference.empty());
      } else {
        ASSERT_EQ(dec.cluster, reference)
            << "backend " << static_cast<int>(b) << " workers " << workers;
      }
    }
  }
}

TEST(Determinism, ContractDedupOutputAcrossThreadCounts) {
  const graph::graph g = graph::rmat_graph(2048, 20000, 13);
  ldd::options opt;
  opt.beta = 0.25;
  opt.seed = 7;
  // Fix one decomposition, then contract it repeatedly: the dedup insert
  // races pick arbitrary winners, but the final CSR must not depend on
  // them (the sort is total on the distinct keys).
  ldd::work_graph wg = ldd::work_graph::from(g);
  const ldd::result dec = ldd::decomp_min(wg, opt, nullptr);
  std::vector<edge_id> ref_off;
  std::vector<vertex_id> ref_edges;
  for (const backend b : kBackends) {
    scoped_backend bg(b);
    for (const int workers : {1, 2, 4}) {
      scoped_workers wkg(workers);
      const cc::contraction con = cc::contract(wg, dec, /*dedup=*/true);
      if (ref_off.empty()) {
        ref_off = con.contracted.offsets();
        ref_edges = con.contracted.edges();
        ASSERT_FALSE(ref_off.empty());
      } else {
        ASSERT_EQ(con.contracted.offsets(), ref_off)
            << "backend " << static_cast<int>(b) << " workers " << workers;
        ASSERT_EQ(con.contracted.edges(), ref_edges)
            << "backend " << static_cast<int>(b) << " workers " << workers;
      }
    }
  }
}

TEST(Determinism, ComponentIndexGroupingIsSortedAndStable) {
  const graph::graph g = graph::rmat_graph(2048, 12000, 17);
  const std::vector<vertex_id> labels = cc::connected_components(g);
  std::vector<std::vector<vertex_id>> reference;
  for (const int workers : {1, 4}) {
    scoped_workers wg(workers);
    const cc::component_index idx(labels);
    std::vector<std::vector<vertex_id>> got;
    for (size_t c = 0; c < idx.num_components(); ++c) {
      const std::span<const vertex_id> mem =
          idx.members(static_cast<vertex_id>(c));
      got.emplace_back(mem.begin(), mem.end());
      // Members are emitted in ascending vertex order (stable radix sort).
      EXPECT_TRUE(std::is_sorted(mem.begin(), mem.end()));
    }
    if (reference.empty()) {
      reference = std::move(got);
    } else {
      ASSERT_EQ(got, reference) << "workers " << workers;
    }
  }
}

}  // namespace
