// sf_engine: the workspace-backed labels+forest executor behind
// spanning_forest.
//
//   (1) run() agrees with the one-shot API and with connectivity
//       (forest valid, labels the same partition as the oracle);
//   (2) the forest and the labels are bit-identical across worker counts
//       and scheduler backends (the two-phase claim protocol's whole
//       point), and stable across repeated runs of a warm engine;
//   (3) after warm-up, run() converges to zero heap allocation (global
//       operator-new hook, same discipline as test_cc_engine.cpp);
//   (4) through the registry, the reorder wrapper maps the forest back to
//       original vertex ids for every policy on a skew-heavy corpus.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/sf_engine.hpp"
#include "core/spanning_forest.hpp"
#include "test_helpers.hpp"

// ---------------------------------------------------------------------------
// Allocation counting hook (see test_cc_engine.cpp for the rationale and
// the ASan caveat — the Release CI job is the one that enforces the
// zero-allocation assertions).
#if defined(__SANITIZE_ADDRESS__)
#define PCC_NO_ALLOC_HOOK 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PCC_NO_ALLOC_HOOK 1
#endif
#endif

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<size_t> g_alloc_count{0};

#ifndef PCC_NO_ALLOC_HOOK
inline void note_alloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void* counted_alloc(size_t size) {
  note_alloc();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(size_t size, size_t align) {
  note_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
#endif  // PCC_NO_ALLOC_HOOK

}  // namespace

#ifndef PCC_NO_ALLOC_HOOK
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // PCC_NO_ALLOC_HOOK
// ---------------------------------------------------------------------------

namespace pcc {
namespace {

using baselines::union_find;
using cc::cc_options;
using cc::sf_engine;

// Full validation of a claimed spanning forest of g (span flavour of the
// helper in test_spanning_forest.cpp).
void expect_valid_forest(const graph::graph& g,
                         std::span<const graph::edge> forest) {
  const size_t n = g.num_vertices();
  const auto ref = graph::reference_components(g);
  size_t num_components = 0;
  for (size_t v = 0; v < n; ++v) {
    if (ref[v] == v) ++num_components;
  }
  ASSERT_EQ(forest.size(), n - num_components);

  std::set<std::pair<vertex_id, vertex_id>> edge_set;
  for (size_t u = 0; u < n; ++u) {
    for (vertex_id w : g.neighbors(static_cast<vertex_id>(u))) {
      edge_set.insert({static_cast<vertex_id>(u), w});
    }
  }
  union_find uf(n);
  for (const auto& [u, w] : forest) {
    ASSERT_TRUE(edge_set.contains({u, w}))
        << "(" << u << "," << w << ") is not a graph edge";
    ASSERT_TRUE(uf.unite(u, w)) << "cycle through (" << u << "," << w << ")";
  }
  for (size_t v = 0; v < n; ++v) {
    EXPECT_EQ(uf.find(static_cast<vertex_id>(v)), uf.find(ref[v]))
        << "forest does not span component of vertex " << v;
  }
}

// Same partition: identical equivalence classes, labels may differ.
void expect_same_partition(std::span<const vertex_id> a,
                           std::span<const vertex_id> b,
                           const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  std::map<vertex_id, vertex_id> a2b, b2a;
  for (size_t v = 0; v < a.size(); ++v) {
    const auto ia = a2b.insert({a[v], b[v]});
    ASSERT_EQ(ia.first->second, b[v]) << what << " vertex " << v;
    const auto ib = b2a.insert({b[v], a[v]});
    ASSERT_EQ(ib.first->second, a[v]) << what << " vertex " << v;
  }
}

TEST(SfEngine, MatchesOneShotExactly) {
  // The one-shot API is a thin wrapper over a fresh engine, and the
  // pipeline is deterministic — so a reused engine must reproduce the
  // one-shot forest edge for edge, run after run.
  const graph::graph g = graph::rmat_graph(4096, 16000, 17);
  cc_options opt;
  opt.seed = 99;
  const std::vector<graph::edge> oneshot = cc::spanning_forest(g, opt);
  sf_engine engine(opt);
  for (int rep = 0; rep < 3; ++rep) {
    const sf_engine::result r = engine.run(g);
    ASSERT_EQ(r.forest.size(), oneshot.size()) << "rep " << rep;
    for (size_t i = 0; i < oneshot.size(); ++i) {
      ASSERT_EQ(r.forest[i], oneshot[i]) << "rep " << rep << " edge " << i;
    }
  }
}

TEST(SfEngine, ValidOnCorpusBothBackends) {
  for (auto b : {parallel::backend::kOpenMP, parallel::backend::kThreadPool}) {
    parallel::scoped_backend guard(b);
    sf_engine engine;
    for (const auto& gc : pcc::testing::correctness_corpus()) {
      const graph::graph g = gc.make();
      const sf_engine::result r = engine.run(g);
      ASSERT_EQ(r.labels.size(), g.num_vertices()) << gc.name;
      expect_valid_forest(g, r.forest);
      if (g.num_vertices() == 0) continue;
      const std::vector<vertex_id> copy(r.labels.begin(), r.labels.end());
      EXPECT_TRUE(baselines::is_valid_components_labeling(g, copy)) << gc.name;
      EXPECT_TRUE(baselines::labels_are_representatives(copy)) << gc.name;
      // Labels and forest tell the same connectivity story.
      EXPECT_EQ(r.forest.size(), g.num_vertices() - cc::num_components(copy))
          << gc.name;
    }
  }
}

TEST(SfEngine, ForestAndLabelsIdenticalAcrossWorkersAndBackends) {
  // The determinism contract: forest AND labels are a pure function of
  // (graph, options) — bit-identical across worker counts and scheduler
  // backends. This is what the two-phase claim resolution buys; a CAS
  // free-for-all would pass every validity check above and still fail
  // here.
  const struct {
    const char* name;
    graph::graph g;
  } cases[] = {
      {"rmat", graph::rmat_graph(8192, 40000, 29)},
      {"random_multi", graph::random_graph(8000, 2, 5)},
      {"grid3d", graph::grid3d_graph(4096, true, 5)},
  };
  cc_options opt;
  opt.seed = 12345;
  for (const auto& c : cases) {
    // Baseline: one worker, OpenMP.
    std::vector<graph::edge> base_forest;
    std::vector<vertex_id> base_labels;
    {
      parallel::scoped_workers one(1);
      sf_engine engine(opt);
      const sf_engine::result r = engine.run(c.g);
      base_forest.assign(r.forest.begin(), r.forest.end());
      base_labels.assign(r.labels.begin(), r.labels.end());
    }
    for (auto b :
         {parallel::backend::kOpenMP, parallel::backend::kThreadPool}) {
      parallel::scoped_backend guard(b);
      for (int workers : {1, 2, 3, 4, 8}) {
        parallel::scoped_workers w(workers);
        sf_engine engine(opt);
        const sf_engine::result r = engine.run(c.g);
        const std::string what =
            std::string(c.name) + " workers=" + std::to_string(workers) +
            " backend=" +
            (b == parallel::backend::kThreadPool ? "pool" : "openmp");
        ASSERT_EQ(r.forest.size(), base_forest.size()) << what;
        for (size_t i = 0; i < base_forest.size(); ++i) {
          ASSERT_EQ(r.forest[i], base_forest[i]) << what << " edge " << i;
        }
        ASSERT_EQ(r.labels.size(), base_labels.size()) << what;
        for (size_t v = 0; v < base_labels.size(); ++v) {
          ASSERT_EQ(r.labels[v], base_labels[v]) << what << " vertex " << v;
        }
      }
    }
  }
}

TEST(SfEngine, PerRunOptionsOverrideConstructorOptions) {
  const graph::graph g = graph::random_graph(5000, 4, 3);
  sf_engine engine;  // defaults
  for (double beta : {0.05, 0.5}) {
    for (uint64_t seed : {7u, 8u}) {
      cc_options opt;
      opt.beta = beta;
      opt.seed = seed;
      const sf_engine::result r = engine.run(g, opt);
      expect_valid_forest(g, r.forest);
      // Must match a one-shot with the same knobs.
      const auto oneshot = cc::spanning_forest(g, opt);
      ASSERT_EQ(r.forest.size(), oneshot.size());
      for (size_t i = 0; i < oneshot.size(); ++i) {
        ASSERT_EQ(r.forest[i], oneshot[i])
            << "beta=" << beta << " seed=" << seed << " edge " << i;
      }
    }
  }
}

TEST(SfEngine, ReusableAcrossDifferentGraphs) {
  sf_engine engine;
  std::vector<pcc::testing::graph_case> probes = {
      {"cycle", [] { return graph::cycle_graph(1000); }},
      {"mixture",
       [] {
         std::vector<graph::graph> parts;
         parts.push_back(graph::cycle_graph(50));
         parts.push_back(graph::star_graph(40));
         parts.push_back(graph::empty_graph(30));
         return graph::disjoint_union(parts);
       }},
      {"random30k", [] { return graph::random_graph(30000, 8, 3); }},
      {"tiny", [] { return graph::empty_graph(5); }},
      {"grid", [] { return graph::grid3d_graph(8000, true, 5); }},
  };
  for (const auto& p : probes) {
    const graph::graph g = p.make();
    const sf_engine::result r = engine.run(g);
    expect_valid_forest(g, r.forest);
    // last_forest() mirrors the span the result carries.
    ASSERT_EQ(engine.last_forest().size(), r.forest.size()) << p.name;
  }
}

TEST(SfEngine, EmptyAndTrivialInputs) {
  sf_engine engine;
  EXPECT_TRUE(engine.run(graph::empty_graph(0)).forest.empty());
  EXPECT_TRUE(engine.run(graph::empty_graph(0)).labels.empty());
  const auto one = engine.run(graph::empty_graph(1));
  EXPECT_TRUE(one.forest.empty());
  ASSERT_EQ(one.labels.size(), 1u);
  EXPECT_EQ(one.labels[0], 0u);
  const auto iso = engine.run(graph::empty_graph(64));
  EXPECT_TRUE(iso.forest.empty());
  for (size_t v = 0; v < 64; ++v) EXPECT_EQ(iso.labels[v], v);
}

TEST(SfEngine, HotPathRunIsAllocationFree) {
  // Same convergence discipline as CcEngine.HotPathRunIsAllocationFree:
  // run 1 grows the arenas, run 2 consolidates them, and after that the
  // engine must reach an allocation-free run within a few attempts (the
  // forest pipeline is deterministic, so in practice the third run is
  // already clean — the retry loop only absorbs backend-side lazies like
  // thread-pool bootstrap).
  for (auto b : {parallel::backend::kOpenMP, parallel::backend::kThreadPool}) {
    parallel::scoped_backend guard(b);
    const graph::graph g = graph::random_graph(20000, 5, 7);
    sf_engine engine;
    engine.run(g);  // warm-up: arenas chain chunks as needed
    engine.run(g);  // warm-up: reset() consolidates to high-water mark

    bool saw_clean_run = false;
    sf_engine::result r;
    for (int attempt = 0; attempt < 10 && !saw_clean_run; ++attempt) {
      g_alloc_count.store(0, std::memory_order_relaxed);
      g_count_allocs.store(true, std::memory_order_relaxed);
      r = engine.run(g);
      g_count_allocs.store(false, std::memory_order_relaxed);
      saw_clean_run = g_alloc_count.load(std::memory_order_relaxed) == 0;
    }

    EXPECT_TRUE(saw_clean_run)
        << "no allocation-free run in 10 attempts; backend "
        << (b == parallel::backend::kOpenMP ? "omp" : "pool");
    expect_valid_forest(g, r.forest);
  }
}

TEST(SfEngine, ReserveFrontLoadsAllocation) {
  const graph::graph g = graph::rmat_graph(8192, 40000, 11);
  sf_engine engine;
  engine.reserve(g.num_vertices(), g.num_edges());
  engine.run(g);
  engine.run(g);

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  engine.run(g);
  g_count_allocs.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u);
}

// ---------------------------------------------------------------------------
// The registry + reorder surface: "spanning-forest" runs through
// run_algorithm, and the reorder wrapper maps the forest's endpoints back
// to original vertex ids for every policy. The forest may legitimately
// DIFFER across policies (the decomposition sees a different id layout, so
// it picks different tree edges) — what must hold is that each one is a
// valid spanning forest of the ORIGINAL graph and describes the same
// component partition.

constexpr cc::reorder_policy kFixedPolicies[] = {
    cc::reorder_policy::kNone, cc::reorder_policy::kDegree,
    cc::reorder_policy::kHub, cc::reorder_policy::kBfs};

std::vector<testing::graph_case> skew_corpus() {
  using namespace pcc::graph;
  return {
      {"rmat_skew",
       [] {
         return rmat_graph(8192, 60000, 29, {.a = 0.5, .b = 0.1, .c = 0.1});
       }},
      {"path5000", [] { return line_graph(5000); }},
      {"star4000", [] { return star_graph(4000); }},
      {"social", [] { return social_network_like(1200, 31); }},
      {"mixture",
       [] {
         std::vector<pcc::graph::graph> parts;
         parts.push_back(star_graph(500));
         parts.push_back(line_graph(400));
         parts.push_back(rmat_graph(1024, 6000, 37));
         parts.push_back(empty_graph(50));
         return disjoint_union(parts);
       }},
  };
}

class SfReorder : public ::testing::TestWithParam<testing::graph_case> {};

TEST_P(SfReorder, ForestValidAcrossPoliciesAndBackends) {
  const graph::graph g = GetParam().make();
  const size_t n = g.num_vertices();
  const cc::algorithm* algo = cc::find_algorithm("spanning-forest");
  ASSERT_NE(algo, nullptr);
  ASSERT_TRUE(algo->produces_forest);
  cc::algo_workspace ws;

  cc_options base_opt;
  base_opt.reorder = cc::reorder_policy::kNone;
  std::vector<vertex_id> baseline(n);
  cc::run_algorithm(*algo, g, base_opt, ws, baseline);

  for (const parallel::backend backend :
       {parallel::backend::kOpenMP, parallel::backend::kThreadPool}) {
    const parallel::scoped_backend bg(backend);
    for (const cc::reorder_policy policy : kFixedPolicies) {
      cc_options opt;
      opt.reorder = policy;
      std::vector<vertex_id> labels(n);
      cc::run_algorithm(*algo, g, opt, ws, labels);
      const std::string what =
          std::string("policy=") + cc::reorder_policy_name(policy) +
          " backend=" +
          (backend == parallel::backend::kThreadPool ? "pool" : "openmp");
      // The mapped-back forest is a spanning forest of the ORIGINAL graph.
      expect_valid_forest(g, ws.last_forest);
      expect_same_partition(labels, baseline, what);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SkewCorpus, SfReorder,
                         ::testing::ValuesIn(skew_corpus()),
                         testing::graph_case_name{});

TEST(SfRegistry, NonForestAlgorithmsClearLastForest) {
  const graph::graph g = graph::random_graph(2000, 4, 3);
  cc::algo_workspace ws;
  std::vector<vertex_id> labels(g.num_vertices());
  const cc::algorithm* sf = cc::find_algorithm("spanning-forest");
  ASSERT_NE(sf, nullptr);
  cc::run_algorithm(*sf, g, {}, ws, labels);
  EXPECT_FALSE(ws.last_forest.empty());

  const cc::algorithm* plain = cc::find_algorithm("decomp-arb-hybrid");
  ASSERT_NE(plain, nullptr);
  EXPECT_FALSE(plain->produces_forest);
  cc::run_algorithm(*plain, g, {}, ws, labels);
  EXPECT_TRUE(ws.last_forest.empty());
}

}  // namespace
}  // namespace pcc
