// Low-diameter decomposition invariants for all three variants and both
// shift schedules:
//   (1) well-formedness: every vertex labeled with a self-labeled center
//       and clusters are induced-connected;
//   (2) the kept-edge bookkeeping exactly matches the inter-cluster edges;
//   (3) cluster diameter respects the O(log n / beta) bound;
//   (4) the expected inter-cluster edge fraction respects the beta
//       (Decomp-Min) / 2*beta (Decomp-Arb) bound, measured over seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "test_helpers.hpp"

namespace pcc {
namespace {

using ldd::check_decomposition;
using ldd::options;
using ldd::result;
using ldd::work_graph;

using decomp_fn = result (*)(work_graph&, const options&,
                             parallel::phase_timer*);

struct ldd_param {
  std::string name;
  decomp_fn fn;
  ldd::shift_mode shifts;
};

std::vector<ldd_param> all_variants() {
  return {
      {"min_chunk", &ldd::decomp_min, ldd::shift_mode::kPermutationChunks},
      {"min_exp", &ldd::decomp_min, ldd::shift_mode::kExponentialShifts},
      {"arb_chunk", &ldd::decomp_arb, ldd::shift_mode::kPermutationChunks},
      {"arb_exp", &ldd::decomp_arb, ldd::shift_mode::kExponentialShifts},
      {"hyb_chunk", &ldd::decomp_arb_hybrid,
       ldd::shift_mode::kPermutationChunks},
      {"hyb_exp", &ldd::decomp_arb_hybrid,
       ldd::shift_mode::kExponentialShifts},
  };
}

class LddVariants : public ::testing::TestWithParam<ldd_param> {};

// Gather the kept edges of a decomposed work_graph as (source, target
// cluster label) and check they are exactly the inter-cluster edges of g.
void expect_kept_edges_exact(const graph::graph& g, const work_graph& wg,
                             const result& dec) {
  std::multiset<std::pair<vertex_id, vertex_id>> kept;
  for (size_t v = 0; v < wg.n; ++v) {
    const edge_id start = wg.offsets[v];
    for (vertex_id i = 0; i < wg.degrees[v]; ++i) {
      kept.insert({static_cast<vertex_id>(v), wg.edges[start + i]});
    }
  }
  std::multiset<std::pair<vertex_id, vertex_id>> expected;
  for (size_t u = 0; u < g.num_vertices(); ++u) {
    for (vertex_id w : g.neighbors(static_cast<vertex_id>(u))) {
      if (dec.cluster[u] != dec.cluster[w]) {
        expected.insert({static_cast<vertex_id>(u), dec.cluster[w]});
      }
    }
  }
  EXPECT_EQ(kept, expected);
  EXPECT_EQ(dec.edges_kept, expected.size());
}

TEST_P(LddVariants, WellFormedOnCorpus) {
  const auto& p = GetParam();
  for (const auto& gc : pcc::testing::correctness_corpus()) {
    const graph::graph g = gc.make();
    work_graph wg = work_graph::from(g);
    options opt;
    opt.beta = 0.2;
    opt.shifts = p.shifts;
    const result dec = p.fn(wg, opt, nullptr);
    ASSERT_EQ(dec.cluster.size(), g.num_vertices());
    if (g.num_vertices() == 0) continue;
    const auto q = check_decomposition(g, dec.cluster);
    EXPECT_TRUE(q.well_formed) << gc.name;
    EXPECT_EQ(q.num_clusters, dec.num_clusters) << gc.name;
    expect_kept_edges_exact(g, wg, dec);
  }
}

TEST_P(LddVariants, DiameterWithinBound) {
  const auto& p = GetParam();
  // Diameter bound is O(log n / beta) w.h.p.; use a generous constant.
  for (double beta : {0.1, 0.4}) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      const graph::graph g = graph::grid3d_graph(8000, true, seed);
      work_graph wg = work_graph::from(g);
      options opt;
      opt.beta = beta;
      opt.seed = seed;
      opt.shifts = p.shifts;
      const result dec = p.fn(wg, opt, nullptr);
      const auto q = check_decomposition(g, dec.cluster);
      ASSERT_TRUE(q.well_formed);
      const double bound =
          8.0 * std::log(static_cast<double>(g.num_vertices())) / beta;
      EXPECT_LT(static_cast<double>(q.max_cluster_diameter), bound)
          << "beta=" << beta << " seed=" << seed;
      // Rounds track the radius bound too.
      EXPECT_LT(static_cast<double>(dec.num_rounds), bound + 2);
    }
  }
}

TEST_P(LddVariants, InterClusterFractionWithinExpectation) {
  const auto& p = GetParam();
  // Theorem 2: E[inter-cluster edges] <= 2*beta*m for Arb (beta*m for Min).
  // Average the measured fraction over seeds and require it below the bound
  // with slack for variance. Use a graph where the bound is not trivially
  // slack (grid: most edges are intra-cluster candidates).
  const graph::graph g = graph::grid3d_graph(4096, true, 99);
  for (double beta : {0.1, 0.2}) {
    double total_fraction = 0;
    const int kSeeds = 8;
    for (int seed = 0; seed < kSeeds; ++seed) {
      work_graph wg = work_graph::from(g);
      options opt;
      opt.beta = beta;
      opt.seed = static_cast<uint64_t>(seed) * 71 + 5;
      opt.shifts = p.shifts;
      const result dec = p.fn(wg, opt, nullptr);
      total_fraction +=
          static_cast<double>(dec.edges_kept) /
          static_cast<double>(g.num_edges());
    }
    const double mean_fraction = total_fraction / kSeeds;
    EXPECT_LT(mean_fraction, 2.0 * beta * 1.3)
        << "beta=" << beta << " variant=" << p.name;
    EXPECT_GT(mean_fraction, 0.0);
  }
}

TEST_P(LddVariants, SmallBetaGivesFewerBiggerClusters) {
  const auto& p = GetParam();
  const graph::graph g = graph::random_graph(20000, 5, 7);
  size_t clusters_small_beta = 0;
  size_t clusters_big_beta = 0;
  {
    work_graph wg = work_graph::from(g);
    options opt;
    opt.beta = 0.05;
    clusters_small_beta = p.fn(wg, opt, nullptr).num_clusters;
  }
  {
    work_graph wg = work_graph::from(g);
    options opt;
    opt.beta = 0.8;
    clusters_big_beta = p.fn(wg, opt, nullptr).num_clusters;
  }
  EXPECT_LT(clusters_small_beta, clusters_big_beta);
}

TEST_P(LddVariants, DeterministicGivenSeed) {
  parallel::scoped_workers one(1);  // see note in test_connectivity
  const auto& p = GetParam();
  const graph::graph g = graph::rmat_graph(4096, 20000, 3);
  options opt;
  opt.seed = 1234;
  opt.shifts = p.shifts;
  work_graph wg1 = work_graph::from(g);
  work_graph wg2 = work_graph::from(g);
  const result a = p.fn(wg1, opt, nullptr);
  const result b = p.fn(wg2, opt, nullptr);
  EXPECT_EQ(a.cluster, b.cluster);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  ASSERT_EQ(wg1.degrees.size(), wg2.degrees.size());
  for (size_t v = 0; v < wg1.degrees.size(); ++v) {
    ASSERT_EQ(wg1.degrees[v], wg2.degrees[v]) << v;
  }
}

TEST_P(LddVariants, SingleClusterWhenGraphFitsOneBall) {
  // On a tiny connected graph with small beta, round 0's single center
  // usually swallows everything; at minimum the decomposition is valid and
  // clusters never outnumber vertices.
  const auto& p = GetParam();
  const graph::graph g = graph::complete_graph(32);
  work_graph wg = work_graph::from(g);
  options opt;
  opt.beta = 0.05;
  const result dec = p.fn(wg, opt, nullptr);
  EXPECT_GE(dec.num_clusters, 1u);
  EXPECT_LE(dec.num_clusters, 32u);
  EXPECT_TRUE(check_decomposition(g, dec.cluster).well_formed);
}

INSTANTIATE_TEST_SUITE_P(Variants, LddVariants,
                         ::testing::ValuesIn(all_variants()),
                         [](const ::testing::TestParamInfo<ldd_param>& info) {
                           return info.param.name;
                         });

TEST(LddWrappers, NonDestructiveConvenienceFunctions) {
  const graph::graph g = graph::cycle_graph(500);
  const auto a = ldd::decompose_min(g);
  const auto b = ldd::decompose_arb(g);
  const auto c = ldd::decompose_arb_hybrid(g);
  for (const auto& dec : {a, b, c}) {
    EXPECT_TRUE(check_decomposition(g, dec.cluster).well_formed);
  }
  // g unchanged (wrappers copy).
  EXPECT_EQ(g.num_edges(), 1000u);
}

TEST(LddHybrid, DenseRoundsTriggerOnDenseGraph) {
  // A complete-ish graph floods the frontier immediately.
  const graph::graph g = graph::complete_graph(200);
  work_graph wg = work_graph::from(g);
  options opt;
  opt.beta = 0.5;
  opt.dense_threshold = 0.05;
  const auto dec = ldd::decomp_arb_hybrid(wg, opt, nullptr);
  EXPECT_GT(dec.num_dense_rounds, 0u);
  EXPECT_TRUE(check_decomposition(g, dec.cluster).well_formed);
}

TEST(LddHybrid, NeverDenseOnLine) {
  // The paper observes the line graph's frontier never reaches the dense
  // threshold.
  const graph::graph g = graph::line_graph(2000);
  work_graph wg = work_graph::from(g);
  options opt;
  opt.beta = 0.1;
  const auto dec = ldd::decomp_arb_hybrid(wg, opt, nullptr);
  EXPECT_EQ(dec.num_dense_rounds, 0u);
}

TEST(LddHybrid, ThresholdZeroForcesAllDense) {
  const graph::graph g = graph::grid3d_graph(1000, true, 3);
  work_graph wg = work_graph::from(g);
  options opt;
  opt.beta = 0.2;
  opt.dense_threshold = 0.0;
  const auto dec = ldd::decomp_arb_hybrid(wg, opt, nullptr);
  EXPECT_EQ(dec.num_dense_rounds, dec.num_rounds);
  EXPECT_TRUE(check_decomposition(g, dec.cluster).well_formed);
}

TEST(LddPhases, TimersUseTheFigureNames) {
  const graph::graph g = graph::random_graph(5000, 5, 1);
  options opt;

  parallel::phase_timer pt_min;
  work_graph wg1 = work_graph::from(g);
  ldd::decomp_min(wg1, opt, &pt_min);
  EXPECT_TRUE(pt_min.phases().contains("bfsPhase1"));
  EXPECT_TRUE(pt_min.phases().contains("bfsPhase2"));
  EXPECT_TRUE(pt_min.phases().contains("bfsPre"));

  parallel::phase_timer pt_arb;
  work_graph wg2 = work_graph::from(g);
  ldd::decomp_arb(wg2, opt, &pt_arb);
  EXPECT_TRUE(pt_arb.phases().contains("bfsMain"));

  parallel::phase_timer pt_hyb;
  work_graph wg3 = work_graph::from(g);
  ldd::decomp_arb_hybrid(wg3, opt, &pt_hyb);
  EXPECT_TRUE(pt_hyb.phases().contains("filterEdges"));
  EXPECT_TRUE(pt_hyb.phases().contains("bfsSparse"));
}

}  // namespace
}  // namespace pcc
