// cc_engine: the reusable workspace-backed executor behind
// connected_components.
//
//   (1) run() agrees with the one-shot API for every variant on both
//       scheduler backends;
//   (2) after warm-up, run() converges to zero heap allocation (counted
//       with a global operator-new hook — the whole library allocates
//       through operator new, so a zero count really means "no
//       allocation"; "converges" because schedule-dependent decomposition
//       footprints can legitimately raise the arenas' high-water mark);
//   (3) one engine serves graphs of different shapes and sizes back to
//       back, including shrinking ones.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "test_helpers.hpp"

// ---------------------------------------------------------------------------
// Allocation counting hook. When g_count_allocs is set, every operator-new
// entry point bumps g_alloc_count. Deallocation stays untracked (free is
// always safe to call on pointers from malloc/aligned_alloc).
//
// Disabled under ASan: its allocator interceptors own operator new/delete,
// and mixing them with this hook trips alloc-dealloc-mismatch. The
// zero-allocation assertions become vacuous there (count stays 0); the
// plain Release CI job is the one that enforces them.
#if defined(__SANITIZE_ADDRESS__)
#define PCC_NO_ALLOC_HOOK 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PCC_NO_ALLOC_HOOK 1
#endif
#endif

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<size_t> g_alloc_count{0};

#ifndef PCC_NO_ALLOC_HOOK
inline void note_alloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void* counted_alloc(size_t size) {
  note_alloc();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(size_t size, size_t align) {
  note_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
#endif  // PCC_NO_ALLOC_HOOK

}  // namespace

#ifndef PCC_NO_ALLOC_HOOK
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // PCC_NO_ALLOC_HOOK
// ---------------------------------------------------------------------------

namespace pcc {
namespace {

using cc::cc_options;
using cc::cc_stats;
using cc::connected_components;
using cc::decomp_variant;

const std::vector<std::pair<std::string, decomp_variant>>& all_variants() {
  static const std::vector<std::pair<std::string, decomp_variant>> v = {
      {"min", decomp_variant::kMin},
      {"arb", decomp_variant::kArb},
      {"hyb", decomp_variant::kArbHybrid},
  };
  return v;
}

TEST(CcEngine, MatchesOneShotExactlyOnOneWorker) {
  // With one worker the pipeline is deterministic given the seed, so the
  // engine must reproduce the one-shot labels bit for bit.
  parallel::scoped_workers one(1);
  const graph::graph g = graph::rmat_graph(4096, 16000, 17);
  for (const auto& [vname, variant] : all_variants()) {
    cc_options opt;
    opt.algorithm = "decomp";
    opt.variant = variant;
    opt.seed = 99;
    const std::vector<vertex_id> oneshot = connected_components(g, opt);
    cc::cc_engine engine(opt);
    for (int rep = 0; rep < 3; ++rep) {
      const std::span<const vertex_id> labels = engine.run(g);
      ASSERT_EQ(labels.size(), oneshot.size()) << vname << " rep " << rep;
      for (size_t i = 0; i < labels.size(); ++i) {
        ASSERT_EQ(labels[i], oneshot[i]) << vname << " rep " << rep
                                         << " vertex " << i;
      }
    }
  }
}

TEST(CcEngine, ValidOnCorpusBothBackends) {
  for (auto b : {parallel::backend::kOpenMP, parallel::backend::kThreadPool}) {
    parallel::scoped_backend guard(b);
    for (const auto& [vname, variant] : all_variants()) {
      cc_options opt;
      opt.algorithm = "decomp";
      opt.variant = variant;
      cc::cc_engine engine(opt);
      for (const auto& gc : pcc::testing::correctness_corpus()) {
        const graph::graph g = gc.make();
        const std::span<const vertex_id> labels = engine.run(g);
        ASSERT_EQ(labels.size(), g.num_vertices()) << gc.name;
        if (g.num_vertices() == 0) continue;
        const std::vector<vertex_id> copy(labels.begin(), labels.end());
        EXPECT_TRUE(baselines::is_valid_components_labeling(g, copy))
            << vname << " on " << gc.name;
        EXPECT_TRUE(baselines::labels_are_representatives(copy))
            << vname << " on " << gc.name;
        // Same partition as the one-shot API.
        EXPECT_TRUE(baselines::labels_equivalent(
            copy, connected_components(g, opt)))
            << vname << " on " << gc.name;
      }
    }
  }
}

TEST(CcEngine, StatsMatchOneShot) {
  const graph::graph g = graph::random_graph(20000, 5, 41);
  for (const auto& [vname, variant] : all_variants()) {
    cc_options opt;
    opt.algorithm = "decomp";
    opt.variant = variant;
    cc_stats engine_stats;
    cc::cc_engine engine(opt);
    engine.run(g, &engine_stats);
    ASSERT_FALSE(engine_stats.levels.empty()) << vname;
    EXPECT_EQ(engine_stats.levels[0].n, g.num_vertices()) << vname;
    EXPECT_EQ(engine_stats.levels[0].m, g.num_edges()) << vname;
    for (size_t i = 1; i < engine_stats.levels.size(); ++i) {
      EXPECT_LT(engine_stats.levels[i].m, engine_stats.levels[i - 1].m);
    }
    EXPECT_GT(engine_stats.phases.total(), 0.0) << vname;
    EXPECT_FALSE(engine_stats.used_fallback) << vname;
    // A second run starts stats from scratch (no accumulation surprises).
    cc_stats again;
    engine.run(g, &again);
    EXPECT_EQ(again.levels.size(), engine_stats.levels.size()) << vname;
  }
}

TEST(CcEngine, ReusableAcrossDifferentGraphs) {
  // Grow, shrink, grow again: spans from earlier runs are dead, results
  // stay correct, and num_components agrees with the construction.
  cc::cc_engine engine;
  struct probe {
    graph::graph g;
    size_t expected_components;
  };
  std::vector<probe> probes;
  probes.push_back({graph::cycle_graph(1000), 1});
  probes.push_back({graph::disjoint_union({graph::cycle_graph(50),
                                           graph::star_graph(40),
                                           graph::empty_graph(30)}),
                    32});
  probes.push_back({graph::random_graph(30000, 8, 3), 1});
  probes.push_back({graph::empty_graph(5), 5});
  probes.push_back({graph::grid3d_graph(8000, true, 5), 1});
  for (size_t pi = 0; pi < probes.size(); ++pi) {
    const auto& p = probes[pi];
    const std::span<const vertex_id> labels = engine.run(p.g);
    ASSERT_EQ(labels.size(), p.g.num_vertices()) << "probe " << pi;
    const std::vector<vertex_id> copy(labels.begin(), labels.end());
    EXPECT_TRUE(baselines::is_valid_components_labeling(p.g, copy))
        << "probe " << pi;
    EXPECT_EQ(cc::num_components(copy), p.expected_components)
        << "probe " << pi;
  }
}

TEST(CcEngine, EmptyAndTrivialInputs) {
  cc::cc_engine engine;
  EXPECT_TRUE(engine.run(graph::empty_graph(0)).empty());
  const auto one = engine.run(graph::empty_graph(1));
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
  const auto iso = engine.run(graph::empty_graph(64));
  for (size_t v = 0; v < 64; ++v) EXPECT_EQ(iso[v], v);
}

TEST(CcEngine, HotPathRunIsAllocationFree) {
  // Run 1 grows the arenas chunk by chunk; run 2 pays a single coalescing
  // allocation when reset() folds them into one high-water chunk. After
  // that a run allocates only if it needs a deeper footprint than any run
  // before it — which the schedule-dependent decompositions genuinely can
  // (kArb's cluster shapes ride on benign races, so contraction sizes vary
  // run to run, especially under TSan's interleavings). Capacity is
  // monotone, so the engine must reach an allocation-free run within a few
  // attempts; an engine that allocated unconditionally on the hot path
  // (per-level vectors, per-round scratch) would never produce one.
  for (auto b : {parallel::backend::kOpenMP, parallel::backend::kThreadPool}) {
    parallel::scoped_backend guard(b);
    for (const auto& [vname, variant] : all_variants()) {
      const graph::graph g = graph::random_graph(20000, 5, 7);
      cc_options opt;
      opt.algorithm = "decomp";
      opt.variant = variant;
      cc::cc_engine engine(opt);
      engine.run(g);  // warm-up: arenas chain chunks as needed
      engine.run(g);  // warm-up: reset() consolidates to high-water mark

      bool saw_clean_run = false;
      std::span<const vertex_id> labels;
      for (int attempt = 0; attempt < 10 && !saw_clean_run; ++attempt) {
        g_alloc_count.store(0, std::memory_order_relaxed);
        g_count_allocs.store(true, std::memory_order_relaxed);
        labels = engine.run(g);
        g_count_allocs.store(false, std::memory_order_relaxed);
        saw_clean_run = g_alloc_count.load(std::memory_order_relaxed) == 0;
      }

      EXPECT_TRUE(saw_clean_run)
          << "no allocation-free run in 10 attempts; variant " << vname
          << " backend " << (b == parallel::backend::kOpenMP ? "omp" : "pool");
      const std::vector<vertex_id> copy(labels.begin(), labels.end());
      EXPECT_TRUE(baselines::is_valid_components_labeling(g, copy)) << vname;
    }
  }
}

TEST(CcEngine, ReserveFrontLoadsAllocation) {
  // After reserve() sized for the graph and one warm-up run (contract's
  // exact transient sizes depend on the decomposition), the arenas are
  // consolidated and the next run is allocation-free.
  const graph::graph g = graph::rmat_graph(8192, 40000, 11);
  cc::cc_engine engine;
  engine.reserve(g.num_vertices(), g.num_edges());
  engine.run(g);
  engine.run(g);

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  engine.run(g);
  g_count_allocs.store(false, std::memory_order_relaxed);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u);
}

TEST(CcEngine, OptionsAreHonored) {
  const graph::graph g = graph::random_graph(4000, 3, 21);
  cc_options opt;
  opt.algorithm = "decomp";
  opt.beta = 0.1;
  opt.dedup = false;
  opt.variant = decomp_variant::kArb;
  cc::cc_engine engine(opt);
  EXPECT_EQ(engine.options().beta, 0.1);
  EXPECT_FALSE(engine.options().dedup);
  const std::span<const vertex_id> labels = engine.run(g);
  const std::vector<vertex_id> copy(labels.begin(), labels.end());
  EXPECT_TRUE(baselines::is_valid_components_labeling(g, copy));
}

}  // namespace
}  // namespace pcc
