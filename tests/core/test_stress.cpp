// Concurrency stress: run the full pipeline with deliberately many OpenMP
// workers (oversubscribed on small machines — maximum interleaving) and
// with tiny grains, to shake out races that a single-threaded run hides.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace pcc {
namespace {

using cc::cc_options;
using cc::connected_components;
using cc::decomp_variant;

class OversubscribedWorkers : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { parallel::set_num_workers(GetParam()); }
  void TearDown() override { parallel::set_num_workers(saved_); }
  int saved_ = parallel::num_workers();
};

TEST_P(OversubscribedWorkers, AllVariantsOnContendedGraphs) {
  // cliques_with_bridges maximizes CAS contention (many frontier vertices
  // fight over the same neighbours); rmat adds skew.
  const std::vector<graph::graph> graphs = {
      graph::cliques_with_bridges(40, 20),
      graph::rmat_graph(8192, 60000, 5),
      graph::random_graph(20000, 5, 7),
  };
  for (const auto& g : graphs) {
    for (auto v : {decomp_variant::kMin, decomp_variant::kArb,
                   decomp_variant::kArbHybrid}) {
      cc_options opt;
      opt.algorithm = "decomp";
      opt.variant = v;
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        opt.seed = seed;
        const auto labels = connected_components(g, opt);
        ASSERT_TRUE(baselines::is_valid_components_labeling(g, labels))
            << cc::variant_name(v) << " seed=" << seed;
      }
    }
  }
}

TEST_P(OversubscribedWorkers, ParallelBaselinesRepeated) {
  const graph::graph g = graph::cliques_with_bridges(30, 15);
  const auto reference = baselines::serial_sf_components(g);
  for (int rep = 0; rep < 5; ++rep) {
    ASSERT_TRUE(baselines::labels_equivalent(
        reference, baselines::parallel_sf_pbbs_components(g)));
    ASSERT_TRUE(baselines::labels_equivalent(
        reference, baselines::parallel_sf_prm_components(g)));
    ASSERT_TRUE(baselines::labels_equivalent(
        reference, baselines::shiloach_vishkin_components(g)));
    ASSERT_TRUE(baselines::labels_equivalent(
        reference, baselines::awerbuch_shiloach_components(g)));
    ASSERT_TRUE(baselines::labels_equivalent(
        reference, baselines::random_mate_components(g, rep)));
  }
}

TEST_P(OversubscribedWorkers, SpanningForestRepeated) {
  const graph::graph g = graph::random_graph(10000, 3, 11);
  const auto ref = graph::reference_components(g);
  size_t comps = 0;
  for (size_t v = 0; v < ref.size(); ++v) comps += ref[v] == v ? 1 : 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    cc::cc_options opt;
    opt.seed = seed;
    const auto forest = cc::spanning_forest(g, opt);
    ASSERT_EQ(forest.size(), g.num_vertices() - comps);
    baselines::union_find uf(g.num_vertices());
    for (auto [u, w] : forest) ASSERT_TRUE(uf.unite(u, w));
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, OversubscribedWorkers,
                         ::testing::Values(2, 4, 8),
                         ::testing::PrintToStringParamName());

TEST(StressSingleThread, BigRandomEndToEnd) {
  // One larger instance end to end (kept under a second at -O2).
  const graph::graph g = graph::random_graph(150000, 5, 13);
  const auto labels = connected_components(g);
  EXPECT_TRUE(baselines::is_valid_components_labeling(g, labels));
}

}  // namespace
}  // namespace pcc
