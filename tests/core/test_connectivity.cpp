// End-to-end correctness of Algorithm 1 (connected_components) for all
// three decomposition variants, both shift schedules, dedup on/off, and a
// range of beta values, against the sequential BFS oracle.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace pcc {
namespace {

using cc::cc_options;
using cc::cc_stats;
using cc::connected_components;
using cc::decomp_variant;
using pcc::testing::correctness_corpus;
using pcc::testing::graph_case;

struct cc_param {
  std::string name;
  graph_case gc;
  cc_options opt;
};

class ConnectivityCorrectness : public ::testing::TestWithParam<cc_param> {};

TEST_P(ConnectivityCorrectness, MatchesReference) {
  const auto& p = GetParam();
  const graph::graph g = p.gc.make();
  cc_stats stats;
  const std::vector<vertex_id> labels =
      connected_components(g, p.opt, &stats);
  ASSERT_EQ(labels.size(), g.num_vertices());
  EXPECT_TRUE(baselines::is_valid_components_labeling(g, labels))
      << "labeling mismatch on " << p.gc.name;
  // The implementation's strong invariant: every label is a member vertex
  // of the component it names.
  EXPECT_TRUE(baselines::labels_are_representatives(labels));
  EXPECT_FALSE(stats.used_fallback)
      << "recursion fell back to the sequential path on " << p.gc.name;
}

std::vector<cc_param> make_params() {
  std::vector<cc_param> params;
  const std::vector<std::pair<std::string, decomp_variant>> variants = {
      {"min", decomp_variant::kMin},
      {"arb", decomp_variant::kArb},
      {"hyb", decomp_variant::kArbHybrid},
  };
  for (const auto& gc : correctness_corpus()) {
    for (const auto& [vname, variant] : variants) {
      cc_options opt;
      opt.algorithm = "decomp";
      opt.variant = variant;
      opt.beta = 0.2;
      params.push_back({gc.name + "_" + vname, gc, opt});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ConnectivityCorrectness, ::testing::ValuesIn(make_params()),
    [](const ::testing::TestParamInfo<cc_param>& info) {
      return info.param.name;
    });

// Sweep beta across its range on a fixed mid-size graph, all variants.
struct beta_param {
  std::string name;
  decomp_variant variant;
  double beta;
  ldd::shift_mode shifts;
  bool dedup;
};

class ConnectivityBetaSweep : public ::testing::TestWithParam<beta_param> {};

TEST_P(ConnectivityBetaSweep, MatchesReferenceOnRandomAndRmat) {
  const auto& p = GetParam();
  cc_options opt;
  opt.algorithm = "decomp";
  opt.variant = p.variant;
  opt.beta = p.beta;
  opt.shifts = p.shifts;
  opt.dedup = p.dedup;

  for (uint64_t seed : {1u, 2u}) {
    opt.seed = seed;
    const graph::graph g1 = graph::random_graph(4000, 3, 21 + seed);
    EXPECT_TRUE(baselines::is_valid_components_labeling(
        g1, connected_components(g1, opt)));
    const graph::graph g2 = graph::rmat_graph(4096, 12000, 23 + seed);
    EXPECT_TRUE(baselines::is_valid_components_labeling(
        g2, connected_components(g2, opt)));
  }
}

std::vector<beta_param> make_beta_params() {
  std::vector<beta_param> params;
  const std::vector<std::pair<std::string, decomp_variant>> variants = {
      {"min", decomp_variant::kMin},
      {"arb", decomp_variant::kArb},
      {"hyb", decomp_variant::kArbHybrid},
  };
  for (const auto& [vname, variant] : variants) {
    for (double beta : {0.05, 0.1, 0.2, 0.4, 0.8}) {
      for (auto shifts : {ldd::shift_mode::kPermutationChunks,
                          ldd::shift_mode::kExponentialShifts}) {
        const bool dedup = beta != 0.2;  // exercise both dedup settings
        const std::string sname =
            shifts == ldd::shift_mode::kPermutationChunks ? "chunk" : "exp";
        params.push_back({vname + "_b" + std::to_string(int(beta * 100)) +
                              "_" + sname,
                          variant, beta, shifts, dedup});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    BetaSweep, ConnectivityBetaSweep, ::testing::ValuesIn(make_beta_params()),
    [](const ::testing::TestParamInfo<beta_param>& info) {
      return info.param.name;
    });

TEST(Connectivity, EmptyGraph) {
  const graph::graph g = graph::empty_graph(0);
  EXPECT_TRUE(connected_components(g).empty());
}

TEST(Connectivity, SingleVertex) {
  const graph::graph g = graph::empty_graph(1);
  const auto labels = connected_components(g);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0], 0u);
}

TEST(Connectivity, IsolatedVerticesLabelThemselves) {
  const graph::graph g = graph::empty_graph(64);
  const auto labels = connected_components(g);
  for (size_t v = 0; v < 64; ++v) EXPECT_EQ(labels[v], v);
}

TEST(Connectivity, SelfLoopsAreHarmless) {
  // Builder normally removes self loops; feed them explicitly.
  const graph::graph g = graph::from_edges(
      4, {{0, 0}, {0, 1}, {2, 2}, {2, 3}},
      {.symmetrize = true, .remove_self_loops = false,
       .remove_duplicates = true});
  const auto labels = connected_components(g);
  EXPECT_TRUE(baselines::is_valid_components_labeling(g, labels));
}

TEST(Connectivity, DuplicateEdgesAreHarmless) {
  const graph::graph g = graph::from_edges(
      3, {{0, 1}, {0, 1}, {0, 1}, {1, 2}},
      {.symmetrize = true, .remove_self_loops = true,
       .remove_duplicates = false});
  const auto labels = connected_components(g);
  EXPECT_TRUE(baselines::is_valid_components_labeling(g, labels));
}

TEST(Connectivity, DeterministicGivenSeedOnOneWorker) {
  // With one worker the whole pipeline is deterministic given the seed.
  // (On many workers Decomp-Arb's CAS tie-breaks are schedule-dependent,
  // so only the partition — not the labels — is reproducible.)
  parallel::scoped_workers one(1);
  const graph::graph g = graph::rmat_graph(2048, 8000, 31);
  cc_options opt;
  opt.algorithm = "decomp";
  opt.seed = 99;
  const auto a = connected_components(g, opt);
  const auto b = connected_components(g, opt);
  EXPECT_EQ(a, b);
}

TEST(Connectivity, DifferentSeedsSamePartition) {
  const graph::graph g = graph::random_graph(3000, 4, 33);
  cc_options opt;
  opt.algorithm = "decomp";
  opt.seed = 1;
  const auto a = connected_components(g, opt);
  opt.seed = 2;
  const auto b = connected_components(g, opt);
  EXPECT_TRUE(baselines::labels_equivalent(a, b));
}

TEST(Connectivity, NumComponentsHelper) {
  const graph::graph g = graph::disjoint_union(
      {graph::cycle_graph(10), graph::cycle_graph(12), graph::empty_graph(3)});
  const auto labels = connected_components(g);
  EXPECT_EQ(cc::num_components(labels), 5u);
}

TEST(Connectivity, StatsRecordEdgeDecay) {
  const graph::graph g = graph::random_graph(20000, 5, 41);
  cc_options opt;
  opt.algorithm = "decomp";
  opt.beta = 0.2;
  cc_stats stats;
  const auto labels = connected_components(g, opt, &stats);
  EXPECT_TRUE(baselines::is_valid_components_labeling(g, labels));
  ASSERT_FALSE(stats.levels.empty());
  // Edge counts decrease strictly across levels.
  for (size_t i = 1; i < stats.levels.size(); ++i) {
    EXPECT_LT(stats.levels[i].m, stats.levels[i - 1].m);
  }
  // First level starts from the full graph.
  EXPECT_EQ(stats.levels[0].m, g.num_edges());
  EXPECT_EQ(stats.levels[0].n, g.num_vertices());
  // Phase timers were populated.
  EXPECT_GT(stats.phases.total(), 0.0);
}

TEST(Connectivity, VariantNamesAreStable) {
  EXPECT_STREQ(cc::variant_name(decomp_variant::kMin), "decomp-min-CC");
  EXPECT_STREQ(cc::variant_name(decomp_variant::kArb), "decomp-arb-CC");
  EXPECT_STREQ(cc::variant_name(decomp_variant::kArbHybrid),
               "decomp-arb-hybrid-CC");
}

}  // namespace
}  // namespace pcc
