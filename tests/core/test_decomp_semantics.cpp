// Semantic differential test for Decomp-Min.
//
// The paper defines the decomposition declaratively: vertex v joins the
// partition of the center u minimizing the shifted distance (equivalently,
// the BFS that reaches v first, ties broken toward the smaller fractional
// shift). This file re-derives that assignment with an obviously-correct
// sequential multi-source Dijkstra over the DISCRETE round timeline of
// Algorithm 2 (see oracle_assignment for the exact event ordering) — centers arise endogenously: a vertex's own start
// entry wins only if nothing arrived earlier — and requires decomp_min to
// produce EXACTLY the same clustering. Decomp-Min's outcome is schedule
// independent, so the comparison is exact, not just partition-equivalent.
//
// White-box note: the oracle reproduces the library's seed-derived shift
// values and fractional tie-break integers (rng streams split(7)/split(11),
// the permutation-chunk prefix ceil(e^{beta*t}), the exponential-mode
// reversal delta_max - delta_v). If those derivations change, update here.

#include <gtest/gtest.h>

#include <cmath>
#include <queue>
#include <tuple>

#include "test_helpers.hpp"

namespace pcc {
namespace {

// Round in which vertex v becomes a center CANDIDATE under the given
// schedule options (it actually starts a BFS only if still unvisited).
std::vector<uint32_t> start_rounds(size_t n, const ldd::options& opt) {
  std::vector<uint32_t> start(n);
  if (opt.shifts == ldd::shift_mode::kPermutationChunks) {
    const auto perm = parallel::random_permutation(n, opt.seed);
    // position -> round: prefix offered by end of round t is
    // min(n, ceil(e^{beta*t})).
    const auto prefix = [&](uint32_t t) {
      const double e = opt.beta * static_cast<double>(t);
      if (e > std::log(static_cast<double>(n) + 1.0) + 1.0) return n;
      return std::min(n, static_cast<size_t>(std::ceil(std::exp(e))));
    };
    std::vector<uint32_t> round_of_pos(n);
    uint32_t t = 0;
    for (size_t p = 0; p < n; ++p) {
      while (prefix(t) <= p) ++t;
      round_of_pos[p] = t;
    }
    for (size_t p = 0; p < n; ++p) start[perm[p]] = round_of_pos[p];
  } else {
    const parallel::rng gen = parallel::rng(opt.seed).split(7);
    std::vector<double> delta(n);
    double dmax = 0;
    for (size_t v = 0; v < n; ++v) {
      delta[v] = gen.exponential(v, opt.beta);
      dmax = std::max(dmax, delta[v]);
    }
    for (size_t v = 0; v < n; ++v) {
      start[v] = static_cast<uint32_t>(
          std::min(std::max(0.0, dmax - delta[v]), 4.0e9));
    }
  }
  return start;
}

// The library's fractional tie-break value for center c.
uint32_t frac_of(vertex_id c, uint64_t seed) {
  const parallel::rng gen = parallel::rng(seed).split(11);
  return 1u + static_cast<uint32_t>(gen.bounded(c, (1u << 31) - 2u));
}

// Sequential oracle: multi-source Dijkstra over the DISCRETE timeline of
// Algorithm 2. Within round t, new centers are added at the top (bfsPre)
// but a BFS that reaches v "at round t" actually claimed it during round
// t-1's phases — so the discrete order is BFS(t) < candidate(t) < BFS(t+1).
// (In the continuous MPX process this tie has probability zero; the
// discretized schedule resolves it toward the earlier event, and the
// implementation follows Algorithm 2 exactly.) Encode BFS arrivals at
// round k as key 2k and center candidacies at round t as key 2t+1; the
// fractional shift breaks ties among equal BFS keys, exactly as the
// writeMin does.
std::vector<vertex_id> oracle_assignment(const graph::graph& g,
                                         const ldd::options& opt) {
  const size_t n = g.num_vertices();
  const auto start = start_rounds(n, opt);
  using entry = std::tuple<uint64_t, uint32_t, vertex_id, vertex_id>;
  std::priority_queue<entry, std::vector<entry>, std::greater<entry>> pq;
  for (size_t v = 0; v < n; ++v) {
    pq.push({uint64_t{2} * start[v] + 1,
             frac_of(static_cast<vertex_id>(v), opt.seed),
             static_cast<vertex_id>(v), static_cast<vertex_id>(v)});
  }
  std::vector<vertex_id> cluster(n, kNoVertex);
  while (!pq.empty()) {
    const auto [key, frac, center, v] = pq.top();
    pq.pop();
    if (cluster[v] != kNoVertex) continue;  // already claimed earlier/better
    cluster[v] = center;
    // v is on the frontier at round key>>1; neighbours are claimed during
    // that round, i.e. BFS-arrive at round (key>>1) + 1.
    const uint64_t next_key = ((key >> 1) + 1) * 2;
    for (vertex_id w : g.neighbors(v)) {
      if (cluster[w] == kNoVertex) pq.push({next_key, frac, center, w});
    }
  }
  return cluster;
}

class DecompMinSemantics
    : public ::testing::TestWithParam<ldd::shift_mode> {};

TEST_P(DecompMinSemantics, MatchesSequentialShiftedDistanceOracle) {
  const std::vector<graph::graph> graphs = {
      graph::grid3d_graph(1000, true, 3),
      graph::random_graph(1500, 3, 5),
      graph::line_graph(800),
      graph::rmat_graph(1024, 4000, 7),
      graph::cliques_with_bridges(10, 8),
  };
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    for (double beta : {0.1, 0.3}) {
      for (uint64_t seed : {1u, 2u, 3u}) {
        ldd::options opt;
        opt.beta = beta;
        opt.seed = seed;
        opt.shifts = GetParam();
        const auto expected = oracle_assignment(graphs[gi], opt);
        const auto got = ldd::decompose_min(graphs[gi], opt);
        ASSERT_EQ(got.cluster, expected)
            << "graph " << gi << " beta=" << beta << " seed=" << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ShiftModes, DecompMinSemantics,
                         ::testing::Values(
                             ldd::shift_mode::kPermutationChunks,
                             ldd::shift_mode::kExponentialShifts),
                         [](const ::testing::TestParamInfo<ldd::shift_mode>& i) {
                           return i.param ==
                                          ldd::shift_mode::kPermutationChunks
                                      ? "chunks"
                                      : "exponential";
                         });

TEST(DecompArbSemantics, ClaimRoundsMatchOracleArrivalTimes) {
  // Decomp-Arb breaks ties arbitrarily, so centers may differ from the
  // oracle — but the ROUND each vertex is claimed in is tie-independent
  // (it is the min shifted arrival time). Check it through the cluster
  // radii: every vertex's center must have a start round consistent with
  // first arrival, i.e. the oracle's arrival round is reached by SOME
  // center; here we verify the weaker but tie-free property that the
  // number of BFS rounds equals the oracle's maximum arrival round + 1.
  const graph::graph g = graph::grid3d_graph(1728, true, 9);
  for (uint64_t seed : {1u, 2u}) {
    ldd::options opt;
    opt.beta = 0.2;
    opt.seed = seed;
    const auto oracle = oracle_assignment(g, opt);
    // Max arrival round from the oracle run, recomputed via a BFS from the
    // oracle clustering: distance of v to its center + center start round.
    const auto start = start_rounds(g.num_vertices(), opt);
    uint32_t max_round = 0;
    {
      // Multi-source BFS over the discrete timeline (same keying as the
      // oracle): frontier round of v = key >> 1.
      using entry = std::tuple<uint64_t, vertex_id>;
      std::priority_queue<entry, std::vector<entry>, std::greater<entry>> pq;
      std::vector<uint8_t> done(g.num_vertices(), 0);
      for (size_t v = 0; v < g.num_vertices(); ++v) {
        pq.push({uint64_t{2} * start[v] + 1, static_cast<vertex_id>(v)});
      }
      while (!pq.empty()) {
        const auto [key, v] = pq.top();
        pq.pop();
        if (done[v]) continue;
        done[v] = 1;
        max_round = std::max(max_round, static_cast<uint32_t>(key >> 1));
        const uint64_t next_key = ((key >> 1) + 1) * 2;
        for (vertex_id w : g.neighbors(v)) {
          if (!done[w]) pq.push({next_key, w});
        }
      }
    }
    const auto got = ldd::decompose_arb(g, opt);
    EXPECT_EQ(got.num_rounds, static_cast<size_t>(max_round) + 1)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace pcc
